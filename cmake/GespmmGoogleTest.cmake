# Resolve GoogleTest hermetically so the build works offline: prefer the
# system source tree shipped by libgtest-dev, fall back to FetchContent
# only when it is absent. Exposes GTest::gtest_main either way.
if(NOT TARGET GTest::gtest_main)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  if(EXISTS /usr/src/googletest/CMakeLists.txt)
    add_subdirectory(/usr/src/googletest
      ${CMAKE_BINARY_DIR}/_deps/googletest-build EXCLUDE_FROM_ALL)
  else()
    include(FetchContent)
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
    FetchContent_MakeAvailable(googletest)
  endif()
endif()

if(NOT TARGET GTest::gtest_main AND TARGET gtest_main)
  add_library(GTest::gtest_main ALIAS gtest_main)
  add_library(GTest::gtest ALIAS gtest)
endif()
