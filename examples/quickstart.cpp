/// Quickstart: the 60-second tour of the GE-SpMM library.
///
/// 1. Build a sparse graph in CSR (the format GNN frameworks already use —
///    no conversion, no preprocessing).
/// 2. Multiply it with a dense feature matrix: standard SpMM and the
///    generalized SpMM-like (max-pooling) in one call each.
/// 3. Profile the same operation on the simulated GTX 1080Ti and RTX 2080:
///    the adaptive kernel choice, nvprof-style metrics and modelled time.
///
/// Build & run:  cmake -B build -G Ninja && cmake --build build
///               ./build/examples/quickstart

#include <cstdio>

#include "core/gespmm.hpp"
#include "sparse/generators.hpp"

using namespace gespmm;

int main() {
  // A small social-network-like graph: 4096 vertices, ~32K edges.
  const Csr graph = sparse::rmat(/*scale=*/12, /*edge_factor=*/8.0, 0.5, 0.2, 0.2,
                                 /*seed=*/42);
  std::printf("graph: %d vertices, %d edges, avg degree %.2f\n", graph.rows,
              graph.nnz(), graph.avg_row_nnz());

  // Feature matrix: one length-64 feature vector per vertex.
  const index_t n = 64;
  DenseMatrix features(graph.cols, n);
  kernels::fill_random(features, /*seed=*/7);

  // --- Standard SpMM: out[v] = sum over neighbours u of w(v,u) * feat[u].
  DenseMatrix aggregated(graph.rows, n);
  spmm(graph, features, aggregated);
  std::printf("spmm done: out[0][0..3] = %.3f %.3f %.3f %.3f\n", aggregated.at(0, 0),
              aggregated.at(0, 1), aggregated.at(0, 2), aggregated.at(0, 3));

  // --- SpMM-like with a built-in reduction (GraphSAGE-style max pooling).
  DenseMatrix pooled(graph.rows, n);
  spmm(graph, features, pooled, ReduceKind::Max);
  std::printf("spmm-like (max) done: out[0][0..3] = %.3f %.3f %.3f %.3f\n",
              pooled.at(0, 0), pooled.at(0, 1), pooled.at(0, 2), pooled.at(0, 3));

  // --- SpMM-like with a *user-defined* reduction (paper Section IV-A):
  // count how many neighbour contributions exceed a threshold.
  CustomReduceOp count_above;
  count_above.init = [] { return 0.0f; };
  count_above.reduce = [](value_t acc, value_t x) {
    return acc + (x > 0.5f ? 1.0f : 0.0f);
  };
  DenseMatrix counts(graph.rows, n);
  spmm_like(graph, features, counts, count_above);
  std::printf("custom spmm-like done: row 0 counts = %.0f %.0f %.0f %.0f\n",
              counts.at(0, 0), counts.at(0, 1), counts.at(0, 2), counts.at(0, 3));

  // --- Profile the kernel on both simulated devices.
  for (const char* name : {"gtx1080ti", "rtx2080"}) {
    ProfileOptions opt;
    opt.device = gpusim::device_by_name(name);
    DenseMatrix out(graph.rows, n);
    const auto prof = profile_spmm(graph, features, out, opt);
    std::printf(
        "[%s] kernel=%s  time=%.4f ms  %.1f GFLOPS  gld_transactions=%llu  "
        "gld_efficiency=%.1f%%  occupancy=%.2f\n",
        name, kernels::algo_name(prof.algo), prof.time_ms(),
        prof.gflops(graph.nnz(), n),
        static_cast<unsigned long long>(prof.result.metrics.gld_transactions),
        100.0 * prof.result.metrics.gld_efficiency(), prof.result.achieved_occupancy);
  }
  std::printf("quickstart finished.\n");
  return 0;
}
