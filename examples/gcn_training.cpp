/// End-to-end example: train a 2-layer GCN on the Cora citation graph with
/// the DGL-style backend (cuSPARSE csrmm2 + transpose) and with GE-SpMM
/// swapped in, and compare the per-operator CUDA-time profile — the
/// workflow behind the paper's Fig. 13.
///
/// Run: ./build/examples/gcn_training [epochs]

#include <cstdio>
#include <cstdlib>

#include "gnn/train.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 10;
  const auto data = sparse::cora();
  std::printf("dataset: %s — %d nodes, %d edges, %d features, %d classes\n",
              data.name.c_str(), data.adj.rows, data.adj.nnz(), data.feature_dim,
              data.num_classes);

  gnn::TrainConfig cfg;
  cfg.device = gpusim::gtx1080ti();
  cfg.model.kind = gnn::ModelKind::Gcn;
  cfg.model.num_layers = 2;
  cfg.model.hidden_feats = 16;
  cfg.epochs = epochs;
  cfg.lr = 5e-2;

  std::printf("\n--- DGL backend (csrmm2 + cuBLAS transpose) ---\n");
  cfg.model.backend = gnn::AggregatorBackend::DglCusparse;
  const auto dgl = gnn::train(data, cfg);
  std::printf("loss %.4f -> %.4f, accuracy %.3f, cuda time %.3f ms\n%s\n",
              dgl.first_loss, dgl.final_loss, dgl.final_accuracy, dgl.cuda_time_ms,
              dgl.profile_report.c_str());

  std::printf("--- DGL + GE-SpMM backend ---\n");
  cfg.model.backend = gnn::AggregatorBackend::GeSpMM;
  const auto ge = gnn::train(data, cfg);
  std::printf("loss %.4f -> %.4f, accuracy %.3f, cuda time %.3f ms\n%s\n",
              ge.first_loss, ge.final_loss, ge.final_accuracy, ge.cuda_time_ms,
              ge.profile_report.c_str());

  std::printf("identical math: |loss difference| = %.2e\n",
              std::abs(dgl.final_loss - ge.final_loss));
  std::printf("end-to-end CUDA-time reduction from GE-SpMM: %.2fx\n",
              dgl.cuda_time_ms / ge.cuda_time_ms);
  return 0;
}
