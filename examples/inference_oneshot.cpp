/// One-shot inference: the scenario that motivates GE-SpMM's
/// no-preprocessing design (paper Section II-B). A trained GNN is applied
/// once to a *new* graph — e.g. predicting properties of a new protein
/// graph, or a freshly sampled training batch. Preprocess-based kernels
/// (ASpT here) must rebuild their format for every new graph, and that
/// cost cannot be amortized; CSR-native GE-SpMM starts immediately.
///
/// Run: ./build/examples/inference_oneshot

#include <cstdio>

#include "core/plan.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmm_aspt.hpp"
#include "sparse/generators.hpp"

using namespace gespmm;

int main() {
  const auto dev = gpusim::gtx1080ti();
  std::printf("one-shot inference on freshly sampled graphs (device %s)\n\n",
              dev.name.c_str());
  std::printf("%-10s %-12s %-14s %-14s %-12s %s\n", "graph", "ge-spmm(ms)",
              "aspt-kern(ms)", "aspt-pre(ms)", "aspt-total", "winner");

  double ge_total = 0.0, aspt_total = 0.0;
  for (int batch = 0; batch < 6; ++batch) {
    // Every batch is a *different* sampled subgraph — as in GraphSAGE's
    // sampled batch training or inference on unseen graphs.
    const Csr g = sparse::rmat(12, 10.0, 0.5, 0.22, 0.22,
                               0xBA7C4 + static_cast<std::uint64_t>(batch));
    const sparse::index_t n = 128;

    kernels::SpmmRunOptions ro;
    ro.device = dev;
    ro.sample = gpusim::SamplePolicy::sampled(2048);

    kernels::SpmmProblem p_ge(g, n);
    const double ge = kernels::run_spmm(kernels::SpmmAlgo::GeSpMM, p_ge, ro).time_ms();

    const auto build = sparse::build_aspt(g);
    kernels::AsptDevice aspt_dev(build.matrix);
    kernels::SpmmProblem p_aspt(g, n);
    const double aspt_kernel = kernels::run_spmm_aspt(aspt_dev, p_aspt, ro).time_ms();
    const double aspt_pre = kernels::aspt_preprocess_time_ms(build, dev);

    ge_total += ge;
    aspt_total += aspt_kernel + aspt_pre;
    std::printf("batch %-4d %-12.4f %-14.4f %-14.4f %-12.4f %s\n", batch, ge,
                aspt_kernel, aspt_pre, aspt_kernel + aspt_pre,
                ge < aspt_kernel + aspt_pre ? "ge-spmm" : "aspt");
  }
  std::printf("\ntotals: ge-spmm %.4f ms vs aspt-with-preprocess %.4f ms (%.2fx)\n",
              ge_total, aspt_total, aspt_total / ge_total);
  std::printf(
      "the kernel-only race may be close, but preprocessing per new graph makes\n"
      "preprocess-based formats uncompetitive for inference and sampled batches\n"
      "— the compatibility argument of the paper's introduction.\n");
  return 0;
}
