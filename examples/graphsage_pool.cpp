/// SpMM-like example: GraphSAGE with max-pooling aggregation on Pubmed —
/// the operator cuSPARSE cannot express (paper Section V-F). Trains the
/// model twice: once with DGL's fallback SpMM-like kernel, once with
/// GE-SpMM's generalized kernel, and reports the op-level speedup
/// (paper Table IX).
///
/// Run: ./build/examples/graphsage_pool [epochs]

#include <cstdio>
#include <cstdlib>

#include "gnn/train.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 4;
  const auto data = sparse::pubmed();
  std::printf("dataset: %s — %d nodes, %d edges\n", data.name.c_str(), data.adj.rows,
              data.adj.nnz());

  gnn::TrainConfig cfg;
  cfg.device = gpusim::gtx1080ti();
  cfg.model.kind = gnn::ModelKind::SagePool;
  cfg.model.num_layers = 1;
  cfg.model.hidden_feats = 64;
  cfg.epochs = epochs;
  cfg.model.backend = gnn::AggregatorBackend::DglCusparse;

  std::printf("\n--- GraphSAGE-pool with DGL's fallback SpMM-like kernel ---\n");
  cfg.model.spmm_like_backend = gnn::AggregatorBackend::DglFallback;
  const auto dgl = gnn::train(data, cfg);
  std::printf("loss %.4f -> %.4f, SpMM-like time %.3f ms, total %.3f ms\n",
              dgl.first_loss, dgl.final_loss, dgl.spmm_like_ms, dgl.cuda_time_ms);

  std::printf("\n--- GraphSAGE-pool with GE-SpMM's SpMM-like kernel ---\n");
  cfg.model.spmm_like_backend = gnn::AggregatorBackend::GeSpMM;
  const auto ge = gnn::train(data, cfg);
  std::printf("loss %.4f -> %.4f, SpMM-like time %.3f ms, total %.3f ms\n",
              ge.first_loss, ge.final_loss, ge.spmm_like_ms, ge.cuda_time_ms);

  std::printf("\nSpMM-like op speedup: %.2fx (paper Table IX: 2.39x-6.15x)\n",
              dgl.spmm_like_ms / ge.spmm_like_ms);
  std::printf("total CUDA-time reduction: %.2fx (paper: ~1.1x)\n",
              dgl.cuda_time_ms / ge.cuda_time_ms);
  return 0;
}
