/// Serving daemon demo: the batched SpMM engine under concurrent
/// multi-tenant traffic, with the v3 sharded serving layer in play.
///
/// Four client threads fire GNN inference requests (width-16/32 feature
/// matrices, a mix of interactive/batch/best-effort priorities) at the
/// three citation graphs, split across two tenants: "alpha" holds a 3x
/// weighted-DRR share over "beta", so under backlog alpha's queues drain
/// three columns for every one of beta's. Interactive requests carry a
/// virtual-clock deadline; once the engine's clock passes it they are
/// shed at admission with a typed `DeadlineExceeded` status instead of
/// occupying queue space. A fifth client serves whole *models*: each
/// `submit_model` ticket is an entire GCN forward pass, executed as a
/// fused SpMM→GEMM chain with cross-layer plan reuse, competing in the
/// same scheduler at its total SpMM width. A final oversized graph —
/// too big for the configured per-device capacity — is row-partitioned
/// across both devices by the shard planner and served scatter/gather,
/// bitwise identical to the unsharded result. On shutdown the daemon
/// prints the admission, per-tenant, per-graph scheduling, per-device
/// dispatch and plan-cache statistics — the levers that keep a
/// long-lived multi-tenant daemon fast, fair and bounded.
///
/// Build & run:  cmake -B build && cmake --build build -j
///               ./build/examples/serving_daemon

#include <cstdio>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "sparse/datasets.hpp"
#include "sparse/generators.hpp"

using namespace gespmm;

int main() {
  serve::ServeOptions opt;        // both devices, two workers
  opt.plan.sample_blocks = 512;
  opt.plan.max_entries = 16;      // long-lived daemons bound their plans
  opt.admission.max_pending = 64; // ...and their pending queue
  // Two tenants: alpha is provisioned 3x beta's scheduler share.
  opt.tenants = {{"alpha", {.share = 3.0}}, {"beta", {.share = 1.0}}};
  // Cap per-device graph residency so the demo's big graph must shard.
  opt.sharding.device_capacity_bytes = 6ull * 1024 * 1024;
  serve::Engine engine(opt);

  // Register the graph catalogue once; identical re-registrations dedup.
  const auto graphs = sparse::citation_suite();
  std::vector<serve::GraphId> ids;
  for (const auto& g : graphs) {
    ids.push_back(engine.register_graph(g.adj));
    std::printf("registered %-9s %6d vertices, %6d edges\n", g.name.c_str(),
                g.adj.rows, g.adj.nnz());
  }

  // Four clients, 64 requests each, mixed across graphs, widths and
  // service classes; even clients submit as alpha, odd as beta.
  // Interactive requests carry a deadline a few virtual ms out — late
  // ones are shed at admission rather than served stale.
  constexpr int kClients = 4, kPerClient = 64;
  constexpr serve::Priority kPriorities[] = {
      serve::Priority::Interactive, serve::Priority::Batch,
      serve::Priority::BestEffort};
  std::vector<std::thread> clients;
  std::vector<std::vector<serve::Ticket>> tickets(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const std::size_t gi = static_cast<std::size_t>(c + r) % ids.size();
        const sparse::index_t n = (r % 2 == 0) ? 16 : 32;
        kernels::DenseMatrix b(graphs[gi].adj.cols, n);
        kernels::fill_random(b, 7000 + 100 * static_cast<std::uint64_t>(c) +
                                    static_cast<std::uint64_t>(r));
        serve::SubmitOptions so;
        so.priority = kPriorities[r % 3];
        so.tenant = (c % 2 == 0) ? "alpha" : "beta";
        // Interactive traffic carries an absolute virtual-clock SLO:
        // once the engine's clock passes it, late arrivals are shed at
        // admission instead of being served stale.
        if (so.priority == serve::Priority::Interactive) so.deadline_ms = 0.75;
        tickets[static_cast<std::size_t>(c)].push_back(
            engine.submit(ids[gi], std::move(b), so));
      }
    });
  }
  // A model-serving client: a 2-layer GCN per citation graph, four
  // forward passes each, one ticket per pass.
  std::vector<serve::ModelId> model_ids;
  for (std::size_t gi = 0; gi < ids.size(); ++gi) {
    model_ids.push_back(engine.register_model(
        ids[gi], serve::make_model_spec(serve::ServedModelKind::Gcn,
                                        /*in_feats=*/32, /*hidden_feats=*/16,
                                        graphs[gi].num_classes,
                                        /*num_layers=*/2)));
  }
  std::vector<serve::Ticket> model_tickets;
  std::thread model_client([&] {
    for (int r = 0; r < 12; ++r) {
      const std::size_t gi = static_cast<std::size_t>(r) % ids.size();
      kernels::DenseMatrix x(graphs[gi].adj.rows, 32);
      kernels::fill_random(x, 9900 + static_cast<std::uint64_t>(r));
      model_tickets.push_back(engine.submit_model(
          model_ids[gi], std::move(x),
          {.priority = serve::Priority::Batch,
           .tenant = (r % 2 == 0) ? "alpha" : "beta"}));
    }
  });

  for (auto& c : clients) c.join();
  model_client.join();

  // Wait for every response (shed tickets are already complete — their
  // wait() returns a typed status instead of throwing); sample one
  // result's metadata per client.
  for (int c = 0; c < kClients; ++c) {
    int shed = 0, late = 0;
    const serve::RequestResult* last_ok = nullptr;
    for (const auto& t : tickets[static_cast<std::size_t>(c)]) {
      const auto& res = t.wait();
      if (res.status == serve::RequestStatus::Shed) {
        ++shed;
        if (res.shed_reason == serve::ShedReason::DeadlineExceeded) ++late;
      } else {
        last_ok = &res;
      }
    }
    if (last_ok != nullptr) {
      std::printf("client %d (%s) done (%d shed, %d past deadline); last "
                  "served: device=%-9s algo=%s batch=%d share=%.4f ms "
                  "done@%.3f ms%s\n",
                  c, last_ok->tenant.c_str(), shed, late,
                  last_ok->device.c_str(), kernels::algo_name(last_ok->algo),
                  last_ok->batch_size, last_ok->modelled_ms,
                  last_ok->completed_at_ms,
                  last_ok->plan_cache_hit ? " (plan cache hit)" : "");
    } else {
      std::printf("client %d done (%d shed, %d past deadline)\n", c, shed,
                  late);
    }
  }

  // Model passes report the fused whole-pass price next to what the same
  // pass would have cost composed layer by layer.
  {
    int shed = 0;
    double fused_ms = 0.0, composed_ms = 0.0;
    const serve::RequestResult* last_ok = nullptr;
    for (const auto& t : model_tickets) {
      const auto& res = t.wait();
      if (res.status == serve::RequestStatus::Shed) {
        ++shed;
      } else {
        fused_ms += res.modelled_ms;
        composed_ms += res.composed_ms;
        last_ok = &res;
      }
    }
    if (last_ok != nullptr) {
      std::printf("model client done (%d shed); %d-layer passes, fused "
                  "%.3f ms vs composed %.3f ms (%.2fx)\n",
                  shed, last_ok->model_layers, fused_ms, composed_ms,
                  fused_ms > 0.0 ? composed_ms / fused_ms : 0.0);
    } else {
      std::printf("model client done (%d shed)\n", shed);
    }
  }

  // A straggler arrives after its SLO has already passed: the virtual
  // clock has advanced beyond its deadline, so admission sheds it with
  // a typed DeadlineExceeded status instead of serving it stale.
  {
    kernels::DenseMatrix b(graphs[0].adj.cols, 16);
    kernels::fill_random(b, 12345);
    const auto& res =
        engine
            .submit(ids[0], std::move(b),
                    {.tenant = "beta", .deadline_ms = 0.25})
            .wait();
    std::printf("\nstraggler (deadline 0.25 ms, clock now %.3f ms): %s\n",
                engine.virtual_now_ms(),
                res.status == serve::RequestStatus::Shed
                    ? serve::shed_reason_name(res.shed_reason)
                    : "served");
  }

  // A graph too large for one device: the shard planner row-partitions
  // it across the device group and the engine serves it scatter/gather.
  {
    const sparse::Csr big = sparse::uniform_random(65536, 65536, 1 << 20, 42);
    const serve::GraphId big_id = engine.register_graph(big);
    const auto plan = engine.shard_plan(big_id);
    std::printf("\nregistered big graph: %d vertices, %d edges -> %d shards\n",
                big.rows, big.nnz(), plan != nullptr ? plan->num_shards() : 1);
    if (plan != nullptr) {
      for (const auto& s : plan->shards) {
        std::printf("  shard %d: rows [%7d, %7d)  nnz %7d  halo %6d\n",
                    s.index, s.row_begin, s.row_end, s.nnz(), s.halo_cols);
      }
    }
    kernels::DenseMatrix x(big.cols, 8);
    kernels::fill_random(x, 4242);
    const auto& res =
        engine.submit(big_id, std::move(x), {.tenant = "alpha"}).wait();
    std::printf("sharded request served across %d shards: %.3f ms "
                "(gather-inclusive makespan share)\n",
                res.shards, res.modelled_ms);
  }

  engine.shutdown();
  const auto st = engine.stats();

  std::printf("\n== admission ==\n");
  for (std::size_t p = 0; p < serve::kNumPriorities; ++p) {
    std::printf("%-11s: %3llu admitted, %3llu shed\n",
                serve::priority_name(static_cast<serve::Priority>(p)),
                static_cast<unsigned long long>(st.admission.admitted[p]),
                static_cast<unsigned long long>(st.admission.shed[p]));
  }

  std::printf("\n== tenants ==\n");
  for (const auto& t : st.tenants) {
    std::printf("%-6s (share %.1f): %3llu submitted, %3llu completed, "
                "%3llu shed, %6llu columns served\n",
                t.tenant.c_str(), t.share,
                static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.shed),
                static_cast<unsigned long long>(t.served_width));
  }

  std::printf("\n== per-graph scheduling (%s) ==\n",
              serve::schedule_policy_name(engine.options().scheduler.policy));
  for (const auto& g : st.graphs) {  // first-submission order; match by key
    const char* name = "big";
    for (std::size_t gi = 0; gi < ids.size(); ++gi) {
      if (ids[gi].key == g.graph) name = graphs[gi].name.c_str();
    }
    std::printf("%-9s t%u: %3llu served in %3llu batches, %3llu deferred, "
                "%6llu columns\n",
                name, g.tenant, static_cast<unsigned long long>(g.served),
                static_cast<unsigned long long>(g.batches),
                static_cast<unsigned long long>(g.deferred),
                static_cast<unsigned long long>(g.served_width));
  }

  std::printf("\n== dispatch ==\n");
  for (const auto& d : st.devices) {
    std::printf("%-9s: %3llu requests in %3llu batches, cache %llu hit / %llu "
                "miss, %.3f modelled ms\n",
                d.device.c_str(), static_cast<unsigned long long>(d.requests),
                static_cast<unsigned long long>(d.batches),
                static_cast<unsigned long long>(d.plan_cache_hits),
                static_cast<unsigned long long>(d.plan_cache_misses), d.modelled_ms);
  }

  const auto pc = engine.plan_cache().stats();
  std::printf("\ntotal: %llu served + %llu shed (%llu past deadline), "
              "%llu coalesced, %llu batches, %.3f modelled ms\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.shed),
              static_cast<unsigned long long>(st.admission.shed_deadline),
              static_cast<unsigned long long>(st.coalesced_requests),
              static_cast<unsigned long long>(st.batches), st.modelled_ms);
  std::printf("deadlines: %llu served late (deadline_met=false)\n",
              static_cast<unsigned long long>(st.deadline_missed));
  std::printf("sharding: %llu graphs sharded, %llu shard launches, %.3f ms "
              "gather\n",
              static_cast<unsigned long long>(st.graphs_sharded),
              static_cast<unsigned long long>(st.shard_launches),
              st.gather_ms);
  std::printf("plan cache: %zu resident (budget %zu, peak %zu), %llu hit / "
              "%llu miss, %llu evicted\n",
              pc.size, engine.options().plan.max_entries, pc.peak_size,
              static_cast<unsigned long long>(pc.hits),
              static_cast<unsigned long long>(pc.misses),
              static_cast<unsigned long long>(pc.evictions));
  std::printf("serving_daemon finished.\n");
  return 0;
}
