/// Serving daemon demo: the batched SpMM engine under concurrent traffic.
///
/// Four client threads fire GNN inference requests (width-16/32 feature
/// matrices) at the three citation graphs while the engine's workers
/// coalesce same-graph requests into multi-feature SpMMs and round-robin
/// the batches across both simulated devices. On shutdown the daemon
/// prints the per-device dispatch statistics and the plan-cache hit rate —
/// the two mechanisms that make repeated-SpMM serving cheap.
///
/// Build & run:  cmake -B build && cmake --build build -j
///               ./build/examples/serving_daemon

#include <cstdio>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;

int main() {
  serve::ServeOptions opt;        // both devices, two workers
  opt.plan.sample_blocks = 512;
  serve::Engine engine(opt);

  // Register the graph catalogue once; identical re-registrations dedup.
  const auto graphs = sparse::citation_suite();
  std::vector<serve::GraphId> ids;
  for (const auto& g : graphs) {
    ids.push_back(engine.register_graph(g.adj));
    std::printf("registered %-9s %6d vertices, %6d edges\n", g.name.c_str(),
                g.adj.rows, g.adj.nnz());
  }

  // Four clients, 64 requests each, mixed across graphs and widths.
  constexpr int kClients = 4, kPerClient = 64;
  std::vector<std::thread> clients;
  std::vector<std::vector<serve::Ticket>> tickets(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const std::size_t gi = static_cast<std::size_t>(c + r) % ids.size();
        const sparse::index_t n = (r % 2 == 0) ? 16 : 32;
        kernels::DenseMatrix b(graphs[gi].adj.cols, n);
        kernels::fill_random(b, 7000 + 100 * static_cast<std::uint64_t>(c) +
                                    static_cast<std::uint64_t>(r));
        tickets[static_cast<std::size_t>(c)].push_back(
            engine.submit(ids[gi], std::move(b)));
      }
    });
  }
  for (auto& c : clients) c.join();

  // Wait for every response; sample one result's metadata per client.
  for (int c = 0; c < kClients; ++c) {
    for (const auto& t : tickets[static_cast<std::size_t>(c)]) t.wait();
    const auto& last = tickets[static_cast<std::size_t>(c)].back().wait();
    std::printf("client %d done; last request: device=%-9s algo=%s batch=%d "
                "share=%.4f ms%s\n",
                c, last.device.c_str(), kernels::algo_name(last.algo),
                last.batch_size, last.modelled_ms,
                last.plan_cache_hit ? " (plan cache hit)" : "");
  }

  engine.shutdown();
  const auto st = engine.stats();
  std::printf("\n== dispatch statistics ==\n");
  for (const auto& d : st.devices) {
    std::printf("%-9s: %3llu requests in %3llu batches, cache %llu hit / %llu "
                "miss, %.3f modelled ms\n",
                d.device.c_str(), static_cast<unsigned long long>(d.requests),
                static_cast<unsigned long long>(d.batches),
                static_cast<unsigned long long>(d.plan_cache_hits),
                static_cast<unsigned long long>(d.plan_cache_misses), d.modelled_ms);
  }
  std::printf("total: %llu requests, %llu coalesced, %llu batches, "
              "plan cache %llu/%llu hit rate (%zu resident plans), "
              "%.3f modelled ms\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.coalesced_requests),
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.plan_cache_hits),
              static_cast<unsigned long long>(st.plan_cache_hits +
                                              st.plan_cache_misses),
              engine.plan_cache().size(), st.modelled_ms);
  std::printf("serving_daemon finished.\n");
  return 0;
}
