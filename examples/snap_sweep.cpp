/// Kernel comparison on arbitrary matrices: runs GE-SpMM against the
/// cuSPARSE and GraphBLAST baselines either on a slice of the built-in
/// SNAP-like suite or on a user-supplied MatrixMarket file (so the sweep
/// works on real SuiteSparse downloads too).
///
/// Run: ./build/examples/snap_sweep                      # built-in suite
///      ./build/examples/snap_sweep path/to/matrix.mtx   # your own matrix

#include <cstdio>

#include "core/gespmm.hpp"
#include "sparse/datasets.hpp"
#include "sparse/mm_io.hpp"

using namespace gespmm;

namespace {

void sweep_one(const std::string& name, const Csr& matrix) {
  std::printf("%-24s M=%-8d nnz=%-9d nnz/row=%.2f\n", name.c_str(), matrix.rows,
              matrix.nnz(), matrix.avg_row_nnz());
  for (index_t n : {128, 512}) {
    ProfileOptions opt;
    opt.sample = gpusim::SamplePolicy::sampled(2048);
    const double flops = 2.0 * matrix.nnz() * static_cast<double>(n);

    opt.algo = SpmmAlgo::GeSpMM;
    const auto ge = profile_spmm_shape(matrix, n, opt);
    opt.algo = SpmmAlgo::Csrmm2;
    const auto cus = profile_spmm_shape(matrix, n, opt);
    opt.algo = SpmmAlgo::RowSplitGB;
    const auto gb = profile_spmm_shape(matrix, n, opt);

    std::printf(
        "  N=%-4d ge-spmm %7.1f GFLOPS | cusparse %7.1f (ge %.2fx) | "
        "graphblast %7.1f (ge %.2fx)\n",
        n, ge.result.gflops(flops), cus.result.gflops(flops),
        cus.time_ms() / ge.time_ms(), gb.result.gflops(flops),
        gb.time_ms() / ge.time_ms());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const std::string path = argv[1];
    std::printf("loading MatrixMarket file %s\n", path.c_str());
    const Csr matrix = sparse::read_matrix_market_file(path);
    sweep_one(path, matrix);
    return 0;
  }
  std::printf("sweeping a slice of the built-in SNAP-like suite "
              "(device gtx1080ti)\n\n");
  for (int i : {0, 5, 24, 33, 37, 51}) {
    const auto entry = sparse::snap_suite_entry(i, /*size_factor=*/0.25);
    sweep_one(entry.name, entry.matrix);
  }
  return 0;
}
