#pragma once
/// \file reporter.hpp
/// The collection side of the reporting subsystem: every bench registers
/// its measured rows into a `Reporter` alongside its existing `Table`
/// pretty-printing, and the shared bench main writes the accumulated
/// `BenchReport` to the path given by `--json=<path>`.

#include <string>

#include "bench_common/bench_common.hpp"
#include "bench_common/report.hpp"

namespace gespmm::bench {

class Reporter {
 public:
  explicit Reporter(const Options& opt);

  /// Set the bench id stamped onto subsequently added records.
  void begin_bench(const std::string& bench_id);

  /// Add a record; `rec.bench` is overwritten with the current bench id.
  void add(BenchRecord rec);

  /// Convenience: build + add in one call.
  void add(const std::string& device, const std::string& matrix, const std::string& algo,
           int n, double time_ms, double speedup = 0.0, bool wallclock = false);

  const BenchReport& report() const { return report_; }
  const std::string& current_bench() const { return bench_id_; }

  /// Serialize (records + recomputed rollups) to `path`; returns false on
  /// I/O failure.
  bool write_json(const std::string& path) const;

 private:
  BenchReport report_;
  std::string bench_id_;
};

}  // namespace gespmm::bench
