#include "bench_common/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

namespace gespmm::bench {

std::vector<BenchInfo>& bench_registry() {
  static std::vector<BenchInfo> reg;
  return reg;
}

BenchRegistrar::BenchRegistrar(const char* id, BenchFn fn) {
  bench_registry().push_back({id, fn});
}

int run_registered_benches(int argc, char** argv) {
  const Options opt = Options::parse_or_exit(argc, argv);

  std::vector<BenchInfo> benches = bench_registry();
  std::sort(benches.begin(), benches.end(),
            [](const BenchInfo& a, const BenchInfo& b) { return a.id < b.id; });

  if (!opt.only.empty()) {
    for (const auto& want : opt.only) {
      const bool known = std::any_of(benches.begin(), benches.end(),
                                     [&](const BenchInfo& b) { return b.id == want; });
      if (!known) {
        std::fprintf(stderr, "bench: --only names unknown bench \"%s\"\n", want.c_str());
        std::fprintf(stderr, "registered benches:\n");
        for (const auto& b : benches) std::fprintf(stderr, "  %s\n", b.id.c_str());
        return 2;
      }
    }
    std::erase_if(benches, [&](const BenchInfo& b) {
      return std::find(opt.only.begin(), opt.only.end(), b.id) == opt.only.end();
    });
  }

  if (opt.list) {
    for (const auto& b : benches) std::printf("%s\n", b.id.c_str());
    return 0;
  }

  Reporter reporter(opt);
  int failures = 0;
  for (const auto& b : benches) {
    reporter.begin_bench(b.id);
    Context ctx{opt, reporter, b.id};
    try {
      b.fn(ctx);
    } catch (const std::exception& e) {
      ++failures;
      std::fprintf(stderr, "bench %s FAILED: %s\n", b.id.c_str(), e.what());
    }
  }

  if (!opt.json_path.empty()) {
    if (reporter.write_json(opt.json_path)) {
      std::printf("\nwrote %zu records (%zu benches) to %s\n",
                  reporter.report().records.size(), benches.size(),
                  opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "bench: cannot write JSON report to %s\n",
                   opt.json_path.c_str());
      return 1;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace gespmm::bench
