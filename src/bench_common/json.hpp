#pragma once
/// \file json.hpp
/// Minimal hand-rolled JSON value + parser + writer for the benchmark
/// reporting subsystem. Deliberately tiny: objects, arrays, strings,
/// numbers, booleans and null — exactly what `BenchReport` needs, with
/// round-trip-exact doubles (%.17g) so recorded baselines re-read to the
/// same bits. Not a general-purpose JSON library (no \uXXXX emission
/// beyond pass-through escapes, no streaming).

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace gespmm::bench {

/// Thrown by Json::parse on malformed input; carries a byte offset.
struct JsonParseError : std::runtime_error {
  JsonParseError(const std::string& what, std::size_t offset);
  std::size_t offset = 0;
};

/// A parsed JSON document node. Object keys keep insertion order on write
/// via a parallel key list so dumped baselines diff cleanly.
class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;
  static Json null();
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;

  /// Array building.
  void push_back(Json v);

  /// Object access. `set` keeps first-insertion key order; `get` throws
  /// on a missing key, `find` returns nullptr instead.
  void set(const std::string& key, Json v);
  const Json& get(const std::string& key) const;
  const Json* find(const std::string& key) const;
  const std::vector<std::string>& keys() const;

  /// Serialize. `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Parse a complete document; trailing non-space input is an error.
  static Json parse(const std::string& text);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::string> keys_;
  std::map<std::string, Json> obj_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace gespmm::bench
