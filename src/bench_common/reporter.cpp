#include "bench_common/reporter.hpp"

namespace gespmm::bench {

Reporter::Reporter(const Options& opt) {
  report_.snap_scale = opt.snap_scale;
  report_.max_graphs = opt.max_graphs;
  report_.sample_blocks = opt.sample_blocks;
  report_.quick = opt.quick;
}

void Reporter::begin_bench(const std::string& bench_id) { bench_id_ = bench_id; }

void Reporter::add(BenchRecord rec) {
  rec.bench = bench_id_;
  report_.records.push_back(std::move(rec));
}

void Reporter::add(const std::string& device, const std::string& matrix,
                   const std::string& algo, int n, double time_ms, double speedup,
                   bool wallclock) {
  BenchRecord rec;
  rec.device = device;
  rec.matrix = matrix;
  rec.algo = algo;
  rec.n = n;
  rec.time_ms = time_ms;
  rec.speedup = speedup;
  rec.wallclock = wallclock;
  add(std::move(rec));
}

bool Reporter::write_json(const std::string& path) const {
  return report_.write_file(path);
}

}  // namespace gespmm::bench
