#include "bench_common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gespmm::bench {

JsonParseError::JsonParseError(const std::string& what, std::size_t off)
    : std::runtime_error(what + " (at byte " + std::to_string(off) + ")"), offset(off) {}

Json Json::null() { return Json(); }

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::Number;
  j.num_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::String;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

namespace {
[[noreturn]] void kind_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not a ") + want);
}
}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) kind_error("bool");
  return bool_;
}

double Json::as_number() const {
  if (!is_number()) kind_error("number");
  return num_;
}

const std::string& Json::as_string() const {
  if (!is_string()) kind_error("string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (!is_array()) kind_error("array");
  return arr_;
}

void Json::push_back(Json v) {
  if (!is_array()) kind_error("array");
  arr_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  if (!is_object()) kind_error("object");
  if (obj_.find(key) == obj_.end()) keys_.push_back(key);
  obj_[key] = std::move(v);
}

const Json& Json::get(const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw std::runtime_error("json: missing key \"" + key + "\"");
  return *v;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) kind_error("object");
  auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

const std::vector<std::string>& Json::keys() const {
  if (!is_object()) kind_error("object");
  return keys_;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  // Integers print without exponent/decimals so ids and counts stay clean;
  // everything else uses %.17g for exact double round-trip.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string closepad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: number_into(out, num_); break;
    case Kind::String: escape_into(out, str_); break;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad;
        arr_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += nl;
      }
      out += closepad;
      out += ']';
      break;
    }
    case Kind::Object: {
      if (keys_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        out += pad;
        escape_into(out, keys_[i]);
        out += indent > 0 ? ": " : ":";
        obj_.at(keys_[i]).dump_to(out, indent, depth + 1);
        if (i + 1 < keys_.size()) out += ',';
        out += nl;
      }
      out += closepad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) { throw JsonParseError(what, pos_); }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(const char* word) {
    std::size_t n = std::char_traits<char>::length(word);
    if (s_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't':
        if (literal("true")) return Json::boolean(true);
        fail("bad literal");
      case 'f':
        if (literal("false")) return Json::boolean(false);
        fail("bad literal");
      case 'n':
        if (literal("null")) return Json::null();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // ASCII-only emission; our writer never produces higher escapes.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            fail("non-ASCII \\u escape unsupported by this minimal reader");
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a JSON value");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return Json::number(v);
  }
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace gespmm::bench
