#pragma once
/// \file report.hpp
/// Structured benchmark results: one `BenchRecord` per measured
/// (bench, device, matrix, algo, N) point, collected into a `BenchReport`
/// with per-(bench, device) geomean rollups, serialized to JSON by the
/// hand-rolled writer in json.hpp. This is the machine-readable side of
/// every `bench_*` binary; `scripts/bench_compare.py` diffs two reports.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common/json.hpp"

namespace gespmm::bench {

/// One measured point. `speedup` is 0 when the row has no natural
/// baseline ratio (e.g. a profile-only row); `wallclock` marks host
/// wall-clock measurements, which are machine-dependent and therefore
/// excluded from strict timing comparison (simulated times are exactly
/// reproducible, wall times are not).
struct BenchRecord {
  std::string bench;
  std::string device;
  std::string matrix;
  std::string algo;
  int n = 0;
  double time_ms = 0.0;
  double speedup = 0.0;
  bool wallclock = false;

  Json to_json() const;
  static BenchRecord from_json(const Json& j);
  bool operator==(const BenchRecord&) const = default;
};

/// Per-(bench, device) aggregate, mirroring the paper's geometric-mean
/// reporting convention. `geomean_speedup` is 0 when no record in the
/// group carries a speedup.
struct BenchRollup {
  std::string bench;
  std::string device;
  int count = 0;
  double geomean_time_ms = 0.0;
  double geomean_speedup = 0.0;
  bool wallclock = false;

  Json to_json() const;
  static BenchRollup from_json(const Json& j);
};

/// A full run: the options it ran under, every record, and the rollups.
struct BenchReport {
  static constexpr int kSchemaVersion = 1;

  int schema_version = kSchemaVersion;
  double snap_scale = 0.0;
  int max_graphs = 0;
  std::uint64_t sample_blocks = 0;
  bool quick = false;
  std::vector<BenchRecord> records;

  /// Recompute rollups from `records`, sorted by (bench, device).
  std::vector<BenchRollup> rollups() const;

  Json to_json() const;
  static BenchReport from_json(const Json& j);

  /// File I/O; write returns false (and reports nothing) only on I/O
  /// failure, read throws on I/O or parse/schema errors.
  bool write_file(const std::string& path) const;
  static BenchReport read_file(const std::string& path);
};

}  // namespace gespmm::bench
