#pragma once
/// \file bench_common.hpp
/// Shared utilities for the table/figure reproduction benches: aligned
/// table printing, geometric means, and CLI options (device selection,
/// SNAP-suite scale, quick mode).

#include <span>
#include <string>
#include <vector>

#include "gpusim/device.hpp"

namespace gespmm::bench {

/// Command-line options common to all benches.
///   --device=gtx1080ti|rtx2080|both   (default both)
///   --snap-scale=<float>              suite size factor (default 0.25)
///   --full                            shorthand for --snap-scale=1.0
///   --quick                           CI preset: tiny suite + sample budget
///   --max-graphs=<int>                limit the SNAP sweep length
///   --sample-blocks=<int>             simulator block-sampling budget
///   --json=<path>                     write a structured BenchReport
///   --only=<id,...>                   run a subset of registered benches
///   --list                            print registered bench ids and exit
/// Flags apply left to right, so e.g. `--quick --max-graphs=8` widens the
/// quick preset's graph budget.
struct Options {
  std::vector<gpusim::DeviceSpec> devices;
  double snap_scale = 0.25;
  int max_graphs = 64;
  std::uint64_t sample_blocks = 1024;
  bool quick = false;
  bool list = false;
  std::string json_path;
  std::vector<std::string> only;

  /// Strict parse; throws std::invalid_argument on any unknown flag or
  /// malformed value (typos like --snapscale=1 must never be silently
  /// ignored — they would corrupt a recorded baseline).
  static Options parse(int argc, char** argv);

  /// Bench-main entry: like parse, but on error prints the message plus
  /// usage to stderr and exits with status 2 instead of throwing.
  static Options parse_or_exit(int argc, char** argv);

  /// The usage text printed by --help and on parse errors.
  static std::string usage();
};

/// Geometric mean (the paper: "All average results are based on the
/// geometric mean").
double geomean(std::span<const double> xs);

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner for bench output.
void banner(const std::string& title);

}  // namespace gespmm::bench
