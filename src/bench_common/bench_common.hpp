#pragma once
/// \file bench_common.hpp
/// Shared utilities for the table/figure reproduction benches: aligned
/// table printing, geometric means, and CLI options (device selection,
/// SNAP-suite scale, quick mode).

#include <span>
#include <string>
#include <vector>

#include "gpusim/device.hpp"

namespace gespmm::bench {

/// Command-line options common to all benches.
///   --device=gtx1080ti|rtx2080|both   (default both)
///   --snap-scale=<float>              suite size factor (default 0.25)
///   --full                            shorthand for --snap-scale=1.0
///   --max-graphs=<int>                limit the SNAP sweep length
///   --sample-blocks=<int>             simulator block-sampling budget
struct Options {
  std::vector<gpusim::DeviceSpec> devices;
  double snap_scale = 0.25;
  int max_graphs = 64;
  std::uint64_t sample_blocks = 1024;

  static Options parse(int argc, char** argv);
};

/// Geometric mean (the paper: "All average results are based on the
/// geometric mean").
double geomean(std::span<const double> xs);

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner for bench output.
void banner(const std::string& title);

}  // namespace gespmm::bench
