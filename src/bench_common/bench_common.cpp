#include "bench_common/bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace gespmm::bench {

Options Options::parse(int argc, char** argv) {
  Options opt;
  std::string device = "both";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--device=")) {
      device = v;
    } else if (const char* v = value_of("--snap-scale=")) {
      opt.snap_scale = std::stod(v);
    } else if (arg == "--full") {
      opt.snap_scale = 1.0;
    } else if (const char* v = value_of("--max-graphs=")) {
      opt.max_graphs = std::stoi(v);
    } else if (const char* v = value_of("--sample-blocks=")) {
      opt.sample_blocks = static_cast<std::uint64_t>(std::stoll(v));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "options: --device=gtx1080ti|rtx2080|both --snap-scale=F --full "
          "--max-graphs=N --sample-blocks=N\n");
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  if (device == "both") {
    opt.devices = {gpusim::gtx1080ti(), gpusim::rtx2080()};
  } else {
    opt.devices = {gpusim::device_by_name(device)};
  }
  return opt;
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) logsum += std::log(std::max(x, 1e-300));
  return std::exp(logsum / static_cast<double>(xs.size()));
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace gespmm::bench
