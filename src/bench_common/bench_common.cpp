#include "bench_common/bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace gespmm::bench {

std::string Options::usage() {
  return
      "usage: bench [options]\n"
      "  --device=gtx1080ti|rtx2080|both  simulated device(s) (default both)\n"
      "  --snap-scale=F                   SNAP suite size factor (default 0.25)\n"
      "  --full                           shorthand for --snap-scale=1.0\n"
      "  --quick                          CI preset: --snap-scale=0.05 --max-graphs=4\n"
      "                                   --sample-blocks=256 + reduced per-bench work\n"
      "  --max-graphs=N                   limit the SNAP sweep length (default 64)\n"
      "  --sample-blocks=N                simulator block-sampling budget (default 1024)\n"
      "  --json=PATH                      write the structured BenchReport to PATH\n"
      "  --only=ID[,ID...]                run only the named registered benches\n"
      "  --list                           print registered bench ids and exit\n"
      "  --help, -h                       show this message\n";
}

Options Options::parse(int argc, char** argv) {
  Options opt;
  std::string device = "both";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    auto parse_num = [&](const char* v, auto convert) {
      try {
        std::size_t used = 0;
        auto parsed = convert(std::string(v), &used);
        if (used != std::strlen(v)) throw std::invalid_argument("trailing characters");
        return parsed;
      } catch (const std::exception&) {
        throw std::invalid_argument("malformed value in bench option: " + arg);
      }
    };
    auto require_positive = [&](auto value) {
      if (value <= 0) {
        throw std::invalid_argument("value must be positive in bench option: " + arg);
      }
      return value;
    };
    if (const char* v = value_of("--device=")) {
      device = v;
    } else if (const char* v = value_of("--snap-scale=")) {
      opt.snap_scale = require_positive(parse_num(
          v, [](const std::string& s, std::size_t* u) { return std::stod(s, u); }));
    } else if (arg == "--full") {
      opt.snap_scale = 1.0;
    } else if (arg == "--quick") {
      opt.quick = true;
      opt.snap_scale = 0.05;
      opt.max_graphs = 4;
      opt.sample_blocks = 256;
    } else if (const char* v = value_of("--max-graphs=")) {
      opt.max_graphs = require_positive(parse_num(
          v, [](const std::string& s, std::size_t* u) { return std::stoi(s, u); }));
    } else if (const char* v = value_of("--sample-blocks=")) {
      opt.sample_blocks = static_cast<std::uint64_t>(require_positive(parse_num(
          v, [](const std::string& s, std::size_t* u) { return std::stoll(s, u); })));
    } else if (const char* v = value_of("--json=")) {
      if (*v == '\0') throw std::invalid_argument("empty path in bench option: " + arg);
      opt.json_path = v;
    } else if (const char* v = value_of("--only=")) {
      std::string rest = v;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string id = rest.substr(0, comma);
        if (!id.empty()) opt.only.push_back(id);
        if (comma == std::string::npos) break;
        rest.erase(0, comma + 1);
      }
      if (opt.only.empty()) {
        throw std::invalid_argument("empty bench list in option: " + arg);
      }
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  if (device == "both") {
    opt.devices = {gpusim::gtx1080ti(), gpusim::rtx2080()};
  } else {
    opt.devices = {gpusim::device_by_name(device)};
  }
  return opt;
}

Options Options::parse_or_exit(int argc, char** argv) {
  try {
    return parse(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bench: %s\n%s", e.what(), usage().c_str());
    std::exit(2);
  }
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) logsum += std::log(std::max(x, 1e-300));
  return std::exp(logsum / static_cast<double>(xs.size()));
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace gespmm::bench
