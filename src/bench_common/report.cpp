#include "bench_common/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "bench_common/bench_common.hpp"

namespace gespmm::bench {

Json BenchRecord::to_json() const {
  Json j = Json::object();
  j.set("bench", Json::string(bench));
  j.set("device", Json::string(device));
  j.set("matrix", Json::string(matrix));
  j.set("algo", Json::string(algo));
  j.set("n", Json::number(n));
  j.set("time_ms", Json::number(time_ms));
  if (speedup > 0.0) j.set("speedup", Json::number(speedup));
  if (wallclock) j.set("wallclock", Json::boolean(true));
  return j;
}

BenchRecord BenchRecord::from_json(const Json& j) {
  BenchRecord r;
  r.bench = j.get("bench").as_string();
  r.device = j.get("device").as_string();
  r.matrix = j.get("matrix").as_string();
  r.algo = j.get("algo").as_string();
  r.n = static_cast<int>(j.get("n").as_number());
  r.time_ms = j.get("time_ms").as_number();
  if (const Json* s = j.find("speedup")) r.speedup = s->as_number();
  if (const Json* w = j.find("wallclock")) r.wallclock = w->as_bool();
  return r;
}

Json BenchRollup::to_json() const {
  Json j = Json::object();
  j.set("bench", Json::string(bench));
  j.set("device", Json::string(device));
  j.set("count", Json::number(count));
  j.set("geomean_time_ms", Json::number(geomean_time_ms));
  if (geomean_speedup > 0.0) j.set("geomean_speedup", Json::number(geomean_speedup));
  if (wallclock) j.set("wallclock", Json::boolean(true));
  return j;
}

BenchRollup BenchRollup::from_json(const Json& j) {
  BenchRollup r;
  r.bench = j.get("bench").as_string();
  r.device = j.get("device").as_string();
  r.count = static_cast<int>(j.get("count").as_number());
  r.geomean_time_ms = j.get("geomean_time_ms").as_number();
  if (const Json* s = j.find("geomean_speedup")) r.geomean_speedup = s->as_number();
  if (const Json* w = j.find("wallclock")) r.wallclock = w->as_bool();
  return r;
}

std::vector<BenchRollup> BenchReport::rollups() const {
  // Group by (bench, device); keys sort lexicographically so the rollup
  // section of a written baseline is stable across runs.
  std::map<std::pair<std::string, std::string>, std::vector<const BenchRecord*>> groups;
  for (const auto& r : records) groups[{r.bench, r.device}].push_back(&r);

  std::vector<BenchRollup> out;
  out.reserve(groups.size());
  for (const auto& [key, recs] : groups) {
    BenchRollup roll;
    roll.bench = key.first;
    roll.device = key.second;
    roll.count = static_cast<int>(recs.size());
    std::vector<double> times, speedups;
    bool wall = false;
    for (const BenchRecord* r : recs) {
      if (r->time_ms > 0.0) times.push_back(r->time_ms);
      if (r->speedup > 0.0) speedups.push_back(r->speedup);
      wall = wall || r->wallclock;
    }
    roll.geomean_time_ms = geomean(times);
    roll.geomean_speedup = geomean(speedups);
    roll.wallclock = wall;
    out.push_back(std::move(roll));
  }
  return out;
}

Json BenchReport::to_json() const {
  Json j = Json::object();
  j.set("schema_version", Json::number(schema_version));
  Json opts = Json::object();
  opts.set("snap_scale", Json::number(snap_scale));
  opts.set("max_graphs", Json::number(max_graphs));
  opts.set("sample_blocks", Json::number(static_cast<double>(sample_blocks)));
  opts.set("quick", Json::boolean(quick));
  j.set("options", std::move(opts));
  Json recs = Json::array();
  for (const auto& r : records) recs.push_back(r.to_json());
  j.set("records", std::move(recs));
  Json rolls = Json::array();
  for (const auto& r : rollups()) rolls.push_back(r.to_json());
  j.set("rollups", std::move(rolls));
  return j;
}

BenchReport BenchReport::from_json(const Json& j) {
  BenchReport rep;
  rep.schema_version = static_cast<int>(j.get("schema_version").as_number());
  if (rep.schema_version != kSchemaVersion) {
    throw std::runtime_error("bench report schema_version " +
                             std::to_string(rep.schema_version) + " != supported " +
                             std::to_string(kSchemaVersion));
  }
  const Json& opts = j.get("options");
  rep.snap_scale = opts.get("snap_scale").as_number();
  rep.max_graphs = static_cast<int>(opts.get("max_graphs").as_number());
  rep.sample_blocks = static_cast<std::uint64_t>(opts.get("sample_blocks").as_number());
  rep.quick = opts.get("quick").as_bool();
  for (const Json& r : j.get("records").items()) {
    rep.records.push_back(BenchRecord::from_json(r));
  }
  // Rollups are recomputed from records on demand; the stored section is
  // for human/script consumption and is not read back.
  return rep;
}

bool BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json().dump(2) << "\n";
  return static_cast<bool>(out);
}

BenchReport BenchReport::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench report: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_json(Json::parse(ss.str()));
}

}  // namespace gespmm::bench
