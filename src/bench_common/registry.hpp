#pragma once
/// \file registry.hpp (bench_common)
/// Self-registration of benches. Each bench/bench_*.cpp defines its body
/// with `GESPMM_BENCH(id) { ... }` instead of a main(); linking the file
/// into a binary registers the bench. Per-bench executables link exactly
/// one bench source + the shared bench_main.cpp; `bench_all` links all of
/// them and runs the whole registered set in-process, sharing one
/// `Reporter` so `--json` produces a single report across every bench.

#include <functional>
#include <string>
#include <vector>

#include "bench_common/bench_common.hpp"
#include "bench_common/reporter.hpp"

namespace gespmm::bench {

/// Everything a bench body gets to see: parsed options plus the shared
/// reporter, pre-aimed at this bench's id.
struct Context {
  const Options& opt;
  Reporter& reporter;
  std::string bench_id;

  /// Register a measured row (bench id filled in automatically).
  void record(const std::string& device, const std::string& matrix,
              const std::string& algo, int n, double time_ms, double speedup = 0.0,
              bool wallclock = false) const {
    reporter.add(device, matrix, algo, n, time_ms, speedup, wallclock);
  }
};

using BenchFn = void (*)(Context&);

struct BenchInfo {
  std::string id;
  BenchFn fn = nullptr;
};

/// All benches linked into this binary, in registration order.
std::vector<BenchInfo>& bench_registry();

/// Static-initialization hook used by GESPMM_BENCH.
struct BenchRegistrar {
  BenchRegistrar(const char* id, BenchFn fn);
};

/// Shared main body: parse options (usage + exit 2 on bad flags), run
/// every registered bench in id order (honoring --only=<id,...>), then
/// write the JSON report when --json=<path> was given. Returns the
/// process exit code.
int run_registered_benches(int argc, char** argv);

#define GESPMM_BENCH(id)                                                  \
  static void gespmm_bench_body_##id(::gespmm::bench::Context& ctx);      \
  static const ::gespmm::bench::BenchRegistrar gespmm_bench_reg_##id(     \
      #id, &gespmm_bench_body_##id);                                      \
  static void gespmm_bench_body_##id(::gespmm::bench::Context& ctx)

}  // namespace gespmm::bench
