#include "gnn/aggregation.hpp"

#include <limits>

#include "kernels/spmm_problem.hpp"

namespace gespmm::gnn {

const char* backend_name(AggregatorBackend b) {
  switch (b) {
    case AggregatorBackend::DglCusparse: return "dgl(csrmm2+transpose)";
    case AggregatorBackend::DglFallback: return "dgl(fallback)";
    case AggregatorBackend::PyGMessagePassing: return "pyg(message-passing)";
    case AggregatorBackend::GeSpMM: return "ge-spmm";
  }
  return "?";
}

namespace {

/// FNV-1a over the CSR structure (sampled for big graphs).
std::uint64_t csr_fingerprint(const sparse::Csr& a) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(a.rows));
  mix(static_cast<std::uint64_t>(a.nnz()));
  const std::size_t stride = std::max<std::size_t>(1, a.colind.size() / 512);
  for (std::size_t i = 0; i < a.colind.size(); i += stride) {
    mix(static_cast<std::uint64_t>(a.colind[i]));
  }
  const std::size_t rstride = std::max<std::size_t>(1, a.rowptr.size() / 512);
  for (std::size_t i = 0; i < a.rowptr.size(); i += rstride) {
    mix(static_cast<std::uint64_t>(a.rowptr[i]));
  }
  return h;
}

using TimeKey = std::tuple<std::uint64_t, std::string, AggregatorBackend, ReduceKind,
                           sparse::index_t, bool>;

std::map<TimeKey, double>& global_time_cache() {
  static std::map<TimeKey, double> cache;
  return cache;
}

}  // namespace

GnnGraph::GnnGraph(sparse::Csr adj, gpusim::DeviceSpec dev)
    : fwd_(std::move(adj)), bwd_(sparse::transpose(fwd_)), dev_(std::move(dev)),
      cost_(dev_), fingerprint_(csr_fingerprint(fwd_)) {}

double GnnGraph::aggregation_time_ms(AggregatorBackend backend, ReduceKind reduce,
                                     index_t n, bool transposed) const {
  auto& time_cache_ = global_time_cache();
  const auto key = std::make_tuple(fingerprint_, dev_.name, backend, reduce, n, transposed);
  if (auto it = time_cache_.find(key); it != time_cache_.end()) return it->second;

  const sparse::Csr& a = transposed ? bwd_ : fwd_;
  double ms = 0.0;
  kernels::SpmmRunOptions opt;
  opt.device = dev_;
  opt.sample = gpusim::SamplePolicy::sampled(1024);

  switch (backend) {
    case AggregatorBackend::DglCusparse: {
      // csrmm2 computes the standard SpMM only; DGL then fixes the
      // column-major output with a cuBLAS transpose (paper Section II-C).
      kernels::SpmmProblem p(a, n, kernels::Layout::ColMajor);
      ms = kernels::run_spmm(kernels::SpmmAlgo::Csrmm2, p, opt).time_ms() +
           cost_.csrmm2_call_overhead_ms() + cost_.transpose_ms(a.rows, n);
      break;
    }
    case AggregatorBackend::DglFallback: {
      kernels::SpmmProblem p(a, n);
      opt.reduce = reduce;
      // DGL's generic path zero-initializes the output and stages the
      // edge-functor dispatch in separate launches around the reduce
      // kernel.
      ms = kernels::run_spmm(kernels::SpmmAlgo::DglFallback, p, opt).time_ms() +
           2.0 * cost_.launch_ms();
      break;
    }
    case AggregatorBackend::PyGMessagePassing: {
      ms = cost_.pyg_message_passing_ms(a.nnz(), n, a.rows);
      break;
    }
    case AggregatorBackend::GeSpMM: {
      kernels::SpmmProblem p(a, n);
      opt.reduce = reduce;
      ms = kernels::run_spmm(kernels::SpmmAlgo::GeSpMM, p, opt).time_ms();
      break;
    }
  }
  time_cache_[key] = ms;
  return ms;
}

AggregationResult aggregate_forward(const sparse::Csr& a, const Tensor& x,
                                    ReduceKind reduce) {
  AggregationResult res;
  const index_t n = x.cols();
  res.out = Tensor(a.rows, n);
  if (reduce == ReduceKind::Max) {
    res.argmax.assign(static_cast<std::size_t>(a.rows) * n, -1);
  }

#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < a.rows; ++i) {
    const index_t lo = a.rowptr[static_cast<std::size_t>(i)];
    const index_t hi = a.rowptr[static_cast<std::size_t>(i) + 1];
    for (index_t j = 0; j < n; ++j) {
      switch (reduce) {
        case ReduceKind::Sum:
        case ReduceKind::Mean: {
          value_t acc = 0.0f;
          for (index_t p = lo; p < hi; ++p) {
            acc += a.val[static_cast<std::size_t>(p)] *
                   x.at(a.colind[static_cast<std::size_t>(p)], j);
          }
          if (reduce == ReduceKind::Mean && hi > lo) {
            acc /= static_cast<value_t>(hi - lo);
          }
          res.out.at(i, j) = acc;
          break;
        }
        case ReduceKind::Max: {
          value_t best = -std::numeric_limits<value_t>::infinity();
          index_t best_p = -1;
          for (index_t p = lo; p < hi; ++p) {
            const value_t v = a.val[static_cast<std::size_t>(p)] *
                              x.at(a.colind[static_cast<std::size_t>(p)], j);
            if (v > best) {
              best = v;
              best_p = p;
            }
          }
          res.out.at(i, j) = best_p >= 0 ? best : 0.0f;
          res.argmax[static_cast<std::size_t>(i) * n + j] = best_p;
          break;
        }
        case ReduceKind::Min: {
          value_t best = std::numeric_limits<value_t>::infinity();
          for (index_t p = lo; p < hi; ++p) {
            best = std::min(best, a.val[static_cast<std::size_t>(p)] *
                                      x.at(a.colind[static_cast<std::size_t>(p)], j));
          }
          res.out.at(i, j) = hi > lo ? best : 0.0f;
          break;
        }
      }
    }
  }
  return res;
}

Tensor aggregate_backward_sum(const sparse::Csr& at, const Tensor& dy) {
  // dX = A^T dY, computed as another SpMM over the transposed operand.
  const auto r = aggregate_forward(at, dy, ReduceKind::Sum);
  return r.out;
}

Tensor aggregate_backward_max(const sparse::Csr& a, const std::vector<index_t>& argmax,
                              const Tensor& dy, index_t x_rows) {
  Tensor dx(x_rows, dy.cols());
  const index_t n = dy.cols();
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const index_t p = argmax[static_cast<std::size_t>(i) * n + j];
      if (p < 0) continue;
      dx.at(a.colind[static_cast<std::size_t>(p)], j) +=
          a.val[static_cast<std::size_t>(p)] * dy.at(i, j);
    }
  }
  return dx;
}

}  // namespace gespmm::gnn
