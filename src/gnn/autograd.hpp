#pragma once
/// \file autograd.hpp
/// A small tape-based autograd engine. Each operator computes its value on
/// the host and charges its device time to the OpProfiler (forward and
/// backward alike), which is how the end-to-end benchmarks measure "CUDA
/// time" the way the paper does with the PyTorch profiler.

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "gnn/aggregation.hpp"
#include "gnn/device_cost.hpp"
#include "gnn/profiler.hpp"
#include "gnn/tensor.hpp"

namespace gespmm::gnn {

struct Var {
  Tensor value;
  Tensor grad;
  bool requires_grad = false;
  /// Applies this node's chain rule, accumulating into parents' grads.
  std::function<void()> backward_fn;

  explicit Var(Tensor v, bool rg = false)
      : value(std::move(v)), grad(value.rows(), value.cols()), requires_grad(rg) {}

  void add_grad(const Tensor& g) {
    for (std::size_t i = 0; i < grad.size(); ++i) grad.flat()[i] += g.flat()[i];
  }
  void zero_grad() { grad = Tensor(value.rows(), value.cols()); }
};

using VarPtr = std::shared_ptr<Var>;

/// The training context: owns the tape, the profiler and the cost model.
class Engine {
 public:
  explicit Engine(gpusim::DeviceSpec dev) : cost_(std::move(dev)) {}

  OpProfiler& profiler() { return profiler_; }
  const DeviceCost& cost() const { return cost_; }

  /// Leaf without gradient (inputs / constants).
  VarPtr input(Tensor v);
  /// Leaf with gradient (trainable parameter) — also registered for the
  /// optimizer.
  VarPtr param(Tensor v);
  std::span<const VarPtr> params() const { return params_; }

  // --- operators ---
  VarPtr matmul(const VarPtr& x, const VarPtr& w);
  VarPtr add_bias(const VarPtr& x, const VarPtr& b);
  VarPtr relu(const VarPtr& x);
  VarPtr concat(const VarPtr& a, const VarPtr& b);
  /// Inverted dropout (train-mode): zero with probability `p`, scale
  /// survivors by 1/(1-p). Deterministic per (seed, call); the mask is
  /// shared with the backward pass. DGL's GCN example applies dropout
  /// before each graph convolution, and it contributes CUDA time to the
  /// Table I denominator.
  VarPtr dropout(const VarPtr& x, double p, std::uint64_t seed);
  /// Graph aggregation through a framework backend (forward + backward
  /// both priced as sparse ops).
  VarPtr aggregate(const GnnGraph& g, const VarPtr& x, AggregatorBackend backend,
                   ReduceKind reduce);

  /// Log-softmax + NLL loss; seeds the backward pass. Returns loss and
  /// accuracy over `labels`.
  struct LossInfo {
    double loss;
    double accuracy;
  };
  LossInfo softmax_cross_entropy(const VarPtr& logits, std::span<const int> labels);

  /// Reverse the tape, invoking each node's backward. Call after
  /// softmax_cross_entropy.
  void backward();

  /// Clear tape and gradients (start of an iteration).
  void zero_grad_and_tape();

 private:
  VarPtr track(VarPtr v);

  DeviceCost cost_;
  OpProfiler profiler_;
  std::vector<VarPtr> tape_;
  std::vector<VarPtr> params_;
};

/// Adam optimizer over the engine's parameters; charges Optimizer time.
class Adam {
 public:
  Adam(Engine& eng, double lr = 1e-2, double beta1 = 0.9, double beta2 = 0.999,
       double eps = 1e-8);
  void step();

 private:
  Engine* eng_;
  double lr_, beta1_, beta2_, eps_;
  int t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace gespmm::gnn
