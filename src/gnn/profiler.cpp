#include "gnn/profiler.hpp"

#include <algorithm>
#include <cstdio>

namespace gespmm::gnn {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::Spmm: return "SpMM";
    case OpKind::SpmmLike: return "SpMM-like";
    case OpKind::Transpose: return "Transpose";
    case OpKind::Gemm: return "GEMM";
    case OpKind::Elementwise: return "Elementwise";
    case OpKind::LossSoftmax: return "Loss/Softmax";
    case OpKind::Optimizer: return "Optimizer";
  }
  return "?";
}

double OpProfiler::total_ms() const {
  double t = 0.0;
  for (const auto& [k, e] : entries_) t += e.total_ms;
  return t;
}

double OpProfiler::total_ms(OpKind kind) const {
  double t = 0.0;
  for (const auto& [k, e] : entries_) {
    if (k.first == kind) t += e.total_ms;
  }
  return t;
}

double OpProfiler::fraction(OpKind kind) const {
  const double total = total_ms();
  return total > 0.0 ? total_ms(kind) / total : 0.0;
}

std::vector<OpProfiler::Row> OpProfiler::rows() const {
  std::vector<Row> out;
  const double total = total_ms();
  for (const auto& [k, e] : entries_) {
    out.push_back({k.first, k.second, e.calls, e.total_ms,
                   total > 0.0 ? 100.0 * e.total_ms / total : 0.0});
  }
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return a.total_ms > b.total_ms; });
  return out;
}

std::string OpProfiler::report() const {
  std::string s;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-14s %-28s %8s %12s %7s\n", "kind", "op", "calls",
                "cuda_ms", "%");
  s += buf;
  for (const auto& r : rows()) {
    std::snprintf(buf, sizeof(buf), "%-14s %-28s %8llu %12.4f %6.1f%%\n",
                  op_kind_name(r.kind), r.name.c_str(),
                  static_cast<unsigned long long>(r.calls), r.total_ms, r.percent);
    s += buf;
  }
  std::snprintf(buf, sizeof(buf), "total cuda time: %.4f ms\n", total_ms());
  s += buf;
  return s;
}

}  // namespace gespmm::gnn
