#pragma once
/// \file profiler.hpp
/// Per-operator CUDA-time accounting in the style of the PyTorch autograd
/// profiler the paper uses ("Percentage of CUDA time, reported by PyTorch
/// autograd profiler", Table I footnote).

#include <map>
#include <string>
#include <vector>

namespace gespmm::gnn {

enum class OpKind {
  Spmm,        ///< sparse aggregation (standard sum)
  SpmmLike,    ///< sparse aggregation with custom reduce (pooling)
  Transpose,   ///< layout fixes (csrmm2 column-major output)
  Gemm,        ///< dense matmul
  Elementwise, ///< bias/ReLU/copies
  LossSoftmax, ///< softmax + loss
  Optimizer,   ///< Adam updates
};

const char* op_kind_name(OpKind k);

/// Accumulates (kind, name) -> {calls, total_ms}.
class OpProfiler {
 public:
  void record(OpKind kind, const std::string& name, double ms) {
    auto& e = entries_[{kind, name}];
    ++e.calls;
    e.total_ms += ms;
  }

  void reset() { entries_.clear(); }

  struct Row {
    OpKind kind;
    std::string name;
    std::uint64_t calls;
    double total_ms;
    double percent;
  };

  double total_ms() const;
  double total_ms(OpKind kind) const;
  /// Fraction of total CUDA time spent in `kind` (Table I's metric).
  double fraction(OpKind kind) const;
  /// Rows sorted by descending total time, with percentages filled in.
  std::vector<Row> rows() const;
  /// Render a PyTorch-profiler-style table.
  std::string report() const;

 private:
  struct Entry {
    std::uint64_t calls = 0;
    double total_ms = 0.0;
  };
  std::map<std::pair<OpKind, std::string>, Entry> entries_;
};

}  // namespace gespmm::gnn
