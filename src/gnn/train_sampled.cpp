#include "gnn/train_sampled.hpp"

#include "gnn/train.hpp"

namespace gespmm::gnn {

SampledTrainConfig::SampledTrainConfig() : device(gpusim::gtx1080ti()) {}

SampledTrainResult train_sampled(const sparse::GraphDataset& data,
                                 const SampledTrainConfig& cfg) {
  const Tensor features = synthetic_features(data, data.feature_dim, 0xFEA7);
  const std::vector<int> labels = synthetic_labels(data, 0x1ABE1);
  const int classes = std::max(2, data.num_classes);

  Engine eng(cfg.device);
  // SAGE-mean weights: layer l maps (l == 0 ? in : hidden) -> out.
  std::vector<VarPtr> w, b;
  int in = data.feature_dim;
  for (int l = 0; l < cfg.num_layers; ++l) {
    const bool last = l + 1 == cfg.num_layers;
    const int out = last ? classes : cfg.hidden_feats;
    w.push_back(eng.param(Tensor::glorot(in, out, 0x5A6E + static_cast<std::uint64_t>(l))));
    b.push_back(eng.param(Tensor(1, out)));
    in = out;
  }
  Adam opt(eng, cfg.lr);

  SampledTrainResult res;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto batches = sparse::make_batches(
        data.adj.rows, cfg.batch_size, cfg.seed + static_cast<std::uint64_t>(epoch));
    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
      sparse::SampleOptions so;
      so.fanout = cfg.fanout;
      so.seed = cfg.seed * 77 + static_cast<std::uint64_t>(epoch) * 1009 + bi;
      const auto blocks =
          sparse::sample_blocks(data.adj, batches[bi], cfg.num_layers, so);

      eng.zero_grad_and_tape();
      // Gather the deepest frontier's features.
      const auto& frontier = blocks.front().input_nodes;
      Tensor x(static_cast<index_t>(frontier.size()), features.cols());
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        for (index_t j = 0; j < features.cols(); ++j) {
          x.at(static_cast<index_t>(i), j) = features.at(frontier[i], j);
        }
      }
      VarPtr h = eng.input(std::move(x));
      std::vector<GnnGraph> graphs;  // keep alive for backward
      graphs.reserve(blocks.size());
      for (std::size_t l = 0; l < blocks.size(); ++l) {
        graphs.emplace_back(blocks[l].adj, cfg.device);
        res.total_sampled_nnz += blocks[l].adj.nnz();
      }
      for (std::size_t l = 0; l < blocks.size(); ++l) {
        VarPtr agg = eng.aggregate(graphs[l], h, cfg.backend, kernels::ReduceKind::Sum);
        VarPtr lin = eng.add_bias(eng.matmul(agg, w[l]), b[l]);
        h = (l + 1 == blocks.size()) ? lin : eng.relu(lin);
      }
      // Loss on the batch's output nodes.
      std::vector<int> batch_labels;
      batch_labels.reserve(blocks.back().output_nodes.size());
      for (index_t v : blocks.back().output_nodes) {
        batch_labels.push_back(labels[static_cast<std::size_t>(v)]);
      }
      const auto loss = eng.softmax_cross_entropy(h, batch_labels);
      eng.backward();
      opt.step();
      if (res.num_batches == 0) res.first_loss = loss.loss;
      res.final_loss = loss.loss;
      ++res.num_batches;
    }
  }
  res.cuda_time_ms = eng.profiler().total_ms();
  res.spmm_ms = eng.profiler().total_ms(OpKind::Spmm);
  return res;
}

}  // namespace gespmm::gnn
