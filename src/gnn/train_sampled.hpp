#pragma once
/// \file train_sampled.hpp
/// GraphSAGE mini-batch training over sampled blocks (paper refs [4],
/// [22]; Section II-B). Every batch samples a *fresh* bipartite operand
/// per layer, so any kernel that needs per-matrix preprocessing pays it
/// again on every single step — the amortization argument behind
/// GE-SpMM's CSR-native design, measurable here.

#include "gnn/autograd.hpp"
#include "sparse/datasets.hpp"
#include "sparse/sampling.hpp"

namespace gespmm::gnn {

struct SampledTrainConfig {
  int num_layers = 2;
  int hidden_feats = 16;
  index_t batch_size = 256;
  int fanout = 10;
  int epochs = 1;
  double lr = 1e-2;
  AggregatorBackend backend = AggregatorBackend::GeSpMM;
  gpusim::DeviceSpec device;
  std::uint64_t seed = 1;

  SampledTrainConfig();  // defaults to gtx1080ti
};

struct SampledTrainResult {
  double first_loss = 0.0;
  double final_loss = 0.0;
  double cuda_time_ms = 0.0;
  double spmm_ms = 0.0;
  int num_batches = 0;
  /// Total operand nnz consumed across all sampled blocks (each one a
  /// distinct matrix — the reason preprocessing cannot amortize).
  std::int64_t total_sampled_nnz = 0;
};

/// Mini-batch GraphSAGE-mean training: per batch, sample `num_layers`
/// blocks and run aggregate -> linear -> ReLU per block, cross-entropy on
/// the batch nodes.
SampledTrainResult train_sampled(const sparse::GraphDataset& data,
                                 const SampledTrainConfig& cfg);

}  // namespace gespmm::gnn
