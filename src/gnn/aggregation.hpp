#pragma once
/// \file aggregation.hpp
/// Graph aggregation: the operator GE-SpMM accelerates inside GNN
/// frameworks, with the four backends the paper compares end to end:
///  - DglCusparse:  csrmm2 + cuBLAS transpose (DGL's SpMM path)
///  - DglFallback:  DGL's generic kernel (its SpMM-like path)
///  - PyGMessagePassing: gather -> edge messages -> scatter reduce
///  - GeSpMM:       this library's kernel (SpMM and SpMM-like alike)
/// Values are computed on the host; device time comes from the simulator
/// (cached per shape — kernel time is value-independent) or the analytic
/// cost models.

#include <map>
#include <memory>
#include <vector>

#include "gnn/device_cost.hpp"
#include "gnn/tensor.hpp"
#include "kernels/registry.hpp"
#include "kernels/semiring.hpp"
#include "sparse/csr.hpp"

namespace gespmm::gnn {

using kernels::ReduceKind;

enum class AggregatorBackend { DglCusparse, DglFallback, PyGMessagePassing, GeSpMM };

const char* backend_name(AggregatorBackend b);

/// A graph prepared for GNN training: forward operand plus its transpose
/// (for backward), with a per-shape device-time cache.
class GnnGraph {
 public:
  GnnGraph(sparse::Csr adj, gpusim::DeviceSpec dev);

  const sparse::Csr& forward_csr() const { return fwd_; }
  const sparse::Csr& backward_csr() const { return bwd_; }
  const gpusim::DeviceSpec& device() const { return dev_; }
  index_t num_nodes() const { return fwd_.rows; }

  /// Simulated/modelled device time of one aggregation with the given
  /// backend and width. Cached — the simulator runs once per distinct
  /// (backend, reduce, n, transposed) shape.
  double aggregation_time_ms(AggregatorBackend backend, ReduceKind reduce, index_t n,
                             bool transposed) const;

 private:
  sparse::Csr fwd_;
  sparse::Csr bwd_;
  gpusim::DeviceSpec dev_;
  DeviceCost cost_;
  /// Content fingerprint of fwd_ — keys the process-wide simulation-time
  /// cache so repeated experiments on the same graph (benches sweep many
  /// model settings) pay for each simulation once.
  std::uint64_t fingerprint_ = 0;
};

/// Functional forward aggregation; for Max the winning nonzero index per
/// output element is recorded for the backward pass.
struct AggregationResult {
  Tensor out;
  /// argmax[i * n + j] = index into colind/val of the winner, or -1.
  std::vector<index_t> argmax;
};
AggregationResult aggregate_forward(const sparse::Csr& a, const Tensor& x,
                                    ReduceKind reduce);

/// Backward of sum-aggregation: dX = A^T * dY (A^T passed explicitly).
Tensor aggregate_backward_sum(const sparse::Csr& a_transposed, const Tensor& dy);

/// Backward of max-aggregation: route each output gradient to the winning
/// input row. `x_rows` is the input's row count.
Tensor aggregate_backward_max(const sparse::Csr& a, const std::vector<index_t>& argmax,
                              const Tensor& dy, index_t x_rows);

}  // namespace gespmm::gnn
