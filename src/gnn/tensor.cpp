#include "gnn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sparse/rng.hpp"

namespace gespmm::gnn {

Tensor Tensor::glorot(index_t rows, index_t cols, std::uint64_t seed) {
  Tensor t(rows, cols);
  sparse::SplitMix64 rng(seed);
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (auto& v : t.data_) v = rng.next_float(-bound, bound);
  return t;
}

namespace {

void check(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.cols() == b.rows(), "matmul: inner dimensions differ");
  Tensor c(a.rows(), b.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = 0; k < a.cols(); ++k) {
      const value_t aik = a.at(i, k);
      if (aik == 0.0f) continue;
      for (index_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  check(a.cols() == b.cols(), "matmul_bt: inner dimensions differ");
  Tensor c(a.rows(), b.rows());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.rows(); ++j) {
      value_t acc = 0.0f;
      for (index_t k = 0; k < a.cols(); ++k) acc += a.at(i, k) * b.at(j, k);
      c.at(i, j) = acc;
    }
  }
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  check(a.rows() == b.rows(), "matmul_at: inner dimensions differ");
  Tensor c(a.cols(), b.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.cols(); ++i) {
    for (index_t k = 0; k < a.rows(); ++k) {
      const value_t aki = a.at(k, i);
      if (aki == 0.0f) continue;
      for (index_t j = 0; j < b.cols(); ++j) c.at(i, j) += aki * b.at(k, j);
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  Tensor t(a.cols(), a.rows());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check(a.same_shape(b), "add: shape mismatch");
  Tensor c(a.rows(), a.cols());
  for (std::size_t i = 0; i < c.size(); ++i) c.flat()[i] = a.flat()[i] + b.flat()[i];
  return c;
}

Tensor add_bias(const Tensor& a, const Tensor& bias) {
  check(bias.rows() == 1 && bias.cols() == a.cols(), "add_bias: bias must be 1 x cols");
  Tensor c(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) c.at(i, j) = a.at(i, j) + bias.at(0, j);
  }
  return c;
}

Tensor relu(const Tensor& a) {
  Tensor c(a.rows(), a.cols());
  for (std::size_t i = 0; i < c.size(); ++i) c.flat()[i] = std::max(0.0f, a.flat()[i]);
  return c;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  check(a.same_shape(b), "hadamard: shape mismatch");
  Tensor c(a.rows(), a.cols());
  for (std::size_t i = 0; i < c.size(); ++i) c.flat()[i] = a.flat()[i] * b.flat()[i];
  return c;
}

Tensor scale(const Tensor& a, value_t s) {
  Tensor c(a.rows(), a.cols());
  for (std::size_t i = 0; i < c.size(); ++i) c.flat()[i] = a.flat()[i] * s;
  return c;
}

Tensor colsum(const Tensor& a) {
  Tensor c(1, a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) c.at(0, j) += a.at(i, j);
  }
  return c;
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  check(a.rows() == b.rows(), "concat_cols: row mismatch");
  Tensor c(a.rows(), a.cols() + b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) c.at(i, j) = a.at(i, j);
    for (index_t j = 0; j < b.cols(); ++j) c.at(i, a.cols() + j) = b.at(i, j);
  }
  return c;
}

void split_cols(const Tensor& g, index_t a_cols, Tensor& ga, Tensor& gb) {
  ga = Tensor(g.rows(), a_cols);
  gb = Tensor(g.rows(), g.cols() - a_cols);
  for (index_t i = 0; i < g.rows(); ++i) {
    for (index_t j = 0; j < a_cols; ++j) ga.at(i, j) = g.at(i, j);
    for (index_t j = a_cols; j < g.cols(); ++j) gb.at(i, j - a_cols) = g.at(i, j);
  }
}

Tensor log_softmax(const Tensor& a) {
  Tensor c(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    value_t mx = a.at(i, 0);
    for (index_t j = 1; j < a.cols(); ++j) mx = std::max(mx, a.at(i, j));
    double sum = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) sum += std::exp(static_cast<double>(a.at(i, j) - mx));
    const value_t logz = mx + static_cast<value_t>(std::log(sum));
    for (index_t j = 0; j < a.cols(); ++j) c.at(i, j) = a.at(i, j) - logz;
  }
  return c;
}

LossResult nll_loss(const Tensor& logp, std::span<const int> labels) {
  check(static_cast<std::size_t>(logp.rows()) == labels.size(),
        "nll_loss: label count mismatch");
  LossResult res;
  res.grad_logits = Tensor(logp.rows(), logp.cols());
  const double inv_n = 1.0 / std::max<index_t>(1, logp.rows());
  int correct = 0;
  for (index_t i = 0; i < logp.rows(); ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    res.loss -= static_cast<double>(logp.at(i, y)) * inv_n;
    index_t best = 0;
    for (index_t j = 1; j < logp.cols(); ++j) {
      if (logp.at(i, j) > logp.at(i, best)) best = j;
    }
    if (best == y) ++correct;
    // d(mean NLL)/d(logit) = (softmax - onehot) / n.
    for (index_t j = 0; j < logp.cols(); ++j) {
      const value_t soft = std::exp(logp.at(i, j));
      res.grad_logits.at(i, j) =
          static_cast<value_t>((soft - (j == y ? 1.0f : 0.0f)) * inv_n);
    }
  }
  res.accuracy = static_cast<double>(correct) * inv_n;
  return res;
}

}  // namespace gespmm::gnn
