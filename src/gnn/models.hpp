#pragma once
/// \file models.hpp
/// The GNN models of the paper's end-to-end evaluation:
///  - GCN (Kipf & Welling):         H' = sigma(A_hat H W + b)
///  - GraphSAGE-GCN (Hamilton et al.): H' = sigma(mean-agg(A, H) W + b)
///    (internally a standard SpMM over the row-normalized adjacency)
///  - GraphSAGE-pool:               H' = sigma([H | max-agg(A, sigma(H W_p + b_p))] W)
///    (internally an SpMM-like with max reduction — not supported by
///     cuSPARSE, which is the point of Table IX)
/// Each model is parameterized by (num_layers, hidden_feats) exactly like
/// the (x, y) labels of Figs. 13/14.

#include <memory>
#include <string>
#include <vector>

#include "gnn/autograd.hpp"

namespace gespmm::gnn {

enum class ModelKind { Gcn, SageGcn, SagePool };

const char* model_kind_name(ModelKind k);

struct ModelConfig {
  ModelKind kind = ModelKind::Gcn;
  int num_layers = 2;        ///< number of hidden graph layers ("x" in the paper)
  int hidden_feats = 16;     ///< hidden width ("y" in the paper)
  int in_feats = 0;
  int num_classes = 0;
  AggregatorBackend backend = AggregatorBackend::DglCusparse;
  /// Backend used for SpMM-like (pooling) aggregations; DGL pairs
  /// csrmm2-SpMM with its fallback for SpMM-like.
  AggregatorBackend spmm_like_backend = AggregatorBackend::DglFallback;
  /// Dropout probability applied to layer inputs (0 disables; DGL's GCN
  /// example default is 0.5).
  double dropout = 0.0;
};

/// A multi-layer GNN with parameters registered in an Engine.
class Model {
 public:
  Model(Engine& eng, const GnnGraph& graph, const ModelConfig& cfg);

  /// Forward pass producing logits (num_nodes x num_classes).
  VarPtr forward(const VarPtr& features);

  const ModelConfig& config() const { return cfg_; }

 private:
  VarPtr gcn_layer(const VarPtr& h, std::size_t layer, bool last);
  VarPtr sage_gcn_layer(const VarPtr& h, std::size_t layer, bool last);
  VarPtr sage_pool_layer(const VarPtr& h, std::size_t layer, bool last);

  Engine* eng_;
  const GnnGraph* graph_;
  ModelConfig cfg_;
  // Per layer: main weight + bias; pool layers add the pooling transform.
  std::vector<VarPtr> w_, b_, w_pool_, b_pool_;
};

}  // namespace gespmm::gnn
