#include "gnn/models.hpp"

#include <stdexcept>

namespace gespmm::gnn {

const char* model_kind_name(ModelKind k) {
  switch (k) {
    case ModelKind::Gcn: return "GCN";
    case ModelKind::SageGcn: return "GraphSAGE-GCN";
    case ModelKind::SagePool: return "GraphSAGE-pool";
  }
  return "?";
}

Model::Model(Engine& eng, const GnnGraph& graph, const ModelConfig& cfg)
    : eng_(&eng), graph_(&graph), cfg_(cfg) {
  if (cfg.in_feats <= 0 || cfg.num_classes <= 0) {
    throw std::invalid_argument("model: in_feats and num_classes are required");
  }
  if (cfg.num_layers < 1) throw std::invalid_argument("model: need >= 1 layer");
  int in = cfg.in_feats;
  for (int l = 0; l < cfg.num_layers + 1; ++l) {
    // Layer l of num_layers hidden layers plus the output layer; the last
    // layer maps to num_classes (the paper notes the last layer's small N
    // is where GE-SpMM is least competitive).
    const bool last = l == cfg.num_layers;
    const int out = last ? cfg.num_classes : cfg.hidden_feats;
    const std::uint64_t seed = 0xB0B0 + static_cast<std::uint64_t>(l) * 131;
    if (cfg.kind == ModelKind::SagePool) {
      // Pooling transform keeps the width, then [self | pooled] doubles the
      // concat input of the main weight.
      w_pool_.push_back(eng.param(Tensor::glorot(in, in, seed ^ 0xF00)));
      b_pool_.push_back(eng.param(Tensor(1, in)));
      w_.push_back(eng.param(Tensor::glorot(2 * in, out, seed)));
    } else {
      w_.push_back(eng.param(Tensor::glorot(in, out, seed)));
    }
    b_.push_back(eng.param(Tensor(1, out)));
    in = out;
  }
}

VarPtr Model::gcn_layer(const VarPtr& h, std::size_t layer, bool last) {
  // DGL's GraphConv: multiply by W on the cheaper side of the aggregation.
  const auto& w = w_[layer];
  VarPtr in = h;
  if (cfg_.dropout > 0.0) {
    in = eng_->dropout(h, cfg_.dropout, 0xD120 + static_cast<std::uint64_t>(layer));
  }
  VarPtr out;
  if (in->value.cols() > w->value.cols()) {
    VarPtr hw = eng_->matmul(in, w);
    out = eng_->aggregate(*graph_, hw, cfg_.backend, ReduceKind::Sum);
  } else {
    VarPtr ah = eng_->aggregate(*graph_, in, cfg_.backend, ReduceKind::Sum);
    out = eng_->matmul(ah, w);
  }
  out = eng_->add_bias(out, b_[layer]);
  return last ? out : eng_->relu(out);
}

VarPtr Model::sage_gcn_layer(const VarPtr& h, std::size_t layer, bool last) {
  // GraphSAGE-GCN aggregator: mean over neighbours (the graph operand is
  // row-normalized, so the device op is a standard SpMM), then linear.
  VarPtr agg = eng_->aggregate(*graph_, h, cfg_.backend, ReduceKind::Sum);
  VarPtr out = eng_->add_bias(eng_->matmul(agg, w_[layer]), b_[layer]);
  return last ? out : eng_->relu(out);
}

VarPtr Model::sage_pool_layer(const VarPtr& h, std::size_t layer, bool last) {
  // GraphSAGE-pool: transform, max-pool over neighbours (SpMM-like),
  // concat with self features, then linear.
  VarPtr hp = eng_->relu(
      eng_->add_bias(eng_->matmul(h, w_pool_[layer]), b_pool_[layer]));
  VarPtr pooled =
      eng_->aggregate(*graph_, hp, cfg_.spmm_like_backend, ReduceKind::Max);
  VarPtr cat = eng_->concat(h, pooled);
  VarPtr out = eng_->add_bias(eng_->matmul(cat, w_[layer]), b_[layer]);
  return last ? out : eng_->relu(out);
}

VarPtr Model::forward(const VarPtr& features) {
  VarPtr h = features;
  const std::size_t total = w_.size();
  for (std::size_t l = 0; l < total; ++l) {
    const bool last = l + 1 == total;
    switch (cfg_.kind) {
      case ModelKind::Gcn: h = gcn_layer(h, l, last); break;
      case ModelKind::SageGcn: h = sage_gcn_layer(h, l, last); break;
      case ModelKind::SagePool: h = sage_pool_layer(h, l, last); break;
    }
  }
  return h;
}

}  // namespace gespmm::gnn
