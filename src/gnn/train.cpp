#include "gnn/train.hpp"

#include "sparse/rng.hpp"

namespace gespmm::gnn {

TrainConfig::TrainConfig() : device(gpusim::gtx1080ti()) {}

std::vector<int> synthetic_labels(const sparse::GraphDataset& data, std::uint64_t seed) {
  // Community-correlated labels: vertex id bucket perturbed by noise, so
  // the (id-correlated) features carry signal.
  sparse::SplitMix64 rng(seed);
  std::vector<int> labels(static_cast<std::size_t>(data.adj.rows));
  const int c = std::max(2, data.num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int base = static_cast<int>(i * static_cast<std::size_t>(c) / labels.size());
    labels[i] = rng.next_double() < 0.9 ? base : static_cast<int>(rng.next_below(c));
  }
  return labels;
}

Tensor synthetic_features(const sparse::GraphDataset& data, int feature_dim,
                          std::uint64_t seed) {
  sparse::SplitMix64 rng(seed);
  Tensor x(data.adj.rows, feature_dim);
  const int c = std::max(2, data.num_classes);
  for (index_t i = 0; i < x.rows(); ++i) {
    const int cls = static_cast<int>(static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(c) / x.rows());
    for (index_t j = 0; j < feature_dim; ++j) {
      // Class-dependent mean + noise.
      const float mean = (j % c == cls) ? 0.8f : 0.0f;
      x.at(i, j) = mean + rng.next_float(-0.3f, 0.3f);
    }
  }
  return x;
}

TrainResult train(const sparse::GraphDataset& data, const TrainConfig& cfg) {
  // GCN uses the symmetric normalization; SAGE aggregators use the
  // row-normalized (mean) operand.
  const sparse::Csr operand = cfg.model.kind == ModelKind::Gcn
                                  ? sparse::gcn_normalize(data.adj)
                                  : sparse::row_normalize(data.adj);
  GnnGraph graph(operand, cfg.device);

  Engine eng(cfg.device);
  ModelConfig mc = cfg.model;
  if (mc.in_feats == 0) mc.in_feats = data.feature_dim;
  if (mc.num_classes == 0) mc.num_classes = data.num_classes;
  Model model(eng, graph, mc);

  const Tensor features = synthetic_features(data, mc.in_feats, 0xFEA7 + data.adj.rows);
  const std::vector<int> labels = synthetic_labels(data, 0x1ABE1 + data.adj.rows);

  Adam opt(eng, cfg.lr);
  TrainResult res;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    eng.zero_grad_and_tape();
    VarPtr x = eng.input(features);
    VarPtr logits = model.forward(x);
    const auto loss = eng.softmax_cross_entropy(logits, labels);
    eng.backward();
    opt.step();
    if (epoch == 0) res.first_loss = loss.loss;
    res.final_loss = loss.loss;
    res.final_accuracy = loss.accuracy;
  }

  const auto& prof = eng.profiler();
  res.cuda_time_ms = prof.total_ms();
  res.spmm_ms = prof.total_ms(OpKind::Spmm);
  res.spmm_like_ms = prof.total_ms(OpKind::SpmmLike);
  res.gemm_ms = prof.total_ms(OpKind::Gemm);
  // The paper's "SpMM percentage" covers the sparse aggregation work DGL
  // runs, including the layout fix csrmm2 forces.
  res.spmm_fraction = res.cuda_time_ms > 0.0
                          ? (res.spmm_ms + res.spmm_like_ms +
                             prof.total_ms(OpKind::Transpose)) /
                                res.cuda_time_ms
                          : 0.0;
  res.profile_report = prof.report();
  return res;
}

}  // namespace gespmm::gnn
