#include "gnn/autograd.hpp"

#include <cmath>

#include "sparse/rng.hpp"

namespace gespmm::gnn {

VarPtr Engine::track(VarPtr v) {
  tape_.push_back(v);
  return v;
}

VarPtr Engine::input(Tensor v) { return std::make_shared<Var>(std::move(v), false); }

VarPtr Engine::param(Tensor v) {
  auto p = std::make_shared<Var>(std::move(v), true);
  params_.push_back(p);
  return p;
}

VarPtr Engine::matmul(const VarPtr& x, const VarPtr& w) {
  auto out = std::make_shared<Var>(gnn::matmul(x->value, w->value), true);
  profiler_.record(OpKind::Gemm, "matmul",
                   cost_.gemm_ms(x->value.rows(), x->value.cols(), w->value.cols()));
  VarPtr xc = x, wc = w;
  Var* op = out.get();
  out->backward_fn = [this, xc, wc, op]() {
    // dX = dY W^T ; dW = X^T dY — both GEMMs on the device.
    if (xc->requires_grad) {
      xc->add_grad(matmul_bt(op->grad, wc->value));
      profiler_.record(OpKind::Gemm, "matmul.dX",
                       cost_.gemm_ms(op->grad.rows(), op->grad.cols(), wc->value.rows()));
    }
    wc->add_grad(matmul_at(xc->value, op->grad));
    profiler_.record(OpKind::Gemm, "matmul.dW",
                     cost_.gemm_ms(xc->value.cols(), xc->value.rows(), op->grad.cols()));
  };
  return track(out);
}

VarPtr Engine::add_bias(const VarPtr& x, const VarPtr& b) {
  auto out = std::make_shared<Var>(gnn::add_bias(x->value, b->value), true);
  profiler_.record(OpKind::Elementwise, "add_bias",
                   cost_.elementwise_ms(2 * x->value.bytes()));
  VarPtr xc = x, bc = b;
  Var* op = out.get();
  out->backward_fn = [this, xc, bc, op]() {
    if (xc->requires_grad) xc->add_grad(op->grad);
    bc->add_grad(colsum(op->grad));
    profiler_.record(OpKind::Elementwise, "add_bias.bwd",
                     cost_.elementwise_ms(op->grad.bytes()));
  };
  return track(out);
}

VarPtr Engine::relu(const VarPtr& x) {
  auto out = std::make_shared<Var>(gnn::relu(x->value), true);
  profiler_.record(OpKind::Elementwise, "relu", cost_.elementwise_ms(2 * x->value.bytes()));
  VarPtr xc = x;
  Var* op = out.get();
  out->backward_fn = [this, xc, op]() {
    if (!xc->requires_grad) return;
    Tensor mask(op->value.rows(), op->value.cols());
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask.flat()[i] = op->value.flat()[i] > 0.0f ? 1.0f : 0.0f;
    }
    xc->add_grad(hadamard(op->grad, mask));
    profiler_.record(OpKind::Elementwise, "relu.bwd",
                     cost_.elementwise_ms(2 * op->grad.bytes()));
  };
  return track(out);
}

VarPtr Engine::dropout(const VarPtr& x, double p, std::uint64_t seed) {
  if (p < 0.0 || p >= 1.0) throw std::invalid_argument("dropout: p must be in [0, 1)");
  auto mask = std::make_shared<Tensor>(x->value.rows(), x->value.cols());
  {
    sparse::SplitMix64 rng(seed);
    const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
    for (std::size_t i = 0; i < mask->size(); ++i) {
      mask->flat()[i] = rng.next_double() < p ? 0.0f : keep_scale;
    }
  }
  auto out = std::make_shared<Var>(hadamard(x->value, *mask), true);
  profiler_.record(OpKind::Elementwise, "dropout",
                   cost_.elementwise_ms(3 * x->value.bytes()));
  VarPtr xc = x;
  Var* op = out.get();
  out->backward_fn = [this, xc, op, mask]() {
    if (!xc->requires_grad) return;
    xc->add_grad(hadamard(op->grad, *mask));
    profiler_.record(OpKind::Elementwise, "dropout.bwd",
                     cost_.elementwise_ms(2 * op->grad.bytes()));
  };
  return track(out);
}

VarPtr Engine::concat(const VarPtr& a, const VarPtr& b) {
  auto out = std::make_shared<Var>(concat_cols(a->value, b->value), true);
  profiler_.record(OpKind::Elementwise, "concat",
                   cost_.elementwise_ms(2 * out->value.bytes()));
  VarPtr ac = a, bc = b;
  Var* op = out.get();
  out->backward_fn = [this, ac, bc, op]() {
    Tensor ga, gb;
    split_cols(op->grad, ac->value.cols(), ga, gb);
    if (ac->requires_grad) ac->add_grad(ga);
    if (bc->requires_grad) bc->add_grad(gb);
    profiler_.record(OpKind::Elementwise, "concat.bwd",
                     cost_.elementwise_ms(op->grad.bytes()));
  };
  return track(out);
}

VarPtr Engine::aggregate(const GnnGraph& g, const VarPtr& x, AggregatorBackend backend,
                         ReduceKind reduce) {
  auto fwd = aggregate_forward(g.forward_csr(), x->value, reduce);
  auto out = std::make_shared<Var>(std::move(fwd.out), true);
  const index_t n = x->value.cols();
  const bool is_like = reduce != ReduceKind::Sum;
  const OpKind kind = is_like ? OpKind::SpmmLike : OpKind::Spmm;
  profiler_.record(kind, std::string("aggregate.") + backend_name(backend),
                   g.aggregation_time_ms(backend, reduce, n, /*transposed=*/false));

  VarPtr xc = x;
  Var* op = out.get();
  auto argmax = std::make_shared<std::vector<index_t>>(std::move(fwd.argmax));
  out->backward_fn = [this, &g, xc, op, backend, reduce, kind, argmax, n]() {
    if (!xc->requires_grad) return;
    if (reduce == ReduceKind::Max) {
      xc->add_grad(aggregate_backward_max(g.forward_csr(), *argmax, op->grad,
                                          xc->value.rows()));
    } else {
      // Mean backward: route through A^T with the same 1/deg scaling
      // folded into values — our graphs pre-normalize, so sum suffices.
      xc->add_grad(aggregate_backward_sum(g.backward_csr(), op->grad));
    }
    profiler_.record(kind, std::string("aggregate.bwd.") + backend_name(backend),
                     g.aggregation_time_ms(backend, reduce, n, /*transposed=*/true));
  };
  return track(out);
}

Engine::LossInfo Engine::softmax_cross_entropy(const VarPtr& logits,
                                               std::span<const int> labels) {
  const Tensor logp = log_softmax(logits->value);
  auto res = nll_loss(logp, labels);
  profiler_.record(OpKind::LossSoftmax, "softmax_ce",
                   cost_.rowwise_ms(logits->value.rows(), logits->value.cols()));
  logits->add_grad(res.grad_logits);
  return {res.loss, res.accuracy};
}

void Engine::backward() {
  for (auto it = tape_.rbegin(); it != tape_.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

void Engine::zero_grad_and_tape() {
  tape_.clear();
  for (auto& p : params_) p->zero_grad();
}

Adam::Adam(Engine& eng, double lr, double beta1, double beta2, double eps)
    : eng_(&eng), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  for (const auto& p : eng.params()) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  std::int64_t total_params = 0;
  const auto params = eng_->params();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto& p = params[pi];
    total_params += static_cast<std::int64_t>(p->value.size());
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad.flat()[i];
      float& m = m_[pi].flat()[i];
      float& v = v_[pi].flat()[i];
      m = static_cast<float>(beta1_ * m + (1.0 - beta1_) * g);
      v = static_cast<float>(beta2_ * v + (1.0 - beta2_) * g * g);
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      p->value.flat()[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
  eng_->profiler().record(OpKind::Optimizer, "adam",
                          eng_->cost().adam_ms(total_params));
}

}  // namespace gespmm::gnn
