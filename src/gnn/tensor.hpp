#pragma once
/// \file tensor.hpp
/// Minimal 2-D row-major float tensor with the operations GNN models need.
/// Values are computed on the host (OpenMP); device *time* for each
/// operation is charged separately through gnn::DeviceCost + OpProfiler,
/// mirroring how the paper measures CUDA time with the PyTorch profiler.

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace gespmm::gnn {

using sparse::index_t;
using sparse::value_t;

class Tensor {
 public:
  Tensor() = default;
  Tensor(index_t rows, index_t cols, value_t fill = 0.0f)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill) {}

  static Tensor zeros(index_t rows, index_t cols) { return Tensor(rows, cols); }
  /// Glorot-style deterministic init.
  static Tensor glorot(index_t rows, index_t cols, std::uint64_t seed);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  std::uint64_t bytes() const { return data_.size() * sizeof(value_t); }

  value_t& at(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i) * cols_ + static_cast<std::size_t>(j)];
  }
  value_t at(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + static_cast<std::size_t>(j)];
  }
  std::span<value_t> flat() { return data_; }
  std::span<const value_t> flat() const { return data_; }

  bool same_shape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<value_t> data_;
};

// --- Value computations (host; OpenMP where it matters) ---

/// C = A * B (GEMM).
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A * B^T.
Tensor matmul_bt(const Tensor& a, const Tensor& b);
/// C = A^T * B.
Tensor matmul_at(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);
Tensor add(const Tensor& a, const Tensor& b);
/// Adds row-vector bias (1 x cols) to every row.
Tensor add_bias(const Tensor& a, const Tensor& bias);
Tensor relu(const Tensor& a);
/// Element-wise product (used by ReLU backward).
Tensor hadamard(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, value_t s);
/// Column-sum into a 1 x cols tensor (bias gradient).
Tensor colsum(const Tensor& a);
/// Concatenate along columns: [a | b].
Tensor concat_cols(const Tensor& a, const Tensor& b);
/// Split gradient of concat_cols back into the two parts.
void split_cols(const Tensor& g, index_t a_cols, Tensor& ga, Tensor& gb);

/// Row-wise log-softmax.
Tensor log_softmax(const Tensor& a);
/// Mean negative log-likelihood of `labels` under log-probabilities `logp`,
/// and its gradient w.r.t. the logits.
struct LossResult {
  double loss = 0.0;
  Tensor grad_logits;
  double accuracy = 0.0;
};
LossResult nll_loss(const Tensor& logits_logp, std::span<const int> labels);

}  // namespace gespmm::gnn
