#pragma once
/// \file device_cost.hpp
/// Analytic device-time models for the dense / auxiliary operators of a
/// GNN training step (the SpMM operators are *simulated*; everything else
/// is priced with roofline formulas). These produce the per-op "CUDA time"
/// the end-to-end experiments (paper Tables I/II/IX, Figs. 13/14) report.

#include <cstdint>

#include "gpusim/device.hpp"

namespace gespmm::gnn {

struct DeviceCost {
  gpusim::DeviceSpec dev;

  explicit DeviceCost(gpusim::DeviceSpec d) : dev(std::move(d)) {}

  double launch_ms() const { return dev.launch_overhead_us * 1e-3; }

  /// Dense GEMM (cuBLAS-like): max of compute roofline at ~65% of peak and
  /// memory roofline at ~75% of DRAM bandwidth.
  double gemm_ms(std::int64_t m, std::int64_t k, std::int64_t n) const {
    const double flops = 2.0 * static_cast<double>(m) * k * n;
    const double bytes = 4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                                static_cast<double>(m) * n);
    const double t_compute = flops / (dev.peak_gflops() * 0.65 * 1e9) * 1e3;
    const double t_mem = bytes / (dev.dram_bw_gbps * 0.75 * 1e9) * 1e3;
    return launch_ms() + std::max(t_compute, t_mem);
  }

  /// Element-wise kernel touching `bytes` (read + write counted by caller).
  double elementwise_ms(std::uint64_t bytes) const {
    return launch_ms() + static_cast<double>(bytes) / (dev.dram_bw_gbps * 0.8 * 1e9) * 1e3;
  }

  /// cuBLAS geam-style transpose of an m x n matrix (read + write, with the
  /// strided side achieving reduced efficiency). This is the layout fix DGL
  /// must run after csrmm2's column-major output (paper Section II-C).
  double transpose_ms(std::int64_t m, std::int64_t n) const {
    const double bytes = 2.0 * 4.0 * static_cast<double>(m) * n;
    return launch_ms() + bytes / (dev.dram_bw_gbps * 0.55 * 1e9) * 1e3;
  }

  /// Row-wise softmax + loss style kernel.
  double rowwise_ms(std::int64_t m, std::int64_t n) const {
    return elementwise_ms(static_cast<std::uint64_t>(8) * m * n);
  }

  /// PyG MessagePassing aggregation: `gather` materializes one message per
  /// edge (read B rows, write nnz x n messages), `scatter` reduces them
  /// (read messages, atomic-update outputs). Two kernel launches and
  /// ~3 full passes over the edge-message tensor — the traffic SpMM fusion
  /// avoids (paper Section II-C).
  double pyg_message_passing_ms(std::int64_t nnz, std::int64_t n,
                                std::int64_t rows) const {
    const double msg_bytes = 4.0 * static_cast<double>(nnz) * n;
    const double gather = msg_bytes * 2.0 / (dev.dram_bw_gbps * 0.6 * 1e9) * 1e3;
    const double scatter = (msg_bytes + 4.0 * static_cast<double>(rows) * n) /
                           (dev.dram_bw_gbps * 0.4 * 1e9) * 1e3;  // atomics
    return 2.0 * launch_ms() + gather + scatter;
  }

  /// Fixed overhead of a cuSPARSE csrmm2 call beyond the kernel itself
  /// (descriptor checks and one auxiliary launch).
  double csrmm2_call_overhead_ms() const { return launch_ms(); }

  /// Adam step over `params` parameters (4 tensors touched).
  double adam_ms(std::int64_t params) const {
    return launch_ms() + elementwise_ms(static_cast<std::uint64_t>(16) * params);
  }
};

}  // namespace gespmm::gnn
