#pragma once
/// \file train.hpp
/// Full-batch node-classification training loop: builds the model from a
/// dataset, trains with Adam, and returns the profiler's CUDA-time report
/// — the measurement underlying the paper's Tables I/II/IX and Figs 13/14.

#include <string>
#include <vector>

#include "gnn/models.hpp"
#include "sparse/datasets.hpp"

namespace gespmm::gnn {

struct TrainConfig {
  ModelConfig model;
  int epochs = 20;
  double lr = 1e-2;
  gpusim::DeviceSpec device;

  TrainConfig();  // defaults to gtx1080ti
};

struct TrainResult {
  double final_loss = 0.0;
  double first_loss = 0.0;
  double final_accuracy = 0.0;
  /// Total simulated device time over all epochs.
  double cuda_time_ms = 0.0;
  double spmm_ms = 0.0;
  double spmm_like_ms = 0.0;
  double gemm_ms = 0.0;
  /// Fraction of CUDA time in (SpMM + SpMM-like + the csrmm2 transpose fix).
  double spmm_fraction = 0.0;
  std::string profile_report;
};

/// Deterministic synthetic node labels for a dataset (feature-correlated so
/// training can actually reduce the loss).
std::vector<int> synthetic_labels(const sparse::GraphDataset& data, std::uint64_t seed);

/// Deterministic node features (dataset feature_dim may be overridden to
/// keep wide-feature graphs affordable in tests).
Tensor synthetic_features(const sparse::GraphDataset& data, int feature_dim,
                          std::uint64_t seed);

/// Train on a dataset and report timing + convergence.
TrainResult train(const sparse::GraphDataset& data, const TrainConfig& cfg);

}  // namespace gespmm::gnn
