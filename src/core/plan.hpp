#pragma once
/// \file plan.hpp
/// SpmmPlan: upload a sparse operand once and run many SpMM(-like)
/// operations against it — the pattern of GNN training, where the same
/// graph multiplies a new dense matrix every layer and every iteration.
///
/// A plan is *not* preprocessing in the paper's (disqualifying) sense: the
/// operand stays in plain CSR and constructing a plan moves no data beyond
/// the upload any kernel needs; it only caches device buffers, the
/// adaptive kernel choice per width, and simulated profiles.

#include <map>
#include <optional>
#include <vector>

#include "core/gespmm.hpp"
#include "core/plan_step.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm {

class SpmmPlan {
 public:
  /// Upload `a`. The matrix is validated (throws std::runtime_error on
  /// malformed CSR) and copied once; every subsequent run() reuses it.
  explicit SpmmPlan(Csr a, gpusim::DeviceSpec device = gpusim::gtx1080ti());

  /// The uploaded sparse operand.
  const Csr& matrix() const { return a_; }
  /// The device all of this plan's modelled times are priced for.
  const gpusim::DeviceSpec& device() const { return device_; }

  /// Host-execute C = A (*) B. Shapes validated.
  void run(const DenseMatrix& b, DenseMatrix& c,
           ReduceKind reduce = ReduceKind::Sum) const;

  /// Modelled device time for width n with the adaptive kernel; simulated
  /// once per (n, reduce) and cached. Sum of the compiled step times.
  double time_ms(index_t n, ReduceKind reduce = ReduceKind::Sum,
                 std::uint64_t sample_blocks = 1024) const;

  /// The kernel the adaptive dispatch selects for width n: the learned
  /// selector clamped to the autotuner's candidate set
  /// (core/autotune::select_spmm_algo) — the same choice Predict-mode
  /// autotune and the serving layer's cached plans make, so plan-level
  /// dispatch can never disagree with them. Memoized per width.
  SpmmAlgo algo_for(index_t n) const;

  /// The compiled row-partition step list for width n: a single step over
  /// all rows for a SIMT winner, the dense-MMA + ragged-SIMT pair when the
  /// selector picks hybrid. Step times sum to time_ms(n, reduce). Memoized
  /// per (n, reduce); the reference stays valid for the plan's lifetime.
  const std::vector<PlanStep>& steps_for(index_t n,
                                         ReduceKind reduce = ReduceKind::Sum,
                                         std::uint64_t sample_blocks = 1024) const;

  /// Total device time modelled so far through this plan (sum over run()
  /// calls' shapes) — a convenience for framework integration.
  double accumulated_time_ms() const { return accumulated_ms_; }

 private:
  Csr a_;
  gpusim::DeviceSpec device_;
  /// Memoized algo_for() results, keyed by width.
  mutable std::map<index_t, SpmmAlgo> algo_cache_;
  /// Memoized steps_for() results, keyed by (width, reduction).
  mutable std::map<std::pair<index_t, ReduceKind>, std::vector<PlanStep>>
      steps_cache_;
  /// Memoized time_ms() results, keyed by (width, reduction).
  mutable std::map<std::pair<index_t, ReduceKind>, double> profile_cache_;
  mutable double accumulated_ms_ = 0.0;
};

}  // namespace gespmm
