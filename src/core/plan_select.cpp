#include "core/plan_select.hpp"

#include <bit>
#include <cmath>

#include "kernels/spmm_hybrid.hpp"

namespace gespmm {

std::array<std::uint64_t, kRowHistBuckets> row_length_histogram(const Csr& a) {
  std::array<std::uint64_t, kRowHistBuckets> hist{};
  for (index_t i = 0; i < a.rows; ++i) {
    const auto len = static_cast<std::uint32_t>(a.row_nnz(i));
    hist[static_cast<std::size_t>(std::bit_width(len))] += 1;
  }
  return hist;
}

PlanFeatures extract_plan_features(const Csr& a, index_t n) {
  PlanFeatures f;
  f.rows = a.rows;
  f.cols = a.cols;
  f.nnz = a.nnz();
  f.n = n;
  f.n_bucket = (n + gpusim::kWarpSize - 1) / gpusim::kWarpSize;
  f.row_hist = row_length_histogram(a);
  f.mma_threshold = static_cast<index_t>(gpusim::MmaTileSpec{}.k);
  const auto part_stats = kernels::hybrid_partition_stats(a, f.mma_threshold);
  f.dense_row_frac = part_stats.dense_row_frac;
  f.dense_nnz_frac = part_stats.dense_nnz_frac;
  if (a.rows > 0) {
    const double rows = static_cast<double>(a.rows);
    f.mean_row_nnz = static_cast<double>(f.nnz) / rows;
    double var = 0.0;
    for (index_t i = 0; i < a.rows; ++i) {
      const double d = static_cast<double>(a.row_nnz(i)) - f.mean_row_nnz;
      var += d * d;
    }
    f.row_nnz_variance = var / rows;
    if (f.mean_row_nnz > 0.0)
      f.row_nnz_cv = std::sqrt(f.row_nnz_variance) / f.mean_row_nnz;
    if (a.cols > 0)
      f.density = static_cast<double>(f.nnz) / (rows * static_cast<double>(a.cols));
  }
  return f;
}

namespace {

/// One decision-tree node. `feature` indexes the FeatureId order below;
/// -1 marks a leaf, whose `algo` is the prediction. Inner nodes branch
/// left when feature <= threshold, right otherwise.
struct PlanSelectNode {
  std::int16_t feature;
  std::int16_t left;
  std::int16_t right;
  SpmmAlgo algo;
  double threshold;
};

/// Feature order the trainer emits thresholds against. Keep in sync with
/// scripts/train_plan_select.py (FEATURES list).
enum FeatureId : std::int16_t {
  kLeaf = -1,
  kFeatN = 0,
  kFeatMeanRowNnz = 1,
  kFeatRowNnzCv = 2,
  kFeatDensity = 3,
  kFeatUnifiedL1 = 4,
  kFeatDenseRowFrac = 5,
  kFeatDenseNnzFrac = 6,
  // Matrix scale: the hybrid dense pipe runs one tile.m-row window per
  // block, so small matrices cannot fill the device and lose on launch
  // underfill even when every row is dense. density/mean alone cannot
  // separate that from a large blocked matrix with the same sparsity.
  kFeatRows = 7,
};

#include "core/plan_select_table.inc"

double feature_value(const PlanFeatures& f, const gpusim::DeviceSpec& device,
                     std::int16_t id) {
  switch (id) {
    case kFeatN: return static_cast<double>(f.n);
    case kFeatMeanRowNnz: return f.mean_row_nnz;
    case kFeatRowNnzCv: return f.row_nnz_cv;
    case kFeatDensity: return f.density;
    case kFeatUnifiedL1: return device.unified_l1 ? 1.0 : 0.0;
    case kFeatDenseRowFrac: return f.dense_row_frac;
    case kFeatDenseNnzFrac: return f.dense_nnz_frac;
    case kFeatRows: return static_cast<double>(f.rows);
    default: return 0.0;
  }
}

}  // namespace

SpmmAlgo predict_spmm_algo(const PlanFeatures& f,
                           const gpusim::DeviceSpec& device) {
  std::size_t node = 0;
  // The table is a finite DAG-free array with children strictly after
  // their parent, so this terminates in <= std::size(kPlanSelectTree)
  // steps for any table the trainer can emit.
  for (std::size_t steps = 0; steps < std::size(kPlanSelectTree); ++steps) {
    const PlanSelectNode& nd = kPlanSelectTree[node];
    if (nd.feature == kLeaf) return nd.algo;
    node = feature_value(f, device, nd.feature) <= nd.threshold
               ? static_cast<std::size_t>(nd.left)
               : static_cast<std::size_t>(nd.right);
  }
  return kernels::select_gespmm_algo(f.n);  // unreachable for valid tables
}

SpmmAlgo predict_spmm_algo(const Csr& a, index_t n,
                           const gpusim::DeviceSpec& device) {
  return predict_spmm_algo(extract_plan_features(a, n), device);
}

}  // namespace gespmm
