#pragma once
/// \file autotune.hpp
/// Per-matrix coarsening-factor autotuning.
///
/// The paper (Section V-B2) considers tuning CF per matrix, finds that an
/// analytical model "could be difficult due to the entangled effects of
/// hardware parameters and sparse matrix properties", observes that the
/// fixed choice CF=2 loses >15% on only 4-and-1 of 64 matrices, and ships
/// CF=2 untuned. This module provides the tuner the paper decided against,
/// so that decision can be re-evaluated quantitatively: candidates are
/// simulated with block sampling (cheap) and the best CF is returned
/// together with the margin over the default.

#include <map>

#include "core/gespmm.hpp"

namespace gespmm {

/// Options for one tuning run.
struct AutotuneOptions {
  /// Device the candidate times are modelled for (the tuned choice is
  /// device-specific: the paper's two machines disagree on CRC's value).
  gpusim::DeviceSpec device;
  /// Simulator block-sampling budget per candidate simulation; the
  /// default keeps a 4-candidate sweep cheaper than one full launch.
  std::uint64_t sample_blocks = 512;
  AutotuneOptions();  // defaults to gtx1080ti
};

struct AutotuneResult {
  /// Best candidate found (one of Crc, CrcCwm2, CrcCwm4, CrcCwm8).
  SpmmAlgo best;
  /// What the paper's fixed dispatch would pick for this N.
  SpmmAlgo default_choice;
  /// Modelled time per candidate (ms).
  std::map<SpmmAlgo, double> times_ms;
  /// time(default) / time(best) — 1.0 means the fixed rule was optimal.
  double gain_over_default = 1.0;
};

/// Tune the kernel choice for (a, n) on a device: simulate every CF
/// candidate (only Crc when n <= 32 — there is nothing to coarsen) and
/// return the fastest with its margin over the paper's fixed rule.
/// Deterministic for fixed inputs; the serving layer's PlanCache caches
/// results per (graph, device, n).
AutotuneResult autotune_spmm(const Csr& a, index_t n,
                             const AutotuneOptions& opt = AutotuneOptions());

}  // namespace gespmm
