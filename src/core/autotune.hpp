#pragma once
/// \file autotune.hpp
/// Per-matrix coarsening-factor selection: learned predictor + sweep.
///
/// The paper (Section V-B2) considers tuning CF per matrix, finds that an
/// analytical model "could be difficult due to the entangled effects of
/// hardware parameters and sparse matrix properties", observes that the
/// fixed choice CF=2 loses >15% on only 4-and-1 of 64 matrices, and ships
/// CF=2 untuned. This module provides both answers to that question:
///
///  - `SelectionMode::Exact` — the tuner the paper decided against:
///    every candidate is simulated with block sampling and the best CF
///    returned with its margin over the default. Exhaustive, and the
///    profiling runs cost real modelled device time (`build_ms`).
///  - `SelectionMode::Predict` (default) — ParamSpMM-style adaptive
///    selection: deterministic matrix features (core/plan_select) walk an
///    offline-trained decision tree straight to a kernel, so selection
///    costs ~0 modelled time. The sweep survives as the offline trainer,
///    the fallback, and the online-refinement escalation path
///    (`retune_regret`).

#include <map>
#include <vector>

#include "core/gespmm.hpp"
#include "core/plan_step.hpp"

namespace gespmm {

/// How autotune_spmm picks the kernel.
enum class SelectionMode {
  /// Map extracted features through the trained table (core/plan_select):
  /// no candidate sweep, `build_ms` = 0. The chosen kernel is still priced
  /// once (that run is the plan's modelled time, not selection overhead).
  Predict,
  /// Legacy exhaustive candidate sweep — simulate every CF candidate and
  /// keep the fastest. `build_ms` charges the non-winning runs.
  Exact,
};

/// Options for one tuning run.
struct AutotuneOptions {
  /// Device the candidate times are modelled for (the tuned choice is
  /// device-specific: the paper's two machines disagree on CRC's value).
  gpusim::DeviceSpec device;
  /// Simulator block-sampling budget per candidate simulation; the
  /// default keeps a 4-candidate sweep cheaper than one full launch.
  std::uint64_t sample_blocks = 512;
  /// Predictor by default; Exact is the fallback/offline-trainer path.
  SelectionMode mode = SelectionMode::Predict;
  /// Online-refinement knob (Predict mode only): after pricing the
  /// predicted kernel, escalate to the exact sweep when
  ///   time(predicted) > retune_regret * time(fixed rule).
  /// 0 disables refinement; values in (0, 1] verify every prediction;
  /// values > 1 retune only when the prediction looks worse than the
  /// paper's fixed rule by that factor. The escalation's extra profiling
  /// runs are charged to `build_ms` like an Exact sweep.
  double retune_regret = 0.0;
  AutotuneOptions();  // defaults to gtx1080ti
};

/// The candidate set the tuner considers for (a, n) on `device`: Crc
/// always; the CWM variants when n > 32 (there is nothing to coarsen
/// below one warp of columns); HybridMma when the matrix has at least one
/// row at or above the MMA tile K-dim (an empty dense partition makes
/// hybrid degenerate CRC plus permutation overhead — structurally not a
/// candidate, which is how the selector "declines" ragged matrices).
std::vector<SpmmAlgo> autotune_candidates(const Csr& a, index_t n,
                                          const gpusim::DeviceSpec& device);

/// Cheap selection with no simulation: the trained predictor
/// (core/plan_select) clamped to autotune_candidates — exactly the choice
/// Predict-mode autotune makes before pricing it. SpmmPlan::algo_for
/// routes here so plan-level dispatch can never disagree with what the
/// serving layer's cached plans predict.
SpmmAlgo select_spmm_algo(const Csr& a, index_t n,
                          const gpusim::DeviceSpec& device);

struct AutotuneResult {
  /// Best candidate found (Crc, a CrcCwm variant, or HybridMma).
  SpmmAlgo best;
  /// What the paper's fixed dispatch would pick for this N.
  SpmmAlgo default_choice;
  /// Modelled time per candidate (ms). Exact mode: every candidate.
  /// Predict mode: the predicted kernel, plus the fixed rule when it
  /// differs, plus the remaining candidates after a retune.
  std::map<SpmmAlgo, double> times_ms;
  /// time(default) / time(best) — 1.0 means the fixed rule was optimal.
  double gain_over_default = 1.0;
  /// Modelled device time selection itself cost: the candidate profiling
  /// runs beyond the one that prices the chosen kernel. 0 for a pure
  /// prediction (and for n <= 32, where Crc is the only candidate); the
  /// serving layer charges this to the device clock on cold plan builds.
  double build_ms = 0.0;
  /// `best` came from the trained predictor (no sweep ran).
  bool predicted = false;
  /// Predict mode escalated to the sweep (see retune_regret).
  bool retuned = false;
  /// A retune found a candidate strictly faster than the prediction.
  bool mispredicted = false;
  /// The compiled plan: the winner's row-partition step list. Single-step
  /// over the identity permutation for every non-hybrid winner (exact
  /// pre-PlanStep behavior); dense-partition MMA step followed by the
  /// ragged SIMT step when HybridMma wins. Step times sum to
  /// times_ms.at(best).
  std::vector<PlanStep> steps;
};

/// Tune the kernel choice for (a, n) on a device. Predict mode prices
/// only the predicted kernel; Exact mode simulates every CF candidate
/// (only Crc when n <= 32 — there is nothing to coarsen) and returns the
/// fastest with its margin over the paper's fixed rule. Deterministic
/// for fixed inputs; the serving layer's PlanCache caches results per
/// (graph, device, n).
AutotuneResult autotune_spmm(const Csr& a, index_t n,
                             const AutotuneOptions& opt = AutotuneOptions());

}  // namespace gespmm
