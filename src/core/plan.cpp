#include "core/plan.hpp"

#include "kernels/spmm_host.hpp"

namespace gespmm {

SpmmPlan::SpmmPlan(Csr a, gpusim::DeviceSpec device)
    : a_(std::move(a)), device_(std::move(device)) {
  a_.validate();
}

void SpmmPlan::run(const DenseMatrix& b, DenseMatrix& c, ReduceKind reduce) const {
  if (b.rows() != a_.cols || c.rows() != a_.rows || c.cols() != b.cols()) {
    throw std::invalid_argument("SpmmPlan::run: shape mismatch");
  }
  kernels::spmm_host_parallel(a_, b, c, reduce);
  accumulated_ms_ += time_ms(b.cols(), reduce);
}

double SpmmPlan::time_ms(index_t n, ReduceKind reduce,
                         std::uint64_t sample_blocks) const {
  const auto key = std::make_pair(n, reduce);
  if (auto it = profile_cache_.find(key); it != profile_cache_.end()) {
    return it->second;
  }
  kernels::SpmmProblem p(a_, n);
  kernels::SpmmRunOptions ro;
  ro.device = device_;
  ro.sample = gpusim::SamplePolicy::sampled(sample_blocks);
  ro.reduce = reduce;
  const double ms = kernels::run_spmm(algo_for(n), p, ro).time_ms();
  profile_cache_[key] = ms;
  return ms;
}

}  // namespace gespmm
