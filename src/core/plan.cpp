#include "core/plan.hpp"

#include "core/autotune.hpp"
#include "kernels/spmm_host.hpp"
#include "kernels/spmm_hybrid.hpp"

namespace gespmm {

SpmmPlan::SpmmPlan(Csr a, gpusim::DeviceSpec device)
    : a_(std::move(a)), device_(std::move(device)) {
  a_.validate();
}

void SpmmPlan::run(const DenseMatrix& b, DenseMatrix& c, ReduceKind reduce) const {
  if (b.rows() != a_.cols || c.rows() != a_.rows || c.cols() != b.cols()) {
    throw std::invalid_argument("SpmmPlan::run: shape mismatch");
  }
  kernels::spmm_host_parallel(a_, b, c, reduce);
  accumulated_ms_ += time_ms(b.cols(), reduce);
}

SpmmAlgo SpmmPlan::algo_for(index_t n) const {
  if (auto it = algo_cache_.find(n); it != algo_cache_.end()) return it->second;
  const SpmmAlgo algo = select_spmm_algo(a_, n, device_);
  algo_cache_[n] = algo;
  return algo;
}

const std::vector<PlanStep>& SpmmPlan::steps_for(index_t n, ReduceKind reduce,
                                                 std::uint64_t sample_blocks) const {
  const auto key = std::make_pair(n, reduce);
  if (auto it = steps_cache_.find(key); it != steps_cache_.end()) {
    return it->second;
  }
  const SpmmAlgo algo = algo_for(n);
  kernels::SpmmProblem p(a_, n);
  kernels::SpmmRunOptions ro;
  ro.device = device_;
  ro.sample = gpusim::SamplePolicy::sampled(sample_blocks);
  ro.reduce = reduce;

  std::vector<PlanStep> steps;
  if (algo == SpmmAlgo::HybridMma) {
    const auto d = kernels::run_spmm_hybrid_detailed(p, ro);
    if (d.dense_rows > 0) {
      steps.push_back(PlanStep{SpmmAlgo::HybridMma, StepPipe::Mma, 0,
                               d.dense_rows, d.dense_ms});
    }
    if (d.dense_rows < a_.rows) {
      steps.push_back(PlanStep{SpmmAlgo::HybridMma, StepPipe::Simt,
                               d.dense_rows, a_.rows, d.ragged_ms});
    }
  } else {
    steps = single_step_plan(algo, a_.rows,
                             kernels::run_spmm(algo, p, ro).time_ms());
  }
  profile_cache_[key] = plan_steps_time_ms(steps);
  return steps_cache_[key] = std::move(steps);
}

double SpmmPlan::time_ms(index_t n, ReduceKind reduce,
                         std::uint64_t sample_blocks) const {
  const auto key = std::make_pair(n, reduce);
  if (auto it = profile_cache_.find(key); it != profile_cache_.end()) {
    return it->second;
  }
  return plan_steps_time_ms(steps_for(n, reduce, sample_blocks));
}

}  // namespace gespmm
