#pragma once
/// \file gespmm.hpp
/// GE-SpMM public API.
///
/// Two entry-point families:
///  - **compute**: `gespmm::spmm` / `gespmm::spmm_like` run the SpMM(-like)
///    operation on the host (OpenMP-parallel) and write C. This is the
///    functional path a GNN framework embeds — CSR in, row-major dense out,
///    no preprocessing, user-defined reductions supported.
///  - **profile**: `gespmm::profile_spmm` executes the chosen kernel on the
///    warp-level GPU simulator and returns nvprof-style metrics plus a
///    modelled execution time for a selected device (GTX 1080Ti or
///    RTX 2080). This is the path every benchmark uses.
///
/// Algorithm selection follows the paper's Fig. 7: CRC (Algorithm 2) when
/// N <= 32, CRC+CWM with CF=2 (Algorithm 3) when N > 32. Both are
/// overridable.

#include <functional>

#include "gpusim/launch.hpp"
#include "kernels/dense.hpp"
#include "kernels/registry.hpp"
#include "kernels/semiring.hpp"
#include "sparse/csr.hpp"

namespace gespmm {

using kernels::DenseMatrix;
using kernels::Layout;
using kernels::ReduceKind;
using kernels::SpmmAlgo;
using sparse::Csr;
using sparse::index_t;
using sparse::value_t;

/// C = A (*) B with one of the built-in reductions. C must be
/// A.rows x B.cols and row-major. Host execution, OpenMP-parallel.
void spmm(const Csr& a, const DenseMatrix& b, DenseMatrix& c,
          ReduceKind reduce = ReduceKind::Sum);

/// User-defined SpMM-like operation (paper Section IV-A): the caller
/// provides init / reduce / finalize. reduce must be associative and
/// commutative for the parallel execution to be well-defined.
struct CustomReduceOp {
  std::function<value_t()> init;
  std::function<value_t(value_t acc, value_t x)> reduce;
  /// Called with (acc, row_nnz); defaults to identity on acc.
  std::function<value_t(value_t acc, index_t row_nnz)> finalize;
  /// Combines A's value with B's element before reduction; defaults to
  /// multiplication.
  std::function<value_t(value_t a, value_t b)> combine;
};
void spmm_like(const Csr& a, const DenseMatrix& b, DenseMatrix& c,
               const CustomReduceOp& op);

/// Options for the simulated/profiled path.
struct ProfileOptions {
  gpusim::DeviceSpec device;
  gpusim::SamplePolicy sample = gpusim::SamplePolicy::full();
  /// GeSpMM = adaptive selection per Fig. 7(c).
  SpmmAlgo algo = SpmmAlgo::GeSpMM;
  ReduceKind reduce = ReduceKind::Sum;

  ProfileOptions();  // defaults to gtx1080ti
};

/// Result of a profiled SpMM: which kernel ran and its launch result.
struct SpmmProfile {
  SpmmAlgo algo;
  gpusim::LaunchResult result;

  double time_ms() const { return result.time_ms(); }
  double gflops(double nnz, double n) const { return result.gflops(2.0 * nnz * n); }
};

/// Execute the kernel on the simulator against (A, B) writing C, returning
/// metrics and modelled time. B/C shapes as in spmm(); csrmm2 requires a
/// column-major C (it is the only kernel with that convention).
SpmmProfile profile_spmm(const Csr& a, const DenseMatrix& b, DenseMatrix& c,
                         const ProfileOptions& opt = ProfileOptions());

/// Metrics-only convenience: allocates B (zero-filled) and C internally and
/// optionally samples blocks — what parameter sweeps use.
SpmmProfile profile_spmm_shape(const Csr& a, index_t n,
                               const ProfileOptions& opt = ProfileOptions());

/// Library version string.
const char* version();

}  // namespace gespmm
