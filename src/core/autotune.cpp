#include "core/autotune.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "core/plan_select.hpp"
#include "kernels/spmm_hybrid.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm {

AutotuneOptions::AutotuneOptions() : device(gpusim::gtx1080ti()) {}

std::vector<SpmmAlgo> autotune_candidates(const Csr& a, index_t n,
                                          const gpusim::DeviceSpec& device) {
  std::vector<SpmmAlgo> candidates = {SpmmAlgo::Crc};
  if (n > gpusim::kWarpSize) {
    candidates.push_back(SpmmAlgo::CrcCwm2);
    candidates.push_back(SpmmAlgo::CrcCwm4);
    candidates.push_back(SpmmAlgo::CrcCwm8);
  }
  const auto tile = gpusim::mma_tile_for(device);
  const auto stats =
      kernels::hybrid_partition_stats(a, static_cast<index_t>(tile.k));
  if (stats.dense_row_frac > 0.0) candidates.push_back(SpmmAlgo::HybridMma);
  return candidates;
}

SpmmAlgo select_spmm_algo(const Csr& a, index_t n,
                          const gpusim::DeviceSpec& device) {
  const auto candidates = autotune_candidates(a, n, device);
  SpmmAlgo algo = predict_spmm_algo(extract_plan_features(a, n), device);
  if (std::find(candidates.begin(), candidates.end(), algo) == candidates.end())
    algo = kernels::select_gespmm_algo(n);
  return algo;
}

AutotuneResult autotune_spmm(const Csr& a, index_t n, const AutotuneOptions& opt) {
  AutotuneResult res;
  res.default_choice = kernels::select_gespmm_algo(n);

  const std::vector<SpmmAlgo> candidates = autotune_candidates(a, n, opt.device);

  kernels::SpmmRunOptions ro;
  ro.device = opt.device;
  ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);

  // Per-partition detail of the hybrid candidate's pricing run, kept so the
  // winner's step list can expose each partition's modelled time.
  std::optional<kernels::HybridLaunchResult> hybrid_detail;

  // Price one candidate, memoized: the sweep and the predict/retune paths
  // share simulations through times_ms so no candidate is ever run twice.
  auto simulate = [&](SpmmAlgo algo) {
    if (auto it = res.times_ms.find(algo); it != res.times_ms.end())
      return it->second;
    kernels::SpmmProblem p(a, n);
    double ms = 0.0;
    if (algo == SpmmAlgo::HybridMma) {
      hybrid_detail = kernels::run_spmm_hybrid_detailed(p, ro);
      ms = hybrid_detail->total.time_ms();
    } else {
      ms = kernels::run_spmm(algo, p, ro).time_ms();
    }
    res.times_ms[algo] = ms;
    return ms;
  };

  // Exhaustive sweep over the candidates, keeping the earliest minimum on
  // ties. Charges every profiling run except the winner's to build_ms.
  auto sweep = [&] {
    res.best = candidates.front();
    double best_ms = std::numeric_limits<double>::infinity();
    double total_ms = 0.0;
    for (auto algo : candidates) {
      const double ms = simulate(algo);
      total_ms += ms;
      if (ms < best_ms) {
        best_ms = ms;
        res.best = algo;
      }
    }
    res.build_ms = total_ms - best_ms;
    return best_ms;
  };

  if (opt.mode == SelectionMode::Exact) {
    sweep();
  } else {
    res.predicted = true;
    res.best = predict_spmm_algo(extract_plan_features(a, n), opt.device);
    // A table trained for a different kernel zoo could name an algorithm
    // outside this shape's candidate set; clamp to the fixed rule.
    if (std::find(candidates.begin(), candidates.end(), res.best) ==
        candidates.end())
      res.best = res.default_choice;
    const double pred_ms = simulate(res.best);
    if (opt.retune_regret > 0.0 &&
        pred_ms > opt.retune_regret * simulate(res.default_choice)) {
      // Escalate: run the sweep (memoization skips the already-priced
      // kernels, but their runs still count as selection cost — only the
      // prediction's own pricing run stays free, since a plan build pays
      // that one regardless of mode).
      const SpmmAlgo predicted_algo = res.best;
      const double best_ms = sweep();
      res.retuned = true;
      res.build_ms = 0.0;
      for (const auto& [algo, ms] : res.times_ms)
        if (algo != predicted_algo) res.build_ms += ms;
      res.mispredicted = best_ms < pred_ms;
    }
  }
  res.gain_over_default =
      simulate(res.default_choice) / res.times_ms.at(res.best);

  // Compile the winner into its row-partition step list.
  if (res.best == SpmmAlgo::HybridMma && hybrid_detail.has_value()) {
    const auto& d = *hybrid_detail;
    if (d.dense_rows > 0) {
      res.steps.push_back(PlanStep{SpmmAlgo::HybridMma, StepPipe::Mma, 0,
                                   d.dense_rows, d.dense_ms});
    }
    if (d.dense_rows < a.rows) {
      res.steps.push_back(PlanStep{SpmmAlgo::HybridMma, StepPipe::Simt,
                                   d.dense_rows, a.rows, d.ragged_ms});
    }
  } else {
    res.steps = single_step_plan(res.best, a.rows, res.times_ms.at(res.best));
  }
  return res;
}

}  // namespace gespmm
