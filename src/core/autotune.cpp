#include "core/autotune.hpp"

#include <algorithm>
#include <limits>

#include "core/plan_select.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm {

AutotuneOptions::AutotuneOptions() : device(gpusim::gtx1080ti()) {}

AutotuneResult autotune_spmm(const Csr& a, index_t n, const AutotuneOptions& opt) {
  AutotuneResult res;
  res.default_choice = kernels::select_gespmm_algo(n);

  std::vector<SpmmAlgo> candidates = {SpmmAlgo::Crc};
  if (n > gpusim::kWarpSize) {
    candidates.push_back(SpmmAlgo::CrcCwm2);
    candidates.push_back(SpmmAlgo::CrcCwm4);
    candidates.push_back(SpmmAlgo::CrcCwm8);
  }

  kernels::SpmmRunOptions ro;
  ro.device = opt.device;
  ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);

  // Price one candidate, memoized: the sweep and the predict/retune paths
  // share simulations through times_ms so no candidate is ever run twice.
  auto simulate = [&](SpmmAlgo algo) {
    if (auto it = res.times_ms.find(algo); it != res.times_ms.end())
      return it->second;
    kernels::SpmmProblem p(a, n);
    const double ms = kernels::run_spmm(algo, p, ro).time_ms();
    res.times_ms[algo] = ms;
    return ms;
  };

  // Exhaustive sweep over the candidates, keeping the earliest minimum on
  // ties. Charges every profiling run except the winner's to build_ms.
  auto sweep = [&] {
    res.best = candidates.front();
    double best_ms = std::numeric_limits<double>::infinity();
    double total_ms = 0.0;
    for (auto algo : candidates) {
      const double ms = simulate(algo);
      total_ms += ms;
      if (ms < best_ms) {
        best_ms = ms;
        res.best = algo;
      }
    }
    res.build_ms = total_ms - best_ms;
    return best_ms;
  };

  if (opt.mode == SelectionMode::Exact) {
    sweep();
  } else {
    res.predicted = true;
    res.best = predict_spmm_algo(extract_plan_features(a, n), opt.device);
    // A table trained for a different kernel zoo could name an algorithm
    // outside this shape's candidate set; clamp to the fixed rule.
    if (std::find(candidates.begin(), candidates.end(), res.best) ==
        candidates.end())
      res.best = res.default_choice;
    const double pred_ms = simulate(res.best);
    if (opt.retune_regret > 0.0 &&
        pred_ms > opt.retune_regret * simulate(res.default_choice)) {
      // Escalate: run the sweep (memoization skips the already-priced
      // kernels, but their runs still count as selection cost — only the
      // prediction's own pricing run stays free, since a plan build pays
      // that one regardless of mode).
      const SpmmAlgo predicted_algo = res.best;
      const double best_ms = sweep();
      res.retuned = true;
      res.build_ms = 0.0;
      for (const auto& [algo, ms] : res.times_ms)
        if (algo != predicted_algo) res.build_ms += ms;
      res.mispredicted = best_ms < pred_ms;
    }
  }
  res.gain_over_default =
      simulate(res.default_choice) / res.times_ms.at(res.best);
  return res;
}

}  // namespace gespmm
