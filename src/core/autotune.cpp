#include "core/autotune.hpp"

#include "kernels/spmm_problem.hpp"

namespace gespmm {

AutotuneOptions::AutotuneOptions() : device(gpusim::gtx1080ti()) {}

AutotuneResult autotune_spmm(const Csr& a, index_t n, const AutotuneOptions& opt) {
  AutotuneResult res;
  res.default_choice = kernels::select_gespmm_algo(n);

  std::vector<SpmmAlgo> candidates = {SpmmAlgo::Crc};
  if (n > gpusim::kWarpSize) {
    candidates.push_back(SpmmAlgo::CrcCwm2);
    candidates.push_back(SpmmAlgo::CrcCwm4);
    candidates.push_back(SpmmAlgo::CrcCwm8);
  }

  kernels::SpmmRunOptions ro;
  ro.device = opt.device;
  ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);

  res.best = candidates.front();
  double best_ms = std::numeric_limits<double>::infinity();
  for (auto algo : candidates) {
    kernels::SpmmProblem p(a, n);
    const double ms = kernels::run_spmm(algo, p, ro).time_ms();
    res.times_ms[algo] = ms;
    if (ms < best_ms) {
      best_ms = ms;
      res.best = algo;
    }
  }
  res.gain_over_default = res.times_ms.at(res.default_choice) / best_ms;
  return res;
}

}  // namespace gespmm
