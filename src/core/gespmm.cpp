#include "core/gespmm.hpp"

#include <stdexcept>

#include "core/version.hpp"
#include "kernels/spmm_host.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm {

ProfileOptions::ProfileOptions() : device(gpusim::gtx1080ti()) {}

const char* version() { return GESPMM_VERSION; }

namespace {

void check_shapes(const Csr& a, const DenseMatrix& b, const DenseMatrix& c) {
  if (b.rows() != a.cols) {
    throw std::invalid_argument("spmm: B.rows must equal A.cols");
  }
  if (c.rows() != a.rows || c.cols() != b.cols()) {
    throw std::invalid_argument("spmm: C must be A.rows x B.cols");
  }
}

}  // namespace

void spmm(const Csr& a, const DenseMatrix& b, DenseMatrix& c, ReduceKind reduce) {
  check_shapes(a, b, c);
  kernels::spmm_host_parallel(a, b, c, reduce);
}

void spmm_like(const Csr& a, const DenseMatrix& b, DenseMatrix& c,
               const CustomReduceOp& op) {
  check_shapes(a, b, c);
  if (!op.init || !op.reduce) {
    throw std::invalid_argument("spmm_like: init and reduce are required");
  }
  auto combine = op.combine ? op.combine
                            : [](value_t x, value_t y) { return x * y; };
  auto finalize = op.finalize ? op.finalize
                              : [](value_t acc, index_t) { return acc; };
  const index_t n = b.cols();
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < a.rows; ++i) {
    const index_t lo = a.rowptr[static_cast<std::size_t>(i)];
    const index_t hi = a.rowptr[static_cast<std::size_t>(i) + 1];
    for (index_t j = 0; j < n; ++j) {
      value_t acc = op.init();
      for (index_t p = lo; p < hi; ++p) {
        const index_t k = a.colind[static_cast<std::size_t>(p)];
        acc = op.reduce(acc, combine(a.val[static_cast<std::size_t>(p)], b.at(k, j)));
      }
      c.at(i, j) = finalize(acc, hi - lo);
    }
  }
}

SpmmProfile profile_spmm(const Csr& a, const DenseMatrix& b, DenseMatrix& c,
                         const ProfileOptions& opt) {
  check_shapes(a, b, c);
  kernels::SpmmProblem p(a, b.cols(),
                         opt.algo == SpmmAlgo::Csrmm2 ? Layout::ColMajor
                                                      : Layout::RowMajor);
  // Share the caller's buffers by copying in/out (device arrays are
  // simulator-owned).
  p.B.device().assign(b.device().host());

  SpmmProfile prof;
  prof.algo = opt.algo == SpmmAlgo::GeSpMM ? kernels::select_gespmm_algo(b.cols())
                                           : opt.algo;
  kernels::SpmmRunOptions ro;
  ro.device = opt.device;
  ro.sample = opt.sample;
  ro.reduce = opt.reduce;
  prof.result = kernels::run_spmm(prof.algo, p, ro);

  // Copy the (layout-normalized) output back.
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      c.at(i, j) = p.C.at(i, j);
    }
  }
  return prof;
}

SpmmProfile profile_spmm_shape(const Csr& a, index_t n, const ProfileOptions& opt) {
  kernels::SpmmProblem p(a, n,
                         opt.algo == SpmmAlgo::Csrmm2 ? Layout::ColMajor
                                                      : Layout::RowMajor);
  SpmmProfile prof;
  prof.algo = opt.algo == SpmmAlgo::GeSpMM ? kernels::select_gespmm_algo(n) : opt.algo;
  kernels::SpmmRunOptions ro;
  ro.device = opt.device;
  ro.sample = opt.sample;
  ro.reduce = opt.reduce;
  prof.result = kernels::run_spmm(prof.algo, p, ro);
  return prof;
}

}  // namespace gespmm
