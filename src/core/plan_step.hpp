#pragma once
/// \file plan_step.hpp
/// PlanStep: one row-partition step of a compiled SpMM plan.
///
/// A compiled plan is a *sequence* of steps, each binding a contiguous row
/// range of the plan's row permutation to a kernel and an execution
/// pipeline. Classic single-kernel plans — the paper's fixed rule, a
/// predictor hit, an Exact-sweep winner that is not hybrid — are the
/// degenerate one-step case over the identity permutation, so their
/// behavior and outputs are exactly what the pre-partitioned pipeline
/// produced. A hybrid winner compiles to two steps: the dense partition on
/// the MMA pipe and the ragged remainder on the SIMT pipe, with the row
/// permutation owned by the hybrid kernel (kernels/spmm_hybrid.hpp).

#include <vector>

#include "core/gespmm.hpp"

namespace gespmm {

/// Execution pipeline a step is bound to.
enum class StepPipe {
  Simt,  ///< CUDA-core path (CRC / CRC+CWM family).
  Mma,   ///< Tensor-core path (dense-tile mma issues).
};

inline const char* step_pipe_name(StepPipe p) {
  return p == StepPipe::Mma ? "mma" : "simt";
}

/// One row-partition step of a compiled plan.
struct PlanStep {
  /// Kernel the step's launch dispatches to. For a hybrid plan both steps
  /// carry HybridMma (the kernel owns the partition); single-kernel plans
  /// carry their winner.
  SpmmAlgo algo = SpmmAlgo::Crc;
  StepPipe pipe = StepPipe::Simt;
  /// Row range [row_begin, row_end) in the plan's row permutation (the
  /// identity for single-step plans; dense-rows-first for hybrid).
  index_t row_begin = 0;
  index_t row_end = 0;
  /// Modelled device time of this step's launch in ms.
  double modelled_ms = 0.0;

  index_t rows() const { return row_end - row_begin; }
};

/// The degenerate single-step list: all rows on one SIMT kernel.
inline std::vector<PlanStep> single_step_plan(SpmmAlgo algo, index_t rows,
                                              double modelled_ms) {
  return {PlanStep{algo, StepPipe::Simt, 0, rows, modelled_ms}};
}

/// Sum of the steps' modelled times (a sequential composition: the steps
/// of one plan run back-to-back on the same device).
inline double plan_steps_time_ms(const std::vector<PlanStep>& steps) {
  double ms = 0.0;
  for (const auto& s : steps) ms += s.modelled_ms;
  return ms;
}

}  // namespace gespmm
