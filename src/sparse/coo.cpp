#include "sparse/coo.hpp"

namespace gespmm::sparse {

Csr coo_to_csr(const Coo& coo) {
  return csr_from_triplets(coo.rows, coo.cols, coo.row, coo.col, coo.val);
}

Coo csr_to_coo(const Csr& csr) {
  Coo coo;
  coo.rows = csr.rows;
  coo.cols = csr.cols;
  coo.row.reserve(csr.colind.size());
  coo.col.reserve(csr.colind.size());
  coo.val.reserve(csr.colind.size());
  for (index_t i = 0; i < csr.rows; ++i) {
    for (index_t p = csr.rowptr[static_cast<std::size_t>(i)];
         p < csr.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      coo.push(i, csr.colind[static_cast<std::size_t>(p)], csr.val[static_cast<std::size_t>(p)]);
    }
  }
  return coo;
}

}  // namespace gespmm::sparse
