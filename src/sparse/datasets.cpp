#include "sparse/datasets.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/rng.hpp"

namespace gespmm::sparse {

namespace {

/// Trim a CSR down to exactly `target` non-zeros by removing entries at
/// evenly spaced positions (keeps the degree distribution shape).
Csr trim_to_nnz(const Csr& a, index_t target) {
  if (a.nnz() <= target) return a;
  const index_t surplus = a.nnz() - target;
  Coo coo = csr_to_coo(a);
  Coo kept;
  kept.rows = coo.rows;
  kept.cols = coo.cols;
  std::int64_t acc = 0;
  for (index_t k = 0; k < coo.nnz(); ++k) {
    acc += surplus;
    if (acc >= a.nnz()) {
      acc -= a.nnz();  // drop this entry
      continue;
    }
    kept.push(coo.row[static_cast<std::size_t>(k)], coo.col[static_cast<std::size_t>(k)],
              coo.val[static_cast<std::size_t>(k)]);
  }
  return coo_to_csr(kept);
}

/// Citation graph with an exact vertex and edge count (paper Table IV lists
/// exact numbers, and tests assert them).
Csr citation_exact(index_t vertices, index_t edges, std::uint64_t seed) {
  // Oversample; duplicate merging shrinks the graph, then trim to target.
  double factor = 1.15;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Csr g = citation_graph(vertices, static_cast<std::int64_t>(edges * factor), seed);
    if (g.nnz() >= edges) return trim_to_nnz(g, edges);
    factor *= 1.3;
  }
  throw std::runtime_error("citation_exact: failed to reach edge target");
}

struct SnapSpec {
  const char* name;
  /// Family: 'u' uniform, 'r' rmat (power-law), 'g' grid/road, 'c' citation.
  char family;
  index_t n;
  double nnz_per_row;
};

/// 64 graphs named after the SuiteSparse SNAP group (the "-syn" suffix marks
/// them as synthetic stand-ins; see DESIGN.md). Sorted by name — the
/// paper's matrix_id is the alphabetical rank. Sizes span ~1K to 300K rows,
/// nnz/row spans 1.58 to 32.5, matching the ranges reported in Section V-A.
constexpr std::array<SnapSpec, 64> kSnapSpecs = {{
    {"amazon0302-syn", 'c', 32768, 6.0},
    {"amazon0312-syn", 'c', 65536, 8.0},
    {"amazon0505-syn", 'c', 76800, 8.5},
    {"amazon0601-syn", 'c', 81920, 9.0},
    {"as-735-syn", 'r', 1005, 12.0},
    {"as-Skitter-syn", 'r', 262144, 11.0},
    {"ca-AstroPh-syn", 'c', 18772, 21.1},
    {"ca-CondMat-syn", 'c', 23133, 8.1},
    {"ca-GrQc-syn", 'c', 5242, 5.5},
    {"ca-HepPh-syn", 'c', 12008, 19.7},
    {"ca-HepTh-syn", 'c', 9877, 5.3},
    {"cit-HepPh-syn", 'c', 34546, 12.2},
    {"cit-HepTh-syn", 'c', 27770, 12.7},
    {"cit-Patents-syn", 'c', 229376, 4.4},
    {"com-Amazon-syn", 'c', 131072, 5.5},
    {"com-DBLP-syn", 'c', 106496, 6.6},
    {"com-LiveJournal-syn", 'r', 294912, 17.3},
    {"com-Youtube-syn", 'r', 163840, 5.3},
    {"email-Enron-syn", 'r', 36692, 10.0},
    {"email-EuAll-syn", 'r', 114688, 1.8},
    {"loc-Brightkite-syn", 'r', 58228, 7.4},
    {"loc-Gowalla-syn", 'r', 131072, 9.7},
    {"oregon1-syn", 'r', 11174, 4.2},
    {"oregon2-syn", 'r', 11806, 5.3},
    {"p2p-Gnutella04-syn", 'u', 10876, 3.7},
    {"p2p-Gnutella05-syn", 'u', 8846, 3.6},
    {"p2p-Gnutella06-syn", 'u', 8717, 3.6},
    {"p2p-Gnutella08-syn", 'u', 6301, 3.3},
    {"p2p-Gnutella09-syn", 'u', 8114, 3.2},
    {"p2p-Gnutella24-syn", 'u', 26518, 2.5},
    {"p2p-Gnutella25-syn", 'u', 22687, 2.4},
    {"p2p-Gnutella30-syn", 'u', 36682, 2.4},
    {"p2p-Gnutella31-syn", 'u', 62586, 2.4},
    {"roadNet-CA-syn", 'g', 196608, 2.8},
    {"roadNet-PA-syn", 'g', 90112, 2.8},
    {"roadNet-TX-syn", 'g', 137216, 2.8},
    {"soc-Epinions1-syn", 'r', 75879, 6.7},
    {"soc-LiveJournal1-syn", 'r', 300000, 23.0},
    {"soc-sign-epinions-syn", 'r', 131828, 6.4},
    {"soc-sign-Slashdot-syn", 'r', 77350, 6.5},
    {"soc-Slashdot0811-syn", 'r', 77360, 11.7},
    {"soc-Slashdot0902-syn", 'r', 82168, 11.3},
    {"sx-askubuntu-syn", 'r', 159316, 6.0},
    {"sx-mathoverflow-syn", 'r', 24818, 9.5},
    {"sx-stackoverflow-syn", 'r', 289766, 12.0},
    {"sx-superuser-syn", 'r', 194085, 7.5},
    {"twitter-combined-syn", 'r', 81306, 21.7},
    {"web-BerkStan-syn", 'r', 229376, 11.1},
    {"web-Google-syn", 'r', 262144, 9.9},
    {"web-NotreDame-syn", 'r', 131072, 4.6},
    {"web-Stanford-syn", 'r', 163840, 8.2},
    {"wiki-RfA-syn", 'u', 10835, 15.0},
    {"wiki-Talk-syn", 'r', 262144, 2.1},
    {"wiki-topcats-syn", 'r', 262144, 16.0},
    {"wiki-Vote-syn", 'u', 7115, 14.6},
    {"wikipedia-20051105-syn", 'r', 262144, 12.0},
    {"wikipedia-20060925-syn", 'r', 278528, 12.4},
    {"wikipedia-20061104-syn", 'r', 286720, 12.7},
    {"wikipedia-20070206-syn", 'r', 294912, 13.1},
    {"zc-alpha-syn", 'u', 3783, 6.4},
    {"zc-bitcoin-syn", 'u', 5881, 6.1},
    {"zc-collab-syn", 'u', 9000, 32.5},
    {"zc-meshlike-syn", 'g', 65536, 3.9},
    {"zc-min-syn", 'u', 1024, 1.58},
}};

Csr build_family(const SnapSpec& s, double size_factor, std::uint64_t seed) {
  const auto n =
      static_cast<index_t>(std::max(64.0, std::floor(s.n * size_factor)));
  const auto nnz = static_cast<std::int64_t>(s.nnz_per_row * n);
  switch (s.family) {
    case 'u':
      return uniform_random(n, n, nnz, seed);
    case 'r': {
      // Round n up to a power of two for RMAT, then trim rows by taking the
      // leading principal submatrix via triplet filtering.
      int scale = 1;
      while ((index_t{1} << scale) < n) ++scale;
      Csr full = rmat(scale, s.nnz_per_row * static_cast<double>(index_t{1} << scale) /
                                 static_cast<double>(n),
                      0.45, 0.22, 0.22, seed);
      if (full.rows == n) return full;
      Coo coo = csr_to_coo(full);
      Coo cut;
      cut.rows = n;
      cut.cols = n;
      for (index_t k = 0; k < coo.nnz(); ++k) {
        if (coo.row[static_cast<std::size_t>(k)] < n && coo.col[static_cast<std::size_t>(k)] < n) {
          cut.push(coo.row[static_cast<std::size_t>(k)], coo.col[static_cast<std::size_t>(k)],
                   coo.val[static_cast<std::size_t>(k)]);
        }
      }
      return coo_to_csr(cut);
    }
    case 'g':
      return grid_road(n, std::max(0.0, s.nnz_per_row - 3.6), seed);
    case 'c':
      return citation_graph(n, nnz, seed);
    default:
      throw std::runtime_error("unknown snap family");
  }
}

}  // namespace

GraphDataset cora() {
  return {"cora", citation_exact(2708, 5429, 0xC02Aull), 1433, 7};
}

GraphDataset citeseer() {
  return {"citeseer", citation_exact(3327, 4732, 0xC17E5EE2ull), 3703, 6};
}

GraphDataset pubmed() {
  return {"pubmed", citation_exact(19717, 44338, 0x9B61EDull), 500, 3};
}

std::vector<GraphDataset> citation_suite() { return {cora(), citeseer(), pubmed()}; }

Csr profile_matrix_16k() { return uniform_random(16384, 16384, 163840, 0x16AA01ull); }
Csr profile_matrix_65k() { return uniform_random(65536, 65536, 655360, 0x65AA02ull); }
Csr profile_matrix_262k() { return uniform_random(262144, 262144, 2621440, 0x262AA03ull); }

int snap_suite_size() { return static_cast<int>(kSnapSpecs.size()); }

std::vector<std::string> snap_suite_names() {
  std::vector<std::string> names;
  names.reserve(kSnapSpecs.size());
  for (const auto& s : kSnapSpecs) names.emplace_back(s.name);
  return names;
}

SnapEntry snap_suite_entry(int index, double size_factor) {
  if (index < 0 || index >= snap_suite_size()) {
    throw std::out_of_range("snap_suite_entry: bad index");
  }
  const auto& s = kSnapSpecs[static_cast<std::size_t>(index)];
  const std::uint64_t seed = 0x5AA9 + static_cast<std::uint64_t>(index) * 7919;
  return {s.name, build_family(s, size_factor, seed)};
}

std::vector<SnapEntry> snap_suite(double size_factor) {
  std::vector<SnapEntry> out;
  out.reserve(kSnapSpecs.size());
  for (int i = 0; i < snap_suite_size(); ++i) out.push_back(snap_suite_entry(i, size_factor));
  return out;
}

}  // namespace gespmm::sparse
