#pragma once
/// \file rng.hpp
/// Deterministic, implementation-independent random number generation for
/// graph generators (SplitMix64; no libstdc++ distribution dependence so
/// datasets are bit-identical everywhere).

#include <cstdint>

namespace gespmm::sparse {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

 private:
  std::uint64_t state_;
};

}  // namespace gespmm::sparse
