#pragma once
/// \file ell.hpp
/// ELLPACK-R storage (Fastspmm's format, paper ref [21]) — one of the
/// preprocess-based formats the paper contrasts against. Stored
/// column-major with per-row lengths so warps read aligned columns.

#include <vector>

#include "sparse/csr.hpp"

namespace gespmm::sparse {

struct EllR {
  index_t rows = 0;
  index_t cols = 0;
  index_t width = 0;  ///< max row length (padded width)
  /// Column-major rows x width arrays: element (i, s) at s*rows + i.
  std::vector<index_t> colind;
  std::vector<value_t> val;
  std::vector<index_t> rowlen;

  std::size_t padded_entries() const {
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(width);
  }
  /// Fraction of storage wasted on padding.
  double padding_overhead(index_t nnz) const {
    return padded_entries() == 0
               ? 0.0
               : 1.0 - static_cast<double>(nnz) / static_cast<double>(padded_entries());
  }
};

/// Convert CSR to ELLPACK-R. Memory grows with rows*max_row_nnz; conversion
/// is the preprocessing cost this format pays.
EllR csr_to_ell(const Csr& a);

/// Convert back (drops padding).
Csr ell_to_csr(const EllR& e);

}  // namespace gespmm::sparse
