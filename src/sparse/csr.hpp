#pragma once
/// \file csr.hpp
/// Compressed Sparse Row matrices — the universal, conversion-free format
/// GE-SpMM operates on (paper Section III-A, Fig. 4).

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace gespmm::sparse {

using index_t = std::int32_t;
using value_t = float;

/// A CSR sparse matrix: rowptr (rows+1), colind (nnz), val (nnz).
struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> rowptr{0};
  std::vector<index_t> colind;
  std::vector<value_t> val;

  Csr() = default;
  Csr(index_t r, index_t c) : rows(r), cols(c), rowptr(static_cast<std::size_t>(r) + 1, 0) {}

  index_t nnz() const { return static_cast<index_t>(colind.size()); }
  index_t row_nnz(index_t i) const {
    return rowptr[static_cast<std::size_t>(i) + 1] - rowptr[static_cast<std::size_t>(i)];
  }
  double avg_row_nnz() const {
    return rows > 0 ? static_cast<double>(nnz()) / rows : 0.0;
  }
  index_t max_row_nnz() const;

  /// Throws std::runtime_error on structural problems (monotone rowptr,
  /// in-range column indices, array size agreement).
  void validate() const;

  /// True if every row's column indices are strictly increasing.
  bool rows_sorted() const;
  /// Sort each row by column index (stable for values).
  void sort_rows();

  bool operator==(const Csr& o) const = default;
};

/// Transpose (also converts between in-edge and out-edge adjacency).
Csr transpose(const Csr& a);

/// Build a CSR from (row, col, value) triplets; duplicates are summed.
Csr csr_from_triplets(index_t rows, index_t cols,
                      std::span<const index_t> r, std::span<const index_t> c,
                      std::span<const value_t> v);

/// Symmetrically normalized GCN propagation matrix over A + I:
/// D^{-1/2} (A + I) D^{-1/2}, treating existing values as edge weights.
Csr gcn_normalize(const Csr& a);

/// Row-normalized (mean-aggregation) matrix: D^{-1} A.
Csr row_normalize(const Csr& a);

/// Degree (row-length) summary used by dataset listings.
struct DegreeStats {
  index_t min = 0;
  index_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};
DegreeStats degree_stats(const Csr& a);

}  // namespace gespmm::sparse
