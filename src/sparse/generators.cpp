#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/rng.hpp"

namespace gespmm::sparse {

Csr uniform_random(index_t rows, index_t cols, std::int64_t nnz_target,
                   std::uint64_t seed) {
  SplitMix64 rng(seed);
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  coo.row.reserve(static_cast<std::size_t>(nnz_target));
  coo.col.reserve(static_cast<std::size_t>(nnz_target));
  coo.val.reserve(static_cast<std::size_t>(nnz_target));
  for (std::int64_t e = 0; e < nnz_target; ++e) {
    const auto r = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(rows)));
    const auto c = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(cols)));
    coo.push(r, c, rng.next_float(0.25f, 1.0f));
  }
  Csr a = coo_to_csr(coo);
  // Duplicate merges added values together; rescale into [0.25, 1) to keep
  // values well-conditioned for float comparisons in tests.
  for (auto& v : a.val) v = 0.25f + std::fmod(v, 0.75f);
  return a;
}

Csr rmat(int scale, double edge_factor, double a, double b, double c,
         std::uint64_t seed) {
  const index_t n = static_cast<index_t>(1) << scale;
  const auto edges = static_cast<std::int64_t>(edge_factor * n);
  const double d = 1.0 - a - b - c;
  if (d < 0) throw std::runtime_error("rmat: a+b+c must be <= 1");
  SplitMix64 rng(seed);
  Coo coo;
  coo.rows = n;
  coo.cols = n;
  for (std::int64_t e = 0; e < edges; ++e) {
    index_t r = 0, col = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double p = rng.next_double();
      if (p < a) {
        // top-left quadrant: nothing to set
      } else if (p < a + b) {
        col |= static_cast<index_t>(1) << bit;
      } else if (p < a + b + c) {
        r |= static_cast<index_t>(1) << bit;
      } else {
        r |= static_cast<index_t>(1) << bit;
        col |= static_cast<index_t>(1) << bit;
      }
    }
    coo.push(r, col, rng.next_float(0.25f, 1.0f));
  }
  Csr m = coo_to_csr(coo);
  for (auto& v : m.val) v = 0.25f + std::fmod(v, 0.75f);
  return m;
}

Csr grid_road(index_t n_approx, double shortcut_fraction, std::uint64_t seed) {
  const auto side = static_cast<index_t>(std::max(2.0, std::sqrt(static_cast<double>(n_approx))));
  const index_t n = side * side;
  SplitMix64 rng(seed);
  Coo coo;
  coo.rows = n;
  coo.cols = n;
  auto vid = [side](index_t x, index_t y) { return x * side + y; };
  for (index_t x = 0; x < side; ++x) {
    for (index_t y = 0; y < side; ++y) {
      const index_t u = vid(x, y);
      if (x + 1 < side) {
        coo.push(u, vid(x + 1, y), 1.0f);
        coo.push(vid(x + 1, y), u, 1.0f);
      }
      if (y + 1 < side) {
        coo.push(u, vid(x, y + 1), 1.0f);
        coo.push(vid(x, y + 1), u, 1.0f);
      }
    }
  }
  const auto shortcuts = static_cast<std::int64_t>(shortcut_fraction * n);
  for (std::int64_t s = 0; s < shortcuts; ++s) {
    const auto u = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    coo.push(u, v, 1.0f);
  }
  Csr m = coo_to_csr(coo);
  for (auto& v : m.val) v = 1.0f;
  return m;
}

Csr citation_graph(index_t vertices, std::int64_t edges, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Coo coo;
  coo.rows = vertices;
  coo.cols = vertices;
  // Preferential attachment over a growing endpoint pool: each new edge's
  // destination is either uniform (prob 0.5) or a previously used endpoint,
  // producing the mild degree skew of citation networks.
  std::vector<index_t> pool;
  pool.reserve(static_cast<std::size_t>(edges));
  for (std::int64_t e = 0; e < edges; ++e) {
    const auto u = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(vertices)));
    index_t v;
    if (!pool.empty() && rng.next_double() < 0.5) {
      v = pool[rng.next_below(pool.size())];
    } else {
      v = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(vertices)));
    }
    if (u == v) {
      v = static_cast<index_t>((v + 1) % vertices);
    }
    coo.push(u, v, 1.0f);
    pool.push_back(v);
  }
  Csr m = coo_to_csr(coo);
  for (auto& v : m.val) v = 1.0f;
  return m;
}

Csr pruned_dnn(index_t rows, index_t cols, index_t block, double sparsity,
               std::uint64_t seed) {
  if (block < 1) throw std::runtime_error("pruned_dnn: block must be >= 1");
  if (!(sparsity >= 0.0 && sparsity <= 1.0)) {
    throw std::runtime_error("pruned_dnn: sparsity must be in [0, 1]");
  }
  SplitMix64 rng(seed);
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  const index_t tile_rows = (rows + block - 1) / block;
  const index_t tile_cols = (cols + block - 1) / block;
  for (index_t tr = 0; tr < tile_rows; ++tr) {
    for (index_t tc = 0; tc < tile_cols; ++tc) {
      // One keep/drop draw per tile regardless of outcome, so the kept
      // pattern of early tiles is independent of later shape parameters.
      const bool keep = rng.next_double() >= sparsity;
      if (!keep) continue;
      const index_t r_end = std::min(rows, (tr + 1) * block);
      const index_t c_end = std::min(cols, (tc + 1) * block);
      for (index_t r = tr * block; r < r_end; ++r) {
        for (index_t c = tc * block; c < c_end; ++c) {
          coo.push(r, c, rng.next_float(0.25f, 1.0f));
        }
      }
    }
  }
  Csr m = coo_to_csr(coo);
  for (auto& v : m.val) v = 0.25f + std::fmod(v, 0.75f);
  return m;
}

}  // namespace gespmm::sparse
