#pragma once
/// \file generators.hpp
/// Deterministic graph/matrix generators used to synthesize the paper's
/// workloads: uniform random graphs (Ligra's rand generator, used for the
/// profiling matrices of Tables V/VI and Fig. 3), RMAT power-law graphs
/// (SNAP-style social/web graphs), 2D-grid road networks, and
/// citation-style graphs matching Cora/Citeseer/Pubmed statistics.

#include <cstdint>

#include "sparse/csr.hpp"

namespace gespmm::sparse {

/// Uniform random directed graph: `nnz_target` edges with independently
/// uniform endpoints; duplicates merged (actual nnz <= target, close for
/// sparse matrices). Values uniform in [0.25, 1). This reproduces Ligra's
/// `rand` generator used by the paper for its profiling matrices.
Csr uniform_random(index_t rows, index_t cols, std::int64_t nnz_target,
                   std::uint64_t seed);

/// RMAT recursive-partition generator (Graph500 style). `scale` gives
/// 2^scale vertices; edge_factor edges per vertex. a+b+c+d must be ~1.
Csr rmat(int scale, double edge_factor, double a, double b, double c,
         std::uint64_t seed);

/// Road-network-like graph: sqrt(n) x sqrt(n) 4-neighbour grid with a few
/// random shortcuts; very low, near-uniform degree (nnz/row ~ 2-4).
Csr grid_road(index_t n_approx, double shortcut_fraction, std::uint64_t seed);

/// Citation-style graph: preferential attachment with `mean_degree`
/// out-edges per new vertex, yielding mild skew like Cora/Citeseer/Pubmed.
Csr citation_graph(index_t vertices, std::int64_t edges, std::uint64_t seed);

/// Structured-block pruned-DNN weight matrix (DLMC-style): the rows x cols
/// shape is tiled into `block` x `block` tiles, each tile kept (fully
/// dense) independently with probability 1 - sparsity, so the surviving
/// nonzeros cluster into dense blocks — the structure magnitude/block
/// pruning leaves in transformer and CNN weights. `sparsity` is the
/// target fraction of *zero* entries (DLMC ships 0.70-0.98); kept-tile
/// values are uniform in [0.25, 1). Rows inside a kept tile have >= block
/// consecutive nonzeros sharing their column range, which is exactly the
/// shape the density-partitioned hybrid kernel's tile-window column
/// unions exploit. Throws std::runtime_error for block < 1 or sparsity
/// outside [0, 1].
Csr pruned_dnn(index_t rows, index_t cols, index_t block, double sparsity,
               std::uint64_t seed);

}  // namespace gespmm::sparse
