#pragma once
/// \file sampling.hpp
/// GraphSAGE-style neighbour sampling (paper refs [4], [22]).
///
/// Sampled batch training draws a fresh subgraph every batch — the
/// setting the paper's introduction uses to argue that preprocess-based
/// SpMM formats cannot amortize their conversion cost: the operand
/// changes on every step, so only a conversion-free CSR kernel fits.
/// This module produces those per-batch operands.

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace gespmm::sparse {

/// A sampled computation block: the bipartite aggregation operand from
/// `input_nodes` (columns) to `output_nodes` (rows), in CSR.
struct SampledBlock {
  /// Rows of `adj`: the batch nodes whose representations are computed.
  std::vector<index_t> output_nodes;
  /// Columns of `adj`: the union of sampled neighbours (includes the
  /// output nodes themselves, listed first).
  std::vector<index_t> input_nodes;
  /// output_nodes.size() x input_nodes.size() aggregation operand with
  /// uniform weights 1/deg (mean aggregation).
  Csr adj;
};

struct SampleOptions {
  /// Max neighbours kept per node (GraphSAGE's fanout). <= 0 keeps all.
  int fanout = 10;
  std::uint64_t seed = 0;
};

/// Sample one hop of neighbourhood for `batch` nodes of `graph`.
SampledBlock sample_neighbors(const Csr& graph, std::span<const index_t> batch,
                              const SampleOptions& opt);

/// Multi-layer sampling: layer l aggregates into layer l-1's inputs, so
/// blocks are produced deepest-first (blocks[0] touches the full fanout
/// frontier; blocks.back() outputs the batch nodes), ready to be applied
/// in order during the forward pass.
std::vector<SampledBlock> sample_blocks(const Csr& graph, std::span<const index_t> batch,
                                        int num_layers, const SampleOptions& opt);

/// Deterministic mini-batch node partition (shuffled round-robin).
std::vector<std::vector<index_t>> make_batches(index_t num_nodes, index_t batch_size,
                                               std::uint64_t seed);

}  // namespace gespmm::sparse
