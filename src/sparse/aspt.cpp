#include "sparse/aspt.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "sparse/coo.hpp"

namespace gespmm::sparse {

AsptBuildResult build_aspt(const Csr& a, const AsptBuildOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  AsptBuildResult res;
  AsptMatrix& m = res.matrix;
  m.rows = a.rows;
  m.cols = a.cols;
  m.nnz = a.nnz();
  m.panel_rows = opt.panel_rows;

  std::unordered_map<index_t, index_t> col_count;
  std::unordered_map<index_t, index_t> col_pos;
  for (index_t rb = 0; rb < a.rows; rb += opt.panel_rows) {
    const index_t re = std::min<index_t>(rb + opt.panel_rows, a.rows);
    AsptPanel panel;
    panel.row_begin = rb;
    panel.row_end = re;

    // Histogram column usage across the panel (counts distinct rows by
    // counting entries; rows hold unique columns after merge).
    col_count.clear();
    for (index_t i = rb; i < re; ++i) {
      for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
           p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
        ++col_count[a.colind[static_cast<std::size_t>(p)]];
      }
    }
    // Heavy columns, sorted for deterministic tiles.
    for (const auto& [c, cnt] : col_count) {
      if (cnt >= opt.heavy_threshold) panel.heavy_cols.push_back(c);
    }
    std::sort(panel.heavy_cols.begin(), panel.heavy_cols.end());
    col_pos.clear();
    for (std::size_t k = 0; k < panel.heavy_cols.size(); ++k) {
      col_pos[panel.heavy_cols[k]] = static_cast<index_t>(k);
    }

    // Split each row into heavy / light streams.
    panel.heavy_rowptr.push_back(0);
    panel.light_rowptr.push_back(0);
    for (index_t i = rb; i < re; ++i) {
      for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
           p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
        const index_t c = a.colind[static_cast<std::size_t>(p)];
        const value_t v = a.val[static_cast<std::size_t>(p)];
        auto it = col_pos.find(c);
        if (it != col_pos.end()) {
          panel.heavy_colpos.push_back(it->second);
          panel.heavy_val.push_back(v);
        } else {
          panel.light_colind.push_back(c);
          panel.light_val.push_back(v);
        }
      }
      panel.heavy_rowptr.push_back(static_cast<index_t>(panel.heavy_colpos.size()));
      panel.light_rowptr.push_back(static_cast<index_t>(panel.light_colind.size()));
    }
    m.heavy_nnz += static_cast<index_t>(panel.heavy_colpos.size());
    m.light_nnz += static_cast<index_t>(panel.light_colind.size());
    m.panels.push_back(std::move(panel));
  }

  // Device traffic of a GPU preprocess pass. ASpT's preprocessing is more
  // than a copy: per-panel column histogramming, sorting/selecting heavy
  // columns, and regrouping every entry — several scattered passes over the
  // nnz plus per-panel sort working sets. The paper reports preprocessing
  // between 0.01x and 64.53x of one SpMM execution (avg 0.47x on the GTX
  // 1080Ti); charging ~88 bytes of effective traffic per entry plus a
  // 16 KiB working set per panel (at the reduced efficiency the cost model
  // applies) lands the suite average in that band.
  const std::uint64_t nnz_u = static_cast<std::uint64_t>(a.nnz());
  res.preprocess_traffic_bytes =
      nnz_u * 88 + static_cast<std::uint64_t>(m.panels.size()) * 16384;

  const auto t1 = std::chrono::steady_clock::now();
  res.host_build_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return res;
}

Csr aspt_to_csr(const AsptMatrix& m) {
  Coo coo;
  coo.rows = m.rows;
  coo.cols = m.cols;
  for (const auto& panel : m.panels) {
    const index_t nrows = panel.row_end - panel.row_begin;
    for (index_t r = 0; r < nrows; ++r) {
      const index_t i = panel.row_begin + r;
      for (index_t p = panel.heavy_rowptr[static_cast<std::size_t>(r)];
           p < panel.heavy_rowptr[static_cast<std::size_t>(r) + 1]; ++p) {
        coo.push(i, panel.heavy_cols[static_cast<std::size_t>(
                        panel.heavy_colpos[static_cast<std::size_t>(p)])],
                 panel.heavy_val[static_cast<std::size_t>(p)]);
      }
      for (index_t p = panel.light_rowptr[static_cast<std::size_t>(r)];
           p < panel.light_rowptr[static_cast<std::size_t>(r) + 1]; ++p) {
        coo.push(i, panel.light_colind[static_cast<std::size_t>(p)],
                 panel.light_val[static_cast<std::size_t>(p)]);
      }
    }
  }
  return coo_to_csr(coo);
}

}  // namespace gespmm::sparse
