#pragma once
/// \file aspt.hpp
/// ASpT-style adaptive sparse tiling (paper ref [14], PPoPP'19) — the
/// strongest preprocess-based SpMM baseline the paper compares against
/// (Table VIII).
///
/// Preprocessing partitions rows into panels and, within each panel,
/// identifies "heavy" columns (columns referenced by at least
/// `heavy_threshold` rows of the panel). Entries in heavy columns are
/// regrouped into dense-ish tiles whose B-rows can be staged in shared
/// memory once per panel and reused by every row of the panel; the
/// remaining entries stay in a CSR-like "sparse leftover" stream. This is
/// exactly the dense-matrix-reuse trade the real ASpT makes, and it is what
/// GE-SpMM's sparse-side reuse is orthogonal to (paper Section V-E).

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace gespmm::sparse {

struct AsptPanel {
  index_t row_begin = 0;
  index_t row_end = 0;
  /// Heavy (reused) columns of this panel, tile-major: tiles of up to 32
  /// columns each.
  std::vector<index_t> heavy_cols;
  /// CSR over the panel's rows containing only entries in heavy columns;
  /// column indices are *positions into heavy_cols* (tile-local).
  std::vector<index_t> heavy_rowptr;
  std::vector<index_t> heavy_colpos;
  std::vector<value_t> heavy_val;
  /// CSR over the panel's rows with the leftover (light) entries, with
  /// original column ids.
  std::vector<index_t> light_rowptr;
  std::vector<index_t> light_colind;
  std::vector<value_t> light_val;

  int num_tiles() const {
    return static_cast<int>((heavy_cols.size() + 31) / 32);
  }
};

struct AsptMatrix {
  index_t rows = 0;
  index_t cols = 0;
  index_t nnz = 0;
  int panel_rows = 64;
  std::vector<AsptPanel> panels;

  index_t heavy_nnz = 0;
  index_t light_nnz = 0;
  /// Fraction of nnz placed in reusable heavy tiles.
  double heavy_fraction() const {
    return nnz > 0 ? static_cast<double>(heavy_nnz) / nnz : 0.0;
  }
};

struct AsptBuildOptions {
  int panel_rows = 128;
  /// A column is heavy within a panel if at least this many of the panel's
  /// rows reference it (ASpT's reuse condition).
  int heavy_threshold = 3;
};

/// Build the ASpT representation. This is the *preprocessing pass* whose
/// cost Table VIII charges against ASpT; `preprocess_cost_model_bytes`
/// reports the device traffic it would generate (histogramming + regrouping
/// reads/writes every entry a small number of times).
struct AsptBuildResult {
  AsptMatrix matrix;
  /// Bytes a GPU implementation of the preprocess pass moves (used by the
  /// cost model to price preprocessing in device time).
  std::uint64_t preprocess_traffic_bytes = 0;
  /// Host wall time actually spent building (informational).
  double host_build_ms = 0.0;
};

AsptBuildResult build_aspt(const Csr& a, const AsptBuildOptions& opt = {});

/// Reassemble a CSR from the ASpT representation (for validation: must
/// equal the original up to within-row ordering).
Csr aspt_to_csr(const AsptMatrix& m);

}  // namespace gespmm::sparse
