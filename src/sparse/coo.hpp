#pragma once
/// \file coo.hpp
/// Coordinate-format matrices and conversion to/from CSR. COO is the
/// interchange format used by MatrixMarket I/O and graph generators.

#include <vector>

#include "sparse/csr.hpp"

namespace gespmm::sparse {

struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row;
  std::vector<index_t> col;
  std::vector<value_t> val;

  index_t nnz() const { return static_cast<index_t>(row.size()); }
  void push(index_t r, index_t c, value_t v) {
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }
};

/// Convert to CSR, summing duplicate entries.
Csr coo_to_csr(const Coo& coo);

/// Expand a CSR back to triplets (row-major order).
Coo csr_to_coo(const Csr& csr);

}  // namespace gespmm::sparse
