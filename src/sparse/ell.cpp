#include "sparse/ell.hpp"

namespace gespmm::sparse {

EllR csr_to_ell(const Csr& a) {
  EllR e;
  e.rows = a.rows;
  e.cols = a.cols;
  e.width = a.max_row_nnz();
  e.colind.assign(e.padded_entries(), 0);
  e.val.assign(e.padded_entries(), 0.0f);
  e.rowlen.resize(static_cast<std::size_t>(a.rows));
  for (index_t i = 0; i < a.rows; ++i) {
    const index_t len = a.row_nnz(i);
    e.rowlen[static_cast<std::size_t>(i)] = len;
    for (index_t s = 0; s < len; ++s) {
      const auto src = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(i)] + s);
      const auto dst = static_cast<std::size_t>(s) * static_cast<std::size_t>(a.rows) +
                       static_cast<std::size_t>(i);
      e.colind[dst] = a.colind[src];
      e.val[dst] = a.val[src];
    }
  }
  return e;
}

Csr ell_to_csr(const EllR& e) {
  Csr a(e.rows, e.cols);
  for (index_t i = 0; i < e.rows; ++i) {
    a.rowptr[static_cast<std::size_t>(i) + 1] =
        a.rowptr[static_cast<std::size_t>(i)] + e.rowlen[static_cast<std::size_t>(i)];
  }
  a.colind.resize(static_cast<std::size_t>(a.rowptr.back()));
  a.val.resize(a.colind.size());
  for (index_t i = 0; i < e.rows; ++i) {
    for (index_t s = 0; s < e.rowlen[static_cast<std::size_t>(i)]; ++s) {
      const auto src = static_cast<std::size_t>(s) * static_cast<std::size_t>(e.rows) +
                       static_cast<std::size_t>(i);
      const auto dst = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(i)] + s);
      a.colind[dst] = e.colind[src];
      a.val[dst] = e.val[src];
    }
  }
  return a;
}

}  // namespace gespmm::sparse
