#pragma once
/// \file datasets.hpp
/// The evaluation datasets of the paper, synthesized deterministically:
///  - Cora / Citeseer / Pubmed citation graphs with the published vertex,
///    edge, class and feature counts (paper Table IV),
///  - the three uniform random profiling matrices of Tables V/VI and
///    Fig. 3 (16K/160K, 65K/650K, 262K/2.6M),
///  - a 64-graph SNAP-like suite spanning the SuiteSparse SNAP group's
///    size/skew range at laptop scale (paper Section V-A: M from 1005 to
///    4.8M and nnz/row from 1.58 to 32.53; we span M from ~1K to ~300K
///    with the same nnz/row range — see DESIGN.md for the substitution).

#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace gespmm::sparse {

/// A graph plus GNN metadata.
struct GraphDataset {
  std::string name;
  Csr adj;
  int feature_dim = 0;
  int num_classes = 0;
};

/// Cora: 2708 vertices, 5429 edges, 7 classes, 1433 features.
GraphDataset cora();
/// Citeseer: 3327 vertices, 4732 edges, 6 classes, 3703 features.
GraphDataset citeseer();
/// Pubmed: 19717 vertices, 44338 edges, 3 classes, 500 features.
GraphDataset pubmed();
/// All three, in the paper's order.
std::vector<GraphDataset> citation_suite();

/// The synthetic uniform random profiling matrices of Section V-B.
Csr profile_matrix_16k();   // M = 16384,  nnz ~ 160K
Csr profile_matrix_65k();   // M = 65536,  nnz ~ 650K
Csr profile_matrix_262k();  // M = 262144, nnz ~ 2.6M

/// One entry of the SNAP-like suite.
struct SnapEntry {
  std::string name;
  Csr matrix;
};

/// The 64-graph SNAP-like suite, sorted by name (the paper's matrix_id is
/// the alphabetical rank). `size_factor` in (0, 1] scales every graph's
/// vertex count — tests use small factors, benches the full size.
std::vector<SnapEntry> snap_suite(double size_factor = 1.0);

/// Names only (cheap; used for reporting without building all matrices).
std::vector<std::string> snap_suite_names();

/// Build a single suite entry by alphabetical index (0-based).
SnapEntry snap_suite_entry(int index, double size_factor = 1.0);

/// Number of graphs in the suite.
int snap_suite_size();

}  // namespace gespmm::sparse
