#pragma once
/// \file mm_io.hpp
/// MatrixMarket coordinate I/O so the suite can also run on real
/// SuiteSparse downloads (the paper uses the SuiteSparse SNAP group).
/// Supports `real`/`integer`/`pattern` fields and `general`/`symmetric`
/// symmetry.

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace gespmm::sparse {

/// Parse a MatrixMarket stream. Throws std::runtime_error on malformed
/// input.
Csr read_matrix_market(std::istream& in);

/// Load from a file path.
Csr read_matrix_market_file(const std::string& path);

/// Write in `matrix coordinate real general` format (1-based indices).
void write_matrix_market(std::ostream& out, const Csr& a);
void write_matrix_market_file(const std::string& path, const Csr& a);

}  // namespace gespmm::sparse
