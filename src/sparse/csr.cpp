#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gespmm::sparse {

index_t Csr::max_row_nnz() const {
  index_t mx = 0;
  for (index_t i = 0; i < rows; ++i) mx = std::max(mx, row_nnz(i));
  return mx;
}

void Csr::validate() const {
  if (rows < 0 || cols < 0) throw std::runtime_error("csr: negative dimensions");
  if (rowptr.size() != static_cast<std::size_t>(rows) + 1) {
    throw std::runtime_error("csr: rowptr size != rows + 1");
  }
  if (rowptr.front() != 0) throw std::runtime_error("csr: rowptr[0] != 0");
  for (index_t i = 0; i < rows; ++i) {
    if (rowptr[static_cast<std::size_t>(i) + 1] < rowptr[static_cast<std::size_t>(i)]) {
      throw std::runtime_error("csr: rowptr not monotone at row " + std::to_string(i));
    }
  }
  if (rowptr.back() != nnz()) throw std::runtime_error("csr: rowptr back != nnz");
  if (colind.size() != val.size()) throw std::runtime_error("csr: colind/val size mismatch");
  for (index_t c : colind) {
    if (c < 0 || c >= cols) throw std::runtime_error("csr: column index out of range");
  }
}

bool Csr::rows_sorted() const {
  for (index_t i = 0; i < rows; ++i) {
    for (index_t p = rowptr[static_cast<std::size_t>(i)] + 1;
         p < rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      if (colind[static_cast<std::size_t>(p)] <= colind[static_cast<std::size_t>(p) - 1]) {
        return false;
      }
    }
  }
  return true;
}

void Csr::sort_rows() {
  std::vector<std::pair<index_t, value_t>> tmp;
  for (index_t i = 0; i < rows; ++i) {
    const auto b = static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
    const auto e = static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i) + 1]);
    tmp.clear();
    for (std::size_t p = b; p < e; ++p) tmp.emplace_back(colind[p], val[p]);
    std::stable_sort(tmp.begin(), tmp.end(),
                     [](const auto& x, const auto& y) { return x.first < y.first; });
    for (std::size_t p = b; p < e; ++p) {
      colind[p] = tmp[p - b].first;
      val[p] = tmp[p - b].second;
    }
  }
}

Csr transpose(const Csr& a) {
  Csr t(a.cols, a.rows);
  t.colind.resize(a.colind.size());
  t.val.resize(a.val.size());
  std::vector<index_t> count(static_cast<std::size_t>(a.cols) + 1, 0);
  for (index_t c : a.colind) ++count[static_cast<std::size_t>(c) + 1];
  std::partial_sum(count.begin(), count.end(), count.begin());
  t.rowptr.assign(count.begin(), count.end());
  std::vector<index_t> next(count.begin(), count.end() - 1);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t c = a.colind[static_cast<std::size_t>(p)];
      const index_t dst = next[static_cast<std::size_t>(c)]++;
      t.colind[static_cast<std::size_t>(dst)] = i;
      t.val[static_cast<std::size_t>(dst)] = a.val[static_cast<std::size_t>(p)];
    }
  }
  return t;
}

Csr csr_from_triplets(index_t rows, index_t cols, std::span<const index_t> r,
                      std::span<const index_t> c, std::span<const value_t> v) {
  if (r.size() != c.size() || r.size() != v.size()) {
    throw std::runtime_error("csr_from_triplets: span size mismatch");
  }
  std::vector<std::size_t> order(r.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return r[x] != r[y] ? r[x] < r[y] : c[x] < c[y];
  });

  Csr a(rows, cols);
  a.colind.reserve(r.size());
  a.val.reserve(r.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    if (r[i] < 0 || r[i] >= rows || c[i] < 0 || c[i] >= cols) {
      throw std::runtime_error("csr_from_triplets: index out of range");
    }
    if (!a.colind.empty() && k > 0) {
      const std::size_t prev = order[k - 1];
      if (r[prev] == r[i] && c[prev] == c[i]) {
        a.val.back() += v[i];  // merge duplicates
        continue;
      }
    }
    a.colind.push_back(c[i]);
    a.val.push_back(v[i]);
    ++a.rowptr[static_cast<std::size_t>(r[i]) + 1];
  }
  std::partial_sum(a.rowptr.begin(), a.rowptr.end(), a.rowptr.begin());
  return a;
}

Csr gcn_normalize(const Csr& a) {
  if (a.rows != a.cols) throw std::runtime_error("gcn_normalize: matrix must be square");
  // Build A + I triplets.
  std::vector<index_t> r, c;
  std::vector<value_t> v;
  r.reserve(a.colind.size() + static_cast<std::size_t>(a.rows));
  c.reserve(r.capacity());
  v.reserve(r.capacity());
  for (index_t i = 0; i < a.rows; ++i) {
    r.push_back(i);
    c.push_back(i);
    v.push_back(1.0f);
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      r.push_back(i);
      c.push_back(a.colind[static_cast<std::size_t>(p)]);
      v.push_back(a.val[static_cast<std::size_t>(p)]);
    }
  }
  Csr ai = csr_from_triplets(a.rows, a.cols, r, c, v);
  std::vector<double> deg(static_cast<std::size_t>(a.rows), 0.0);
  for (index_t i = 0; i < ai.rows; ++i) {
    for (index_t p = ai.rowptr[static_cast<std::size_t>(i)];
         p < ai.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      deg[static_cast<std::size_t>(i)] += ai.val[static_cast<std::size_t>(p)];
    }
  }
  for (index_t i = 0; i < ai.rows; ++i) {
    const double di = deg[static_cast<std::size_t>(i)] > 0
                          ? 1.0 / std::sqrt(deg[static_cast<std::size_t>(i)])
                          : 0.0;
    for (index_t p = ai.rowptr[static_cast<std::size_t>(i)];
         p < ai.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = ai.colind[static_cast<std::size_t>(p)];
      const double dj = deg[static_cast<std::size_t>(j)] > 0
                            ? 1.0 / std::sqrt(deg[static_cast<std::size_t>(j)])
                            : 0.0;
      ai.val[static_cast<std::size_t>(p)] =
          static_cast<value_t>(ai.val[static_cast<std::size_t>(p)] * di * dj);
    }
  }
  return ai;
}

Csr row_normalize(const Csr& a) {
  Csr out = a;
  for (index_t i = 0; i < out.rows; ++i) {
    double sum = 0.0;
    for (index_t p = out.rowptr[static_cast<std::size_t>(i)];
         p < out.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      sum += out.val[static_cast<std::size_t>(p)];
    }
    if (sum == 0.0) continue;
    for (index_t p = out.rowptr[static_cast<std::size_t>(i)];
         p < out.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      out.val[static_cast<std::size_t>(p)] =
          static_cast<value_t>(out.val[static_cast<std::size_t>(p)] / sum);
    }
  }
  return out;
}

DegreeStats degree_stats(const Csr& a) {
  DegreeStats s;
  if (a.rows == 0) return s;
  s.min = a.row_nnz(0);
  double sum = 0.0, sq = 0.0;
  for (index_t i = 0; i < a.rows; ++i) {
    const index_t d = a.row_nnz(i);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    sum += d;
    sq += static_cast<double>(d) * d;
  }
  s.mean = sum / a.rows;
  s.stddev = std::sqrt(std::max(0.0, sq / a.rows - s.mean * s.mean));
  return s;
}

}  // namespace gespmm::sparse
