#include "sparse/sampling.hpp"

#include <algorithm>
#include <unordered_map>

#include "sparse/coo.hpp"
#include "sparse/rng.hpp"

namespace gespmm::sparse {

SampledBlock sample_neighbors(const Csr& graph, std::span<const index_t> batch,
                              const SampleOptions& opt) {
  SplitMix64 rng(opt.seed);
  SampledBlock block;
  block.output_nodes.assign(batch.begin(), batch.end());

  // Input nodes: output nodes first (self features are always needed),
  // then newly discovered neighbours in sampling order.
  std::unordered_map<index_t, index_t> input_pos;
  for (index_t v : batch) {
    if (input_pos.emplace(v, static_cast<index_t>(block.input_nodes.size())).second) {
      block.input_nodes.push_back(v);
    }
  }

  Coo coo;
  std::vector<index_t> candidates;
  for (std::size_t bi = 0; bi < batch.size(); ++bi) {
    const index_t v = batch[bi];
    const index_t lo = graph.rowptr[static_cast<std::size_t>(v)];
    const index_t hi = graph.rowptr[static_cast<std::size_t>(v) + 1];
    candidates.clear();
    for (index_t p = lo; p < hi; ++p) candidates.push_back(p);
    // Uniform without replacement up to the fanout (Fisher-Yates prefix).
    const int keep = opt.fanout > 0
                         ? std::min<int>(opt.fanout, static_cast<int>(candidates.size()))
                         : static_cast<int>(candidates.size());
    for (int k = 0; k < keep; ++k) {
      const auto swap_with =
          k + static_cast<int>(rng.next_below(candidates.size() - static_cast<std::size_t>(k)));
      std::swap(candidates[static_cast<std::size_t>(k)],
                candidates[static_cast<std::size_t>(swap_with)]);
      const index_t p = candidates[static_cast<std::size_t>(k)];
      const index_t u = graph.colind[static_cast<std::size_t>(p)];
      auto [it, inserted] =
          input_pos.emplace(u, static_cast<index_t>(block.input_nodes.size()));
      if (inserted) block.input_nodes.push_back(u);
      coo.push(static_cast<index_t>(bi), it->second, 1.0f);
    }
  }
  coo.rows = static_cast<index_t>(block.output_nodes.size());
  coo.cols = static_cast<index_t>(block.input_nodes.size());
  block.adj = coo_to_csr(coo);
  block.adj = row_normalize(block.adj);  // mean aggregation weights
  return block;
}

std::vector<SampledBlock> sample_blocks(const Csr& graph, std::span<const index_t> batch,
                                        int num_layers, const SampleOptions& opt) {
  // Sample from the batch outward, then reverse so application order is
  // deepest-first.
  std::vector<SampledBlock> blocks;
  std::vector<index_t> frontier(batch.begin(), batch.end());
  for (int l = 0; l < num_layers; ++l) {
    SampleOptions o = opt;
    o.seed = opt.seed * 1315423911u + static_cast<std::uint64_t>(l) + 1;
    blocks.push_back(sample_neighbors(graph, frontier, o));
    frontier = blocks.back().input_nodes;
  }
  std::reverse(blocks.begin(), blocks.end());
  return blocks;
}

std::vector<std::vector<index_t>> make_batches(index_t num_nodes, index_t batch_size,
                                               std::uint64_t seed) {
  if (batch_size <= 0) throw std::invalid_argument("make_batches: batch_size must be > 0");
  std::vector<index_t> order(static_cast<std::size_t>(num_nodes));
  for (index_t i = 0; i < num_nodes; ++i) order[static_cast<std::size_t>(i)] = i;
  SplitMix64 rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  std::vector<std::vector<index_t>> batches;
  for (std::size_t start = 0; start < order.size(); start += static_cast<std::size_t>(batch_size)) {
    const auto end = std::min(order.size(), start + static_cast<std::size_t>(batch_size));
    batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                         order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace gespmm::sparse
