#include "sparse/mm_io.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "sparse/coo.hpp"

namespace gespmm::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Csr read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("mm: empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") throw std::runtime_error("mm: missing banner");
  if (lower(object) != "matrix" || lower(format) != "coordinate") {
    throw std::runtime_error("mm: only coordinate matrices are supported");
  }
  field = lower(field);
  symmetry = lower(symmetry);
  if (field != "real" && field != "integer" && field != "pattern") {
    throw std::runtime_error("mm: unsupported field: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw std::runtime_error("mm: unsupported symmetry: " + symmetry);
  }

  // Skip comments, read size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long rows = 0, cols = 0, entries = 0;
  if (!(size_line >> rows >> cols >> entries)) {
    throw std::runtime_error("mm: bad size line");
  }

  Coo coo;
  coo.rows = static_cast<index_t>(rows);
  coo.cols = static_cast<index_t>(cols);
  for (long long k = 0; k < entries; ++k) {
    if (!std::getline(in, line)) throw std::runtime_error("mm: truncated entries");
    std::istringstream e(line);
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(e >> r >> c)) throw std::runtime_error("mm: bad entry line");
    if (field != "pattern" && !(e >> v)) throw std::runtime_error("mm: missing value");
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    coo.push(ri, ci, static_cast<value_t>(v));
    if (symmetry == "symmetric" && ri != ci) coo.push(ci, ri, static_cast<value_t>(v));
  }
  Csr out = coo_to_csr(coo);
  out.validate();
  return out;
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("mm: cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const Csr& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by gespmm\n";
  // max_digits10 so every float value survives a write -> read roundtrip;
  // restored on return so a shared stream's formatting is not hijacked.
  const auto saved_precision =
      out.precision(std::numeric_limits<value_t>::max_digits10);
  out << a.rows << ' ' << a.cols << ' ' << a.nnz() << '\n';
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      out << (i + 1) << ' ' << (a.colind[static_cast<std::size_t>(p)] + 1) << ' '
          << a.val[static_cast<std::size_t>(p)] << '\n';
    }
  }
  out.precision(saved_precision);
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("mm: cannot open " + path + " for writing");
  write_matrix_market(f, a);
}

}  // namespace gespmm::sparse
