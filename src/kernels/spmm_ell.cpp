#include "kernels/spmm_ell.hpp"

#include "kernels/registry.hpp"

namespace gespmm::kernels {

gpusim::LaunchResult run_spmm_ell(const EllDevice& ell, SpmmProblem& p,
                                  const SpmmRunOptions& opt) {
  return with_semiring(opt.reduce, [&]<typename R>() {
    SpmmEllKernel<R> k(ell, p);
    return gpusim::launch(opt.device, k, opt.sample);
  });
}

}  // namespace gespmm::kernels
