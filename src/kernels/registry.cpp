#include "kernels/registry.hpp"

#include <stdexcept>

#include "kernels/spmm_aspt.hpp"
#include "kernels/spmm_crc.hpp"
#include "kernels/spmm_crc_cwm.hpp"
#include "kernels/spmm_csrmm2.hpp"
#include "kernels/spmm_dgl_fallback.hpp"
#include "kernels/spmm_gunrock.hpp"
#include "kernels/spmm_hybrid.hpp"
#include "kernels/spmm_mergesplit.hpp"
#include "kernels/spmm_naive.hpp"
#include "kernels/spmm_rowsplit.hpp"
#include "kernels/spmm_spmv_loop.hpp"

namespace gespmm::kernels {

SpmmRunOptions::SpmmRunOptions() : device(gpusim::gtx1080ti()) {}

const char* algo_name(SpmmAlgo a) {
  switch (a) {
    case SpmmAlgo::Naive: return "naive(alg1)";
    case SpmmAlgo::Crc: return "crc(alg2)";
    case SpmmAlgo::CrcCwm2: return "crc+cwm(cf=2)";
    case SpmmAlgo::CrcCwm4: return "crc+cwm(cf=4)";
    case SpmmAlgo::CrcCwm8: return "crc+cwm(cf=8)";
    case SpmmAlgo::GeSpMM: return "ge-spmm";
    case SpmmAlgo::RowSplitGB: return "rowsplit(graphblast)";
    case SpmmAlgo::MergeSplitGB: return "mergesplit(graphblast)";
    case SpmmAlgo::Csrmm2: return "csrmm2(cusparse)";
    case SpmmAlgo::SpmvLoop: return "spmv-loop";
    case SpmmAlgo::Gunrock: return "advance(gunrock)";
    case SpmmAlgo::DglFallback: return "dgl-fallback";
    case SpmmAlgo::Aspt: return "aspt";
    case SpmmAlgo::HybridMma: return "hybrid(mma+simt)";
  }
  return "?";
}

std::vector<SpmmAlgo> standard_spmm_algos() {
  return {SpmmAlgo::Naive,      SpmmAlgo::Crc,    SpmmAlgo::CrcCwm2,
          SpmmAlgo::CrcCwm4,    SpmmAlgo::CrcCwm8, SpmmAlgo::GeSpMM,
          SpmmAlgo::RowSplitGB, SpmmAlgo::MergeSplitGB, SpmmAlgo::Csrmm2,
          SpmmAlgo::SpmvLoop,   SpmmAlgo::Gunrock, SpmmAlgo::DglFallback,
          SpmmAlgo::Aspt};
}

SpmmAlgo select_gespmm_algo(index_t n) {
  return n <= gpusim::kWarpSize ? SpmmAlgo::Crc : SpmmAlgo::CrcCwm2;
}

namespace {

template <template <typename> class KernelT>
gpusim::LaunchResult run_semiring_kernel(SpmmProblem& p, const SpmmRunOptions& opt) {
  return with_semiring(opt.reduce, [&]<typename R>() {
    KernelT<R> k(p);
    return gpusim::launch(opt.device, k, opt.sample);
  });
}

template <int CF>
gpusim::LaunchResult run_cwm(SpmmProblem& p, const SpmmRunOptions& opt) {
  return with_semiring(opt.reduce, [&]<typename R>() {
    SpmmCrcCwmKernel<R, CF> k(p);
    return gpusim::launch(opt.device, k, opt.sample);
  });
}

void require_sum(const SpmmRunOptions& opt, const char* what) {
  if (opt.reduce != ReduceKind::Sum) {
    throw std::invalid_argument(std::string(what) +
                                " supports only the standard sum reduction");
  }
}

gpusim::LaunchResult run_spmv_loop(SpmmProblem& p, const SpmmRunOptions& opt) {
  // One launch per output column; times and metrics accumulate.
  gpusim::LaunchResult total;
  const index_t n = p.n();
  for (index_t j = 0; j < n; ++j) {
    auto r = with_semiring(opt.reduce, [&]<typename R>() {
      SpmvColumnKernel<R> k(p, j);
      return gpusim::launch(opt.device, k, opt.sample);
    });
    if (j == 0) {
      total = r;
    } else {
      total.metrics += r.metrics;
      total.time.total_ms += r.time.total_ms;
      total.time.dram_ms += r.time.dram_ms;
      total.time.l2_ms += r.time.l2_ms;
      total.time.launch_overhead_ms += r.time.launch_overhead_ms;
    }
  }
  return total;
}

gpusim::LaunchResult run_gunrock(SpmmProblem& p, const SpmmRunOptions& opt) {
  require_sum(opt, "gunrock advance");
  // Expand the edge frontier (source vertex per edge) as GunRock does.
  std::vector<index_t> src(static_cast<std::size_t>(p.A.nnz()));
  for (index_t i = 0; i < p.A.rows; ++i) {
    for (index_t e = p.A.rowptr[static_cast<std::size_t>(i)];
         e < p.A.rowptr[static_cast<std::size_t>(i) + 1]; ++e) {
      src[static_cast<std::size_t>(e)] = i;
    }
  }
  gpusim::DeviceArray<index_t> edge_src{std::span<const index_t>(src)};
  p.C.fill(0.0f);  // atomics accumulate into zero-initialized C
  SpmmGunrockKernel k(p, edge_src);
  return gpusim::launch(opt.device, k, opt.sample);
}

}  // namespace

double aspt_preprocess_time_ms(const sparse::AsptBuildResult& build,
                               const gpusim::DeviceSpec& dev) {
  // Preprocessing streams the matrix several times with scattered access
  // (histogram, per-panel sort, regroup); charge its traffic at a quarter
  // of peak DRAM bandwidth plus a few kernel launches.
  const double bytes = static_cast<double>(build.preprocess_traffic_bytes);
  return bytes / (dev.dram_bw_gbps * 0.25 * 1e9) * 1e3 + 4.0 * dev.launch_overhead_us * 1e-3;
}

gpusim::LaunchResult run_spmm_aspt(const AsptDevice& aspt, SpmmProblem& p,
                                   const SpmmRunOptions& opt) {
  require_sum(opt, "aspt");
  SpmmAsptKernel k(aspt, p);
  return gpusim::launch(opt.device, k, opt.sample);
}

gpusim::LaunchResult run_spmm(SpmmAlgo algo, SpmmProblem& p, const SpmmRunOptions& opt) {
  switch (algo) {
    case SpmmAlgo::Naive: return run_semiring_kernel<SpmmNaiveKernel>(p, opt);
    case SpmmAlgo::Crc: return run_semiring_kernel<SpmmCrcKernel>(p, opt);
    case SpmmAlgo::CrcCwm2: return run_cwm<2>(p, opt);
    case SpmmAlgo::CrcCwm4: return run_cwm<4>(p, opt);
    case SpmmAlgo::CrcCwm8: return run_cwm<8>(p, opt);
    case SpmmAlgo::GeSpMM: return run_spmm(select_gespmm_algo(p.n()), p, opt);
    case SpmmAlgo::RowSplitGB: return run_semiring_kernel<SpmmRowSplitGBKernel>(p, opt);
    case SpmmAlgo::MergeSplitGB: {
      require_sum(opt, "mergesplit");
      // Rows spanning chunk boundaries combine atomically, so the output
      // starts zeroed (GraphBLAST runs the same init pass).
      p.C.fill(0.0f);
      SpmmMergeSplitKernel k(p);
      return gpusim::launch(opt.device, k, opt.sample);
    }
    case SpmmAlgo::Csrmm2: {
      require_sum(opt, "csrmm2");
      if (p.C.layout() != Layout::ColMajor) {
        throw std::invalid_argument("csrmm2 writes column-major C; "
                                    "construct the problem with Layout::ColMajor");
      }
      SpmmCsrmm2Kernel k(p);
      return gpusim::launch(opt.device, k, opt.sample);
    }
    case SpmmAlgo::SpmvLoop: return run_spmv_loop(p, opt);
    case SpmmAlgo::Gunrock: return run_gunrock(p, opt);
    case SpmmAlgo::DglFallback: return run_semiring_kernel<SpmmDglFallbackKernel>(p, opt);
    case SpmmAlgo::Aspt:
      throw std::invalid_argument(
          "run_spmm(Aspt): use run_spmm_aspt with a prebuilt AsptDevice "
          "(preprocessing is a separate, charged step)");
    case SpmmAlgo::HybridMma: return run_spmm_hybrid(p, opt);
  }
  throw std::invalid_argument("unknown SpmmAlgo");
}

}  // namespace gespmm::kernels
