#pragma once
/// \file spmm_problem.hpp
/// Device-resident SpMM problem instance: the CSR operand uploaded to
/// simulated device buffers plus the dense input/output matrices. Kernels
/// hold references to a problem; uploading once lets benches launch many
/// kernels against the same operands.

#include "gpusim/device_array.hpp"
#include "kernels/dense.hpp"
#include "sparse/csr.hpp"

namespace gespmm::kernels {

/// CSR arrays in device buffers.
struct CsrDevice {
  index_t rows = 0;
  index_t cols = 0;
  gpusim::DeviceArray<index_t> rowptr;
  gpusim::DeviceArray<index_t> colind;
  gpusim::DeviceArray<value_t> val;

  CsrDevice() = default;
  explicit CsrDevice(const sparse::Csr& a)
      : rows(a.rows), cols(a.cols),
        rowptr(std::span<const index_t>(a.rowptr)),
        colind(std::span<const index_t>(a.colind)),
        val(std::span<const value_t>(a.val)) {}

  index_t nnz() const { return static_cast<index_t>(colind.size()); }
};

/// A = M x K sparse, B = K x N dense (row-major), C = M x N dense.
struct SpmmProblem {
  CsrDevice A;
  DenseMatrix B;
  DenseMatrix C;

  SpmmProblem() = default;
  /// Upload A, allocate B (caller fills) and C for the given N.
  SpmmProblem(const sparse::Csr& a, index_t n, Layout c_layout = Layout::RowMajor)
      : A(a), B(a.cols, n), C(a.rows, n, c_layout) {}

  index_t m() const { return A.rows; }
  index_t k() const { return A.cols; }
  index_t n() const { return B.cols(); }

  /// Nominal FLOP count the paper uses for GFLOPS: 2 * nnz * N.
  double nominal_flops() const {
    return 2.0 * static_cast<double>(A.nnz()) * static_cast<double>(n());
  }
};

}  // namespace gespmm::kernels
