#pragma once
/// \file spmm_dgl_fallback.hpp
/// DGL's own SpMM-like fallback kernel (paper Sections I, II-C and V-F):
/// cuSPARSE provides no custom-reduction SpMM, so DGL falls back to its
/// generic message/reduce kernel. The mapping parallelizes (node, feature)
/// pairs like Algorithm 1, so dense loads are coalesced, but the kernel is
/// generic: every edge pays an *edge-id indirection* (DGL addresses edge
/// data through an edge-index array), the per-edge combine goes through a
/// functor dispatch (extra instructions), and there is no sparse-row
/// caching or warp merging. The result is the 8.8%-139.1% loss vs csrmm2
/// of Table II and the 2.39x-6.15x gap to GE-SpMM-like of Table IX.

#include "gpusim/gpusim.hpp"
#include "kernels/row_block_mapping.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

template <typename Reduce = MaxReduce>
class SpmmDglFallbackKernel final : public gpusim::Kernel {
 public:
  explicit SpmmDglFallbackKernel(SpmmProblem& p)
      : p_(&p), map_(RowBlockMapping::create(p.m(), p.n(), /*cf=*/1)) {
    // DGL's COO-style edge-id indirection: edge data is addressed through
    // an index array (identity here, as after CSR conversion).
    std::vector<index_t> ids(static_cast<std::size_t>(p.A.nnz()));
    for (index_t e = 0; e < p.A.nnz(); ++e) ids[static_cast<std::size_t>(e)] = e;
    edge_ids_ = gpusim::DeviceArray<index_t>(std::span<const index_t>(ids));
  }

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = map_.grid();
    cfg.block = map_.block_dim;
    cfg.regs_per_thread = 36;  // generic functor state
    cfg.ilp = 1.0;
    return cfg;
  }

  std::string name() const override { return "dgl-fallback(spmm-like)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    sparse::index_t i;
    long long chunk;
    map_.decode(blk.block_id(), i, chunk);
    const long long n = map_.n;

    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long j0 = map_.warp_col_base(chunk, w);
      const LaneMask mask = map_.col_mask(j0);
      if (mask == 0) continue;
      WarpCtx warp = blk.warp(w);

      const index_t lo = warp.ld_broadcast(p_->A.rowptr, i, mask);
      const index_t hi = warp.ld_broadcast(p_->A.rowptr, i + 1, mask);
      const std::int64_t c_base = static_cast<std::int64_t>(i) * n + j0;

      // The generic reduce functor cannot be accumulated in registers (it
      // is type-erased), so the kernel read-modify-writes the output in
      // global memory for every edge — the costliest habit of the fallback.
      warp.st_contig(p_->C.device(), c_base, splat(Reduce::init()), mask);
      for (index_t ptr = lo; ptr < hi; ++ptr) {
        // Edge-id indirection, then neighbour id, then edge value — three
        // dependent broadcast loads per edge.
        const index_t eid = warp.ld_broadcast(edge_ids_, ptr, mask);
        const index_t k = warp.ld_broadcast(p_->A.colind, eid, mask);
        const value_t v = warp.ld_broadcast(p_->A.val, eid, mask);
        const Lanes<value_t> b =
            warp.ld_contig(p_->B.device(), static_cast<std::int64_t>(k) * n + j0, mask);
        Lanes<value_t> cur = warp.ld_contig(p_->C.device(), c_base, mask);
        for (int l = 0; l < kWarpSize; ++l) {
          if (lane_active(mask, l)) {
            cur[static_cast<std::size_t>(l)] = Reduce::reduce(
                cur[static_cast<std::size_t>(l)],
                Reduce::combine(v, b[static_cast<std::size_t>(l)]));
          }
        }
        warp.st_contig(p_->C.device(), c_base, cur, mask);
        warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
        // Functor dispatch + bounds checks of the generic message kernel.
        warp.count_inst(8);
      }
      // Finalize pass (degree normalization for mean, identity otherwise).
      Lanes<value_t> fin = warp.ld_contig(p_->C.device(), c_base, mask);
      for (int l = 0; l < kWarpSize; ++l) {
        if (lane_active(mask, l)) {
          fin[static_cast<std::size_t>(l)] =
              Reduce::finalize(fin[static_cast<std::size_t>(l)], hi - lo);
        }
      }
      warp.st_contig(p_->C.device(), c_base, fin, mask);
    }
  }

 private:
  SpmmProblem* p_;
  RowBlockMapping map_;
  gpusim::DeviceArray<index_t> edge_ids_;
};

}  // namespace gespmm::kernels
