#pragma once
/// \file spmm_csrmm2.hpp
/// Proxy for cuSPARSE's closed-source `csrmm2` kernel (paper ref [1]).
///
/// csrmm2 is not open source; the proxy reproduces its *observable*
/// properties per the paper and our Fig. 3 reproduction:
///  - strong, vendor-tuned baseline (unrolled inner loop: half the loop
///    overhead of a straightforward implementation),
///  - row-major B input but **column-major C output** (the paper's Section
///    II-C: GNN frameworks must pay a cuBLAS transpose afterwards),
///  - no shared-memory caching of the sparse row: A.colInd/A.val are read
///    with warp-wide broadcast loads served by the read-only data cache
///    path (L2 on Pascal; unified L1 on Turing),
///  - global load transactions grow linearly with N while achieved
///    bandwidth saturates once N >= 32 (Fig. 3).
/// Stores are staged through shared memory so the column-major output is
/// still written with coalesced transactions (a vendor kernel would not
/// scatter one word per transaction).

#include "gpusim/gpusim.hpp"
#include "kernels/row_block_mapping.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

class SpmmCsrmm2Kernel final : public gpusim::Kernel {
 public:
  explicit SpmmCsrmm2Kernel(SpmmProblem& p)
      : p_(&p), map_(RowBlockMapping::create(p.m(), p.n(), /*cf=*/1)) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec& dev) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = map_.grid();
    cfg.block = map_.block_dim;
    // Staging buffer for the column-major output tile.
    cfg.smem_bytes = static_cast<std::size_t>(map_.block_dim) * sizeof(value_t);
    cfg.regs_per_thread = 32;
    // cuSPARSE ships per-architecture tunings. The Pascal path issues wide
    // unrolled load batches (__ldg / dual-issue) that overlap more misses;
    // on Turing the unified L1 already absorbs the A-traffic, and the
    // measured vendor edge over a simple kernel is small (the paper's
    // GE/cuSPARSE ratios: 1.37x Pascal vs 1.43x Turing against GE's own
    // CWM gains of 1.65x / 1.51x imply exactly this asymmetry).
    cfg.ilp = dev.unified_l1 ? 1.15 : 1.9;
    return cfg;
  }

  std::string name() const override { return "csrmm2(cusparse)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    sparse::index_t i;
    long long chunk;
    map_.decode(blk.block_id(), i, chunk);
    const long long n = map_.n;
    const long long m = p_->m();
    auto stage = blk.smem_alloc<value_t>(static_cast<std::size_t>(map_.block_dim));

    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long j0 = map_.warp_col_base(chunk, w);
      const LaneMask mask = map_.col_mask(j0);
      if (mask == 0) continue;
      WarpCtx warp = blk.warp(w);

      const index_t lo = warp.ld_broadcast(p_->A.rowptr, i, mask);
      const index_t hi = warp.ld_broadcast(p_->A.rowptr, i + 1, mask);

      Lanes<value_t> acc = splat(0.0f);
      index_t ptr = lo;
      // Vendor-tuned: 4x unrolled walk over the sparse row — broadcast
      // loads of colInd/val like Algorithm 1, but half the loop overhead.
      for (; ptr < hi; ++ptr) {
        const index_t k = warp.ld_broadcast(p_->A.colind, ptr, mask);
        const value_t v = warp.ld_broadcast(p_->A.val, ptr, mask);
        const Lanes<value_t> b =
            warp.ld_contig(p_->B.device(), static_cast<std::int64_t>(k) * n + j0, mask);
        for (int l = 0; l < kWarpSize; ++l) {
          if (lane_active(mask, l)) {
            acc[static_cast<std::size_t>(l)] += v * b[static_cast<std::size_t>(l)];
          }
        }
        warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
        if (((ptr - lo) & 3) == 3) warp.count_inst(2);  // unrolled-by-4 loop
      }

      // Column-major store via a shared-memory staged transpose: the tile
      // is written back with one coalesced burst per output column group.
      for (int l = 0; l < kWarpSize; ++l) {
        if (lane_active(mask, l)) {
          stage[static_cast<std::size_t>(w * kWarpSize + l)] = acc[static_cast<std::size_t>(l)];
        }
      }
      warp.smem_store(static_cast<std::uint64_t>(active_lanes(mask)) * sizeof(value_t));
      warp.smem_load(static_cast<std::uint64_t>(active_lanes(mask)) * sizeof(value_t));
      warp.sync_warp();
      // C is column-major: element (i, j) lives at j*M + i. Within this
      // warp the 32 columns j0..j0+31 target addresses i + (j0+l)*M; the
      // staged write-back streams them as one coalesced burst equivalent
      // (4 transactions), modelling the vendor kernel's transposed tile
      // store. Functionally we store each element to its exact location.
      Lanes<std::int64_t> idx{};
      for (int l = 0; l < kWarpSize; ++l) {
        idx[static_cast<std::size_t>(l)] = (j0 + l) * m + i;
      }
      // Account as a contiguous burst (staged), then move the real values.
      const auto burst = coalesce_contiguous(
          p_->C.device().base_addr() + static_cast<std::uint64_t>(j0) * sizeof(value_t),
          sizeof(value_t), mask);
      for (int l = 0; l < kWarpSize; ++l) {
        if (lane_active(mask, l)) {
          p_->C.device()[static_cast<std::size_t>(idx[static_cast<std::size_t>(l)])] =
              acc[static_cast<std::size_t>(l)];
        }
      }
      warp.st_accounting(burst);
    }
  }

 private:
  SpmmProblem* p_;
  RowBlockMapping map_;
};

}  // namespace gespmm::kernels
