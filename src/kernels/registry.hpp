#pragma once
/// \file registry.hpp
/// Uniform runtime dispatch over every SpMM implementation in the project:
/// benches and tests name an algorithm and get back a simulated launch
/// result (metrics + modelled time) with the output written into the
/// problem's C matrix.

#include <string>
#include <vector>

#include "gpusim/launch.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"
#include "sparse/aspt.hpp"

namespace gespmm::kernels {

enum class SpmmAlgo {
  Naive,       ///< Algorithm 1 (simple parallel CSR SpMM)
  Crc,         ///< Algorithm 2 (Coalesced Row Caching)
  CrcCwm2,     ///< Algorithm 3, coarsening factor 2 (GE-SpMM default, N>32)
  CrcCwm4,     ///< Algorithm 3, CF=4
  CrcCwm8,     ///< Algorithm 3, CF=8
  GeSpMM,      ///< Adaptive: CRC for N<=32, CRC+CWM(CF=2) otherwise (Fig. 7)
  RowSplitGB,  ///< GraphBLAST rowsplit
  MergeSplitGB,///< GraphBLAST merge-based split (nnz-balanced, sum only)
  Csrmm2,      ///< cuSPARSE csrmm2 proxy (column-major C, sum only)
  SpmvLoop,    ///< warp-per-row SpMV executed once per column
  Gunrock,     ///< graph-engine advance (edge-parallel, sum only)
  DglFallback, ///< DGL's scalar SpMM-like fallback kernel
  Aspt,        ///< ASpT tiled kernel (sum only; preprocess charged separately)
  HybridMma,   ///< Density-partitioned hybrid: dense rows on the MMA pipe,
               ///< ragged rows on CRC (spmm_hybrid.hpp)
};

const char* algo_name(SpmmAlgo a);

/// Algorithms that compute standard SpMM (comparable on sum-reduce).
std::vector<SpmmAlgo> standard_spmm_algos();

/// GE-SpMM's adaptive algorithm choice (paper Fig. 7(c)): CWM is not worth
/// its overhead when one warp already covers all columns.
SpmmAlgo select_gespmm_algo(index_t n);

struct SpmmRunOptions {
  gpusim::DeviceSpec device;
  gpusim::SamplePolicy sample = gpusim::SamplePolicy::full();
  ReduceKind reduce = ReduceKind::Sum;

  SpmmRunOptions();  // defaults to gtx1080ti
};

/// Run `algo` on `p` and return the simulated launch result. C is written
/// (fully when sample is full; partially under sampling). Throws
/// std::invalid_argument for algorithms that do not support the requested
/// reduction (csrmm2/GunRock/ASpT are sum-only, as their originals are).
gpusim::LaunchResult run_spmm(SpmmAlgo algo, SpmmProblem& p,
                              const SpmmRunOptions& opt = SpmmRunOptions());

/// ASpT with a caller-provided prebuilt operand (so benches can charge
/// preprocessing separately from kernel time).
gpusim::LaunchResult run_spmm_aspt(const struct AsptDevice& aspt, SpmmProblem& p,
                                   const SpmmRunOptions& opt = SpmmRunOptions());

/// Device time the ASpT preprocessing pass would take (traffic from the
/// build result through the device's bandwidth model).
double aspt_preprocess_time_ms(const sparse::AsptBuildResult& build,
                               const gpusim::DeviceSpec& dev);

}  // namespace gespmm::kernels
