#pragma once
/// \file spmm_aspt.hpp
/// SpMM over the ASpT format (paper ref [14], compared in Table VIII).
///
/// ASpT's edge over CSR kernels is *dense-matrix* reuse: preprocessing
/// groups entries that share columns within a 64-row panel into "heavy"
/// tiles; the kernel stages the B rows of a heavy tile in shared memory
/// once per panel and every row of the panel reads them from there, cutting
/// global B traffic by the intra-panel reuse factor. Leftover "light"
/// entries are processed CRC-style from global memory. This reuse is
/// orthogonal to GE-SpMM's sparse-side reuse — exactly the relationship
/// the paper describes — and it only pays off after a preprocessing pass
/// whose cost Table VIII charges separately.

#include <vector>

#include "gpusim/gpusim.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"
#include "sparse/aspt.hpp"

namespace gespmm::kernels {

/// Flattened, device-resident ASpT operand.
struct AsptDevice {
  index_t rows = 0;
  index_t cols = 0;
  int panel_rows = 64;
  index_t num_panels = 0;

  gpusim::DeviceArray<index_t> panel_row_begin;  // per panel
  gpusim::DeviceArray<index_t> hc_ptr;           // per panel+1: offsets into heavy_cols
  gpusim::DeviceArray<index_t> heavy_cols;
  gpusim::DeviceArray<index_t> heavy_rowptr;  // flattened per-panel (rows+1) local ptrs
  gpusim::DeviceArray<index_t> heavy_rp_off;  // per panel: offset into heavy_rowptr
  gpusim::DeviceArray<index_t> heavy_ent_off; // per panel: offset into heavy entries
  gpusim::DeviceArray<index_t> heavy_colpos;
  gpusim::DeviceArray<value_t> heavy_val;
  gpusim::DeviceArray<index_t> light_rowptr;
  gpusim::DeviceArray<index_t> light_rp_off;
  gpusim::DeviceArray<index_t> light_ent_off;
  gpusim::DeviceArray<index_t> light_colind;
  gpusim::DeviceArray<value_t> light_val;

  explicit AsptDevice(const sparse::AsptMatrix& m);
};

class SpmmAsptKernel final : public gpusim::Kernel {
 public:
  static constexpr int kWarpsPerBlock = 8;
  static constexpr int kTileCols = 32;

  SpmmAsptKernel(const AsptDevice& aspt, SpmmProblem& p) : a_(&aspt), p_(&p) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    const long long chunks = (static_cast<long long>(p_->n()) + 31) / 32;
    cfg.grid = static_cast<long long>(a_->num_panels) * chunks;
    cfg.block = kWarpsPerBlock * gpusim::kWarpSize;
    // Staged B tile (32 columns x 32 output lanes) + tile column ids.
    cfg.smem_bytes = kTileCols * 32 * sizeof(value_t) + kTileCols * sizeof(index_t);
    cfg.regs_per_thread = 40;
    // ASpT double-buffers tile staging against consumption.
    cfg.ilp = 1.8;
    return cfg;
  }

  std::string name() const override { return "aspt"; }

  void run_block(gpusim::BlockCtx& blk) const override;

 private:
  const AsptDevice* a_;
  SpmmProblem* p_;
};

}  // namespace gespmm::kernels
