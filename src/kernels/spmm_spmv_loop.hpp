#pragma once
/// \file spmm_spmv_loop.hpp
/// The straightforward generalization the paper's Fig. 2 warns against:
/// running a warp-per-row SpMV (Bell & Garland, paper ref [17]) once per
/// output column. Each SpMV gathers B[k, j] with a fixed j across random
/// rows k — stride-N access that coalesces terribly — and the whole matrix
/// A is re-read N times. One instance of this kernel is a single-column
/// SpMV; the registry loops it over all N columns and sums launches.

#include "gpusim/gpusim.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

template <typename Reduce = SumReduce>
class SpmvColumnKernel final : public gpusim::Kernel {
 public:
  static constexpr int kWarpsPerBlock = 4;

  SpmvColumnKernel(SpmmProblem& p, sparse::index_t column) : p_(&p), j_(column) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = (static_cast<long long>(p_->m()) + kWarpsPerBlock - 1) / kWarpsPerBlock;
    cfg.block = kWarpsPerBlock * gpusim::kWarpSize;
    cfg.regs_per_thread = 28;
    return cfg;
  }

  std::string name() const override { return "spmv-loop"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    const long long n = p_->n();
    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long i = blk.block_id() * kWarpsPerBlock + w;
      if (i >= p_->m()) break;
      WarpCtx warp = blk.warp(w);
      const index_t lo = warp.ld_broadcast(p_->A.rowptr, i, kFullMask);
      const index_t hi = warp.ld_broadcast(p_->A.rowptr, i + 1, kFullMask);

      // Lanes stride over the row; each lane gathers B[k_l, j] — the
      // uncoalesced pattern of Fig. 2.
      value_t warp_acc = Reduce::init();
      for (index_t ptr = lo; ptr < hi; ptr += kWarpSize) {
        const int tile = std::min<index_t>(kWarpSize, hi - ptr);
        const LaneMask load_mask = first_lanes(tile);
        const Lanes<index_t> kk = warp.ld_contig(p_->A.colind, ptr, load_mask);
        const Lanes<value_t> vv = warp.ld_contig(p_->A.val, ptr, load_mask);
        Lanes<std::int64_t> bidx{};
        for (int l = 0; l < tile; ++l) {
          bidx[static_cast<std::size_t>(l)] =
              static_cast<std::int64_t>(kk[static_cast<std::size_t>(l)]) * n + j_;
        }
        const Lanes<value_t> b = warp.ld_gather(p_->B.device(), bidx, load_mask);
        for (int l = 0; l < tile; ++l) {
          warp_acc = Reduce::reduce(
              warp_acc, Reduce::combine(vv[static_cast<std::size_t>(l)],
                                        b[static_cast<std::size_t>(l)]));
        }
        warp.count_fma(static_cast<std::uint64_t>(tile));
        // Warp tree reduction of lane partials (5 shuffles + 5 ops).
        warp.count_inst(10 + 2);
      }
      Lanes<value_t> out = splat(Reduce::finalize(warp_acc, hi - lo));
      warp.st_contig(p_->C.device(), i * n + j_, out, 0x1u);  // lane 0 stores
    }
  }

 private:
  SpmmProblem* p_;
  sparse::index_t j_;
};

}  // namespace gespmm::kernels
