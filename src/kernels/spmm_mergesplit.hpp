#pragma once
/// \file spmm_mergesplit.hpp
/// GraphBLAST's merge-based SpMM variant (the companion of `rowsplit` in
/// paper ref [2], "Design principles for sparse matrix multiplication on
/// the GPU"). Instead of assigning whole rows to warps — which starves or
/// overloads warps on power-law graphs — the nonzeros are split into
/// equal-size chunks and each warp processes one chunk, carrying partial
/// row sums across chunk boundaries with atomic combines.
///
/// This gives near-perfect load balance (its advantage on skewed
/// matrices) at the cost of atomics at row boundaries and no cross-chunk
/// sparse reuse (the weakness GE-SpMM's CWM addresses for the row-split
/// family). Including it makes the GraphBLAST baseline as strong as the
/// original library on the suite's heavy-tailed graphs.

#include "gpusim/gpusim.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

class SpmmMergeSplitKernel final : public gpusim::Kernel {
 public:
  static constexpr int kWarpsPerBlock = 4;
  static constexpr index_t kNnzPerWarp = 256;

  explicit SpmmMergeSplitKernel(SpmmProblem& p) : p_(&p) {
    // Host-side precomputed chunk -> first-row index (GraphBLAST builds
    // the same search structure per launch; cost is O(chunks) binary
    // searches fused into the kernel in the original — we charge it as
    // part of the kernel via the row-lookup loads below).
    const index_t nnz = p.A.nnz();
    const auto chunks = static_cast<std::size_t>((nnz + kNnzPerWarp - 1) / kNnzPerWarp);
    std::vector<index_t> first_row(chunks);
    index_t row = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const index_t start = static_cast<index_t>(c) * kNnzPerWarp;
      while (row + 1 < p.A.rows &&
             p.A.rowptr[static_cast<std::size_t>(row) + 1] <= start) {
        ++row;
      }
      first_row[c] = row;
    }
    chunk_first_row_ = gpusim::DeviceArray<index_t>(std::span<const index_t>(first_row));
  }

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    const long long chunks = chunk_first_row_.empty()
                                 ? 1
                                 : static_cast<long long>(chunk_first_row_.size());
    cfg.grid = (chunks + kWarpsPerBlock - 1) / kWarpsPerBlock;
    cfg.block = kWarpsPerBlock * gpusim::kWarpSize;
    cfg.regs_per_thread = 36;
    cfg.ilp = 0.9;  // carry-chain between row segments
    return cfg;
  }

  std::string name() const override { return "mergesplit(graphblast)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    const long long n = p_->n();
    const index_t nnz = p_->A.nnz();
    if (nnz == 0) {
      zero_fill_rows(blk);
      return;
    }
    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long chunk = blk.block_id() * kWarpsPerBlock + w;
      const index_t start = static_cast<index_t>(chunk) * kNnzPerWarp;
      if (start >= nnz) break;
      const index_t end = std::min<index_t>(start + kNnzPerWarp, nnz);
      WarpCtx warp = blk.warp(w);

      index_t row = warp.ld_broadcast(chunk_first_row_, chunk, kFullMask);
      index_t row_end = warp.ld_broadcast(p_->A.rowptr, row + 1, kFullMask);

      for (long long j0 = 0; j0 < n; j0 += kWarpSize) {
        const LaneMask mask = (n - j0) >= kWarpSize
                                  ? kFullMask
                                  : first_lanes(static_cast<int>(n - j0));
        index_t r = row;
        index_t re = row_end;
        Lanes<value_t> acc = splat(0.0f);
        bool acc_partial_head = true;  // first row of the chunk may be split

        for (index_t ptr = start; ptr < end; ptr += kWarpSize) {
          const int tile = std::min<index_t>(kWarpSize, end - ptr);
          const LaneMask load_mask = first_lanes(tile);
          const Lanes<index_t> kk = warp.ld_contig(p_->A.colind, ptr, load_mask);
          const Lanes<value_t> vv = warp.ld_contig(p_->A.val, ptr, load_mask);
          for (int t = 0; t < tile; ++t) {
            // Advance to the row owning element ptr + t.
            while (ptr + t >= re) {
              flush_row(warp, r, j0, acc, mask,
                        /*atomic=*/acc_partial_head);
              acc_partial_head = false;
              acc = splat(0.0f);
              ++r;
              re = warp.ld_broadcast(p_->A.rowptr, r + 1, mask);
            }
            const index_t k = warp.shfl(kk, t);
            const value_t v = warp.shfl(vv, t);
            const Lanes<value_t> b = warp.ld_contig(
                p_->B.device(), static_cast<std::int64_t>(k) * n + j0, mask);
            for (int l = 0; l < kWarpSize; ++l) {
              if (lane_active(mask, l)) {
                acc[static_cast<std::size_t>(l)] += v * b[static_cast<std::size_t>(l)];
              }
            }
            warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
            warp.count_inst(2);
          }
        }
        // Tail row: may continue in the next chunk -> atomic combine.
        const bool tail_partial = end < warp.ld_broadcast(p_->A.rowptr, r + 1, mask);
        flush_row(warp, r, j0, acc, mask, tail_partial || acc_partial_head);
      }
    }
  }

 private:
  /// Write a finished (or partial) row segment. Partial segments combine
  /// atomically because another warp owns the rest of the row.
  void flush_row(gpusim::WarpCtx& warp, index_t row, long long j0,
                 const gpusim::Lanes<value_t>& acc, gpusim::LaneMask mask,
                 bool atomic) const {
    using namespace gpusim;
    const long long n = p_->n();
    if (atomic) {
      Lanes<std::int64_t> idx{};
      for (int l = 0; l < kWarpSize; ++l) {
        idx[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(row) * n + j0 + l;
      }
      warp.atomic_add_gather(p_->C.device(), idx, acc, mask);
    } else {
      warp.st_contig(p_->C.device(), static_cast<std::int64_t>(row) * n + j0, acc, mask);
    }
  }

  /// Degenerate case: empty matrix still defines C = 0.
  void zero_fill_rows(gpusim::BlockCtx& blk) const {
    using namespace gpusim;
    if (blk.block_id() != 0) return;
    WarpCtx warp = blk.warp(0);
    const long long n = p_->n();
    for (index_t i = 0; i < p_->m(); ++i) {
      for (long long j0 = 0; j0 < n; j0 += kWarpSize) {
        const LaneMask mask = (n - j0) >= kWarpSize
                                  ? kFullMask
                                  : first_lanes(static_cast<int>(n - j0));
        warp.st_contig(p_->C.device(), static_cast<std::int64_t>(i) * n + j0,
                       splat(0.0f), mask);
      }
    }
  }

  SpmmProblem* p_;
  gpusim::DeviceArray<index_t> chunk_first_row_;
};

}  // namespace gespmm::kernels
