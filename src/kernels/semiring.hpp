#pragma once
/// \file semiring.hpp
/// Generalized reduction operators for SpMM-like operations (paper Section
/// IV-A): the user provides an initialization value and an associative,
/// commutative reduce function, inlined at compile time. Standard SpMM is
/// the (0, +) instance; GraphSAGE-pool's max-aggregation is the (-inf, max)
/// instance; mean aggregation divides by the row length in finalize().

#include <limits>

#include "sparse/csr.hpp"

namespace gespmm::kernels {

using sparse::index_t;
using sparse::value_t;

/// Runtime tag for dispatching to the compile-time semiring instances.
enum class ReduceKind { Sum, Max, Min, Mean };

inline const char* reduce_kind_name(ReduceKind k) {
  switch (k) {
    case ReduceKind::Sum: return "sum";
    case ReduceKind::Max: return "max";
    case ReduceKind::Min: return "min";
    case ReduceKind::Mean: return "mean";
  }
  return "?";
}

/// Standard SpMM: C[i,j] = sum_k A[i,k] * B[k,j].
struct SumReduce {
  static constexpr ReduceKind kind = ReduceKind::Sum;
  static value_t init() { return 0.0f; }
  static value_t combine(value_t a, value_t b) { return a * b; }
  static value_t reduce(value_t acc, value_t x) { return acc + x; }
  static value_t finalize(value_t acc, index_t /*row_nnz*/) { return acc; }
};

/// Max-pooling aggregation (GraphSAGE-pool). Empty rows yield 0.
struct MaxReduce {
  static constexpr ReduceKind kind = ReduceKind::Max;
  static value_t init() { return -std::numeric_limits<value_t>::infinity(); }
  static value_t combine(value_t a, value_t b) { return a * b; }
  static value_t reduce(value_t acc, value_t x) { return acc > x ? acc : x; }
  static value_t finalize(value_t acc, index_t row_nnz) {
    return row_nnz == 0 ? 0.0f : acc;
  }
};

/// Min-pooling. Empty rows yield 0.
struct MinReduce {
  static constexpr ReduceKind kind = ReduceKind::Min;
  static value_t init() { return std::numeric_limits<value_t>::infinity(); }
  static value_t combine(value_t a, value_t b) { return a * b; }
  static value_t reduce(value_t acc, value_t x) { return acc < x ? acc : x; }
  static value_t finalize(value_t acc, index_t row_nnz) {
    return row_nnz == 0 ? 0.0f : acc;
  }
};

/// Mean aggregation (GraphSAGE-mean): sum then divide by row degree.
struct MeanReduce {
  static constexpr ReduceKind kind = ReduceKind::Mean;
  static value_t init() { return 0.0f; }
  static value_t combine(value_t a, value_t b) { return a * b; }
  static value_t reduce(value_t acc, value_t x) { return acc + x; }
  static value_t finalize(value_t acc, index_t row_nnz) {
    return row_nnz == 0 ? 0.0f : acc / static_cast<value_t>(row_nnz);
  }
};

/// Dispatch a callable templated on the semiring type over a runtime kind:
/// `with_semiring(kind, [&]<typename R>() { ... });`
template <typename F>
decltype(auto) with_semiring(ReduceKind kind, F&& f) {
  switch (kind) {
    case ReduceKind::Sum: return f.template operator()<SumReduce>();
    case ReduceKind::Max: return f.template operator()<MaxReduce>();
    case ReduceKind::Min: return f.template operator()<MinReduce>();
    case ReduceKind::Mean: return f.template operator()<MeanReduce>();
  }
  return f.template operator()<SumReduce>();
}

}  // namespace gespmm::kernels
