#include "kernels/spmm_host.hpp"

#include "sparse/rng.hpp"

namespace gespmm::kernels {

void spmm_host_reference(const sparse::Csr& a, const DenseMatrix& b, DenseMatrix& c,
                         ReduceKind kind) {
  with_semiring(kind, [&]<typename R>() { spmm_host_reference<R>(a, b, c); });
}

void spmm_host_parallel(const sparse::Csr& a, const DenseMatrix& b, DenseMatrix& c,
                        ReduceKind kind) {
  with_semiring(kind, [&]<typename R>() {
    const index_t n = b.cols();
#pragma omp parallel for schedule(dynamic, 64)
    for (index_t i = 0; i < a.rows; ++i) {
      const index_t lo = a.rowptr[static_cast<std::size_t>(i)];
      const index_t hi = a.rowptr[static_cast<std::size_t>(i) + 1];
      for (index_t j = 0; j < n; ++j) {
        value_t acc = R::init();
        for (index_t p = lo; p < hi; ++p) {
          const index_t k = a.colind[static_cast<std::size_t>(p)];
          acc = R::reduce(acc, R::combine(a.val[static_cast<std::size_t>(p)], b.at(k, j)));
        }
        c.at(i, j) = R::finalize(acc, hi - lo);
      }
    }
  });
}

void fill_random(DenseMatrix& m, std::uint64_t seed, value_t lo, value_t hi) {
  sparse::SplitMix64 rng(seed);
  auto host = m.device().host();
  for (auto& v : host) v = rng.next_float(lo, hi);
}

}  // namespace gespmm::kernels
