#pragma once
/// \file row_block_mapping.hpp
/// Grid mapping shared by the GE-SpMM family (Algorithms 1-3): one thread
/// block per (sparse row, column chunk). Threads within a warp share the
/// row index i and cover contiguous output columns j — the layout that
/// makes dense-matrix access coalesced (paper Section III-B).

#include <algorithm>

#include "gpusim/device.hpp"
#include "gpusim/types.hpp"
#include "sparse/csr.hpp"

namespace gespmm::kernels {

struct RowBlockMapping {
  sparse::index_t m = 0;
  sparse::index_t n = 0;
  /// Output columns produced per thread (CWM coarsening factor).
  int cf = 1;
  int block_dim = 32;
  /// Columns covered by one block = block_dim * cf.
  int cols_per_block = 32;
  long long col_chunks = 1;

  static RowBlockMapping create(sparse::index_t m, sparse::index_t n, int cf,
                                int max_block = 512) {
    RowBlockMapping map;
    map.m = m;
    map.n = n;
    map.cf = cf;
    const long long cols_needed = (n + cf - 1) / cf;
    const long long rounded =
        std::max<long long>(gpusim::kWarpSize,
                            (cols_needed + gpusim::kWarpSize - 1) / gpusim::kWarpSize *
                                gpusim::kWarpSize);
    map.block_dim = static_cast<int>(std::min<long long>(max_block, rounded));
    map.cols_per_block = map.block_dim * cf;
    map.col_chunks = (n + map.cols_per_block - 1) / map.cols_per_block;
    return map;
  }

  long long grid() const { return static_cast<long long>(m) * col_chunks; }

  /// Decode a block id into (row, column-chunk).
  void decode(long long block_id, sparse::index_t& row, long long& chunk) const {
    row = static_cast<sparse::index_t>(block_id / col_chunks);
    chunk = block_id % col_chunks;
  }

  /// Base output column of warp `w` (coarsened lane group `c` adds 32*c...
  /// columns j, j+32, ..., j+32*(cf-1) belong to the same thread).
  long long warp_col_base(long long chunk, int warp_in_block) const {
    return chunk * cols_per_block +
           static_cast<long long>(warp_in_block) * gpusim::kWarpSize * cf;
  }

  /// Lane activity mask for columns [base + 32*c, base + 32*c + 32).
  gpusim::LaneMask col_mask(long long col_base) const {
    if (col_base >= n) return 0;
    const long long remaining = n - col_base;
    return remaining >= gpusim::kWarpSize
               ? gpusim::kFullMask
               : gpusim::first_lanes(static_cast<int>(remaining));
  }
};

}  // namespace gespmm::kernels
