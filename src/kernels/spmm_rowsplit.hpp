#pragma once
/// \file spmm_rowsplit.hpp
/// GraphBLAST's `rowsplit` SpMM (paper ref [2]), the strongest open-source
/// CSR baseline: one warp per sparse row, inherited from Bell & Garland's
/// SpMV. The warp loads row tiles cooperatively (coalesced) and broadcasts
/// elements to its lanes with __shfl, giving intra-warp reuse. Its two
/// weaknesses, per the paper: the sparse row is re-loaded for every
/// 32-column chunk of the output (no reuse across chunks/warps — what CWM
/// fixes in GE-SpMM), and there is no ILP coarsening.

#include "gpusim/gpusim.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

template <typename Reduce = SumReduce>
class SpmmRowSplitGBKernel final : public gpusim::Kernel {
 public:
  static constexpr int kWarpsPerBlock = 4;

  explicit SpmmRowSplitGBKernel(SpmmProblem& p) : p_(&p) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = (static_cast<long long>(p_->m()) + kWarpsPerBlock - 1) / kWarpsPerBlock;
    cfg.block = kWarpsPerBlock * gpusim::kWarpSize;
    cfg.smem_bytes = 0;
    cfg.regs_per_thread = 32;
    // The dense load's address depends on the preceding __shfl broadcast —
    // a dependency chain that limits per-warp memory-level parallelism
    // below one outstanding stream.
    cfg.ilp = 0.8;
    return cfg;
  }

  std::string name() const override { return "rowsplit(graphblast)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    const long long n = p_->n();
    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long i = blk.block_id() * kWarpsPerBlock + w;
      if (i >= p_->m()) break;
      WarpCtx warp = blk.warp(w);
      const index_t lo = warp.ld_broadcast(p_->A.rowptr, i, kFullMask);
      const index_t hi = warp.ld_broadcast(p_->A.rowptr, i + 1, kFullMask);

      // The warp walks every 32-column chunk of this output row; the sparse
      // row is re-fetched per chunk (GraphBLAST has no cross-chunk reuse).
      for (long long j0 = 0; j0 < n; j0 += kWarpSize) {
        const LaneMask mask = (n - j0) >= kWarpSize
                                  ? kFullMask
                                  : first_lanes(static_cast<int>(n - j0));
        Lanes<value_t> acc = splat(Reduce::init());
        for (index_t ptr = lo; ptr < hi; ptr += kWarpSize) {
          const int tile = std::min<index_t>(kWarpSize, hi - ptr);
          const LaneMask load_mask = first_lanes(tile);
          const Lanes<index_t> kk = warp.ld_contig(p_->A.colind, ptr, load_mask);
          const Lanes<value_t> vv = warp.ld_contig(p_->A.val, ptr, load_mask);
          for (int t = 0; t < tile; ++t) {
            // Intra-warp broadcast via shuffle (GraphBLAST's __shfl reuse).
            const index_t k = warp.shfl(kk, t);
            const value_t v = warp.shfl(vv, t);
            const Lanes<value_t> b = warp.ld_contig(
                p_->B.device(), static_cast<std::int64_t>(k) * n + j0, mask);
            for (int l = 0; l < kWarpSize; ++l) {
              if (lane_active(mask, l)) {
                acc[static_cast<std::size_t>(l)] = Reduce::reduce(
                    acc[static_cast<std::size_t>(l)],
                    Reduce::combine(v, b[static_cast<std::size_t>(l)]));
              }
            }
            warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
            warp.count_inst(2);
          }
          warp.count_inst(2);
        }
        for (int l = 0; l < kWarpSize; ++l) {
          if (lane_active(mask, l)) {
            acc[static_cast<std::size_t>(l)] =
                Reduce::finalize(acc[static_cast<std::size_t>(l)], hi - lo);
          }
        }
        warp.st_contig(p_->C.device(), i * n + j0, acc, mask);
        warp.count_inst(2);
      }
    }
  }

 private:
  SpmmProblem* p_;
};

}  // namespace gespmm::kernels
