#include "kernels/spmm_aspt.hpp"

#include <algorithm>

namespace gespmm::kernels {

AsptDevice::AsptDevice(const sparse::AsptMatrix& m) {
  rows = m.rows;
  cols = m.cols;
  panel_rows = m.panel_rows;
  num_panels = static_cast<index_t>(m.panels.size());

  std::vector<index_t> prb, hcp{0}, hcols, hrp, hrpo, heo, hpos, lrp, lrpo, leo, lci;
  std::vector<value_t> hval, lval;
  for (const auto& p : m.panels) {
    prb.push_back(p.row_begin);
    hrpo.push_back(static_cast<index_t>(hrp.size()));
    heo.push_back(static_cast<index_t>(hpos.size()));
    lrpo.push_back(static_cast<index_t>(lrp.size()));
    leo.push_back(static_cast<index_t>(lci.size()));
    hcols.insert(hcols.end(), p.heavy_cols.begin(), p.heavy_cols.end());
    hcp.push_back(static_cast<index_t>(hcols.size()));
    hrp.insert(hrp.end(), p.heavy_rowptr.begin(), p.heavy_rowptr.end());
    hpos.insert(hpos.end(), p.heavy_colpos.begin(), p.heavy_colpos.end());
    hval.insert(hval.end(), p.heavy_val.begin(), p.heavy_val.end());
    lrp.insert(lrp.end(), p.light_rowptr.begin(), p.light_rowptr.end());
    lci.insert(lci.end(), p.light_colind.begin(), p.light_colind.end());
    lval.insert(lval.end(), p.light_val.begin(), p.light_val.end());
  }
  panel_row_begin = gpusim::DeviceArray<index_t>(std::span<const index_t>(prb));
  hc_ptr = gpusim::DeviceArray<index_t>(std::span<const index_t>(hcp));
  heavy_cols = gpusim::DeviceArray<index_t>(std::span<const index_t>(hcols));
  heavy_rowptr = gpusim::DeviceArray<index_t>(std::span<const index_t>(hrp));
  heavy_rp_off = gpusim::DeviceArray<index_t>(std::span<const index_t>(hrpo));
  heavy_ent_off = gpusim::DeviceArray<index_t>(std::span<const index_t>(heo));
  heavy_colpos = gpusim::DeviceArray<index_t>(std::span<const index_t>(hpos));
  heavy_val = gpusim::DeviceArray<value_t>(std::span<const value_t>(hval));
  light_rowptr = gpusim::DeviceArray<index_t>(std::span<const index_t>(lrp));
  light_rp_off = gpusim::DeviceArray<index_t>(std::span<const index_t>(lrpo));
  light_ent_off = gpusim::DeviceArray<index_t>(std::span<const index_t>(leo));
  light_colind = gpusim::DeviceArray<index_t>(std::span<const index_t>(lci));
  light_val = gpusim::DeviceArray<value_t>(std::span<const value_t>(lval));
}

void SpmmAsptKernel::run_block(gpusim::BlockCtx& blk) const {
  using namespace gpusim;
  const long long n = p_->n();
  const long long chunks = (n + 31) / 32;
  const long long panel = blk.block_id() / chunks;
  const long long chunk = blk.block_id() % chunks;
  const long long j0 = chunk * 32;
  const LaneMask mask =
      (n - j0) >= kWarpSize ? kFullMask : first_lanes(static_cast<int>(n - j0));

  auto sm_b = blk.smem_alloc<value_t>(kTileCols * 32);
  auto sm_cols = blk.smem_alloc<index_t>(kTileCols);

  WarpCtx w0 = blk.warp(0);
  const index_t row_begin = w0.ld_broadcast(a_->panel_row_begin, panel, 0x1u);
  const index_t hc_lo = w0.ld_broadcast(a_->hc_ptr, panel, 0x1u);
  const index_t hc_hi = w0.ld_broadcast(a_->hc_ptr, panel + 1, 0x1u);
  const index_t rp_off = w0.ld_broadcast(a_->heavy_rp_off, panel, 0x1u);
  const index_t ent_off = w0.ld_broadcast(a_->heavy_ent_off, panel, 0x1u);
  const index_t lrp_off = w0.ld_broadcast(a_->light_rp_off, panel, 0x1u);
  const index_t lent_off = w0.ld_broadcast(a_->light_ent_off, panel, 0x1u);

  const int panel_nrows = static_cast<int>(
      std::min<long long>(a_->panel_rows, a_->rows - row_begin));
  const int num_tiles = static_cast<int>((hc_hi - hc_lo + kTileCols - 1) / kTileCols);

  // Per-row accumulators (registers of the owning warps) and heavy-stream
  // cursors; rows are distributed round-robin over the block's warps.
  std::vector<Lanes<value_t>> acc(static_cast<std::size_t>(panel_nrows),
                                  splat(0.0f));
  std::vector<index_t> cursor(static_cast<std::size_t>(panel_nrows));
  for (int r = 0; r < panel_nrows; ++r) {
    WarpCtx warp = blk.warp(r % kWarpsPerBlock);
    cursor[static_cast<std::size_t>(r)] =
        warp.ld_broadcast(a_->heavy_rowptr, rp_off + r, mask);
  }

  for (int tile = 0; tile < num_tiles; ++tile) {
    const index_t tile_lo = hc_lo + static_cast<index_t>(tile) * kTileCols;
    const int tile_cols = static_cast<int>(
        std::min<index_t>(kTileCols, hc_hi - tile_lo));

    // Phase 1: warps cooperatively stage the tile's B rows in smem.
    for (int c = 0; c < tile_cols; ++c) {
      WarpCtx warp = blk.warp(c % kWarpsPerBlock);
      const index_t col = warp.ld_broadcast(a_->heavy_cols, tile_lo + c, mask);
      sm_cols[static_cast<std::size_t>(c)] = col;
      const Lanes<value_t> brow = warp.ld_contig(
          p_->B.device(), static_cast<std::int64_t>(col) * n + j0, mask);
      for (int l = 0; l < kWarpSize; ++l) {
        sm_b[static_cast<std::size_t>(c) * 32 + static_cast<std::size_t>(l)] =
            lane_active(mask, l) ? brow[static_cast<std::size_t>(l)] : 0.0f;
      }
      warp.smem_store(static_cast<std::uint64_t>(active_lanes(mask)) * sizeof(value_t));
    }
    blk.sync_block();

    // Phase 2: each row consumes its heavy entries belonging to this tile.
    const index_t pos_hi = static_cast<index_t>(tile + 1) * kTileCols;
    for (int r = 0; r < panel_nrows; ++r) {
      WarpCtx warp = blk.warp(r % kWarpsPerBlock);
      const index_t row_end = warp.ld_broadcast(a_->heavy_rowptr, rp_off + r + 1, mask);
      index_t& cur = cursor[static_cast<std::size_t>(r)];
      auto& a = acc[static_cast<std::size_t>(r)];
      while (cur < row_end) {
        const index_t pos = warp.ld_broadcast(a_->heavy_colpos, ent_off + cur, mask);
        if (pos >= pos_hi) break;
        const value_t v = warp.ld_broadcast(a_->heavy_val, ent_off + cur, mask);
        const int local = static_cast<int>(pos) - tile * kTileCols;
        warp.smem_load(static_cast<std::uint64_t>(active_lanes(mask)) * sizeof(value_t));
        for (int l = 0; l < kWarpSize; ++l) {
          if (lane_active(mask, l)) {
            a[static_cast<std::size_t>(l)] +=
                v * sm_b[static_cast<std::size_t>(local) * 32 + static_cast<std::size_t>(l)];
          }
        }
        warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
        warp.count_inst(3);
        ++cur;
      }
    }
    blk.sync_block();
  }

  // Light leftovers: ASpT's tuned CSR stream — the warp fetches the
  // entries in coalesced 32-wide tiles and broadcasts them lane-to-lane
  // with shuffles (no shared memory needed), keeping both operands'
  // accesses coalesced.
  for (int r = 0; r < panel_nrows; ++r) {
    WarpCtx warp = blk.warp(r % kWarpsPerBlock);
    const index_t lo = warp.ld_broadcast(a_->light_rowptr, lrp_off + r, mask);
    const index_t hi = warp.ld_broadcast(a_->light_rowptr, lrp_off + r + 1, mask);
    auto& a = acc[static_cast<std::size_t>(r)];
    for (index_t e = lo; e < hi; e += kWarpSize) {
      const int tile = static_cast<int>(std::min<index_t>(kWarpSize, hi - e));
      const LaneMask load_mask = first_lanes(tile);
      const Lanes<index_t> kk = warp.ld_contig(a_->light_colind, lent_off + e, load_mask);
      const Lanes<value_t> vv = warp.ld_contig(a_->light_val, lent_off + e, load_mask);
      for (int t = 0; t < tile; ++t) {
        const index_t k = warp.shfl(kk, t);
        const value_t v = warp.shfl(vv, t);
        const Lanes<value_t> b =
            warp.ld_contig(p_->B.device(), static_cast<std::int64_t>(k) * n + j0, mask);
        for (int l = 0; l < kWarpSize; ++l) {
          if (lane_active(mask, l)) {
            a[static_cast<std::size_t>(l)] += v * b[static_cast<std::size_t>(l)];
          }
        }
        warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
        warp.count_inst(2);
      }
    }
  }

  // Store the panel's output rows.
  for (int r = 0; r < panel_nrows; ++r) {
    WarpCtx warp = blk.warp(r % kWarpsPerBlock);
    warp.st_contig(p_->C.device(),
                   static_cast<std::int64_t>(row_begin + r) * n + j0,
                   acc[static_cast<std::size_t>(r)], mask);
  }
}

}  // namespace gespmm::kernels
