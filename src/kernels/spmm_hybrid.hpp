#pragma once
/// \file spmm_hybrid.hpp
/// Density-partitioned hybrid SpMM (HC-SpMM-style): rows with at least
/// `threshold` nonzeros are routed to the tensor-core (MMA) pipeline, the
/// remaining ragged rows to the CUDA-core (SIMT) pipeline, as two launches
/// over a row permutation that groups each partition contiguously.
///
/// The threshold is the MMA tile K-dim (gpusim::MmaTileSpec::k): a row with
/// >= k nonzeros fills at least one A-fragment row slice, so the dense pipe
/// wastes little of the tile on zero padding. The dense sub-kernel processes
/// tile.m-row windows of the dense partition: it stages the window's sparse
/// rows and the B-rows of their column union through shared memory and
/// issues warp-level mma tiles over k-slices of the union, so column overlap
/// within a window (block-structured matrices) directly reduces B traffic —
/// the effect that makes hybrid win on pruned-DNN-style inputs and lose on
/// scattered uniform ones, where the union is as long as the nnz list.
///
/// Both sub-kernels fold each row's nonzeros in CSR storage order, so the
/// composed output is bitwise identical to the reference for every
/// reduction (Sum/Max pinned by tests).

#include <span>
#include <vector>

#include "gpusim/launch.hpp"
#include "gpusim/mma.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

/// Row partition of a CSR operand by nnz-per-row density.
struct HybridPartition {
  /// Row permutation: dense rows first (original order preserved), then
  /// ragged rows (original order preserved). perm[i] is an original row id.
  std::vector<index_t> perm;
  /// Number of rows with nnz >= threshold (the dense partition size).
  index_t dense_rows = 0;
  /// nnz-per-row cut applied (the MMA tile K-dim in production).
  index_t threshold = 0;
  index_t rows = 0;

  index_t ragged_rows() const { return rows - dense_rows; }
};

/// Partition rows by density from a CSR rowptr (size rows+1). Stable within
/// each partition. Deterministic.
HybridPartition partition_rows_by_density(std::span<const index_t> rowptr,
                                          index_t threshold);
HybridPartition partition_rows_by_density(const CsrDevice& a, index_t threshold);
HybridPartition partition_rows_by_density(const sparse::Csr& a, index_t threshold);

/// Cheap partition summary used as learned plan-selection features.
struct HybridPartitionStats {
  /// Fraction of rows routed to the dense (MMA) partition.
  double dense_row_frac = 0.0;
  /// Fraction of nnz mass held by the dense partition (histogram mass at or
  /// above the MMA threshold).
  double dense_nnz_frac = 0.0;
};

HybridPartitionStats hybrid_partition_stats(std::span<const index_t> rowptr,
                                            index_t threshold);
HybridPartitionStats hybrid_partition_stats(const sparse::Csr& a, index_t threshold);

/// Result of a hybrid run with per-partition modelled times exposed, so the
/// plan layer can price each partition step separately.
struct HybridLaunchResult {
  /// Composed result: metrics summed, time fields summed, config/occupancy
  /// of the dominant (slower) launch.
  gpusim::LaunchResult total;
  /// Modelled time of the dense-partition (MMA pipe) launch; 0 when the
  /// partition is empty and the launch was skipped.
  double dense_ms = 0.0;
  /// Modelled time of the ragged-partition (SIMT pipe) launch; 0 when empty.
  double ragged_ms = 0.0;
  index_t dense_rows = 0;
  index_t threshold = 0;
};

/// Run hybrid SpMM on `p` (both partitions; either launch is skipped when
/// its partition is empty). C is written bitwise identically to the
/// reference row fold. Supports all reductions.
HybridLaunchResult run_spmm_hybrid_detailed(SpmmProblem& p,
                                            const SpmmRunOptions& opt = SpmmRunOptions());

/// Registry-shaped wrapper returning only the composed launch result.
gpusim::LaunchResult run_spmm_hybrid(SpmmProblem& p,
                                     const SpmmRunOptions& opt = SpmmRunOptions());

}  // namespace gespmm::kernels
