#pragma once
/// \file dense.hpp
/// Dense matrices backed by simulated device buffers. GNN feature matrices
/// are row-major; cuSPARSE's csrmm2 produces column-major output (a
/// property the paper's end-to-end comparison charges a transpose for), so
/// both layouts are representable.

#include <span>

#include "gpusim/device_array.hpp"
#include "sparse/csr.hpp"

namespace gespmm::kernels {

using sparse::index_t;
using sparse::value_t;

enum class Layout { RowMajor, ColMajor };

/// Dense rows x cols matrix on the simulated device.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols, Layout layout = Layout::RowMajor)
      : rows_(rows), cols_(cols), layout_(layout),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0f) {}

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  Layout layout() const { return layout_; }
  std::size_t size() const { return data_.size(); }

  gpusim::DeviceArray<value_t>& device() { return data_; }
  const gpusim::DeviceArray<value_t>& device() const { return data_; }

  /// Host-side element access honouring the layout.
  value_t& at(index_t i, index_t j) { return data_[offset(i, j)]; }
  value_t at(index_t i, index_t j) const { return data_[offset(i, j)]; }

  /// Linear offset of (i, j) given the layout.
  std::size_t offset(index_t i, index_t j) const {
    return layout_ == Layout::RowMajor
               ? static_cast<std::size_t>(i) * cols_ + static_cast<std::size_t>(j)
               : static_cast<std::size_t>(j) * rows_ + static_cast<std::size_t>(i);
  }

  void fill(value_t v) { data_.fill(v); }

  /// Max absolute element-wise difference, layout-agnostic.
  double max_abs_diff(const DenseMatrix& o) const {
    double m = 0.0;
    for (index_t i = 0; i < rows_; ++i) {
      for (index_t j = 0; j < cols_; ++j) {
        const double d = std::abs(static_cast<double>(at(i, j)) - o.at(i, j));
        if (d > m) m = d;
      }
    }
    return m;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  Layout layout_ = Layout::RowMajor;
  gpusim::DeviceArray<value_t> data_;
};

/// Fill with a deterministic pseudo-random pattern (tests/benches).
void fill_random(DenseMatrix& m, std::uint64_t seed, value_t lo = -1.0f, value_t hi = 1.0f);

}  // namespace gespmm::kernels
