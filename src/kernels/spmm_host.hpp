#pragma once
/// \file spmm_host.hpp
/// Host (CPU) SpMM: the sequential gold reference used by tests, and an
/// OpenMP-parallel version used for fast functional execution when only
/// values (not device metrics) are needed — e.g. inside GNN training.

#include "kernels/dense.hpp"
#include "kernels/semiring.hpp"
#include "sparse/csr.hpp"

namespace gespmm::kernels {

/// Sequential reference: C = reduce_op(A (*) B). C must be rows x N.
template <typename Reduce>
void spmm_host_reference(const sparse::Csr& a, const DenseMatrix& b, DenseMatrix& c) {
  const index_t n = b.cols();
  for (index_t i = 0; i < a.rows; ++i) {
    const index_t lo = a.rowptr[static_cast<std::size_t>(i)];
    const index_t hi = a.rowptr[static_cast<std::size_t>(i) + 1];
    for (index_t j = 0; j < n; ++j) {
      value_t acc = Reduce::init();
      for (index_t p = lo; p < hi; ++p) {
        const index_t k = a.colind[static_cast<std::size_t>(p)];
        acc = Reduce::reduce(acc, Reduce::combine(a.val[static_cast<std::size_t>(p)], b.at(k, j)));
      }
      c.at(i, j) = Reduce::finalize(acc, hi - lo);
    }
  }
}

/// OpenMP-parallel host SpMM (same results; row-parallel so reduction
/// order within a row is identical to the reference).
void spmm_host_parallel(const sparse::Csr& a, const DenseMatrix& b, DenseMatrix& c,
                        ReduceKind kind = ReduceKind::Sum);

/// Convenience: run the reference for a runtime ReduceKind.
void spmm_host_reference(const sparse::Csr& a, const DenseMatrix& b, DenseMatrix& c,
                         ReduceKind kind);

}  // namespace gespmm::kernels
