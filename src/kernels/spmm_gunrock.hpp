#pragma once
/// \file spmm_gunrock.hpp
/// SpMM written with a graph engine's `advance` primitive, as in the
/// paper's GunRock comparison (Section V-D, Fig. 12). GunRock parallelizes
/// over edges but offers no feature-dimension parallelism: each thread owns
/// one edge and walks the feature vector *serially*, so at every feature
/// index the warp's 32 lanes gather B rows of 32 different neighbours
/// (uncoalesced) and accumulate into C with atomics. The paper measures
/// GE-SpMM 18.27x faster on average; the access pattern alone explains it.

#include "gpusim/gpusim.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

class SpmmGunrockKernel final : public gpusim::Kernel {
 public:
  static constexpr int kBlockThreads = 256;

  /// `edge_src` is GunRock's expanded edge frontier (source vertex per
  /// edge), built once by the engine on the host.
  SpmmGunrockKernel(SpmmProblem& p, const gpusim::DeviceArray<index_t>& edge_src)
      : p_(&p), edge_src_(&edge_src) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = (static_cast<long long>(p_->A.nnz()) + kBlockThreads - 1) / kBlockThreads;
    cfg.block = kBlockThreads;
    cfg.regs_per_thread = 32;
    return cfg;
  }

  std::string name() const override { return "advance(gunrock)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    const long long n = p_->n();
    const long long nnz = p_->A.nnz();
    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long e0 = blk.block_id() * kBlockThreads + static_cast<long long>(w) * kWarpSize;
      if (e0 >= nnz) break;
      const LaneMask mask = (nnz - e0) >= kWarpSize
                                ? kFullMask
                                : first_lanes(static_cast<int>(nnz - e0));
      WarpCtx warp = blk.warp(w);
      const Lanes<index_t> u = warp.ld_contig(*edge_src_, e0, mask);
      const Lanes<index_t> v = warp.ld_contig(p_->A.colind, e0, mask);
      const Lanes<value_t> av = warp.ld_contig(p_->A.val, e0, mask);

      // Serial walk over the feature dimension: no column parallelism.
      for (long long f = 0; f < n; ++f) {
        Lanes<std::int64_t> bidx{}, cidx{};
        for (int l = 0; l < kWarpSize; ++l) {
          if (!lane_active(mask, l)) continue;
          bidx[static_cast<std::size_t>(l)] =
              static_cast<std::int64_t>(v[static_cast<std::size_t>(l)]) * n + f;
          cidx[static_cast<std::size_t>(l)] =
              static_cast<std::int64_t>(u[static_cast<std::size_t>(l)]) * n + f;
        }
        const Lanes<value_t> b = warp.ld_gather(p_->B.device(), bidx, mask);
        Lanes<value_t> contrib{};
        for (int l = 0; l < kWarpSize; ++l) {
          if (lane_active(mask, l)) {
            contrib[static_cast<std::size_t>(l)] =
                av[static_cast<std::size_t>(l)] * b[static_cast<std::size_t>(l)];
          }
        }
        warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
        warp.atomic_add_gather(p_->C.device(), cidx, contrib, mask);
        warp.count_inst(2);
      }
    }
  }

 private:
  SpmmProblem* p_;
  const gpusim::DeviceArray<index_t>* edge_src_;
};

}  // namespace gespmm::kernels
