#include "kernels/spmm_hybrid.hpp"

#include <algorithm>
#include <cstdint>

#include "gpusim/gpusim.hpp"
#include "kernels/row_block_mapping.hpp"
#include "kernels/semiring.hpp"

namespace gespmm::kernels {

HybridPartition partition_rows_by_density(std::span<const index_t> rowptr,
                                          index_t threshold) {
  HybridPartition part;
  part.threshold = threshold;
  part.rows = rowptr.empty() ? 0 : static_cast<index_t>(rowptr.size() - 1);
  part.perm.reserve(static_cast<std::size_t>(part.rows));
  for (index_t i = 0; i < part.rows; ++i) {
    const index_t nnz = rowptr[static_cast<std::size_t>(i) + 1] -
                        rowptr[static_cast<std::size_t>(i)];
    if (nnz >= threshold) part.perm.push_back(i);
  }
  part.dense_rows = static_cast<index_t>(part.perm.size());
  for (index_t i = 0; i < part.rows; ++i) {
    const index_t nnz = rowptr[static_cast<std::size_t>(i) + 1] -
                        rowptr[static_cast<std::size_t>(i)];
    if (nnz < threshold) part.perm.push_back(i);
  }
  return part;
}

HybridPartition partition_rows_by_density(const CsrDevice& a, index_t threshold) {
  return partition_rows_by_density(a.rowptr.host(), threshold);
}

HybridPartition partition_rows_by_density(const sparse::Csr& a, index_t threshold) {
  return partition_rows_by_density(std::span<const index_t>(a.rowptr), threshold);
}

HybridPartitionStats hybrid_partition_stats(std::span<const index_t> rowptr,
                                            index_t threshold) {
  HybridPartitionStats st;
  const index_t rows = rowptr.empty() ? 0 : static_cast<index_t>(rowptr.size() - 1);
  if (rows == 0) return st;
  index_t dense_rows = 0;
  std::int64_t dense_nnz = 0;
  for (index_t i = 0; i < rows; ++i) {
    const index_t nnz = rowptr[static_cast<std::size_t>(i) + 1] -
                        rowptr[static_cast<std::size_t>(i)];
    if (nnz >= threshold) {
      ++dense_rows;
      dense_nnz += nnz;
    }
  }
  const std::int64_t total_nnz = rowptr[static_cast<std::size_t>(rows)] - rowptr[0];
  st.dense_row_frac = static_cast<double>(dense_rows) / static_cast<double>(rows);
  st.dense_nnz_frac = total_nnz == 0 ? 0.0
                                     : static_cast<double>(dense_nnz) /
                                           static_cast<double>(total_nnz);
  return st;
}

HybridPartitionStats hybrid_partition_stats(const sparse::Csr& a, index_t threshold) {
  return hybrid_partition_stats(std::span<const index_t>(a.rowptr), threshold);
}

namespace {

/// Dense-partition sub-kernel: one block per tile.m-row window, up to four
/// warps per block each sweeping 32-column chunks of B. The block stages the
/// window's sparse rows once (cooperative coalesced loads, charged on warp
/// 0), takes the column union as the shared B working set, and each warp
/// streams the union's B rows for its chunk in tile.k-slices feeding
/// warp-level mma issues. Values are folded in CSR storage order per row
/// (bitwise identical to the reference); the mma issues are the accounting
/// for the tile math, padding included.
template <typename Reduce>
class SpmmHybridDenseKernel final : public gpusim::Kernel {
 public:
  SpmmHybridDenseKernel(SpmmProblem& p, const gpusim::DeviceArray<index_t>& perm,
                        index_t dense_rows, gpusim::MmaTileSpec tile)
      : p_(&p), perm_(&perm), dense_rows_(dense_rows), tile_(tile) {
    col_chunks_ = (static_cast<long long>(p.n()) + gpusim::kWarpSize - 1) /
                  gpusim::kWarpSize;
    windows_ = (static_cast<long long>(dense_rows) + tile.m - 1) / tile.m;
    warps_ = static_cast<int>(std::min<long long>(col_chunks_, 4));
  }

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = windows_;
    cfg.block = warps_ * gpusim::kWarpSize;
    // Per-warp B-fragment slice staging + one shared A-slice (indices and
    // values) for the whole block.
    cfg.smem_bytes =
        static_cast<std::size_t>(warps_) * static_cast<std::size_t>(tile_.k) *
            gpusim::kWarpSize * sizeof(value_t) +
        static_cast<std::size_t>(tile_.m) * static_cast<std::size_t>(tile_.k) *
            (sizeof(index_t) + sizeof(value_t));
    // Fragments are register-held: the MMA path pays register pressure.
    cfg.regs_per_thread = 56;
    // B slices are double-buffered against the mma issues (stage s+1 loads
    // while slice s drains the pipe), so each warp keeps two independent
    // load streams in flight — same declaration contract as CWM's CF=2.
    cfg.ilp = 2.0;
    return cfg;
  }

  std::string name() const override { return "hybrid-mma(dense)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    const long long wnd = blk.block_id();
    const long long n = p_->n();
    WarpCtx warp0 = blk.warp(0);

    const index_t r0 = static_cast<index_t>(wnd) * tile_.m;
    const int wrows = static_cast<int>(
        std::min<long long>(tile_.m, static_cast<long long>(dense_rows_) - r0));
    const LaneMask row_mask = first_lanes(wrows);

    // Window row ids: the permutation is contiguous, so this is coalesced.
    const Lanes<index_t> rows_l = warp0.ld_contig(*perm_, r0, row_mask);
    Lanes<std::int64_t> plo{}, phi{};
    for (int r = 0; r < wrows; ++r) {
      plo[static_cast<std::size_t>(r)] = rows_l[static_cast<std::size_t>(r)];
      phi[static_cast<std::size_t>(r)] = rows_l[static_cast<std::size_t>(r)] + 1;
    }
    const Lanes<index_t> lo = warp0.ld_gather(p_->A.rowptr, plo, row_mask);
    const Lanes<index_t> hi = warp0.ld_gather(p_->A.rowptr, phi, row_mask);

    // Stage the window's sparse rows once per block: cooperative coalesced
    // colind/val tile loads, the A-fragment build charged as shared-memory
    // stores. Every warp then reuses the staged window across its chunks.
    std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(wrows));
    std::vector<std::vector<value_t>> vals(static_cast<std::size_t>(wrows));
    for (int r = 0; r < wrows; ++r) {
      const index_t rlo = lo[static_cast<std::size_t>(r)];
      const index_t rhi = hi[static_cast<std::size_t>(r)];
      for (index_t ptr = rlo; ptr < rhi; ptr += kWarpSize) {
        const int tile = static_cast<int>(
            std::min<index_t>(kWarpSize, rhi - ptr));
        const LaneMask lm = first_lanes(tile);
        const Lanes<index_t> kk = warp0.ld_contig(p_->A.colind, ptr, lm);
        const Lanes<value_t> vv = warp0.ld_contig(p_->A.val, ptr, lm);
        for (int l = 0; l < tile; ++l) {
          cols[static_cast<std::size_t>(r)].push_back(kk[static_cast<std::size_t>(l)]);
          vals[static_cast<std::size_t>(r)].push_back(vv[static_cast<std::size_t>(l)]);
        }
        warp0.smem_store(static_cast<std::uint64_t>(tile) *
                         (sizeof(index_t) + sizeof(value_t)));
      }
      warp0.count_inst(2);
    }

    // Column union across the window (sorted): the shared B working set.
    std::vector<index_t> uni;
    for (const auto& cr : cols) uni.insert(uni.end(), cr.begin(), cr.end());
    std::sort(uni.begin(), uni.end());
    uni.erase(std::unique(uni.begin(), uni.end()), uni.end());

    std::vector<Lanes<value_t>> bstage(uni.size());
    for (int w = 0; w < blk.num_warps(); ++w) {
      WarpCtx warp = blk.warp(w);
      for (long long chunk = w; chunk < col_chunks_; chunk += blk.num_warps()) {
        const long long j0 = chunk * kWarpSize;
        const long long remaining = n - j0;
        const LaneMask mask = remaining >= kWarpSize
                                  ? kFullMask
                                  : first_lanes(static_cast<int>(remaining));
        if (mask == 0) continue;

        // Stream B once per union column, in tile.k-slices; each slice
        // feeds ceil(active_cols / tile.n) mma issues.
        const int issues_per_slice =
            (active_lanes(mask) + tile_.n - 1) / tile_.n;
        for (std::size_t u0 = 0; u0 < uni.size();
             u0 += static_cast<std::size_t>(tile_.k)) {
          const std::size_t slice = std::min<std::size_t>(
              static_cast<std::size_t>(tile_.k), uni.size() - u0);
          for (std::size_t s = 0; s < slice; ++s) {
            bstage[u0 + s] = warp.ld_contig(
                p_->B.device(),
                static_cast<std::int64_t>(uni[u0 + s]) * n + j0, mask);
            warp.smem_store(static_cast<std::uint64_t>(active_lanes(mask)) *
                            sizeof(value_t));
          }
          for (int q = 0; q < issues_per_slice; ++q) {
            warp.mma_tile(tile_.m, tile_.n, tile_.k);
            // Both fragments re-read from shared memory per issue.
            warp.smem_load(static_cast<std::uint64_t>(tile_.m + tile_.n) *
                           static_cast<std::uint64_t>(tile_.k) * sizeof(value_t));
          }
          warp.count_inst(2);
        }

        // Real math: fold each row's nonzeros in CSR storage order against
        // the staged B-rows. The arithmetic itself was charged via mma_tile
        // above.
        for (int r = 0; r < wrows; ++r) {
          Lanes<value_t> acc = splat(Reduce::init());
          const auto& cr = cols[static_cast<std::size_t>(r)];
          const auto& vr = vals[static_cast<std::size_t>(r)];
          for (std::size_t t = 0; t < cr.size(); ++t) {
            const std::size_t s = static_cast<std::size_t>(
                std::lower_bound(uni.begin(), uni.end(), cr[t]) - uni.begin());
            const value_t v = vr[t];
            for (int l = 0; l < kWarpSize; ++l) {
              if (lane_active(mask, l)) {
                acc[static_cast<std::size_t>(l)] = Reduce::reduce(
                    acc[static_cast<std::size_t>(l)],
                    Reduce::combine(v, bstage[s][static_cast<std::size_t>(l)]));
              }
            }
          }
          const index_t row_nnz =
              hi[static_cast<std::size_t>(r)] - lo[static_cast<std::size_t>(r)];
          for (int l = 0; l < kWarpSize; ++l) {
            if (lane_active(mask, l)) {
              acc[static_cast<std::size_t>(l)] =
                  Reduce::finalize(acc[static_cast<std::size_t>(l)], row_nnz);
            }
          }
          warp.st_contig(
              p_->C.device(),
              static_cast<std::int64_t>(rows_l[static_cast<std::size_t>(r)]) * n + j0,
              acc, mask);
        }
      }
    }
  }

 private:
  SpmmProblem* p_;
  const gpusim::DeviceArray<index_t>* perm_;
  index_t dense_rows_;
  gpusim::MmaTileSpec tile_;
  long long col_chunks_ = 1;
  long long windows_ = 0;
  int warps_ = 1;
};

/// Ragged-partition sub-kernel: Coalesced Row Caching (Algorithm 2) over
/// the ragged rows only, reached through the partition permutation.
template <typename Reduce>
class SpmmHybridRaggedKernel final : public gpusim::Kernel {
 public:
  SpmmHybridRaggedKernel(SpmmProblem& p, const gpusim::DeviceArray<index_t>& perm,
                         index_t dense_rows, index_t ragged_rows)
      : p_(&p), perm_(&perm), dense_rows_(dense_rows),
        map_(RowBlockMapping::create(ragged_rows, p.n(), /*cf=*/1)) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = map_.grid();
    cfg.block = map_.block_dim;
    cfg.smem_bytes = static_cast<std::size_t>(map_.block_dim) *
                     (sizeof(index_t) + sizeof(value_t));
    cfg.regs_per_thread = 30;
    cfg.ilp = 1.0;
    return cfg;
  }

  std::string name() const override { return "hybrid-simt(ragged)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    sparse::index_t ridx;
    long long chunk;
    map_.decode(blk.block_id(), ridx, chunk);
    const long long n = map_.n;

    auto sm_k = blk.smem_alloc<index_t>(static_cast<std::size_t>(map_.block_dim));
    auto sm_v = blk.smem_alloc<value_t>(static_cast<std::size_t>(map_.block_dim));

    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long j0 = map_.warp_col_base(chunk, w);
      const LaneMask mask = map_.col_mask(j0);
      if (mask == 0) continue;
      WarpCtx warp = blk.warp(w);
      const int sm_base = w * kWarpSize;
      const int lanes_in_warp = active_lanes(mask);

      // One extra broadcast vs plain CRC: the partition indirection.
      const index_t i = warp.ld_broadcast(*perm_, dense_rows_ + ridx, mask);
      const index_t lo = warp.ld_broadcast(p_->A.rowptr, i, mask);
      const index_t hi = warp.ld_broadcast(p_->A.rowptr, i + 1, mask);

      Lanes<value_t> acc = splat(Reduce::init());
      for (index_t ptr = lo; ptr < hi; ptr += lanes_in_warp) {
        const int tile = std::min<index_t>(lanes_in_warp, hi - ptr);
        const LaneMask load_mask = first_lanes(tile);
        const Lanes<index_t> kk = warp.ld_contig(p_->A.colind, ptr, load_mask);
        const Lanes<value_t> vv = warp.ld_contig(p_->A.val, ptr, load_mask);
        for (int l = 0; l < tile; ++l) {
          sm_k[static_cast<std::size_t>(sm_base + l)] = kk[static_cast<std::size_t>(l)];
          sm_v[static_cast<std::size_t>(sm_base + l)] = vv[static_cast<std::size_t>(l)];
        }
        warp.smem_store(static_cast<std::uint64_t>(tile) * sizeof(index_t));
        warp.smem_store(static_cast<std::uint64_t>(tile) * sizeof(value_t));
        warp.sync_warp();

        for (int t = 0; t < tile; ++t) {
          const index_t k = sm_k[static_cast<std::size_t>(sm_base + t)];
          const value_t v = sm_v[static_cast<std::size_t>(sm_base + t)];
          warp.smem_load(sizeof(index_t) + sizeof(value_t));
          const Lanes<value_t> b =
              warp.ld_contig(p_->B.device(), static_cast<std::int64_t>(k) * n + j0, mask);
          for (int l = 0; l < kWarpSize; ++l) {
            if (lane_active(mask, l)) {
              acc[static_cast<std::size_t>(l)] = Reduce::reduce(
                  acc[static_cast<std::size_t>(l)],
                  Reduce::combine(v, b[static_cast<std::size_t>(l)]));
            }
          }
          warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
          warp.count_inst(2);
        }
        warp.count_inst(2);
      }
      for (int l = 0; l < kWarpSize; ++l) {
        if (lane_active(mask, l)) {
          acc[static_cast<std::size_t>(l)] =
              Reduce::finalize(acc[static_cast<std::size_t>(l)], hi - lo);
        }
      }
      warp.st_contig(p_->C.device(), static_cast<std::int64_t>(i) * n + j0, acc, mask);
    }
  }

 private:
  SpmmProblem* p_;
  const gpusim::DeviceArray<index_t>* perm_;
  index_t dense_rows_;
  RowBlockMapping map_;
};

/// Sum two launches: metrics add, every time term adds, and the slower
/// launch's config/occupancy/bottleneck describe the composition.
void compose_into(gpusim::LaunchResult& total, const gpusim::LaunchResult& r) {
  const bool r_dominates = r.time.total_ms > total.time.total_ms;
  total.metrics += r.metrics;
  total.time.dram_ms += r.time.dram_ms;
  total.time.l2_ms += r.time.l2_ms;
  total.time.l1_ms += r.time.l1_ms;
  total.time.smem_ms += r.time.smem_ms;
  total.time.issue_ms += r.time.issue_ms;
  total.time.mma_ms += r.time.mma_ms;
  total.time.tail_ms += r.time.tail_ms;
  total.time.launch_overhead_ms += r.time.launch_overhead_ms;
  total.time.total_ms += r.time.total_ms;
  if (r_dominates) {
    total.time.bottleneck = r.time.bottleneck;
    total.time.utilization = r.time.utilization;
    total.time.concurrency = r.time.concurrency;
    total.config = r.config;
    total.occupancy = r.occupancy;
    total.achieved_occupancy = r.achieved_occupancy;
  }
}

}  // namespace

HybridLaunchResult run_spmm_hybrid_detailed(SpmmProblem& p, const SpmmRunOptions& opt) {
  const gpusim::MmaTileSpec tile = gpusim::mma_tile_for(opt.device);
  const HybridPartition part =
      partition_rows_by_density(p.A, static_cast<index_t>(tile.k));
  const gpusim::DeviceArray<index_t> perm{std::span<const index_t>(part.perm)};

  HybridLaunchResult out;
  out.dense_rows = part.dense_rows;
  out.threshold = part.threshold;
  bool have = false;
  auto add = [&](const gpusim::LaunchResult& r) {
    if (!have) {
      out.total = r;
      have = true;
    } else {
      compose_into(out.total, r);
    }
  };

  if (part.dense_rows > 0) {
    const auto r = with_semiring(opt.reduce, [&]<typename R>() {
      SpmmHybridDenseKernel<R> k(p, perm, part.dense_rows, tile);
      return gpusim::launch(opt.device, k, opt.sample);
    });
    out.dense_ms = r.time_ms();
    add(r);
  }
  if (part.ragged_rows() > 0) {
    const auto r = with_semiring(opt.reduce, [&]<typename R>() {
      SpmmHybridRaggedKernel<R> k(p, perm, part.dense_rows, part.ragged_rows());
      return gpusim::launch(opt.device, k, opt.sample);
    });
    out.ragged_ms = r.time_ms();
    add(r);
  }
  out.total.kernel_name = "hybrid(mma+simt)";
  return out;
}

gpusim::LaunchResult run_spmm_hybrid(SpmmProblem& p, const SpmmRunOptions& opt) {
  return run_spmm_hybrid_detailed(p, opt).total;
}

}  // namespace gespmm::kernels
