#pragma once
/// \file spmm_naive.hpp
/// Algorithm 1 of the paper: the simple parallel CSR SpMM. Rows map to
/// blocks and output columns to threads, so access to the dense matrix B is
/// coalesced — but every thread of a warp walks the sparse row serially,
/// loading A.colInd[ptr] / A.val[ptr] as warp-wide *broadcasts*: one 32-byte
/// transaction per element per warp of which only 4 bytes are useful. This
/// is the inefficiency Coalesced Row Caching removes.

#include "gpusim/gpusim.hpp"
#include "kernels/row_block_mapping.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

template <typename Reduce = SumReduce>
class SpmmNaiveKernel final : public gpusim::Kernel {
 public:
  explicit SpmmNaiveKernel(SpmmProblem& p)
      : p_(&p), map_(RowBlockMapping::create(p.m(), p.n(), /*cf=*/1)) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = map_.grid();
    cfg.block = map_.block_dim;
    cfg.smem_bytes = 0;
    cfg.regs_per_thread = 24;
    cfg.ilp = 1.0;
    return cfg;
  }

  std::string name() const override { return "naive(alg1)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    sparse::index_t i;
    long long chunk;
    map_.decode(blk.block_id(), i, chunk);
    const long long n = map_.n;

    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long j0 = map_.warp_col_base(chunk, w);
      const LaneMask mask = map_.col_mask(j0);
      if (mask == 0) continue;
      WarpCtx warp = blk.warp(w);

      // Every thread reads the row bounds (warp-wide broadcast loads).
      const index_t lo = warp.ld_broadcast(p_->A.rowptr, i, mask);
      const index_t hi = warp.ld_broadcast(p_->A.rowptr, i + 1, mask);

      Lanes<value_t> acc = splat(Reduce::init());
      for (index_t ptr = lo; ptr < hi; ++ptr) {
        const index_t k = warp.ld_broadcast(p_->A.colind, ptr, mask);
        const value_t v = warp.ld_broadcast(p_->A.val, ptr, mask);
        const Lanes<value_t> b =
            warp.ld_contig(p_->B.device(), static_cast<std::int64_t>(k) * n + j0, mask);
        for (int l = 0; l < kWarpSize; ++l) {
          if (lane_active(mask, l)) {
            acc[static_cast<std::size_t>(l)] = Reduce::reduce(
                acc[static_cast<std::size_t>(l)],
                Reduce::combine(v, b[static_cast<std::size_t>(l)]));
          }
        }
        warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
        warp.count_inst(2);  // loop bound check + pointer increment
      }
      for (int l = 0; l < kWarpSize; ++l) {
        if (lane_active(mask, l)) {
          acc[static_cast<std::size_t>(l)] =
              Reduce::finalize(acc[static_cast<std::size_t>(l)], hi - lo);
        }
      }
      warp.st_contig(p_->C.device(), static_cast<std::int64_t>(i) * n + j0, acc, mask);
    }
  }

 private:
  SpmmProblem* p_;
  RowBlockMapping map_;
};

}  // namespace gespmm::kernels
