#pragma once
/// \file spmm_crc.hpp
/// Algorithm 2 of the paper: SpMM with Coalesced Row Caching (CRC).
///
/// The sequential walk over the sparse row is partially unrolled by a
/// factor of warp_size: in phase one the warp loads a 32-element tile of
/// A.colInd / A.val cooperatively (lane l loads element ptr+l — a fully
/// coalesced request) into shared memory; in phase two the warp consumes
/// the tile element-by-element from shared memory while streaming B with
/// coalesced row-vector loads. Arbitrary row lengths are handled with the
/// bound checks of Algorithm 2 lines 10 and 17.

#include "gpusim/gpusim.hpp"
#include "kernels/row_block_mapping.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

template <typename Reduce = SumReduce>
class SpmmCrcKernel final : public gpusim::Kernel {
 public:
  explicit SpmmCrcKernel(SpmmProblem& p)
      : p_(&p), map_(RowBlockMapping::create(p.m(), p.n(), /*cf=*/1)) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = map_.grid();
    cfg.block = map_.block_dim;
    // sm_k (int) + sm_v (float) per thread.
    cfg.smem_bytes = static_cast<std::size_t>(map_.block_dim) *
                     (sizeof(index_t) + sizeof(value_t));
    cfg.regs_per_thread = 30;
    cfg.ilp = 1.0;
    return cfg;
  }

  std::string name() const override { return "crc(alg2)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    sparse::index_t i;
    long long chunk;
    map_.decode(blk.block_id(), i, chunk);
    const long long n = map_.n;

    auto sm_k = blk.smem_alloc<index_t>(static_cast<std::size_t>(map_.block_dim));
    auto sm_v = blk.smem_alloc<value_t>(static_cast<std::size_t>(map_.block_dim));

    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long j0 = map_.warp_col_base(chunk, w);
      const LaneMask mask = map_.col_mask(j0);
      if (mask == 0) continue;
      WarpCtx warp = blk.warp(w);
      const int sm_base = w * kWarpSize;
      const int lanes_in_warp = active_lanes(mask);

      const index_t lo = warp.ld_broadcast(p_->A.rowptr, i, mask);
      const index_t hi = warp.ld_broadcast(p_->A.rowptr, i + 1, mask);

      Lanes<value_t> acc = splat(Reduce::init());
      for (index_t ptr = lo; ptr < hi; ptr += lanes_in_warp) {
        // Phase 1: coalesced tile load into shared memory (lines 10-13).
        const int tile = std::min<index_t>(lanes_in_warp, hi - ptr);
        const LaneMask load_mask = first_lanes(tile);
        const Lanes<index_t> kk = warp.ld_contig(p_->A.colind, ptr, load_mask);
        const Lanes<value_t> vv = warp.ld_contig(p_->A.val, ptr, load_mask);
        for (int l = 0; l < tile; ++l) {
          sm_k[static_cast<std::size_t>(sm_base + l)] = kk[static_cast<std::size_t>(l)];
          sm_v[static_cast<std::size_t>(sm_base + l)] = vv[static_cast<std::size_t>(l)];
        }
        warp.smem_store(static_cast<std::uint64_t>(tile) * sizeof(index_t));
        warp.smem_store(static_cast<std::uint64_t>(tile) * sizeof(value_t));
        warp.sync_warp();

        // Phase 2: consume the tile; B loads stay coalesced (lines 16-21).
        for (int t = 0; t < tile; ++t) {
          const index_t k = sm_k[static_cast<std::size_t>(sm_base + t)];
          const value_t v = sm_v[static_cast<std::size_t>(sm_base + t)];
          warp.smem_load(sizeof(index_t) + sizeof(value_t));
          const Lanes<value_t> b =
              warp.ld_contig(p_->B.device(), static_cast<std::int64_t>(k) * n + j0, mask);
          for (int l = 0; l < kWarpSize; ++l) {
            if (lane_active(mask, l)) {
              acc[static_cast<std::size_t>(l)] = Reduce::reduce(
                  acc[static_cast<std::size_t>(l)],
                  Reduce::combine(v, b[static_cast<std::size_t>(l)]));
            }
          }
          warp.count_fma(static_cast<std::uint64_t>(active_lanes(mask)));
          warp.count_inst(2);
        }
        warp.count_inst(2);  // outer tile loop
      }
      for (int l = 0; l < kWarpSize; ++l) {
        if (lane_active(mask, l)) {
          acc[static_cast<std::size_t>(l)] =
              Reduce::finalize(acc[static_cast<std::size_t>(l)], hi - lo);
        }
      }
      warp.st_contig(p_->C.device(), static_cast<std::int64_t>(i) * n + j0, acc, mask);
    }
  }

 private:
  SpmmProblem* p_;
  RowBlockMapping map_;
};

}  // namespace gespmm::kernels
