#pragma once
/// \file spmm_crc_cwm.hpp
/// Algorithm 3 of the paper: CRC plus Coarse-grained Warp Merging (CWM).
///
/// CWM merges the workloads of CF warps that would redundantly load the
/// same sparse row: each thread now produces CF outputs (columns j, j+32,
/// ..., j+32*(CF-1)), so the shared-memory tile of the sparse row is loaded
/// once instead of CF times, and each tile element issues CF independent
/// B loads — instruction-level parallelism that raises achieved bandwidth.
/// The price is CF partial-sum registers per thread and CF-fold fewer
/// warps; the paper (Fig. 9) finds CF=2 the robust optimum, which the cost
/// model reproduces.

#include "gpusim/gpusim.hpp"
#include "kernels/row_block_mapping.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::kernels {

template <typename Reduce = SumReduce, int CF = 2>
class SpmmCrcCwmKernel final : public gpusim::Kernel {
  static_assert(CF >= 1 && CF <= 8);

 public:
  explicit SpmmCrcCwmKernel(SpmmProblem& p)
      : p_(&p), map_(RowBlockMapping::create(p.m(), p.n(), CF, /*max_block=*/256)) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = map_.grid();
    cfg.block = map_.block_dim;
    cfg.smem_bytes = static_cast<std::size_t>(map_.block_dim) *
                     (sizeof(index_t) + sizeof(value_t));
    // CF partial sums plus CF address registers on top of the CRC baseline.
    cfg.regs_per_thread = 30 + 5 * CF;
    // Effective ILP is bounded by the column groups that actually carry
    // work: at N <= 32 the merged groups are empty and coarsening adds
    // only instruction overhead (why the adaptive dispatch of Fig. 7
    // selects plain CRC there).
    const long long groups = (map_.n + gpusim::kWarpSize - 1) / gpusim::kWarpSize;
    cfg.ilp = static_cast<double>(std::min<long long>(CF, std::max<long long>(1, groups)));
    return cfg;
  }

  std::string name() const override {
    return "crc+cwm(cf=" + std::to_string(CF) + ")";
  }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    sparse::index_t i;
    long long chunk;
    map_.decode(blk.block_id(), i, chunk);
    const long long n = map_.n;

    auto sm_k = blk.smem_alloc<index_t>(static_cast<std::size_t>(map_.block_dim));
    auto sm_v = blk.smem_alloc<value_t>(static_cast<std::size_t>(map_.block_dim));

    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long j0 = map_.warp_col_base(chunk, w);
      // Column groups handled by this warp: j0 + 32*c + lane, c in [0, CF).
      std::array<LaneMask, CF> masks{};
      LaneMask any = 0;
      for (int c = 0; c < CF; ++c) {
        masks[static_cast<std::size_t>(c)] = map_.col_mask(j0 + 32LL * c);
        any |= masks[static_cast<std::size_t>(c)];
      }
      if (any == 0) continue;
      WarpCtx warp = blk.warp(w);
      const int sm_base = w * kWarpSize;
      const int lanes_in_warp = active_lanes(masks[0]);  // group 0 is densest

      const index_t lo = warp.ld_broadcast(p_->A.rowptr, i, any);
      const index_t hi = warp.ld_broadcast(p_->A.rowptr, i + 1, any);

      std::array<Lanes<value_t>, CF> acc;
      for (auto& a : acc) a = splat(Reduce::init());

      for (index_t ptr = lo; ptr < hi; ptr += lanes_in_warp) {
        const int tile = std::min<index_t>(lanes_in_warp, hi - ptr);
        const LaneMask load_mask = first_lanes(tile);
        const Lanes<index_t> kk = warp.ld_contig(p_->A.colind, ptr, load_mask);
        const Lanes<value_t> vv = warp.ld_contig(p_->A.val, ptr, load_mask);
        for (int l = 0; l < tile; ++l) {
          sm_k[static_cast<std::size_t>(sm_base + l)] = kk[static_cast<std::size_t>(l)];
          sm_v[static_cast<std::size_t>(sm_base + l)] = vv[static_cast<std::size_t>(l)];
        }
        warp.smem_store(static_cast<std::uint64_t>(tile) * sizeof(index_t));
        warp.smem_store(static_cast<std::uint64_t>(tile) * sizeof(value_t));
        warp.sync_warp();

        for (int t = 0; t < tile; ++t) {
          const index_t k = sm_k[static_cast<std::size_t>(sm_base + t)];
          const value_t v = sm_v[static_cast<std::size_t>(sm_base + t)];
          warp.smem_load(sizeof(index_t) + sizeof(value_t));
          // CF independent B loads per tile element (Algorithm 3 lines
          // 7-8) — the ILP the paper exploits.
          for (int c = 0; c < CF; ++c) {
            const LaneMask mc = masks[static_cast<std::size_t>(c)];
            if (mc == 0) continue;
            const Lanes<value_t> b = warp.ld_contig(
                p_->B.device(), static_cast<std::int64_t>(k) * n + j0 + 32LL * c, mc);
            auto& a = acc[static_cast<std::size_t>(c)];
            for (int l = 0; l < kWarpSize; ++l) {
              if (lane_active(mc, l)) {
                a[static_cast<std::size_t>(l)] =
                    Reduce::reduce(a[static_cast<std::size_t>(l)],
                                   Reduce::combine(v, b[static_cast<std::size_t>(l)]));
              }
            }
            warp.count_fma(static_cast<std::uint64_t>(active_lanes(mc)));
          }
          warp.count_inst(2);
        }
        warp.count_inst(2);
      }

      for (int c = 0; c < CF; ++c) {
        const LaneMask mc = masks[static_cast<std::size_t>(c)];
        if (mc == 0) continue;
        auto& a = acc[static_cast<std::size_t>(c)];
        for (int l = 0; l < kWarpSize; ++l) {
          if (lane_active(mc, l)) {
            a[static_cast<std::size_t>(l)] =
                Reduce::finalize(a[static_cast<std::size_t>(l)], hi - lo);
          }
        }
        warp.st_contig(p_->C.device(), static_cast<std::int64_t>(i) * n + j0 + 32LL * c, a,
                       mc);
      }
    }
  }

 private:
  SpmmProblem* p_;
  RowBlockMapping map_;
};

}  // namespace gespmm::kernels
