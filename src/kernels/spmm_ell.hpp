#pragma once
/// \file spmm_ell.hpp
/// ELLPACK-R SpMM in the style of Fastspmm (paper ref [21]) — the earliest
/// of the preprocess-based formats the paper contrasts against.
///
/// ELLPACK-R stores the matrix column-major with rows padded to the width
/// of the longest row (plus a per-row length array that lets the kernel
/// stop early). One *thread* per output row walking column-major slots
/// makes the sparse loads perfectly coalesced across the warp's 32 rows —
/// without any shared memory — which is why the format was attractive for
/// SpMV-era kernels. Its failure mode on graphs is the padding: power-law
/// degree distributions blow the padded width up by orders of magnitude
/// (storage *and* zero-work), which is one of the reasons the paper rules
/// out preprocessed formats for GNN frameworks.

#include "gpusim/gpusim.hpp"
#include "kernels/registry.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_problem.hpp"
#include "sparse/ell.hpp"

namespace gespmm::kernels {

/// Device-resident ELLPACK-R operand.
struct EllDevice {
  index_t rows = 0;
  index_t cols = 0;
  index_t width = 0;
  gpusim::DeviceArray<index_t> colind;  // column-major rows x width
  gpusim::DeviceArray<value_t> val;
  gpusim::DeviceArray<index_t> rowlen;

  explicit EllDevice(const sparse::EllR& e)
      : rows(e.rows), cols(e.cols), width(e.width),
        colind(std::span<const index_t>(e.colind)),
        val(std::span<const value_t>(e.val)),
        rowlen(std::span<const index_t>(e.rowlen)) {}
};

/// Warp layout: 32 consecutive rows per warp; each thread serially walks
/// its row's slots (coalesced column-major sparse loads), and for each
/// slot streams one 32-column chunk of B per lane-group iteration. Dense
/// loads are *gathers* across the warp's 32 different k values — the
/// structural weakness vs row-per-block layouts for SpMM (fine for SpMV,
/// where this kernel family originated).
template <typename Reduce = SumReduce>
class SpmmEllKernel final : public gpusim::Kernel {
 public:
  static constexpr int kWarpsPerBlock = 4;

  SpmmEllKernel(const EllDevice& ell, SpmmProblem& p) : e_(&ell), p_(&p) {}

  gpusim::LaunchConfig config(const gpusim::DeviceSpec&) const override {
    gpusim::LaunchConfig cfg;
    cfg.grid = (static_cast<long long>(e_->rows) + kWarpsPerBlock * gpusim::kWarpSize - 1) /
               (kWarpsPerBlock * gpusim::kWarpSize);
    cfg.block = kWarpsPerBlock * gpusim::kWarpSize;
    cfg.regs_per_thread = 30;
    cfg.ilp = 1.0;
    return cfg;
  }

  std::string name() const override { return "ellpack-r(fastspmm)"; }

  void run_block(gpusim::BlockCtx& blk) const override {
    using namespace gpusim;
    const long long n = p_->n();
    const long long rows = e_->rows;
    for (int w = 0; w < blk.num_warps(); ++w) {
      const long long r0 =
          blk.block_id() * kWarpsPerBlock * kWarpSize + static_cast<long long>(w) * kWarpSize;
      if (r0 >= rows) break;
      const LaneMask row_mask =
          (rows - r0) >= kWarpSize ? kFullMask : first_lanes(static_cast<int>(rows - r0));
      WarpCtx warp = blk.warp(w);
      const Lanes<index_t> len = warp.ld_contig(e_->rowlen, r0, row_mask);
      index_t max_len = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (lane_active(row_mask, l)) {
          max_len = std::max(max_len, len[static_cast<std::size_t>(l)]);
        }
      }

      // Process the output row in 32-column chunks; per chunk, walk the
      // padded slots. Slot s of the warp's rows is contiguous in the
      // column-major arrays — one coalesced transaction per slot.
      for (long long j0 = 0; j0 < n; j0 += kWarpSize) {
        const LaneMask col_mask = (n - j0) >= kWarpSize
                                      ? kFullMask
                                      : first_lanes(static_cast<int>(n - j0));
        std::array<Lanes<value_t>, kWarpSize> acc;  // acc[l2] = row r0+l2's chunk
        for (auto& a : acc) a = splat(Reduce::init());

        for (index_t s = 0; s < max_len; ++s) {
          LaneMask active = 0;
          for (int l = 0; l < kWarpSize; ++l) {
            if (lane_active(row_mask, l) && s < len[static_cast<std::size_t>(l)]) {
              active |= (1u << l);
            }
          }
          if (active == 0) break;
          const std::int64_t slot_base = static_cast<std::int64_t>(s) * rows + r0;
          const Lanes<index_t> kk = warp.ld_contig(e_->colind, slot_base, active);
          const Lanes<value_t> vv = warp.ld_contig(e_->val, slot_base, active);
          // Each active lane owns one row; its B row is broadcast across
          // the chunk lanes one row at a time (shfl-rotated).
          for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l)) continue;
            const index_t k = warp.shfl(kk, l);
            const value_t v = warp.shfl(vv, l);
            const Lanes<value_t> b = warp.ld_contig(
                p_->B.device(), static_cast<std::int64_t>(k) * n + j0, col_mask);
            auto& a = acc[static_cast<std::size_t>(l)];
            for (int c = 0; c < kWarpSize; ++c) {
              if (lane_active(col_mask, c)) {
                a[static_cast<std::size_t>(c)] = Reduce::reduce(
                    a[static_cast<std::size_t>(c)],
                    Reduce::combine(v, b[static_cast<std::size_t>(c)]));
              }
            }
            warp.count_fma(static_cast<std::uint64_t>(active_lanes(col_mask)));
          }
          warp.count_inst(3);
        }
        for (int l = 0; l < kWarpSize; ++l) {
          if (!lane_active(row_mask, l)) continue;
          auto& a = acc[static_cast<std::size_t>(l)];
          for (int c = 0; c < kWarpSize; ++c) {
            if (lane_active(col_mask, c)) {
              a[static_cast<std::size_t>(c)] = Reduce::finalize(
                  a[static_cast<std::size_t>(c)], len[static_cast<std::size_t>(l)]);
            }
          }
          warp.st_contig(p_->C.device(), (r0 + l) * n + j0, a, col_mask);
        }
        warp.count_inst(2);
      }
    }
  }

 private:
  const EllDevice* e_;
  SpmmProblem* p_;
};

/// Run the ELLPACK-R kernel (sum and SpMM-like reductions supported).
gpusim::LaunchResult run_spmm_ell(const EllDevice& ell, SpmmProblem& p,
                                  const SpmmRunOptions& opt = SpmmRunOptions());

}  // namespace gespmm::kernels
