#pragma once
/// \file plan_cache.hpp
/// Thread-safe cache of execution plans keyed by (graph fingerprint,
/// device, dense width, reduction).
///
/// A *plan* is the outcome of algorithm selection for one SpMM shape: the
/// kernel to run and its modelled device time. Building one costs a
/// block-sampled simulator pass per candidate (the `src/core/autotune`
/// tuner); serving the same graph repeatedly must pay that once, not per
/// request — the plan-reuse argument of GE-SpMM's repeated-SpMM GNN
/// setting. Entries are immutable once built, so readers share them
/// lock-free via shared_ptr.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/autotune.hpp"
#include "serve/fingerprint.hpp"

namespace gespmm::serve {

using kernels::ReduceKind;
using kernels::SpmmAlgo;

/// Cache key: everything algorithm selection depends on.
struct PlanKey {
  /// GraphFingerprint::key() of the registered operand.
  std::uint64_t graph = 0;
  /// Device preset name ("gtx1080ti" / "rtx2080").
  std::string device;
  /// Dense-matrix width N the kernel will run at (after batching).
  index_t n = 0;
  /// Reduction of the SpMM-like operation.
  ReduceKind reduce = ReduceKind::Sum;

  auto operator<=>(const PlanKey&) const = default;
};

/// An immutable, cached algorithm-selection result.
struct CachedPlan {
  /// Kernel the engine will account this shape against.
  SpmmAlgo algo = SpmmAlgo::GeSpMM;
  /// Block-sampled modelled device time for one SpMM at this shape (ms).
  double modelled_ms = 0.0;
  /// Whether `algo` came from the CF autotuner (sum reductions) or the
  /// paper's fixed Fig. 7(c) rule (non-sum reductions are not tuned: the
  /// tuner's candidate sweep is calibrated for the standard semiring).
  bool autotuned = false;
  /// time(fixed rule) / time(algo); 1.0 when the fixed rule was optimal.
  double gain_over_default = 1.0;
};

/// How plans are built on a cache miss.
struct PlanCacheOptions {
  /// Run the CF autotuner (sum reductions only) instead of the fixed rule.
  bool autotune = true;
  /// Simulator block-sampling budget per candidate.
  std::uint64_t sample_blocks = 512;
  /// Plan widths are quantized up to a multiple of this before lookup, so
  /// variable batch compositions (16+32, 3x16, ...) share plans instead of
  /// each paying a candidate sweep. One warp covers 32 output columns with
  /// lane masking, so the kernel choice is insensitive within a 32-wide
  /// bucket and the quantized modelled time is a (<= 31 columns) upper
  /// bound of the exact one. Set 1 for exact-width keys.
  index_t width_quantum = 32;
};

/// Thread-safe lookup-or-build plan store with hit/miss accounting.
class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions opt = {}) : opt_(opt) {}

  /// Return the plan for `key` (its width quantized per `width_quantum`),
  /// building it from `a` on `device` if absent. `was_hit` (optional)
  /// reports whether the plan was already cached. Concurrent misses on the
  /// same key both build (deterministically identical) plans; the first
  /// insert wins.
  std::shared_ptr<const CachedPlan> lookup_or_build(
      const PlanKey& key, const Csr& a, const gpusim::DeviceSpec& device,
      bool* was_hit = nullptr);

  /// Cache hits / misses / resident plans since construction.
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

 private:
  PlanCacheOptions opt_;
  mutable std::mutex mu_;
  std::map<PlanKey, std::shared_ptr<const CachedPlan>> plans_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gespmm::serve
