#pragma once
/// \file plan_cache.hpp
/// Thread-safe, bounded cache of execution plans keyed by (graph
/// fingerprint, device, dense width, reduction).
///
/// A *plan* is the outcome of algorithm selection for one SpMM shape: the
/// kernel to run and its modelled device time. Building one costs a
/// block-sampled simulator pass per candidate (the `src/core/autotune`
/// tuner); serving the same graph repeatedly must pay that once, not per
/// request — the plan-reuse argument of GE-SpMM's repeated-SpMM GNN
/// setting. Entries are immutable once built, so readers share them
/// lock-free via shared_ptr.
///
/// The cache is bounded for long-lived daemons: at most
/// `PlanCacheOptions::max_entries` plans are resident at any observation
/// point, with least-recently-used eviction on insert. Plans *pinned* by
/// in-flight batches (see PlanLease) are never evicted; if the budget is
/// full of pinned plans, a newly built plan is handed back uncached
/// rather than breaching the budget. `stats().peak_size` records the
/// high-water resident count so tests can assert the budget invariant.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/autotune.hpp"
#include "serve/fingerprint.hpp"

namespace gespmm::serve {

using kernels::ReduceKind;
using kernels::SpmmAlgo;

/// Cache key: everything algorithm selection depends on.
struct PlanKey {
  /// GraphFingerprint::key() of the registered operand — for a shard plan,
  /// of the shard's CSR slice (see GraphShard::key), so identical slices
  /// share a plan whatever graph they came from.
  std::uint64_t graph = 0;
  /// Device preset name ("gtx1080ti" / "rtx2080").
  std::string device;
  /// Dense-matrix width N the kernel will run at (after batching).
  index_t n = 0;
  /// Reduction of the SpMM-like operation.
  ReduceKind reduce = ReduceKind::Sum;
  /// Shard index when the graph is row-partitioned across a device group
  /// (see shard.hpp): each shard's CSR slice autotunes separately, so the
  /// key must tell them apart. -1 = the whole, unsharded operand.
  std::int32_t shard = -1;

  auto operator<=>(const PlanKey&) const = default;
};

/// An immutable, cached algorithm-selection result.
struct CachedPlan {
  /// Kernel the engine will account this shape against. HybridMma when
  /// the plan is partitioned (see `steps`).
  SpmmAlgo algo = SpmmAlgo::GeSpMM;
  /// Block-sampled modelled device time for one SpMM at this shape (ms).
  /// Always equals the sum of the step times in `steps`.
  double modelled_ms = 0.0;
  /// The compiled row-partition step list this plan executes: one step
  /// over all rows for a single-kernel winner, the dense-MMA +
  /// ragged-SIMT pair when selection picks the density-partitioned
  /// hybrid. The step list is a *deterministic function of the PlanKey*
  /// (the partition depends only on the graph content the fingerprint
  /// hashes and on the device's MMA tile), so the key does not need to
  /// carry it — two caches building the same key always compile the same
  /// steps.
  std::vector<PlanStep> steps;
  /// Whether `algo` came from the CF tuner (sum reductions). Non-sum
  /// reductions skip the candidate sweep (it is calibrated for the
  /// standard semiring) but still route through the learned selector, so
  /// they can pick the hybrid partition too.
  bool autotuned = false;
  /// time(fixed rule) / time(algo); 1.0 when the fixed rule was optimal.
  double gain_over_default = 1.0;
  /// Modelled device time algorithm selection itself cost: the candidate
  /// profiling runs beyond the one that priced the chosen kernel (see
  /// AutotuneResult::build_ms). The engine charges this to the requesting
  /// device's clock when the plan was freshly built; 0 for cache hits,
  /// pure predictions and fixed-rule builds.
  double build_ms = 0.0;
  /// Selection ran the trained predictor (SelectionMode::Predict); when
  /// `retuned` is also set, the sweep had the final word on `algo`.
  bool predicted = false;
  /// The predict path escalated to the exact sweep (retune_regret).
  bool retuned = false;
  /// That escalation found a kernel strictly faster than the prediction.
  bool mispredicted = false;
};

/// How plans are built and retained.
struct PlanCacheOptions {
  /// Run the CF tuner (sum reductions only) instead of the fixed rule.
  bool autotune = true;
  /// How the tuner selects: Predict (default) maps matrix features
  /// through the trained table (core/plan_select) at zero modelled
  /// planning cost; Exact runs the legacy candidate sweep, whose extra
  /// profiling runs are charged via CachedPlan::build_ms.
  SelectionMode selection = SelectionMode::Predict;
  /// Online refinement (Predict only): forwarded to
  /// AutotuneOptions::retune_regret — escalate a prediction to the exact
  /// sweep when its priced time exceeds this factor of the fixed rule's.
  /// 0 disables; (0, 1] verifies every prediction (the property suite's
  /// mispredict-counting mode); > 1 retunes only clear regressions.
  double retune_regret = 0.0;
  /// Simulator block-sampling budget per candidate.
  std::uint64_t sample_blocks = 512;
  /// Master switch: false turns the cache into a pure build path — every
  /// acquire misses and hands back an uncached plan, nothing is retained.
  /// The cold-start benches measure planning cost per request with this.
  bool enabled = true;
  /// Plan widths are quantized up to a multiple of this before lookup, so
  /// variable batch compositions (16+32, 3x16, ...) share plans instead of
  /// each paying a candidate sweep. One warp covers 32 output columns with
  /// lane masking, so the kernel choice is insensitive within a 32-wide
  /// bucket and the quantized modelled time is a (<= 31 columns) upper
  /// bound of the exact one. Set 1 for exact-width keys.
  index_t width_quantum = 32;
  /// Entry budget: most plans resident at once (0 = unbounded). On
  /// insert beyond the budget the least-recently-used unpinned plan is
  /// evicted; when every resident plan is pinned, the new plan is
  /// returned uncached instead.
  std::size_t max_entries = 128;
};

/// Cache counters; `size`/`pinned` are the current residency snapshot,
/// `peak_size` the high-water mark (the budget-invariant observation
/// hook: it never exceeds `max_entries` when the cache is bounded).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  /// Builds handed back uncached because the budget was full of pinned
  /// plans, or because the cache is disabled (every disabled-cache build
  /// counts here and in `misses`).
  std::uint64_t uncached_builds = 0;
  /// Tuner builds whose kernel came from the trained predictor vs. the
  /// exact candidate sweep. Fixed-rule builds (non-sum reductions,
  /// autotune=false) count in neither; a build that retuned counts as
  /// exact (the sweep decided).
  std::uint64_t predicted_builds = 0;
  std::uint64_t exact_builds = 0;
  /// Predict-path builds that escalated to the sweep (retune_regret), and
  /// how many of those found the prediction strictly beaten — the online
  /// refinement hook's mispredict counter.
  std::uint64_t retunes = 0;
  std::uint64_t mispredicts = 0;
  /// Builds that compiled to a multi-step (density-partitioned hybrid)
  /// plan — counted for every fresh build whatever the reduction, so the
  /// serving layer can observe how often partitioned execution wins.
  std::uint64_t hybrid_builds = 0;
  /// Builds discarded because a racer inserted the same key first. These
  /// count in neither the selection counters above nor `inserts` — the
  /// winning build already covered both — so the miss ledger reconciles:
  /// `misses == inserts + uncached_builds + duplicate_builds` at every
  /// quiescent observation point.
  std::uint64_t duplicate_builds = 0;
  /// Entries erased by `invalidate()` (targeted staleness, e.g. a graph
  /// update bumping its fingerprint version) — disjoint from `evictions`,
  /// which counts LRU capacity pressure only.
  std::uint64_t invalidations = 0;
  std::size_t size = 0;
  std::size_t peak_size = 0;
  /// Outstanding pins (PlanLease objects alive on resident plans).
  std::size_t pinned = 0;
};

class PlanCache;

/// Move-only RAII pin on a plan returned by PlanCache::acquire. While a
/// lease is alive its plan cannot be evicted, so an executing batch keeps
/// its plan resident for concurrent requests to hit. Destruction (or
/// release()) unpins; the shared_ptr keeps the plan itself valid either
/// way.
class PlanLease {
 public:
  PlanLease() = default;
  PlanLease(PlanLease&& o) noexcept { *this = std::move(o); }
  PlanLease& operator=(PlanLease&& o) noexcept;
  PlanLease(const PlanLease&) = delete;
  PlanLease& operator=(const PlanLease&) = delete;
  ~PlanLease() { release(); }

  const CachedPlan& operator*() const { return *plan_; }
  const CachedPlan* operator->() const { return plan_.get(); }
  std::shared_ptr<const CachedPlan> plan() const { return plan_; }

  bool valid() const { return plan_ != nullptr; }
  /// Whether the plan was already resident when acquired.
  bool hit() const { return hit_; }
  /// False when the plan was built but not inserted (budget full of
  /// pinned plans) — the plan is still valid and correct, just unshared.
  bool cached() const { return cache_ != nullptr; }

  /// Drop the pin early (idempotent).
  void release();

 private:
  friend class PlanCache;
  PlanLease(std::shared_ptr<const CachedPlan> plan, PlanCache* cache,
            PlanKey key, bool hit)
      : plan_(std::move(plan)), cache_(cache), key_(std::move(key)), hit_(hit) {}

  std::shared_ptr<const CachedPlan> plan_;
  PlanCache* cache_ = nullptr;
  PlanKey key_;
  bool hit_ = false;
};

/// Thread-safe lookup-or-build plan store with LRU eviction, pinning and
/// hit/miss/eviction accounting.
class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions opt = {}) : opt_(opt) {}

  /// Return a pinned lease on the plan for `key` (its width quantized per
  /// `width_quantum`), building it from `a` on `device` if absent.
  /// Concurrent misses on the same key both build (deterministically
  /// identical) plans; the first insert wins. Hold the lease for the
  /// duration of the batch that uses the plan.
  PlanLease acquire(const PlanKey& key, const Csr& a,
                    const gpusim::DeviceSpec& device);

  /// Unpinned convenience wrapper around acquire(): returns the plan and
  /// (optionally) whether it was already cached.
  std::shared_ptr<const CachedPlan> lookup_or_build(
      const PlanKey& key, const Csr& a, const gpusim::DeviceSpec& device,
      bool* was_hit = nullptr);

  /// Erase every unpinned resident plan whose `PlanKey::graph` equals
  /// `graph_key` (all devices, widths, reduces and shard indices), e.g.
  /// because a graph update made that fingerprint stale. Pinned plans
  /// survive — an in-flight batch that captured the old graph snapshot is
  /// still executing it correctly — and age out via LRU once released.
  /// Returns the number of entries erased (also summed into
  /// `PlanCacheStats::invalidations`).
  std::size_t invalidate(std::uint64_t graph_key);

  /// Full counter snapshot (consistent: taken under one lock).
  PlanCacheStats stats() const;

  /// Cache hits / misses / resident plans since construction.
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

  /// Resident keys in eviction order (least recently used first) — the
  /// observation hook the LRU-order goldens assert on. Keys carry the
  /// quantized width.
  std::vector<PlanKey> resident_keys() const;

 private:
  friend class PlanLease;

  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    std::size_t pins = 0;
    std::list<PlanKey>::iterator lru_it;
  };

  PlanKey quantized(const PlanKey& key) const;
  std::shared_ptr<CachedPlan> build(const PlanKey& key, const Csr& a,
                                    const gpusim::DeviceSpec& device) const;
  /// Fold a freshly built plan into the selection counters (under mu_).
  void note_build(const CachedPlan& plan);
  /// Move `e` to the most-recently-used end (call under mu_).
  void touch(Entry& e);
  void unpin(const PlanKey& key);

  PlanCacheOptions opt_;
  mutable std::mutex mu_;
  std::map<PlanKey, Entry> plans_;
  /// Front = least recently used, back = most recently used.
  std::list<PlanKey> lru_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t uncached_builds_ = 0;
  std::uint64_t predicted_builds_ = 0;
  std::uint64_t exact_builds_ = 0;
  std::uint64_t retunes_ = 0;
  std::uint64_t mispredicts_ = 0;
  std::uint64_t hybrid_builds_ = 0;
  std::uint64_t duplicate_builds_ = 0;
  std::uint64_t invalidations_ = 0;
  std::size_t peak_size_ = 0;
  std::size_t pin_count_ = 0;
};

}  // namespace gespmm::serve
