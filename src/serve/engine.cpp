#include "serve/engine.hpp"

#include <stdexcept>

#include "kernels/spmm_host.hpp"

namespace gespmm::serve {

namespace detail {

void RequestState::fulfill(RequestResult r) {
  {
    std::lock_guard<std::mutex> lock(mu);
    result = std::move(r);
    done = true;
  }
  cv.notify_all();
}

const RequestResult& RequestState::wait() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return result;
}

}  // namespace detail

bool Ticket::ready() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

ServeOptions::ServeOptions() : devices{gpusim::gtx1080ti(), gpusim::rtx2080()} {}

Engine::Engine(ServeOptions opt) : opt_(std::move(opt)), plan_cache_(opt_.plan) {
  if (opt_.devices.empty()) {
    throw std::invalid_argument("Engine: at least one device required");
  }
  if (opt_.num_workers < 1) {
    throw std::invalid_argument("Engine: at least one worker required");
  }
  stats_.devices.reserve(opt_.devices.size());
  for (const auto& dev : opt_.devices) {
    DeviceServeStats ds;
    ds.device = dev.name;
    stats_.devices.push_back(std::move(ds));
  }
  if (!opt_.start_paused) start();
}

Engine::~Engine() { shutdown(); }

GraphId Engine::register_graph(const Csr& a) {
  a.validate();
  const GraphFingerprint fp = fingerprint(a);
  const std::uint64_t key = fp.key();
  std::lock_guard<std::mutex> lock(mu_);
  if (graphs_.contains(key)) {
    ++stats_.register_dedup_hits;
  } else {
    graphs_.emplace(key, std::make_shared<const Csr>(a));
    ++stats_.graphs_registered;
  }
  return GraphId{key};
}

std::shared_ptr<const Csr> Engine::graph(GraphId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(id.key);
  if (it == graphs_.end()) {
    throw std::invalid_argument("Engine::graph: unknown graph handle");
  }
  return it->second;
}

Ticket Engine::submit(GraphId id, DenseMatrix b, ReduceKind reduce) {
  auto state = std::make_shared<detail::RequestState>();
  state->graph_key = id.key;
  state->reduce = reduce;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      throw std::runtime_error("Engine::submit: engine is shut down");
    }
    auto it = graphs_.find(id.key);
    if (it == graphs_.end()) {
      throw std::invalid_argument("Engine::submit: unknown graph handle");
    }
    state->graph = it->second;
    if (b.rows() != state->graph->cols) {
      throw std::invalid_argument("Engine::submit: B must have A.cols rows");
    }
    if (b.cols() <= 0) {
      throw std::invalid_argument("Engine::submit: B must have at least one column");
    }
    if (b.layout() != kernels::Layout::RowMajor) {
      throw std::invalid_argument("Engine::submit: B must be row-major");
    }
    state->b = std::move(b);
    queue_.push_back(state);
    ++stats_.submitted;
  }
  cv_.notify_one();
  return Ticket(state);
}

void Engine::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(opt_.num_workers));
  for (int i = 0; i < opt_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Engine::shutdown() {
  start();  // a paused engine still owes its queue a drain
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (auto& w : workers) w.join();
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Engine::worker_loop() {
  for (;;) {
    std::vector<std::shared_ptr<detail::RequestState>> batch;
    std::size_t device_index = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty() || shutting_down_; });
      if (queue_.empty()) return;  // shutting down and fully drained

      std::vector<RequestShape> shapes;
      shapes.reserve(queue_.size());
      for (const auto& r : queue_) {
        shapes.push_back({r->graph_key, r->b.cols(), r->reduce});
      }
      const std::vector<std::size_t> picked = plan_batch(shapes, opt_.batch);
      batch.reserve(picked.size());
      for (std::size_t i : picked) batch.push_back(queue_[i]);
      // Erase back-to-front so earlier indices stay valid.
      for (auto it = picked.rbegin(); it != picked.rend(); ++it) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
      }
      device_index = next_device_++ % opt_.devices.size();
    }
    execute_batch(std::move(batch), device_index);
  }
}

void Engine::execute_batch(std::vector<std::shared_ptr<detail::RequestState>> batch,
                           std::size_t device_index) {
  const gpusim::DeviceSpec& dev = opt_.devices[device_index];
  const Csr& a = *batch.front()->graph;
  const ReduceKind reduce = batch.front()->reduce;

  index_t total_n = 0;
  for (const auto& r : batch) total_n += r->b.cols();

  // Coalesce the feature matrices column-wise: B_all = [B_1 | B_2 | ...].
  // Column independence of SpMM makes the split outputs bitwise identical
  // to per-request execution (row-parallel host kernel, column order kept).
  const DenseMatrix* b_all = &batch.front()->b;
  DenseMatrix coalesced;
  if (batch.size() > 1) {
    coalesced = DenseMatrix(a.cols, total_n);
    index_t col0 = 0;
    for (const auto& r : batch) {
      const index_t n_r = r->b.cols();
      for (index_t i = 0; i < a.cols; ++i) {
        for (index_t j = 0; j < n_r; ++j) {
          coalesced.at(i, col0 + j) = r->b.at(i, j);
        }
      }
      col0 += n_r;
    }
    b_all = &coalesced;
  }

  bool hit = false;
  const PlanKey key{batch.front()->graph_key, dev.name, total_n, reduce};
  const auto plan = plan_cache_.lookup_or_build(key, a, dev, &hit);

  DenseMatrix c_all(a.rows, total_n);
  kernels::spmm_host_parallel(a, *b_all, c_all, reduce);

  // Account the batch before fulfilling tickets: once a ticket reads
  // ready, its batch is visible in stats().
  {
    std::lock_guard<std::mutex> lock(mu_);
    DeviceServeStats& ds = stats_.devices[device_index];
    ds.requests += batch.size();
    ds.batches += 1;
    ds.modelled_ms += plan->modelled_ms;
    (hit ? ds.plan_cache_hits : ds.plan_cache_misses) += 1;
    stats_.completed += batch.size();
    stats_.batches += 1;
    if (batch.size() > 1) stats_.coalesced_requests += batch.size();
    (hit ? stats_.plan_cache_hits : stats_.plan_cache_misses) += 1;
    stats_.modelled_ms += plan->modelled_ms;
  }

  index_t col0 = 0;
  for (const auto& r : batch) {
    const index_t n_r = r->b.cols();
    RequestResult res;
    res.c = DenseMatrix(a.rows, n_r);
    for (index_t i = 0; i < a.rows; ++i) {
      for (index_t j = 0; j < n_r; ++j) {
        res.c.at(i, j) = c_all.at(i, col0 + j);
      }
    }
    col0 += n_r;
    res.algo = plan->algo;
    res.device = dev.name;
    res.modelled_ms = plan->modelled_ms * n_r / total_n;
    res.plan_cache_hit = hit;
    res.batch_size = static_cast<int>(batch.size());
    r->fulfill(std::move(res));
  }
}

}  // namespace gespmm::serve
