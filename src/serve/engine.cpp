#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/spmm_host.hpp"

namespace gespmm::serve {

namespace detail {

void RequestState::fulfill(RequestResult r) {
  {
    std::lock_guard<std::mutex> lock(mu);
    result = std::move(r);
    done = true;
  }
  cv.notify_all();
}

const RequestResult& RequestState::wait() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return result;
}

}  // namespace detail

bool Ticket::ready() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

ServeOptions::ServeOptions()
    : devices{gpusim::gtx1080ti(), gpusim::rtx2080()},
      tenants{{"default", TenantConfig{}}} {}

namespace {

/// Validate the tenant roster and derive the scheduler's share vector
/// (sorted-name order == tenant index order) before any member that
/// depends on it is constructed.
ServeOptions prepare_options(ServeOptions opt) {
  if (opt.tenants.empty()) {
    throw std::invalid_argument("Engine: at least one tenant required");
  }
  opt.scheduler.tenant_shares.clear();
  opt.scheduler.tenant_shares.reserve(opt.tenants.size());
  for (const auto& [name, cfg] : opt.tenants) {
    if (!(cfg.share > 0.0) || !std::isfinite(cfg.share)) {
      throw std::invalid_argument("Engine: tenant \"" + name +
                                  "\" share must be positive and finite");
    }
    opt.scheduler.tenant_shares.push_back(cfg.share);
  }
  return opt;
}

}  // namespace

Engine::Engine(ServeOptions opt)
    : opt_(prepare_options(std::move(opt))),
      plan_cache_(opt_.plan),
      scheduler_(opt_.scheduler, opt_.batch),
      admission_(opt_.admission) {
  if (opt_.devices.empty()) {
    throw std::invalid_argument("Engine: at least one device required");
  }
  if (opt_.num_workers < 1) {
    throw std::invalid_argument("Engine: at least one worker required");
  }
  tenant_names_.reserve(opt_.tenants.size());
  tenant_cfgs_.reserve(opt_.tenants.size());
  stats_.tenants.reserve(opt_.tenants.size());
  for (const auto& [name, cfg] : opt_.tenants) {
    tenant_names_.push_back(name);
    tenant_cfgs_.push_back(cfg);
    TenantServeStats ts;
    ts.tenant = name;
    ts.share = cfg.share;
    stats_.tenants.push_back(std::move(ts));
  }
  stats_.devices.reserve(opt_.devices.size());
  for (const auto& dev : opt_.devices) {
    DeviceServeStats ds;
    ds.device = dev.name;
    stats_.devices.push_back(std::move(ds));
  }
  if (!opt_.start_paused) start();
}

Engine::~Engine() { shutdown(); }

std::uint32_t Engine::tenant_index(const std::string& name) const {
  const auto it = std::lower_bound(tenant_names_.begin(), tenant_names_.end(), name);
  if (it == tenant_names_.end() || *it != name) {
    throw std::invalid_argument("Engine: unknown tenant \"" + name +
                                "\" (not in ServeOptions::tenants)");
  }
  return static_cast<std::uint32_t>(it - tenant_names_.begin());
}

GraphId Engine::register_graph(const Csr& a) {
  a.validate();
  const GraphFingerprint fp = fingerprint(a);
  const std::uint64_t key = fp.key();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (graphs_.contains(key)) {
      ++stats_.register_dedup_hits;
      return GraphId{key};
    }
  }

  // Shard planning happens outside the lock: it is an O(nnz) pass per
  // shard and only runs once per distinct oversized operand.
  std::size_t capacity = opt_.sharding.device_capacity_bytes;
  if (capacity == 0) {
    capacity = opt_.devices.front().dram_bytes;
    for (const auto& dev : opt_.devices) {
      capacity = std::min(capacity, dev.dram_bytes);
    }
  }
  std::shared_ptr<const ShardPlan> shards;
  const std::size_t bytes = csr_bytes(a);
  if (bytes > capacity) {
    if (opt_.devices.size() < 2) {
      throw std::runtime_error(
          "Engine::register_graph: operand (" + std::to_string(bytes) +
          " bytes) exceeds the device capacity (" + std::to_string(capacity) +
          " bytes) and there is no device group to shard across");
    }
    auto plan = std::make_shared<ShardPlan>(
        plan_shards(a, static_cast<int>(opt_.devices.size())));
    if (plan->max_shard_bytes() > capacity) {
      throw std::runtime_error(
          "Engine::register_graph: operand does not fit even sharded " +
          std::to_string(opt_.devices.size()) + " ways (largest shard " +
          std::to_string(plan->max_shard_bytes()) + " bytes, capacity " +
          std::to_string(capacity) + " bytes)");
    }
    shards = std::move(plan);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (graphs_.contains(key)) {
    ++stats_.register_dedup_hits;
  } else {
    graphs_.emplace(key, RegisteredGraph{std::make_shared<const Csr>(a),
                                         shards, nullptr, fp, key});
    ++stats_.graphs_registered;
    if (shards) ++stats_.graphs_sharded;
  }
  return GraphId{key};
}

std::shared_ptr<const Csr> Engine::effective_graph(const RegisteredGraph& g) {
  if (g.overlay == nullptr) return g.csr;
  return std::make_shared<const Csr>(g.overlay->materialize(*g.csr));
}

std::shared_ptr<const Csr> Engine::graph(GraphId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(id.key);
  if (it == graphs_.end()) {
    throw std::invalid_argument("Engine::graph: unknown graph handle");
  }
  return effective_graph(it->second);
}

GraphFingerprint Engine::graph_fingerprint(GraphId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(id.key);
  if (it == graphs_.end()) {
    throw std::invalid_argument(
        "Engine::graph_fingerprint: unknown graph handle");
  }
  return it->second.fp;
}

std::shared_ptr<const ShardPlan> Engine::shard_plan(GraphId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(id.key);
  if (it == graphs_.end()) {
    throw std::invalid_argument("Engine::shard_plan: unknown graph handle");
  }
  return it->second.shards;
}

ModelId Engine::register_model(GraphId graph, ModelSpec spec) {
  std::shared_ptr<const Csr> g;
  std::uint64_t graph_key = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(graph.key);
    if (it == graphs_.end()) {
      throw std::invalid_argument("Engine::register_model: unknown graph handle");
    }
    if (it->second.shards != nullptr) {
      throw std::invalid_argument(
          "Engine::register_model: graph is sharded across devices; model "
          "serving needs the whole operand resident on one device");
    }
    // Models bind to the graph's *current* state: the effective CSR and
    // the version-bearing key, so an update (which rebinds by matching
    // this key) can find and recompile them.
    g = effective_graph(it->second);
    graph_key = it->second.current_key;
  }
  // Compile (and content-hash the parameters) outside the lock. The
  // snapshot shared_ptr keeps the operand alive and consistent even if an
  // apply_update replaces the registry's CSR meanwhile; the dedup check
  // below then simply re-runs against whatever is registered.
  ModelPlan plan = compile_model(graph_key, *g, spec);
  const std::uint64_t key = plan.key;
  auto model = std::make_shared<const RegisteredModel>(
      RegisteredModel{std::move(plan), std::move(spec), std::move(g)});
  std::lock_guard<std::mutex> lock(mu_);
  // Content dedup scans values rather than map keys: after an update
  // rebinds a model, its registry key (the stable ModelId) no longer
  // equals its recompiled plan.key.
  for (const auto& [mid, m] : models_) {
    if (m->plan.key == key) {
      ++stats_.model_register_dedup_hits;
      return ModelId{mid};
    }
  }
  models_.emplace(key, std::move(model));
  ++stats_.models_registered;
  return ModelId{key};
}

std::shared_ptr<const RegisteredModel> Engine::model(ModelId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(id.key);
  if (it == models_.end()) {
    throw std::invalid_argument("Engine::model: unknown model handle");
  }
  return it->second;
}

Ticket Engine::submit(GraphId id, DenseMatrix b, const SubmitOptions& options) {
  auto state = std::make_shared<detail::RequestState>();
  state->reduce = options.reduce;
  state->priority = options.priority;
  state->tenant = tenant_index(options.tenant);
  state->tenant_name = options.tenant;
  state->deadline_ms = options.deadline_ms;
  bool shed = false;
  ShedReason reason = ShedReason::None;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      throw std::runtime_error("Engine::submit: engine is shut down");
    }
    auto it = graphs_.find(id.key);
    if (it == graphs_.end()) {
      throw std::invalid_argument("Engine::submit: unknown graph handle");
    }
    // Snapshot the graph's current state and identity: the version-
    // bearing key means requests straddling an apply_update land in
    // different scheduler queues (never one batch), and the captured
    // base/overlay/shards stay valid however the registry moves on.
    state->graph_key = it->second.current_key;
    state->graph = it->second.csr;
    state->overlay = it->second.overlay;
    state->shards = it->second.shards;
    if (b.rows() != state->graph->cols) {
      throw std::invalid_argument("Engine::submit: B must have A.cols rows");
    }
    if (b.cols() <= 0) {
      throw std::invalid_argument("Engine::submit: B must have at least one column");
    }
    if (b.layout() != kernels::Layout::RowMajor) {
      throw std::invalid_argument("Engine::submit: B must be row-major");
    }
    state->b = std::move(b);
    state->sched_width = state->b.cols();
    const AdmissionDecision d = admission_.admit(
        options.priority, scheduler_.pending(), tenant_cfgs_[state->tenant],
        options.deadline_ms, virtual_now_ms_);
    if (!d.admitted) {
      shed = true;
      reason = d.reason;
      ++stats_.shed;
      ++stats_.tenants[state->tenant].shed;
    } else {
      state->seq = next_seq_++;
      scheduler_.enqueue({state->seq, state->graph_key, state->b.cols(),
                          options.reduce, options.priority, /*model=*/false,
                          state->tenant});
      pending_states_.emplace(state->seq, state);
      ++stats_.submitted;
      ++stats_.tenants[state->tenant].submitted;
    }
  }
  if (shed) {
    // The ticket contract for shed requests: complete immediately with a
    // typed status; wait() returns rather than throwing. Drop the feature
    // matrix now — shedding must bound memory even while callers hold the
    // ticket.
    state->b = DenseMatrix();
    state->graph.reset();
    state->overlay.reset();
    state->shards.reset();
    RequestResult res;
    res.status = RequestStatus::Shed;
    res.shed_reason = reason;
    res.priority = options.priority;
    res.tenant = options.tenant;
    res.deadline_ms = options.deadline_ms;
    res.deadline_met = reason != ShedReason::DeadlineExceeded;
    res.batch_size = 0;
    state->fulfill(std::move(res));
    return Ticket(state);
  }
  cv_.notify_one();
  return Ticket(state);
}

Ticket Engine::submit_model(ModelId id, DenseMatrix features,
                            const SubmitOptions& options) {
  auto state = std::make_shared<detail::RequestState>();
  state->priority = options.priority;
  state->tenant = tenant_index(options.tenant);
  state->tenant_name = options.tenant;
  state->deadline_ms = options.deadline_ms;
  bool shed = false;
  ShedReason reason = ShedReason::None;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      throw std::runtime_error("Engine::submit_model: engine is shut down");
    }
    auto it = models_.find(id.key);
    if (it == models_.end()) {
      throw std::invalid_argument("Engine::submit_model: unknown model handle");
    }
    const std::shared_ptr<const RegisteredModel>& m = it->second;
    if (features.rows() != m->plan.num_nodes) {
      throw std::invalid_argument(
          "Engine::submit_model: features must have one row per graph node");
    }
    if (features.cols() != m->plan.in_feats) {
      throw std::invalid_argument(
          "Engine::submit_model: feature width must match the model's input "
          "width");
    }
    if (features.layout() != kernels::Layout::RowMajor) {
      throw std::invalid_argument(
          "Engine::submit_model: features must be row-major");
    }
    state->model = m;
    state->graph = m->graph;
    state->graph_key = m->plan.graph_key;
    state->reduce = m->spec.reduce;
    state->b = std::move(features);
    state->sched_width = m->plan.total_spmm_width;
    const AdmissionDecision d = admission_.admit(
        options.priority, scheduler_.pending(), tenant_cfgs_[state->tenant],
        options.deadline_ms, virtual_now_ms_);
    if (!d.admitted) {
      shed = true;
      reason = d.reason;
      ++stats_.shed;
      ++stats_.tenants[state->tenant].shed;
    } else {
      state->seq = next_seq_++;
      // One ticket covers the whole forward pass; the model's summed
      // per-layer SpMM width is what the pass costs the queue's DRR
      // budget, so model and plain traffic compete on equal (width) terms.
      scheduler_.enqueue({state->seq, state->graph_key,
                          state->model->plan.total_spmm_width, state->reduce,
                          options.priority, /*model=*/true, state->tenant});
      pending_states_.emplace(state->seq, state);
      ++stats_.submitted;
      ++stats_.tenants[state->tenant].submitted;
      ++stats_.model_requests;
    }
  }
  if (shed) {
    // Same ticket contract as submit: complete immediately, drop the
    // payload so shedding bounds memory.
    state->b = DenseMatrix();
    state->graph.reset();
    state->model.reset();
    RequestResult res;
    res.status = RequestStatus::Shed;
    res.shed_reason = reason;
    res.priority = options.priority;
    res.tenant = options.tenant;
    res.deadline_ms = options.deadline_ms;
    res.deadline_met = reason != ShedReason::DeadlineExceeded;
    res.batch_size = 0;
    state->fulfill(std::move(res));
    return Ticket(state);
  }
  cv_.notify_one();
  return Ticket(state);
}

UpdateReport Engine::apply_update(GraphId id, const EdgeBatch& batch) {
  // The whole update runs under mu_: it serializes with submissions, so a
  // request sees either the old state or the new one, never a mix. The
  // O(touched)/O(nnz) work this holds the lock for is the price of that
  // atomicity; updates are expected to be far rarer than submits.
  std::lock_guard<std::mutex> lock(mu_);
  if (shutting_down_) {
    throw std::runtime_error("Engine::apply_update: engine is shut down");
  }
  auto it = graphs_.find(id.key);
  if (it == graphs_.end()) {
    throw std::invalid_argument("Engine::apply_update: unknown graph handle");
  }
  RegisteredGraph& g = it->second;
  const std::uint64_t old_key = g.current_key;

  // Fold the batch (throws on a contract violation before any state
  // mutates — strong guarantee).
  std::shared_ptr<const DeltaOverlay> overlay =
      DeltaOverlay::apply(*g.csr, g.overlay.get(), batch);

  UpdateReport rep;
  GraphFingerprint fp = g.fp;
  fp.version += 1;
  rep.version = fp.version;

  const bool compact =
      static_cast<double>(overlay->overlay_nnz()) >
      opt_.delta.compact_nnz_fraction * static_cast<double>(g.csr->nnz());

  std::size_t capacity = opt_.sharding.device_capacity_bytes;
  if (capacity == 0) {
    capacity = opt_.devices.front().dram_bytes;
    for (const auto& dev : opt_.devices) {
      capacity = std::min(capacity, dev.dram_bytes);
    }
  }

  // Compute the graph's next state fully before committing anything, so a
  // capacity failure below leaves the registry untouched.
  std::shared_ptr<const Csr> new_csr = g.csr;
  std::shared_ptr<const DeltaOverlay> new_overlay = overlay;
  std::shared_ptr<const ShardPlan> new_shards = g.shards;
  std::vector<std::uint64_t> stale_keys;  // plan-cache keys to invalidate

  if (compact) {
    // Fold the overlay into a fresh CSR; the structural fingerprint
    // fields refresh here (the O(nnz) pass is being paid anyway) while
    // the bumped version carries forward, keeping the compacted identity
    // distinct from any static registration of the same content.
    auto compacted = std::make_shared<const Csr>(overlay->materialize(*g.csr));
    const GraphFingerprint structural = fingerprint(*compacted);
    fp = structural;
    fp.version = rep.version;
    new_csr = std::move(compacted);
    new_overlay = nullptr;
    rep.compacted = true;
  }

  if (g.shards != nullptr) {
    // Sharded path: the row partition stays fixed between compactions and
    // only the touched slices rebuild (their content-addressed keys roll
    // forward by themselves); a compaction re-balances the partition from
    // scratch, like registration would.
    auto plan = std::make_shared<ShardPlan>();
    if (compact) {
      *plan = plan_shards(*new_csr, static_cast<int>(opt_.devices.size()));
      if (plan->max_shard_bytes() > capacity) {
        throw std::runtime_error(
            "Engine::apply_update: compacted operand does not fit even "
            "sharded " + std::to_string(opt_.devices.size()) + " ways");
      }
      for (const auto& s : g.shards->shards) stale_keys.push_back(s.key);
      rep.shards_replanned = plan->num_shards();
    } else {
      *plan = *g.shards;
      for (GraphShard& s : plan->shards) {
        if (!overlay->touches(s.row_begin, s.row_end)) continue;
        stale_keys.push_back(s.key);
        Csr slice = overlay->materialize_rows(*g.csr, s.row_begin, s.row_end);
        s = make_shard_from_slice(std::move(slice), s.index, s.row_begin,
                                  s.row_end);
        ++rep.shards_replanned;
      }
      if (plan->max_shard_bytes() > capacity) {
        throw std::runtime_error(
            "Engine::apply_update: a grown shard no longer fits its "
            "device; lower DeltaOptions::compact_nnz_fraction");
      }
    }
    plan->graph_key = fp.key();
    new_shards = std::move(plan);
  } else {
    if (csr_bytes(*new_csr) > capacity && compact) {
      throw std::runtime_error(
          "Engine::apply_update: compacted operand exceeds the device "
          "capacity (updates cannot re-shard an unsharded graph)");
    }
    // Unsharded plans key on the graph's current fingerprint key, so the
    // version bump already reroutes new batches; erase the now-stale old
    // generation eagerly instead of waiting for LRU pressure.
    stale_keys.push_back(old_key);
  }

  // Commit.
  g.csr = std::move(new_csr);
  g.overlay = std::move(new_overlay);
  g.shards = std::move(new_shards);
  g.fp = fp;
  g.current_key = fp.key();
  rep.overlay_nnz = g.overlay == nullptr ? 0 : g.overlay->overlay_nnz();

  for (const std::uint64_t k : stale_keys) {
    rep.plans_invalidated += plan_cache_.invalidate(k);
  }

  // Rebind models compiled against the pre-update state: recompile over
  // the new effective CSR under the same registry key, so ModelId handles
  // stay stable. In-flight model tickets hold their own RegisteredModel
  // (and with it the old CSR snapshot) and finish against it.
  const std::shared_ptr<const Csr> effective = effective_graph(g);
  for (auto& kv : models_) {
    std::shared_ptr<const RegisteredModel>& m = kv.second;
    if (m->plan.graph_key != old_key) continue;
    ModelPlan plan = compile_model(g.current_key, *effective, m->spec);
    m = std::make_shared<const RegisteredModel>(
        RegisteredModel{std::move(plan), m->spec, effective});
  }

  ++stats_.graph_updates;
  if (rep.compacted) ++stats_.graph_compactions;
  stats_.shards_replanned += static_cast<std::uint64_t>(rep.shards_replanned);
  return rep;
}

void Engine::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(opt_.num_workers));
  for (int i = 0; i < opt_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Engine::shutdown() {
  start();  // a paused engine still owes its queue a drain
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (auto& w : workers) w.join();
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats st = stats_;
  st.admission = admission_.stats();
  st.graphs = scheduler_.stats();
  const PlanCacheStats ps = plan_cache_.stats();
  st.plan_predicted_builds = ps.predicted_builds;
  st.plan_exact_builds = ps.exact_builds;
  st.plan_retunes = ps.retunes;
  st.plan_mispredicts = ps.mispredicts;
  st.plan_hybrid_builds = ps.hybrid_builds;
  st.plan_invalidations = ps.invalidations;
  return st;
}

double Engine::virtual_now_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_ms_;
}

void Engine::worker_loop() {
  for (;;) {
    std::vector<std::shared_ptr<detail::RequestState>> batch;
    std::size_t device_index = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !scheduler_.empty() || shutting_down_; });
      if (scheduler_.empty()) return;  // shutting down and fully drained

      const std::vector<std::uint64_t> seqs = scheduler_.next_batch();
      batch.reserve(seqs.size());
      for (const std::uint64_t seq : seqs) {
        auto it = pending_states_.find(seq);
        batch.push_back(std::move(it->second));
        pending_states_.erase(it);
      }
      device_index = next_device_++ % opt_.devices.size();
    }
    if (batch.front()->model != nullptr) {
      // The scheduler ships model requests as singleton batches.
      execute_model(std::move(batch.front()), device_index);
    } else if (batch.front()->shards != nullptr) {
      // A sharded graph spans the whole device group; the round-robin
      // device pick does not apply.
      execute_sharded_batch(std::move(batch));
    } else {
      execute_batch(std::move(batch), device_index);
    }
  }
}

namespace {

/// Column-wise coalesce of a batch's feature matrices:
/// B_all = [B_1 | B_2 | ...]. Returns a pointer into `storage` (or the
/// single request's own matrix): column independence of SpMM makes the
/// split outputs bitwise identical to per-request execution.
const DenseMatrix* coalesce_features(
    const std::vector<std::shared_ptr<detail::RequestState>>& batch,
    index_t b_rows, index_t total_n, DenseMatrix* storage) {
  if (batch.size() == 1) return &batch.front()->b;
  *storage = DenseMatrix(b_rows, total_n);
  index_t col0 = 0;
  for (const auto& r : batch) {
    const index_t n_r = r->b.cols();
    for (index_t i = 0; i < b_rows; ++i) {
      for (index_t j = 0; j < n_r; ++j) {
        storage->at(i, col0 + j) = r->b.at(i, j);
      }
    }
    col0 += n_r;
  }
  return storage;
}

}  // namespace

void Engine::execute_batch(std::vector<std::shared_ptr<detail::RequestState>> batch,
                           std::size_t device_index) {
  const gpusim::DeviceSpec& dev = opt_.devices[device_index];
  const Csr& a = *batch.front()->graph;
  const ReduceKind reduce = batch.front()->reduce;

  index_t total_n = 0;
  for (const auto& r : batch) total_n += r->b.cols();
  DenseMatrix coalesced;
  const DenseMatrix* b_all = coalesce_features(batch, a.cols, total_n, &coalesced);

  // The lease pins the plan for the duration of the batch: an in-flight
  // plan is never evicted, so concurrent same-shape batches hit.
  const PlanKey key{batch.front()->graph_key, dev.name, total_n, reduce};
  PlanLease lease = plan_cache_.acquire(key, a, dev);
  const bool hit = lease.hit();
  const auto plan = lease.plan();
  // A cold miss pays for the selection itself: the sweep's profiling runs
  // beyond the winner (0 under the default Predict mode). Hits ride the
  // already-paid selection.
  const double build_ms = hit ? 0.0 : plan->build_ms;

  DenseMatrix c_all(a.rows, total_n);
  kernels::spmm_host_parallel(a, *b_all, c_all, reduce);

  // Dynamic overlay: touched rows' outputs are recomputed from their
  // post-update (canonical) form and overwrite the base kernel's rows.
  // Overlay rows are complete replacements, so this is bitwise identical
  // to running the materialized CSR — the patch rows run the same
  // per-row accumulation order compaction would store. The plan (and its
  // modelled time) stays priced on the base: the overlay is bounded by
  // the compaction fraction, so the base shape dominates.
  if (const DeltaOverlay* ov = batch.front()->overlay.get()) {
    const Csr& patch = ov->patch();
    DenseMatrix c_patch(patch.rows, total_n);
    kernels::spmm_host_parallel(patch, *b_all, c_patch, reduce);
    const std::vector<index_t>& prows = ov->rows();
    for (index_t i = 0; i < patch.rows; ++i) {
      for (index_t j = 0; j < total_n; ++j) {
        c_all.at(prows[static_cast<std::size_t>(i)], j) = c_patch.at(i, j);
      }
    }
  }

  // Account the batch before fulfilling tickets: once a ticket reads
  // ready, its batch is visible in stats(). completed_at is the device's
  // cumulative modelled time including this batch — the virtual clock
  // latency percentiles are computed over.
  double completed_at = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DeviceServeStats& ds = stats_.devices[device_index];
    ds.requests += batch.size();
    ds.batches += 1;
    ds.modelled_ms += plan->modelled_ms + build_ms;
    completed_at = ds.modelled_ms;
    virtual_now_ms_ = std::max(virtual_now_ms_, completed_at);
    (hit ? ds.plan_cache_hits : ds.plan_cache_misses) += 1;
    stats_.completed += batch.size();
    stats_.batches += 1;
    if (batch.size() > 1) stats_.coalesced_requests += batch.size();
    (hit ? stats_.plan_cache_hits : stats_.plan_cache_misses) += 1;
    stats_.modelled_ms += plan->modelled_ms + build_ms;
    stats_.plan_build_ms += build_ms;
    for (const auto& r : batch) {
      TenantServeStats& ts = stats_.tenants[r->tenant];
      ++ts.completed;
      ts.served_width += static_cast<std::uint64_t>(r->sched_width);
      if (r->deadline_ms > 0.0 && completed_at > r->deadline_ms) {
        ++stats_.deadline_missed;
      }
    }
  }

  // Drop the pin before any waiter can wake: once a ticket's wait()
  // returns, this batch holds no plan-cache pins, so a caller that
  // quiesces the engine and then calls apply_update gets deterministic
  // targeted invalidation (a pinned entry would survive it). The sharded
  // and model paths already scope their leases per shard / per layer.
  lease.release();

  index_t col0 = 0;
  for (const auto& r : batch) {
    const index_t n_r = r->b.cols();
    RequestResult res;
    res.c = DenseMatrix(a.rows, n_r);
    for (index_t i = 0; i < a.rows; ++i) {
      for (index_t j = 0; j < n_r; ++j) {
        res.c.at(i, j) = c_all.at(i, col0 + j);
      }
    }
    col0 += n_r;
    res.status = RequestStatus::Ok;
    res.priority = r->priority;
    res.tenant = r->tenant_name;
    res.algo = plan->algo;
    res.plan_steps = plan->steps;
    res.device = dev.name;
    res.modelled_ms = plan->modelled_ms * n_r / total_n;
    res.completed_at_ms = completed_at;
    res.deadline_ms = r->deadline_ms;
    res.deadline_met = r->deadline_ms <= 0.0 || completed_at <= r->deadline_ms;
    res.plan_cache_hit = hit;
    res.batch_size = static_cast<int>(batch.size());
    r->fulfill(std::move(res));
  }
}

void Engine::execute_sharded_batch(
    std::vector<std::shared_ptr<detail::RequestState>> batch) {
  const ShardPlan& plan = *batch.front()->shards;
  const Csr& a = *batch.front()->graph;
  const ReduceKind reduce = batch.front()->reduce;
  const int num_shards = plan.num_shards();

  index_t total_n = 0;
  for (const auto& r : batch) total_n += r->b.cols();
  DenseMatrix coalesced;
  const DenseMatrix* b_all = coalesce_features(batch, a.cols, total_n, &coalesced);

  // Scatter: shard i executes on devices[i] — all shards in parallel, each
  // against its own shard-qualified plan. Before a shard's kernel can run
  // it must gather the B rows it references but does not own (its halo
  // columns) from peer devices; that transfer is priced against the
  // modelled interconnect and charged to the shard's device clock, so
  // scaling honestly pays for the scatter/gather structure.
  DenseMatrix c_all(a.rows, total_n);
  std::vector<double> shard_ms(static_cast<std::size_t>(num_shards), 0.0);
  std::vector<double> shard_build_ms(static_cast<std::size_t>(num_shards), 0.0);
  std::vector<bool> shard_hit(static_cast<std::size_t>(num_shards), false);
  double gather_total_ms = 0.0;
  SpmmAlgo algo0 = SpmmAlgo::GeSpMM;
  std::vector<PlanStep> steps0;
  bool all_hit = true;
  for (int si = 0; si < num_shards; ++si) {
    const GraphShard& shard = plan.shards[static_cast<std::size_t>(si)];
    const gpusim::DeviceSpec& dev = opt_.devices[static_cast<std::size_t>(si)];
    const PlanKey key{shard.key, dev.name, total_n, reduce, si};
    const PlanLease lease = plan_cache_.acquire(key, shard.csr, dev);
    shard_hit[static_cast<std::size_t>(si)] = lease.hit();
    all_hit = all_hit && lease.hit();
    if (si == 0) {
      algo0 = lease->algo;
      steps0 = lease->steps;
    }

    // Merge: the shard's rows land directly in their slice of the full
    // output. Row-parallel SpMM makes this bitwise identical to the
    // unsharded kernel — same per-row accumulation order, different host.
    DenseMatrix c_shard(shard.rows(), total_n);
    kernels::spmm_host_parallel(shard.csr, *b_all, c_shard, reduce);
    for (index_t i = 0; i < shard.rows(); ++i) {
      for (index_t j = 0; j < total_n; ++j) {
        c_all.at(shard.row_begin + i, j) = c_shard.at(i, j);
      }
    }

    const double halo_bytes = static_cast<double>(shard.halo_cols) *
                              static_cast<double>(total_n) * sizeof(value_t);
    const double gather_ms =
        halo_bytes / (opt_.sharding.interconnect_gbps * 1e6);
    gather_total_ms += gather_ms;
    shard_ms[static_cast<std::size_t>(si)] = lease->modelled_ms + gather_ms;
    // Cold shard plans charge their selection cost (the sweep's extra
    // profiling runs) to the shard's device; kept out of shard_ms so the
    // makespan below stays an execution metric.
    if (!lease.hit()) shard_build_ms[static_cast<std::size_t>(si)] = lease->build_ms;
  }

  // Account before fulfilling, like execute_batch. Each shard's device
  // clock advances by its own shard time; the batch completes when the
  // slowest participating device does (the makespan the scaling bench
  // measures).
  double completed_at = 0.0;
  double makespan_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int si = 0; si < num_shards; ++si) {
      DeviceServeStats& ds = stats_.devices[static_cast<std::size_t>(si)];
      ds.requests += batch.size();
      ds.batches += 1;
      ds.modelled_ms += shard_ms[static_cast<std::size_t>(si)] +
                        shard_build_ms[static_cast<std::size_t>(si)];
      completed_at = std::max(completed_at, ds.modelled_ms);
      makespan_ms =
          std::max(makespan_ms, shard_ms[static_cast<std::size_t>(si)]);
      (shard_hit[static_cast<std::size_t>(si)] ? ds.plan_cache_hits
                                               : ds.plan_cache_misses) += 1;
      (shard_hit[static_cast<std::size_t>(si)] ? stats_.plan_cache_hits
                                               : stats_.plan_cache_misses) += 1;
      stats_.modelled_ms += shard_ms[static_cast<std::size_t>(si)] +
                            shard_build_ms[static_cast<std::size_t>(si)];
      stats_.plan_build_ms += shard_build_ms[static_cast<std::size_t>(si)];
    }
    virtual_now_ms_ = std::max(virtual_now_ms_, completed_at);
    stats_.completed += batch.size();
    stats_.batches += 1;
    stats_.shard_launches += static_cast<std::uint64_t>(num_shards);
    stats_.gather_ms += gather_total_ms;
    if (batch.size() > 1) stats_.coalesced_requests += batch.size();
    for (const auto& r : batch) {
      TenantServeStats& ts = stats_.tenants[r->tenant];
      ++ts.completed;
      ts.served_width += static_cast<std::uint64_t>(r->sched_width);
      if (r->deadline_ms > 0.0 && completed_at > r->deadline_ms) {
        ++stats_.deadline_missed;
      }
    }
  }

  index_t col0 = 0;
  for (const auto& r : batch) {
    const index_t n_r = r->b.cols();
    RequestResult res;
    res.c = DenseMatrix(a.rows, n_r);
    for (index_t i = 0; i < a.rows; ++i) {
      for (index_t j = 0; j < n_r; ++j) {
        res.c.at(i, j) = c_all.at(i, col0 + j);
      }
    }
    col0 += n_r;
    res.status = RequestStatus::Ok;
    res.priority = r->priority;
    res.tenant = r->tenant_name;
    res.algo = algo0;
    res.plan_steps = steps0;
    res.device = opt_.devices.front().name;
    res.modelled_ms = makespan_ms * n_r / total_n;
    res.completed_at_ms = completed_at;
    res.deadline_ms = r->deadline_ms;
    res.deadline_met = r->deadline_ms <= 0.0 || completed_at <= r->deadline_ms;
    res.plan_cache_hit = all_hit;
    res.batch_size = static_cast<int>(batch.size());
    res.shards = num_shards;
    r->fulfill(std::move(res));
  }
}

void Engine::execute_model(std::shared_ptr<detail::RequestState> state,
                           std::size_t device_index) {
  const gpusim::DeviceSpec& dev = opt_.devices[device_index];
  const RegisteredModel& m = *state->model;
  const Csr& a = *state->graph;
  const gnn::DeviceCost cost(dev);

  // One arena per pass: hidden layers share widths, so after the first
  // layer every intermediate comes out of the pool instead of a fresh
  // allocation (ModelPlan::max_width bounds each slot).
  ModelArena arena;
  DenseMatrix h = std::move(state->b);
  double fused_ms = 0.0;
  double composed_ms = 0.0;
  std::uint64_t layer_hits = 0;
  std::uint64_t layer_misses = 0;
  double build_total_ms = 0.0;
  SpmmAlgo algo = SpmmAlgo::GeSpMM;
  std::vector<PlanStep> last_steps;
  for (std::size_t l = 0; l < m.plan.layers.size(); ++l) {
    const LayerStep& s = m.plan.layers[l];
    // Per-layer plan reuse: the aggregation keys into the same PlanCache
    // as plain SpMM traffic, so layers of one model, repeated passes and
    // standalone requests at the same (graph, width, reduce) all share
    // one autotuned plan. The lease pins it for the layer's duration.
    const PlanKey key{m.plan.graph_key, dev.name, s.spmm_width, s.reduce};
    const PlanLease lease = plan_cache_.acquire(key, a, dev);
    (lease.hit() ? layer_hits : layer_misses) += 1;
    if (!lease.hit()) build_total_ms += lease->build_ms;
    algo = lease->algo;
    last_steps = lease->steps;
    const LayerCost lc = price_layer(s, a.rows, lease->modelled_ms, cost);
    fused_ms += lc.fused_ms;
    composed_ms += lc.composed_ms;

    DenseMatrix out = arena.take(a.rows, s.out_width);
    run_layer(a, s, h, m.spec.weights[l], m.spec.bias[l], out, arena);
    arena.put(std::move(h));
    h = std::move(out);
  }

  // Account before fulfilling, like execute_batch: the device's clock
  // advances by the *fused* pass time — that is what serving pays.
  double completed_at = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DeviceServeStats& ds = stats_.devices[device_index];
    ds.requests += 1;
    ds.batches += 1;
    // Cold layer plans charge their selection cost on top of the fused
    // pass (0 under Predict); kept out of res.modelled_ms, which stays
    // the fused execution time.
    ds.modelled_ms += fused_ms + build_total_ms;
    completed_at = ds.modelled_ms;
    virtual_now_ms_ = std::max(virtual_now_ms_, completed_at);
    ds.plan_cache_hits += layer_hits;
    ds.plan_cache_misses += layer_misses;
    stats_.completed += 1;
    stats_.batches += 1;
    stats_.plan_cache_hits += layer_hits;
    stats_.plan_cache_misses += layer_misses;
    stats_.modelled_ms += fused_ms + build_total_ms;
    stats_.plan_build_ms += build_total_ms;
    stats_.fused_saved_ms += composed_ms - fused_ms;
    TenantServeStats& ts = stats_.tenants[state->tenant];
    ++ts.completed;
    ts.served_width += static_cast<std::uint64_t>(state->sched_width);
    if (state->deadline_ms > 0.0 && completed_at > state->deadline_ms) {
      ++stats_.deadline_missed;
    }
  }

  RequestResult res;
  res.status = RequestStatus::Ok;
  res.priority = state->priority;
  res.tenant = state->tenant_name;
  res.c = std::move(h);
  res.algo = algo;
  res.plan_steps = std::move(last_steps);
  res.device = dev.name;
  res.modelled_ms = fused_ms;
  res.composed_ms = composed_ms;
  res.completed_at_ms = completed_at;
  res.deadline_ms = state->deadline_ms;
  res.deadline_met =
      state->deadline_ms <= 0.0 || completed_at <= state->deadline_ms;
  res.plan_cache_hit = layer_misses == 0;
  res.batch_size = 1;
  res.model_layers = static_cast<int>(m.plan.layers.size());
  state->fulfill(std::move(res));
}

}  // namespace gespmm::serve
