#include "serve/engine.hpp"

#include <stdexcept>

#include "kernels/spmm_host.hpp"

namespace gespmm::serve {

namespace detail {

void RequestState::fulfill(RequestResult r) {
  {
    std::lock_guard<std::mutex> lock(mu);
    result = std::move(r);
    done = true;
  }
  cv.notify_all();
}

const RequestResult& RequestState::wait() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return result;
}

}  // namespace detail

bool Ticket::ready() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

ServeOptions::ServeOptions() : devices{gpusim::gtx1080ti(), gpusim::rtx2080()} {}

Engine::Engine(ServeOptions opt)
    : opt_(std::move(opt)),
      plan_cache_(opt_.plan),
      scheduler_(opt_.scheduler, opt_.batch),
      admission_(opt_.admission) {
  if (opt_.devices.empty()) {
    throw std::invalid_argument("Engine: at least one device required");
  }
  if (opt_.num_workers < 1) {
    throw std::invalid_argument("Engine: at least one worker required");
  }
  stats_.devices.reserve(opt_.devices.size());
  for (const auto& dev : opt_.devices) {
    DeviceServeStats ds;
    ds.device = dev.name;
    stats_.devices.push_back(std::move(ds));
  }
  if (!opt_.start_paused) start();
}

Engine::~Engine() { shutdown(); }

GraphId Engine::register_graph(const Csr& a) {
  a.validate();
  const GraphFingerprint fp = fingerprint(a);
  const std::uint64_t key = fp.key();
  std::lock_guard<std::mutex> lock(mu_);
  if (graphs_.contains(key)) {
    ++stats_.register_dedup_hits;
  } else {
    graphs_.emplace(key, std::make_shared<const Csr>(a));
    ++stats_.graphs_registered;
  }
  return GraphId{key};
}

std::shared_ptr<const Csr> Engine::graph(GraphId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(id.key);
  if (it == graphs_.end()) {
    throw std::invalid_argument("Engine::graph: unknown graph handle");
  }
  return it->second;
}

ModelId Engine::register_model(GraphId graph, ModelSpec spec) {
  std::shared_ptr<const Csr> g;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(graph.key);
    if (it == graphs_.end()) {
      throw std::invalid_argument("Engine::register_model: unknown graph handle");
    }
    g = it->second;
  }
  // Compile (and content-hash the parameters) outside the lock; graphs
  // are never unregistered, so the handle stays valid.
  ModelPlan plan = compile_model(graph.key, *g, spec);
  const std::uint64_t key = plan.key;
  auto model = std::make_shared<const RegisteredModel>(
      RegisteredModel{std::move(plan), std::move(spec), std::move(g)});
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.contains(key)) {
    ++stats_.model_register_dedup_hits;
  } else {
    models_.emplace(key, std::move(model));
    ++stats_.models_registered;
  }
  return ModelId{key};
}

std::shared_ptr<const RegisteredModel> Engine::model(ModelId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(id.key);
  if (it == models_.end()) {
    throw std::invalid_argument("Engine::model: unknown model handle");
  }
  return it->second;
}

Ticket Engine::submit(GraphId id, DenseMatrix b, ReduceKind reduce,
                      Priority priority) {
  auto state = std::make_shared<detail::RequestState>();
  state->graph_key = id.key;
  state->reduce = reduce;
  state->priority = priority;
  bool shed = false;
  ShedReason reason = ShedReason::None;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      throw std::runtime_error("Engine::submit: engine is shut down");
    }
    auto it = graphs_.find(id.key);
    if (it == graphs_.end()) {
      throw std::invalid_argument("Engine::submit: unknown graph handle");
    }
    state->graph = it->second;
    if (b.rows() != state->graph->cols) {
      throw std::invalid_argument("Engine::submit: B must have A.cols rows");
    }
    if (b.cols() <= 0) {
      throw std::invalid_argument("Engine::submit: B must have at least one column");
    }
    if (b.layout() != kernels::Layout::RowMajor) {
      throw std::invalid_argument("Engine::submit: B must be row-major");
    }
    state->b = std::move(b);
    const AdmissionDecision d = admission_.admit(priority, scheduler_.pending());
    if (!d.admitted) {
      shed = true;
      reason = d.reason;
      ++stats_.shed;
    } else {
      state->seq = next_seq_++;
      scheduler_.enqueue({state->seq, id.key, state->b.cols(), reduce, priority});
      pending_states_.emplace(state->seq, state);
      ++stats_.submitted;
    }
  }
  if (shed) {
    // The ticket contract for shed requests: complete immediately with a
    // typed status; wait() returns rather than throwing. Drop the feature
    // matrix now — shedding must bound memory even while callers hold the
    // ticket.
    state->b = DenseMatrix();
    state->graph.reset();
    RequestResult res;
    res.status = RequestStatus::Shed;
    res.shed_reason = reason;
    res.priority = priority;
    res.batch_size = 0;
    state->fulfill(std::move(res));
    return Ticket(state);
  }
  cv_.notify_one();
  return Ticket(state);
}

Ticket Engine::submit_model(ModelId id, DenseMatrix features,
                            Priority priority) {
  auto state = std::make_shared<detail::RequestState>();
  state->priority = priority;
  bool shed = false;
  ShedReason reason = ShedReason::None;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      throw std::runtime_error("Engine::submit_model: engine is shut down");
    }
    auto it = models_.find(id.key);
    if (it == models_.end()) {
      throw std::invalid_argument("Engine::submit_model: unknown model handle");
    }
    const std::shared_ptr<const RegisteredModel>& m = it->second;
    if (features.rows() != m->plan.num_nodes) {
      throw std::invalid_argument(
          "Engine::submit_model: features must have one row per graph node");
    }
    if (features.cols() != m->plan.in_feats) {
      throw std::invalid_argument(
          "Engine::submit_model: feature width must match the model's input "
          "width");
    }
    if (features.layout() != kernels::Layout::RowMajor) {
      throw std::invalid_argument(
          "Engine::submit_model: features must be row-major");
    }
    state->model = m;
    state->graph = m->graph;
    state->graph_key = m->plan.graph_key;
    state->reduce = m->spec.reduce;
    state->b = std::move(features);
    const AdmissionDecision d = admission_.admit(priority, scheduler_.pending());
    if (!d.admitted) {
      shed = true;
      reason = d.reason;
      ++stats_.shed;
    } else {
      state->seq = next_seq_++;
      // One ticket covers the whole forward pass; the model's summed
      // per-layer SpMM width is what the pass costs the graph's DRR
      // budget, so model and plain traffic compete on equal (width) terms.
      scheduler_.enqueue({state->seq, state->graph_key,
                          state->model->plan.total_spmm_width, state->reduce,
                          priority, /*model=*/true});
      pending_states_.emplace(state->seq, state);
      ++stats_.submitted;
      ++stats_.model_requests;
    }
  }
  if (shed) {
    // Same ticket contract as submit: complete immediately, drop the
    // payload so shedding bounds memory.
    state->b = DenseMatrix();
    state->graph.reset();
    state->model.reset();
    RequestResult res;
    res.status = RequestStatus::Shed;
    res.shed_reason = reason;
    res.priority = priority;
    res.batch_size = 0;
    state->fulfill(std::move(res));
    return Ticket(state);
  }
  cv_.notify_one();
  return Ticket(state);
}

void Engine::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(opt_.num_workers));
  for (int i = 0; i < opt_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Engine::shutdown() {
  start();  // a paused engine still owes its queue a drain
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (auto& w : workers) w.join();
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats st = stats_;
  st.admission = admission_.stats();
  st.graphs = scheduler_.stats();
  return st;
}

void Engine::worker_loop() {
  for (;;) {
    std::vector<std::shared_ptr<detail::RequestState>> batch;
    std::size_t device_index = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !scheduler_.empty() || shutting_down_; });
      if (scheduler_.empty()) return;  // shutting down and fully drained

      const std::vector<std::uint64_t> seqs = scheduler_.next_batch();
      batch.reserve(seqs.size());
      for (const std::uint64_t seq : seqs) {
        auto it = pending_states_.find(seq);
        batch.push_back(std::move(it->second));
        pending_states_.erase(it);
      }
      device_index = next_device_++ % opt_.devices.size();
    }
    if (batch.front()->model != nullptr) {
      // The scheduler ships model requests as singleton batches.
      execute_model(std::move(batch.front()), device_index);
    } else {
      execute_batch(std::move(batch), device_index);
    }
  }
}

void Engine::execute_batch(std::vector<std::shared_ptr<detail::RequestState>> batch,
                           std::size_t device_index) {
  const gpusim::DeviceSpec& dev = opt_.devices[device_index];
  const Csr& a = *batch.front()->graph;
  const ReduceKind reduce = batch.front()->reduce;

  index_t total_n = 0;
  for (const auto& r : batch) total_n += r->b.cols();

  // Coalesce the feature matrices column-wise: B_all = [B_1 | B_2 | ...].
  // Column independence of SpMM makes the split outputs bitwise identical
  // to per-request execution (row-parallel host kernel, column order kept).
  const DenseMatrix* b_all = &batch.front()->b;
  DenseMatrix coalesced;
  if (batch.size() > 1) {
    coalesced = DenseMatrix(a.cols, total_n);
    index_t col0 = 0;
    for (const auto& r : batch) {
      const index_t n_r = r->b.cols();
      for (index_t i = 0; i < a.cols; ++i) {
        for (index_t j = 0; j < n_r; ++j) {
          coalesced.at(i, col0 + j) = r->b.at(i, j);
        }
      }
      col0 += n_r;
    }
    b_all = &coalesced;
  }

  // The lease pins the plan for the duration of the batch: an in-flight
  // plan is never evicted, so concurrent same-shape batches hit.
  const PlanKey key{batch.front()->graph_key, dev.name, total_n, reduce};
  const PlanLease lease = plan_cache_.acquire(key, a, dev);
  const bool hit = lease.hit();
  const auto plan = lease.plan();

  DenseMatrix c_all(a.rows, total_n);
  kernels::spmm_host_parallel(a, *b_all, c_all, reduce);

  // Account the batch before fulfilling tickets: once a ticket reads
  // ready, its batch is visible in stats(). completed_at is the device's
  // cumulative modelled time including this batch — the virtual clock
  // latency percentiles are computed over.
  double completed_at = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DeviceServeStats& ds = stats_.devices[device_index];
    ds.requests += batch.size();
    ds.batches += 1;
    ds.modelled_ms += plan->modelled_ms;
    completed_at = ds.modelled_ms;
    (hit ? ds.plan_cache_hits : ds.plan_cache_misses) += 1;
    stats_.completed += batch.size();
    stats_.batches += 1;
    if (batch.size() > 1) stats_.coalesced_requests += batch.size();
    (hit ? stats_.plan_cache_hits : stats_.plan_cache_misses) += 1;
    stats_.modelled_ms += plan->modelled_ms;
  }

  index_t col0 = 0;
  for (const auto& r : batch) {
    const index_t n_r = r->b.cols();
    RequestResult res;
    res.c = DenseMatrix(a.rows, n_r);
    for (index_t i = 0; i < a.rows; ++i) {
      for (index_t j = 0; j < n_r; ++j) {
        res.c.at(i, j) = c_all.at(i, col0 + j);
      }
    }
    col0 += n_r;
    res.status = RequestStatus::Ok;
    res.priority = r->priority;
    res.algo = plan->algo;
    res.device = dev.name;
    res.modelled_ms = plan->modelled_ms * n_r / total_n;
    res.completed_at_ms = completed_at;
    res.plan_cache_hit = hit;
    res.batch_size = static_cast<int>(batch.size());
    r->fulfill(std::move(res));
  }
}

void Engine::execute_model(std::shared_ptr<detail::RequestState> state,
                           std::size_t device_index) {
  const gpusim::DeviceSpec& dev = opt_.devices[device_index];
  const RegisteredModel& m = *state->model;
  const Csr& a = *state->graph;
  const gnn::DeviceCost cost(dev);

  // One arena per pass: hidden layers share widths, so after the first
  // layer every intermediate comes out of the pool instead of a fresh
  // allocation (ModelPlan::max_width bounds each slot).
  ModelArena arena;
  DenseMatrix h = std::move(state->b);
  double fused_ms = 0.0;
  double composed_ms = 0.0;
  std::uint64_t layer_hits = 0;
  std::uint64_t layer_misses = 0;
  SpmmAlgo algo = SpmmAlgo::GeSpMM;
  for (std::size_t l = 0; l < m.plan.layers.size(); ++l) {
    const LayerStep& s = m.plan.layers[l];
    // Per-layer plan reuse: the aggregation keys into the same PlanCache
    // as plain SpMM traffic, so layers of one model, repeated passes and
    // standalone requests at the same (graph, width, reduce) all share
    // one autotuned plan. The lease pins it for the layer's duration.
    const PlanKey key{m.plan.graph_key, dev.name, s.spmm_width, s.reduce};
    const PlanLease lease = plan_cache_.acquire(key, a, dev);
    (lease.hit() ? layer_hits : layer_misses) += 1;
    algo = lease->algo;
    const LayerCost lc = price_layer(s, a.rows, lease->modelled_ms, cost);
    fused_ms += lc.fused_ms;
    composed_ms += lc.composed_ms;

    DenseMatrix out = arena.take(a.rows, s.out_width);
    run_layer(a, s, h, m.spec.weights[l], m.spec.bias[l], out, arena);
    arena.put(std::move(h));
    h = std::move(out);
  }

  // Account before fulfilling, like execute_batch: the device's clock
  // advances by the *fused* pass time — that is what serving pays.
  double completed_at = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DeviceServeStats& ds = stats_.devices[device_index];
    ds.requests += 1;
    ds.batches += 1;
    ds.modelled_ms += fused_ms;
    completed_at = ds.modelled_ms;
    ds.plan_cache_hits += layer_hits;
    ds.plan_cache_misses += layer_misses;
    stats_.completed += 1;
    stats_.batches += 1;
    stats_.plan_cache_hits += layer_hits;
    stats_.plan_cache_misses += layer_misses;
    stats_.modelled_ms += fused_ms;
    stats_.fused_saved_ms += composed_ms - fused_ms;
  }

  RequestResult res;
  res.status = RequestStatus::Ok;
  res.priority = state->priority;
  res.c = std::move(h);
  res.algo = algo;
  res.device = dev.name;
  res.modelled_ms = fused_ms;
  res.composed_ms = composed_ms;
  res.completed_at_ms = completed_at;
  res.plan_cache_hit = layer_misses == 0;
  res.batch_size = 1;
  res.model_layers = static_cast<int>(m.plan.layers.size());
  state->fulfill(std::move(res));
}

}  // namespace gespmm::serve
