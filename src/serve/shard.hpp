#pragma once
/// \file shard.hpp
/// Row partitioning of a registered CSR across a device group — the
/// cluster story for graphs too large for one simulated device.
///
/// A shard owns a contiguous row range of the operand: SpMM is
/// row-parallel, so each shard computes its own slice of C = A @ B
/// independently and bitwise identically to the unsharded kernel (the
/// same per-row accumulation order runs, just on a different device).
/// The planner balances shards by *nnz*, not by row count — SpMM cost is
/// proportional to edges, and a skewed graph split by rows alone would
/// leave one device with most of the work.
///
/// What sharding is NOT free of is the dense operand: a shard's rows
/// reference B rows owned by other shards under the matching row
/// partition of B. Those are the shard's *halo columns* — the distinct
/// colind values outside its own row range — and at execution time each
/// shard pays a modelled gather of `halo_cols * n * sizeof(value_t)`
/// bytes over the configured interconnect before its kernel can run.
/// The gather/merge stage is where near-linear scaling is won or lost:
/// compute splits S ways, halo traffic does not.
///
/// Planning is deterministic (pure function of the CSR and the shard
/// count) and happens once at `register_graph`; every shard carries its
/// own fingerprint so per-shard plans get distinct plan-cache identities.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/fingerprint.hpp"

namespace gespmm::serve {

using sparse::value_t;

/// One contiguous row slice of a partitioned operand.
struct GraphShard {
  /// Shard position in the plan (== the device index it executes on).
  int index = 0;
  /// Owned half-open row range [row_begin, row_end) of the full operand.
  index_t row_begin = 0;
  index_t row_end = 0;
  /// The slice as a standalone CSR: `row_end - row_begin` rows, the full
  /// operand's column count, rowptr rebased to start at 0. Running the
  /// host kernel on it reproduces rows [row_begin, row_end) of the
  /// unsharded output bitwise.
  Csr csr;
  /// Fingerprint of the slice — the shard's own plan-cache identity.
  GraphFingerprint fp;
  /// fp.key() (cached).
  std::uint64_t key = 0;
  /// Distinct colind values outside [row_begin, row_end): the B rows this
  /// shard must gather from peers before its SpMM can run.
  index_t halo_cols = 0;

  index_t rows() const { return row_end - row_begin; }
  index_t nnz() const { return csr.nnz(); }
};

/// A full row partition of one registered operand.
struct ShardPlan {
  /// GraphFingerprint::key() of the *unsharded* operand.
  std::uint64_t graph_key = 0;
  /// Shards in row order; concatenating their row ranges covers
  /// [0, rows) exactly once.
  std::vector<GraphShard> shards;

  int num_shards() const { return static_cast<int>(shards.size()); }
  /// Largest single-shard CSR footprint (the per-device residency cost).
  std::size_t max_shard_bytes() const;
};

/// Device-resident footprint of a CSR operand: rowptr + colind + val.
std::size_t csr_bytes(const Csr& a);

/// Build a GraphShard around an already-materialized row slice of some
/// operand: computes the halo count, fingerprint and plan-cache key for
/// `slice`, which must cover rows [row_begin, row_end) rebased to start
/// at 0 (the GraphShard::csr layout). This is the dynamic-update path's
/// shard rebuild: `Engine::apply_update` re-slices only the shards whose
/// row ranges an edge batch touched (via DeltaOverlay::materialize_rows)
/// while the partition boundaries stay fixed between compactions.
GraphShard make_shard_from_slice(Csr slice, int index, index_t row_begin,
                                 index_t row_end);

/// Row-partition `a` into `num_shards` contiguous, nnz-balanced slices.
/// Greedy walk: each shard closes once it holds its proportional share of
/// the remaining nnz, while always leaving at least one row per remaining
/// shard. Throws std::invalid_argument when `num_shards < 1` or
/// `num_shards > a.rows`. Deterministic; `a` must already be validated.
ShardPlan plan_shards(const Csr& a, int num_shards);

}  // namespace gespmm::serve
