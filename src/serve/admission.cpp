#include "serve/admission.hpp"

#include <cmath>

namespace gespmm::serve {

namespace {

// First occupancy at (or above) the configured fraction: shedding starts
// when pending/max_pending >= fraction, so non-integral products round up
// rather than shedding a slot early.
std::size_t shed_threshold(double fraction, std::size_t max_pending) {
  return static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(max_pending)));
}

}  // namespace

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::Interactive: return "interactive";
    case Priority::Batch: return "batch";
    case Priority::BestEffort: return "best-effort";
  }
  return "?";
}

const char* shed_reason_name(ShedReason r) {
  switch (r) {
    case ShedReason::None: return "none";
    case ShedReason::QueueFull: return "queue-full";
    case ShedReason::PriorityShed: return "priority-shed";
  }
  return "?";
}

AdmissionDecision admit_request(Priority p, std::size_t pending,
                                const AdmissionOptions& opt) {
  if (pending >= opt.max_pending) return {false, ShedReason::QueueFull};
  if (p == Priority::BestEffort &&
      pending >= shed_threshold(opt.best_effort_shed_fraction, opt.max_pending)) {
    return {false, ShedReason::PriorityShed};
  }
  if (p == Priority::Batch &&
      pending >= shed_threshold(opt.batch_shed_fraction, opt.max_pending)) {
    return {false, ShedReason::PriorityShed};
  }
  return {true, ShedReason::None};
}

std::uint64_t AdmissionStats::total_admitted() const {
  std::uint64_t total = 0;
  for (const auto v : admitted) total += v;
  return total;
}

std::uint64_t AdmissionStats::total_shed() const {
  std::uint64_t total = 0;
  for (const auto v : shed) total += v;
  return total;
}

AdmissionDecision AdmissionController::admit(Priority p, std::size_t pending) {
  const AdmissionDecision d = admit_request(p, pending, opt_);
  const auto cls = static_cast<std::size_t>(p);
  if (d.admitted) {
    ++stats_.admitted[cls];
  } else {
    ++stats_.shed[cls];
    (d.reason == ShedReason::QueueFull ? stats_.shed_queue_full
                                       : stats_.shed_priority) += 1;
  }
  return d;
}

}  // namespace gespmm::serve
