#include "serve/admission.hpp"

#include <cmath>

namespace gespmm::serve {

namespace {

// First occupancy at (or above) the configured fraction: shedding starts
// when pending/max_pending >= fraction, so non-integral products round up
// rather than shedding a slot early.
std::size_t shed_threshold(double fraction, std::size_t max_pending) {
  return static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(max_pending)));
}

}  // namespace

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::Interactive: return "interactive";
    case Priority::Batch: return "batch";
    case Priority::BestEffort: return "best-effort";
  }
  return "?";
}

const char* shed_reason_name(ShedReason r) {
  switch (r) {
    case ShedReason::None: return "none";
    case ShedReason::QueueFull: return "queue-full";
    case ShedReason::PriorityShed: return "priority-shed";
    case ShedReason::DeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

AdmissionDecision admit_request(Priority p, std::size_t pending,
                                const AdmissionOptions& opt,
                                const TenantConfig& tenant, double deadline_ms,
                                double now_ms) {
  // A dead-on-arrival deadline beats every occupancy reason: even an
  // empty queue cannot serve it in time (execution always advances the
  // clock), and the typed reason tells the caller to stop retrying.
  if (deadline_ms > 0.0 && deadline_ms <= now_ms) {
    return {false, ShedReason::DeadlineExceeded};
  }
  if (pending >= opt.max_pending) return {false, ShedReason::QueueFull};
  if (p == Priority::BestEffort &&
      pending >=
          shed_threshold(tenant.best_effort_shed_fraction, opt.max_pending)) {
    return {false, ShedReason::PriorityShed};
  }
  if (p == Priority::Batch &&
      pending >= shed_threshold(tenant.batch_shed_fraction, opt.max_pending)) {
    return {false, ShedReason::PriorityShed};
  }
  return {true, ShedReason::None};
}

std::uint64_t AdmissionStats::total_admitted() const {
  std::uint64_t total = 0;
  for (const auto v : admitted) total += v;
  return total;
}

std::uint64_t AdmissionStats::total_shed() const {
  std::uint64_t total = 0;
  for (const auto v : shed) total += v;
  return total;
}

AdmissionDecision AdmissionController::admit(Priority p, std::size_t pending,
                                             const TenantConfig& tenant,
                                             double deadline_ms, double now_ms) {
  const AdmissionDecision d =
      admit_request(p, pending, opt_, tenant, deadline_ms, now_ms);
  const auto cls = static_cast<std::size_t>(p);
  if (d.admitted) {
    ++stats_.admitted[cls];
  } else {
    ++stats_.shed[cls];
    switch (d.reason) {
      case ShedReason::QueueFull: ++stats_.shed_queue_full; break;
      case ShedReason::DeadlineExceeded: ++stats_.shed_deadline; break;
      default: ++stats_.shed_priority; break;
    }
  }
  return d;
}

}  // namespace gespmm::serve
