#pragma once
/// \file model_plan.hpp
/// Compiled execution plans for fused end-to-end GNN model serving.
///
/// The defining GNN layer shape is A·X·W: a sparse aggregation (SpMM)
/// chained with a dense feature transform (GEMM) plus a bias/activation
/// epilogue. Serving it as three kernels pays three launches and writes
/// the intermediate to DRAM only to read it straight back; COMET-style
/// SpMM→GEMM fusion keeps the intermediate in registers and folds the
/// epilogue into the second stage's write-out. `compile_model` turns a
/// registered model's parameter stack into a per-layer plan — which side
/// of the aggregation the transform runs on (GCN multiplies by W on the
/// cheaper side), which width the aggregation SpMM runs at (the PlanCache
/// key that makes plans shared across layers, models and plain SpMM
/// traffic), and what the fused vs. composed execution costs on a device.
///
/// Values are computed on the host exactly as the composed pipeline
/// would (same SpMM kernel, same GEMM loop order, same epilogue), so the
/// fused path is bitwise identical to layer-by-layer composition — fusion
/// changes modelled *time*, never values. The modelled fused time is
/// conservative: saved launches plus the intermediate's DRAM round trip,
/// floored at half the slower stage (a fused kernel still runs both
/// stages' work back to back).

#include <cstdint>
#include <vector>

#include "gnn/device_cost.hpp"
#include "kernels/dense.hpp"
#include "kernels/semiring.hpp"
#include "serve/fingerprint.hpp"

namespace gespmm::serve {

using kernels::DenseMatrix;
using kernels::ReduceKind;

/// Which GNN architecture a served model instantiates — the servable
/// subset of `gnn::ModelKind` (GraphSAGE-pool needs the concat/max
/// plumbing the fused path does not model yet).
enum class ServedModelKind {
  /// GCN: per layer act(A · (H · W) + b), transform on the cheaper side.
  Gcn = 0,
  /// GraphSAGE with GCN aggregator: aggregate first, then transform.
  SageGcn,
};

/// "gcn" / "sage-gcn".
const char* served_model_kind_name(ServedModelKind k);

/// A model's parameters over one registered graph: per-layer dense weight
/// (in_l x out_l) and bias (1 x out_l) matrices, row-major.
struct ModelSpec {
  ServedModelKind kind = ServedModelKind::Gcn;
  /// Aggregation semiring (Sum = GCN with pre-normalized adjacency,
  /// Mean = mean-aggregator SAGE).
  ReduceKind reduce = ReduceKind::Sum;
  std::vector<DenseMatrix> weights;
  std::vector<DenseMatrix> bias;
};

/// Deterministic Glorot-initialized spec: `num_layers` transforms routing
/// in_feats -> hidden_feats -> ... -> num_classes, seeded per layer like
/// gnn::Model's parameter stack (seed + 131*l).
ModelSpec make_model_spec(ServedModelKind kind, index_t in_feats,
                          index_t hidden_feats, index_t num_classes,
                          int num_layers, std::uint64_t seed = 0xB0B0);

/// One compiled layer of a model plan.
struct LayerStep {
  index_t in_width = 0;
  index_t out_width = 0;
  /// Width the aggregation SpMM runs at — the PlanCache key width, and
  /// also the width of the fused-away intermediate (equal to `out_width`
  /// when the transform runs first, `in_width` otherwise).
  index_t spmm_width = 0;
  /// GCN rule: run H·W before the aggregation when in_width > out_width
  /// (the SpMM then streams the narrower matrix).
  bool transform_first = false;
  /// ReLU epilogue (every layer but the last).
  bool relu = false;
  ReduceKind reduce = ReduceKind::Sum;
};

/// A compiled model: the execution-plan graph `Engine::submit_model`
/// dispatches as one ticket.
struct ModelPlan {
  /// Content fingerprint over (graph, kind, reduce, parameters) — the
  /// model registry key; identical re-registrations dedup on it.
  std::uint64_t key = 0;
  /// GraphFingerprint::key() of the registered adjacency operand — the
  /// *versioned* key when the graph has taken streaming updates. An
  /// `Engine::apply_update` recompiles the plan against the new key under
  /// the model's existing handle, so a stale `graph_key` never outlives
  /// the update that invalidated it.
  std::uint64_t graph_key = 0;
  ServedModelKind kind = ServedModelKind::Gcn;
  std::vector<LayerStep> layers;
  index_t num_nodes = 0;
  index_t in_feats = 0;
  index_t out_feats = 0;
  /// Widest matrix the forward pass materializes — the arena's sizing
  /// bound (every recycled buffer is num_nodes x (<= max_width)).
  index_t max_width = 0;
  /// Sum of per-layer SpMM widths — the whole ticket's width credit in
  /// the DRR scheduler (one model request costs what its aggregations
  /// would cost as individual requests).
  index_t total_spmm_width = 0;
};

/// Validate `spec` against the (square) graph and compile the plan.
/// Throws std::invalid_argument on shape mismatches.
ModelPlan compile_model(std::uint64_t graph_key, const Csr& graph,
                        const ModelSpec& spec);

/// Modelled device-time breakdown of one layer.
struct LayerCost {
  /// The aggregation's plan-cached modelled time.
  double spmm_ms = 0.0;
  double gemm_ms = 0.0;
  /// Bias + activation as standalone element-wise launches.
  double epilogue_ms = 0.0;
  /// SpMM→GEMM fused with the epilogue absorbed: the serving engine's
  /// modelled cost per layer. Always strictly below `composed_ms`.
  double fused_ms = 0.0;
  /// spmm + gemm + epilogue as separate launches — what layer-by-layer
  /// composition through `Engine::submit` plus host transforms pays.
  double composed_ms = 0.0;
};

/// Price one layer on a device given its (plan-cached) SpMM time.
LayerCost price_layer(const LayerStep& s, index_t num_nodes, double spmm_ms,
                      const gnn::DeviceCost& cost);

/// Recycles intermediate buffers across the layers of one forward pass: a
/// put() buffer whose shape matches a later take() is handed back instead
/// of allocating. Hidden layers share widths, so a deep model runs in a
/// ping-pong pair of num_nodes x hidden buffers instead of one fresh
/// allocation per stage; `ModelPlan::max_width` bounds every slot.
/// Recycled buffers are returned as-is (every consumer overwrites all
/// elements). Not thread-safe; one arena per in-flight forward pass.
class ModelArena {
 public:
  /// A row-major rows x cols buffer — recycled when an exact-shape slot
  /// is pooled, freshly allocated otherwise.
  DenseMatrix take(index_t rows, index_t cols);
  /// Return a buffer to the pool.
  void put(DenseMatrix m);
  /// Buffers currently pooled.
  std::size_t resident() const { return pool_.size(); }
  /// take() calls answered from the pool.
  std::uint64_t reuse_hits() const { return reuse_hits_; }

 private:
  std::vector<DenseMatrix> pool_;
  std::uint64_t reuse_hits_ = 0;
};

/// out = h * w — fixed loop order (k ascending per output element), the
/// GEMM of record for both the fused executor and the composed baseline.
void gemm(const DenseMatrix& h, const DenseMatrix& w, DenseMatrix& out);

/// In place: h += bias (row-broadcast), then ReLU when `relu` — the
/// layer epilogue, shared by both paths for bitwise identity.
void bias_act(DenseMatrix& h, const DenseMatrix& bias, bool relu);

/// out = act(h * w + bias): gemm + bias_act convenience (the dense half
/// of an aggregate-first layer).
void dense_transform(const DenseMatrix& h, const DenseMatrix& w,
                     const DenseMatrix& bias, bool relu, DenseMatrix& out);

/// Compute one layer's values: aggregation (via kernels::spmm_host_parallel)
/// and dense transform in the step's order, epilogue last, intermediates
/// through `arena`. `out` must be num_nodes x s.out_width. Bitwise
/// identical to composing an Engine-submitted SpMM with gemm/bias_act.
void run_layer(const Csr& graph, const LayerStep& s, const DenseMatrix& h,
               const DenseMatrix& w, const DenseMatrix& bias, DenseMatrix& out,
               ModelArena& arena);

}  // namespace gespmm::serve
