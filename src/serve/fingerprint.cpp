#include "serve/fingerprint.hpp"

#include <array>
#include <bit>
#include <sstream>

#include "core/plan_select.hpp"
#include "sparse/rng.hpp"

namespace gespmm::serve {

std::uint64_t mix64(std::uint64_t h, std::uint64_t x) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ull + x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t GraphFingerprint::key() const {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(rows),
                        static_cast<std::uint64_t>(cols));
  h = mix64(h, static_cast<std::uint64_t>(nnz));
  h = mix64(h, histogram_hash);
  h = mix64(h, content_hash);
  // Version 0 keeps the classic four-field key so static-graph keys (and
  // the absolute key goldens) are unchanged by the versioning feature.
  if (version != 0) h = mix64(h, version);
  return h;
}

std::string GraphFingerprint::str() const {
  std::ostringstream os;
  os << rows << "x" << cols << ", nnz=" << nnz << ", hist=" << std::hex
     << histogram_hash << ", content=" << content_hash;
  if (version != 0) os << std::dec << ", v=" << version;
  return os.str();
}

GraphFingerprint fingerprint(const Csr& a) {
  GraphFingerprint fp;
  fp.rows = a.rows;
  fp.cols = a.cols;
  fp.nnz = a.nnz();

  // Row-length histogram over log2 buckets: bucket 0 counts empty rows
  // and bucket b >= 1 counts rows with 2^(b-1) <= nnz < 2^b — i.e. bucket
  // bit_width(len), so a power-of-two length 2^k opens bucket k+1 rather
  // than closing bucket k. This half-open contract is the stable identity
  // the bucket-boundary goldens in test_serve_engine.cpp pin, and the
  // same bucketing the learned plan selector conditions on — shared via
  // core/plan_select so the two can never drift.
  const std::array<std::uint64_t, kRowHistBuckets> hist =
      row_length_histogram(a);
  std::uint64_t hh = 0x5ca1ab1eull;
  for (std::uint64_t count : hist) hh = mix64(hh, count);
  fp.histogram_hash = hh;

  std::uint64_t ch = 0xc0ffeeull;
  for (index_t p : a.rowptr) ch = mix64(ch, static_cast<std::uint64_t>(p));
  for (index_t c : a.colind) ch = mix64(ch, static_cast<std::uint64_t>(c));
  for (float v : a.val) ch = mix64(ch, std::bit_cast<std::uint32_t>(v));
  fp.content_hash = ch;
  return fp;
}

}  // namespace gespmm::serve
