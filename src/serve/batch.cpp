#include "serve/batch.hpp"

namespace gespmm::serve {

std::vector<std::size_t> plan_batch(std::span<const RequestShape> pending,
                                    const BatchConstraints& limits) {
  std::vector<std::size_t> batch;
  if (pending.empty()) return batch;

  const RequestShape& anchor = pending[0];
  batch.push_back(0);
  index_t total_n = anchor.n;

  for (std::size_t i = 1; i < pending.size(); ++i) {
    if (batch.size() >= limits.max_batch_requests) break;
    const RequestShape& r = pending[i];
    if (r.graph != anchor.graph || r.reduce != anchor.reduce) continue;
    if (total_n > limits.max_batch_n - r.n) continue;
    batch.push_back(i);
    total_n += r.n;
  }
  return batch;
}

}  // namespace gespmm::serve
