#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gespmm::serve {

const char* schedule_policy_name(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::Fifo: return "fifo";
    case SchedulePolicy::DeficitRoundRobin: return "drr";
  }
  return "?";
}

Scheduler::Scheduler(SchedulerOptions opt, BatchConstraints limits)
    : opt_(std::move(opt)), limits_(limits) {
  if (opt_.quantum < 1) {
    throw std::invalid_argument("Scheduler: quantum must be at least 1");
  }
  if (limits_.max_batch_requests < 1) {
    throw std::invalid_argument("Scheduler: max_batch_requests must be at least 1");
  }
  for (const double s : opt_.tenant_shares) {
    if (!(s > 0.0) || !std::isfinite(s)) {
      throw std::invalid_argument("Scheduler: tenant shares must be positive");
    }
  }
}

index_t Scheduler::weighted_grant(std::uint32_t tenant) const {
  double share = 1.0;
  if (tenant < opt_.tenant_shares.size()) share = opt_.tenant_shares[tenant];
  // llround keeps the grant deterministic across platforms; a sub-1 share
  // can never starve (grant floor of one column per visit).
  const auto grant = static_cast<index_t>(
      std::llround(static_cast<double>(opt_.quantum) * share));
  return std::max<index_t>(grant, 1);
}

void Scheduler::enqueue(const SchedRequest& r) {
  const QueueKey key{r.graph, r.tenant};
  auto [it, created] = queues_.try_emplace(key);
  GraphQueue& gq = it->second;
  if (created) {
    gq.stats.graph = r.graph;
    gq.stats.tenant = r.tenant;
    gq.grant = weighted_grant(r.tenant);
    seen_order_.push_back(key);
  }
  if (gq.pending == 0) ring_.push_back(key);
  // Requests always land in their priority class; Fifo restores the v1
  // priority-blind order at pick time by sorting candidates on seq, so
  // both policies see one queue shape (and one invariant: each class
  // deque is seq-sorted because enqueue seqs strictly increase).
  const std::size_t cls = static_cast<std::size_t>(r.priority);
  gq.q[cls].push_back(Item{r.seq, r.n, r.reduce, r.model});
  ++gq.pending;
  ++gq.stats.enqueued;
  ++pending_;
}

const Scheduler::Item& Scheduler::head_of(const GraphQueue& gq) const {
  for (const auto& dq : gq.q) {
    if (!dq.empty()) return dq.front();
  }
  throw std::logic_error("Scheduler: head_of on empty graph queue");
}

std::vector<std::uint64_t> Scheduler::serve_from(GraphQueue& gq, index_t allowed,
                                                 index_t* total_width,
                                                 bool fifo_order) {
  // Anchor = head in pick order — (priority, seq) under DRR, global
  // admission seq under Fifo; later same-reduce requests join while the
  // summed width stays within `allowed` and the count within
  // max_batch_requests. Mismatched requests are skipped, never blocking
  // a compatible one behind them. A model request is a whole forward
  // pass: it anchors a singleton batch and never rides along.
  struct Pick {
    std::size_t cls;
    std::size_t idx;
  };
  std::vector<Pick> order;
  for (std::size_t cls = 0; cls < kNumPriorities; ++cls) {
    for (std::size_t i = 0; i < gq.q[cls].size(); ++i) {
      order.push_back({cls, i});
    }
  }
  if (fifo_order) {
    std::sort(order.begin(), order.end(), [&gq](const Pick& a, const Pick& b) {
      return gq.q[a.cls][a.idx].seq < gq.q[b.cls][b.idx].seq;
    });
  }
  std::vector<Pick> picks;
  std::vector<std::uint64_t> seqs;
  const Item* anchor = nullptr;
  index_t total = 0;
  for (const Pick& p : order) {
    if (picks.size() >= limits_.max_batch_requests) break;
    const Item& item = gq.q[p.cls][p.idx];
    if (anchor == nullptr) {
      anchor = &item;
      picks.push_back(p);
      seqs.push_back(item.seq);
      total = item.n;
      if (item.model) break;  // a whole-model ticket ships alone
      continue;
    }
    if (item.model) continue;  // and never rides in someone else's batch
    if (item.reduce != anchor->reduce) continue;
    if (total > allowed - item.n) continue;
    picks.push_back(p);
    seqs.push_back(item.seq);
    total += item.n;
  }
  // Erase back-to-front in (cls, idx) order so earlier indices stay valid
  // (under fifo_order the picks may be interleaved across classes).
  std::sort(picks.begin(), picks.end(), [](const Pick& a, const Pick& b) {
    return a.cls != b.cls ? a.cls < b.cls : a.idx < b.idx;
  });
  for (auto it = picks.rbegin(); it != picks.rend(); ++it) {
    auto& dq = gq.q[it->cls];
    dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(it->idx));
  }
  gq.pending -= picks.size();
  pending_ -= picks.size();
  gq.stats.served += picks.size();
  gq.stats.batches += 1;
  gq.stats.served_width += static_cast<std::uint64_t>(total);
  *total_width = total;
  return seqs;
}

void Scheduler::deactivate(const QueueKey& key) {
  const auto it = std::find(ring_.begin(), ring_.end(), key);
  const auto idx = static_cast<std::size_t>(it - ring_.begin());
  ring_.erase(it);
  if (idx < cursor_) --cursor_;
  if (cursor_ >= ring_.size()) cursor_ = 0;
}

index_t Scheduler::deficit_cap(index_t grant, index_t head_n) const {
  const index_t cap = opt_.max_deficit > 0 ? opt_.max_deficit : 4 * grant;
  return std::max(cap, head_n);
}

std::vector<std::uint64_t> Scheduler::next_batch_fifo() {
  // The globally oldest pending request anchors, wherever it lives — and
  // it may sit in any priority class: a queue whose interactive deque is
  // empty still has batch/best-effort work pending. (Blindly reading
  // q[0].front() here was undefined behavior on exactly that shape, and
  // even with q[0] non-empty it anchored on the oldest *interactive*
  // request, not the oldest request.) Each class deque is seq-sorted, so
  // the per-queue oldest is the minimum over non-empty class fronts.
  QueueKey best_key{0, 0};
  std::uint64_t best_seq = 0;
  index_t best_n = 0;
  bool found = false;
  for (const QueueKey& k : ring_) {
    for (const auto& dq : queues_.at(k).q) {
      if (dq.empty()) continue;
      if (!found || dq.front().seq < best_seq) {
        best_key = k;
        best_seq = dq.front().seq;
        best_n = dq.front().n;
        found = true;
      }
    }
  }
  GraphQueue& gq = queues_.at(best_key);
  index_t total = 0;
  auto seqs = serve_from(gq, std::max(limits_.max_batch_n, best_n), &total,
                         /*fifo_order=*/true);
  if (gq.pending == 0) deactivate(best_key);
  return seqs;
}

std::vector<std::uint64_t> Scheduler::next_batch_drr() {
  for (;;) {
    if (cursor_ >= ring_.size()) cursor_ = 0;
    const QueueKey key = ring_[cursor_];
    GraphQueue& gq = queues_.at(key);
    const Item& head = head_of(gq);
    gq.deficit = std::min(gq.deficit + gq.grant, deficit_cap(gq.grant, head.n));
    if (gq.deficit < head.n) {
      // Not enough credit yet; the next rotation adds another grant,
      // so this head ships after at most ceil(n / grant) rotations.
      ++gq.stats.deferred;
      ++cursor_;
      continue;
    }
    index_t allowed = std::min(gq.deficit, limits_.max_batch_n);
    allowed = std::max(allowed, head.n);
    index_t total = 0;
    auto seqs = serve_from(gq, allowed, &total, /*fifo_order=*/false);
    gq.deficit = std::max<index_t>(gq.deficit - total, 0);
    if (gq.pending == 0) {
      gq.deficit = 0;  // credit does not survive idleness
      deactivate(key);
    } else {
      ++cursor_;  // one batch per visit, then move on
    }
    return seqs;
  }
}

std::vector<std::uint64_t> Scheduler::next_batch() {
  if (pending_ == 0) return {};
  return opt_.policy == SchedulePolicy::Fifo ? next_batch_fifo()
                                             : next_batch_drr();
}

std::vector<GraphServeStats> Scheduler::stats() const {
  std::vector<GraphServeStats> out;
  out.reserve(seen_order_.size());
  for (const QueueKey& k : seen_order_) {
    const GraphQueue& gq = queues_.at(k);
    GraphServeStats st = gq.stats;
    st.pending = gq.pending;
    out.push_back(st);
  }
  return out;
}

}  // namespace gespmm::serve
