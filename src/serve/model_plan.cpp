#include "serve/model_plan.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "gnn/tensor.hpp"
#include "kernels/spmm_host.hpp"

namespace gespmm::serve {

using kernels::value_t;

const char* served_model_kind_name(ServedModelKind k) {
  switch (k) {
    case ServedModelKind::Gcn: return "gcn";
    case ServedModelKind::SageGcn: return "sage-gcn";
  }
  return "?";
}

namespace {

DenseMatrix glorot_dense(index_t rows, index_t cols, std::uint64_t seed) {
  const gnn::Tensor t = gnn::Tensor::glorot(rows, cols, seed);
  DenseMatrix m(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) m.at(i, j) = t.at(i, j);
  }
  return m;
}

}  // namespace

ModelSpec make_model_spec(ServedModelKind kind, index_t in_feats,
                         index_t hidden_feats, index_t num_classes,
                         int num_layers, std::uint64_t seed) {
  if (num_layers < 1) {
    throw std::invalid_argument("make_model_spec: at least one layer required");
  }
  if (in_feats < 1 || hidden_feats < 1 || num_classes < 1) {
    throw std::invalid_argument("make_model_spec: widths must be positive");
  }
  ModelSpec spec;
  spec.kind = kind;
  for (int l = 0; l < num_layers; ++l) {
    const index_t in = l == 0 ? in_feats : hidden_feats;
    const index_t out = l == num_layers - 1 ? num_classes : hidden_feats;
    const std::uint64_t s = seed + 131ull * static_cast<std::uint64_t>(l);
    spec.weights.push_back(glorot_dense(in, out, s));
    spec.bias.push_back(glorot_dense(1, out, s + 7));
  }
  return spec;
}

ModelPlan compile_model(std::uint64_t graph_key, const Csr& graph,
                        const ModelSpec& spec) {
  if (graph.rows != graph.cols) {
    throw std::invalid_argument(
        "compile_model: adjacency must be square (layer outputs feed the "
        "next layer's aggregation)");
  }
  if (spec.weights.empty()) {
    throw std::invalid_argument("compile_model: model has no layers");
  }
  if (spec.bias.size() != spec.weights.size()) {
    throw std::invalid_argument(
        "compile_model: one bias per weight layer required");
  }

  ModelPlan plan;
  plan.graph_key = graph_key;
  plan.kind = spec.kind;
  plan.num_nodes = graph.rows;
  plan.in_feats = spec.weights.front().rows();
  plan.out_feats = spec.weights.back().cols();
  plan.max_width = plan.in_feats;

  index_t in = plan.in_feats;
  for (std::size_t l = 0; l < spec.weights.size(); ++l) {
    const DenseMatrix& w = spec.weights[l];
    const DenseMatrix& b = spec.bias[l];
    if (w.rows() != in) {
      throw std::invalid_argument(
          "compile_model: layer input width does not match the previous "
          "layer's output width");
    }
    if (w.cols() < 1) {
      throw std::invalid_argument("compile_model: empty weight matrix");
    }
    if (b.rows() != 1 || b.cols() != w.cols()) {
      throw std::invalid_argument("compile_model: bias must be 1 x out_width");
    }
    if (w.layout() != kernels::Layout::RowMajor ||
        b.layout() != kernels::Layout::RowMajor) {
      throw std::invalid_argument("compile_model: parameters must be row-major");
    }
    LayerStep s;
    s.in_width = in;
    s.out_width = w.cols();
    // GCN multiplies by W on the cheaper side of the aggregation (the
    // same rule as gnn::Model::gcn_layer); the SAGE-GCN aggregator always
    // aggregates raw features first.
    s.transform_first =
        spec.kind == ServedModelKind::Gcn && s.in_width > s.out_width;
    s.spmm_width = s.transform_first ? s.out_width : s.in_width;
    s.relu = l + 1 < spec.weights.size();
    s.reduce = spec.reduce;
    plan.layers.push_back(s);

    plan.max_width = std::max(plan.max_width, s.out_width);
    plan.total_spmm_width += s.spmm_width;
    in = s.out_width;
  }

  // Content fingerprint: everything execution depends on, so identical
  // re-registrations dedup and any parameter change is a new model.
  std::uint64_t key = mix64(graph_key, 0x6d6f64656cull);  // "model"
  key = mix64(key, static_cast<std::uint64_t>(spec.kind));
  key = mix64(key, static_cast<std::uint64_t>(spec.reduce));
  key = mix64(key, spec.weights.size());
  for (std::size_t l = 0; l < spec.weights.size(); ++l) {
    const DenseMatrix& w = spec.weights[l];
    key = mix64(key, static_cast<std::uint64_t>(w.rows()));
    key = mix64(key, static_cast<std::uint64_t>(w.cols()));
    for (index_t i = 0; i < w.rows(); ++i) {
      for (index_t j = 0; j < w.cols(); ++j) {
        key = mix64(key, std::bit_cast<std::uint32_t>(w.at(i, j)));
      }
    }
    const DenseMatrix& b = spec.bias[l];
    for (index_t j = 0; j < b.cols(); ++j) {
      key = mix64(key, std::bit_cast<std::uint32_t>(b.at(0, j)));
    }
  }
  plan.key = key;
  return plan;
}

LayerCost price_layer(const LayerStep& s, index_t num_nodes, double spmm_ms,
                      const gnn::DeviceCost& cost) {
  LayerCost c;
  c.spmm_ms = spmm_ms;
  const auto m = static_cast<std::int64_t>(num_nodes);
  c.gemm_ms = cost.gemm_ms(m, s.in_width, s.out_width);
  // Composed epilogue: bias add and (optionally) ReLU each read + write
  // the num_nodes x out_width output as their own launch.
  const auto out_bytes =
      static_cast<std::uint64_t>(8) * static_cast<std::uint64_t>(m) *
      static_cast<std::uint64_t>(s.out_width);
  c.epilogue_ms = cost.elementwise_ms(out_bytes);
  if (s.relu) c.epilogue_ms += cost.elementwise_ms(out_bytes);
  c.composed_ms = c.spmm_ms + c.gemm_ms + c.epilogue_ms;

  // Fusion keeps the num_nodes x spmm_width intermediate in registers —
  // its DRAM round trip (one write + one read at GEMM-grade bandwidth)
  // and the second launch disappear, and the epilogue folds into the
  // write-out for free. Floor at half the slower stage: a fused kernel
  // still runs both stages' arithmetic back to back.
  const double inter_bytes = 2.0 * 4.0 * static_cast<double>(m) * s.spmm_width;
  const double inter_ms =
      inter_bytes / (cost.dev.dram_bw_gbps * 0.75 * 1e9) * 1e3;
  const double fused = c.spmm_ms + c.gemm_ms - cost.launch_ms() - inter_ms;
  c.fused_ms = std::max(fused, 0.5 * std::max(c.spmm_ms, c.gemm_ms));
  return c;
}

DenseMatrix ModelArena::take(index_t rows, index_t cols) {
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i].rows() == rows && pool_[i].cols() == cols &&
        pool_[i].layout() == kernels::Layout::RowMajor) {
      DenseMatrix m = std::move(pool_[i]);
      pool_[i] = std::move(pool_.back());
      pool_.pop_back();
      ++reuse_hits_;
      return m;
    }
  }
  return DenseMatrix(rows, cols);
}

void ModelArena::put(DenseMatrix m) {
  if (m.rows() > 0 && m.cols() > 0) pool_.push_back(std::move(m));
}

void gemm(const DenseMatrix& h, const DenseMatrix& w, DenseMatrix& out) {
  const index_t m = h.rows();
  const index_t k = h.cols();
  const index_t n = w.cols();
  if (w.rows() != k || out.rows() != m || out.cols() != n) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      value_t acc = 0.0f;
      for (index_t p = 0; p < k; ++p) acc += h.at(i, p) * w.at(p, j);
      out.at(i, j) = acc;
    }
  }
}

void bias_act(DenseMatrix& h, const DenseMatrix& bias, bool relu) {
  if (bias.rows() != 1 || bias.cols() != h.cols()) {
    throw std::invalid_argument("bias_act: bias must be 1 x cols");
  }
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < h.rows(); ++i) {
    for (index_t j = 0; j < h.cols(); ++j) {
      value_t v = h.at(i, j) + bias.at(0, j);
      if (relu && v < 0.0f) v = 0.0f;
      h.at(i, j) = v;
    }
  }
}

void dense_transform(const DenseMatrix& h, const DenseMatrix& w,
                     const DenseMatrix& bias, bool relu, DenseMatrix& out) {
  gemm(h, w, out);
  bias_act(out, bias, relu);
}

void run_layer(const Csr& graph, const LayerStep& s, const DenseMatrix& h,
               const DenseMatrix& w, const DenseMatrix& bias, DenseMatrix& out,
               ModelArena& arena) {
  if (out.rows() != graph.rows || out.cols() != s.out_width) {
    throw std::invalid_argument("run_layer: out must be num_nodes x out_width");
  }
  if (s.transform_first) {
    DenseMatrix t = arena.take(h.rows(), s.out_width);
    gemm(h, w, t);
    kernels::spmm_host_parallel(graph, t, out, s.reduce);
    arena.put(std::move(t));
    bias_act(out, bias, s.relu);
  } else {
    DenseMatrix t = arena.take(graph.rows, s.in_width);
    kernels::spmm_host_parallel(graph, h, t, s.reduce);
    dense_transform(t, w, bias, s.relu, out);
    arena.put(std::move(t));
  }
}

}  // namespace gespmm::serve
