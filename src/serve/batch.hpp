#pragma once
/// \file batch.hpp
/// Batch formation policy: which queued requests coalesce into one SpMM.
///
/// Requests on the same registered graph with the same reduction are
/// column-wise independent, so their feature matrices can be concatenated
/// into one B of width sum(n_i) and answered by a *single* kernel launch —
/// the batching opportunity of "Batched Sparse Matrix Multiplication for
/// Accelerating Graph Convolutional Networks" (IPDPS 2019), which on this
/// stack pays off twice: one launch overhead instead of per-request, and
/// one pass over A's colind/val per 32-column warp tile instead of per
/// request. Kept free of threads and engine state so the policy is
/// unit-testable in isolation.
///
/// `plan_batch` is the v1 single-queue coalescing rule. The v2 engine
/// schedules through `scheduler.hpp`, which applies the same
/// same-(graph, reduce) / width-cap / count-cap rule per graph queue but
/// adds priorities and deficit-round-robin width accounting; this header
/// remains the policy's minimal, reference form.

#include <cstddef>
#include <span>
#include <vector>

#include "serve/plan_cache.hpp"

namespace gespmm::serve {

/// Coalescing limits.
struct BatchConstraints {
  /// Widest dense matrix a single batch may accumulate. Bounds both the
  /// coalesced B's footprint and per-request latency; a request wider
  /// than this still runs, alone.
  index_t max_batch_n = 256;
  /// Most requests one batch may carry (bounds result-splitting work).
  std::size_t max_batch_requests = 16;
};

/// The coalescing-relevant shape of one queued request.
struct RequestShape {
  /// GraphFingerprint::key() of the registered operand.
  std::uint64_t graph = 0;
  /// Width of this request's feature matrix.
  index_t n = 0;
  /// Requested reduction (only like reductions coalesce).
  ReduceKind reduce = ReduceKind::Sum;
};

/// Form the next batch from a FIFO queue view: the front request anchors
/// the batch (no starvation — the oldest request always ships), and later
/// requests with the same (graph, reduce) join it while the summed width
/// stays within `max_batch_n` and the count within `max_batch_requests`.
/// Non-matching requests are skipped, not blocked: a compatible request
/// may ride along from behind them. Returns ascending queue indices;
/// never empty for a non-empty queue.
std::vector<std::size_t> plan_batch(std::span<const RequestShape> pending,
                                    const BatchConstraints& limits);

}  // namespace gespmm::serve
