#include "serve/delta.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace gespmm::serve {

namespace {

void check_ref(const Csr& base, index_t row, index_t col, const char* what) {
  if (row < 0 || row >= base.rows || col < 0 || col >= base.cols) {
    throw std::invalid_argument(
        std::string("DeltaOverlay::apply: ") + what + " (" +
        std::to_string(row) + ", " + std::to_string(col) +
        ") out of range for a " + std::to_string(base.rows) + "x" +
        std::to_string(base.cols) + " operand");
  }
}

/// The canonical form of one effective row: ascending column -> value.
/// Pulling a base row in sums duplicate columns, so the map's iteration
/// order *is* the storage (and accumulation) order of both the patch and
/// any CSR materialized from it.
using RowMap = std::map<index_t, value_t>;

RowMap canonical_base_row(const Csr& base, index_t row) {
  RowMap m;
  const auto lo = static_cast<std::size_t>(base.rowptr[static_cast<std::size_t>(row)]);
  const auto hi = static_cast<std::size_t>(base.rowptr[static_cast<std::size_t>(row) + 1]);
  for (std::size_t p = lo; p < hi; ++p) m[base.colind[p]] += base.val[p];
  return m;
}

}  // namespace

std::shared_ptr<const DeltaOverlay> DeltaOverlay::apply(const Csr& base,
                                                        const DeltaOverlay* prev,
                                                        const EdgeBatch& batch) {
  // Working form of every row this overlay will hold. Rows already in
  // `prev` come over as-is (they are canonical); rows the batch touches
  // for the first time canonicalize from the base.
  std::map<index_t, RowMap> work;
  if (prev != nullptr) {
    for (std::size_t i = 0; i < prev->rows_.size(); ++i) {
      RowMap& m = work[prev->rows_[i]];
      const auto lo = static_cast<std::size_t>(prev->patch_.rowptr[i]);
      const auto hi = static_cast<std::size_t>(prev->patch_.rowptr[i + 1]);
      for (std::size_t p = lo; p < hi; ++p) {
        m.emplace(prev->patch_.colind[p], prev->patch_.val[p]);
      }
    }
  }
  const auto effective_row = [&](index_t row) -> RowMap& {
    auto it = work.find(row);
    if (it == work.end()) {
      it = work.emplace(row, canonical_base_row(base, row)).first;
    }
    return it->second;
  };

  for (const EdgeBatch::Edge& e : batch.inserts) {
    check_ref(base, e.row, e.col, "insert");
    effective_row(e.row)[e.col] = e.val;  // upsert: last write wins
  }
  for (const EdgeBatch::EdgeRef& d : batch.deletes) {
    check_ref(base, d.row, d.col, "delete");
    RowMap& m = effective_row(d.row);
    const auto it = m.find(d.col);
    if (it == m.end()) {
      throw std::invalid_argument(
          "DeltaOverlay::apply: delete of nonexistent edge (" +
          std::to_string(d.row) + ", " + std::to_string(d.col) + ")");
    }
    m.erase(it);
  }

  auto overlay = std::shared_ptr<DeltaOverlay>(new DeltaOverlay());
  overlay->rows_.reserve(work.size());
  Csr& patch = overlay->patch_;
  patch.rows = static_cast<index_t>(work.size());
  patch.cols = base.cols;
  patch.rowptr.assign(1, 0);
  patch.rowptr.reserve(work.size() + 1);
  for (const auto& [row, m] : work) {
    overlay->rows_.push_back(row);
    for (const auto& [col, val] : m) {
      patch.colind.push_back(col);
      patch.val.push_back(val);
    }
    patch.rowptr.push_back(patch.nnz());
  }
  return overlay;
}

index_t DeltaOverlay::effective_nnz(const Csr& base) const {
  index_t n = base.nnz() + overlay_nnz();
  for (const index_t row : rows_) n -= base.row_nnz(row);
  return n;
}

bool DeltaOverlay::touches(index_t row_begin, index_t row_end) const {
  const auto it = std::lower_bound(rows_.begin(), rows_.end(), row_begin);
  return it != rows_.end() && *it < row_end;
}

Csr DeltaOverlay::materialize(const Csr& base) const {
  return materialize_rows(base, 0, base.rows);
}

Csr DeltaOverlay::materialize_rows(const Csr& base, index_t row_begin,
                                   index_t row_end) const {
  Csr out;
  out.rows = row_end - row_begin;
  out.cols = base.cols;
  out.rowptr.assign(1, 0);
  out.rowptr.reserve(static_cast<std::size_t>(out.rows) + 1);
  // Walk base rows and touched rows in lockstep (both ascending).
  auto touched = std::lower_bound(rows_.begin(), rows_.end(), row_begin);
  for (index_t row = row_begin; row < row_end; ++row) {
    if (touched != rows_.end() && *touched == row) {
      const auto pi = static_cast<std::size_t>(touched - rows_.begin());
      const auto lo = static_cast<std::size_t>(patch_.rowptr[pi]);
      const auto hi = static_cast<std::size_t>(patch_.rowptr[pi + 1]);
      out.colind.insert(out.colind.end(), patch_.colind.begin() + static_cast<std::ptrdiff_t>(lo),
                        patch_.colind.begin() + static_cast<std::ptrdiff_t>(hi));
      out.val.insert(out.val.end(), patch_.val.begin() + static_cast<std::ptrdiff_t>(lo),
                     patch_.val.begin() + static_cast<std::ptrdiff_t>(hi));
      ++touched;
    } else {
      const auto lo = static_cast<std::size_t>(base.rowptr[static_cast<std::size_t>(row)]);
      const auto hi = static_cast<std::size_t>(base.rowptr[static_cast<std::size_t>(row) + 1]);
      out.colind.insert(out.colind.end(), base.colind.begin() + static_cast<std::ptrdiff_t>(lo),
                        base.colind.begin() + static_cast<std::ptrdiff_t>(hi));
      out.val.insert(out.val.end(), base.val.begin() + static_cast<std::ptrdiff_t>(lo),
                     base.val.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    out.rowptr.push_back(out.nnz());
  }
  return out;
}

}  // namespace gespmm::serve
