#pragma once
/// \file scheduler.hpp
/// Cross-queue request scheduling: which (graph, tenant) queue supplies
/// the next batch, and which requests ride in it.
///
/// The v1 engine formed batches from one global FIFO: correct, but a hot
/// graph that floods the queue monopolizes the workers — every cold
/// graph's requests wait behind the entire hot backlog (cross-tenant
/// head-of-line blocking). The v2+ scheduler keeps one queue *per
/// (registered graph, tenant)* and picks the next batch by deficit
/// round-robin (DRR, Shreedhar & Varghese): each visit grants the queue
/// its tenant's *weighted* quantum of width credit —
/// `quantum * tenant_shares[tenant]` output columns — and a queue ships a
/// batch only while its credit covers the batch's summed width. Over any
/// backlogged window every queue therefore serves width proportional to
/// its tenant's configured share (the weighted-fairness property the
/// tenant sweep pins), and starvation is impossible by construction — a
/// waiting queue's deficit grows every rotation until its head request
/// fits, however wide it is. With one tenant at share 1.0 (the default)
/// this degenerates bitwise to the unweighted per-graph DRR of v2.
///
/// Within one queue, requests order by (priority, admission seq):
/// interactive before batch before best-effort, FIFO inside a class.
/// Batches still only coalesce same-reduce requests (column independence
/// requires one semiring per kernel launch); incompatible requests are
/// skipped, not blocked, exactly like the v1 policy in batch.hpp.
/// Requests from different tenants never share a batch — their queues are
/// distinct — so per-tenant served-width accounting stays exact.
///
/// All state is explicit (seq numbers, deficits, a rotation cursor) and
/// no decision reads the clock, so a fixed enqueue order yields one
/// exact batch sequence — the property the fairness goldens and the
/// stress test's serial replay pin down. The scheduler is single-
/// threaded by design; the engine guards it with its queue lock.

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "serve/admission.hpp"
#include "serve/batch.hpp"

namespace gespmm::serve {

/// Which policy picks the next batch.
enum class SchedulePolicy {
  /// v1 behavior: the oldest pending request (by admission seq,
  /// priority-blind) anchors the batch. Kept as the baseline policy the
  /// fairness bench compares against.
  Fifo,
  /// Weighted deficit round-robin across per-(graph, tenant) queues (the
  /// default).
  DeficitRoundRobin,
};

/// "fifo" / "drr".
const char* schedule_policy_name(SchedulePolicy p);

/// Scheduler knobs.
struct SchedulerOptions {
  SchedulePolicy policy = SchedulePolicy::DeficitRoundRobin;
  /// Width credit (output columns) granted per DRR visit to a share-1.0
  /// tenant. At the default it matches BatchConstraints::max_batch_n, so
  /// a backlogged queue ships one full-width batch per rotation.
  index_t quantum = 256;
  /// Cap on accumulated credit, bounding the burst an idle-then-busy
  /// queue can ship at once. 0 = auto (4x the queue's weighted quantum).
  /// The cap never blocks a head request wider than itself: credit may
  /// always grow until the head fits.
  index_t max_deficit = 0;
  /// Per-tenant DRR weights, indexed by `SchedRequest::tenant`. A tenant
  /// beyond the vector (or an empty vector — the default) weighs 1.0.
  /// The engine fills this from `ServeOptions::tenants`.
  std::vector<double> tenant_shares;
};

/// The scheduling-relevant shape of one admitted request.
struct SchedRequest {
  /// Admission sequence number (engine-assigned, strictly increasing).
  std::uint64_t seq = 0;
  /// GraphFingerprint::key() of the registered operand.
  std::uint64_t graph = 0;
  /// Width of the request's feature matrix.
  index_t n = 0;
  ReduceKind reduce = ReduceKind::Sum;
  Priority priority = Priority::Interactive;
  /// A fused whole-model request (Engine::submit_model): it never
  /// coalesces with other requests — one ticket is already a full forward
  /// pass — and its `n` is the model's summed per-layer SpMM width, the
  /// DRR credit the whole pass costs.
  bool model = false;
  /// Tenant index (engine-assigned, sorted-name order). Requests of
  /// different tenants queue — and are credited — separately.
  std::uint32_t tenant = 0;
};

/// Per-(graph, tenant) scheduling counters.
struct GraphServeStats {
  std::uint64_t graph = 0;
  std::uint64_t enqueued = 0;
  /// Requests shipped in batches.
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  /// DRR visits where the queue had pending work but its deficit did not
  /// yet cover the head request (always 0 under Fifo).
  std::uint64_t deferred = 0;
  /// Summed width of served requests — the DRR fairness currency.
  std::uint64_t served_width = 0;
  /// Requests currently pending (snapshot).
  std::uint64_t pending = 0;
  /// Tenant index this queue belongs to.
  std::uint32_t tenant = 0;
};

/// Deterministic cross-queue batch scheduler. Not thread-safe.
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions opt = {}, BatchConstraints limits = {});

  /// Add an admitted request. `seq` values must be distinct and
  /// increasing across calls (the engine's admission counter).
  void enqueue(const SchedRequest& r);

  /// Requests admitted but not yet shipped.
  std::size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }

  /// Pop the next batch: admission seqs of same-(graph, tenant, reduce)
  /// requests, in (priority, seq) order. Empty only when nothing is
  /// pending.
  std::vector<std::uint64_t> next_batch();

  /// Counters for every (graph, tenant) queue ever enqueued, in
  /// first-seen order.
  std::vector<GraphServeStats> stats() const;

  const SchedulerOptions& options() const { return opt_; }

 private:
  /// Queue identity: one per (graph, tenant) pair.
  using QueueKey = std::pair<std::uint64_t, std::uint32_t>;

  struct Item {
    std::uint64_t seq = 0;
    index_t n = 0;
    ReduceKind reduce = ReduceKind::Sum;
    bool model = false;
  };
  struct GraphQueue {
    std::array<std::deque<Item>, kNumPriorities> q;
    index_t deficit = 0;
    std::size_t pending = 0;
    /// This queue's per-visit DRR grant (quantum x tenant share, >= 1).
    index_t grant = 1;
    GraphServeStats stats;
  };

  const Item& head_of(const GraphQueue& gq) const;
  /// Form, remove and account one batch from `gq`, coalescing up to
  /// `allowed` summed width; returns the seqs and sets `total_width`.
  /// `fifo_order` anchors and joins in global admission order (the v1
  /// priority-blind rule); otherwise (priority, seq) order. A model
  /// request always ships alone, whichever role it plays.
  std::vector<std::uint64_t> serve_from(GraphQueue& gq, index_t allowed,
                                        index_t* total_width, bool fifo_order);
  void deactivate(const QueueKey& key);
  std::vector<std::uint64_t> next_batch_fifo();
  std::vector<std::uint64_t> next_batch_drr();
  index_t weighted_grant(std::uint32_t tenant) const;
  index_t deficit_cap(index_t grant, index_t head_n) const;

  SchedulerOptions opt_;
  BatchConstraints limits_;
  std::map<QueueKey, GraphQueue> queues_;
  /// Queues in first-enqueue order (stats order).
  std::vector<QueueKey> seen_order_;
  /// Queues with pending work, in activation order (the DRR ring).
  std::vector<QueueKey> ring_;
  std::size_t cursor_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace gespmm::serve
