#pragma once
/// \file scheduler.hpp
/// Cross-graph request scheduling: which graph's queue supplies the next
/// batch, and which requests ride in it.
///
/// The v1 engine formed batches from one global FIFO: correct, but a hot
/// graph that floods the queue monopolizes the workers — every cold
/// graph's requests wait behind the entire hot backlog (cross-tenant
/// head-of-line blocking). The v2 scheduler keeps one queue *per
/// registered graph* and picks the next batch by deficit round-robin
/// (DRR, Shreedhar & Varghese): each visit grants the graph `quantum`
/// columns of width credit, and a graph ships a batch only while its
/// credit covers the batch's summed width. Over any backlogged window
/// every graph therefore serves within one request width of `quantum`
/// columns per rotation, and starvation is impossible by construction —
/// a waiting graph's deficit grows every rotation until its head request
/// fits, however wide it is.
///
/// Within one graph's queue, requests order by (priority, admission
/// seq): interactive before batch before best-effort, FIFO inside a
/// class. Batches still only coalesce same-reduce requests (column
/// independence requires one semiring per kernel launch); incompatible
/// requests are skipped, not blocked, exactly like the v1 policy in
/// batch.hpp.
///
/// All state is explicit (seq numbers, deficits, a rotation cursor) and
/// no decision reads the clock, so a fixed enqueue order yields one
/// exact batch sequence — the property the fairness goldens and the
/// stress test's serial replay pin down. The scheduler is single-
/// threaded by design; the engine guards it with its queue lock.

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "serve/admission.hpp"
#include "serve/batch.hpp"

namespace gespmm::serve {

/// Which policy picks the next batch.
enum class SchedulePolicy {
  /// v1 behavior: the oldest pending request (by admission seq,
  /// priority-blind) anchors the batch. Kept as the baseline policy the
  /// fairness bench compares against.
  Fifo,
  /// Deficit round-robin across per-graph queues (the default).
  DeficitRoundRobin,
};

/// "fifo" / "drr".
const char* schedule_policy_name(SchedulePolicy p);

/// Scheduler knobs.
struct SchedulerOptions {
  SchedulePolicy policy = SchedulePolicy::DeficitRoundRobin;
  /// Width credit (output columns) granted per DRR visit. At the default
  /// it matches BatchConstraints::max_batch_n, so a backlogged graph
  /// ships one full-width batch per rotation.
  index_t quantum = 256;
  /// Cap on accumulated credit, bounding the burst an idle-then-busy
  /// graph can ship at once. 0 = auto (4x quantum). The cap never blocks
  /// a head request wider than itself: credit may always grow until the
  /// head fits.
  index_t max_deficit = 0;
};

/// The scheduling-relevant shape of one admitted request.
struct SchedRequest {
  /// Admission sequence number (engine-assigned, strictly increasing).
  std::uint64_t seq = 0;
  /// GraphFingerprint::key() of the registered operand.
  std::uint64_t graph = 0;
  /// Width of the request's feature matrix.
  index_t n = 0;
  ReduceKind reduce = ReduceKind::Sum;
  Priority priority = Priority::Interactive;
  /// A fused whole-model request (Engine::submit_model): it never
  /// coalesces with other requests — one ticket is already a full forward
  /// pass — and its `n` is the model's summed per-layer SpMM width, the
  /// DRR credit the whole pass costs.
  bool model = false;
};

/// Per-graph scheduling counters.
struct GraphServeStats {
  std::uint64_t graph = 0;
  std::uint64_t enqueued = 0;
  /// Requests shipped in batches.
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  /// DRR visits where the graph had pending work but its deficit did not
  /// yet cover the head request (always 0 under Fifo).
  std::uint64_t deferred = 0;
  /// Summed width of served requests — the DRR fairness currency.
  std::uint64_t served_width = 0;
  /// Requests currently pending (snapshot).
  std::uint64_t pending = 0;
};

/// Deterministic cross-graph batch scheduler. Not thread-safe.
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions opt = {}, BatchConstraints limits = {});

  /// Add an admitted request. `seq` values must be distinct and
  /// increasing across calls (the engine's admission counter).
  void enqueue(const SchedRequest& r);

  /// Requests admitted but not yet shipped.
  std::size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }

  /// Pop the next batch: admission seqs of same-(graph, reduce) requests,
  /// in (priority, seq) order. Empty only when nothing is pending.
  std::vector<std::uint64_t> next_batch();

  /// Counters for every graph ever enqueued, in first-seen order.
  std::vector<GraphServeStats> stats() const;

  const SchedulerOptions& options() const { return opt_; }

 private:
  struct Item {
    std::uint64_t seq = 0;
    index_t n = 0;
    ReduceKind reduce = ReduceKind::Sum;
    bool model = false;
  };
  struct GraphQueue {
    std::array<std::deque<Item>, kNumPriorities> q;
    index_t deficit = 0;
    std::size_t pending = 0;
    GraphServeStats stats;
  };

  const Item& head_of(const GraphQueue& gq) const;
  /// Form, remove and account one batch from `gq`, coalescing up to
  /// `allowed` summed width; returns the seqs and sets `total_width`.
  /// `fifo_order` anchors and joins in global admission order (the v1
  /// priority-blind rule); otherwise (priority, seq) order. A model
  /// request always ships alone, whichever role it plays.
  std::vector<std::uint64_t> serve_from(GraphQueue& gq, index_t allowed,
                                        index_t* total_width, bool fifo_order);
  void deactivate(std::uint64_t graph);
  std::vector<std::uint64_t> next_batch_fifo();
  std::vector<std::uint64_t> next_batch_drr();
  index_t deficit_cap(index_t head_n) const;

  SchedulerOptions opt_;
  BatchConstraints limits_;
  std::map<std::uint64_t, GraphQueue> queues_;
  /// Graphs in first-enqueue order (stats order).
  std::vector<std::uint64_t> seen_order_;
  /// Graphs with pending work, in activation order (the DRR ring).
  std::vector<std::uint64_t> ring_;
  std::size_t cursor_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace gespmm::serve
