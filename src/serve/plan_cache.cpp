#include "serve/plan_cache.hpp"

#include "kernels/registry.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::serve {

std::shared_ptr<const CachedPlan> PlanCache::lookup_or_build(
    const PlanKey& raw_key, const Csr& a, const gpusim::DeviceSpec& device,
    bool* was_hit) {
  PlanKey key = raw_key;
  if (opt_.width_quantum > 1) {
    const index_t q = opt_.width_quantum;
    key.n = (key.n + q - 1) / q * q;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = plans_.find(key); it != plans_.end()) {
      ++hits_;
      if (was_hit) *was_hit = true;
      return it->second;
    }
    ++misses_;
  }
  if (was_hit) *was_hit = false;

  // Build outside the lock: a simulated candidate sweep is the expensive
  // part and must not block cache hits on other graphs. Two threads
  // racing the same key both build identical (deterministic) plans; the
  // first insert wins.
  auto plan = std::make_shared<CachedPlan>();
  if (opt_.autotune && key.reduce == ReduceKind::Sum) {
    AutotuneOptions aopt;
    aopt.device = device;
    aopt.sample_blocks = opt_.sample_blocks;
    const AutotuneResult res = autotune_spmm(a, key.n, aopt);
    plan->algo = res.best;
    plan->modelled_ms = res.times_ms.at(res.best);
    plan->autotuned = true;
    plan->gain_over_default = res.gain_over_default;
  } else {
    plan->algo = kernels::select_gespmm_algo(key.n);
    kernels::SpmmProblem p(a, key.n);
    kernels::SpmmRunOptions ro;
    ro.device = device;
    ro.sample = gpusim::SamplePolicy::sampled(opt_.sample_blocks);
    ro.reduce = key.reduce;
    plan->modelled_ms = kernels::run_spmm(plan->algo, p, ro).time_ms();
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = plans_.emplace(key, std::move(plan));
  (void)inserted;
  return it->second;
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

}  // namespace gespmm::serve
