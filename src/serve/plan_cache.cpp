#include "serve/plan_cache.hpp"

#include <algorithm>

#include "kernels/registry.hpp"
#include "kernels/spmm_hybrid.hpp"
#include "kernels/spmm_problem.hpp"

namespace gespmm::serve {

PlanLease& PlanLease::operator=(PlanLease&& o) noexcept {
  if (this != &o) {
    release();
    plan_ = std::move(o.plan_);
    cache_ = o.cache_;
    key_ = std::move(o.key_);
    hit_ = o.hit_;
    o.plan_ = nullptr;
    o.cache_ = nullptr;
    o.hit_ = false;
  }
  return *this;
}

void PlanLease::release() {
  if (cache_ != nullptr) {
    cache_->unpin(key_);
    cache_ = nullptr;
  }
}

PlanKey PlanCache::quantized(const PlanKey& key) const {
  PlanKey q = key;
  if (opt_.width_quantum > 1) {
    const index_t quantum = opt_.width_quantum;
    q.n = (q.n + quantum - 1) / quantum * quantum;
  }
  return q;
}

std::shared_ptr<CachedPlan> PlanCache::build(const PlanKey& key, const Csr& a,
                                             const gpusim::DeviceSpec& device) const {
  auto plan = std::make_shared<CachedPlan>();
  if (opt_.autotune && key.reduce == ReduceKind::Sum) {
    AutotuneOptions aopt;
    aopt.device = device;
    aopt.sample_blocks = opt_.sample_blocks;
    aopt.mode = opt_.selection;
    aopt.retune_regret = opt_.retune_regret;
    const AutotuneResult res = autotune_spmm(a, key.n, aopt);
    plan->algo = res.best;
    plan->modelled_ms = res.times_ms.at(res.best);
    plan->steps = res.steps;
    plan->autotuned = true;
    plan->gain_over_default = res.gain_over_default;
    plan->build_ms = res.build_ms;
    plan->predicted = res.predicted;
    plan->retuned = res.retuned;
    plan->mispredicted = res.mispredicted;
  } else {
    // Non-sum reductions (and autotune=false) skip the tuner sweep but a
    // tuning-enabled cache still routes them through the learned selector
    // so hybrid partitioning stays available for every semiring (the
    // hybrid kernel folds in CSR order, bitwise identical under all of
    // them). autotune=false pins the paper's fixed Fig. 7(c) rule.
    plan->algo = opt_.autotune ? select_spmm_algo(a, key.n, device)
                               : kernels::select_gespmm_algo(key.n);
    kernels::SpmmProblem p(a, key.n);
    kernels::SpmmRunOptions ro;
    ro.device = device;
    ro.sample = gpusim::SamplePolicy::sampled(opt_.sample_blocks);
    ro.reduce = key.reduce;
    if (plan->algo == SpmmAlgo::HybridMma) {
      const auto d = kernels::run_spmm_hybrid_detailed(p, ro);
      if (d.dense_rows > 0) {
        plan->steps.push_back(PlanStep{SpmmAlgo::HybridMma, StepPipe::Mma, 0,
                                       d.dense_rows, d.dense_ms});
      }
      if (d.dense_rows < a.rows) {
        plan->steps.push_back(PlanStep{SpmmAlgo::HybridMma, StepPipe::Simt,
                                       d.dense_rows, a.rows, d.ragged_ms});
      }
      plan->modelled_ms = plan_steps_time_ms(plan->steps);
    } else {
      plan->modelled_ms = kernels::run_spmm(plan->algo, p, ro).time_ms();
      plan->steps = single_step_plan(plan->algo, a.rows, plan->modelled_ms);
    }
  }
  return plan;
}

void PlanCache::note_build(const CachedPlan& plan) {
  if (plan.steps.size() > 1) ++hybrid_builds_;
  if (!plan.autotuned) return;  // fixed-rule builds have no selection story
  if (plan.predicted && !plan.retuned) {
    ++predicted_builds_;
  } else {
    ++exact_builds_;
  }
  if (plan.retuned) ++retunes_;
  if (plan.mispredicted) ++mispredicts_;
}

void PlanCache::touch(Entry& e) {
  lru_.splice(lru_.end(), lru_, e.lru_it);
  e.lru_it = std::prev(lru_.end());
}

void PlanCache::unpin(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it != plans_.end() && it->second.pins > 0) {
    --it->second.pins;
    --pin_count_;
  }
}

PlanLease PlanCache::acquire(const PlanKey& raw_key, const Csr& a,
                             const gpusim::DeviceSpec& device) {
  const PlanKey key = quantized(raw_key);
  if (!opt_.enabled) {
    // Pure build path: nothing is looked up or retained, so every acquire
    // is a miss and every build is handed back uncached. The cold-start
    // benches use this to price planning per request.
    auto plan = build(key, a, device);
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    ++uncached_builds_;
    note_build(*plan);
    return PlanLease(std::move(plan), nullptr, key, false);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = plans_.find(key); it != plans_.end()) {
      ++hits_;
      touch(it->second);
      ++it->second.pins;
      ++pin_count_;
      return PlanLease(it->second.plan, this, key, true);
    }
    ++misses_;
  }

  // Build outside the lock: a simulated candidate sweep is the expensive
  // part and must not block cache hits on other graphs. Two threads
  // racing the same key both build identical (deterministic) plans; the
  // first insert wins.
  auto plan = build(key, a, device);

  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = plans_.find(key); it != plans_.end()) {
    // A racer inserted first; share the resident plan and discard ours.
    // The discarded build stays out of note_build's selection counters —
    // the winner's build already counted, and a duplicate would break the
    // `misses == inserts + uncached_builds + duplicate_builds` ledger.
    ++duplicate_builds_;
    touch(it->second);
    ++it->second.pins;
    ++pin_count_;
    return PlanLease(it->second.plan, this, key, false);
  }
  note_build(*plan);
  while (opt_.max_entries > 0 && plans_.size() >= opt_.max_entries) {
    // Evict the least recently used unpinned plan. The budget is a hard
    // ceiling: if every resident plan is pinned by an in-flight batch,
    // hand the new plan back uncached instead of breaching it.
    auto victim = lru_.begin();
    while (victim != lru_.end() && plans_.at(*victim).pins > 0) ++victim;
    if (victim == lru_.end()) {
      ++uncached_builds_;
      return PlanLease(std::move(plan), nullptr, key, false);
    }
    plans_.erase(*victim);
    lru_.erase(victim);
    ++evictions_;
  }
  auto [it, inserted] = plans_.emplace(key, Entry{plan, 1, lru_.end()});
  (void)inserted;
  it->second.lru_it = lru_.insert(lru_.end(), key);
  ++inserts_;
  ++pin_count_;
  peak_size_ = std::max(peak_size_, plans_.size());
  return PlanLease(std::move(plan), this, key, false);
}

std::shared_ptr<const CachedPlan> PlanCache::lookup_or_build(
    const PlanKey& key, const Csr& a, const gpusim::DeviceSpec& device,
    bool* was_hit) {
  PlanLease lease = acquire(key, a, device);
  if (was_hit) *was_hit = lease.hit();
  return lease.plan();
}

std::size_t PlanCache::invalidate(std::uint64_t graph_key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t erased = 0;
  for (auto it = plans_.begin(); it != plans_.end();) {
    if (it->first.graph == graph_key && it->second.pins == 0) {
      lru_.erase(it->second.lru_it);
      it = plans_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  invalidations_ += erased;
  return erased;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats st;
  st.hits = hits_;
  st.misses = misses_;
  st.inserts = inserts_;
  st.evictions = evictions_;
  st.uncached_builds = uncached_builds_;
  st.predicted_builds = predicted_builds_;
  st.exact_builds = exact_builds_;
  st.retunes = retunes_;
  st.mispredicts = mispredicts_;
  st.hybrid_builds = hybrid_builds_;
  st.duplicate_builds = duplicate_builds_;
  st.invalidations = invalidations_;
  st.size = plans_.size();
  st.peak_size = peak_size_;
  st.pinned = pin_count_;
  return st;
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

std::vector<PlanKey> PlanCache::resident_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlanKey> keys;
  keys.reserve(lru_.size());
  for (const auto& k : lru_) keys.push_back(k);
  return keys;
}

}  // namespace gespmm::serve
