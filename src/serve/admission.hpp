#pragma once
/// \file admission.hpp
/// Admission control for the serving engine: per-request service classes,
/// per-tenant shed thresholds, a bounded pending queue, per-request
/// deadlines, and load shedding with typed reject reasons.
///
/// A long-lived daemon must bound its pending work: an unbounded queue
/// turns overload into unbounded memory growth and unbounded latency for
/// everyone. The controller sheds load *by class* — best-effort traffic
/// is dropped first, batch next, interactive only once the queue is
/// hard-full — so the least latency-critical traffic absorbs the
/// pressure. Each tenant carries its own shed fractions (see
/// `TenantConfig`), so one tenant's tolerance for shedding does not leak
/// into another's contract.
///
/// Deadlines shed *by time*: a request whose absolute deadline (a
/// virtual-clock stamp, ms) is already at or past the engine's virtual
/// now can never complete in time — executing it would only burn device
/// time that on-time requests need — so it sheds with
/// `ShedReason::DeadlineExceeded` before any occupancy check runs.
///
/// Decisions are pure functions of (current occupancy, request priority,
/// tenant limits, deadline, virtual now): no wall clock, no randomness,
/// so a fixed submission order against a fixed virtual clock always sheds
/// exactly the same requests and tests can pin outcomes as goldens.

#include <array>
#include <cstddef>
#include <cstdint>

namespace gespmm::serve {

/// Request service class, ordered from most to least latency-critical.
enum class Priority : int {
  /// User-facing inference; shed only when the queue is hard-full.
  Interactive = 0,
  /// Throughput-oriented work (precompute, training epochs); shed once
  /// occupancy crosses the tenant's `batch_shed_fraction`.
  Batch = 1,
  /// Scavenger traffic; shed once occupancy crosses the tenant's
  /// `best_effort_shed_fraction`.
  BestEffort = 2,
};

inline constexpr std::size_t kNumPriorities = 3;

/// Why an admission decision shed a request.
enum class ShedReason {
  /// Admitted — not shed.
  None = 0,
  /// The pending queue is at `max_pending`; every class sheds.
  QueueFull,
  /// Occupancy is above this service class's shed threshold.
  PriorityShed,
  /// The request's absolute deadline is at or before the virtual clock:
  /// it cannot possibly complete in time, so it sheds before occupancy
  /// is even considered.
  DeadlineExceeded,
};

/// "interactive" / "batch" / "best-effort" — for logs and stats dumps.
const char* priority_name(Priority p);

/// "none" / "queue-full" / "priority-shed" / "deadline-exceeded".
const char* shed_reason_name(ShedReason r);

/// One tenant's service contract: its weighted-DRR share and the shed
/// thresholds its traffic is admitted under. The engine takes a map of
/// these in `ServeOptions::tenants`; the defaults reproduce the previous
/// single-tenant behaviour bitwise.
struct TenantConfig {
  /// Relative width-credit weight for the deficit-round-robin scheduler:
  /// a share-3 tenant earns 3x the per-visit quantum of a share-1 tenant.
  /// Must be positive and finite (validated at engine construction).
  double share = 1.0;
  /// Occupancy fraction (of `AdmissionOptions::max_pending`) at which
  /// this tenant's Batch requests shed.
  double batch_shed_fraction = 0.75;
  /// Occupancy fraction at which this tenant's BestEffort requests shed.
  double best_effort_shed_fraction = 0.5;
};

/// Engine-wide queue bound (per-class thresholds live per tenant in
/// `TenantConfig`).
struct AdmissionOptions {
  /// Hard cap on requests pending in the scheduler (admitted but not yet
  /// dispatched). At this occupancy even interactive requests shed.
  std::size_t max_pending = 1024;
};

/// Outcome of one admission check.
struct AdmissionDecision {
  bool admitted = true;
  ShedReason reason = ShedReason::None;
};

/// Pure admission policy: may a request of class `p` from a tenant with
/// contract `tenant` join a queue that currently holds `pending`
/// requests, given that it must complete by absolute virtual-clock stamp
/// `deadline_ms` (0 = no deadline) and the clock already reads `now_ms`?
/// Deterministic and stateless — the unit-testable core of the
/// controller. Shed order: deadline first, then queue-full, then the
/// class threshold.
AdmissionDecision admit_request(Priority p, std::size_t pending,
                                const AdmissionOptions& opt,
                                const TenantConfig& tenant = {},
                                double deadline_ms = 0.0, double now_ms = 0.0);

/// Per-class admitted/shed counters (indexed by Priority).
struct AdmissionStats {
  std::array<std::uint64_t, kNumPriorities> admitted{};
  std::array<std::uint64_t, kNumPriorities> shed{};
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_priority = 0;
  /// Requests shed because their deadline had already passed at submit.
  std::uint64_t shed_deadline = 0;

  std::uint64_t total_admitted() const;
  std::uint64_t total_shed() const;
};

/// Stateful wrapper: applies `admit_request` and counts outcomes. Not
/// thread-safe on its own; the engine calls it under its queue lock.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions opt = {}) : opt_(opt) {}

  /// Decide and record the outcome for one request.
  AdmissionDecision admit(Priority p, std::size_t pending,
                          const TenantConfig& tenant = {},
                          double deadline_ms = 0.0, double now_ms = 0.0);

  const AdmissionStats& stats() const { return stats_; }
  const AdmissionOptions& options() const { return opt_; }

 private:
  AdmissionOptions opt_;
  AdmissionStats stats_;
};

}  // namespace gespmm::serve
