#pragma once
/// \file admission.hpp
/// Admission control for the serving engine: per-request service classes,
/// a bounded pending queue, and load shedding with typed reject reasons.
///
/// A long-lived daemon must bound its pending work: an unbounded queue
/// turns overload into unbounded memory growth and unbounded latency for
/// everyone. The controller sheds load *by class* — best-effort traffic
/// is dropped first, batch next, interactive only once the queue is
/// hard-full — so the least latency-critical traffic absorbs the
/// pressure. Decisions are pure functions of (current occupancy, request
/// priority, limits): no wall clock, no randomness, so a fixed
/// submission order always sheds exactly the same requests and tests can
/// pin outcomes as goldens.

#include <array>
#include <cstddef>
#include <cstdint>

namespace gespmm::serve {

/// Request service class, ordered from most to least latency-critical.
enum class Priority : int {
  /// User-facing inference; shed only when the queue is hard-full.
  Interactive = 0,
  /// Throughput-oriented work (precompute, training epochs); shed once
  /// occupancy crosses `AdmissionOptions::batch_shed_fraction`.
  Batch = 1,
  /// Scavenger traffic; shed once occupancy crosses
  /// `AdmissionOptions::best_effort_shed_fraction`.
  BestEffort = 2,
};

inline constexpr std::size_t kNumPriorities = 3;

/// Why an admission decision shed a request.
enum class ShedReason {
  /// Admitted — not shed.
  None = 0,
  /// The pending queue is at `max_pending`; every class sheds.
  QueueFull,
  /// Occupancy is above this service class's shed threshold.
  PriorityShed,
};

/// "interactive" / "batch" / "best-effort" — for logs and stats dumps.
const char* priority_name(Priority p);

/// "none" / "queue-full" / "priority-shed".
const char* shed_reason_name(ShedReason r);

/// Queue bound and per-class shed thresholds.
struct AdmissionOptions {
  /// Hard cap on requests pending in the scheduler (admitted but not yet
  /// dispatched). At this occupancy even interactive requests shed.
  std::size_t max_pending = 1024;
  /// Occupancy fraction (of `max_pending`) at which Batch requests shed.
  double batch_shed_fraction = 0.75;
  /// Occupancy fraction at which BestEffort requests shed.
  double best_effort_shed_fraction = 0.5;
};

/// Outcome of one admission check.
struct AdmissionDecision {
  bool admitted = true;
  ShedReason reason = ShedReason::None;
};

/// Pure admission policy: may a request of class `p` join a queue that
/// currently holds `pending` requests? Deterministic and stateless — the
/// unit-testable core of the controller.
AdmissionDecision admit_request(Priority p, std::size_t pending,
                                const AdmissionOptions& opt);

/// Per-class admitted/shed counters (indexed by Priority).
struct AdmissionStats {
  std::array<std::uint64_t, kNumPriorities> admitted{};
  std::array<std::uint64_t, kNumPriorities> shed{};
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_priority = 0;

  std::uint64_t total_admitted() const;
  std::uint64_t total_shed() const;
};

/// Stateful wrapper: applies `admit_request` and counts outcomes. Not
/// thread-safe on its own; the engine calls it under its queue lock.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions opt = {}) : opt_(opt) {}

  /// Decide and record the outcome for one request.
  AdmissionDecision admit(Priority p, std::size_t pending);

  const AdmissionStats& stats() const { return stats_; }
  const AdmissionOptions& options() const { return opt_; }

 private:
  AdmissionOptions opt_;
  AdmissionStats stats_;
};

}  // namespace gespmm::serve
