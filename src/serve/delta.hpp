#pragma once
/// \file delta.hpp
/// Batched edge insert/delete overlays against a registered CSR — the
/// dynamic-graph update path of the serving engine.
///
/// A streaming workload mutates its graph in small batches while requests
/// keep flowing; re-registering the whole operand per batch would pay an
/// O(nnz) fingerprint pass, a full shard re-plan and a cold plan build for
/// every shard on every update. A `DeltaOverlay` instead holds only the
/// *touched rows* in their post-update form: requests execute against the
/// unchanged base CSR and then overwrite the touched rows' output slice
/// from a patch kernel run, which is bitwise identical to running the
/// fully materialized (compacted) CSR because both see the same canonical
/// per-row storage order (see below). Once the overlay grows past a
/// configurable fraction of the base nnz, the engine *compacts*: the
/// overlay is folded into a fresh CSR, the overlay empties, and plan
/// identities roll forward (see GraphFingerprint::version).
///
/// Canonical row order: the first time a row is pulled into the overlay
/// its entries are re-sorted to ascending column order (duplicate columns
/// summed). The materialized CSR copies untouched base rows verbatim and
/// touched rows from the overlay, so overlay execution and post-compaction
/// execution run identical per-row accumulation orders — the bitwise
/// contract `bench_serve_dynamic` and the dynamic test suite pin. A base
/// whose rows are already sorted (every dataset generator here) keeps its
/// exact values; an unsorted base changes only the touched rows' summation
/// order, never the result's mathematical value.
///
/// Overlays are immutable: `apply` returns a fresh overlay folding one
/// more batch over a previous one, so in-flight requests keep executing
/// the snapshot they captured at submit while the registry moves on.

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/fingerprint.hpp"

namespace gespmm::serve {

using sparse::value_t;

/// One batch of edge mutations against a registered graph. Inserts are
/// upserts: an edge that already exists has its value overwritten.
/// Deletes must name an existing edge (of the *effective* graph, overlay
/// included) or `DeltaOverlay::apply` throws std::invalid_argument — a
/// silent no-op delete would let producer/consumer drift go unnoticed.
/// Within one batch, inserts apply before deletes.
struct EdgeBatch {
  struct Edge {
    index_t row = 0;
    index_t col = 0;
    value_t val = 0.0f;
  };
  struct EdgeRef {
    index_t row = 0;
    index_t col = 0;
  };
  std::vector<Edge> inserts;
  std::vector<EdgeRef> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
};

/// When the engine folds an overlay back into a fresh CSR.
struct DeltaOptions {
  /// Compact once the overlay's resident nnz exceeds this fraction of the
  /// base CSR's nnz. Smaller = fresher plans but more O(nnz) compaction
  /// passes; 0 compacts on every update (the always-re-register baseline
  /// bench_serve_dynamic beats).
  double compact_nnz_fraction = 0.25;
};

/// An immutable set of touched rows in their post-update form, held as a
/// compact CSR "patch" plus the base row index of each patch row.
class DeltaOverlay {
 public:
  /// Fold `batch` over `prev` (nullptr = clean graph) against `base`.
  /// Validates every reference against the base shape and the
  /// delete-must-exist contract; throws std::invalid_argument on a
  /// violation, in which case no overlay is produced (strong guarantee).
  static std::shared_ptr<const DeltaOverlay> apply(const Csr& base,
                                                   const DeltaOverlay* prev,
                                                   const EdgeBatch& batch);

  /// Base row index of each patch row, ascending. A row stays touched for
  /// the overlay's lifetime even if an update restores its base content.
  const std::vector<index_t>& rows() const { return rows_; }

  /// The touched rows as a standalone CSR: rows().size() rows, the base's
  /// column count, each row in canonical ascending-column order. Running
  /// the host kernel on it yields the touched rows of the effective
  /// output; scattering those over the base kernel's output is the
  /// engine's merged-at-execution-time path.
  const Csr& patch() const { return patch_; }

  /// Resident overlay nnz (the compaction-policy quantity).
  index_t overlay_nnz() const { return patch_.nnz(); }

  /// nnz of the effective (base + overlay) graph.
  index_t effective_nnz(const Csr& base) const;

  /// True when any touched row falls in [row_begin, row_end) — the
  /// shard-replan predicate.
  bool touches(index_t row_begin, index_t row_end) const;

  /// The full effective CSR: untouched base rows verbatim, touched rows
  /// from the patch. One O(nnz) pass — the compaction step.
  Csr materialize(const Csr& base) const;

  /// Rows [row_begin, row_end) of the effective CSR as a standalone
  /// rebased slice (the shard slice-rebuild input; same layout contract
  /// as GraphShard::csr).
  Csr materialize_rows(const Csr& base, index_t row_begin,
                       index_t row_end) const;

 private:
  DeltaOverlay() = default;

  std::vector<index_t> rows_;
  Csr patch_;
};

}  // namespace gespmm::serve
