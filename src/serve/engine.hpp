#pragma once
/// \file engine.hpp
/// The batched SpMM serving engine: concurrent submit/wait execution of
/// SpMM requests with multi-tenant admission control, deadline shedding,
/// cross-graph weighted-fair scheduling, plan-cache reuse, same-graph
/// batching, and cross-device sharding of oversized graphs.
///
/// Request lifecycle:
///  1. `register_graph` fingerprints a CSR operand and stores it once
///     (re-registering an identical operand returns the existing handle).
///     An operand whose footprint exceeds the device capacity is
///     row-partitioned across the whole device group at registration time
///     (see shard.hpp and `ShardingOptions`);
///  2. `submit` takes a `SubmitOptions` aggregate (reduce, priority,
///     tenant, deadline) and checks admission (see admission.hpp): a shed
///     request's ticket completes *immediately* with
///     `RequestStatus::Shed` and a typed `ShedReason` — including
///     `DeadlineExceeded` when the deadline already passed on the virtual
///     clock; an admitted request enters its (graph, tenant) scheduler
///     queue and returns a pending `Ticket`;
///  3. worker threads pull batches from the scheduler (weighted deficit
///     round-robin across (graph, tenant) queues by default, each
///     tenant's width-credit quantum proportional to its configured
///     share — see scheduler.hpp), coalescing same-graph same-reduce
///     same-tenant requests into one multi-feature SpMM and
///     round-robining batches across the configured simulated devices;
///  4. each batch executes through a `PlanCache`d kernel plan (LRU-
///     bounded, pinned while the batch is in flight): values are computed
///     on the host (bitwise identical to per-request `gespmm::spmm`,
///     column order is preserved), device time is the plan's
///     block-sampled modelled time. A batch on a *sharded* graph runs
///     scatter/gather instead: every shard's slice executes on its own
///     device in parallel (each with its own shard-qualified plan), halo
///     rows of B are priced as a modelled interconnect gather, and the
///     merged output is bitwise identical to the unsharded kernel;
///  5. `Ticket::wait` blocks for the request's `RequestResult`.
///
/// Model serving (`register_model` / `submit_model`) promotes the unit of
/// service from one SpMM to one forward pass: a registered model compiles
/// to a `ModelPlan` (see model_plan.hpp) and a single ticket runs every
/// layer as a fused SpMM→GEMM chain — per-layer plans come from the same
/// `PlanCache` (shared across layers, models and plain SpMM traffic),
/// intermediates recycle through a `ModelArena`, and the scheduler prices
/// the ticket at the model's total SpMM width. Model requests never
/// coalesce with other requests; output values are bitwise identical to
/// composing per-layer `submit` calls with the host-side dense
/// transforms, only the modelled time differs (the fusion win). Models
/// aggregate over one device's resident CSR, so they cannot (yet) be
/// registered against a sharded graph.
///
/// Dynamic graphs (`apply_update`) keep a registered operand live under
/// streaming edge inserts/deletes: batches fold into a per-graph delta
/// overlay (merged into outputs at execution time), the graph's
/// fingerprint *version* bumps so plan and batch identities roll forward,
/// stale plans are invalidated targeted (only the updated graph's keys —
/// only the touched shards' keys when sharded), and the overlay
/// periodically compacts into a fresh CSR. Handles stay stable; requests
/// in flight across an update execute the snapshot they captured.
///
/// Ticket contract for shed requests: `wait()` NEVER throws and never
/// blocks — it returns a `RequestResult` with `status ==
/// RequestStatus::Shed`, the shedding `ShedReason`, and an empty (0 x 0)
/// output matrix. Callers distinguish outcomes by `status`, not by
/// exception. (`submit` itself still throws std::runtime_error once the
/// engine is shut down, and std::invalid_argument for malformed input or
/// an unknown tenant — those are caller errors, not load conditions.)
///
/// `shutdown()` (also run by the destructor) stops admission, drains every
/// *admitted* request, and joins the workers — no admitted request is
/// ever dropped, and every shed ticket was already complete at submit.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/batch.hpp"
#include "serve/delta.hpp"
#include "serve/fingerprint.hpp"
#include "serve/model_plan.hpp"
#include "serve/plan_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard.hpp"

namespace gespmm::serve {

using kernels::DenseMatrix;

/// When and how `register_graph` shards an oversized operand across the
/// device group. Sharding triggers only when the operand does not fit one
/// device, so small-graph behaviour is bitwise unchanged.
struct ShardingOptions {
  /// Per-device CSR residency budget in bytes. 0 (the default) means the
  /// smallest `DeviceSpec::dram_bytes` across the configured devices —
  /// with the stock presets that is gigabytes, so only genuinely huge
  /// operands shard. Tests and benches set a small explicit budget to
  /// force sharding at their scale.
  std::size_t device_capacity_bytes = 0;
  /// Modelled bandwidth (GB/s) of the device interconnect the gather
  /// stage moves halo rows of B over. NVLink-class by default.
  double interconnect_gbps = 300.0;
};

/// Engine configuration.
struct ServeOptions {
  /// Simulated devices batches round-robin across (default: both of the
  /// paper's machines, GTX 1080Ti and RTX 2080). A sharded graph spans
  /// *all* of them: shard i executes on devices[i].
  std::vector<gpusim::DeviceSpec> devices;
  /// Worker threads draining the queue.
  int num_workers = 2;
  /// Coalescing limits (see batch.hpp).
  BatchConstraints batch;
  /// Plan construction + retention policy (see plan_cache.hpp).
  PlanCacheOptions plan;
  /// Engine-wide admission queue bound (see admission.hpp; per-tenant
  /// shed thresholds live in `tenants`).
  AdmissionOptions admission;
  /// Cross-queue scheduling policy (see scheduler.hpp). Its
  /// `tenant_shares` vector is filled by the engine from `tenants`.
  SchedulerOptions scheduler;
  /// The tenant roster: service contracts keyed by tenant name. Requests
  /// name their tenant in `SubmitOptions::tenant`; submitting under an
  /// unregistered name throws. Defaults to a single "default" tenant with
  /// share 1.0 and the classic shed fractions, which reproduces the
  /// previous single-tenant behaviour bitwise. Shares must be positive
  /// and finite (validated at engine construction).
  std::map<std::string, TenantConfig> tenants;
  /// Cross-device sharding policy for oversized graphs.
  ShardingOptions sharding;
  /// Dynamic-update policy: when `apply_update` overlays compact back
  /// into a fresh CSR (see delta.hpp).
  DeltaOptions delta;
  /// Construct with workers parked: nothing executes until `start()` (or
  /// `shutdown()`, which drains). Deterministic harnesses use this to
  /// fix batch composition independent of submission timing.
  bool start_paused = false;

  ServeOptions();  // defaults to {gtx1080ti, rtx2080} + a "default" tenant
};

/// Per-request submission parameters — one aggregate for `submit` and
/// `submit_model` instead of growing positional-default tails. Use
/// designated initializers at call sites:
/// `eng.submit(id, b, {.priority = Priority::Batch, .deadline_ms = 5.0})`.
struct SubmitOptions {
  /// Reduction of the SpMM-like operation (ignored by `submit_model`,
  /// which takes its reduce from the registered model spec).
  ReduceKind reduce = ReduceKind::Sum;
  /// Service class for admission and in-queue ordering.
  Priority priority = Priority::Interactive;
  /// Tenant the request bills to; must name an entry of
  /// `ServeOptions::tenants` or `submit` throws std::invalid_argument.
  std::string tenant = "default";
  /// Absolute virtual-clock completion deadline in ms; 0 = no deadline.
  /// A request whose deadline is at or before the clock at submit time is
  /// shed with `ShedReason::DeadlineExceeded`; one that completes later
  /// than its deadline reports `RequestResult::deadline_met == false`
  /// (completing exactly *at* the deadline counts as met).
  double deadline_ms = 0.0;
};

/// Handle to a registered graph; cheap to copy, valid for the engine's
/// lifetime.
struct GraphId {
  /// GraphFingerprint::key() of the operand.
  std::uint64_t key = 0;
};

/// Handle to a registered model; cheap to copy, valid for the engine's
/// lifetime.
struct ModelId {
  /// ModelPlan::key — content fingerprint over (graph, kind, parameters).
  std::uint64_t key = 0;
};

/// A registered model: its compiled plan, its parameters, and the graph
/// it aggregates over. Immutable once compiled; shared between the
/// registry, in-flight requests and introspecting callers.
struct RegisteredModel {
  ModelPlan plan;
  ModelSpec spec;
  /// The adjacency *snapshot* this compilation aggregates over — an
  /// explicit shared_ptr hold, not a registry lookup. `apply_update`
  /// rebinds the registry entry to a recompiled model over the new graph
  /// state, but an in-flight `submit_model` ticket that captured this
  /// RegisteredModel keeps both the plan and this CSR alive and
  /// consistent until it completes: model tickets racing an update
  /// execute the version they were admitted against.
  std::shared_ptr<const Csr> graph;
};

/// How a request finished.
enum class RequestStatus {
  /// Executed; `RequestResult::c` holds the output.
  Ok = 0,
  /// Shed by admission control; `RequestResult::c` is empty (0 x 0) and
  /// `shed_reason` says why. The ticket completed at submit time.
  Shed,
};

/// What a completed request gets back.
struct RequestResult {
  /// Ok or Shed — check before touching `c`.
  RequestStatus status = RequestStatus::Ok;
  /// Why admission shed the request (None when status == Ok).
  ShedReason shed_reason = ShedReason::None;
  /// Service class the request was submitted with.
  Priority priority = Priority::Interactive;
  /// Tenant the request was billed to.
  std::string tenant;
  /// Aggregated output, rows x n, row-major — bitwise identical to what
  /// `gespmm::spmm` would have produced for this request alone (sharded
  /// or not). Empty when the request was shed.
  DenseMatrix c;
  /// Kernel the serving plan selected for the *batch* this request rode
  /// in (shard 0's plan for a sharded graph).
  SpmmAlgo algo = SpmmAlgo::GeSpMM;
  /// The row-partition step list of that plan (shard 0's for a sharded
  /// graph, the last layer's for a model request): one step for a
  /// single-kernel plan, the dense-MMA + ragged-SIMT pair when the plan
  /// compiled to density-partitioned hybrid execution. Step times sum to
  /// the plan's modelled time (before batching/width proration). Empty
  /// for a shed request.
  std::vector<PlanStep> plan_steps;
  /// Device preset name the batch was dispatched to (the first shard
  /// device for a sharded graph — see `shards`).
  std::string device;
  /// This request's width-proportional share of the batch's modelled
  /// kernel time (ms), priced at the plan's (quantized) width — see
  /// PlanCacheOptions::width_quantum. For a sharded batch this is the
  /// width share of the *makespan* (slowest shard incl. its gather).
  double modelled_ms = 0.0;
  /// The dispatched device's cumulative modelled time (ms) when this
  /// request's batch finished — a deterministic virtual-clock completion
  /// stamp, the quantity latency percentiles are computed over. For a
  /// sharded batch: the busiest participating device's clock.
  double completed_at_ms = 0.0;
  /// The deadline the request was submitted with (0 = none).
  double deadline_ms = 0.0;
  /// True when the request had no deadline or completed at or before it
  /// (`completed_at_ms <= deadline_ms`). False for a completed-late
  /// request and for a deadline-shed one.
  bool deadline_met = true;
  /// Whether the batch's plan came out of the cache (all shard plans, for
  /// a sharded batch).
  bool plan_cache_hit = false;
  /// Number of requests coalesced into the batch (1 = ran alone; 0 for a
  /// shed request).
  int batch_size = 1;
  /// Device shards the batch scattered across (0 = unsharded).
  int shards = 0;
  /// For a `submit_model` ticket: layers the fused forward pass ran
  /// (0 for a plain SpMM request). `c` is then the num_nodes x out_feats
  /// output of the last layer and `modelled_ms` the *fused* whole-pass
  /// time.
  int model_layers = 0;
  /// For a `submit_model` ticket: what the same pass would have cost as
  /// layer-by-layer composition (separate SpMM / GEMM / epilogue
  /// launches). Always > `modelled_ms`; 0 for plain requests.
  double composed_ms = 0.0;
};

/// What one `Engine::apply_update` call did — returned to the caller so
/// streaming producers can observe compaction and invalidation behaviour
/// without polling stats.
struct UpdateReport {
  /// The graph's fingerprint version after this update (bumps by 1 per
  /// applied batch, monotonic across compactions).
  std::uint64_t version = 0;
  /// The overlay crossed `DeltaOptions::compact_nnz_fraction` and was
  /// folded into a fresh CSR (resetting the overlay to empty).
  bool compacted = false;
  /// Shard slices rebuilt: the shards whose row ranges the batch touched,
  /// or all of them on a compaction re-plan. 0 for an unsharded graph.
  int shards_replanned = 0;
  /// Stale plan-cache entries erased by the update's targeted
  /// invalidation (pinned entries survive; see PlanCache::invalidate).
  std::size_t plans_invalidated = 0;
  /// Overlay nnz resident after the update (0 right after a compaction).
  index_t overlay_nnz = 0;
};

namespace detail {
/// Shared state between a Ticket and the worker that fulfills it.
struct RequestState {
  /// The graph's *current* (version-bearing) fingerprint key at submit
  /// time — the plan-cache and coalescing identity, so requests straddling
  /// an update never share a batch.
  std::uint64_t graph_key = 0;
  std::uint64_t seq = 0;
  std::shared_ptr<const Csr> graph;
  /// Pending edge overlay snapshot (nullptr when the graph is clean);
  /// execute_batch merges its touched rows over the base kernel's output.
  std::shared_ptr<const DeltaOverlay> overlay;
  /// Set when the graph is sharded: the execution plan for the scatter/
  /// gather path.
  std::shared_ptr<const ShardPlan> shards;
  /// Set for whole-model requests (`b` is then the input feature matrix).
  std::shared_ptr<const RegisteredModel> model;
  DenseMatrix b;
  ReduceKind reduce = ReduceKind::Sum;
  Priority priority = Priority::Interactive;
  std::uint32_t tenant = 0;
  std::string tenant_name;
  double deadline_ms = 0.0;
  /// Width the scheduler billed (b.cols, or the model's total SpMM
  /// width) — the per-tenant served_width currency.
  index_t sched_width = 0;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  RequestResult result;

  void fulfill(RequestResult r);
  const RequestResult& wait();
};
}  // namespace detail

/// Future-like handle for one submitted request.
class Ticket {
 public:
  Ticket() = default;

  /// Block until the request completes; the result stays owned by the
  /// ticket and is valid for its lifetime. Never throws: a shed request
  /// yields `status == RequestStatus::Shed` (already complete at submit),
  /// an executed one `RequestStatus::Ok`.
  const RequestResult& wait() const { return state_->wait(); }

  /// Non-blocking completion probe (true immediately for shed requests).
  bool ready() const;

  /// False for a default-constructed ticket.
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Engine;
  explicit Ticket(std::shared_ptr<detail::RequestState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Per-device dispatch counters.
struct DeviceServeStats {
  std::string device;
  /// Requests whose work ran on this device. A sharded request counts on
  /// every participating device (its shards all ran), so across devices
  /// these sum to >= `EngineStats::completed` when sharding is active.
  std::uint64_t requests = 0;
  /// Batch (or shard) kernel launches dispatched to this device.
  std::uint64_t batches = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Sum of modelled batch kernel times dispatched to this device (ms),
  /// including modelled gather time for shard launches — this device's
  /// virtual clock.
  double modelled_ms = 0.0;
};

/// Per-tenant service counters, in `ServeOptions::tenants` (sorted-name)
/// order.
struct TenantServeStats {
  std::string tenant;
  /// Configured DRR share.
  double share = 1.0;
  /// Requests admitted for this tenant.
  std::uint64_t submitted = 0;
  /// Requests completed (executed) for this tenant.
  std::uint64_t completed = 0;
  /// Requests shed at admission for this tenant.
  std::uint64_t shed = 0;
  /// Summed width of completed requests — the weighted-DRR fairness
  /// currency, proportional to `share` across backlogged tenants.
  std::uint64_t served_width = 0;
};

/// Snapshot of engine-wide counters (consistent: taken under one lock).
///
/// Counting contract (pinned by the EngineStatsCountingContract golden):
///  - `submitted`, `completed`, `shed` count *requests*, each exactly
///    once: every submit/submit_model call lands in exactly one of
///    `submitted` (admitted) or `shed` (rejected), and every admitted
///    request is eventually counted once in `completed`.
///  - `model_requests` is a *view*, not a disjoint bucket: the subset of
///    `submitted` that came through submit_model. Plain-SpMM admits are
///    therefore `submitted - model_requests`. Nothing is double-counted.
///  - `admission.total_admitted() == submitted` and
///    `admission.total_shed() == shed` always.
///  - Per-tenant rows in `tenants` partition the same totals.
struct EngineStats {
  std::uint64_t graphs_registered = 0;
  /// register_graph() calls answered by an already-registered operand.
  std::uint64_t register_dedup_hits = 0;
  /// Registered graphs that were row-partitioned across the device group.
  std::uint64_t graphs_sharded = 0;
  /// apply_update() calls (edge batches folded into overlays).
  std::uint64_t graph_updates = 0;
  /// Updates whose overlay crossed the compaction fraction and was folded
  /// into a fresh CSR.
  std::uint64_t graph_compactions = 0;
  /// Shard slices rebuilt by updates (touched shards only, all shards on
  /// a compaction re-plan).
  std::uint64_t shards_replanned = 0;
  /// Stale plan-cache entries erased by targeted invalidation — mirrored
  /// from PlanCacheStats::invalidations.
  std::uint64_t plan_invalidations = 0;
  std::uint64_t models_registered = 0;
  /// register_model() calls answered by an identical registered model.
  std::uint64_t model_register_dedup_hits = 0;
  /// Whole-model requests admitted via submit_model — a subset of
  /// `submitted` (each such request is counted once in both; see the
  /// counting contract above). Each completes as one single-request
  /// batch.
  std::uint64_t model_requests = 0;
  /// Total modelled time fusion saved versus layer-by-layer composition
  /// across all completed model requests (sum of composed - fused, ms).
  double fused_saved_ms = 0.0;
  /// Requests admitted into the scheduler (shed requests are counted in
  /// `shed` / `admission`, not here).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Requests rejected by admission control (their tickets completed
  /// immediately with RequestStatus::Shed).
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  /// Requests that shared their batch with at least one other request.
  std::uint64_t coalesced_requests = 0;
  /// Completed requests that finished after their deadline (deadline-shed
  /// requests never ran and are in `admission.shed_deadline` instead).
  std::uint64_t deadline_missed = 0;
  /// Shard kernel launches (a batch on an S-way sharded graph adds S).
  std::uint64_t shard_launches = 0;
  /// Total modelled interconnect time gathering halo rows of B for shard
  /// launches (ms); included in `modelled_ms`.
  double gather_ms = 0.0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Modelled device time spent *selecting* kernels on cold plan misses —
  /// the exact sweep's profiling runs beyond the winner, charged to the
  /// requesting device's clock (see CachedPlan::build_ms). 0 under the
  /// default Predict selection mode; included in `modelled_ms`.
  double plan_build_ms = 0.0;
  /// Plan-selection telemetry mirrored from the plan cache (see
  /// PlanCacheStats): tuner builds decided by the trained predictor vs.
  /// the exact sweep, retune escalations, and confirmed mispredicts —
  /// the online-refinement feedback loop's counters.
  std::uint64_t plan_predicted_builds = 0;
  std::uint64_t plan_exact_builds = 0;
  std::uint64_t plan_retunes = 0;
  std::uint64_t plan_mispredicts = 0;
  /// Fresh plan builds that compiled to a multi-step (density-partitioned
  /// hybrid) plan — mirrored from PlanCacheStats::hybrid_builds.
  std::uint64_t plan_hybrid_builds = 0;
  /// Total modelled device time across all batches (ms) — the serving
  /// cost metric bench_serve_throughput compares across policies. Equals
  /// the sum of the per-device clocks; concurrent-device wall time is the
  /// *busiest* device's clock (the makespan), not this sum.
  double modelled_ms = 0.0;
  /// One entry per configured device, in ServeOptions::devices order.
  std::vector<DeviceServeStats> devices;
  /// Per-class admission counters.
  AdmissionStats admission;
  /// Per-tenant counters, in sorted tenant-name order.
  std::vector<TenantServeStats> tenants;
  /// Per-(graph, tenant) scheduling counters (served/deferred/pending),
  /// in first-submission order.
  std::vector<GraphServeStats> graphs;
};

/// The serving engine. Thread-safe: any thread may register, submit and
/// wait concurrently.
class Engine {
 public:
  explicit Engine(ServeOptions opt = ServeOptions());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validate + fingerprint `a` and store it (one copy per distinct
  /// operand; identical re-registrations dedup). An operand larger than
  /// the per-device capacity (see ShardingOptions) is row-partitioned
  /// across all configured devices; throws std::runtime_error when it
  /// cannot be made to fit (single device, or a shard still oversized).
  /// Throws std::runtime_error on malformed CSR.
  GraphId register_graph(const Csr& a);

  /// The *effective* operand for `id`: the registered CSR with any
  /// pending update overlay folded in (an O(nnz) materialization when an
  /// overlay is resident; the stored CSR otherwise). Throws
  /// std::invalid_argument for an unknown handle.
  std::shared_ptr<const Csr> graph(GraphId id) const;

  /// The current fingerprint of `id`, version included — `key()` of the
  /// returned value is the identity plan-cache keys and batches are
  /// formed under right now (it moves with every update; `GraphId::key`
  /// is the stable handle and never changes). Throws
  /// std::invalid_argument for an unknown handle.
  GraphFingerprint graph_fingerprint(GraphId id) const;

  /// The shard plan for `id`, or nullptr when the graph fits one device
  /// and is served unsharded. Throws std::invalid_argument for an unknown
  /// handle.
  std::shared_ptr<const ShardPlan> shard_plan(GraphId id) const;

  /// Compile `spec` against a registered graph into an execution plan and
  /// store it (content-identical re-registrations dedup, like graphs).
  /// Throws std::invalid_argument for an unknown graph handle, a spec
  /// whose layer shapes do not chain, or a sharded graph (models need the
  /// whole operand resident on one device).
  ModelId register_model(GraphId graph, ModelSpec spec);

  /// The registered model for `id` (plan + parameters + graph). Throws
  /// std::invalid_argument for an unknown handle.
  std::shared_ptr<const RegisteredModel> model(ModelId id) const;

  /// Enqueue C = A(id) (*) b under the given submission options. `b` must
  /// have A.cols rows and be row-major. Throws std::invalid_argument on
  /// shape/layout mismatch, unknown handle or unknown tenant,
  /// std::runtime_error after shutdown. Under load (or past its deadline)
  /// the request may be shed instead of queued: the returned ticket is
  /// then already complete with RequestStatus::Shed (see the file comment
  /// for the full ticket contract).
  Ticket submit(GraphId id, DenseMatrix b, const SubmitOptions& options = {});

  /// Enqueue one whole forward pass of model `id` over `features`
  /// (num_nodes x in_feats, row-major) — one ticket covers every layer,
  /// executed as a fused SpMM→GEMM chain with cross-layer plan-cache and
  /// intermediate-buffer reuse. The request flows through the same
  /// admission control and scheduler as plain submits, costed at the
  /// model's total SpMM width; it never coalesces with other requests.
  /// `options.reduce` is ignored (the model spec owns its reduce). Same
  /// exception/shed contract as `submit`.
  Ticket submit_model(ModelId id, DenseMatrix features,
                      const SubmitOptions& options = {});

  /// Apply one batch of edge mutations to a registered graph, in place:
  /// the batch folds into the graph's delta overlay (see delta.hpp), the
  /// fingerprint version bumps (so the current plan/batch identity rolls
  /// forward), stale plan-cache entries are invalidated *targeted* — only
  /// this graph's keys, only the shards the batch touched when the graph
  /// is sharded — and, once the overlay outgrows
  /// `DeltaOptions::compact_nnz_fraction`, the overlay compacts into a
  /// fresh CSR (sharded graphs then re-plan their row partition). Models
  /// registered over the graph are recompiled against the new state under
  /// their existing ModelId handles. `GraphId` handles remain valid and
  /// stable across any number of updates.
  ///
  /// Concurrency contract: the update serializes with submissions;
  /// requests admitted before it execute the snapshot they captured
  /// (bitwise the pre-update graph), requests admitted after it see the
  /// new state — no request ever observes a half-applied batch, and
  /// pre/post-update requests never coalesce. Throws
  /// std::invalid_argument for an unknown handle or a batch violating the
  /// delta contract (out-of-range endpoint, delete of a missing edge; the
  /// graph is untouched), std::runtime_error after shutdown or when a
  /// compaction outgrows the device (or shard) capacity.
  UpdateReport apply_update(GraphId id, const EdgeBatch& batch);

  /// Launch the worker threads (no-op when already running). Only needed
  /// after constructing with `start_paused`.
  void start();

  /// Stop admission, drain every queued request, join workers. Idempotent;
  /// also runs from the destructor.
  void shutdown();

  /// Consistent snapshot of all counters.
  EngineStats stats() const;

  /// The engine's current virtual clock (ms): the busiest device's
  /// cumulative modelled time. Deadlines are judged against this.
  double virtual_now_ms() const;

  /// The engine's plan cache (hit/miss/eviction/residency introspection).
  const PlanCache& plan_cache() const { return plan_cache_; }

  const ServeOptions& options() const { return opt_; }

 private:
  /// A registered operand. The registry key is the *registration*
  /// fingerprint key (stable, what GraphId carries); `fp`/`current_key`
  /// roll forward with updates and are the identity plans and batches
  /// form under. Between compactions `csr` stays the last compacted base
  /// and `overlay` holds the pending touched rows; shard slices (when
  /// sharded) are rebuilt eagerly per update, so they always hold
  /// effective content.
  struct RegisteredGraph {
    std::shared_ptr<const Csr> csr;
    std::shared_ptr<const ShardPlan> shards;    // nullptr when unsharded
    std::shared_ptr<const DeltaOverlay> overlay;  // nullptr when clean
    GraphFingerprint fp;
    std::uint64_t current_key = 0;  // fp.key() (cached)
  };

  void worker_loop();
  void execute_batch(std::vector<std::shared_ptr<detail::RequestState>> batch,
                     std::size_t device_index);
  void execute_sharded_batch(
      std::vector<std::shared_ptr<detail::RequestState>> batch);
  void execute_model(std::shared_ptr<detail::RequestState> state,
                     std::size_t device_index);
  /// Tenant index for `name`; throws std::invalid_argument when unknown.
  std::uint32_t tenant_index(const std::string& name) const;
  /// The effective CSR of `g` (base with any overlay folded in). Call
  /// under mu_; O(nnz) when an overlay is resident.
  static std::shared_ptr<const Csr> effective_graph(const RegisteredGraph& g);

  ServeOptions opt_;
  /// Tenant contracts in sorted-name order (index = scheduler tenant id).
  std::vector<std::string> tenant_names_;
  std::vector<TenantConfig> tenant_cfgs_;
  PlanCache plan_cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Scheduler scheduler_;
  AdmissionController admission_;
  /// Admitted-but-not-dispatched requests, keyed by scheduler seq.
  std::map<std::uint64_t, std::shared_ptr<detail::RequestState>> pending_states_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool shutting_down_ = false;
  std::size_t next_device_ = 0;
  /// The virtual clock deadlines are judged against: max over the
  /// per-device cumulative modelled times (guarded by mu_).
  double virtual_now_ms_ = 0.0;

  // Graph registry (guarded by mu_).
  std::map<std::uint64_t, RegisteredGraph> graphs_;
  // Model registry, keyed by ModelPlan::key (guarded by mu_).
  std::map<std::uint64_t, std::shared_ptr<const RegisteredModel>> models_;

  // Counters (guarded by mu_). stats_.tenants carries the live per-tenant
  // counters (name/share filled at construction).
  EngineStats stats_;
};

}  // namespace gespmm::serve
