#pragma once
/// \file engine.hpp
/// The batched SpMM serving engine: concurrent submit/wait execution of
/// SpMM requests with admission control, cross-graph fair scheduling,
/// plan-cache reuse and same-graph batching.
///
/// Request lifecycle:
///  1. `register_graph` fingerprints a CSR operand and stores it once
///     (re-registering an identical operand returns the existing handle);
///  2. `submit` checks admission (see admission.hpp): a shed request's
///     ticket completes *immediately* with `RequestStatus::Shed` and a
///     typed `ShedReason`; an admitted request enters its graph's
///     scheduler queue and returns a pending `Ticket`;
///  3. worker threads pull batches from the scheduler (deficit
///     round-robin across graphs by default, see scheduler.hpp),
///     coalescing same-graph same-reduce requests into one multi-feature
///     SpMM and round-robining batches across the configured simulated
///     devices;
///  4. each batch executes through a `PlanCache`d kernel plan (LRU-
///     bounded, pinned while the batch is in flight): values are computed
///     on the host (bitwise identical to per-request `gespmm::spmm`,
///     column order is preserved), device time is the plan's
///     block-sampled modelled time;
///  5. `Ticket::wait` blocks for the request's `RequestResult`.
///
/// Ticket contract for shed requests: `wait()` NEVER throws and never
/// blocks — it returns a `RequestResult` with `status ==
/// RequestStatus::Shed`, the shedding `ShedReason`, and an empty (0 x 0)
/// output matrix. Callers distinguish outcomes by `status`, not by
/// exception. (`submit` itself still throws std::runtime_error once the
/// engine is shut down, and std::invalid_argument for malformed input —
/// those are caller errors, not load conditions.)
///
/// `shutdown()` (also run by the destructor) stops admission, drains every
/// *admitted* request, and joins the workers — no admitted request is
/// ever dropped, and every shed ticket was already complete at submit.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/batch.hpp"
#include "serve/fingerprint.hpp"
#include "serve/plan_cache.hpp"
#include "serve/scheduler.hpp"

namespace gespmm::serve {

using kernels::DenseMatrix;

/// Engine configuration.
struct ServeOptions {
  /// Simulated devices batches round-robin across (default: both of the
  /// paper's machines, GTX 1080Ti and RTX 2080).
  std::vector<gpusim::DeviceSpec> devices;
  /// Worker threads draining the queue.
  int num_workers = 2;
  /// Coalescing limits (see batch.hpp).
  BatchConstraints batch;
  /// Plan construction + retention policy (see plan_cache.hpp).
  PlanCacheOptions plan;
  /// Admission bounds and per-class shed thresholds (see admission.hpp).
  AdmissionOptions admission;
  /// Cross-graph scheduling policy (see scheduler.hpp).
  SchedulerOptions scheduler;
  /// Construct with workers parked: nothing executes until `start()` (or
  /// `shutdown()`, which drains). Deterministic harnesses use this to
  /// fix batch composition independent of submission timing.
  bool start_paused = false;

  ServeOptions();  // defaults to {gtx1080ti, rtx2080}
};

/// Handle to a registered graph; cheap to copy, valid for the engine's
/// lifetime.
struct GraphId {
  /// GraphFingerprint::key() of the operand.
  std::uint64_t key = 0;
};

/// How a request finished.
enum class RequestStatus {
  /// Executed; `RequestResult::c` holds the output.
  Ok = 0,
  /// Shed by admission control; `RequestResult::c` is empty (0 x 0) and
  /// `shed_reason` says why. The ticket completed at submit time.
  Shed,
};

/// What a completed request gets back.
struct RequestResult {
  /// Ok or Shed — check before touching `c`.
  RequestStatus status = RequestStatus::Ok;
  /// Why admission shed the request (None when status == Ok).
  ShedReason shed_reason = ShedReason::None;
  /// Service class the request was submitted with.
  Priority priority = Priority::Interactive;
  /// Aggregated output, rows x n, row-major — bitwise identical to what
  /// `gespmm::spmm` would have produced for this request alone. Empty
  /// when the request was shed.
  DenseMatrix c;
  /// Kernel the serving plan selected for the *batch* this request rode in.
  SpmmAlgo algo = SpmmAlgo::GeSpMM;
  /// Device preset name the batch was dispatched to.
  std::string device;
  /// This request's width-proportional share of the batch's modelled
  /// kernel time (ms), priced at the plan's (quantized) width — see
  /// PlanCacheOptions::width_quantum.
  double modelled_ms = 0.0;
  /// The dispatched device's cumulative modelled time (ms) when this
  /// request's batch finished — a deterministic virtual-clock completion
  /// stamp, the quantity latency percentiles are computed over.
  double completed_at_ms = 0.0;
  /// Whether the batch's plan came out of the cache.
  bool plan_cache_hit = false;
  /// Number of requests coalesced into the batch (1 = ran alone; 0 for a
  /// shed request).
  int batch_size = 1;
};

namespace detail {
/// Shared state between a Ticket and the worker that fulfills it.
struct RequestState {
  std::uint64_t graph_key = 0;
  std::uint64_t seq = 0;
  std::shared_ptr<const Csr> graph;
  DenseMatrix b;
  ReduceKind reduce = ReduceKind::Sum;
  Priority priority = Priority::Interactive;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  RequestResult result;

  void fulfill(RequestResult r);
  const RequestResult& wait();
};
}  // namespace detail

/// Future-like handle for one submitted request.
class Ticket {
 public:
  Ticket() = default;

  /// Block until the request completes; the result stays owned by the
  /// ticket and is valid for its lifetime. Never throws: a shed request
  /// yields `status == RequestStatus::Shed` (already complete at submit),
  /// an executed one `RequestStatus::Ok`.
  const RequestResult& wait() const { return state_->wait(); }

  /// Non-blocking completion probe (true immediately for shed requests).
  bool ready() const;

  /// False for a default-constructed ticket.
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Engine;
  explicit Ticket(std::shared_ptr<detail::RequestState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Per-device dispatch counters.
struct DeviceServeStats {
  std::string device;
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Sum of modelled batch kernel times dispatched to this device (ms).
  double modelled_ms = 0.0;
};

/// Snapshot of engine-wide counters (consistent: taken under one lock).
struct EngineStats {
  std::uint64_t graphs_registered = 0;
  /// register_graph() calls answered by an already-registered operand.
  std::uint64_t register_dedup_hits = 0;
  /// Requests admitted into the scheduler (shed requests are counted in
  /// `shed` / `admission`, not here).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Requests rejected by admission control (their tickets completed
  /// immediately with RequestStatus::Shed).
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  /// Requests that shared their batch with at least one other request.
  std::uint64_t coalesced_requests = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Total modelled device time across all batches (ms) — the serving
  /// cost metric bench_serve_throughput compares across policies.
  double modelled_ms = 0.0;
  /// One entry per configured device, in ServeOptions::devices order.
  std::vector<DeviceServeStats> devices;
  /// Per-class admission counters.
  AdmissionStats admission;
  /// Per-graph scheduling counters (served/deferred/pending), in
  /// first-submission order.
  std::vector<GraphServeStats> graphs;
};

/// The serving engine. Thread-safe: any thread may register, submit and
/// wait concurrently.
class Engine {
 public:
  explicit Engine(ServeOptions opt = ServeOptions());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validate + fingerprint `a` and store it (one copy per distinct
  /// operand; identical re-registrations dedup). Throws std::runtime_error
  /// on malformed CSR.
  GraphId register_graph(const Csr& a);

  /// The registered operand for `id`. Throws std::invalid_argument for an
  /// unknown handle.
  std::shared_ptr<const Csr> graph(GraphId id) const;

  /// Enqueue C = A(id) (*) b at the given service class. `b` must have
  /// A.cols rows and be row-major. Throws std::invalid_argument on
  /// shape/layout mismatch or unknown handle, std::runtime_error after
  /// shutdown. Under load the request may be shed instead of queued: the
  /// returned ticket is then already complete with RequestStatus::Shed
  /// (see the file comment for the full ticket contract).
  Ticket submit(GraphId id, DenseMatrix b, ReduceKind reduce = ReduceKind::Sum,
                Priority priority = Priority::Interactive);

  /// Launch the worker threads (no-op when already running). Only needed
  /// after constructing with `start_paused`.
  void start();

  /// Stop admission, drain every queued request, join workers. Idempotent;
  /// also runs from the destructor.
  void shutdown();

  /// Consistent snapshot of all counters.
  EngineStats stats() const;

  /// The engine's plan cache (hit/miss/eviction/residency introspection).
  const PlanCache& plan_cache() const { return plan_cache_; }

  const ServeOptions& options() const { return opt_; }

 private:
  void worker_loop();
  void execute_batch(std::vector<std::shared_ptr<detail::RequestState>> batch,
                     std::size_t device_index);

  ServeOptions opt_;
  PlanCache plan_cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Scheduler scheduler_;
  AdmissionController admission_;
  /// Admitted-but-not-dispatched requests, keyed by scheduler seq.
  std::map<std::uint64_t, std::shared_ptr<detail::RequestState>> pending_states_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool shutting_down_ = false;
  std::size_t next_device_ = 0;

  // Graph registry (guarded by mu_).
  std::map<std::uint64_t, std::shared_ptr<const Csr>> graphs_;

  // Counters (guarded by mu_).
  EngineStats stats_;
};

}  // namespace gespmm::serve
