#pragma once
/// \file engine.hpp
/// The batched SpMM serving engine: concurrent submit/wait execution of
/// SpMM requests with admission control, cross-graph fair scheduling,
/// plan-cache reuse and same-graph batching.
///
/// Request lifecycle:
///  1. `register_graph` fingerprints a CSR operand and stores it once
///     (re-registering an identical operand returns the existing handle);
///  2. `submit` checks admission (see admission.hpp): a shed request's
///     ticket completes *immediately* with `RequestStatus::Shed` and a
///     typed `ShedReason`; an admitted request enters its graph's
///     scheduler queue and returns a pending `Ticket`;
///  3. worker threads pull batches from the scheduler (deficit
///     round-robin across graphs by default, see scheduler.hpp),
///     coalescing same-graph same-reduce requests into one multi-feature
///     SpMM and round-robining batches across the configured simulated
///     devices;
///  4. each batch executes through a `PlanCache`d kernel plan (LRU-
///     bounded, pinned while the batch is in flight): values are computed
///     on the host (bitwise identical to per-request `gespmm::spmm`,
///     column order is preserved), device time is the plan's
///     block-sampled modelled time;
///  5. `Ticket::wait` blocks for the request's `RequestResult`.
///
/// Model serving (`register_model` / `submit_model`) promotes the unit of
/// service from one SpMM to one forward pass: a registered model compiles
/// to a `ModelPlan` (see model_plan.hpp) and a single ticket runs every
/// layer as a fused SpMM→GEMM chain — per-layer plans come from the same
/// `PlanCache` (shared across layers, models and plain SpMM traffic),
/// intermediates recycle through a `ModelArena`, and the scheduler prices
/// the ticket at the model's total SpMM width. Model requests never
/// coalesce with other requests; output values are bitwise identical to
/// composing per-layer `submit` calls with the host-side dense
/// transforms, only the modelled time differs (the fusion win).
///
/// Ticket contract for shed requests: `wait()` NEVER throws and never
/// blocks — it returns a `RequestResult` with `status ==
/// RequestStatus::Shed`, the shedding `ShedReason`, and an empty (0 x 0)
/// output matrix. Callers distinguish outcomes by `status`, not by
/// exception. (`submit` itself still throws std::runtime_error once the
/// engine is shut down, and std::invalid_argument for malformed input —
/// those are caller errors, not load conditions.)
///
/// `shutdown()` (also run by the destructor) stops admission, drains every
/// *admitted* request, and joins the workers — no admitted request is
/// ever dropped, and every shed ticket was already complete at submit.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/batch.hpp"
#include "serve/fingerprint.hpp"
#include "serve/model_plan.hpp"
#include "serve/plan_cache.hpp"
#include "serve/scheduler.hpp"

namespace gespmm::serve {

using kernels::DenseMatrix;

/// Engine configuration.
struct ServeOptions {
  /// Simulated devices batches round-robin across (default: both of the
  /// paper's machines, GTX 1080Ti and RTX 2080).
  std::vector<gpusim::DeviceSpec> devices;
  /// Worker threads draining the queue.
  int num_workers = 2;
  /// Coalescing limits (see batch.hpp).
  BatchConstraints batch;
  /// Plan construction + retention policy (see plan_cache.hpp).
  PlanCacheOptions plan;
  /// Admission bounds and per-class shed thresholds (see admission.hpp).
  AdmissionOptions admission;
  /// Cross-graph scheduling policy (see scheduler.hpp).
  SchedulerOptions scheduler;
  /// Construct with workers parked: nothing executes until `start()` (or
  /// `shutdown()`, which drains). Deterministic harnesses use this to
  /// fix batch composition independent of submission timing.
  bool start_paused = false;

  ServeOptions();  // defaults to {gtx1080ti, rtx2080}
};

/// Handle to a registered graph; cheap to copy, valid for the engine's
/// lifetime.
struct GraphId {
  /// GraphFingerprint::key() of the operand.
  std::uint64_t key = 0;
};

/// Handle to a registered model; cheap to copy, valid for the engine's
/// lifetime.
struct ModelId {
  /// ModelPlan::key — content fingerprint over (graph, kind, parameters).
  std::uint64_t key = 0;
};

/// A registered model: its compiled plan, its parameters, and the graph
/// it aggregates over. Immutable once registered; shared between the
/// registry, in-flight requests and introspecting callers.
struct RegisteredModel {
  ModelPlan plan;
  ModelSpec spec;
  std::shared_ptr<const Csr> graph;
};

/// How a request finished.
enum class RequestStatus {
  /// Executed; `RequestResult::c` holds the output.
  Ok = 0,
  /// Shed by admission control; `RequestResult::c` is empty (0 x 0) and
  /// `shed_reason` says why. The ticket completed at submit time.
  Shed,
};

/// What a completed request gets back.
struct RequestResult {
  /// Ok or Shed — check before touching `c`.
  RequestStatus status = RequestStatus::Ok;
  /// Why admission shed the request (None when status == Ok).
  ShedReason shed_reason = ShedReason::None;
  /// Service class the request was submitted with.
  Priority priority = Priority::Interactive;
  /// Aggregated output, rows x n, row-major — bitwise identical to what
  /// `gespmm::spmm` would have produced for this request alone. Empty
  /// when the request was shed.
  DenseMatrix c;
  /// Kernel the serving plan selected for the *batch* this request rode in.
  SpmmAlgo algo = SpmmAlgo::GeSpMM;
  /// Device preset name the batch was dispatched to.
  std::string device;
  /// This request's width-proportional share of the batch's modelled
  /// kernel time (ms), priced at the plan's (quantized) width — see
  /// PlanCacheOptions::width_quantum.
  double modelled_ms = 0.0;
  /// The dispatched device's cumulative modelled time (ms) when this
  /// request's batch finished — a deterministic virtual-clock completion
  /// stamp, the quantity latency percentiles are computed over.
  double completed_at_ms = 0.0;
  /// Whether the batch's plan came out of the cache.
  bool plan_cache_hit = false;
  /// Number of requests coalesced into the batch (1 = ran alone; 0 for a
  /// shed request).
  int batch_size = 1;
  /// For a `submit_model` ticket: layers the fused forward pass ran
  /// (0 for a plain SpMM request). `c` is then the num_nodes x out_feats
  /// output of the last layer and `modelled_ms` the *fused* whole-pass
  /// time.
  int model_layers = 0;
  /// For a `submit_model` ticket: what the same pass would have cost as
  /// layer-by-layer composition (separate SpMM / GEMM / epilogue
  /// launches). Always > `modelled_ms`; 0 for plain requests.
  double composed_ms = 0.0;
};

namespace detail {
/// Shared state between a Ticket and the worker that fulfills it.
struct RequestState {
  std::uint64_t graph_key = 0;
  std::uint64_t seq = 0;
  std::shared_ptr<const Csr> graph;
  /// Set for whole-model requests (`b` is then the input feature matrix).
  std::shared_ptr<const RegisteredModel> model;
  DenseMatrix b;
  ReduceKind reduce = ReduceKind::Sum;
  Priority priority = Priority::Interactive;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  RequestResult result;

  void fulfill(RequestResult r);
  const RequestResult& wait();
};
}  // namespace detail

/// Future-like handle for one submitted request.
class Ticket {
 public:
  Ticket() = default;

  /// Block until the request completes; the result stays owned by the
  /// ticket and is valid for its lifetime. Never throws: a shed request
  /// yields `status == RequestStatus::Shed` (already complete at submit),
  /// an executed one `RequestStatus::Ok`.
  const RequestResult& wait() const { return state_->wait(); }

  /// Non-blocking completion probe (true immediately for shed requests).
  bool ready() const;

  /// False for a default-constructed ticket.
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Engine;
  explicit Ticket(std::shared_ptr<detail::RequestState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Per-device dispatch counters.
struct DeviceServeStats {
  std::string device;
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Sum of modelled batch kernel times dispatched to this device (ms).
  double modelled_ms = 0.0;
};

/// Snapshot of engine-wide counters (consistent: taken under one lock).
struct EngineStats {
  std::uint64_t graphs_registered = 0;
  /// register_graph() calls answered by an already-registered operand.
  std::uint64_t register_dedup_hits = 0;
  std::uint64_t models_registered = 0;
  /// register_model() calls answered by an identical registered model.
  std::uint64_t model_register_dedup_hits = 0;
  /// Whole-model requests admitted via submit_model (a subset of
  /// `submitted`; each completes as one single-request batch).
  std::uint64_t model_requests = 0;
  /// Total modelled time fusion saved versus layer-by-layer composition
  /// across all completed model requests (sum of composed - fused, ms).
  double fused_saved_ms = 0.0;
  /// Requests admitted into the scheduler (shed requests are counted in
  /// `shed` / `admission`, not here).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Requests rejected by admission control (their tickets completed
  /// immediately with RequestStatus::Shed).
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  /// Requests that shared their batch with at least one other request.
  std::uint64_t coalesced_requests = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Total modelled device time across all batches (ms) — the serving
  /// cost metric bench_serve_throughput compares across policies.
  double modelled_ms = 0.0;
  /// One entry per configured device, in ServeOptions::devices order.
  std::vector<DeviceServeStats> devices;
  /// Per-class admission counters.
  AdmissionStats admission;
  /// Per-graph scheduling counters (served/deferred/pending), in
  /// first-submission order.
  std::vector<GraphServeStats> graphs;
};

/// The serving engine. Thread-safe: any thread may register, submit and
/// wait concurrently.
class Engine {
 public:
  explicit Engine(ServeOptions opt = ServeOptions());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validate + fingerprint `a` and store it (one copy per distinct
  /// operand; identical re-registrations dedup). Throws std::runtime_error
  /// on malformed CSR.
  GraphId register_graph(const Csr& a);

  /// The registered operand for `id`. Throws std::invalid_argument for an
  /// unknown handle.
  std::shared_ptr<const Csr> graph(GraphId id) const;

  /// Compile `spec` against a registered graph into an execution plan and
  /// store it (content-identical re-registrations dedup, like graphs).
  /// Throws std::invalid_argument for an unknown graph handle or a spec
  /// whose layer shapes do not chain.
  ModelId register_model(GraphId graph, ModelSpec spec);

  /// The registered model for `id` (plan + parameters + graph). Throws
  /// std::invalid_argument for an unknown handle.
  std::shared_ptr<const RegisteredModel> model(ModelId id) const;

  /// Enqueue one whole forward pass of model `id` over `features`
  /// (num_nodes x in_feats, row-major) — one ticket covers every layer,
  /// executed as a fused SpMM→GEMM chain with cross-layer plan-cache and
  /// intermediate-buffer reuse. The request flows through the same
  /// admission control and scheduler as plain submits, costed at the
  /// model's total SpMM width; it never coalesces with other requests.
  /// Same exception/shed contract as `submit`.
  Ticket submit_model(ModelId id, DenseMatrix features,
                      Priority priority = Priority::Interactive);

  /// Enqueue C = A(id) (*) b at the given service class. `b` must have
  /// A.cols rows and be row-major. Throws std::invalid_argument on
  /// shape/layout mismatch or unknown handle, std::runtime_error after
  /// shutdown. Under load the request may be shed instead of queued: the
  /// returned ticket is then already complete with RequestStatus::Shed
  /// (see the file comment for the full ticket contract).
  Ticket submit(GraphId id, DenseMatrix b, ReduceKind reduce = ReduceKind::Sum,
                Priority priority = Priority::Interactive);

  /// Launch the worker threads (no-op when already running). Only needed
  /// after constructing with `start_paused`.
  void start();

  /// Stop admission, drain every queued request, join workers. Idempotent;
  /// also runs from the destructor.
  void shutdown();

  /// Consistent snapshot of all counters.
  EngineStats stats() const;

  /// The engine's plan cache (hit/miss/eviction/residency introspection).
  const PlanCache& plan_cache() const { return plan_cache_; }

  const ServeOptions& options() const { return opt_; }

 private:
  void worker_loop();
  void execute_batch(std::vector<std::shared_ptr<detail::RequestState>> batch,
                     std::size_t device_index);
  void execute_model(std::shared_ptr<detail::RequestState> state,
                     std::size_t device_index);

  ServeOptions opt_;
  PlanCache plan_cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Scheduler scheduler_;
  AdmissionController admission_;
  /// Admitted-but-not-dispatched requests, keyed by scheduler seq.
  std::map<std::uint64_t, std::shared_ptr<detail::RequestState>> pending_states_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool shutting_down_ = false;
  std::size_t next_device_ = 0;

  // Graph registry (guarded by mu_).
  std::map<std::uint64_t, std::shared_ptr<const Csr>> graphs_;
  // Model registry, keyed by ModelPlan::key (guarded by mu_).
  std::map<std::uint64_t, std::shared_ptr<const RegisteredModel>> models_;

  // Counters (guarded by mu_).
  EngineStats stats_;
};

}  // namespace gespmm::serve
