#include "serve/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace gespmm::serve {

std::size_t ShardPlan::max_shard_bytes() const {
  std::size_t worst = 0;
  for (const auto& s : shards) worst = std::max(worst, csr_bytes(s.csr));
  return worst;
}

std::size_t csr_bytes(const Csr& a) {
  return a.rowptr.size() * sizeof(index_t) + a.colind.size() * sizeof(index_t) +
         a.val.size() * sizeof(value_t);
}

GraphShard make_shard_from_slice(Csr slice, int index, index_t row_begin,
                                 index_t row_end) {
  GraphShard s;
  s.index = index;
  s.row_begin = row_begin;
  s.row_end = row_end;
  s.csr = std::move(slice);

  // Halo = distinct B rows this shard reads that other shards own under
  // the matching row partition of B. Sort+unique a copy of the slice's
  // colind, then count values outside the owned range.
  std::vector<index_t> cols(s.csr.colind);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  index_t halo = 0;
  for (const index_t col : cols) {
    if (col < row_begin || col >= row_end) ++halo;
  }
  s.halo_cols = halo;

  s.fp = fingerprint(s.csr);
  s.key = s.fp.key();
  return s;
}

namespace {

GraphShard make_shard(const Csr& a, int index, index_t row_begin,
                      index_t row_end) {
  const auto nz0 = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(row_begin)]);
  const auto nz1 = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(row_end)]);
  Csr c;
  c.rows = row_end - row_begin;
  c.cols = a.cols;
  c.rowptr.resize(static_cast<std::size_t>(c.rows) + 1);
  for (index_t i = 0; i <= c.rows; ++i) {
    c.rowptr[static_cast<std::size_t>(i)] =
        a.rowptr[static_cast<std::size_t>(row_begin + i)] - static_cast<index_t>(nz0);
  }
  c.colind.assign(a.colind.begin() + static_cast<std::ptrdiff_t>(nz0),
                  a.colind.begin() + static_cast<std::ptrdiff_t>(nz1));
  c.val.assign(a.val.begin() + static_cast<std::ptrdiff_t>(nz0),
               a.val.begin() + static_cast<std::ptrdiff_t>(nz1));
  return make_shard_from_slice(std::move(c), index, row_begin, row_end);
}

}  // namespace

ShardPlan plan_shards(const Csr& a, int num_shards) {
  if (num_shards < 1) {
    throw std::invalid_argument("plan_shards: need at least one shard");
  }
  if (num_shards > a.rows) {
    throw std::invalid_argument("plan_shards: more shards (" +
                                std::to_string(num_shards) + ") than rows (" +
                                std::to_string(a.rows) + ")");
  }

  ShardPlan plan;
  plan.graph_key = fingerprint(a).key();
  plan.shards.reserve(static_cast<std::size_t>(num_shards));

  // Greedy nnz-balanced walk. Shard k targets remaining_nnz / remaining
  // shards and closes at the first row boundary meeting it; the "leave one
  // row per remaining shard" guard keeps every shard non-empty even on
  // degenerate (all-nnz-up-front) distributions.
  index_t row = 0;
  for (int k = 0; k < num_shards; ++k) {
    const index_t begin = row;
    const int remaining = num_shards - k;
    const index_t last_start = a.rows - static_cast<index_t>(remaining) + 1;
    if (k == num_shards - 1) {
      row = a.rows;
    } else {
      const auto done = static_cast<std::int64_t>(a.rowptr[static_cast<std::size_t>(begin)]);
      const std::int64_t left = static_cast<std::int64_t>(a.nnz()) - done;
      const std::int64_t target = done + (left + remaining - 1) / remaining;
      while (row < last_start &&
             static_cast<std::int64_t>(
                 a.rowptr[static_cast<std::size_t>(row) + 1]) < target) {
        ++row;
      }
      ++row;  // include the row that crossed the target
      row = std::min(row, last_start);
      row = std::max(row, begin + 1);
    }
    plan.shards.push_back(make_shard(a, k, begin, row));
  }
  return plan;
}

}  // namespace gespmm::serve
