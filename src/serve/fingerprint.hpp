#pragma once
/// \file fingerprint.hpp
/// Structural fingerprints of CSR operands — the identity the serving
/// engine's graph registry and plan cache key on.
///
/// Two requests "use the same graph" exactly when their operands would
/// drive the simulator identically: same shape, same nonzero structure
/// and values. Comparing full CSR arrays on every submit would be O(nnz);
/// a fingerprint condenses the operand into shape counts, a row-length
/// histogram hash (the property the adaptive kernel choice and the cost
/// model's load-imbalance tail depend on) and a content hash over
/// colind/val, so registry lookups are O(1) after one O(nnz) pass at
/// registration time.

#include <cstdint>
#include <string>

#include "sparse/csr.hpp"

namespace gespmm::serve {

using sparse::Csr;
using sparse::index_t;

/// SplitMix64's finalizer as a streaming combiner: deterministic,
/// implementation-independent, and the serve layer's hashing function of
/// record — graph fingerprints and model-plan content keys alike.
std::uint64_t mix64(std::uint64_t h, std::uint64_t x);

/// Identity of a registered sparse operand.
struct GraphFingerprint {
  /// Row count of the operand (C's row count).
  index_t rows = 0;
  /// Column count of the operand (B's required row count).
  index_t cols = 0;
  /// Nonzero count.
  index_t nnz = 0;
  /// SplitMix64-mixed hash over the log2-bucketed row-length histogram —
  /// the skew summary that distinguishes e.g. a uniform matrix from a
  /// power-law graph of identical (rows, cols, nnz).
  std::uint64_t histogram_hash = 0;
  /// Hash over rowptr/colind/val contents (catches same-shape,
  /// same-histogram operands with different structure or edge weights).
  std::uint64_t content_hash = 0;
  /// Monotonically bumped by every `Engine::apply_update` against the
  /// graph (and never reset, not even by compaction), so plan-cache and
  /// model keys derived from `key()` self-invalidate across updates.
  /// 0 for a freshly fingerprinted operand: a version-0 key is exactly
  /// the classic four-field key, keeping pre-versioning goldens (and
  /// cross-engine key stability for static graphs) intact. Between
  /// compactions only `version` moves — the structural fields refresh at
  /// the next compaction, where the O(nnz) pass is paid anyway.
  std::uint64_t version = 0;

  /// Single 64-bit key for hash maps; mixes all structural fields, plus
  /// `version` when non-zero.
  std::uint64_t key() const;

  /// "rows x cols, nnz=…, hist=…, content=…[, v=…]" — for logs and stats
  /// dumps.
  std::string str() const;

  bool operator==(const GraphFingerprint&) const = default;
};

/// One O(nnz) pass over a validated CSR.
GraphFingerprint fingerprint(const Csr& a);

}  // namespace gespmm::serve
