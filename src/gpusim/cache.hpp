#pragma once
/// \file cache.hpp
/// Direct-mapped sector-cache models for the simulated L1 and L2.
///
/// Caches are modelled per thread block: each block starts a new "epoch"
/// with a cold cache whose tags are invalidated lazily via a generation
/// counter (no per-block memset). Modelling the shared L2 as a per-block
/// slice is an approximation that keeps the simulation deterministic and
/// embarrassingly parallel; DESIGN.md discusses the trade-off. Line size is
/// 128 bytes (4 transactions per line), matching NVIDIA hardware.

#include <bit>
#include <cstdint>
#include <vector>

namespace gespmm::gpusim {

class SectorCache {
 public:
  /// `num_lines` is rounded up to a power of two. A zero-line cache never
  /// hits (used to disable L1 on Pascal configs).
  void configure(std::size_t num_lines) {
    if (num_lines == 0) {
      entries_.clear();
      mask_ = 0;
      return;
    }
    std::size_t n = std::bit_ceil(num_lines);
    if (entries_.size() != n) {
      entries_.assign(n, Entry{});
      generation_ = 1;
    }
    mask_ = n - 1;
  }

  /// Start a fresh (cold) cache without touching memory.
  void new_epoch() { ++generation_; }

  /// Access the 128-byte line containing byte address `addr`.
  /// Returns true on hit; always installs the line.
  bool access(std::uint64_t addr) {
    if (entries_.empty()) return false;
    const std::uint64_t line = addr >> 7;  // 128-byte lines
    Entry& e = entries_[line & mask_];
    const bool hit = e.generation == generation_ && e.tag == line;
    e.tag = line;
    e.generation = generation_;
    return hit;
  }

  bool enabled() const { return !entries_.empty(); }

 private:
  struct Entry {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t generation = 0;
  };
  std::vector<Entry> entries_;
  std::uint64_t mask_ = 0;
  std::uint64_t generation_ = 1;
};

}  // namespace gespmm::gpusim
