#pragma once
/// \file device.hpp
/// Device descriptions and the occupancy calculator.
///
/// A DeviceSpec bundles both the architectural parameters of a simulated GPU
/// (SM count, clock, memory hierarchy sizes/bandwidths) and the calibration
/// constants of the analytical cost model. The two presets model the paper's
/// evaluation machines: GTX 1080Ti (Pascal) and RTX 2080 (Turing).
///
/// The single architecturally *qualitative* difference that matters for the
/// paper's results is `unified_l1`: on Turing the unified L1 caches global
/// loads, so the broadcast-heavy access pattern of the naive SpMM (Algorithm
/// 1) is largely absorbed by L1 and Coalesced Row Caching alone gains little
/// (paper: 1.011x on RTX 2080 vs 1.246x on GTX 1080Ti). Pascal bypasses L1
/// for global loads, so every broadcast becomes L2 traffic.

#include <string>

namespace gespmm::gpusim {

/// Architectural + cost-model description of a simulated GPU.
struct DeviceSpec {
  std::string name;

  // --- Compute resources ---
  int num_sms = 28;
  double clock_ghz = 1.481;
  int max_warps_per_sm = 64;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  int regs_per_sm = 65536;
  int max_regs_per_thread = 255;
  std::size_t smem_per_sm = 96 * 1024;
  std::size_t max_smem_per_block = 48 * 1024;
  /// Warp instructions issued per SM per cycle (warp schedulers).
  double issue_width = 4.0;
  /// Whether the part has dedicated tensor cores (Turing: yes). When false
  /// the MMA cost path still exists — dense tiles run as register-blocked
  /// FMA micro-kernels on the SIMT pipe — but at FMA-pipe throughput.
  bool tensor_cores = false;
  /// Peak throughput of the dense-tile (MMA) path in TFLOP/s. For a part
  /// with tensor cores this is the FP16-input/FP32-accumulate WMMA peak;
  /// without them it is the dense micro-GEMM FLOP rate the FMA pipe
  /// sustains on staged operands.
  double mma_tflops = 9.0;
  /// Warps-per-SM concurrency at which the MMA pipe reaches half of peak
  /// throughput (the pipe needs few resident warps to fill: fragments are
  /// register-held and the issue pattern is regular).
  double mma_half_saturation_warps = 8.0;

  // --- Memory hierarchy ---
  /// DRAM capacity in bytes — the budget a resident CSR operand must fit
  /// in. The serving engine's shard planner row-partitions any registered
  /// graph whose footprint exceeds the smallest configured device.
  std::size_t dram_bytes = 11ull * 1024 * 1024 * 1024;
  /// DRAM peak bandwidth in GB/s.
  double dram_bw_gbps = 484.0;
  /// L2 bandwidth as a multiple of DRAM bandwidth.
  double l2_bw_ratio = 1.6;
  /// L1 bandwidth as a multiple of DRAM bandwidth (used when unified_l1).
  double l1_bw_ratio = 6.0;
  /// Shared-memory bandwidth in GB/s (128 B/cycle/SM).
  double smem_bw_gbps = 5300.0;
  /// Whether global loads are cached in the per-SM L1 (Turing: yes).
  bool unified_l1 = false;
  std::size_t l1_bytes = 48 * 1024;
  std::size_t l2_bytes = 2816 * 1024;
  /// Memory transaction granularity (nvprof's gld_transactions unit).
  int transaction_bytes = 32;
  int line_bytes = 128;

  // --- Cost-model calibration ---
  /// Kernel launch overhead in microseconds (driver + scheduling).
  double launch_overhead_us = 3.5;
  /// Warps-per-SM concurrency at which DRAM bandwidth reaches half of peak
  /// (Little's-law saturation constant). SpMM's scattered B-row accesses
  /// keep kernels latency-limited well below peak, which is why thread
  /// coarsening (CWM) pays: the paper's Table VI shows the no-CWM kernel at
  /// 479 GB/s and CF=2 at 568 GB/s on a 484 GB/s part — only possible if
  /// the baseline sits in the latency-limited regime.
  double dram_half_saturation_warps = 50.0;
  /// Same constant for L2-interface traffic.
  double l2_half_saturation_warps = 50.0;
  /// Additional concurrency contributed per unit of ILP beyond the first
  /// (CWM with CF=2 declares ILP=2 and gets 1 + ilp_concurrency_gain).
  double ilp_concurrency_gain = 1.5;
  /// ILP above this contributes nothing further (MSHR/scoreboard limits) —
  /// the reason CF=4 stops helping (paper Fig. 9).
  double ilp_cap = 2.0;
  /// Average global-load round-trip latency (critical-path term).
  double mem_latency_ns = 350.0;
  /// Independent loads one warp keeps in flight (MSHR slots per warp);
  /// multiplied by the declared ILP (capped at 2) for coarsened kernels.
  double mlp_per_warp = 4.0;
  /// Register pressure: concurrency is divided by
  /// 1 + reg_pressure_slope * max(0, regs_per_thread - reg_pressure_knee);
  /// CF=8's ~70 registers per thread pay heavily here (paper Fig. 9).
  double reg_pressure_knee = 38.0;
  double reg_pressure_slope = 1.0 / 40.0;

  /// Peak single-precision FLOP/s (FMA counts as two FLOPs).
  double peak_gflops() const {
    // 128 FP32 lanes per SM, 2 FLOPs per FMA.
    return num_sms * 128.0 * 2.0 * clock_ghz;
  }
};

/// GTX 1080Ti (Pascal GP102): 28 SMs @ 1.481 GHz, 484 GB/s GDDR5X, global
/// loads not cached in L1. Machine 1 in the paper.
DeviceSpec gtx1080ti();

/// RTX 2080 (Turing TU104): 46 SMs @ 1.515 GHz, 448 GB/s GDDR6, unified L1
/// caches global loads. Machine 2 in the paper.
DeviceSpec rtx2080();

/// Look up a preset by name ("gtx1080ti" or "rtx2080"). Throws on unknown.
DeviceSpec device_by_name(const std::string& name);

/// Per-kernel launch geometry and static resource usage.
struct LaunchConfig {
  /// Number of thread blocks.
  long long grid = 1;
  /// Threads per block (multiple of the warp size for full warps).
  int block = 32;
  /// Static shared memory per block in bytes.
  std::size_t smem_bytes = 0;
  /// Registers per thread, used by the occupancy calculator.
  int regs_per_thread = 32;
  /// Independent memory streams per thread (instruction-level parallelism);
  /// CWM with coarsening factor CF declares ilp = CF.
  double ilp = 1.0;
};

/// Theoretical occupancy for a launch on a device.
struct Occupancy {
  int blocks_per_sm = 0;
  int active_warps_per_sm = 0;
  /// active_warps_per_sm / max_warps_per_sm.
  double fraction = 0.0;
  /// Which resource bounded occupancy ("warps", "threads", "blocks",
  /// "registers", "smem").
  std::string limiter;
};

/// CUDA-style occupancy calculation from block size, register and shared
/// memory usage.
Occupancy compute_occupancy(const DeviceSpec& dev, const LaunchConfig& cfg);

}  // namespace gespmm::gpusim
