#pragma once
/// \file metrics.hpp
/// nvprof-style metric counters collected during a simulated kernel launch.
///
/// Metric definitions mirror the ones the paper reports:
///  - gld_transactions: number of 32-byte global *load* transactions.
///  - gld_efficiency:   unique bytes the program consumed divided by bytes
///                      actually moved by transactions (broadcast loads are
///                      counted once, so a warp-wide broadcast of a 4-byte
///                      word is 4/32 = 12.5% efficient).
///  - gld_throughput:   gld bytes divided by kernel time (computed by the
///                      cost model, so it can exceed DRAM bandwidth when L1
///                      or L2 serve part of the traffic, exactly as nvprof's
///                      number can).

#include <algorithm>
#include <cstdint>

namespace gespmm::gpusim {

struct LaunchMetrics {
  // Global loads.
  std::uint64_t gld_transactions = 0;
  std::uint64_t gld_useful_bytes = 0;
  std::uint64_t gld_instructions = 0;
  // Global stores.
  std::uint64_t gst_transactions = 0;
  std::uint64_t gst_useful_bytes = 0;
  std::uint64_t gst_instructions = 0;
  // Cache hierarchy (in transactions).
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t dram_transactions = 0;
  // Shared memory traffic in bytes.
  std::uint64_t smem_load_bytes = 0;
  std::uint64_t smem_store_bytes = 0;
  // Work counters.
  std::uint64_t flops = 0;
  std::uint64_t warp_instructions = 0;
  /// FLOPs issued through the dense-tile (MMA) pipe — every slot of every
  /// issued tile, padded or not, so zero-fill waste is visible here.
  std::uint64_t mma_flops = 0;
  /// Warp-level mma issues (one per tile).
  std::uint64_t mma_instructions = 0;
  /// Longest per-block global-load instruction chain observed — feeds the
  /// cost model's critical-path (load-imbalance) term. Merged with max().
  std::uint64_t max_block_gld_instructions = 0;
  // Launch shape (filled by the engine).
  std::uint64_t num_blocks = 0;
  std::uint64_t num_warps = 0;
  /// Extrapolation factor when only a subset of blocks was simulated.
  double sample_scale = 1.0;

  LaunchMetrics& operator+=(const LaunchMetrics& o) {
    gld_transactions += o.gld_transactions;
    gld_useful_bytes += o.gld_useful_bytes;
    gld_instructions += o.gld_instructions;
    gst_transactions += o.gst_transactions;
    gst_useful_bytes += o.gst_useful_bytes;
    gst_instructions += o.gst_instructions;
    l1_hits += o.l1_hits;
    l2_hits += o.l2_hits;
    dram_transactions += o.dram_transactions;
    smem_load_bytes += o.smem_load_bytes;
    smem_store_bytes += o.smem_store_bytes;
    flops += o.flops;
    warp_instructions += o.warp_instructions;
    mma_flops += o.mma_flops;
    mma_instructions += o.mma_instructions;
    max_block_gld_instructions =
        std::max(max_block_gld_instructions, o.max_block_gld_instructions);
    return *this;
  }

  /// Scale all counters (used to extrapolate block sampling).
  void scale(double f) {
    auto s = [f](std::uint64_t& v) {
      v = static_cast<std::uint64_t>(static_cast<double>(v) * f + 0.5);
    };
    s(gld_transactions);
    s(gld_useful_bytes);
    s(gld_instructions);
    s(gst_transactions);
    s(gst_useful_bytes);
    s(gst_instructions);
    s(l1_hits);
    s(l2_hits);
    s(dram_transactions);
    s(smem_load_bytes);
    s(smem_store_bytes);
    s(flops);
    s(warp_instructions);
    s(mma_flops);
    s(mma_instructions);
  }

  std::uint64_t gld_bytes(int transaction_bytes = 32) const {
    return gld_transactions * static_cast<std::uint64_t>(transaction_bytes);
  }
  std::uint64_t gst_bytes(int transaction_bytes = 32) const {
    return gst_transactions * static_cast<std::uint64_t>(transaction_bytes);
  }
  /// nvprof gld_efficiency in [0, 1].
  double gld_efficiency(int transaction_bytes = 32) const {
    const auto moved = gld_bytes(transaction_bytes);
    return moved == 0 ? 1.0
                      : static_cast<double>(gld_useful_bytes) / static_cast<double>(moved);
  }
  std::uint64_t dram_bytes(int transaction_bytes = 32) const {
    return dram_transactions * static_cast<std::uint64_t>(transaction_bytes);
  }
};

}  // namespace gespmm::gpusim
