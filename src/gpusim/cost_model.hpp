#pragma once
/// \file cost_model.hpp
/// Analytical timing model: converts a launch's measured metrics into an
/// execution-time estimate.
///
/// The model is a bottleneck ("roofline over the memory hierarchy") model:
///   time = launch_overhead
///        + max(DRAM time, L2 time, L1 time, smem time, issue time)
/// where each level's effective bandwidth is scaled by a saturating
/// utilisation curve u(C) = C / (C + C_half) driven by the concurrency
/// available to hide latency: resident warps per SM, boosted by declared
/// ILP (thread coarsening) and throttled by register pressure.
///
/// This structure is what lets the paper's findings emerge rather than be
/// hard-coded:
///  - CRC removes broadcast L2 traffic -> the L2 term shrinks (Pascal win).
///  - On Turing the L1 absorbs broadcasts -> the L2 term was never the
///    bottleneck -> CRC alone gains ~nothing (paper's RTX 2080 anomaly).
///  - CWM (CF=2) halves redundant sparse traffic and doubles ILP -> higher
///    utilisation; CF>=4 pays register pressure and lost concurrency, so
///    the optimum sits at CF=2 exactly as in Fig. 9 / Table VI.

#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"

namespace gespmm::gpusim {

struct TimeBreakdown {
  double dram_ms = 0.0;
  double l2_ms = 0.0;
  double l1_ms = 0.0;
  double smem_ms = 0.0;
  double issue_ms = 0.0;
  /// Dense-tile (MMA) pipe: mma_flops against the device's mma_tflops peak.
  double mma_ms = 0.0;
  /// Critical-path term: longest per-block load chain (load imbalance).
  double tail_ms = 0.0;
  double launch_overhead_ms = 0.0;
  double total_ms = 0.0;
  /// Utilisation u in (0, 1] applied to the DRAM/L2 bandwidths.
  double utilization = 1.0;
  /// Effective concurrency (warps per SM x ILP factor / register pressure).
  double concurrency = 0.0;
  const char* bottleneck = "none";
};

/// Estimate kernel time from metrics. `occ` must come from
/// compute_occupancy(dev, cfg).
TimeBreakdown estimate_time(const DeviceSpec& dev, const LaunchConfig& cfg,
                            const LaunchMetrics& m, const Occupancy& occ);

/// Achieved occupancy estimate: theoretical occupancy derated when the grid
/// cannot fill all SMs.
double achieved_occupancy(const DeviceSpec& dev, const LaunchConfig& cfg,
                          const Occupancy& occ);

}  // namespace gespmm::gpusim
