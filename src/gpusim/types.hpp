#pragma once
/// \file types.hpp
/// Basic SIMT value types for the warp-level GPU simulator.
///
/// Kernels in this project are written warp-synchronously: a lane-level
/// variable is a 32-wide vector (`Lanes<T>`) and control-flow divergence is
/// expressed with explicit activity masks (`LaneMask`, one bit per lane).

#include <array>
#include <bit>
#include <cstdint>

namespace gespmm::gpusim {

/// Number of threads per warp. Fixed at 32, as on all NVIDIA GPUs.
inline constexpr int kWarpSize = 32;

/// One value per lane of a warp.
template <typename T>
using Lanes = std::array<T, kWarpSize>;

/// Activity mask: bit l set means lane l executes the instruction.
using LaneMask = std::uint32_t;

/// All 32 lanes active.
inline constexpr LaneMask kFullMask = 0xffffffffu;

/// Mask with the first `n` lanes active (n in [0, 32]).
constexpr LaneMask first_lanes(int n) {
  return n >= kWarpSize ? kFullMask : ((LaneMask{1} << n) - 1u);
}

/// Number of active lanes in a mask.
constexpr int active_lanes(LaneMask m) { return std::popcount(m); }

/// True if lane `l` is active in `m`.
constexpr bool lane_active(LaneMask m, int l) { return (m >> l) & 1u; }

/// Build a Lanes<T> where lane l holds f(l).
template <typename T, typename F>
Lanes<T> make_lanes(F&& f) {
  Lanes<T> v{};
  for (int l = 0; l < kWarpSize; ++l) v[static_cast<size_t>(l)] = f(l);
  return v;
}

/// Broadcast a scalar to all lanes.
template <typename T>
Lanes<T> splat(T x) {
  Lanes<T> v{};
  v.fill(x);
  return v;
}

/// Lane indices 0..31 plus an offset.
inline Lanes<std::int64_t> iota_lanes(std::int64_t base = 0) {
  return make_lanes<std::int64_t>([&](int l) { return base + l; });
}

}  // namespace gespmm::gpusim
