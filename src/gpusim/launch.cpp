#include "gpusim/launch.hpp"

#include <omp.h>

#include <algorithm>
#include <vector>

namespace gespmm::gpusim {

namespace {

std::vector<long long> select_blocks(long long grid, const SamplePolicy& policy,
                                     bool& sampled) {
  sampled = static_cast<std::uint64_t>(grid) > policy.max_blocks;
  const long long simulated = sampled ? static_cast<long long>(policy.max_blocks) : grid;
  std::vector<long long> blocks(static_cast<std::size_t>(simulated));
  for (long long i = 0; i < simulated; ++i) {
    blocks[static_cast<std::size_t>(i)] = sampled ? i * grid / simulated : i;
  }
  return blocks;
}

void finalize_result(LaunchResult& res, const DeviceSpec& dev, LaunchMetrics total,
                     bool sampled, long long simulated) {
  const long long grid = res.config.grid;
  if (sampled && simulated > 0) {
    const double scale = static_cast<double>(grid) / static_cast<double>(simulated);
    total.scale(scale);
    total.sample_scale = scale;
  }
  total.num_blocks = static_cast<std::uint64_t>(grid);
  total.num_warps = static_cast<std::uint64_t>(grid) *
                    static_cast<std::uint64_t>((res.config.block + kWarpSize - 1) / kWarpSize);
  res.metrics = total;
  res.time = estimate_time(dev, res.config, total, res.occupancy);
}

}  // namespace

LaunchResult launch_sequential_shared_l2(const DeviceSpec& dev, const Kernel& kernel,
                                         const SamplePolicy& policy) {
  LaunchResult res;
  res.kernel_name = kernel.name();
  res.config = kernel.config(dev);
  res.occupancy = compute_occupancy(dev, res.config);
  res.achieved_occupancy = achieved_occupancy(dev, res.config, res.occupancy);

  bool sampled = false;
  const auto blocks = select_blocks(res.config.grid, policy, sampled);

  BlockRuntime rt;
  rt.configure(dev, res.config);
  // One shared L2 model at full device capacity, kept warm across blocks.
  rt.l2.configure(dev.l2_bytes / static_cast<std::size_t>(dev.line_bytes));
  rt.keep_l2_warm = true;
  for (long long b : blocks) {
    BlockCtx blk(rt, res.config, b);
    kernel.run_block(blk);
  }
  finalize_result(res, dev, rt.metrics, sampled, static_cast<long long>(blocks.size()));
  return res;
}

LaunchResult launch(const DeviceSpec& dev, const Kernel& kernel,
                    const SamplePolicy& policy) {
  LaunchResult res;
  res.kernel_name = kernel.name();
  res.config = kernel.config(dev);
  res.occupancy = compute_occupancy(dev, res.config);
  res.achieved_occupancy = achieved_occupancy(dev, res.config, res.occupancy);

  // Evenly spaced block ids keep the sample representative for structured
  // grids (e.g. row-major block-per-row layouts).
  bool sampled = false;
  const auto blocks = select_blocks(res.config.grid, policy, sampled);
  const long long simulated = static_cast<long long>(blocks.size());

  LaunchMetrics total;
#pragma omp parallel
  {
    // Each simulation thread keeps its own runtime (caches, counters, smem).
    BlockRuntime rt;
    rt.configure(dev, res.config);
#pragma omp for schedule(dynamic, 64)
    for (long long i = 0; i < simulated; ++i) {
      BlockCtx blk(rt, res.config, blocks[static_cast<std::size_t>(i)]);
      kernel.run_block(blk);
    }
#pragma omp critical
    total += rt.metrics;
  }

  finalize_result(res, dev, total, sampled, simulated);
  return res;
}

}  // namespace gespmm::gpusim
