#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/types.hpp"

namespace gespmm::gpusim {

namespace {

/// Saturating utilisation: u(C) -> 1 as concurrency C grows; u(C_half) = 0.5.
double saturation(double concurrency, double c_half) {
  if (concurrency <= 0.0) return 1e-3;
  return concurrency / (concurrency + c_half);
}

}  // namespace

double achieved_occupancy(const DeviceSpec& dev, const LaunchConfig& cfg,
                          const Occupancy& occ) {
  const int warps_per_block = (cfg.block + kWarpSize - 1) / kWarpSize;
  const double total_warps = static_cast<double>(cfg.grid) * warps_per_block;
  const double slots =
      static_cast<double>(dev.num_sms) * std::max(1, occ.active_warps_per_sm);
  const double fill = slots > 0 ? std::min(1.0, total_warps / slots) : 0.0;
  return occ.fraction * fill;
}

TimeBreakdown estimate_time(const DeviceSpec& dev, const LaunchConfig& cfg,
                            const LaunchMetrics& m, const Occupancy& occ) {
  TimeBreakdown t;
  const int warps_per_block = (cfg.block + kWarpSize - 1) / kWarpSize;
  const double total_warps = static_cast<double>(cfg.grid) * warps_per_block;

  // Concurrency available for latency hiding: resident warps per SM, but no
  // more than the grid actually provides.
  const double resident_warps_per_sm =
      std::min(static_cast<double>(std::max(1, occ.active_warps_per_sm)),
               total_warps / dev.num_sms);
  const double ilp_factor =
      1.0 + dev.ilp_concurrency_gain * (std::min(cfg.ilp, dev.ilp_cap) - 1.0);
  const double reg_pressure =
      1.0 + dev.reg_pressure_slope *
                std::max(0.0, static_cast<double>(cfg.regs_per_thread) - dev.reg_pressure_knee);
  const double concurrency = resident_warps_per_sm * ilp_factor / reg_pressure;
  t.concurrency = concurrency;

  const double u_dram = saturation(concurrency, dev.dram_half_saturation_warps);
  const double u_l2 = saturation(concurrency, dev.l2_half_saturation_warps);
  t.utilization = u_dram;

  const double tb = dev.transaction_bytes;
  const double gb = 1e9;  // bytes per (GB/s * ms * 1e-3) — we work in ms below.

  // DRAM: load misses + write-through stores.
  const double dram_bytes = static_cast<double>(m.dram_transactions) * tb;
  t.dram_ms = dram_bytes / (dev.dram_bw_gbps * u_dram * gb) * 1e3;

  // L2 interface: every transaction that was not absorbed by L1, plus
  // stores.
  const double l2_transactions =
      static_cast<double>(m.gld_transactions - m.l1_hits + m.gst_transactions);
  const double l2_bytes = l2_transactions * tb;
  t.l2_ms = l2_bytes / (dev.dram_bw_gbps * dev.l2_bw_ratio * u_l2 * gb) * 1e3;

  // L1 interface: all load transactions pass through it when it is enabled.
  if (dev.unified_l1) {
    const double l1_bytes = static_cast<double>(m.gld_transactions) * tb;
    t.l1_ms = l1_bytes / (dev.dram_bw_gbps * dev.l1_bw_ratio * gb) * 1e3;
  }

  // Shared memory.
  const double smem_bytes =
      static_cast<double>(m.smem_load_bytes + m.smem_store_bytes);
  t.smem_ms = smem_bytes / (dev.smem_bw_gbps * gb) * 1e3;

  // MMA pipe: dense-tile math at the device's MMA peak, derated by its own
  // saturation curve (the pipe fills with few resident warps — fragments
  // are register-held and issue is regular). Counted per slot of every
  // issued tile, so zero-padding of ragged rows inflates this term and the
  // hybrid partitioner's threshold choice becomes visible as modelled time.
  if (m.mma_flops > 0) {
    const double u_mma = saturation(concurrency, dev.mma_half_saturation_warps);
    t.mma_ms = static_cast<double>(m.mma_flops) /
               (dev.mma_tflops * u_mma * 1e12) * 1e3;
  }

  // Instruction issue.
  const double issue_rate =
      static_cast<double>(dev.num_sms) * dev.issue_width * dev.clock_ghz * 1e9;
  t.issue_ms = static_cast<double>(m.warp_instructions) / issue_rate * 1e3;

  // Critical path of the most loaded block: with B blocks spread over the
  // SMs, the kernel cannot finish before its longest dependent load chain
  // drains — how row-length skew hurts row-per-warp/block mappings.
  const double overlap = dev.mlp_per_warp * std::min(cfg.ilp, 2.0);
  const double chain = static_cast<double>(m.max_block_gld_instructions) /
                       std::max(1, warps_per_block);
  t.tail_ms = chain * dev.mem_latency_ns / std::max(1.0, overlap) * 1e-6;

  t.launch_overhead_ms = dev.launch_overhead_us * 1e-3;

  double worst = t.dram_ms;
  t.bottleneck = "dram";
  auto consider = [&](double v, const char* n) {
    if (v > worst) {
      worst = v;
      t.bottleneck = n;
    }
  };
  consider(t.l2_ms, "l2");
  consider(t.l1_ms, "l1");
  consider(t.smem_ms, "smem");
  consider(t.issue_ms, "issue");
  consider(t.mma_ms, "mma");
  consider(t.tail_ms, "tail");

  t.total_ms = t.launch_overhead_ms + worst;
  return t;
}

}  // namespace gespmm::gpusim
