#pragma once
/// \file warp.hpp
/// BlockCtx / WarpCtx: the execution context simulated kernels are written
/// against.
///
/// A kernel implements `run_block(BlockCtx&)` and expresses SIMT code
/// warp-synchronously: per-lane values live in `Lanes<T>` vectors, activity
/// masks express divergence, and all global memory traffic flows through
/// WarpCtx::ld_*/st_* so that values move for real *and* every instruction
/// is coalesced, cache-filtered and counted.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/coalesce.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_array.hpp"
#include "gpusim/metrics.hpp"
#include "gpusim/types.hpp"

namespace gespmm::gpusim {

/// Per-simulation-thread mutable state shared by consecutive blocks: metric
/// counters, cache models and the shared-memory arena. Owned by the launch
/// engine; kernels never see it directly.
struct BlockRuntime {
  const DeviceSpec* dev = nullptr;
  LaunchMetrics metrics;
  SectorCache l1;
  SectorCache l2;
  std::vector<std::byte> smem;
  std::size_t smem_used = 0;
  /// Sequential validation mode: keep L2 contents across blocks (the
  /// shared-L2 exactness check of launch_sequential_shared_l2).
  bool keep_l2_warm = false;

  void configure(const DeviceSpec& d, const LaunchConfig& cfg) {
    dev = &d;
    // Pascal: global loads bypass L1 entirely -> zero-line cache.
    l1.configure(d.unified_l1 ? d.l1_bytes / static_cast<std::size_t>(d.line_bytes) : 0);
    // The shared L2 is modelled as a per-block slice (see DESIGN.md): a
    // block competes with the other resident blocks for L2 capacity.
    const std::size_t resident_hint =
        static_cast<std::size_t>(std::max(1, d.num_sms * 2));
    l2.configure(d.l2_bytes / static_cast<std::size_t>(d.line_bytes) / resident_hint);
    smem.assign(cfg.smem_bytes, std::byte{0});
  }

  void begin_block() {
    l1.new_epoch();
    if (!keep_l2_warm) l2.new_epoch();
    smem_used = 0;
  }

  /// Route one load transaction through the cache hierarchy.
  void load_transaction(std::uint64_t segment_addr) {
    ++metrics.gld_transactions;
    if (l1.enabled() && l1.access(segment_addr)) {
      ++metrics.l1_hits;
      return;
    }
    if (l2.access(segment_addr)) {
      ++metrics.l2_hits;
      return;
    }
    ++metrics.dram_transactions;
  }

  /// Stores are write-through for accounting: they consume DRAM write
  /// bandwidth and install the line in L2 (read-after-write hits).
  void store_transaction(std::uint64_t segment_addr) {
    ++metrics.gst_transactions;
    ++metrics.dram_transactions;
    l2.access(segment_addr);
    if (l1.enabled()) l1.access(segment_addr);
  }
};

class BlockCtx;

/// Warp-level view: all SIMT instructions are issued through this class.
class WarpCtx {
 public:
  WarpCtx(BlockRuntime& rt, long long block_id, int warp_in_block)
      : rt_(&rt), block_id_(block_id), warp_in_block_(warp_in_block) {}

  long long block_id() const { return block_id_; }
  int warp_in_block() const { return warp_in_block_; }
  /// Global thread index of lane 0 given the block dimension.
  long long thread_base(int block_dim) const {
    return block_id_ * block_dim + static_cast<long long>(warp_in_block_) * kWarpSize;
  }

  // --- Global memory: loads ---

  /// Lane l (active in `mask`) loads a[base_idx + l].
  template <typename T>
  Lanes<T> ld_contig(const DeviceArray<T>& a, std::int64_t base_idx, LaneMask mask) {
    note_load_inst();
    const auto r = coalesce_contiguous(
        a.base_addr() + static_cast<std::uint64_t>(base_idx) * sizeof(T), sizeof(T), mask);
    commit_load(r);
    Lanes<T> out{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (lane_active(mask, l)) {
        assert(base_idx + l >= 0 && static_cast<std::size_t>(base_idx + l) < a.size());
        out[static_cast<std::size_t>(l)] = a[static_cast<std::size_t>(base_idx + l)];
      }
    }
    return out;
  }

  /// All active lanes load the same element (the uncoalesced broadcast
  /// pattern of Algorithm 1). Returns the scalar.
  template <typename T>
  T ld_broadcast(const DeviceArray<T>& a, std::int64_t idx, LaneMask mask) {
    note_load_inst();
    assert(idx >= 0 && static_cast<std::size_t>(idx) < a.size());
    const auto r = coalesce_broadcast(
        a.base_addr() + static_cast<std::uint64_t>(idx) * sizeof(T), sizeof(T), mask);
    commit_load(r);
    return a[static_cast<std::size_t>(idx)];
  }

  /// Arbitrary per-lane indices.
  template <typename T>
  Lanes<T> ld_gather(const DeviceArray<T>& a, const Lanes<std::int64_t>& idx, LaneMask mask) {
    note_load_inst();
    Lanes<std::uint64_t> addrs{};
    Lanes<T> out{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (!lane_active(mask, l)) continue;
      const auto i = idx[static_cast<std::size_t>(l)];
      assert(i >= 0 && static_cast<std::size_t>(i) < a.size());
      addrs[static_cast<std::size_t>(l)] =
          a.base_addr() + static_cast<std::uint64_t>(i) * sizeof(T);
      out[static_cast<std::size_t>(l)] = a[static_cast<std::size_t>(i)];
    }
    const auto r = coalesce_gather(addrs, sizeof(T), mask);
    commit_load(r);
    return out;
  }

  // --- Global memory: stores ---

  template <typename T>
  void st_contig(DeviceArray<T>& a, std::int64_t base_idx, const Lanes<T>& v, LaneMask mask) {
    note_store_inst();
    const auto r = coalesce_contiguous(
        a.base_addr() + static_cast<std::uint64_t>(base_idx) * sizeof(T), sizeof(T), mask);
    commit_store(r);
    for (int l = 0; l < kWarpSize; ++l) {
      if (lane_active(mask, l)) {
        assert(base_idx + l >= 0 && static_cast<std::size_t>(base_idx + l) < a.size());
        a[static_cast<std::size_t>(base_idx + l)] = v[static_cast<std::size_t>(l)];
      }
    }
  }

  template <typename T>
  void st_gather(DeviceArray<T>& a, const Lanes<std::int64_t>& idx, const Lanes<T>& v,
                 LaneMask mask) {
    note_store_inst();
    Lanes<std::uint64_t> addrs{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (!lane_active(mask, l)) continue;
      const auto i = idx[static_cast<std::size_t>(l)];
      assert(i >= 0 && static_cast<std::size_t>(i) < a.size());
      addrs[static_cast<std::size_t>(l)] =
          a.base_addr() + static_cast<std::uint64_t>(i) * sizeof(T);
      a[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(l)];
    }
    const auto r = coalesce_gather(addrs, sizeof(T), mask);
    commit_store(r);
  }

  /// Commit a pre-computed coalescing result through the store path. Used
  /// by kernels that stage stores through shared memory (the burst pattern
  /// is known) while moving the real values separately.
  void st_accounting(const CoalesceResult& r) {
    note_store_inst();
    commit_store(r);
  }

  /// Atomic read-modify-write scatter (GunRock-style accumulation): costs a
  /// load plus a store transaction per distinct segment, plus replay
  /// instructions proportional to address conflicts within the warp.
  void atomic_add_gather(DeviceArray<float>& a, const Lanes<std::int64_t>& idx,
                         const Lanes<float>& v, LaneMask mask) {
    note_load_inst();
    note_store_inst();
    Lanes<std::uint64_t> addrs{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (!lane_active(mask, l)) continue;
      const auto i = idx[static_cast<std::size_t>(l)];
      assert(i >= 0 && static_cast<std::size_t>(i) < a.size());
      addrs[static_cast<std::size_t>(l)] =
          a.base_addr() + static_cast<std::uint64_t>(i) * sizeof(float);
      a[static_cast<std::size_t>(i)] += v[static_cast<std::size_t>(l)];
    }
    const auto r = coalesce_gather(addrs, sizeof(float), mask);
    commit_load(r);
    commit_store(r);
    // Conflicting lanes are serialized (replays).
    const int conflicts =
        active_lanes(mask) - static_cast<int>(r.useful_bytes / sizeof(float));
    if (conflicts > 0) count_inst(static_cast<std::uint64_t>(conflicts));
    count_flops(static_cast<std::uint64_t>(active_lanes(mask)));
  }

  // --- Shared memory ---

  /// Account a shared-memory load/store of `bytes` useful bytes (one warp
  /// instruction each). Data movement itself happens through the span the
  /// block handed out, keeping the computation real.
  void smem_load(std::uint64_t bytes) {
    count_inst(1);
    rt_->metrics.smem_load_bytes += bytes;
  }
  void smem_store(std::uint64_t bytes) {
    count_inst(1);
    rt_->metrics.smem_store_bytes += bytes;
  }

  // --- Warp intrinsics / bookkeeping ---

  /// __shfl_sync: broadcast the value held by `src_lane`.
  template <typename T>
  T shfl(const Lanes<T>& v, int src_lane) {
    count_inst(1);
    return v[static_cast<std::size_t>(src_lane)];
  }

  void sync_warp() { count_inst(1); }

  /// FMA work: n fused multiply-adds = 2n FLOPs, one warp instruction per
  /// call site (SIMT executes all lanes at once).
  void count_fma(std::uint64_t n_lanes) {
    rt_->metrics.flops += 2 * n_lanes;
    count_inst(1);
  }

  /// Warp-level dense-tile multiply-accumulate (the MMA pipe): one issue
  /// computing an m x n x k tile, 2*m*n*k FLOPs regardless of how many
  /// slots hold real data — padding waste is charged at full price. The
  /// actual values move through the issuing kernel's own arithmetic (the
  /// "values move for real, accounting models the hardware" convention,
  /// cf. st_accounting); this call is the accounting event.
  void mma_tile(int m, int n, int k) {
    rt_->metrics.mma_flops += 2ull * static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(n) *
                              static_cast<std::uint64_t>(k);
    ++rt_->metrics.mma_instructions;
    ++rt_->metrics.warp_instructions;
  }
  void count_flops(std::uint64_t n) { rt_->metrics.flops += n; }
  /// Arithmetic/control warp instructions not otherwise counted (loop
  /// increments, compares, address math).
  void count_inst(std::uint64_t n) { rt_->metrics.warp_instructions += n; }

 private:
  void note_load_inst() {
    ++rt_->metrics.gld_instructions;
    ++rt_->metrics.warp_instructions;
  }
  void note_store_inst() {
    ++rt_->metrics.gst_instructions;
    ++rt_->metrics.warp_instructions;
  }
  void commit_load(const CoalesceResult& r) {
    rt_->metrics.gld_useful_bytes += r.useful_bytes;
    for (int i = 0; i < r.transactions; ++i) {
      rt_->load_transaction(r.segments[static_cast<std::size_t>(i)]);
    }
  }
  void commit_store(const CoalesceResult& r) {
    rt_->metrics.gst_useful_bytes += r.useful_bytes;
    for (int i = 0; i < r.transactions; ++i) {
      rt_->store_transaction(r.segments[static_cast<std::size_t>(i)]);
    }
  }

  BlockRuntime* rt_;
  long long block_id_;
  int warp_in_block_;
};

/// Block-level view: hands out warps and shared memory.
class BlockCtx {
 public:
  BlockCtx(BlockRuntime& rt, const LaunchConfig& cfg, long long block_id)
      : rt_(&rt), cfg_(&cfg), block_id_(block_id),
        gld_inst_at_entry_(rt.metrics.gld_instructions) {
    rt_->begin_block();
  }

  /// On exit, record the block's load-chain length for the cost model's
  /// critical-path term (load imbalance: one huge block bounds the kernel).
  ~BlockCtx() {
    const std::uint64_t delta = rt_->metrics.gld_instructions - gld_inst_at_entry_;
    rt_->metrics.max_block_gld_instructions =
        std::max(rt_->metrics.max_block_gld_instructions, delta);
  }
  BlockCtx(const BlockCtx&) = delete;
  BlockCtx& operator=(const BlockCtx&) = delete;

  long long block_id() const { return block_id_; }
  int block_dim() const { return cfg_->block; }
  int num_warps() const { return (cfg_->block + kWarpSize - 1) / kWarpSize; }

  WarpCtx warp(int warp_in_block) { return WarpCtx(*rt_, block_id_, warp_in_block); }

  /// Bump-allocate `count` elements of block shared memory. Allocations are
  /// naturally aligned and must fit the smem_bytes declared in the launch
  /// config (asserted).
  template <typename T>
  std::span<T> smem_alloc(std::size_t count) {
    std::size_t off = (rt_->smem_used + alignof(T) - 1) & ~(alignof(T) - 1);
    assert(off + count * sizeof(T) <= rt_->smem.size() &&
           "kernel exceeded its declared shared memory");
    rt_->smem_used = off + count * sizeof(T);
    return {reinterpret_cast<T*>(rt_->smem.data() + off), count};
  }

  /// __syncthreads(): one instruction per warp; phases are executed in
  /// program order by the engine so this is an accounting event.
  void sync_block() { rt_->metrics.warp_instructions += static_cast<std::uint64_t>(num_warps()); }

 private:
  BlockRuntime* rt_;
  const LaunchConfig* cfg_;
  long long block_id_;
  std::uint64_t gld_inst_at_entry_;
};

/// Base class for simulated kernels.
class Kernel {
 public:
  virtual ~Kernel() = default;
  /// Launch geometry + static resources for a device.
  virtual LaunchConfig config(const DeviceSpec& dev) const = 0;
  /// Execute one thread block (called once per simulated block).
  virtual void run_block(BlockCtx& blk) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace gespmm::gpusim
