#pragma once
/// \file mma.hpp
/// Tensor-core (MMA pipe) execution model.
///
/// The hybrid SpMM path (kernels/spmm_hybrid) routes dense-ish row windows
/// to warp-level dense-tile multiply-accumulates, HC-SpMM style. This
/// header defines the tile geometry that model is built around:
///
///  - a warp-level mma consumes an m x k A-fragment and a k x n B-fragment
///    and accumulates an m x n C-fragment — the WMMA 16x16x16 shape on
///    Turing, and the same register-blocked shape emulated on the FMA pipe
///    on Pascal (which has no tensor cores);
///  - operands are staged through shared memory (the fragment build is
///    accounted as smem traffic by the kernels that issue mma);
///  - issued tile math is counted in LaunchMetrics::mma_flops and priced
///    by the cost model's MMA-pipe term against DeviceSpec::mma_tflops,
///    so zero-padding waste (ragged rows packed into dense tiles) shows up
///    as modelled time instead of being hidden.
///
/// The K dimension doubles as the hybrid partition threshold: a row with
/// at least `k` nonzeros fills one A-fragment row slice and is worth
/// routing to the MMA pipe (see kernels::partition_rows_by_density).

#include "gpusim/device.hpp"

namespace gespmm::gpusim {

/// Dense fragment shape one warp-level mma consumes.
struct MmaTileSpec {
  int m = 16;  ///< C-fragment rows (rows per hybrid row window).
  int n = 16;  ///< C-fragment columns covered per issue.
  int k = 16;  ///< Reduction slice length — the hybrid density threshold.

  /// FLOPs one issue performs (every slot, padded or not: the hardware
  /// computes the full tile).
  std::uint64_t flops() const {
    return 2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
           static_cast<std::uint64_t>(k);
  }
};

/// The tile shape the device's MMA path executes. Both presets use the
/// WMMA 16x16x16 shape; on a device without tensor cores
/// (DeviceSpec::tensor_cores == false) the same tile is a register-blocked
/// FMA micro-kernel, priced by the lower mma_tflops of the preset.
inline MmaTileSpec mma_tile_for(const DeviceSpec& dev) {
  (void)dev;  // one shape for the modelled parts; throughput differs.
  return MmaTileSpec{};
}

}  // namespace gespmm::gpusim
