#pragma once
/// \file gpusim.hpp
/// Umbrella header for the warp-level GPU simulator.

#include "gpusim/cache.hpp"      // IWYU pragma: export
#include "gpusim/coalesce.hpp"   // IWYU pragma: export
#include "gpusim/cost_model.hpp" // IWYU pragma: export
#include "gpusim/device.hpp"     // IWYU pragma: export
#include "gpusim/device_array.hpp" // IWYU pragma: export
#include "gpusim/launch.hpp"     // IWYU pragma: export
#include "gpusim/metrics.hpp"    // IWYU pragma: export
#include "gpusim/mma.hpp"        // IWYU pragma: export
#include "gpusim/types.hpp"      // IWYU pragma: export
#include "gpusim/warp.hpp"       // IWYU pragma: export
