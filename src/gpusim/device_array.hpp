#pragma once
/// \file device_array.hpp
/// Host-backed "device" buffers with a deterministic virtual address space.
///
/// Simulated kernels access these through WarpCtx::ld/st, which both moves
/// real values (so computation is genuine) and feeds the coalescer with the
/// buffer's *virtual device addresses* (so transaction counts are genuine
/// too). Virtual addresses come from a global bump allocator with 256-byte
/// alignment — like cudaMalloc — which makes coalescing and cache-conflict
/// behaviour bit-identical across runs (real heap addresses would wobble
/// with ASLR and allocation history).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gespmm::gpusim {

namespace detail {
inline constexpr std::uint64_t kArenaBase = 0x1000'0000ull;
inline std::atomic<std::uint64_t>& device_arena() {
  static std::atomic<std::uint64_t> next{kArenaBase};
  return next;
}
}  // namespace detail

/// Reserve a 256-byte-aligned virtual device range of `bytes` bytes.
inline std::uint64_t allocate_device_address(std::size_t bytes) {
  const std::uint64_t len = (static_cast<std::uint64_t>(bytes) + 255u) & ~255ull;
  return detail::device_arena().fetch_add(len + 256u);
}

/// Reset the virtual address space. Only safe when no simulated launch is
/// in flight; used by tests/benches that need identical addresses across
/// repeated in-process experiments.
inline void reset_device_address_space() {
  detail::device_arena().store(detail::kArenaBase);
}

/// A typed device buffer. Element type must be trivially copyable and its
/// size must divide the 32-byte transaction size (4- and 8-byte elements),
/// so a naturally aligned element never straddles a transaction boundary.
template <typename T>
class DeviceArray {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(32 % sizeof(T) == 0, "element must not straddle transactions");

 public:
  DeviceArray() : base_(allocate_device_address(0)), reserved_(0) {}
  explicit DeviceArray(std::size_t n) : data_(n) { reserve_addresses(); }
  DeviceArray(std::size_t n, T fill) : data_(n, fill) { reserve_addresses(); }
  explicit DeviceArray(std::span<const T> host) : data_(host.begin(), host.end()) {
    reserve_addresses();
  }

  DeviceArray(const DeviceArray& o) : data_(o.data_) { reserve_addresses(); }
  DeviceArray& operator=(const DeviceArray& o) {
    data_ = o.data_;
    reserve_addresses();
    return *this;
  }
  DeviceArray(DeviceArray&&) noexcept = default;
  DeviceArray& operator=(DeviceArray&&) noexcept = default;

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Virtual device byte address of element 0 (256-byte aligned, unique).
  std::uint64_t base_addr() const { return base_; }

  // Host-side access for setup and verification.
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> host() { return {data_.data(), data_.size()}; }
  std::span<const T> host() const { return {data_.data(), data_.size()}; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  void assign(std::span<const T> host) {
    data_.assign(host.begin(), host.end());
    if (data_.size() * sizeof(T) > reserved_) reserve_addresses();
  }
  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(std::size_t n) {
    data_.resize(n);
    if (n * sizeof(T) > reserved_) reserve_addresses();
  }

 private:
  void reserve_addresses() {
    reserved_ = data_.size() * sizeof(T);
    base_ = allocate_device_address(reserved_);
  }

  std::vector<T> data_;
  std::uint64_t base_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace gespmm::gpusim
