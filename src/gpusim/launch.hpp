#pragma once
/// \file launch.hpp
/// The launch engine: executes a Kernel block-by-block, optionally sampling
/// a deterministic subset of blocks and extrapolating the metrics.

#include <cstdint>
#include <string>

#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"
#include "gpusim/warp.hpp"

namespace gespmm::gpusim {

/// Block-sampling policy. With the default (max_blocks = unlimited) every
/// block is executed and output buffers are complete. With a finite
/// max_blocks, evenly spaced blocks are executed and metric counters are
/// scaled by grid/simulated — standard sampling-simulator practice; only
/// valid when performance metrics (not full outputs) are needed. Caveat:
/// max-type statistics (max_block_gld_instructions, which drives the
/// cost model's load-imbalance tail term) are taken over the sampled
/// blocks only and can miss a rare hub block; use full simulation when
/// extreme skew matters.
struct SamplePolicy {
  std::uint64_t max_blocks = UINT64_MAX;
  static SamplePolicy full() { return {}; }
  static SamplePolicy sampled(std::uint64_t max_blocks) { return {max_blocks}; }
};

struct LaunchResult {
  LaunchMetrics metrics;
  LaunchConfig config;
  Occupancy occupancy;
  TimeBreakdown time;
  double achieved_occupancy = 0.0;
  std::string kernel_name;

  double time_ms() const { return time.total_ms; }
  /// nvprof gld_throughput in GB/s.
  double gld_throughput_gbps(int transaction_bytes = 32) const {
    return time.total_ms > 0.0
               ? static_cast<double>(metrics.gld_bytes(transaction_bytes)) /
                     (time.total_ms * 1e-3) / 1e9
               : 0.0;
  }
  /// Achieved GFLOP/s given a nominal FLOP count (the paper uses 2*nnz*N).
  double gflops(double nominal_flops) const {
    return time.total_ms > 0.0 ? nominal_flops / (time.total_ms * 1e-3) / 1e9 : 0.0;
  }
};

/// Execute `kernel` on `dev`. Blocks are independent and are simulated in
/// parallel with per-thread cache/metric state; results are deterministic.
LaunchResult launch(const DeviceSpec& dev, const Kernel& kernel,
                    const SamplePolicy& policy = SamplePolicy::full());

/// Validation mode: execute blocks *sequentially* against one L2 cache
/// model sized to the device's full L2 (instead of the default per-block
/// slice approximation that keeps the parallel engine deterministic).
/// Slower; used by tests to bound the approximation error of the default
/// engine (DESIGN.md §4).
LaunchResult launch_sequential_shared_l2(const DeviceSpec& dev, const Kernel& kernel,
                                         const SamplePolicy& policy = SamplePolicy::full());

}  // namespace gespmm::gpusim
