#include "gpusim/device.hpp"

#include <algorithm>
#include <stdexcept>

#include "gpusim/types.hpp"

namespace gespmm::gpusim {

DeviceSpec gtx1080ti() {
  DeviceSpec d;
  d.name = "gtx1080ti";
  d.num_sms = 28;
  d.clock_ghz = 1.481;
  d.max_warps_per_sm = 64;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.regs_per_sm = 65536;
  d.smem_per_sm = 96 * 1024;
  d.max_smem_per_block = 48 * 1024;
  d.dram_bytes = 11ull * 1024 * 1024 * 1024;  // 11 GB GDDR5X
  d.dram_bw_gbps = 484.0;
  d.l2_bw_ratio = 2.0;   // GP102 L2 ~ 1 TB/s
  d.unified_l1 = false;  // Pascal: global loads bypass L1 by default
  d.l1_bytes = 48 * 1024;
  d.l2_bytes = 2816 * 1024;
  d.smem_bw_gbps = 28 * 128 * 1.481;  // ~5.3 TB/s
  d.dram_half_saturation_warps = 50.0;
  d.l2_half_saturation_warps = 50.0;
  // Pascal has no tensor cores: dense MMA tiles execute as register-blocked
  // FMA micro-kernels, so the MMA path peaks well below the 10.6 TFLOP/s
  // FMA peak (operand staging steals issue slots).
  d.tensor_cores = false;
  d.mma_tflops = 9.0;
  d.mma_half_saturation_warps = 8.0;
  return d;
}

DeviceSpec rtx2080() {
  DeviceSpec d;
  d.name = "rtx2080";
  d.num_sms = 46;
  d.clock_ghz = 1.515;
  d.max_warps_per_sm = 32;  // Turing halves warp slots per SM
  d.max_threads_per_sm = 1024;
  d.max_blocks_per_sm = 16;
  d.regs_per_sm = 65536;
  d.smem_per_sm = 64 * 1024;
  d.max_smem_per_block = 64 * 1024;
  d.dram_bytes = 8ull * 1024 * 1024 * 1024;  // 8 GB GDDR6
  d.dram_bw_gbps = 448.0;
  d.l2_bw_ratio = 2.2;  // TU104 L2 relatively faster
  d.l1_bw_ratio = 6.0;
  d.unified_l1 = true;  // Turing: unified L1 caches global loads
  d.l1_bytes = 64 * 1024;
  d.l2_bytes = 4096 * 1024;
  d.smem_bw_gbps = 46 * 128 * 1.515;  // ~8.9 TB/s
  // Turing has half the warp slots per SM; per-warp latency tolerance is
  // similar, so the half-saturation point stays high relative to the slot
  // count and ILP matters even more than on Pascal.
  d.dram_half_saturation_warps = 50.0;
  d.l2_half_saturation_warps = 25.0;
  // TU104 tensor cores: ~80 TFLOP/s FP16 peak; FP32-accumulate WMMA with
  // realistic operand staging lands near half of that.
  d.tensor_cores = true;
  d.mma_tflops = 40.0;
  d.mma_half_saturation_warps = 8.0;
  return d;
}

DeviceSpec device_by_name(const std::string& name) {
  if (name == "gtx1080ti" || name == "1080ti" || name == "pascal") {
    return gtx1080ti();
  }
  if (name == "rtx2080" || name == "2080" || name == "turing") {
    return rtx2080();
  }
  throw std::invalid_argument("unknown device: " + name);
}

Occupancy compute_occupancy(const DeviceSpec& dev, const LaunchConfig& cfg) {
  Occupancy occ;
  const int warps_per_block = std::max(1, (cfg.block + kWarpSize - 1) / kWarpSize);

  // Each limit expressed as blocks per SM.
  const int by_blocks = dev.max_blocks_per_sm;
  const int by_threads = std::max(1, dev.max_threads_per_sm) / std::max(1, cfg.block);
  const int by_warps = dev.max_warps_per_sm / warps_per_block;
  const long long regs_per_block =
      static_cast<long long>(std::max(1, cfg.regs_per_thread)) * cfg.block;
  const int by_regs = static_cast<int>(std::max<long long>(
      0, dev.regs_per_sm / std::max<long long>(1, regs_per_block)));
  const int by_smem =
      cfg.smem_bytes == 0
          ? dev.max_blocks_per_sm
          : static_cast<int>(dev.smem_per_sm / std::max<std::size_t>(1, cfg.smem_bytes));

  int blocks = by_blocks;
  occ.limiter = "blocks";
  auto tighten = [&](int limit, const char* why) {
    if (limit < blocks) {
      blocks = limit;
      occ.limiter = why;
    }
  };
  tighten(by_threads, "threads");
  tighten(by_warps, "warps");
  tighten(by_regs, "registers");
  tighten(by_smem, "smem");

  occ.blocks_per_sm = std::max(0, blocks);
  occ.active_warps_per_sm = occ.blocks_per_sm * warps_per_block;
  occ.active_warps_per_sm = std::min(occ.active_warps_per_sm, dev.max_warps_per_sm);
  occ.fraction = dev.max_warps_per_sm > 0
                     ? static_cast<double>(occ.active_warps_per_sm) / dev.max_warps_per_sm
                     : 0.0;
  return occ;
}

}  // namespace gespmm::gpusim
