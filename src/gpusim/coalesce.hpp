#pragma once
/// \file coalesce.hpp
/// Warp-level memory coalescing: map the byte addresses issued by one SIMT
/// load/store instruction onto 32-byte transactions, the unit nvprof counts.
///
/// GPUs merge the requests of a warp into as few transactions as possible.
/// Three access shapes cover the kernels in this project:
///  - contiguous: lane l accesses base + l*sizeof(T)  -> O(1) segment range
///  - broadcast:  all lanes access the same element   -> exactly 1 segment
///  - gather:     arbitrary per-lane addresses        -> sort-unique (n<=32)

#include <algorithm>
#include <array>
#include <cstdint>

#include "gpusim/types.hpp"

namespace gespmm::gpusim {

/// Result of coalescing one SIMT memory instruction.
struct CoalesceResult {
  /// Number of 32-byte transactions issued.
  int transactions = 0;
  /// Bytes actually referenced by the program (unique addresses * size).
  std::uint64_t useful_bytes = 0;
  /// The distinct 32-byte-aligned segment addresses (for cache lookups).
  std::array<std::uint64_t, 2 * kWarpSize> segments{};
};

inline constexpr int kSegmentShift = 5;  // 32-byte transactions

/// Contiguous access: active lanes l in [lo, hi] access
/// [base + lo*esize, base + (hi+1)*esize). Lanes outside the mask do not
/// request bytes but segments spanning mask holes are still transacted,
/// exactly as on hardware.
inline CoalesceResult coalesce_contiguous(std::uint64_t base_addr, int esize,
                                          LaneMask mask) {
  CoalesceResult r;
  if (mask == 0) return r;
  const int lo = std::countr_zero(mask);
  const int hi = kWarpSize - 1 - std::countl_zero(mask);
  const std::uint64_t first = base_addr + static_cast<std::uint64_t>(lo) * esize;
  const std::uint64_t last = base_addr + static_cast<std::uint64_t>(hi) * esize + esize - 1;
  const std::uint64_t seg_first = first >> kSegmentShift;
  const std::uint64_t seg_last = last >> kSegmentShift;
  r.transactions = static_cast<int>(seg_last - seg_first + 1);
  for (int i = 0; i < r.transactions && i < static_cast<int>(r.segments.size()); ++i) {
    r.segments[static_cast<std::size_t>(i)] = (seg_first + static_cast<std::uint64_t>(i))
                                              << kSegmentShift;
  }
  r.useful_bytes = static_cast<std::uint64_t>(active_lanes(mask)) * esize;
  return r;
}

/// Broadcast: every active lane reads the same naturally aligned element.
/// One transaction moves 32 bytes of which only `esize` are useful — this is
/// the pattern that makes the naive SpMM (Algorithm 1) inefficient.
inline CoalesceResult coalesce_broadcast(std::uint64_t addr, int esize, LaneMask mask) {
  CoalesceResult r;
  if (mask == 0) return r;
  r.transactions = 1;
  r.segments[0] = (addr >> kSegmentShift) << kSegmentShift;
  r.useful_bytes = static_cast<std::uint64_t>(esize);
  return r;
}

/// Arbitrary gather/scatter. Elements are naturally aligned so each lane
/// touches exactly one segment; duplicates across lanes are merged both for
/// transactions and for useful bytes.
inline CoalesceResult coalesce_gather(const Lanes<std::uint64_t>& addrs, int esize,
                                      LaneMask mask) {
  CoalesceResult r;
  if (mask == 0) return r;
  std::array<std::uint64_t, kWarpSize> act{};
  int n = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (lane_active(mask, l)) {
      act[static_cast<std::size_t>(n++)] = addrs[static_cast<std::size_t>(l)];
    }
  }
  std::sort(act.begin(), act.begin() + n);
  std::uint64_t prev_addr = ~std::uint64_t{0};
  std::uint64_t prev_seg = ~std::uint64_t{0};
  for (int i = 0; i < n; ++i) {
    const std::uint64_t a = act[static_cast<std::size_t>(i)];
    if (a != prev_addr) {
      r.useful_bytes += static_cast<std::uint64_t>(esize);
      prev_addr = a;
    }
    const std::uint64_t seg = a >> kSegmentShift;
    if (seg != prev_seg) {
      r.segments[static_cast<std::size_t>(r.transactions++)] = seg << kSegmentShift;
      prev_seg = seg;
    }
  }
  return r;
}

}  // namespace gespmm::gpusim
