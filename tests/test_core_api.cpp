/// Public API contract tests: gespmm::spmm / spmm_like / profile_spmm.

#include <gtest/gtest.h>

#include "core/gespmm.hpp"
#include "core/version.hpp"
#include "kernels/spmm_host.hpp"
#include "sparse/generators.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

TEST(CoreApi, SpmmMatchesReference) {
  const Csr a = sparse::uniform_random(300, 280, 2500, 101);
  DenseMatrix b(280, 40);
  kernels::fill_random(b, 5);
  DenseMatrix c(300, 40);
  spmm(a, b, c);
  testutil::expect_matches_reference(a, b, c, ReduceKind::Sum);
}

TEST(CoreApi, SpmmSupportsAllBuiltinReductions) {
  const Csr a = sparse::uniform_random(120, 120, 900, 102);
  DenseMatrix b(120, 24);
  kernels::fill_random(b, 6);
  for (auto k : {ReduceKind::Sum, ReduceKind::Max, ReduceKind::Min, ReduceKind::Mean}) {
    DenseMatrix c(120, 24);
    spmm(a, b, c, k);
    testutil::expect_matches_reference(a, b, c, k);
  }
}

TEST(CoreApi, SpmmValidatesShapes) {
  const Csr a = sparse::uniform_random(10, 12, 40, 103);
  DenseMatrix wrong_b(10, 8);  // must be 12 x n
  DenseMatrix c(10, 8);
  EXPECT_THROW(spmm(a, wrong_b, c), std::invalid_argument);
  DenseMatrix b(12, 8);
  DenseMatrix wrong_c(11, 8);
  EXPECT_THROW(spmm(a, b, wrong_c), std::invalid_argument);
}

TEST(CoreApi, SpmmLikeCustomOperatorRuns) {
  // A user-defined "count of contributions above 0.5" reduction — the
  // style of operator Section IV-A says future GNNs may need.
  const Csr a = sparse::uniform_random(64, 64, 512, 104);
  DenseMatrix b(64, 16);
  kernels::fill_random(b, 7, 0.0f, 1.0f);
  DenseMatrix c(64, 16);
  CustomReduceOp op;
  op.init = [] { return 0.0f; };
  op.reduce = [](value_t acc, value_t x) { return acc + (x > 0.5f ? 1.0f : 0.0f); };
  spmm_like(a, b, c, op);
  // Reference.
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < 16; ++j) {
      float expect = 0.0f;
      for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
           p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
        const float x = a.val[static_cast<std::size_t>(p)] *
                        b.at(a.colind[static_cast<std::size_t>(p)], j);
        if (x > 0.5f) expect += 1.0f;
      }
      ASSERT_FLOAT_EQ(c.at(i, j), expect) << i << "," << j;
    }
  }
}

TEST(CoreApi, SpmmLikeMeanViaFinalize) {
  const Csr a = sparse::uniform_random(80, 80, 600, 105);
  DenseMatrix b(80, 8);
  kernels::fill_random(b, 8);
  DenseMatrix c(80, 8), c_ref(80, 8);
  CustomReduceOp op;
  op.init = [] { return 0.0f; };
  op.reduce = [](value_t acc, value_t x) { return acc + x; };
  op.finalize = [](value_t acc, index_t nnz) {
    return nnz == 0 ? 0.0f : acc / static_cast<value_t>(nnz);
  };
  spmm_like(a, b, c, op);
  spmm(a, b, c_ref, ReduceKind::Mean);
  EXPECT_LT(c.max_abs_diff(c_ref), 1e-5);
}

TEST(CoreApi, SpmmLikeRequiresInitAndReduce) {
  const Csr a = sparse::uniform_random(8, 8, 20, 106);
  DenseMatrix b(8, 4), c(8, 4);
  EXPECT_THROW(spmm_like(a, b, c, CustomReduceOp{}), std::invalid_argument);
}

TEST(CoreApi, ProfileSpmmWritesOutputAndReportsMetrics) {
  const Csr a = sparse::uniform_random(256, 256, 2000, 107);
  DenseMatrix b(256, 64);
  kernels::fill_random(b, 9);
  DenseMatrix c(256, 64);
  const auto prof = profile_spmm(a, b, c);
  EXPECT_EQ(prof.algo, SpmmAlgo::CrcCwm2);  // adaptive pick at N=64
  EXPECT_GT(prof.result.metrics.gld_transactions, 0u);
  EXPECT_GT(prof.time_ms(), 0.0);
  testutil::expect_matches_reference(a, b, c, ReduceKind::Sum);
}

TEST(CoreApi, ProfileAdaptiveSwitchesAtWarpSize) {
  const Csr a = sparse::uniform_random(128, 128, 1000, 108);
  const auto small = profile_spmm_shape(a, 16);
  EXPECT_EQ(small.algo, SpmmAlgo::Crc);
  const auto large = profile_spmm_shape(a, 128);
  EXPECT_EQ(large.algo, SpmmAlgo::CrcCwm2);
}

TEST(CoreApi, ProfileHonoursExplicitAlgoAndDevice) {
  const Csr a = sparse::uniform_random(128, 128, 1000, 109);
  ProfileOptions opt;
  opt.algo = SpmmAlgo::RowSplitGB;
  opt.device = gpusim::rtx2080();
  const auto prof = profile_spmm_shape(a, 64, opt);
  EXPECT_EQ(prof.algo, SpmmAlgo::RowSplitGB);
  EXPECT_GT(prof.result.metrics.l1_hits, 0u);  // Turing L1 is on
}

TEST(CoreApi, ProfileCsrmm2HandlesColMajorInternally) {
  const Csr a = sparse::uniform_random(100, 100, 800, 110);
  DenseMatrix b(100, 48);
  kernels::fill_random(b, 10);
  DenseMatrix c(100, 48);
  ProfileOptions opt;
  opt.algo = SpmmAlgo::Csrmm2;
  profile_spmm(a, b, c, opt);
  // Output is returned row-major regardless of the kernel's internal
  // column-major layout.
  testutil::expect_matches_reference(a, b, c, ReduceKind::Sum);
}

TEST(CoreApi, VersionMatchesCMakeProjectVersion) {
  // version() must report the CMake-stamped version, not a drifting literal.
  EXPECT_STREQ(version(), GESPMM_VERSION);
  EXPECT_STRNE(version(), "");
}

}  // namespace
}  // namespace gespmm
