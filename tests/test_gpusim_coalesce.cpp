/// Unit tests for the warp coalescer: the mapping from one SIMT memory
/// instruction's lane addresses to 32-byte transactions.

#include <gtest/gtest.h>

#include "gpusim/coalesce.hpp"

namespace gespmm::gpusim {
namespace {

TEST(Coalesce, ContiguousAlignedFloatsUseFourTransactions) {
  // 32 lanes x 4B from a 32B-aligned base = 128B = 4 transactions.
  const auto r = coalesce_contiguous(/*base=*/256, /*esize=*/4, kFullMask);
  EXPECT_EQ(r.transactions, 4);
  EXPECT_EQ(r.useful_bytes, 128u);
}

TEST(Coalesce, MisalignedContiguousSpansFiveTransactions) {
  // Starting mid-segment adds one transaction — why unaligned CSR row
  // starts cost extra (paper Section III-B).
  const auto r = coalesce_contiguous(/*base=*/256 + 12, /*esize=*/4, kFullMask);
  EXPECT_EQ(r.transactions, 5);
  EXPECT_EQ(r.useful_bytes, 128u);
}

TEST(Coalesce, BroadcastIsOneTransactionWithFourUsefulBytes) {
  const auto r = coalesce_broadcast(/*addr=*/1000, /*esize=*/4, kFullMask);
  EXPECT_EQ(r.transactions, 1);
  EXPECT_EQ(r.useful_bytes, 4u);
}

TEST(Coalesce, BroadcastInactiveMaskIsFree) {
  const auto r = coalesce_broadcast(64, 4, /*mask=*/0);
  EXPECT_EQ(r.transactions, 0);
  EXPECT_EQ(r.useful_bytes, 0u);
}

TEST(Coalesce, PartialMaskContiguous) {
  // 7 active lanes starting at an aligned base: 28 bytes -> 1 transaction.
  const auto r = coalesce_contiguous(512, 4, first_lanes(7));
  EXPECT_EQ(r.transactions, 1);
  EXPECT_EQ(r.useful_bytes, 28u);
}

TEST(Coalesce, MaskHolesStillTransactSpannedSegments) {
  // Lanes 0 and 31 active: the span covers all four segments even though
  // only 8 bytes are useful.
  const LaneMask m = (1u) | (1u << 31);
  const auto r = coalesce_contiguous(0, 4, m);
  EXPECT_EQ(r.transactions, 4);
  EXPECT_EQ(r.useful_bytes, 8u);
}

TEST(Coalesce, GatherWorstCaseIs32Transactions) {
  Lanes<std::uint64_t> addrs{};
  for (int l = 0; l < kWarpSize; ++l) {
    addrs[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(l) * 4096;
  }
  const auto r = coalesce_gather(addrs, 4, kFullMask);
  EXPECT_EQ(r.transactions, 32);
  EXPECT_EQ(r.useful_bytes, 128u);
}

TEST(Coalesce, GatherMergesDuplicateAddresses) {
  Lanes<std::uint64_t> addrs{};
  for (int l = 0; l < kWarpSize; ++l) {
    addrs[static_cast<std::size_t>(l)] = (l % 2 == 0) ? 128 : 4096;
  }
  const auto r = coalesce_gather(addrs, 4, kFullMask);
  EXPECT_EQ(r.transactions, 2);
  EXPECT_EQ(r.useful_bytes, 8u);  // two distinct words
}

TEST(Coalesce, GatherEqualsContiguousWhenAddressesAreContiguous) {
  for (std::uint64_t base : {0ull, 64ull, 100ull, 1236ull}) {
    Lanes<std::uint64_t> addrs{};
    for (int l = 0; l < kWarpSize; ++l) {
      addrs[static_cast<std::size_t>(l)] = base + static_cast<std::uint64_t>(l) * 4;
    }
    const auto g = coalesce_gather(addrs, 4, kFullMask);
    const auto c = coalesce_contiguous(base, 4, kFullMask);
    EXPECT_EQ(g.transactions, c.transactions) << "base=" << base;
    EXPECT_EQ(g.useful_bytes, c.useful_bytes) << "base=" << base;
  }
}

TEST(Coalesce, EightByteElementsHalveLanesPerTransaction) {
  const auto r = coalesce_contiguous(0, 8, kFullMask);
  EXPECT_EQ(r.transactions, 8);  // 256 bytes
  EXPECT_EQ(r.useful_bytes, 256u);
}

TEST(Coalesce, SegmentsListMatchesTransactionCount) {
  const auto r = coalesce_contiguous(320, 4, kFullMask);
  for (int i = 0; i < r.transactions; ++i) {
    EXPECT_EQ(r.segments[static_cast<std::size_t>(i)] % 32, 0u);
    if (i > 0) {
      EXPECT_EQ(r.segments[static_cast<std::size_t>(i)],
                r.segments[static_cast<std::size_t>(i - 1)] + 32);
    }
  }
}

/// Property sweep: for any (base offset, element size, mask) the
/// transaction count is within the analytic bounds and useful bytes never
/// exceed transacted bytes.
class CoalesceProperty
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>> {};

TEST_P(CoalesceProperty, BoundsHold) {
  const auto [offset, esize, mask_seed] = GetParam();
  LaneMask mask = mask_seed * 2654435761u;  // arbitrary but deterministic
  const auto r = coalesce_contiguous(static_cast<std::uint64_t>(1024 + offset), esize, mask);
  if (mask == 0) {
    EXPECT_EQ(r.transactions, 0);
    return;
  }
  const int lanes = active_lanes(mask);
  EXPECT_LE(r.useful_bytes, static_cast<std::uint64_t>(r.transactions) * 32);
  EXPECT_EQ(r.useful_bytes, static_cast<std::uint64_t>(lanes) * esize);
  EXPECT_GE(r.transactions, 1);
  EXPECT_LE(r.transactions, kWarpSize * esize / 32 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoalesceProperty,
    ::testing::Combine(::testing::Values(0, 4, 12, 20, 28),
                       ::testing::Values(4, 8),
                       ::testing::Values(0u, 1u, 3u, 17u, 255u, 65535u)));

}  // namespace
}  // namespace gespmm::gpusim
