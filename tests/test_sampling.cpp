/// Neighbour sampling and mini-batch sampled training (the paper's
/// "sampled batch training" setting, Section II-B).

#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "gnn/train_sampled.hpp"
#include "sparse/generators.hpp"
#include "sparse/sampling.hpp"

namespace gespmm::sparse {
namespace {

Csr test_graph() { return citation_graph(500, 4000, 321); }

TEST(Sampling, BlockStructureIsValid) {
  const Csr g = test_graph();
  const std::vector<index_t> batch{3, 17, 99, 200};
  SampleOptions opt;
  opt.fanout = 5;
  opt.seed = 7;
  const auto block = sample_neighbors(g, batch, opt);

  EXPECT_EQ(block.output_nodes, batch);
  EXPECT_EQ(block.adj.rows, static_cast<index_t>(batch.size()));
  EXPECT_EQ(block.adj.cols, static_cast<index_t>(block.input_nodes.size()));
  EXPECT_NO_THROW(block.adj.validate());
  // Batch nodes lead the input list (self features).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(block.input_nodes[i], batch[i]);
  }
  // Input nodes are unique.
  std::set<index_t> uniq(block.input_nodes.begin(), block.input_nodes.end());
  EXPECT_EQ(uniq.size(), block.input_nodes.size());
}

TEST(Sampling, FanoutBoundsRowDegree) {
  const Csr g = test_graph();
  std::vector<index_t> batch;
  for (index_t v = 0; v < 100; ++v) batch.push_back(v);
  SampleOptions opt;
  opt.fanout = 3;
  const auto block = sample_neighbors(g, batch, opt);
  for (index_t r = 0; r < block.adj.rows; ++r) {
    EXPECT_LE(block.adj.row_nnz(r), 3);
    EXPECT_LE(block.adj.row_nnz(r), g.row_nnz(batch[static_cast<std::size_t>(r)]));
  }
}

TEST(Sampling, SampledEdgesExistInGraph) {
  const Csr g = test_graph();
  const std::vector<index_t> batch{1, 2, 3, 50, 51};
  const auto block = sample_neighbors(g, batch, {.fanout = 4, .seed = 9});
  for (index_t r = 0; r < block.adj.rows; ++r) {
    const index_t v = block.output_nodes[static_cast<std::size_t>(r)];
    for (index_t p = block.adj.rowptr[static_cast<std::size_t>(r)];
         p < block.adj.rowptr[static_cast<std::size_t>(r) + 1]; ++p) {
      const index_t u = block.input_nodes[static_cast<std::size_t>(
          block.adj.colind[static_cast<std::size_t>(p)])];
      bool found = false;
      for (index_t q = g.rowptr[static_cast<std::size_t>(v)];
           q < g.rowptr[static_cast<std::size_t>(v) + 1]; ++q) {
        if (g.colind[static_cast<std::size_t>(q)] == u) found = true;
      }
      EXPECT_TRUE(found) << "sampled edge (" << v << "," << u << ") not in graph";
    }
  }
}

TEST(Sampling, RowsAreMeanNormalized) {
  const Csr g = test_graph();
  const std::vector<index_t> batch{10, 20, 30};
  const auto block = sample_neighbors(g, batch, {.fanout = 8, .seed = 11});
  for (index_t r = 0; r < block.adj.rows; ++r) {
    double sum = 0.0;
    for (index_t p = block.adj.rowptr[static_cast<std::size_t>(r)];
         p < block.adj.rowptr[static_cast<std::size_t>(r) + 1]; ++p) {
      sum += block.adj.val[static_cast<std::size_t>(p)];
    }
    if (block.adj.row_nnz(r) > 0) {
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

TEST(Sampling, DeterministicPerSeedDistinctAcrossSeeds) {
  const Csr g = test_graph();
  const std::vector<index_t> batch{5, 6, 7, 8};
  const auto a = sample_neighbors(g, batch, {.fanout = 4, .seed = 1});
  const auto b = sample_neighbors(g, batch, {.fanout = 4, .seed = 1});
  EXPECT_EQ(a.adj, b.adj);
  EXPECT_EQ(a.input_nodes, b.input_nodes);
  const auto c = sample_neighbors(g, batch, {.fanout = 4, .seed = 2});
  EXPECT_NE(a.adj, c.adj) << "different seeds should sample differently";
}

TEST(Sampling, MultiLayerBlocksChain) {
  const Csr g = test_graph();
  const std::vector<index_t> batch{0, 1, 2, 3, 4, 5, 6, 7};
  const auto blocks = sample_blocks(g, batch, 2, {.fanout = 4, .seed = 3});
  ASSERT_EQ(blocks.size(), 2u);
  // Application order: blocks[0] (deepest) feeds blocks[1]; the chaining
  // invariant is blocks[1].input == blocks[0].output frontier.
  EXPECT_EQ(blocks.back().output_nodes, batch);
  EXPECT_EQ(blocks.front().output_nodes, blocks.back().input_nodes);
  // Frontier grows (or stays equal) with depth.
  EXPECT_GE(blocks.front().input_nodes.size(), blocks.back().input_nodes.size());
}

TEST(Sampling, MakeBatchesPartitionsAllNodes) {
  const auto batches = make_batches(103, 25, 5);
  ASSERT_EQ(batches.size(), 5u);  // 25*4 + 3
  std::set<index_t> seen;
  for (const auto& b : batches) {
    for (index_t v : b) EXPECT_TRUE(seen.insert(v).second) << "duplicate node " << v;
  }
  EXPECT_EQ(seen.size(), 103u);
  EXPECT_THROW(make_batches(10, 0, 1), std::invalid_argument);
}

TEST(SampledTraining, RunsAndAccountsSpmmTime) {
  sparse::GraphDataset d;
  d.name = "sampled";
  d.adj = citation_graph(600, 3600, 322);
  d.feature_dim = 24;
  d.num_classes = 3;

  gnn::SampledTrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_feats = 8;
  cfg.batch_size = 200;
  cfg.fanout = 5;
  cfg.epochs = 1;
  const auto res = gnn::train_sampled(d, cfg);
  EXPECT_EQ(res.num_batches, 3);
  EXPECT_GT(res.cuda_time_ms, 0.0);
  EXPECT_GT(res.spmm_ms, 0.0);
  EXPECT_GT(res.total_sampled_nnz, 0);
  EXPECT_TRUE(std::isfinite(res.final_loss));
}

TEST(SampledTraining, LossDecreasesOverEpochs) {
  sparse::GraphDataset d;
  d.name = "sampled2";
  d.adj = citation_graph(400, 1200, 323);
  d.feature_dim = 16;
  d.num_classes = 2;

  gnn::SampledTrainConfig cfg;
  cfg.num_layers = 1;
  cfg.batch_size = 400;  // full batch for a stable signal
  cfg.fanout = 6;
  cfg.epochs = 25;
  cfg.lr = 5e-2;
  const auto res = gnn::train_sampled(d, cfg);
  EXPECT_LT(res.final_loss, res.first_loss * 0.9);
}

}  // namespace
}  // namespace gespmm::sparse
