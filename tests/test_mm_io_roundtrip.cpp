/// MatrixMarket write -> read roundtrip property test over the testutil
/// matrix zoo, plus parsing of the `pattern` and `symmetric` variants and a
/// set of malformed-header rejection cases.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sparse/mm_io.hpp"
#include "test_util.hpp"

namespace gespmm::sparse {
namespace {

using testutil::Csr;
using testutil::zoo_cases;

Csr roundtrip(const Csr& a) {
  std::stringstream s;
  write_matrix_market(s, a);
  return read_matrix_market(s);
}

TEST(MmIoRoundtrip, ZooSurvivesWriteReadExactly) {
  for (const auto& [name, a] : zoo_cases()) {
    const Csr back = roundtrip(a);
    EXPECT_EQ(back, a) << name
                       << ": write->read must be lossless (structure+values)";
  }
}

TEST(MmIoRoundtrip, DoubleRoundtripIsIdempotent) {
  for (const auto& [name, a] : zoo_cases()) {
    const Csr once = roundtrip(a);
    const Csr twice = roundtrip(once);
    EXPECT_EQ(twice, once) << name;
  }
}

TEST(MmIoRoundtrip, PatternFieldReadsAsUnitValues) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment line\n"
      "3 4 3\n"
      "1 2\n"
      "2 1\n"
      "3 4\n";
  std::istringstream in(text);
  const Csr a = read_matrix_market(in);
  EXPECT_EQ(a.rows, 3);
  EXPECT_EQ(a.cols, 4);
  EXPECT_EQ(a.nnz(), 3);
  for (value_t v : a.val) EXPECT_EQ(v, 1.0f);
  // Pattern matrices roundtrip through the (real general) writer losslessly.
  EXPECT_EQ(roundtrip(a), a);
}

TEST(MmIoRoundtrip, SymmetricExpandsOffDiagonalEntries) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 -1.5\n"
      "3 2 0.25\n";
  std::istringstream in(text);
  const Csr a = read_matrix_market(in);
  // Diagonal entry stays single; both off-diagonal entries are mirrored.
  EXPECT_EQ(a.nnz(), 5);
  const Csr t = transpose(a);
  Csr ts = t, as = a;
  ts.sort_rows();
  as.sort_rows();
  EXPECT_EQ(ts, as) << "symmetric read must produce a symmetric matrix";
  // The expanded general form then roundtrips losslessly.
  EXPECT_EQ(roundtrip(a), a);
}

TEST(MmIoRoundtrip, IntegerFieldIsAccepted) {
  const std::string text =
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "1 1 3\n"
      "2 2 -7\n";
  std::istringstream in(text);
  const Csr a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_EQ(a.val[0], 3.0f);
  EXPECT_EQ(a.val[1], -7.0f);
}

TEST(MmIoRoundtrip, MalformedInputsAreRejected) {
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"empty stream", ""},
      {"missing banner", "3 3 1\n1 1 1.0\n"},
      {"wrong banner", "%%MatrixMarkup matrix coordinate real general\n3 3 0\n"},
      {"array format", "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"},
      {"complex field", "%%MatrixMarket matrix coordinate complex general\n"
                        "1 1 1\n1 1 1.0 0.0\n"},
      {"hermitian symmetry", "%%MatrixMarket matrix coordinate real hermitian\n"
                             "1 1 1\n1 1 1.0\n"},
      {"bad size line", "%%MatrixMarket matrix coordinate real general\nfoo\n"},
      {"truncated entries", "%%MatrixMarket matrix coordinate real general\n"
                            "3 3 2\n1 1 1.0\n"},
      {"missing value", "%%MatrixMarket matrix coordinate real general\n"
                        "1 1 1\n1 1\n"},
      {"garbage entry", "%%MatrixMarket matrix coordinate real general\n"
                        "1 1 1\nx y 1.0\n"},
  };
  for (const auto& [what, text] : bad) {
    std::istringstream in(text);
    EXPECT_THROW(read_matrix_market(in), std::runtime_error) << what;
  }
}

TEST(MmIoRoundtrip, FileRoundtripMatchesStreamRoundtrip) {
  const Csr a = testutil::zoo_uniform();
  const std::string path =
      ::testing::TempDir() + "/gespmm_mm_io_roundtrip.mtx";
  write_matrix_market_file(path, a);
  EXPECT_EQ(read_matrix_market_file(path), a);
  EXPECT_THROW(read_matrix_market_file(path + ".does_not_exist"),
               std::runtime_error);
}

}  // namespace
}  // namespace gespmm::sparse
