/// Benchmark reporting subsystem: JSON round-trip of a BenchReport,
/// geomean rollup golden values, the shared --quick/--json/--only flags,
/// and determinism of sampled simulator records (the property that makes
/// recorded baselines exactly reproducible).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench_common/json.hpp"
#include "bench_common/registry.hpp"
#include "bench_common/report.hpp"
#include "bench_common/reporter.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

namespace gespmm::bench {
namespace {

BenchRecord make_record(const std::string& bench, const std::string& matrix,
                        double time_ms, double speedup) {
  BenchRecord r;
  r.bench = bench;
  r.device = "gtx1080ti";
  r.matrix = matrix;
  r.algo = "crc";
  r.n = 512;
  r.time_ms = time_ms;
  r.speedup = speedup;
  return r;
}

TEST(Json, ScalarRoundTrip) {
  const Json j = Json::parse(R"({"a": 1.5, "b": "x\n\"y", "c": [true, null, -2e3]})");
  EXPECT_DOUBLE_EQ(j.get("a").as_number(), 1.5);
  EXPECT_EQ(j.get("b").as_string(), "x\n\"y");
  ASSERT_EQ(j.get("c").items().size(), 3u);
  EXPECT_TRUE(j.get("c").items()[0].as_bool());
  EXPECT_TRUE(j.get("c").items()[1].is_null());
  EXPECT_DOUBLE_EQ(j.get("c").items()[2].as_number(), -2000.0);
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Json::parse(j.dump(2)).dump(2), j.dump(2));
}

TEST(Json, DoubleExactRoundTrip) {
  const double v = 0.1234567890123456789;  // not representable exactly
  const Json j = Json::parse(Json::number(v).dump());
  EXPECT_EQ(j.as_number(), v);  // bit-exact via %.17g
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]2"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\": 1} x"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
}

TEST(BenchReport, JsonWriteReadRoundTrip) {
  BenchReport rep;
  rep.snap_scale = 0.25;
  rep.max_graphs = 64;
  rep.sample_blocks = 1024;
  rep.quick = false;
  rep.records.push_back(make_record("fig8_crc_speedup", "snap-a", 1.25, 1.3));
  rep.records.push_back(make_record("fig8_crc_speedup", "snap-b", 0.8, 1.1));
  BenchRecord wall = make_record("micro_kernels", "cora", 3.5, 0.0);
  wall.device = "host";
  wall.wallclock = true;
  rep.records.push_back(wall);

  const BenchReport back = BenchReport::from_json(Json::parse(rep.to_json().dump(2)));
  EXPECT_EQ(back.schema_version, BenchReport::kSchemaVersion);
  EXPECT_DOUBLE_EQ(back.snap_scale, 0.25);
  EXPECT_EQ(back.max_graphs, 64);
  EXPECT_EQ(back.sample_blocks, 1024u);
  EXPECT_FALSE(back.quick);
  ASSERT_EQ(back.records.size(), rep.records.size());
  for (std::size_t i = 0; i < rep.records.size(); ++i) {
    EXPECT_EQ(back.records[i], rep.records[i]) << "record " << i;
  }
}

TEST(BenchReport, FileRoundTripAndSchemaGate) {
  BenchReport rep;
  rep.snap_scale = 0.05;
  rep.quick = true;
  rep.records.push_back(make_record("fig8_crc_speedup", "snap-a", 2.0, 1.5));
  const std::string path = ::testing::TempDir() + "gespmm_report_roundtrip.json";
  ASSERT_TRUE(rep.write_file(path));
  const BenchReport back = BenchReport::read_file(path);
  EXPECT_EQ(back.records, rep.records);
  EXPECT_TRUE(back.quick);
  std::remove(path.c_str());

  Json bad = rep.to_json();
  bad.set("schema_version", Json::number(999));
  EXPECT_THROW(BenchReport::from_json(bad), std::runtime_error);
}

TEST(BenchReport, GeomeanRollupGoldenValues) {
  BenchReport rep;
  // Times 1, 4 -> geomean 2; speedups 2, 8 -> geomean 4.
  rep.records.push_back(make_record("fig8_crc_speedup", "a", 1.0, 2.0));
  rep.records.push_back(make_record("fig8_crc_speedup", "b", 4.0, 8.0));
  // Baseline-only row (speedup absent) in another group.
  BenchRecord other = make_record("table5_crc_effects", "m65k", 3.0, 0.0);
  other.device = "rtx2080";
  rep.records.push_back(other);

  const auto rolls = rep.rollups();
  ASSERT_EQ(rolls.size(), 2u);  // sorted by (bench, device)
  EXPECT_EQ(rolls[0].bench, "fig8_crc_speedup");
  EXPECT_EQ(rolls[0].device, "gtx1080ti");
  EXPECT_EQ(rolls[0].count, 2);
  EXPECT_NEAR(rolls[0].geomean_time_ms, 2.0, 1e-12);
  EXPECT_NEAR(rolls[0].geomean_speedup, 4.0, 1e-12);
  EXPECT_FALSE(rolls[0].wallclock);
  EXPECT_EQ(rolls[1].bench, "table5_crc_effects");
  EXPECT_EQ(rolls[1].count, 1);
  EXPECT_NEAR(rolls[1].geomean_time_ms, 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(rolls[1].geomean_speedup, 0.0);  // no speedup rows
}

TEST(Options, QuickPreset) {
  char prog[] = "bench";
  char quick[] = "--quick";
  char* argv[] = {prog, quick};
  const auto opt = Options::parse(2, argv);
  EXPECT_TRUE(opt.quick);
  EXPECT_DOUBLE_EQ(opt.snap_scale, 0.05);
  EXPECT_EQ(opt.max_graphs, 4);
  EXPECT_EQ(opt.sample_blocks, 256u);
}

TEST(Options, QuickComposesLeftToRight) {
  char prog[] = "bench";
  char quick[] = "--quick";
  char maxg[] = "--max-graphs=8";
  char* argv[] = {prog, quick, maxg};
  const auto opt = Options::parse(3, argv);
  EXPECT_TRUE(opt.quick);
  EXPECT_EQ(opt.max_graphs, 8);  // later flag widens the preset
}

TEST(Options, JsonAndOnlyFlags) {
  char prog[] = "bench";
  char json[] = "--json=/tmp/out.json";
  char only[] = "--only=fig8_crc_speedup,micro_kernels";
  char* argv[] = {prog, json, only};
  const auto opt = Options::parse(3, argv);
  EXPECT_EQ(opt.json_path, "/tmp/out.json");
  ASSERT_EQ(opt.only.size(), 2u);
  EXPECT_EQ(opt.only[0], "fig8_crc_speedup");
  EXPECT_EQ(opt.only[1], "micro_kernels");
}

TEST(Options, RejectsEmptyJsonPathAndMalformedValues) {
  char prog[] = "bench";
  {
    char bad[] = "--json=";
    char* argv[] = {prog, bad};
    EXPECT_THROW(Options::parse(2, argv), std::invalid_argument);
  }
  {
    char bad[] = "--snap-scale=0.5x";
    char* argv[] = {prog, bad};
    EXPECT_THROW(Options::parse(2, argv), std::invalid_argument);
  }
  {
    char bad[] = "--max-graphs=lots";
    char* argv[] = {prog, bad};
    EXPECT_THROW(Options::parse(2, argv), std::invalid_argument);
  }
  // Negative/zero values would silently record a nonsense protocol
  // (e.g. -1 wrapping to a 2^64-1 sampling budget).
  {
    char bad[] = "--sample-blocks=-256";
    char* argv[] = {prog, bad};
    EXPECT_THROW(Options::parse(2, argv), std::invalid_argument);
  }
  {
    char bad[] = "--snap-scale=0";
    char* argv[] = {prog, bad};
    EXPECT_THROW(Options::parse(2, argv), std::invalid_argument);
  }
}

TEST(Reporter, StampsCurrentBenchId) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const auto opt = Options::parse(1, argv);
  Reporter rep(opt);
  rep.begin_bench("fig8_crc_speedup");
  rep.add("gtx1080ti", "snap-a", "crc", 512, 1.0, 1.2);
  rep.begin_bench("table5_crc_effects");
  rep.add("gtx1080ti", "m65k", "naive", 512, 2.0);
  ASSERT_EQ(rep.report().records.size(), 2u);
  EXPECT_EQ(rep.report().records[0].bench, "fig8_crc_speedup");
  EXPECT_EQ(rep.report().records[1].bench, "table5_crc_effects");
  EXPECT_DOUBLE_EQ(rep.report().snap_scale, opt.snap_scale);
}

/// Two sampled simulator runs with the same seed/policy must produce
/// byte-identical records — the property that makes the committed JSON
/// baseline a meaningful regression reference.
TEST(Determinism, SampledRunsProduceIdenticalRecords) {
  const auto g = sparse::cora().adj;
  auto run_once = [&] {
    char prog[] = "bench";
    char* argv[] = {prog};
    Reporter rep(Options::parse(1, argv));
    rep.begin_bench("determinism_probe");
    for (auto algo : {kernels::SpmmAlgo::Naive, kernels::SpmmAlgo::GeSpMM}) {
      kernels::SpmmRunOptions ro;
      ro.sample = gpusim::SamplePolicy::sampled(64);
      kernels::SpmmProblem p(g, 128);
      const auto res = kernels::run_spmm(algo, p, ro);
      rep.add("gtx1080ti", "cora", kernels::algo_name(algo), 128, res.time_ms());
    }
    return rep.report().to_json().dump(2);
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"determinism_probe\""), std::string::npos);
}

}  // namespace
}  // namespace gespmm::bench
