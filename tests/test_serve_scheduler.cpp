/// Scheduler v2: admission-control goldens, deficit-round-robin fairness
/// (exact batch-sequence goldens plus randomized property sweeps),
/// priority ordering, plan-cache LRU eviction / pinning / budget
/// invariants, and the engine-level shed-ticket contract and
/// cold-vs-hot-graph latency win over FIFO.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "core/gespmm.hpp"
#include "serve/engine.hpp"
#include "sparse/rng.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::BatchConstraints;
using serve::Engine;
using serve::GraphId;
using serve::PlanCache;
using serve::PlanCacheOptions;
using serve::PlanKey;
using serve::Priority;
using serve::RequestStatus;
using serve::SchedRequest;
using serve::SchedulePolicy;
using serve::Scheduler;
using serve::SchedulerOptions;
using serve::ServeOptions;
using serve::ShedReason;
using serve::Ticket;

DenseMatrix features(index_t rows, index_t cols, std::uint64_t seed) {
  DenseMatrix b(rows, cols);
  kernels::fill_random(b, seed);
  return b;
}

// ---------------------------------------------------------------------------
// Admission control

TEST(Admission, GoldenThresholds) {
  AdmissionOptions opt;
  opt.max_pending = 8;  // best-effort sheds at 4, batch at 6, all at 8
  using P = Priority;
  using R = ShedReason;
  const struct {
    P p;
    std::size_t pending;
    bool admitted;
    R reason;
  } golden[] = {
      {P::Interactive, 0, true, R::None},  {P::Interactive, 7, true, R::None},
      {P::Interactive, 8, false, R::QueueFull},
      {P::Batch, 5, true, R::None},        {P::Batch, 6, false, R::PriorityShed},
      {P::Batch, 8, false, R::QueueFull},
      {P::BestEffort, 3, true, R::None},   {P::BestEffort, 4, false, R::PriorityShed},
      {P::BestEffort, 8, false, R::QueueFull},
  };
  for (const auto& g : golden) {
    const auto d = serve::admit_request(g.p, g.pending, opt);
    EXPECT_EQ(d.admitted, g.admitted)
        << serve::priority_name(g.p) << " at pending=" << g.pending;
    EXPECT_EQ(d.reason, g.reason)
        << serve::priority_name(g.p) << " at pending=" << g.pending;
  }
}

TEST(Admission, ControllerCountsPerClassOutcomes) {
  AdmissionOptions opt;
  opt.max_pending = 4;  // best-effort sheds at 2, batch at 3
  AdmissionController ctl(opt);
  EXPECT_TRUE(ctl.admit(Priority::Interactive, 0).admitted);
  EXPECT_TRUE(ctl.admit(Priority::BestEffort, 1).admitted);
  EXPECT_FALSE(ctl.admit(Priority::BestEffort, 2).admitted);
  EXPECT_TRUE(ctl.admit(Priority::Batch, 2).admitted);
  EXPECT_FALSE(ctl.admit(Priority::Batch, 3).admitted);
  EXPECT_FALSE(ctl.admit(Priority::Interactive, 4).admitted);

  const auto st = ctl.stats();
  EXPECT_EQ(st.admitted[0], 1u);
  EXPECT_EQ(st.admitted[1], 1u);
  EXPECT_EQ(st.admitted[2], 1u);
  EXPECT_EQ(st.shed[0], 1u);
  EXPECT_EQ(st.shed[1], 1u);
  EXPECT_EQ(st.shed[2], 1u);
  EXPECT_EQ(st.shed_queue_full, 1u);
  EXPECT_EQ(st.shed_priority, 2u);
  EXPECT_EQ(st.total_admitted(), 3u);
  EXPECT_EQ(st.total_shed(), 3u);
}

// ---------------------------------------------------------------------------
// Scheduler

SchedulerOptions drr_opts(index_t quantum) {
  SchedulerOptions opt;
  opt.policy = SchedulePolicy::DeficitRoundRobin;
  opt.quantum = quantum;
  return opt;
}

/// Enqueue `count` width-`n` requests on `graph` starting at `*seq`.
void load(Scheduler& s, std::uint64_t graph, int count, index_t n,
          std::uint64_t* seq, ReduceKind reduce = ReduceKind::Sum,
          Priority priority = Priority::Interactive) {
  for (int i = 0; i < count; ++i) {
    s.enqueue({(*seq)++, graph, n, reduce, priority});
  }
}

TEST(SchedulerDrr, HotAndWideGraphBatchSequenceGolden) {
  // g1 floods 40 width-8 requests; g2 owns two width-200 requests (wider
  // than the 64-column quantum, so each needs several rotations of
  // credit). The exact batch sequence is a golden: deterministic by
  // construction, and it shows g2 shipping *before* g1's backlog drains —
  // the anti-starvation property FIFO lacks.
  BatchConstraints lim;
  lim.max_batch_n = 256;
  lim.max_batch_requests = 8;
  Scheduler s(drr_opts(64), lim);
  std::uint64_t seq = 0;
  load(s, /*graph=*/1, 40, 8, &seq);       // seqs 0..39
  load(s, /*graph=*/2, 2, 200, &seq);      // seqs 40, 41

  std::vector<std::vector<std::uint64_t>> batches;
  while (!s.empty()) batches.push_back(s.next_batch());

  const std::vector<std::vector<std::uint64_t>> want = {
      {0, 1, 2, 3, 4, 5, 6, 7},        // g1, rotation 1 (quantum 64 = 8x8)
      {8, 9, 10, 11, 12, 13, 14, 15},  // g1 (g2 deferred: 64 < 200)
      {16, 17, 18, 19, 20, 21, 22, 23},  // g1 (g2 deferred: 128 < 200)
      {24, 25, 26, 27, 28, 29, 30, 31},  // g1 (g2 deferred: 192 < 200)
      {40},                              // g2: 256 >= 200 at last
      {32, 33, 34, 35, 36, 37, 38, 39},  // g1 drains
      {41},                              // g2 after three more rotations
  };
  EXPECT_EQ(batches, want);

  const auto st = s.stats();
  ASSERT_EQ(st.size(), 2u);
  EXPECT_EQ(st[0].graph, 1u);
  EXPECT_EQ(st[0].served, 40u);
  EXPECT_EQ(st[0].batches, 5u);
  EXPECT_EQ(st[0].deferred, 0u);
  EXPECT_EQ(st[0].served_width, 320u);
  EXPECT_EQ(st[1].graph, 2u);
  EXPECT_EQ(st[1].served, 2u);
  EXPECT_EQ(st[1].batches, 2u);
  EXPECT_EQ(st[1].deferred, 5u);  // 3 rotations for seq 40, 2 more for 41
  EXPECT_EQ(st[1].served_width, 400u);
  EXPECT_EQ(st[0].pending + st[1].pending, 0u);
}

TEST(SchedulerFifo, ServesHotBacklogBeforeColdGraph) {
  // Same workload under the v1 FIFO policy: the cold graph's requests
  // wait behind the entire hot backlog — the head-of-line blocking DRR
  // removes. This pins the baseline the fairness bench compares against.
  BatchConstraints lim;
  lim.max_batch_n = 256;
  lim.max_batch_requests = 8;
  SchedulerOptions opt;
  opt.policy = SchedulePolicy::Fifo;
  Scheduler s(opt, lim);
  std::uint64_t seq = 0;
  load(s, 1, 40, 8, &seq);
  load(s, 2, 2, 200, &seq);

  std::vector<std::vector<std::uint64_t>> batches;
  while (!s.empty()) batches.push_back(s.next_batch());
  ASSERT_EQ(batches.size(), 7u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batches[static_cast<std::size_t>(i)].front(), static_cast<std::uint64_t>(8 * i));
  EXPECT_EQ(batches[5], (std::vector<std::uint64_t>{40}));
  EXPECT_EQ(batches[6], (std::vector<std::uint64_t>{41}));
  EXPECT_EQ(s.stats()[1].deferred, 0u);  // FIFO never defers
}

TEST(SchedulerDrr, PriorityOrdersWithinGraphAndReduceStillGates) {
  BatchConstraints lim;  // defaults: 256 wide, 16 requests
  Scheduler s(drr_opts(64), lim);
  s.enqueue({0, 7, 8, ReduceKind::Sum, Priority::BestEffort});
  s.enqueue({1, 7, 8, ReduceKind::Sum, Priority::Batch});
  s.enqueue({2, 7, 8, ReduceKind::Max, Priority::Interactive});
  s.enqueue({3, 7, 8, ReduceKind::Sum, Priority::Interactive});

  // The interactive Max request anchors first; no Sum request may ride
  // along (one semiring per launch). Then the remaining Sums coalesce in
  // (priority, seq) order.
  EXPECT_EQ(s.next_batch(), (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(s.next_batch(), (std::vector<std::uint64_t>{3, 1, 0}));
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerFifo, IsPriorityBlind) {
  // The v1 baseline keeps pure admission order: priorities only matter to
  // admission control, not FIFO dispatch.
  BatchConstraints lim;
  SchedulerOptions opt;
  opt.policy = SchedulePolicy::Fifo;
  Scheduler s(opt, lim);
  s.enqueue({0, 7, 8, ReduceKind::Sum, Priority::BestEffort});
  s.enqueue({1, 7, 8, ReduceKind::Sum, Priority::Batch});
  s.enqueue({2, 7, 8, ReduceKind::Max, Priority::Interactive});
  s.enqueue({3, 7, 8, ReduceKind::Sum, Priority::Interactive});
  EXPECT_EQ(s.next_batch(), (std::vector<std::uint64_t>{0, 1, 3}));
  EXPECT_EQ(s.next_batch(), (std::vector<std::uint64_t>{2}));
}

TEST(SchedulerFifo, MixedPriorityAndBatchOnlyGraphsAnchorGloballyOldest) {
  // Regression: next_batch_fifo used to read q[0].front().seq blindly —
  // undefined behavior when a graph's pending requests are all
  // batch/best-effort (interactive deque empty), and even with q[0]
  // non-empty it anchored on the oldest *interactive* request rather
  // than the globally oldest one. The fix scans every priority class.
  BatchConstraints lim;
  SchedulerOptions opt;
  opt.policy = SchedulePolicy::Fifo;
  Scheduler s(opt, lim);

  // Graph 1 holds only batch/best-effort work (the empty-q[0] UB shape);
  // graph 2's younger request is interactive.
  s.enqueue({0, 1, 8, ReduceKind::Sum, Priority::Batch});
  s.enqueue({1, 1, 8, ReduceKind::Sum, Priority::BestEffort});
  s.enqueue({2, 2, 8, ReduceKind::Sum, Priority::Interactive});

  // FIFO is priority-blind: the oldest request (batch-class, graph 1)
  // anchors and its best-effort sibling rides along; the interactive
  // request on graph 2 waits its turn.
  EXPECT_EQ(s.next_batch(), (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(s.next_batch(), (std::vector<std::uint64_t>{2}));

  // A graph whose q[0] is empty but whose batch class is *younger* than
  // another graph's interactive head must not win the anchor race.
  s.enqueue({3, 3, 8, ReduceKind::Sum, Priority::Interactive});
  s.enqueue({4, 4, 8, ReduceKind::Sum, Priority::BestEffort});
  EXPECT_EQ(s.next_batch(), (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(s.next_batch(), (std::vector<std::uint64_t>{4}));

  // Single graph, batch-only backlog: drains in admission order.
  s.enqueue({5, 5, 8, ReduceKind::Sum, Priority::Batch});
  s.enqueue({6, 5, 8, ReduceKind::Sum, Priority::Batch});
  EXPECT_EQ(s.next_batch(), (std::vector<std::uint64_t>{5, 6}));
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerDrr, FairnessBoundPropertyUniformWidths) {
  // Property: with every graph continuously backlogged and per-graph
  // uniform request width w <= quantum, after R full rotations each graph
  // has served within one request width of R * quantum columns — the DRR
  // fairness bound, exact, over randomized configurations.
  sparse::SplitMix64 rng(20260729);
  const index_t quantum = 64;
  const int rotations = 5;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t num_graphs = 2 + rng.next_below(4);  // 2..5
    BatchConstraints lim;
    lim.max_batch_n = 1024;
    lim.max_batch_requests = 512;
    Scheduler s(drr_opts(quantum), lim);
    std::vector<index_t> width(num_graphs);
    std::uint64_t seq = 0;
    for (std::size_t g = 0; g < num_graphs; ++g) {
      width[g] = 1 + static_cast<index_t>(rng.next_below(32));  // 1..32 <= quantum
      const int count = rotations * quantum / width[g] + 3;     // stays backlogged
      load(s, g + 1, count, width[g], &seq);
    }
    for (int call = 0; call < rotations * static_cast<int>(num_graphs); ++call) {
      ASSERT_FALSE(s.next_batch().empty());
    }
    const auto st = s.stats();
    ASSERT_EQ(st.size(), num_graphs);
    for (std::size_t g = 0; g < num_graphs; ++g) {
      ASSERT_GT(st[g].pending, 0u) << "trial " << trial << ": backlog drained early";
      const auto fair = static_cast<std::uint64_t>(rotations * quantum);
      EXPECT_GT(st[g].served_width + static_cast<std::uint64_t>(width[g]), fair)
          << "trial " << trial << " graph " << g << " under-served";
      EXPECT_LE(st[g].served_width, fair)
          << "trial " << trial << " graph " << g << " over-served";
      EXPECT_EQ(st[g].batches, static_cast<std::uint64_t>(rotations));
    }
  }
}

TEST(SchedulerDrr, RandomWorkloadDrainsExactlyOnce) {
  // Property: whatever the mix of graphs, widths, reductions and
  // priorities, draining the scheduler ships every request exactly once,
  // every batch is same-(graph, reduce), and batch count is bounded by
  // request count (no empty batches, no starvation-induced spinning).
  sparse::SplitMix64 rng(42);
  for (int trial = 0; trial < 15; ++trial) {
    BatchConstraints lim;
    lim.max_batch_n = 128;
    lim.max_batch_requests = 1 + static_cast<std::size_t>(rng.next_below(6));
    SchedulerOptions opt = drr_opts(32);
    Scheduler s(opt, lim);

    const ReduceKind kinds[] = {ReduceKind::Sum, ReduceKind::Max, ReduceKind::Mean};
    std::map<std::uint64_t, std::uint64_t> graph_of;   // seq -> graph
    std::map<std::uint64_t, ReduceKind> reduce_of;     // seq -> reduce
    std::uint64_t seq = 0;
    const std::size_t num_graphs = 1 + rng.next_below(4);
    const int total = 20 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < total; ++i) {
      SchedRequest r;
      r.seq = seq++;
      r.graph = 1 + rng.next_below(num_graphs);
      r.n = 1 + static_cast<index_t>(rng.next_below(40));  // may exceed quantum
      r.reduce = kinds[rng.next_below(3)];
      r.priority = static_cast<Priority>(rng.next_below(3));
      graph_of[r.seq] = r.graph;
      reduce_of[r.seq] = r.reduce;
      s.enqueue(r);
    }

    std::set<std::uint64_t> served;
    int batches = 0;
    while (!s.empty()) {
      const auto batch = s.next_batch();
      ASSERT_FALSE(batch.empty());
      ASSERT_LE(batch.size(), lim.max_batch_requests);
      ++batches;
      ASSERT_LE(batches, total) << "more batches than requests";
      for (const auto q : batch) {
        EXPECT_EQ(graph_of.at(q), graph_of.at(batch.front()));
        EXPECT_EQ(reduce_of.at(q), reduce_of.at(batch.front()));
        EXPECT_TRUE(served.insert(q).second) << "seq " << q << " served twice";
      }
    }
    EXPECT_EQ(served.size(), static_cast<std::size_t>(total));
    EXPECT_EQ(s.pending(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Plan-cache eviction

PlanCacheOptions cache_opts(std::size_t budget) {
  PlanCacheOptions opt;
  opt.autotune = false;  // fixed-rule builds keep these tests cheap
  opt.sample_blocks = 64;
  opt.max_entries = budget;
  return opt;
}

PlanKey key_for(std::uint64_t graph, index_t n) {
  return PlanKey{graph, "gtx1080ti", n, ReduceKind::Sum};
}

TEST(PlanCacheEviction, LruOrderGolden) {
  const Csr a = sparse::uniform_random(64, 64, 400, 801);
  const auto dev = gpusim::gtx1080ti();
  PlanCache cache(cache_opts(3));
  cache.lookup_or_build(key_for(1, 32), a, dev);
  cache.lookup_or_build(key_for(2, 32), a, dev);
  cache.lookup_or_build(key_for(3, 32), a, dev);
  cache.lookup_or_build(key_for(1, 32), a, dev);  // touch 1: LRU order 2,3,1
  cache.lookup_or_build(key_for(4, 32), a, dev);  // evicts 2

  const auto keys = cache.resident_keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].graph, 3u);  // least recently used first
  EXPECT_EQ(keys[1].graph, 1u);
  EXPECT_EQ(keys[2].graph, 4u);

  const auto st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.inserts, 4u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 4u);
  EXPECT_EQ(st.size, 3u);
  EXPECT_EQ(st.peak_size, 3u);
  EXPECT_EQ(st.pinned, 0u);
}

TEST(PlanCacheEviction, PinnedPlanSurvivesFullBudget) {
  const Csr a = sparse::uniform_random(64, 64, 400, 802);
  const auto dev = gpusim::gtx1080ti();
  PlanCache cache(cache_opts(1));

  serve::PlanLease pinned = cache.acquire(key_for(1, 32), a, dev);
  ASSERT_TRUE(pinned.valid());
  EXPECT_TRUE(pinned.cached());
  EXPECT_EQ(cache.stats().pinned, 1u);

  // Budget full of pinned plans: the new plan is built and returned
  // uncached; the pinned resident survives and the budget holds.
  serve::PlanLease overflow = cache.acquire(key_for(2, 32), a, dev);
  ASSERT_TRUE(overflow.valid());
  EXPECT_FALSE(overflow.cached());
  EXPECT_GT(overflow->modelled_ms, 0.0);
  auto st = cache.stats();
  EXPECT_EQ(st.uncached_builds, 1u);
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(st.size, 1u);
  ASSERT_EQ(cache.resident_keys().size(), 1u);
  EXPECT_EQ(cache.resident_keys()[0].graph, 1u);

  // Unpin; the next insert may now evict the old resident.
  pinned.release();
  EXPECT_EQ(cache.stats().pinned, 0u);
  cache.lookup_or_build(key_for(2, 32), a, dev);
  st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.size, 1u);
  EXPECT_EQ(cache.resident_keys()[0].graph, 2u);
  EXPECT_LE(st.peak_size, 1u);  // the budget was never breached
}

TEST(PlanCacheEviction, BudgetOneThrashStaysCorrect) {
  // Two alternating keys under an entry budget of one: every lookup must
  // still return the exact plan an unbounded cache would, the budget must
  // hold at every observation point, and the churn is fully accounted.
  const Csr a = sparse::uniform_random(64, 64, 400, 803);
  const auto dev = gpusim::gtx1080ti();
  PlanCache cache(cache_opts(1));
  PlanCache reference(cache_opts(0));  // unbounded reference

  for (int round = 0; round < 10; ++round) {
    for (const std::uint64_t g : {std::uint64_t{1}, std::uint64_t{2}}) {
      // Distinct widths per key exercise requantization too.
      const index_t n = g == 1 ? 32 : 64;
      const auto got = cache.lookup_or_build(key_for(g, n), a, dev);
      const auto want = reference.lookup_or_build(key_for(g, n), a, dev);
      EXPECT_EQ(got->algo, want->algo);
      EXPECT_DOUBLE_EQ(got->modelled_ms, want->modelled_ms);
      EXPECT_LE(cache.size(), 1u);
    }
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 0u);  // every lookup evicted the other key
  EXPECT_EQ(st.misses, 20u);
  EXPECT_EQ(st.inserts, 20u);
  EXPECT_EQ(st.evictions, 19u);
  EXPECT_EQ(st.peak_size, 1u);
  EXPECT_EQ(reference.stats().hits, 18u);  // the unbounded cache reuses
}

// The miss ledger must reconcile exactly: every miss either inserted its
// build, handed it back uncached (budget full of pins / cache disabled),
// or lost the build race to a concurrent inserter (duplicate_builds). The
// selection counters (predicted/exact) count kept builds only — a racer's
// discarded build must not inflate them.
TEST(PlanCacheAccounting, MissLedgerReconcilesSequentially) {
  const Csr a = sparse::uniform_random(64, 64, 400, 804);
  const auto dev = gpusim::gtx1080ti();
  PlanCache cache(cache_opts(2));

  cache.lookup_or_build(key_for(1, 32), a, dev);  // miss -> insert
  cache.lookup_or_build(key_for(1, 32), a, dev);  // hit
  serve::PlanLease p1 = cache.acquire(key_for(2, 32), a, dev);  // miss
  serve::PlanLease p2 = cache.acquire(key_for(3, 32), a, dev);  // evicts 1
  // Budget now full of pinned plans: an uncached build.
  serve::PlanLease p3 = cache.acquire(key_for(4, 32), a, dev);
  EXPECT_FALSE(p3.cached());

  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 4u);
  EXPECT_EQ(st.inserts, 3u);
  EXPECT_EQ(st.uncached_builds, 1u);
  EXPECT_EQ(st.duplicate_builds, 0u);  // no concurrency, no races
  EXPECT_EQ(st.misses, st.inserts + st.uncached_builds + st.duplicate_builds);
}

TEST(PlanCacheAccounting, RacingBuildersReconcileAndKeepSelectionHonest) {
  // Hammer a single cold key from many threads: exactly one build is
  // kept; every loser must land in duplicate_builds, not in the selection
  // counters (the pre-fix accounting noted every racer's build, breaking
  // the predicted+exact == kept-builds identity).
  const Csr a = sparse::uniform_random(64, 64, 400, 805);
  const auto dev = gpusim::gtx1080ti();
  PlanCacheOptions opt;  // autotune on: builds go through selection
  opt.sample_blocks = 64;
  PlanCache cache(opt);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&] { cache.lookup_or_build(key_for(7, 32), a, dev); });
  }
  for (auto& th : threads) th.join();

  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_EQ(st.uncached_builds, 0u);
  EXPECT_EQ(st.misses, st.inserts + st.uncached_builds + st.duplicate_builds);
  // Kept builds only: however many threads raced, selection ran the
  // predictor exactly once for the one plan that survived.
  EXPECT_EQ(st.predicted_builds + st.exact_builds, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// Engine integration

ServeOptions scheduler_engine_opts() {
  ServeOptions opt;
  opt.devices = {gpusim::gtx1080ti()};
  opt.num_workers = 1;
  opt.start_paused = true;
  opt.plan.sample_blocks = 128;
  return opt;
}

TEST(ServeSchedulerEngine, ShedTicketContractIsStatusNotThrow) {
  auto opt = scheduler_engine_opts();
  opt.admission.max_pending = 4;  // best-effort sheds at 2, batch at 3
  Engine eng(opt);  // paused: submissions accumulate, nothing drains
  const Csr a = sparse::uniform_random(64, 64, 400, 810);
  const GraphId id = eng.register_graph(a);

  auto submit = [&](Priority p) {
    return eng.submit(id, features(a.cols, 8, 811), {.priority = p});
  };
  Ticket t1 = submit(Priority::Interactive);        // pending 0 -> admit
  Ticket t2 = submit(Priority::Interactive);        // pending 1 -> admit
  Ticket shed_be = submit(Priority::BestEffort);    // pending 2 -> shed
  Ticket t3 = submit(Priority::Batch);              // pending 2 -> admit
  Ticket shed_batch = submit(Priority::Batch);      // pending 3 -> shed
  Ticket t4 = submit(Priority::Interactive);        // pending 3 -> admit
  Ticket shed_full = submit(Priority::Interactive); // pending 4 -> queue full

  // A shed ticket is complete immediately; wait() returns a typed status
  // and never throws or blocks.
  for (const Ticket* t : {&shed_be, &shed_batch, &shed_full}) {
    ASSERT_TRUE(t->valid());
    EXPECT_TRUE(t->ready());
    const auto& res = t->wait();
    EXPECT_EQ(res.status, RequestStatus::Shed);
    EXPECT_EQ(res.c.rows(), 0);
    EXPECT_EQ(res.c.cols(), 0);
    EXPECT_EQ(res.batch_size, 0);
    EXPECT_EQ(res.modelled_ms, 0.0);
  }
  EXPECT_EQ(shed_be.wait().shed_reason, ShedReason::PriorityShed);
  EXPECT_EQ(shed_be.wait().priority, Priority::BestEffort);
  EXPECT_EQ(shed_batch.wait().shed_reason, ShedReason::PriorityShed);
  EXPECT_EQ(shed_full.wait().shed_reason, ShedReason::QueueFull);
  for (const Ticket* t : {&t1, &t2, &t3, &t4}) EXPECT_FALSE(t->ready());

  eng.shutdown();  // drains all four admitted requests

  DenseMatrix want(a.rows, 8);
  spmm(a, features(a.cols, 8, 811), want);
  for (const Ticket* t : {&t1, &t2, &t3, &t4}) {
    const auto& res = t->wait();
    EXPECT_EQ(res.status, RequestStatus::Ok);
    EXPECT_EQ(res.shed_reason, ShedReason::None);
    EXPECT_EQ(res.c.max_abs_diff(want), 0.0);
    EXPECT_GT(res.completed_at_ms, 0.0);
  }

  const auto st = eng.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.completed, 4u);
  EXPECT_EQ(st.shed, 3u);
  EXPECT_EQ(st.admission.total_admitted(), 4u);
  EXPECT_EQ(st.admission.total_shed(), 3u);
  EXPECT_EQ(st.admission.shed_queue_full, 1u);
  EXPECT_EQ(st.admission.shed_priority, 2u);
}

/// Hot-burst + cold-trickle workload at one policy; returns (cold p95
/// completion stamp, total modelled ms) plus the full completion list.
struct FairnessRun {
  double cold_p95 = 0.0;
  double total_ms = 0.0;
  std::vector<double> completions;  // every request, submission order
};

FairnessRun run_fairness_workload(SchedulePolicy policy) {
  auto opt = scheduler_engine_opts();
  opt.scheduler.policy = policy;
  opt.plan.sample_blocks = 64;
  Engine eng(opt);
  const Csr hot = sparse::uniform_random(256, 256, 4096, 820);
  const Csr cold1 = sparse::uniform_random(256, 256, 2048, 821);
  const Csr cold2 = sparse::uniform_random(256, 256, 2048, 822);
  const GraphId hid = eng.register_graph(hot);
  const std::vector<GraphId> cold_ids = {eng.register_graph(cold1),
                                         eng.register_graph(cold2)};

  std::vector<Ticket> hot_tickets, cold_tickets;
  for (int r = 0; r < 24; ++r) {
    hot_tickets.push_back(eng.submit(hid, features(hot.cols, 16, 830 + r)));
  }
  for (int r = 0; r < 4; ++r) {
    for (std::size_t g = 0; g < cold_ids.size(); ++g) {
      cold_tickets.push_back(eng.submit(cold_ids[g],
                                        features(256, 16, 860 + 10 * static_cast<std::uint64_t>(g) + static_cast<std::uint64_t>(r))));
    }
  }
  eng.shutdown();

  FairnessRun out;
  std::vector<double> cold_times;
  for (const auto& t : hot_tickets) out.completions.push_back(t.wait().completed_at_ms);
  for (const auto& t : cold_tickets) {
    cold_times.push_back(t.wait().completed_at_ms);
    out.completions.push_back(t.wait().completed_at_ms);
  }
  std::sort(cold_times.begin(), cold_times.end());
  const std::size_t idx =
      (cold_times.size() * 95 + 99) / 100 == 0 ? 0 : (cold_times.size() * 95 + 99) / 100 - 1;
  out.cold_p95 = cold_times[idx];
  out.total_ms = eng.stats().modelled_ms;
  return out;
}

TEST(ServeSchedulerEngine, ColdGraphLatencyImprovesOverFifoWithinThroughputBand) {
  // The acceptance criterion, enforced at test scale: under a hot-burst +
  // cold-trickle mix, DRR improves the cold graphs' p95 modelled
  // completion stamp while total modelled device time (the throughput
  // denominator) stays within 10% of FIFO.
  const FairnessRun fifo = run_fairness_workload(SchedulePolicy::Fifo);
  const FairnessRun drr = run_fairness_workload(SchedulePolicy::DeficitRoundRobin);
  EXPECT_LT(drr.cold_p95, fifo.cold_p95)
      << "DRR must serve cold graphs ahead of the hot backlog";
  EXPECT_NEAR(drr.total_ms, fifo.total_ms, 0.10 * fifo.total_ms)
      << "fairness must not cost aggregate throughput";

  // Scheduling is deterministic: a repeat run reproduces every completion
  // stamp exactly (no tolerance).
  const FairnessRun again = run_fairness_workload(SchedulePolicy::DeficitRoundRobin);
  ASSERT_EQ(again.completions.size(), drr.completions.size());
  for (std::size_t i = 0; i < drr.completions.size(); ++i) {
    EXPECT_EQ(again.completions[i], drr.completions[i]) << "request " << i;
  }
}

TEST(ServeSchedulerEngine, PerGraphStatsExposed) {
  auto opt = scheduler_engine_opts();
  Engine eng(opt);
  const Csr g1 = sparse::uniform_random(64, 64, 400, 840);
  const Csr g2 = sparse::uniform_random(96, 96, 600, 841);
  const GraphId id1 = eng.register_graph(g1);
  const GraphId id2 = eng.register_graph(g2);
  for (int r = 0; r < 3; ++r) eng.submit(id1, features(g1.cols, 8, 850 + r));
  eng.submit(id2, features(g2.cols, 8, 859));
  eng.shutdown();

  const auto st = eng.stats();
  ASSERT_EQ(st.graphs.size(), 2u);  // first-submission order
  EXPECT_EQ(st.graphs[0].graph, id1.key);
  EXPECT_EQ(st.graphs[0].enqueued, 3u);
  EXPECT_EQ(st.graphs[0].served, 3u);
  EXPECT_EQ(st.graphs[0].pending, 0u);
  EXPECT_EQ(st.graphs[1].graph, id2.key);
  EXPECT_EQ(st.graphs[1].served, 1u);
  const std::uint64_t total_served = st.graphs[0].served + st.graphs[1].served;
  EXPECT_EQ(total_served, st.completed);
}

}  // namespace
}  // namespace gespmm
