/// Model construction, training convergence, and the end-to-end timing
/// properties behind the paper's Tables I/II/IX and Figs. 13/14.

#include <gtest/gtest.h>

#include "gnn/train.hpp"
#include "gpusim/device_array.hpp"
#include "sparse/generators.hpp"

namespace gespmm::gnn {
namespace {

sparse::GraphDataset tiny_dataset() {
  sparse::GraphDataset d;
  d.name = "tiny";
  d.adj = sparse::citation_graph(400, 700, 42);
  d.feature_dim = 32;
  d.num_classes = 4;
  return d;
}

TrainConfig config(ModelKind kind, AggregatorBackend backend, int layers = 1,
                   int hidden = 16, int epochs = 4) {
  TrainConfig cfg;
  cfg.model.kind = kind;
  cfg.model.backend = backend;
  cfg.model.num_layers = layers;
  cfg.model.hidden_feats = hidden;
  cfg.epochs = epochs;
  cfg.lr = 5e-2;
  return cfg;
}

TEST(Models, GcnTrainsAndReducesLoss) {
  const auto d = tiny_dataset();
  auto cfg = config(ModelKind::Gcn, AggregatorBackend::GeSpMM, 1, 16, 60);
  const auto r = train(d, cfg);
  EXPECT_LT(r.final_loss, r.first_loss * 0.75);
  EXPECT_GT(r.final_accuracy, 0.45);
  EXPECT_GT(r.cuda_time_ms, 0.0);
}

TEST(Models, SageGcnTrains) {
  const auto d = tiny_dataset();
  const auto r = train(d, config(ModelKind::SageGcn, AggregatorBackend::GeSpMM, 1, 16, 60));
  EXPECT_LT(r.final_loss, r.first_loss * 0.8);
}

TEST(Models, SagePoolTrainsWithSpmmLike) {
  const auto d = tiny_dataset();
  auto cfg = config(ModelKind::SagePool, AggregatorBackend::GeSpMM, 1, 16, 60);
  cfg.model.spmm_like_backend = AggregatorBackend::GeSpMM;
  const auto r = train(d, cfg);
  EXPECT_LT(r.final_loss, r.first_loss * 0.85);
  EXPECT_GT(r.spmm_like_ms, 0.0) << "pooling must be charged as SpMM-like";
}

TEST(Models, ModelConfigValidation) {
  Engine eng(gpusim::gtx1080ti());
  GnnGraph graph(sparse::uniform_random(10, 10, 30, 1), gpusim::gtx1080ti());
  ModelConfig bad;
  bad.in_feats = 0;
  EXPECT_THROW(Model(eng, graph, bad), std::invalid_argument);
  bad.in_feats = 8;
  bad.num_classes = 3;
  bad.num_layers = 0;
  EXPECT_THROW(Model(eng, graph, bad), std::invalid_argument);
}

TEST(Models, GeSpmmBackendBeatsDglEndToEnd) {
  // Fig. 13's claim at the workload level: swapping the aggregation kernel
  // reduces total CUDA time.
  const auto d = tiny_dataset();
  const auto dgl =
      train(d, config(ModelKind::Gcn, AggregatorBackend::DglCusparse, 2, 64, 3));
  const auto ge = train(d, config(ModelKind::Gcn, AggregatorBackend::GeSpMM, 2, 64, 3));
  EXPECT_LT(ge.cuda_time_ms, dgl.cuda_time_ms);
  // Same math: losses must agree to float tolerance.
  EXPECT_NEAR(ge.final_loss, dgl.final_loss, 1e-6);
}

TEST(Models, PygBackendSlowerThanGeSpmm) {
  // Fig. 14: PyG's materialized MessagePassing loses more than DGL does.
  const auto d = tiny_dataset();
  const auto pyg = train(
      d, config(ModelKind::Gcn, AggregatorBackend::PyGMessagePassing, 2, 64, 3));
  const auto ge = train(d, config(ModelKind::Gcn, AggregatorBackend::GeSpMM, 2, 64, 3));
  EXPECT_GT(pyg.cuda_time_ms / ge.cuda_time_ms, 1.05);
}

TEST(Models, SpmmFractionIsSubstantialInGcnTraining) {
  // Table I: SpMM ~30% of CUDA time in DGL GCN training. Accept a band —
  // the exact number depends on hidden sizes and overheads.
  const auto d = tiny_dataset();
  auto cfg = config(ModelKind::Gcn, AggregatorBackend::DglCusparse, 2, 16, 3);
  const auto r = train(d, cfg);
  EXPECT_GT(r.spmm_fraction, 0.15);
  EXPECT_LT(r.spmm_fraction, 0.60);
  EXPECT_GT(r.gemm_ms, 0.0);
}

TEST(Models, DeterministicTraining) {
  const auto d = tiny_dataset();
  // Device-time determinism requires identical virtual buffer addresses,
  // so reset the arena before each run (no launches are in flight here).
  gpusim::reset_device_address_space();
  const auto a = train(d, config(ModelKind::Gcn, AggregatorBackend::GeSpMM, 1, 16, 3));
  gpusim::reset_device_address_space();
  const auto b = train(d, config(ModelKind::Gcn, AggregatorBackend::GeSpMM, 1, 16, 3));
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_DOUBLE_EQ(a.cuda_time_ms, b.cuda_time_ms);
}

TEST(Models, LayerAndHiddenSweepScalesTime) {
  const auto d = tiny_dataset();
  const auto small = train(d, config(ModelKind::Gcn, AggregatorBackend::GeSpMM, 1, 16, 2));
  const auto big = train(d, config(ModelKind::Gcn, AggregatorBackend::GeSpMM, 2, 256, 2));
  EXPECT_GT(big.cuda_time_ms, small.cuda_time_ms);
}

}  // namespace
}  // namespace gespmm::gnn
