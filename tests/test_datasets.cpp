/// Dataset properties: the citation graphs must match the paper's Table IV
/// exactly; the SNAP-like suite must cover the size/skew ranges reported in
/// Section V-A.

#include <gtest/gtest.h>

#include <algorithm>

#include "sparse/datasets.hpp"

namespace gespmm::sparse {
namespace {

TEST(Citation, CoraMatchesTableIV) {
  const auto d = cora();
  EXPECT_EQ(d.adj.rows, 2708);
  EXPECT_EQ(d.adj.nnz(), 5429);
  EXPECT_EQ(d.num_classes, 7);
  EXPECT_EQ(d.feature_dim, 1433);
  EXPECT_NO_THROW(d.adj.validate());
}

TEST(Citation, CiteseerMatchesTableIV) {
  const auto d = citeseer();
  EXPECT_EQ(d.adj.rows, 3327);
  EXPECT_EQ(d.adj.nnz(), 4732);
  EXPECT_EQ(d.num_classes, 6);
  EXPECT_EQ(d.feature_dim, 3703);
}

TEST(Citation, PubmedMatchesTableIV) {
  const auto d = pubmed();
  EXPECT_EQ(d.adj.rows, 19717);
  EXPECT_EQ(d.adj.nnz(), 44338);
  EXPECT_EQ(d.num_classes, 3);
  EXPECT_EQ(d.feature_dim, 500);
}

TEST(Citation, SuiteIsDeterministic) {
  const auto a = cora();
  const auto b = cora();
  EXPECT_EQ(a.adj, b.adj);
}

TEST(ProfileMatrices, MatchSectionVBShapes) {
  const auto m16 = profile_matrix_16k();
  EXPECT_EQ(m16.rows, 16384);
  EXPECT_NEAR(m16.nnz(), 160e3, 5e3);
  const auto m65 = profile_matrix_65k();
  EXPECT_EQ(m65.rows, 65536);
  EXPECT_NEAR(m65.nnz(), 650e3, 10e3);
  const auto m262 = profile_matrix_262k();
  EXPECT_EQ(m262.rows, 262144);
  EXPECT_NEAR(m262.nnz(), 2.6e6, 4e4);
}

TEST(SnapSuite, Has64AlphabeticallySortedGraphs) {
  EXPECT_EQ(snap_suite_size(), 64);
  const auto names = snap_suite_names();
  ASSERT_EQ(names.size(), 64u);
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
  };
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(lower(names[i - 1]), lower(names[i]))
        << names[i - 1] << " !< " << names[i];
  }
}

TEST(SnapSuite, CoversPaperSizeAndDensityRanges) {
  // Paper Section V-A: M from 1005 to 4.8M (we scale to ~300K), nnz/row
  // from 1.58 to 32.53. Check the designated extremes, located by name.
  const auto names = snap_suite_names();
  auto index_of = [&](const std::string& n) {
    return static_cast<int>(std::find(names.begin(), names.end(), n) - names.begin());
  };
  const auto smallest = snap_suite_entry(index_of("as-735-syn"), 1.0);
  EXPECT_EQ(smallest.matrix.rows, 1005);
  const auto densest = snap_suite_entry(index_of("zc-collab-syn"), 0.25);
  EXPECT_GT(densest.matrix.avg_row_nnz(), 20.0);
  const auto sparsest = snap_suite_entry(index_of("zc-min-syn"), 1.0);
  EXPECT_LT(sparsest.matrix.avg_row_nnz(), 2.0);
  EXPECT_GE(sparsest.matrix.rows, 1000);
}

TEST(SnapSuite, EntriesValidateAndScale) {
  for (int i : {0, 5, 24, 33, 37, 63}) {
    const auto full = snap_suite_entry(i, 0.1);
    EXPECT_NO_THROW(full.matrix.validate()) << full.name;
    EXPECT_GT(full.matrix.nnz(), 0) << full.name;
    const auto half = snap_suite_entry(i, 0.05);
    EXPECT_LT(half.matrix.rows, full.matrix.rows) << full.name;
  }
}

TEST(SnapSuite, EntryIsDeterministic) {
  const auto a = snap_suite_entry(10, 0.1);
  const auto b = snap_suite_entry(10, 0.1);
  EXPECT_EQ(a.matrix, b.matrix);
  EXPECT_EQ(a.name, b.name);
}

TEST(SnapSuite, RejectsBadIndex) {
  EXPECT_THROW(snap_suite_entry(-1), std::out_of_range);
  EXPECT_THROW(snap_suite_entry(64), std::out_of_range);
}

TEST(SnapSuite, WholeSuiteBuildsAtReducedScale) {
  const auto suite = snap_suite(0.02);
  EXPECT_EQ(suite.size(), 64u);
  for (const auto& e : suite) {
    EXPECT_NO_THROW(e.matrix.validate()) << e.name;
  }
}

}  // namespace
}  // namespace gespmm::sparse
