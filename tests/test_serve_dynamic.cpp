/// Streaming graph updates: delta-overlay semantics, fingerprint
/// versioning, targeted plan invalidation, compaction, sharded
/// touched-slice re-planning and model rebinding — the dynamic-graph
/// contract of Engine::apply_update. The load-bearing property throughout:
/// update-in-place outputs are bitwise identical to re-registering the
/// materialized (compacted) CSR from scratch.

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <utility>

#include "serve/delta.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using serve::DeltaOverlay;
using serve::EdgeBatch;
using serve::Engine;
using serve::GraphId;
using serve::ServeOptions;
using serve::Ticket;
using serve::UpdateReport;

ServeOptions dynamic_opts() {
  ServeOptions opt;
  opt.devices = {gpusim::gtx1080ti()};
  opt.num_workers = 1;
  opt.start_paused = true;
  opt.plan.sample_blocks = 128;
  return opt;
}

DenseMatrix features(index_t rows, index_t cols, std::uint64_t seed) {
  DenseMatrix b(rows, cols);
  kernels::fill_random(b, seed);
  return b;
}

/// Serve one Sum request for `b` against a freshly registered `a` on a
/// clean engine — the from-scratch re-registration baseline every bitwise
/// assertion compares against.
DenseMatrix serve_fresh(const Csr& a, const DenseMatrix& b) {
  Engine eng(dynamic_opts());
  const GraphId id = eng.register_graph(a);
  Ticket t = eng.submit(id, b);
  eng.shutdown();
  return t.wait().c;
}

/// Independent delta reference: (row, col) -> value map of a CSR with a
/// sequence of batches applied host-side, used to cross-check effective
/// nnz and content without trusting DeltaOverlay's own arithmetic.
std::map<std::pair<index_t, index_t>, value_t> edge_map(const Csr& a) {
  std::map<std::pair<index_t, index_t>, value_t> edges;
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      edges[{i, a.colind[static_cast<std::size_t>(p)]}] =
          a.val[static_cast<std::size_t>(p)];
    }
  }
  return edges;
}

void apply_reference(std::map<std::pair<index_t, index_t>, value_t>& edges,
                     const EdgeBatch& batch) {
  for (const auto& e : batch.inserts) edges[{e.row, e.col}] = e.val;
  for (const auto& d : batch.deletes) {
    ASSERT_EQ(edges.erase({d.row, d.col}), 1u)
        << "reference delete of a missing edge at (" << d.row << ", "
        << d.col << ")";
  }
}

Csr reference_csr(const std::map<std::pair<index_t, index_t>, value_t>& edges,
                  index_t rows, index_t cols) {
  std::vector<index_t> r, c;
  std::vector<value_t> v;
  for (const auto& [rc, val] : edges) {
    r.push_back(rc.first);
    c.push_back(rc.second);
    v.push_back(val);
  }
  return sparse::csr_from_triplets(rows, cols, r, c, v);
}

// ---------------------------------------------------------------------------
// DeltaOverlay unit semantics

TEST(DeltaOverlay, UpsertDeleteAndMaterializeGolden) {
  // Base: 3x4, rows sorted.
  //   row 0: (1, 1.0) (3, 2.0)
  //   row 1: (0, 3.0)
  //   row 2: empty
  std::vector<index_t> r{0, 0, 1}, c{1, 3, 0};
  std::vector<value_t> v{1.0f, 2.0f, 3.0f};
  const Csr base = sparse::csr_from_triplets(3, 4, r, c, v);

  EdgeBatch batch;
  batch.inserts = {{0, 2, 5.0f},   // new edge, lands between existing cols
                   {0, 3, 7.0f},   // upsert: overwrites the 2.0
                   {2, 1, 9.0f}};  // first edge of an empty row
  batch.deletes = {{0, 1}};        // delete an original edge
  const auto ov = DeltaOverlay::apply(base, nullptr, batch);

  ASSERT_EQ(ov->rows(), (std::vector<index_t>{0, 2}));
  const Csr& patch = ov->patch();
  ASSERT_EQ(patch.rows, 2);
  EXPECT_EQ(patch.cols, 4);
  // Row 0 effective: (2, 5.0) (3, 7.0) — canonical ascending order.
  EXPECT_EQ(patch.colind, (std::vector<index_t>{2, 3, 1}));
  EXPECT_EQ(patch.val, (std::vector<value_t>{5.0f, 7.0f, 9.0f}));
  EXPECT_EQ(ov->overlay_nnz(), 3);
  EXPECT_EQ(ov->effective_nnz(base), 4);  // 3 base - 2 replaced + 3 patch

  const Csr eff = ov->materialize(base);
  EXPECT_EQ(eff.rows, 3);
  EXPECT_EQ(eff.nnz(), 4);
  EXPECT_EQ(eff.colind, (std::vector<index_t>{2, 3, 0, 1}));
  EXPECT_EQ(eff.val, (std::vector<value_t>{5.0f, 7.0f, 3.0f, 9.0f}));
  // Untouched row 1 is copied verbatim.
  EXPECT_EQ(eff.row_nnz(1), base.row_nnz(1));

  // Row-range slices rebase like GraphShard::csr.
  const Csr tail = ov->materialize_rows(base, 1, 3);
  EXPECT_EQ(tail.rows, 2);
  EXPECT_EQ(tail.colind, (std::vector<index_t>{0, 1}));
  EXPECT_EQ(tail.rowptr, (std::vector<index_t>{0, 1, 2}));

  EXPECT_TRUE(ov->touches(0, 1));
  EXPECT_FALSE(ov->touches(1, 2));
  EXPECT_TRUE(ov->touches(1, 3));
}

TEST(DeltaOverlay, ContractViolationsThrowWithoutSideEffects) {
  const Csr base = testutil::zoo_empty_rows();

  EdgeBatch oob_row;
  oob_row.inserts = {{base.rows, 0, 1.0f}};
  EXPECT_THROW(DeltaOverlay::apply(base, nullptr, oob_row),
               std::invalid_argument);

  EdgeBatch oob_col;
  oob_col.deletes = {{0, base.cols}};
  EXPECT_THROW(DeltaOverlay::apply(base, nullptr, oob_col),
               std::invalid_argument);

  // Deleting an edge that does not exist (row 0 is empty) must throw, not
  // silently no-op.
  EdgeBatch missing;
  missing.deletes = {{0, 1}};
  EXPECT_THROW(DeltaOverlay::apply(base, nullptr, missing),
               std::invalid_argument);

  // ...but deleting an edge inserted earlier in the same batch is fine
  // (inserts apply first).
  EdgeBatch insert_then_delete;
  insert_then_delete.inserts = {{0, 1, 4.0f}};
  insert_then_delete.deletes = {{0, 1}};
  const auto ov = DeltaOverlay::apply(base, nullptr, insert_then_delete);
  EXPECT_EQ(ov->rows(), (std::vector<index_t>{0}));
  EXPECT_EQ(ov->overlay_nnz(), 0);  // the row is touched but empty now
}

TEST(DeltaOverlay, FoldsAcrossBatchesAndCanonicalizesOnce) {
  const Csr base = testutil::zoo_uniform();

  EdgeBatch b1;
  b1.inserts = {{10, 3, 1.5f}, {20, 7, 2.5f}};
  const auto ov1 = DeltaOverlay::apply(base, nullptr, b1);

  EdgeBatch b2;
  b2.inserts = {{10, 3, 9.5f}, {30, 0, 3.5f}};  // upsert row 10 again
  const auto ov2 = DeltaOverlay::apply(base, ov1.get(), b2);

  EXPECT_EQ(ov2->rows(), (std::vector<index_t>{10, 20, 30}));

  // The folded overlay materializes exactly what applying both batches to
  // a host-side copy would produce.
  const Csr eff = ov2->materialize(base);
  eff.validate();
  EXPECT_TRUE(eff.rows_sorted());
  EXPECT_EQ(ov2->effective_nnz(base), eff.nnz());

  auto edges = edge_map(base);
  apply_reference(edges, b1);
  apply_reference(edges, b2);
  EXPECT_EQ(eff, reference_csr(edges, base.rows, base.cols));
}

// ---------------------------------------------------------------------------
// Fingerprint versioning

TEST(FingerprintVersion, VersionZeroKeyIsTheClassicKey) {
  const Csr a = testutil::zoo_uniform();
  serve::GraphFingerprint fp = serve::fingerprint(a);
  EXPECT_EQ(fp.version, 0u);
  const std::uint64_t classic = fp.key();

  // Bumping the version changes the key; distinct versions get distinct
  // keys; resetting recovers the classic key exactly.
  fp.version = 1;
  const std::uint64_t v1 = fp.key();
  fp.version = 2;
  const std::uint64_t v2 = fp.key();
  EXPECT_NE(classic, v1);
  EXPECT_NE(v1, v2);
  EXPECT_NE(classic, v2);
  fp.version = 0;
  EXPECT_EQ(fp.key(), classic);

  EXPECT_EQ(serve::fingerprint(a).str().find("v="), std::string::npos);
  fp.version = 3;
  EXPECT_NE(fp.str().find("v=3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Targeted plan invalidation

TEST(PlanCacheInvalidate, ErasesOnlyTheStaleGraphRespectingPins) {
  const Csr a = sparse::uniform_random(64, 64, 400, 805);
  const auto dev = gpusim::gtx1080ti();
  serve::PlanCacheOptions opt;
  opt.autotune = false;
  opt.sample_blocks = 64;
  serve::PlanCache cache(opt);

  const auto key = [](std::uint64_t graph, index_t n) {
    return serve::PlanKey{graph, "gtx1080ti", n, kernels::ReduceKind::Sum};
  };
  cache.lookup_or_build(key(1, 32), a, dev);
  cache.lookup_or_build(key(1, 64), a, dev);
  cache.lookup_or_build(key(2, 32), a, dev);
  serve::PlanLease pinned = cache.acquire(key(1, 96), a, dev);
  ASSERT_EQ(cache.size(), 4u);

  // Only graph 1's unpinned entries go; graph 2 and the pinned plan stay.
  EXPECT_EQ(cache.invalidate(1), 2u);
  EXPECT_EQ(cache.size(), 2u);
  const auto resident = cache.resident_keys();
  ASSERT_EQ(resident.size(), 2u);
  EXPECT_EQ(resident[0].graph, 2u);
  EXPECT_EQ(resident[1].graph, 1u);  // the pinned 96-wide plan
  EXPECT_EQ(resident[1].n, 96);

  auto st = cache.stats();
  EXPECT_EQ(st.invalidations, 2u);
  EXPECT_EQ(st.evictions, 0u);  // invalidation is not LRU pressure
  EXPECT_EQ(st.pinned, 1u);

  // Once released, a second invalidation can take the survivor.
  pinned.release();
  EXPECT_EQ(cache.invalidate(1), 1u);
  EXPECT_EQ(cache.stats().invalidations, 3u);
  EXPECT_EQ(cache.invalidate(1), 0u);  // idempotent on an empty graph
  ASSERT_EQ(cache.resident_keys().size(), 1u);
  EXPECT_EQ(cache.resident_keys()[0].graph, 2u);
}

// ---------------------------------------------------------------------------
// Engine: unsharded update path

TEST(EngineDynamic, UpdateInPlaceIsBitwiseIdenticalToReregistration) {
  const Csr base = testutil::zoo_uniform();
  const DenseMatrix b = features(base.cols, 32, 41);

  Engine eng(dynamic_opts());
  const GraphId id = eng.register_graph(base);
  eng.start();
  EXPECT_EQ(eng.submit(id, b).wait().c.max_abs_diff(serve_fresh(base, b)), 0.0);

  EdgeBatch batch;
  batch.inserts = {{0, 5, 2.0f}, {17, 3, -1.0f}, {199, 0, 0.25f}};
  batch.deletes = {{0, static_cast<index_t>(base.colind[0])}};
  const UpdateReport rep = eng.apply_update(id, batch);
  EXPECT_EQ(rep.version, 1u);
  EXPECT_FALSE(rep.compacted);
  EXPECT_EQ(rep.shards_replanned, 0);
  EXPECT_GT(rep.overlay_nnz, 0);

  // The handle is stable, the effective graph is served, and the output
  // is bitwise what re-registering the materialized CSR would serve. The
  // effective CSR must equal an independently maintained host-side copy.
  auto edges = edge_map(base);
  apply_reference(edges, batch);
  const std::shared_ptr<const Csr> eff = eng.graph(id);
  EXPECT_EQ(*eff, reference_csr(edges, base.rows, base.cols));
  const DenseMatrix got = eng.submit(id, b).wait().c;
  EXPECT_EQ(got.max_abs_diff(serve_fresh(*eff, b)), 0.0);

  // Versioned identity: the fingerprint bumped, plan keys rolled forward,
  // and the old generation's plan was erased targeted.
  EXPECT_EQ(eng.graph_fingerprint(id).version, 1u);
  EXPECT_NE(eng.graph_fingerprint(id).key(), id.key);
  const auto st = eng.stats();
  EXPECT_EQ(st.graph_updates, 1u);
  EXPECT_EQ(st.graph_compactions, 0u);
  EXPECT_EQ(st.plan_invalidations, rep.plans_invalidated);
  EXPECT_EQ(rep.plans_invalidated, 1u);
  eng.shutdown();
}

TEST(EngineDynamic, NonSumReductionsRideTheOverlayToo) {
  // Max/Mean matter because overlay rows are complete replacements: a
  // delete must be able to *lower* a row's max.
  std::vector<index_t> r{0, 0, 1}, c{0, 1, 1};
  std::vector<value_t> v{5.0f, 1.0f, 2.0f};
  const Csr base = sparse::csr_from_triplets(2, 2, r, c, v);

  Engine eng(dynamic_opts());
  const GraphId id = eng.register_graph(base);
  EdgeBatch batch;
  batch.deletes = {{0, 0}};  // row 0 keeps only the 1.0 edge
  eng.apply_update(id, batch);
  eng.start();

  const DenseMatrix b = features(2, 8, 42);
  Ticket t = eng.submit(id, b, {.reduce = kernels::ReduceKind::Max});
  eng.shutdown();

  const std::shared_ptr<const Csr> eff = eng.graph(id);
  DenseMatrix want(2, 8);
  kernels::spmm_host_parallel(*eff, b, want, kernels::ReduceKind::Max);
  EXPECT_EQ(t.wait().c.max_abs_diff(want), 0.0);
}

TEST(EngineDynamic, CompactionFoldsOverlayAndRefreshesStructure) {
  const Csr base = testutil::zoo_uniform();

  EdgeBatch small;
  small.inserts = {{3, 3, 1.0f}};
  EdgeBatch big;
  for (index_t i = 0; i < 12; ++i) big.inserts.push_back({i, 9, 0.5f});

  // An overlay carries the *full* canonical contents of every touched
  // row, so place the compaction bar deterministically between the first
  // overlay (row 3 only) and the second (rows 0..11): threshold =
  // first-overlay nnz + 1/2.
  const index_t first_overlay_nnz =
      DeltaOverlay::apply(base, nullptr, small)->overlay_nnz();
  Engine eng([&] {
    ServeOptions opt = dynamic_opts();
    opt.delta.compact_nnz_fraction =
        (static_cast<double>(first_overlay_nnz) + 0.5) /
        static_cast<double>(base.nnz());
    return opt;
  }());
  const GraphId id = eng.register_graph(base);

  const UpdateReport r1 = eng.apply_update(id, small);
  EXPECT_FALSE(r1.compacted);
  EXPECT_EQ(r1.overlay_nnz, first_overlay_nnz);

  const UpdateReport r2 = eng.apply_update(id, big);
  EXPECT_TRUE(r2.compacted);
  EXPECT_EQ(r2.version, 2u);
  EXPECT_EQ(r2.overlay_nnz, 0);

  // Post-compaction: the structural fingerprint refreshed, the version
  // survived the fold, the compacted CSR equals the independent host-side
  // reference, and serving matches re-registration bitwise.
  auto edges = edge_map(base);
  apply_reference(edges, small);
  apply_reference(edges, big);
  const serve::GraphFingerprint fp = eng.graph_fingerprint(id);
  EXPECT_EQ(fp.version, 2u);
  const std::shared_ptr<const Csr> eff = eng.graph(id);
  EXPECT_EQ(*eff, reference_csr(edges, base.rows, base.cols));
  EXPECT_EQ(fp.nnz, eff->nnz());

  eng.start();
  const DenseMatrix b = features(base.cols, 16, 43);
  const DenseMatrix got = eng.submit(id, b).wait().c;
  eng.shutdown();
  EXPECT_EQ(got.max_abs_diff(serve_fresh(*eff, b)), 0.0);
  EXPECT_EQ(eng.stats().graph_compactions, 1u);
}

TEST(EngineDynamic, PrePostUpdateRequestsNeverCoalesce) {
  // Both requests sit queued across an update on a paused engine; they
  // must execute as separate batches (different graph versions), each
  // against the snapshot it captured.
  const Csr base = testutil::zoo_uniform();
  Engine eng(dynamic_opts());
  const GraphId id = eng.register_graph(base);
  const DenseMatrix b = features(base.cols, 8, 44);

  Ticket pre = eng.submit(id, b);
  EdgeBatch batch;
  batch.inserts = {{0, 0, 3.0f}};
  eng.apply_update(id, batch);
  Ticket post = eng.submit(id, b);
  eng.shutdown();  // drains the paused queue

  EXPECT_EQ(pre.wait().batch_size, 1);
  EXPECT_EQ(post.wait().batch_size, 1);
  EXPECT_EQ(pre.wait().c.max_abs_diff(serve_fresh(base, b)), 0.0);
  EXPECT_EQ(post.wait().c.max_abs_diff(serve_fresh(*eng.graph(id), b)), 0.0);
  EXPECT_NE(pre.wait().c.max_abs_diff(post.wait().c), 0.0)
      << "the update must actually change row 0's output";
}

// ---------------------------------------------------------------------------
// Engine: sharded update path

ServeOptions sharded_opts() {
  ServeOptions opt;
  opt.devices = {gpusim::gtx1080ti(), gpusim::rtx2080()};
  opt.num_workers = 1;
  opt.start_paused = true;
  opt.plan.sample_blocks = 128;
  // zoo_uniform's CSR is ~16.8 KB; a 10 KB budget forces a 2-way shard
  // with headroom for the update batches the tests below apply.
  opt.sharding.device_capacity_bytes = 10000;
  return opt;
}

TEST(EngineDynamic, ShardedUpdateReplansOnlyTouchedShards) {
  const Csr base = testutil::zoo_uniform();
  Engine eng(sharded_opts());
  const GraphId id = eng.register_graph(base);
  const auto plan0 = eng.shard_plan(id);
  ASSERT_NE(plan0, nullptr);
  ASSERT_EQ(plan0->num_shards(), 2);
  const std::uint64_t shard0_key = plan0->shards[0].key;
  const std::uint64_t shard1_key = plan0->shards[1].key;

  const DenseMatrix b = features(base.cols, 16, 45);
  eng.start();
  EXPECT_EQ(eng.submit(id, b).wait().shards, 2);  // both shard plans built

  // Touch only shard 1's row range.
  const index_t row = plan0->shards[1].row_begin;
  EdgeBatch batch;
  batch.inserts = {{row, 7, 1.25f}};
  const UpdateReport rep = eng.apply_update(id, batch);
  EXPECT_EQ(rep.shards_replanned, 1);
  EXPECT_FALSE(rep.compacted);

  const auto plan1 = eng.shard_plan(id);
  EXPECT_EQ(plan1->shards[0].key, shard0_key)
      << "untouched shard keeps its content-addressed identity";
  EXPECT_NE(plan1->shards[1].key, shard1_key);
  EXPECT_EQ(plan1->shards[0].row_begin, plan0->shards[0].row_begin)
      << "partition boundaries stay fixed between compactions";
  EXPECT_EQ(plan1->shards[1].row_end, plan0->shards[1].row_end);

  // The next submit re-plans only the touched shard: one miss, one hit.
  const auto before = eng.plan_cache().stats();
  Ticket probe = eng.submit(id, b);  // named: the ticket owns the result
  const serve::RequestResult& res = probe.wait();
  const auto after = eng.plan_cache().stats();
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.misses - before.misses, 1u);

  // Bitwise contract against from-scratch re-registration of the
  // effective CSR (served sharded on a fresh engine too).
  Engine ref_eng(sharded_opts());
  const GraphId ref_id = ref_eng.register_graph(*eng.graph(id));
  ref_eng.start();
  const DenseMatrix want = ref_eng.submit(ref_id, b).wait().c;
  ref_eng.shutdown();
  EXPECT_EQ(res.c.max_abs_diff(want), 0.0);
  eng.shutdown();
}

TEST(EngineDynamic, ShardedCompactionRepartitionsEverything) {
  const Csr base = testutil::zoo_uniform();
  Engine eng([] {
    ServeOptions opt = sharded_opts();
    opt.delta.compact_nnz_fraction = 0.001;
    return opt;
  }());
  const GraphId id = eng.register_graph(base);

  EdgeBatch batch;
  for (index_t i = 0; i < 12; ++i) batch.inserts.push_back({i, 11, 2.0f});
  const UpdateReport rep = eng.apply_update(id, batch);
  EXPECT_TRUE(rep.compacted);
  EXPECT_EQ(rep.shards_replanned, 2);

  eng.start();
  const DenseMatrix b = features(base.cols, 8, 46);
  const DenseMatrix got = eng.submit(id, b).wait().c;
  eng.shutdown();

  Engine ref_eng(sharded_opts());
  const GraphId ref_id = ref_eng.register_graph(*eng.graph(id));
  ref_eng.start();
  const DenseMatrix want = ref_eng.submit(ref_id, b).wait().c;
  ref_eng.shutdown();
  EXPECT_EQ(got.max_abs_diff(want), 0.0);
}

// ---------------------------------------------------------------------------
// Engine: model rebinding and in-flight snapshot isolation

TEST(EngineDynamic, ModelRebindsUnderStableHandleAndInflightSnapshotSurvives) {
  const Csr base = sparse::uniform_random(48, 48, 384, 806);
  const serve::ModelSpec spec =
      serve::make_model_spec(serve::ServedModelKind::Gcn, 8, 8, 4, 2);
  const DenseMatrix x = features(48, 8, 47);

  // Baselines: the same model served over the pre- and post-update graph.
  const auto model_fresh = [&](const Csr& g) {
    Engine ref(dynamic_opts());
    const GraphId gid = ref.register_graph(g);
    const serve::ModelId mid = ref.register_model(gid, spec);
    Ticket t = ref.submit_model(mid, x);
    ref.shutdown();
    return t.wait().c;
  };

  Engine eng(dynamic_opts());
  const GraphId gid = eng.register_graph(base);
  const serve::ModelId mid = eng.register_model(gid, spec);

  // Queue a model ticket on the paused engine, then race it with an
  // update: the in-flight ticket captured the old RegisteredModel (and
  // with it the old CSR snapshot) at submit and must serve it.
  Ticket inflight = eng.submit_model(mid, x);
  EdgeBatch batch;
  batch.inserts = {{0, 1, 1.5f}, {5, 9, -2.0f}};
  const UpdateReport rep = eng.apply_update(gid, batch);
  EXPECT_EQ(rep.version, 1u);

  // The rebound registry entry answers the same stable ModelId with a
  // plan over the new graph identity.
  const auto rebound = eng.model(mid);
  EXPECT_EQ(rebound->plan.graph_key, eng.graph_fingerprint(gid).key());
  EXPECT_EQ(rebound->graph->nnz(), eng.graph(gid)->nnz());

  Ticket post = eng.submit_model(mid, x);
  eng.shutdown();

  EXPECT_EQ(inflight.wait().c.max_abs_diff(model_fresh(base)), 0.0)
      << "in-flight model ticket must execute its pre-update snapshot";
  EXPECT_EQ(post.wait().c.max_abs_diff(model_fresh(*eng.graph(gid))), 0.0)
      << "post-update model ticket must serve the rebound compilation";
  EXPECT_NE(inflight.wait().c.max_abs_diff(post.wait().c), 0.0);
}

TEST(EngineDynamic, UpdateErrorsLeaveTheGraphUntouched) {
  const Csr base = testutil::zoo_uniform();
  Engine eng(dynamic_opts());
  const GraphId id = eng.register_graph(base);

  EdgeBatch bad;
  bad.inserts = {{1, 1, 1.0f}};
  bad.deletes = {{2, base.cols}};  // out of range
  EXPECT_THROW(eng.apply_update(id, bad), std::invalid_argument);
  EXPECT_EQ(eng.graph_fingerprint(id).version, 0u);
  EXPECT_EQ(eng.graph(id)->nnz(), base.nnz());
  EXPECT_EQ(eng.stats().graph_updates, 0u);

  EXPECT_THROW(eng.apply_update(GraphId{777}, bad), std::invalid_argument);
  eng.shutdown();
}

}  // namespace
}  // namespace gespmm
