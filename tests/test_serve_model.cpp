/// Fused end-to-end model serving: plan compilation goldens, bitwise
/// identity between the fused forward pass and layer-by-layer composition,
/// the fusion win on modelled time, cross-layer plan-cache reuse, arena
/// recycling, and the admission/scheduler flow of whole-model tickets.

#include <gtest/gtest.h>

#include <vector>

#include "core/gespmm.hpp"
#include "serve/engine.hpp"
#include "serve/model_plan.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using serve::Engine;
using serve::GraphId;
using serve::LayerCost;
using serve::LayerStep;
using serve::ModelArena;
using serve::ModelId;
using serve::ModelPlan;
using serve::ModelSpec;
using serve::Priority;
using serve::RequestResult;
using serve::RequestStatus;
using serve::ServedModelKind;
using serve::ServeOptions;
using serve::Ticket;

ServeOptions one_device_opts(bool paused) {
  ServeOptions opt;
  opt.devices = {gpusim::gtx1080ti()};
  opt.num_workers = 1;
  opt.start_paused = paused;
  opt.plan.sample_blocks = 256;
  return opt;
}

DenseMatrix features(index_t rows, index_t cols, std::uint64_t seed) {
  DenseMatrix b(rows, cols);
  kernels::fill_random(b, seed);
  return b;
}

/// The reference composition: per layer, the dense transform on the
/// plan's side of an Engine-submitted aggregation, sharing gemm/bias_act
/// with the fused executor. What a client without submit_model would run.
DenseMatrix composed_forward(Engine& engine, GraphId gid,
                             const serve::RegisteredModel& m,
                             const DenseMatrix& x) {
  DenseMatrix h = x;
  for (std::size_t l = 0; l < m.plan.layers.size(); ++l) {
    const LayerStep& s = m.plan.layers[l];
    const DenseMatrix& w = m.spec.weights[l];
    const DenseMatrix& b = m.spec.bias[l];
    if (s.transform_first) {
      DenseMatrix t(h.rows(), s.out_width);
      serve::gemm(h, w, t);
      const Ticket tk = engine.submit(gid, std::move(t), {.reduce = s.reduce});
      DenseMatrix z = tk.wait().c;
      serve::bias_act(z, b, s.relu);
      h = std::move(z);
    } else {
      const Ticket tk = engine.submit(gid, DenseMatrix(h), {.reduce = s.reduce});
      DenseMatrix out(h.rows(), s.out_width);
      serve::dense_transform(tk.wait().c, w, b, s.relu, out);
      h = std::move(out);
    }
  }
  return h;
}

TEST(ModelPlanCompile, GcnPlanGolden) {
  const Csr a = sparse::uniform_random(64, 64, 256, 31);
  const ModelSpec spec =
      serve::make_model_spec(ServedModelKind::Gcn, 64, 16, 4, 3);
  const ModelPlan plan = serve::compile_model(7, a, spec);

  ASSERT_EQ(plan.layers.size(), 3u);
  EXPECT_EQ(plan.graph_key, 7u);
  EXPECT_EQ(plan.num_nodes, 64);
  EXPECT_EQ(plan.in_feats, 64);
  EXPECT_EQ(plan.out_feats, 4);

  // Layer 0 narrows 64 -> 16: transform first, aggregate at 16.
  EXPECT_TRUE(plan.layers[0].transform_first);
  EXPECT_EQ(plan.layers[0].spmm_width, 16);
  EXPECT_TRUE(plan.layers[0].relu);
  // Layer 1 is square 16 -> 16: aggregate first.
  EXPECT_FALSE(plan.layers[1].transform_first);
  EXPECT_EQ(plan.layers[1].spmm_width, 16);
  // Last layer narrows 16 -> 4: transform first, no activation.
  EXPECT_TRUE(plan.layers[2].transform_first);
  EXPECT_EQ(plan.layers[2].spmm_width, 4);
  EXPECT_FALSE(plan.layers[2].relu);

  EXPECT_EQ(plan.max_width, 64);
  EXPECT_EQ(plan.total_spmm_width, 16 + 16 + 4);

  // SAGE-GCN always aggregates raw features first.
  const ModelSpec sage =
      serve::make_model_spec(ServedModelKind::SageGcn, 64, 16, 4, 2);
  const ModelPlan sage_plan = serve::compile_model(7, a, sage);
  EXPECT_FALSE(sage_plan.layers[0].transform_first);
  EXPECT_EQ(sage_plan.layers[0].spmm_width, 64);

  // Parameter content keys the identity: same config -> same key,
  // different seed -> different key.
  EXPECT_EQ(serve::compile_model(7, a, spec).key, plan.key);
  const ModelSpec other =
      serve::make_model_spec(ServedModelKind::Gcn, 64, 16, 4, 3, 0xDEAD);
  EXPECT_NE(serve::compile_model(7, a, other).key, plan.key);
}

TEST(ModelPlanCompile, ValidatesShapes) {
  const Csr square = sparse::uniform_random(32, 32, 128, 32);
  const Csr rect = sparse::uniform_random(32, 48, 128, 33);
  ModelSpec spec = serve::make_model_spec(ServedModelKind::Gcn, 16, 8, 4, 2);

  EXPECT_THROW(serve::compile_model(1, rect, spec), std::invalid_argument);

  ModelSpec empty;
  EXPECT_THROW(serve::compile_model(1, square, empty), std::invalid_argument);

  ModelSpec broken_chain = spec;
  broken_chain.weights[1] = DenseMatrix(9, 4);  // layer 0 produces 8
  EXPECT_THROW(serve::compile_model(1, square, broken_chain),
               std::invalid_argument);

  ModelSpec bad_bias = spec;
  bad_bias.bias[0] = DenseMatrix(1, 5);  // layer 0 is 8 wide
  EXPECT_THROW(serve::compile_model(1, square, bad_bias),
               std::invalid_argument);

  ModelSpec missing_bias = spec;
  missing_bias.bias.pop_back();
  EXPECT_THROW(serve::compile_model(1, square, missing_bias),
               std::invalid_argument);
}

TEST(ModelPlanCost, FusedStrictlyBeatsComposedEverywhere) {
  // Property over layer shapes and both devices: composed decomposes as
  // spmm + gemm + epilogue exactly, and the fused price is positive and
  // strictly below composed (launch + intermediate round trip + epilogue
  // can only save time).
  for (const auto& dev : {gpusim::gtx1080ti(), gpusim::rtx2080()}) {
    const gnn::DeviceCost cost(dev);
    for (const index_t nodes : {512, 19717}) {
      for (const index_t in : {4, 32, 500}) {
        for (const index_t out : {4, 64}) {
          for (const bool relu : {false, true}) {
            LayerStep s;
            s.in_width = in;
            s.out_width = out;
            s.transform_first = in > out;
            s.spmm_width = s.transform_first ? out : in;
            s.relu = relu;
            const double spmm_ms = 0.05 + 1e-5 * nodes * s.spmm_width;
            const LayerCost c = serve::price_layer(s, nodes, spmm_ms, cost);
            EXPECT_DOUBLE_EQ(c.composed_ms,
                             c.spmm_ms + c.gemm_ms + c.epilogue_ms);
            EXPECT_GT(c.fused_ms, 0.0);
            EXPECT_LT(c.fused_ms, c.composed_ms);
            EXPECT_GE(c.fused_ms, 0.5 * std::max(c.spmm_ms, c.gemm_ms));
          }
        }
      }
    }
  }
}

TEST(ModelArena, RecyclesExactShapes) {
  ModelArena arena;
  DenseMatrix a = arena.take(8, 4);
  EXPECT_EQ(arena.reuse_hits(), 0u);
  a.at(7, 3) = 42.0f;
  arena.put(std::move(a));
  EXPECT_EQ(arena.resident(), 1u);

  DenseMatrix b = arena.take(8, 4);  // exact shape: recycled
  EXPECT_EQ(arena.reuse_hits(), 1u);
  EXPECT_EQ(arena.resident(), 0u);
  EXPECT_EQ(b.at(7, 3), 42.0f);  // as-is — consumers overwrite

  DenseMatrix c = arena.take(8, 5);  // different shape: fresh
  EXPECT_EQ(arena.reuse_hits(), 1u);
  arena.put(std::move(b));
  arena.put(std::move(c));
  EXPECT_EQ(arena.resident(), 2u);
}

TEST(ModelServe, FusedMatchesComposedBitwise) {
  // The acceptance property: submit_model's fused forward pass must be
  // bitwise identical to layer-by-layer composition through submit plus
  // the shared host-side dense transforms — while modelling strictly
  // less device time. Covers both model kinds and both semirings.
  struct Case {
    ServedModelKind kind;
    ReduceKind reduce;
    int layers;
  };
  const Case cases[] = {
      {ServedModelKind::Gcn, ReduceKind::Sum, 2},
      {ServedModelKind::Gcn, ReduceKind::Sum, 3},
      {ServedModelKind::SageGcn, ReduceKind::Mean, 2},
  };
  const Csr a = sparse::uniform_random(96, 96, 768, 77);
  for (const Case& tc : cases) {
    Engine engine(one_device_opts(/*paused=*/false));
    const GraphId gid = engine.register_graph(a);
    ModelSpec spec = serve::make_model_spec(tc.kind, 24, 16, 5, tc.layers);
    spec.reduce = tc.reduce;
    const ModelId mid = engine.register_model(gid, spec);
    const auto model = engine.model(mid);

    const DenseMatrix x = features(96, 24, 0xFEED);
    const Ticket fused_tk = engine.submit_model(mid, DenseMatrix(x));
    const RequestResult& fused = fused_tk.wait();
    ASSERT_EQ(fused.status, RequestStatus::Ok);
    EXPECT_EQ(fused.model_layers, tc.layers);
    EXPECT_EQ(fused.batch_size, 1);
    ASSERT_EQ(fused.c.rows(), 96);
    ASSERT_EQ(fused.c.cols(), 5);

    const DenseMatrix composed = composed_forward(engine, gid, *model, x);
    EXPECT_EQ(fused.c.max_abs_diff(composed), 0.0)
        << "fused pass diverged for kind="
        << serve::served_model_kind_name(tc.kind);

    EXPECT_GT(fused.modelled_ms, 0.0);
    EXPECT_LT(fused.modelled_ms, fused.composed_ms);
  }
}

TEST(ModelServe, CrossLayerAndCrossRequestPlanReuse) {
  // Layers share cached plans across the whole pass: a 4-layer 32-wide
  // GCN aggregates at widths (32, 32, 32, 8), and width quantization
  // (width_quantum = 32, rounded up) folds the 8-wide output layer into
  // the same 32-bucket — one build serves every layer, and repeated
  // passes hit everywhere.
  const Csr a = sparse::uniform_random(128, 128, 1024, 5);
  Engine engine(one_device_opts(/*paused=*/false));
  const GraphId gid = engine.register_graph(a);
  const ModelSpec spec =
      serve::make_model_spec(ServedModelKind::Gcn, 32, 32, 8, 4);
  const ModelId mid = engine.register_model(gid, spec);

  const Ticket first_tk = engine.submit_model(mid, features(128, 32, 1));
  const RequestResult& first = first_tk.wait();
  ASSERT_EQ(first.status, RequestStatus::Ok);
  // All four layers' widths (32, 32, 32, 8) quantize into the 32-wide
  // plan bucket: one miss builds it, three layer lookups hit.
  EXPECT_EQ(engine.plan_cache().misses(), 1u);
  EXPECT_EQ(engine.plan_cache().hits(), 3u);
  EXPECT_FALSE(first.plan_cache_hit);  // the pass contained the miss

  const Ticket second_tk = engine.submit_model(mid, features(128, 32, 2));
  const RequestResult& second = second_tk.wait();
  EXPECT_EQ(engine.plan_cache().misses(), 1u);
  EXPECT_EQ(engine.plan_cache().hits(), 7u);
  EXPECT_TRUE(second.plan_cache_hit);

  // Identical inputs -> identical outputs and identical fused price
  // (deterministic replay).
  const Ticket replay_tk = engine.submit_model(mid, features(128, 32, 1));
  const RequestResult& replay = replay_tk.wait();
  EXPECT_EQ(replay.c.max_abs_diff(first.c), 0.0);
  EXPECT_DOUBLE_EQ(replay.modelled_ms, first.modelled_ms);

  const auto st = engine.stats();
  EXPECT_EQ(st.model_requests, 3u);
  EXPECT_GT(st.fused_saved_ms, 0.0);
}

TEST(ModelServe, RegisterDedupsIdenticalModels) {
  const Csr a = sparse::uniform_random(64, 64, 256, 9);
  Engine engine(one_device_opts(/*paused=*/true));
  const GraphId gid = engine.register_graph(a);
  const ModelSpec spec =
      serve::make_model_spec(ServedModelKind::Gcn, 16, 8, 4, 2);
  const ModelId m1 = engine.register_model(gid, spec);
  const ModelId m2 = engine.register_model(gid, spec);
  EXPECT_EQ(m1.key, m2.key);
  const ModelId m3 = engine.register_model(
      gid, serve::make_model_spec(ServedModelKind::Gcn, 16, 8, 4, 2, 0xD1CE));
  EXPECT_NE(m3.key, m1.key);

  const auto st = engine.stats();
  EXPECT_EQ(st.models_registered, 2u);
  EXPECT_EQ(st.model_register_dedup_hits, 1u);

  EXPECT_THROW(engine.model(ModelId{12345}), std::invalid_argument);
  EXPECT_THROW(engine.submit_model(ModelId{12345}, features(64, 16, 1)),
               std::invalid_argument);
  EXPECT_THROW(engine.submit_model(m1, features(63, 16, 1)),
               std::invalid_argument);
  EXPECT_THROW(engine.submit_model(m1, features(64, 15, 1)),
               std::invalid_argument);
  engine.shutdown();
}

TEST(ModelServe, ModelTicketsFlowThroughSchedulerAloneAndShedUnderLoad) {
  const Csr a = sparse::uniform_random(64, 64, 512, 13);
  {
    // Paused engine: fix the batch composition. Plain requests around a
    // model ticket coalesce with each other but never with the model,
    // which ships as its own singleton batch.
    Engine engine(one_device_opts(/*paused=*/true));
    const GraphId gid = engine.register_graph(a);
    const ModelId mid = engine.register_model(
        gid, serve::make_model_spec(ServedModelKind::Gcn, 8, 8, 4, 2));

    Ticket p0 = engine.submit(gid, features(64, 8, 1));
    Ticket p1 = engine.submit(gid, features(64, 8, 2));
    Ticket m = engine.submit_model(mid, features(64, 8, 3));
    Ticket p2 = engine.submit(gid, features(64, 8, 4));
    engine.start();

    EXPECT_EQ(p0.wait().batch_size, 3);  // p0 + p1 + p2 coalesce past m
    EXPECT_EQ(p2.wait().batch_size, 3);
    EXPECT_EQ(m.wait().batch_size, 1);
    EXPECT_EQ(m.wait().model_layers, 2);
    engine.shutdown();
  }
  {
    // Admission applies to model tickets exactly like plain ones: with
    // the queue hard-full even interactive work is shed, completing the
    // ticket immediately with an empty result.
    ServeOptions opt = one_device_opts(/*paused=*/true);
    opt.admission.max_pending = 2;
    Engine engine(opt);
    const GraphId gid = engine.register_graph(a);
    const ModelId mid = engine.register_model(
        gid, serve::make_model_spec(ServedModelKind::Gcn, 8, 8, 4, 2));
    Ticket p0 = engine.submit(gid, features(64, 8, 1));
    Ticket p1 = engine.submit(gid, features(64, 8, 2));
    Ticket m = engine.submit_model(mid, features(64, 8, 3));
    EXPECT_TRUE(m.ready());
    EXPECT_EQ(m.wait().status, RequestStatus::Shed);
    EXPECT_EQ(m.wait().model_layers, 0);
    EXPECT_EQ(m.wait().c.rows(), 0);
    engine.shutdown();
    EXPECT_EQ(p0.wait().status, RequestStatus::Ok);
    EXPECT_EQ(p1.wait().status, RequestStatus::Ok);
  }
}

}  // namespace
}  // namespace gespmm
