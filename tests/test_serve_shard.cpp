/// Sharded serving: the row-partition planner (nnz balance, contiguous
/// cover, halo goldens, bitwise reassembly) and the engine's scatter/
/// gather execution path (capacity-triggered sharding, shard-qualified
/// plan-cache identities, bitwise identity with the unsharded kernel,
/// makespan scaling, and the registration error contract).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "core/gespmm.hpp"
#include "serve/engine.hpp"
#include "serve/shard.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using serve::Engine;
using serve::GraphId;
using serve::ServeOptions;
using serve::ShardPlan;
using serve::Ticket;

DenseMatrix features(index_t rows, index_t cols, std::uint64_t seed) {
  DenseMatrix b(rows, cols);
  kernels::fill_random(b, seed);
  return b;
}

/// Paused engine over `copies` gtx1080ti devices with an explicit
/// per-device residency budget (0 = the preset's DRAM, i.e. unsharded at
/// test scale).
ServeOptions shard_opts(int copies, std::size_t capacity_bytes) {
  ServeOptions opt;
  opt.devices.assign(static_cast<std::size_t>(copies), gpusim::gtx1080ti());
  opt.num_workers = 1;
  opt.start_paused = true;
  opt.plan.sample_blocks = 256;
  opt.sharding.device_capacity_bytes = capacity_bytes;
  return opt;
}

TEST(ShardPlanner, CsrBytesGolden) {
  // zoo_empty_rows: 8 rows, 8 nnz. rowptr (rows+1) indices + one index
  // and one value per nonzero.
  const Csr a = testutil::zoo_empty_rows();
  EXPECT_EQ(serve::csr_bytes(a),
            9 * sizeof(index_t) + 8 * (sizeof(index_t) + sizeof(value_t)));
}

TEST(ShardPlanner, BalancedContiguousCoverOnUniformGraph) {
  const Csr a = sparse::uniform_random(1000, 1000, 10000, 77);
  const ShardPlan plan = serve::plan_shards(a, 4);
  ASSERT_EQ(plan.num_shards(), 4);
  EXPECT_EQ(plan.graph_key, serve::fingerprint(a).key());

  index_t row = 0, nnz_total = 0, max_nnz = 0, min_nnz = a.nnz();
  for (const auto& s : plan.shards) {
    EXPECT_EQ(s.row_begin, row) << "shards must tile the rows contiguously";
    EXPECT_LT(s.row_begin, s.row_end);
    EXPECT_EQ(s.csr.rows, s.rows());
    EXPECT_EQ(s.csr.cols, a.cols);
    EXPECT_EQ(s.csr.rowptr.front(), 0) << "shard rowptr must be rebased";
    row = s.row_end;
    nnz_total += s.nnz();
    max_nnz = std::max(max_nnz, s.nnz());
    min_nnz = std::min(min_nnz, s.nnz());
  }
  EXPECT_EQ(row, a.rows) << "shards must cover every row exactly once";
  EXPECT_EQ(nnz_total, a.nnz());
  // Near-uniform nnz per row: the greedy planner lands within one max-row
  // of the ideal quarter on each side.
  EXPECT_LE(max_nnz - min_nnz, 100) << "nnz imbalance on a uniform graph";
}

TEST(ShardPlanner, SkewedGraphBalancesNnzNotRows) {
  const Csr a = testutil::zoo_skewed();  // rmat: heavy head rows
  const ShardPlan plan = serve::plan_shards(a, 4);
  ASSERT_EQ(plan.num_shards(), 4);

  index_t max_row_nnz = 0;
  for (index_t i = 0; i < a.rows; ++i) {
    max_row_nnz = std::max(
        max_row_nnz, a.rowptr[static_cast<std::size_t>(i) + 1] -
                         a.rowptr[static_cast<std::size_t>(i)]);
  }
  const index_t ideal = (a.nnz() + 3) / 4;
  index_t min_rows = a.rows, max_rows = 0;
  for (const auto& s : plan.shards) {
    // Greedy bound: a shard overshoots its proportional target by at most
    // the row that closed it (the last shard only underfills).
    EXPECT_LE(s.nnz(), ideal + max_row_nnz);
    min_rows = std::min(min_rows, s.rows());
    max_rows = std::max(max_rows, s.rows());
  }
  // The balance currency is edges: on this skew the row counts spread.
  EXPECT_GT(max_rows, min_rows);
}

TEST(ShardPlanner, HaloColumnsHandBuiltGolden) {
  // 4 rows / 6 nnz; with 2 shards the nnz-balanced split is rows [0,2) /
  // [2,4). Shard 0 references column 3 (owned by shard 1) and shard 1
  // references column 0 (owned by shard 0): one halo column each.
  std::vector<index_t> r{0, 0, 1, 2, 2, 3};
  std::vector<index_t> c{0, 3, 1, 0, 2, 3};
  std::vector<value_t> v{1, 2, 3, 4, 5, 6};
  const Csr a = sparse::csr_from_triplets(4, 4, r, c, v);

  const ShardPlan plan = serve::plan_shards(a, 2);
  ASSERT_EQ(plan.num_shards(), 2);
  EXPECT_EQ(plan.shards[0].row_begin, 0);
  EXPECT_EQ(plan.shards[0].row_end, 2);
  EXPECT_EQ(plan.shards[1].row_begin, 2);
  EXPECT_EQ(plan.shards[1].row_end, 4);
  EXPECT_EQ(plan.shards[0].nnz(), 3);
  EXPECT_EQ(plan.shards[1].nnz(), 3);
  EXPECT_EQ(plan.shards[0].halo_cols, 1);
  EXPECT_EQ(plan.shards[1].halo_cols, 1);
  // Distinct slices get distinct plan-cache identities.
  EXPECT_NE(plan.shards[0].key, plan.shards[1].key);
}

TEST(ShardPlanner, ShardKernelsReassembleBitwise) {
  for (const auto& zc : testutil::zoo_cases()) {
    if (zc.matrix.rows < 4) continue;  // need at least one row per shard
    const Csr& a = zc.matrix;
    const DenseMatrix b = features(a.cols, 9, 1234);
    DenseMatrix want(a.rows, 9);
    kernels::spmm_host_parallel(a, b, want, ReduceKind::Sum);

    const ShardPlan plan = serve::plan_shards(a, 4);
    DenseMatrix got(a.rows, 9);
    for (const auto& s : plan.shards) {
      DenseMatrix part(s.rows(), 9);
      kernels::spmm_host_parallel(s.csr, b, part, ReduceKind::Sum);
      for (index_t i = 0; i < s.rows(); ++i) {
        for (index_t j = 0; j < 9; ++j) {
          got.at(s.row_begin + i, j) = part.at(i, j);
        }
      }
    }
    EXPECT_EQ(got.max_abs_diff(want), 0.0)
        << zc.name << ": sharded slices must reassemble bitwise";
  }
}

TEST(ShardPlanner, RejectsImpossibleShardCounts) {
  const Csr a = testutil::zoo_empty_rows();  // 8 rows
  EXPECT_THROW(serve::plan_shards(a, 0), std::invalid_argument);
  EXPECT_THROW(serve::plan_shards(a, -1), std::invalid_argument);
  EXPECT_THROW(serve::plan_shards(a, 9), std::invalid_argument);
  EXPECT_EQ(serve::plan_shards(a, 8).num_shards(), 8);  // one row each
}

// ---------------------------------------------------------------------------
// Degenerate planning inputs

/// Recompute a shard's halo count from first principles: distinct columns
/// the slice references outside its owned row range.
index_t reference_halo(const serve::GraphShard& s) {
  std::set<index_t> outside;
  for (const index_t col : s.csr.colind) {
    if (col < s.row_begin || col >= s.row_end) outside.insert(col);
  }
  return static_cast<index_t>(outside.size());
}

TEST(ShardPlanner, FewerRowsThanGroupSizeThrows) {
  // A device group wider than the row count cannot give every device a
  // non-empty contiguous slice — the planner must refuse, not emit empty
  // shards.
  EXPECT_THROW(serve::plan_shards(testutil::zoo_single_entry(), 2),
               std::invalid_argument);
  EXPECT_THROW(serve::plan_shards(testutil::zoo_all_empty(), 7),
               std::invalid_argument);
  // Exactly one row per device is the boundary case and must plan.
  const ShardPlan one_each =
      serve::plan_shards(testutil::zoo_all_empty(), 6);
  ASSERT_EQ(one_each.num_shards(), 6);
  for (const auto& s : one_each.shards) {
    EXPECT_EQ(s.rows(), 1);
    EXPECT_EQ(s.nnz(), 0);
    EXPECT_EQ(s.halo_cols, 0);  // nothing referenced, nothing gathered
  }
}

TEST(ShardPlanner, ZeroNnzShardsPlanCleanly) {
  // All-empty operand: every shard is structurally valid, contiguous,
  // zero-nnz, zero-halo — and the kernel over each produces zero rows.
  const Csr a = testutil::zoo_all_empty();  // 6x6, nnz 0
  const ShardPlan plan = serve::plan_shards(a, 3);
  ASSERT_EQ(plan.num_shards(), 3);
  index_t row = 0;
  for (const auto& s : plan.shards) {
    EXPECT_EQ(s.row_begin, row);
    EXPECT_GT(s.rows(), 0);
    EXPECT_EQ(s.nnz(), 0);
    EXPECT_EQ(s.halo_cols, 0);
    s.csr.validate();
    row = s.row_end;
  }
  EXPECT_EQ(row, a.rows);

  const DenseMatrix b = features(a.cols, 5, 91);
  for (const auto& s : plan.shards) {
    DenseMatrix part(s.rows(), 5);
    kernels::spmm_host_parallel(s.csr, b, part, ReduceKind::Sum);
    EXPECT_EQ(part.max_abs_diff(DenseMatrix(s.rows(), 5)), 0.0);
  }
}

TEST(ShardPlanner, AllNnzInOneRowSkewGoldens) {
  // 6x6, all 6 nnz in row 2 (cols 0..5). The greedy nnz-balanced walk
  // closes shard 0 right after the heavy row: rows [0,3) hold everything,
  // rows [3,6) are a zero-nnz shard. Hand-built halo goldens: shard 0
  // references cols {3,4,5} outside its range; shard 1 references nothing.
  std::vector<index_t> r{2, 2, 2, 2, 2, 2};
  std::vector<index_t> c{0, 1, 2, 3, 4, 5};
  std::vector<value_t> v{1, 2, 3, 4, 5, 6};
  const Csr a = sparse::csr_from_triplets(6, 6, r, c, v);

  const ShardPlan plan = serve::plan_shards(a, 2);
  ASSERT_EQ(plan.num_shards(), 2);
  EXPECT_EQ(plan.shards[0].row_begin, 0);
  EXPECT_EQ(plan.shards[0].row_end, 3);
  EXPECT_EQ(plan.shards[1].row_begin, 3);
  EXPECT_EQ(plan.shards[1].row_end, 6);
  EXPECT_EQ(plan.shards[0].nnz(), 6);
  EXPECT_EQ(plan.shards[1].nnz(), 0);
  EXPECT_EQ(plan.shards[0].halo_cols, 3);  // cols 3, 4, 5
  EXPECT_EQ(plan.shards[1].halo_cols, 0);
  EXPECT_EQ(plan.shards[0].halo_cols, reference_halo(plan.shards[0]));
}

TEST(ShardPlanner, SkewedWideRowHaloMatchesReference) {
  // zoo_wide_row concentrates ~500 of ~800 nnz in row 5 of a 64x512
  // rectangle. Whatever partition the planner picks must cover the rows
  // contiguously, keep every shard non-empty, conserve total nnz, and
  // report exactly the halo the slice contents imply.
  const Csr a = testutil::zoo_wide_row();
  const ShardPlan plan = serve::plan_shards(a, 4);
  ASSERT_EQ(plan.num_shards(), 4);
  index_t row = 0, nnz = 0;
  for (const auto& s : plan.shards) {
    EXPECT_EQ(s.row_begin, row);
    EXPECT_GT(s.rows(), 0);
    EXPECT_EQ(s.halo_cols, reference_halo(s));
    s.csr.validate();
    row = s.row_end;
    nnz += s.nnz();
  }
  EXPECT_EQ(row, a.rows);
  EXPECT_EQ(nnz, a.nnz());
}

TEST(ShardEngine, OversizedGraphShardsAndMatchesUnshardedBitwise) {
  const Csr a = sparse::uniform_random(4096, 4096, 65536, 55);
  const std::size_t total = serve::csr_bytes(a);

  // Reference: one device, default capacity -> served unsharded.
  Engine ref_eng(shard_opts(1, 0));
  const GraphId ref_id = ref_eng.register_graph(a);
  ASSERT_EQ(ref_eng.shard_plan(ref_id), nullptr);
  Ticket ref_t = ref_eng.submit(ref_id, features(a.cols, 16, 321));
  ref_eng.start();
  const auto& ref_res = ref_t.wait();
  ASSERT_EQ(ref_res.status, serve::RequestStatus::Ok);
  EXPECT_EQ(ref_res.shards, 0);

  // Sharded: two devices, capacity below the full operand.
  Engine eng(shard_opts(2, total - 1));
  const GraphId id = eng.register_graph(a);
  const auto plan = eng.shard_plan(id);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->num_shards(), 2);
  EXPECT_LE(plan->max_shard_bytes(), total - 1);
  Ticket t = eng.submit(id, features(a.cols, 16, 321));
  eng.start();
  const auto& res = t.wait();
  ASSERT_EQ(res.status, serve::RequestStatus::Ok);
  EXPECT_EQ(res.shards, 2);
  EXPECT_EQ(res.c.max_abs_diff(ref_res.c), 0.0)
      << "sharded output must be bitwise identical to unsharded";

  // And both match the library kernel bitwise.
  DenseMatrix want(a.rows, 16);
  spmm(a, features(a.cols, 16, 321), want, ReduceKind::Sum);
  EXPECT_EQ(res.c.max_abs_diff(want), 0.0);

  const auto st = eng.stats();
  EXPECT_EQ(st.graphs_sharded, 1u);
  EXPECT_EQ(st.shard_launches, 2u);
  EXPECT_GT(st.gather_ms, 0.0);
  // Both devices participated in the single logical batch.
  ASSERT_EQ(st.devices.size(), 2u);
  EXPECT_EQ(st.devices[0].requests, 1u);
  EXPECT_EQ(st.devices[1].requests, 1u);
  EXPECT_EQ(st.batches, 1u);
}

TEST(ShardEngine, ShardQualifiedPlanKeysCoexist) {
  const Csr a = sparse::uniform_random(4096, 4096, 65536, 56);
  Engine eng(shard_opts(2, serve::csr_bytes(a) - 1));
  const GraphId id = eng.register_graph(a);
  const auto plan = eng.shard_plan(id);
  ASSERT_NE(plan, nullptr);

  Ticket t = eng.submit(id, features(a.cols, 8, 900));
  eng.start();
  ASSERT_EQ(t.wait().status, serve::RequestStatus::Ok);

  const auto keys = eng.plan_cache().resident_keys();
  ASSERT_EQ(keys.size(), 2u);
  for (int si = 0; si < 2; ++si) {
    const auto& shard = plan->shards[static_cast<std::size_t>(si)];
    const bool found = std::any_of(
        keys.begin(), keys.end(), [&](const serve::PlanKey& k) {
          return k.shard == si && k.graph == shard.key;
        });
    EXPECT_TRUE(found) << "missing shard-qualified plan key for shard " << si;
  }

  // A second identical submission hits both shard plans.
  Ticket t2 = eng.submit(id, features(a.cols, 8, 901));
  const auto& res2 = t2.wait();
  EXPECT_TRUE(res2.plan_cache_hit);
  EXPECT_EQ(eng.plan_cache().resident_keys().size(), 2u);
}

TEST(ShardEngine, FourWayShardingShrinksMakespan) {
  const Csr a = sparse::uniform_random(16384, 16384, 1 << 19, 57);
  const std::size_t total = serve::csr_bytes(a);

  Engine one(shard_opts(1, 0));
  const GraphId id1 = one.register_graph(a);
  Ticket t1 = one.submit(id1, features(a.cols, 64, 500));
  one.start();
  const double unsharded_ms = t1.wait().modelled_ms;

  Engine four(shard_opts(4, total / 4 + total / 8));  // forces 4 shards
  const GraphId id4 = four.register_graph(a);
  const auto plan = four.shard_plan(id4);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->num_shards(), 4);
  Ticket t4 = four.submit(id4, features(a.cols, 64, 500));
  four.start();
  const auto& res4 = t4.wait();

  // The sharded makespan (slowest shard incl. gather) must beat one
  // device doing all the work — compute splits 4 ways, gather does not,
  // so demand better than half rather than a full 4x here.
  EXPECT_LT(res4.modelled_ms, unsharded_ms * 0.5)
      << "4-way sharding should at least halve the modelled makespan";
  EXPECT_EQ(res4.shards, 4);
}

TEST(ShardEngine, RegistrationCapacityErrors) {
  const Csr a = sparse::uniform_random(512, 512, 8192, 58);
  const std::size_t total = serve::csr_bytes(a);

  // One device cannot shard: an oversized operand is a hard error.
  Engine single(shard_opts(1, total - 1));
  EXPECT_THROW(single.register_graph(a), std::runtime_error);

  // Two devices, but a budget even half the operand cannot meet.
  Engine tiny(shard_opts(2, total / 4));
  EXPECT_THROW(tiny.register_graph(a), std::runtime_error);

  // Exactly-fitting operand does not shard.
  Engine fits(shard_opts(2, total));
  const GraphId id = fits.register_graph(a);
  EXPECT_EQ(fits.shard_plan(id), nullptr);
}

TEST(ShardEngine, RegisterModelOnShardedGraphThrows) {
  const Csr a = sparse::uniform_random(512, 512, 8192, 59);
  Engine eng(shard_opts(2, serve::csr_bytes(a) - 1));
  const GraphId id = eng.register_graph(a);
  ASSERT_NE(eng.shard_plan(id), nullptr);
  EXPECT_THROW(eng.register_model(
                   id, serve::make_model_spec(serve::ServedModelKind::Gcn,
                                              /*in_feats=*/8,
                                              /*hidden_feats=*/8,
                                              /*out_feats=*/4,
                                              /*num_layers=*/2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gespmm
