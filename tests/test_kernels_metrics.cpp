/// Property tests on simulated kernel metrics: the *mechanisms* the paper
/// claims (coalescing, data reuse, ILP) must be visible in the counters,
/// and the calibrated cost model must reproduce the paper's headline
/// shapes. These tests guard the calibration against regressions.

#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "kernels/spmm_aspt.hpp"
#include "sparse/datasets.hpp"
#include "sparse/generators.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using kernels::SpmmAlgo;
using kernels::SpmmProblem;
using kernels::SpmmRunOptions;
using sparse::Csr;

SpmmRunOptions opts(const gpusim::DeviceSpec& dev) {
  SpmmRunOptions o;
  o.device = dev;
  o.sample = gpusim::SamplePolicy::sampled(2048);
  return o;
}

gpusim::LaunchResult run(const Csr& a, sparse::index_t n, SpmmAlgo algo,
                         const gpusim::DeviceSpec& dev) {
  SpmmProblem p(a, n, algo == SpmmAlgo::Csrmm2 ? kernels::Layout::ColMajor
                                               : kernels::Layout::RowMajor);
  return kernels::run_spmm(algo, p, opts(dev));
}

class MetricsFixture : public ::testing::Test {
 protected:
  static const Csr& matrix() {
    static const Csr a = sparse::uniform_random(16384, 16384, 163840, 0x16AA01ull);
    return a;
  }
};

TEST_F(MetricsFixture, CrcReducesLoadTransactions) {
  // Table V: CRC cuts gld_transactions substantially at N=512.
  const auto naive = run(matrix(), 512, SpmmAlgo::Naive, gpusim::gtx1080ti());
  const auto crc = run(matrix(), 512, SpmmAlgo::Crc, gpusim::gtx1080ti());
  EXPECT_LT(crc.metrics.gld_transactions, naive.metrics.gld_transactions);
  EXPECT_GT(static_cast<double>(naive.metrics.gld_transactions) /
                static_cast<double>(crc.metrics.gld_transactions),
            1.2);
}

TEST_F(MetricsFixture, CrcRaisesLoadEfficiencyToPaperLevels) {
  // Table V: 68.95% -> 92.40%.
  const auto naive = run(matrix(), 512, SpmmAlgo::Naive, gpusim::gtx1080ti());
  const auto crc = run(matrix(), 512, SpmmAlgo::Crc, gpusim::gtx1080ti());
  EXPECT_NEAR(naive.metrics.gld_efficiency(), 0.69, 0.05);
  EXPECT_NEAR(crc.metrics.gld_efficiency(), 0.92, 0.04);
}

TEST_F(MetricsFixture, CwmReducesTransactionsMonotonicallyInCf) {
  // Table VI: GLT decreases as CF grows (with diminishing returns).
  const auto dev = gpusim::gtx1080ti();
  const auto crc = run(matrix(), 512, SpmmAlgo::Crc, dev);
  const auto cf2 = run(matrix(), 512, SpmmAlgo::CrcCwm2, dev);
  const auto cf4 = run(matrix(), 512, SpmmAlgo::CrcCwm4, dev);
  const auto cf8 = run(matrix(), 512, SpmmAlgo::CrcCwm8, dev);
  EXPECT_GT(crc.metrics.gld_transactions, cf2.metrics.gld_transactions);
  EXPECT_GT(cf2.metrics.gld_transactions, cf4.metrics.gld_transactions);
  EXPECT_GT(cf4.metrics.gld_transactions, cf8.metrics.gld_transactions);
  // Diminishing returns: the CF2->CF4 saving is smaller than CRC->CF2.
  EXPECT_LT(cf2.metrics.gld_transactions - cf4.metrics.gld_transactions,
            crc.metrics.gld_transactions - cf2.metrics.gld_transactions);
}

TEST_F(MetricsFixture, CwmReducesOccupancyAsCfGrows) {
  // Table VI: achieved occupancy declines with CF.
  const auto dev = gpusim::gtx1080ti();
  const auto cf2 = run(matrix(), 512, SpmmAlgo::CrcCwm2, dev);
  const auto cf8 = run(matrix(), 512, SpmmAlgo::CrcCwm8, dev);
  EXPECT_LT(cf8.achieved_occupancy, cf2.achieved_occupancy);
}

TEST_F(MetricsFixture, Cf2IsTheSweetSpotOnBothDevices) {
  // Fig. 9: CF=2 robustly best, CF=8 clearly declining.
  for (const auto& dev : {gpusim::gtx1080ti(), gpusim::rtx2080()}) {
    const double t2 = run(matrix(), 512, SpmmAlgo::CrcCwm2, dev).time_ms();
    const double t4 = run(matrix(), 512, SpmmAlgo::CrcCwm4, dev).time_ms();
    const double t8 = run(matrix(), 512, SpmmAlgo::CrcCwm8, dev).time_ms();
    EXPECT_LT(t2, t4) << dev.name;
    EXPECT_LT(t4, t8) << dev.name;
  }
}

TEST_F(MetricsFixture, CrcSpeedupPascalButNotTuring) {
  // Fig. 8 + Section V-B1: CRC alone gives ~1.25x on the GTX 1080Ti but
  // ~1.0x on the RTX 2080 (whose unified L1 absorbs the broadcasts).
  const double pascal_naive = run(matrix(), 512, SpmmAlgo::Naive, gpusim::gtx1080ti()).time_ms();
  const double pascal_crc = run(matrix(), 512, SpmmAlgo::Crc, gpusim::gtx1080ti()).time_ms();
  const double sp_pascal = pascal_naive / pascal_crc;
  EXPECT_GT(sp_pascal, 1.12);
  EXPECT_LT(sp_pascal, 1.6);

  const double turing_naive = run(matrix(), 512, SpmmAlgo::Naive, gpusim::rtx2080()).time_ms();
  const double turing_crc = run(matrix(), 512, SpmmAlgo::Crc, gpusim::rtx2080()).time_ms();
  const double sp_turing = turing_naive / turing_crc;
  EXPECT_NEAR(sp_turing, 1.0, 0.08);
}

TEST_F(MetricsFixture, CombinedCrcCwmSpeedupMatchesPaperOnBothDevices) {
  // Section V-B2: CRC+CWM vs Algorithm 1 = ~1.65x (1080Ti) / ~1.51x (2080).
  const double p =
      run(matrix(), 512, SpmmAlgo::Naive, gpusim::gtx1080ti()).time_ms() /
      run(matrix(), 512, SpmmAlgo::CrcCwm2, gpusim::gtx1080ti()).time_ms();
  EXPECT_NEAR(p, 1.65, 0.30);
  const double t =
      run(matrix(), 512, SpmmAlgo::Naive, gpusim::rtx2080()).time_ms() /
      run(matrix(), 512, SpmmAlgo::CrcCwm2, gpusim::rtx2080()).time_ms();
  EXPECT_NEAR(t, 1.51, 0.30);
}

TEST_F(MetricsFixture, GeSpmmBeatsCusparseAndGraphblastAtLargeN) {
  // Table VII shapes at N=512.
  for (const auto& dev : {gpusim::gtx1080ti(), gpusim::rtx2080()}) {
    const double ge = run(matrix(), 512, SpmmAlgo::GeSpMM, dev).time_ms();
    const double cus = run(matrix(), 512, SpmmAlgo::Csrmm2, dev).time_ms();
    const double gb = run(matrix(), 512, SpmmAlgo::RowSplitGB, dev).time_ms();
    EXPECT_GT(cus / ge, 1.05) << dev.name;
    EXPECT_LT(cus / ge, 1.9) << dev.name;
    EXPECT_GT(gb / ge, 1.2) << dev.name;
    EXPECT_LT(gb / ge, 2.5) << dev.name;
  }
}

TEST_F(MetricsFixture, MarginOverCusparseGrowsWithN) {
  // Fig. 11 observation: GE-SpMM becomes more competitive as N grows.
  const auto dev = gpusim::gtx1080ti();
  const double r128 = run(matrix(), 128, SpmmAlgo::Csrmm2, dev).time_ms() /
                      run(matrix(), 128, SpmmAlgo::GeSpMM, dev).time_ms();
  const double r512 = run(matrix(), 512, SpmmAlgo::Csrmm2, dev).time_ms() /
                      run(matrix(), 512, SpmmAlgo::GeSpMM, dev).time_ms();
  EXPECT_GT(r512, r128 * 0.98);
}

TEST_F(MetricsFixture, GunrockIsAnOrderOfMagnitudeSlower) {
  // Fig. 12: feature-dimension-serial graph engines lose badly (18x avg).
  const auto cit = sparse::cora();
  const double ge = run(cit.adj, 64, SpmmAlgo::GeSpMM, gpusim::gtx1080ti()).time_ms();
  const double gr = run(cit.adj, 64, SpmmAlgo::Gunrock, gpusim::gtx1080ti()).time_ms();
  EXPECT_GT(gr / ge, 6.0);
}

TEST_F(MetricsFixture, SpmvLoopPaysNLaunchesAndUncoalescedGathers) {
  const auto cit = sparse::cora();
  const auto spmv = run(cit.adj, 64, SpmmAlgo::SpmvLoop, gpusim::gtx1080ti());
  const auto ge = run(cit.adj, 64, SpmmAlgo::GeSpMM, gpusim::gtx1080ti());
  EXPECT_GT(spmv.time_ms(), 3.0 * ge.time_ms());
  EXPECT_LT(spmv.metrics.gld_efficiency(), ge.metrics.gld_efficiency());
}

TEST_F(MetricsFixture, DglFallbackLosesToGeSpmmLike) {
  // Section V-F2: GE-SpMM's SpMM-like is 2.39x-6.15x faster than DGL's
  // fallback kernel.
  SpmmRunOptions o = opts(gpusim::gtx1080ti());
  o.reduce = kernels::ReduceKind::Max;
  const auto g = sparse::pubmed().adj;
  SpmmProblem p1(g, 64), p2(g, 64);
  const double dgl = kernels::run_spmm(SpmmAlgo::DglFallback, p1, o).time_ms();
  const double ge = kernels::run_spmm(SpmmAlgo::GeSpMM, p2, o).time_ms();
  EXPECT_GT(dgl / ge, 2.0);
  EXPECT_LT(dgl / ge, 12.0);
}

TEST_F(MetricsFixture, UsefulBytesNeverExceedTransactedBytes) {
  for (auto algo : {SpmmAlgo::Naive, SpmmAlgo::Crc, SpmmAlgo::CrcCwm2,
                    SpmmAlgo::RowSplitGB, SpmmAlgo::DglFallback}) {
    const auto r = run(matrix(), 96, algo, gpusim::rtx2080());
    EXPECT_LE(r.metrics.gld_useful_bytes, r.metrics.gld_bytes())
        << kernels::algo_name(algo);
    EXPECT_LE(r.metrics.l1_hits + r.metrics.l2_hits,
              r.metrics.gld_transactions)
        << kernels::algo_name(algo);
  }
}

TEST_F(MetricsFixture, SampledRunApproximatesFullRun) {
  const Csr a = sparse::uniform_random(8192, 8192, 81920, 77);
  SpmmProblem pf(a, 128), ps(a, 128);
  SpmmRunOptions full;
  SpmmRunOptions samp;
  samp.sample = gpusim::SamplePolicy::sampled(512);
  const auto rf = kernels::run_spmm(SpmmAlgo::CrcCwm2, pf, full);
  const auto rs = kernels::run_spmm(SpmmAlgo::CrcCwm2, ps, samp);
  const double rel = std::abs(static_cast<double>(rs.metrics.gld_transactions) -
                              static_cast<double>(rf.metrics.gld_transactions)) /
                     static_cast<double>(rf.metrics.gld_transactions);
  EXPECT_LT(rel, 0.05);
  EXPECT_NEAR(rs.time_ms(), rf.time_ms(), rf.time_ms() * 0.08);
}

TEST(AsptMetrics, AsptKernelWinsOnClusteredButPaysPreprocessing) {
  // Table VIII's mechanism: ASpT's dense-tile reuse makes its *kernel*
  // competitive or better (strongly so on clustered matrices, near parity
  // on the suite geomean: paper 0.85-1.00), but a real preprocessing pass
  // must be charged for one-shot GNN use.
  const Csr a = sparse::rmat(13, 16.0, 0.57, 0.19, 0.19, 99);
  const auto dev = gpusim::gtx1080ti();
  SpmmProblem p1(a, 128), p2(a, 128);
  SpmmRunOptions o = opts(dev);
  const auto build = sparse::build_aspt(a);
  ASSERT_GT(build.matrix.heavy_fraction(), 0.3);
  kernels::AsptDevice ad(build.matrix);
  const double aspt = kernels::run_spmm_aspt(ad, p1, o).time_ms();
  const double ge = kernels::run_spmm(SpmmAlgo::GeSpMM, p2, o).time_ms();
  // The band is wide on purpose: dense-tile reuse favours ASpT while its
  // 128-row panel blocks concentrate more of a skewed matrix's load into
  // one block (the cost model's tail term), which favours GE.
  EXPECT_GT(ge / aspt, 0.55) << "ASpT kernel should be at least competitive";
  EXPECT_LT(ge / aspt, 2.5) << "clustered matrices favour ASpT, within reason";
  // Preprocessing is a substantial fraction of kernel time (paper: avg
  // 0.47x of one SpMM, up to 64x) — it cannot be amortized in one-shot
  // inference/sampled-batch settings.
  const double pre = kernels::aspt_preprocess_time_ms(build, dev);
  EXPECT_GT(pre / aspt, 0.3);
}

}  // namespace
}  // namespace gespmm
