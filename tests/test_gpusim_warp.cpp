/// WarpCtx / BlockCtx semantics: every load/store flavour must move the
/// right values AND account the right transactions through the cache
/// hierarchy; shared memory and atomics behave as documented.

#include <gtest/gtest.h>

#include "gpusim/gpusim.hpp"

namespace gespmm::gpusim {
namespace {

/// Harness that runs a lambda as a one-block, one-warp kernel.
template <typename Fn>
LaunchResult run_warp(const DeviceSpec& dev, Fn&& fn, std::size_t smem_bytes = 0) {
  struct L final : Kernel {
    Fn* fn;
    std::size_t smem;
    LaunchConfig config(const DeviceSpec&) const override {
      LaunchConfig cfg;
      cfg.grid = 1;
      cfg.block = 32;
      cfg.smem_bytes = smem;
      return cfg;
    }
    std::string name() const override { return "lambda"; }
    void run_block(BlockCtx& blk) const override { (*fn)(blk); }
  } kernel;
  kernel.fn = &fn;
  kernel.smem = smem_bytes;
  return launch(dev, kernel);
}

class WarpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_device_address_space();
    in = DeviceArray<float>(1024);
    out = DeviceArray<float>(1024, 0.0f);
    idx = DeviceArray<std::int32_t>(1024);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<float>(i) * 0.5f;
      idx[i] = static_cast<std::int32_t>((i * 37) % 1024);
    }
  }
  DeviceArray<float> in, out;
  DeviceArray<std::int32_t> idx;
};

TEST_F(WarpFixture, ContiguousLoadMovesValuesAndCounts4Transactions) {
  const auto r = run_warp(gtx1080ti(), [&](BlockCtx& blk) {
    WarpCtx w = blk.warp(0);
    const auto v = w.ld_contig(in, 64, kFullMask);
    for (int l = 0; l < kWarpSize; ++l) {
      EXPECT_FLOAT_EQ(v[static_cast<std::size_t>(l)], (64.0f + l) * 0.5f);
    }
  });
  EXPECT_EQ(r.metrics.gld_transactions, 4u);
  EXPECT_EQ(r.metrics.gld_useful_bytes, 128u);
  EXPECT_EQ(r.metrics.gld_instructions, 1u);
}

TEST_F(WarpFixture, BroadcastLoadIsOneTransaction) {
  const auto r = run_warp(gtx1080ti(), [&](BlockCtx& blk) {
    WarpCtx w = blk.warp(0);
    const float v = w.ld_broadcast(in, 100, kFullMask);
    EXPECT_FLOAT_EQ(v, 50.0f);
  });
  EXPECT_EQ(r.metrics.gld_transactions, 1u);
  EXPECT_EQ(r.metrics.gld_useful_bytes, 4u);
  EXPECT_LT(r.metrics.gld_efficiency(), 0.2);
}

TEST_F(WarpFixture, GatherLoadMovesCorrectValues) {
  const auto r = run_warp(gtx1080ti(), [&](BlockCtx& blk) {
    WarpCtx w = blk.warp(0);
    Lanes<std::int64_t> indices{};
    for (int l = 0; l < kWarpSize; ++l) {
      indices[static_cast<std::size_t>(l)] = (l * 37) % 1024;
    }
    const auto v = w.ld_gather(in, indices, kFullMask);
    for (int l = 0; l < kWarpSize; ++l) {
      EXPECT_FLOAT_EQ(v[static_cast<std::size_t>(l)],
                      static_cast<float>((l * 37) % 1024) * 0.5f);
    }
  });
  // Stride-37 floats: each lane its own segment.
  EXPECT_EQ(r.metrics.gld_transactions, 32u);
}

TEST_F(WarpFixture, StoreWritesThroughAndCountsDram) {
  const auto r = run_warp(gtx1080ti(), [&](BlockCtx& blk) {
    WarpCtx w = blk.warp(0);
    w.st_contig(out, 0, splat(3.5f), kFullMask);
  });
  for (int l = 0; l < kWarpSize; ++l) EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(l)], 3.5f);
  EXPECT_EQ(r.metrics.gst_transactions, 4u);
  EXPECT_GE(r.metrics.dram_transactions, 4u);  // write-through
}

TEST_F(WarpFixture, ScatterStoreWithMask) {
  const auto r = run_warp(gtx1080ti(), [&](BlockCtx& blk) {
    WarpCtx w = blk.warp(0);
    Lanes<std::int64_t> indices{};
    Lanes<float> vals{};
    for (int l = 0; l < kWarpSize; ++l) {
      indices[static_cast<std::size_t>(l)] = l * 8;
      vals[static_cast<std::size_t>(l)] = static_cast<float>(l);
    }
    w.st_gather(out, indices, vals, first_lanes(5));
  });
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[8], 1.0f);
  EXPECT_FLOAT_EQ(out[32], 4.0f);
  EXPECT_FLOAT_EQ(out[40], 0.0f);  // lane 5 masked off
  EXPECT_EQ(r.metrics.gst_useful_bytes, 5u * 4);
}

TEST_F(WarpFixture, AtomicAddAccumulatesAndCountsConflicts) {
  const auto r = run_warp(gtx1080ti(), [&](BlockCtx& blk) {
    WarpCtx w = blk.warp(0);
    Lanes<std::int64_t> indices{};
    Lanes<float> vals{};
    for (int l = 0; l < kWarpSize; ++l) {
      indices[static_cast<std::size_t>(l)] = l % 4;  // 8-way conflicts
      vals[static_cast<std::size_t>(l)] = 1.0f;
    }
    w.atomic_add_gather(out, indices, vals, kFullMask);
  });
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)], 8.0f);
  // Atomics are a load + a store instruction plus replay work.
  EXPECT_GE(r.metrics.gld_instructions, 1u);
  EXPECT_GE(r.metrics.gst_instructions, 1u);
  EXPECT_GT(r.metrics.warp_instructions, 2u);
}

TEST_F(WarpFixture, SharedMemoryAllocAndAccounting) {
  const auto r = run_warp(
      gtx1080ti(),
      [&](BlockCtx& blk) {
        auto sm = blk.smem_alloc<float>(64);
        WarpCtx w = blk.warp(0);
        sm[3] = 7.0f;
        w.smem_store(4);
        EXPECT_FLOAT_EQ(sm[3], 7.0f);
        w.smem_load(4);
        // A second allocation must not overlap the first.
        auto sm2 = blk.smem_alloc<std::int32_t>(16);
        EXPECT_NE(static_cast<void*>(sm.data()), static_cast<void*>(sm2.data()));
      },
      /*smem_bytes=*/64 * sizeof(float) + 16 * sizeof(std::int32_t));
  EXPECT_EQ(r.metrics.smem_store_bytes, 4u);
  EXPECT_EQ(r.metrics.smem_load_bytes, 4u);
}

TEST_F(WarpFixture, ShuffleBroadcastsLaneValue) {
  run_warp(gtx1080ti(), [&](BlockCtx& blk) {
    WarpCtx w = blk.warp(0);
    Lanes<float> v{};
    for (int l = 0; l < kWarpSize; ++l) v[static_cast<std::size_t>(l)] = static_cast<float>(l * l);
    EXPECT_FLOAT_EQ(w.shfl(v, 5), 25.0f);
    EXPECT_FLOAT_EQ(w.shfl(v, 31), 961.0f);
  });
}

TEST_F(WarpFixture, L2CachesRepeatedBroadcastsOnPascal) {
  const auto r = run_warp(gtx1080ti(), [&](BlockCtx& blk) {
    WarpCtx w = blk.warp(0);
    for (int rep = 0; rep < 8; ++rep) w.ld_broadcast(in, 200, kFullMask);
  });
  EXPECT_EQ(r.metrics.gld_transactions, 8u);
  EXPECT_EQ(r.metrics.l1_hits, 0u);   // Pascal: no L1 for globals
  EXPECT_EQ(r.metrics.l2_hits, 7u);   // first access misses, rest hit
  EXPECT_EQ(r.metrics.dram_transactions, 1u);
}

TEST_F(WarpFixture, L1CachesRepeatedBroadcastsOnTuring) {
  const auto r = run_warp(rtx2080(), [&](BlockCtx& blk) {
    WarpCtx w = blk.warp(0);
    for (int rep = 0; rep < 8; ++rep) w.ld_broadcast(in, 200, kFullMask);
  });
  EXPECT_EQ(r.metrics.l1_hits, 7u);
  EXPECT_EQ(r.metrics.dram_transactions, 1u);
}

TEST_F(WarpFixture, DeterministicVirtualAddresses) {
  reset_device_address_space();
  DeviceArray<float> a(100);
  DeviceArray<float> b(100);
  const auto addr_a = a.base_addr();
  const auto addr_b = b.base_addr();
  reset_device_address_space();
  DeviceArray<float> a2(100);
  DeviceArray<float> b2(100);
  EXPECT_EQ(a2.base_addr(), addr_a);
  EXPECT_EQ(b2.base_addr(), addr_b);
  EXPECT_EQ(addr_a % 256, 0u);
  EXPECT_NE(addr_a, addr_b);
}

TEST_F(WarpFixture, CopiedArrayGetsFreshAddressRange) {
  DeviceArray<float> a(100, 1.0f);
  DeviceArray<float> b = a;  // copy
  EXPECT_NE(a.base_addr(), b.base_addr());
  EXPECT_FLOAT_EQ(b[50], 1.0f);
  b[50] = 2.0f;
  EXPECT_FLOAT_EQ(a[50], 1.0f);  // deep copy
}

TEST_F(WarpFixture, ResizeGrowthRelocatesVirtually) {
  DeviceArray<float> a(64);
  const auto before = a.base_addr();
  a.resize(32);  // shrink: address stable
  EXPECT_EQ(a.base_addr(), before);
  a.resize(4096);  // growth: must not overlap later allocations
  EXPECT_NE(a.base_addr(), before);
}

}  // namespace
}  // namespace gespmm::gpusim
