/// Load-balance properties of the kernel families on skewed (power-law)
/// matrices: merge-split's nnz-balanced mapping vs row-per-warp layouts,
/// and the behaviour of GE-SpMM's block-per-row mapping under skew.

#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "sparse/generators.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using kernels::SpmmAlgo;
using kernels::SpmmProblem;
using kernels::SpmmRunOptions;
using sparse::Csr;

double time_of(const Csr& a, sparse::index_t n, SpmmAlgo algo,
               const gpusim::DeviceSpec& dev) {
  SpmmProblem p(a, n, algo == SpmmAlgo::Csrmm2 ? kernels::Layout::ColMajor
                                               : kernels::Layout::RowMajor);
  SpmmRunOptions o;
  o.device = dev;
  // Full simulation: the tail (critical-path) term depends on the *max*
  // per-block chain, which block sampling can miss.
  return kernels::run_spmm(algo, p, o).time_ms();
}

TEST(LoadBalance, MergeSplitBeatsRowSplitOnHubMatrix) {
  // Extreme hub: one row holds ~30K nonzeros while the rest are sparse.
  // Row-per-warp (rowsplit) serializes the hub into one warp's dependent
  // load chain (the cost model's tail term); nnz-balanced merge-split
  // spreads it over ~hub/256 chunks.
  const Csr base = sparse::uniform_random(32768, 32768, 100000, 42);
  std::vector<sparse::index_t> r, c;
  std::vector<sparse::value_t> v;
  for (sparse::index_t i = 0; i < base.rows; ++i) {
    for (sparse::index_t p = base.rowptr[static_cast<std::size_t>(i)];
         p < base.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      r.push_back(i);
      c.push_back(base.colind[static_cast<std::size_t>(p)]);
      v.push_back(base.val[static_cast<std::size_t>(p)]);
    }
  }
  for (sparse::index_t j = 0; j < 30000; ++j) {
    r.push_back(77);
    c.push_back(j);
    v.push_back(0.5f);
  }
  const Csr hub = sparse::csr_from_triplets(base.rows, base.cols, r, c, v);
  const auto stats = sparse::degree_stats(hub);
  ASSERT_GT(stats.max, 1000 * stats.mean) << "test requires an extreme hub";

  const auto dev = gpusim::gtx1080ti();
  const double rowsplit = time_of(hub, 128, SpmmAlgo::RowSplitGB, dev);
  const double mergesplit = time_of(hub, 128, SpmmAlgo::MergeSplitGB, dev);
  EXPECT_LT(mergesplit, rowsplit)
      << "nnz-balanced mapping must win under extreme row-length skew";
}

TEST(LoadBalance, MergeSplitPaysAtomicsOnUniformMatrices) {
  // On uniform matrices row splitting is already balanced; merge-split's
  // boundary atomics and carry chains make it the slower choice.
  const Csr uniform = sparse::uniform_random(16384, 16384, 163840, 43);
  const auto dev = gpusim::gtx1080ti();
  const double rowsplit = time_of(uniform, 128, SpmmAlgo::RowSplitGB, dev);
  const double mergesplit = time_of(uniform, 128, SpmmAlgo::MergeSplitGB, dev);
  EXPECT_LT(rowsplit, mergesplit * 1.6)
      << "rowsplit should be at least competitive on uniform degree";
}

TEST(LoadBalance, GeSpmmRobustAcrossSkewLevels) {
  // GE-SpMM assigns blocks per row but the within-row tile loop adapts to
  // the length, so its time should track nnz rather than max row length.
  const auto dev = gpusim::gtx1080ti();
  const Csr mild = sparse::rmat(11, 8.0, 0.45, 0.25, 0.25, 44);
  const Csr heavy = sparse::rmat(11, 8.0, 0.65, 0.15, 0.15, 45);
  const double t_mild = time_of(mild, 128, SpmmAlgo::GeSpMM, dev);
  const double t_heavy = time_of(heavy, 128, SpmmAlgo::GeSpMM, dev);
  const double nnz_ratio =
      static_cast<double>(heavy.nnz()) / static_cast<double>(mild.nnz());
  const double time_ratio = t_heavy / t_mild;
  EXPECT_LT(time_ratio / nnz_ratio, 1.8)
      << "GE-SpMM time should roughly track nnz, not degree skew";
  EXPECT_GT(time_ratio / nnz_ratio, 0.4);
}

TEST(LoadBalance, MergeSplitCorrectOnPathologicalShapes) {
  // One gigantic row followed by thousands of empty ones — the worst case
  // for row-based mappings and the atomics-heavy case for merge-split.
  std::vector<sparse::index_t> r, c;
  std::vector<sparse::value_t> v;
  for (sparse::index_t j = 0; j < 3000; ++j) {
    r.push_back(0);
    c.push_back(j);
    v.push_back(0.001f * static_cast<float>(j + 1));
  }
  const Csr pathological = sparse::csr_from_triplets(2048, 3000, r, c, v);
  SpmmProblem p(pathological, 40);
  kernels::fill_random(p.B, 46);
  kernels::run_spmm(SpmmAlgo::MergeSplitGB, p, SpmmRunOptions{});
  testutil::expect_matches_reference(pathological, p.B, p.C,
                                     kernels::ReduceKind::Sum);
}

TEST(LoadBalance, MergeSplitChunkAccountingCoversAllNnz) {
  // Metrics sanity: FLOP count must equal 2 * nnz * N for every mapping.
  const Csr a = sparse::rmat(10, 6.0, 0.55, 0.2, 0.2, 47);
  for (auto algo : {SpmmAlgo::RowSplitGB, SpmmAlgo::MergeSplitGB, SpmmAlgo::GeSpMM}) {
    SpmmProblem p(a, 64);
    SpmmRunOptions o;  // full simulation
    const auto res = kernels::run_spmm(algo, p, o);
    const auto expected = 2ull * static_cast<std::uint64_t>(a.nnz()) * 64ull;
    // Atomic flushes add a few extra FLOPs at chunk boundaries; allow 5%.
    EXPECT_GE(res.metrics.flops, expected) << kernels::algo_name(algo);
    EXPECT_LE(res.metrics.flops, expected + expected / 20) << kernels::algo_name(algo);
  }
}

}  // namespace
}  // namespace gespmm
