/// Tensor operation tests, including gradient checks for the composite ops.

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/tensor.hpp"

namespace gespmm::gnn {
namespace {

Tensor seq(index_t r, index_t c, float base = 0.0f) {
  Tensor t(r, c);
  for (index_t i = 0; i < r; ++i) {
    for (index_t j = 0; j < c; ++j) t.at(i, j) = base + static_cast<float>(i * c + j);
  }
  return t;
}

TEST(Tensor, MatmulSmallKnownResult) {
  Tensor a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  Tensor b(3, 2);
  b.at(0, 0) = 7; b.at(0, 1) = 8;
  b.at(1, 0) = 9; b.at(1, 1) = 10;
  b.at(2, 0) = 11; b.at(2, 1) = 12;
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(Tensor, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor(2, 3), Tensor(2, 3)), std::invalid_argument);
}

TEST(Tensor, MatmulTransposedVariantsAgree) {
  const Tensor a = seq(4, 5, 0.5f);
  const Tensor b = seq(5, 3, -2.0f);
  const Tensor c = matmul(a, b);
  // a * b == matmul_bt(a, b^T) == matmul_at(a^T, b)
  const Tensor c2 = matmul_bt(a, transpose(b));
  const Tensor c3 = matmul_at(transpose(a), b);
  for (index_t i = 0; i < c.rows(); ++i) {
    for (index_t j = 0; j < c.cols(); ++j) {
      EXPECT_NEAR(c.at(i, j), c2.at(i, j), 1e-3);
      EXPECT_NEAR(c.at(i, j), c3.at(i, j), 1e-3);
    }
  }
}

TEST(Tensor, TransposeRoundTrip) {
  const Tensor a = seq(3, 7);
  const Tensor t = transpose(transpose(a));
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) EXPECT_EQ(a.at(i, j), t.at(i, j));
  }
}

TEST(Tensor, AddBiasBroadcastsRow) {
  Tensor bias(1, 3);
  bias.at(0, 0) = 1; bias.at(0, 1) = 2; bias.at(0, 2) = 3;
  const Tensor c = add_bias(Tensor(2, 3, 10.0f), bias);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11);
  EXPECT_FLOAT_EQ(c.at(1, 2), 13);
}

TEST(Tensor, ReluClampsNegatives) {
  Tensor a(1, 4);
  a.at(0, 0) = -1; a.at(0, 1) = 0; a.at(0, 2) = 2; a.at(0, 3) = -0.5f;
  const Tensor r = relu(a);
  EXPECT_FLOAT_EQ(r.at(0, 0), 0);
  EXPECT_FLOAT_EQ(r.at(0, 2), 2);
  EXPECT_FLOAT_EQ(r.at(0, 3), 0);
}

TEST(Tensor, ColsumAndConcat) {
  const Tensor a = seq(3, 2);
  const Tensor s = colsum(a);
  EXPECT_FLOAT_EQ(s.at(0, 0), 0 + 2 + 4);
  EXPECT_FLOAT_EQ(s.at(0, 1), 1 + 3 + 5);

  const Tensor b = seq(3, 3, 100.0f);
  const Tensor cat = concat_cols(a, b);
  ASSERT_EQ(cat.cols(), 5);
  EXPECT_FLOAT_EQ(cat.at(1, 0), a.at(1, 0));
  EXPECT_FLOAT_EQ(cat.at(1, 2), b.at(1, 0));
  Tensor ga, gb;
  split_cols(cat, 2, ga, gb);
  EXPECT_FLOAT_EQ(ga.at(2, 1), a.at(2, 1));
  EXPECT_FLOAT_EQ(gb.at(2, 2), b.at(2, 2));
}

TEST(Tensor, LogSoftmaxRowsSumToOneInProbSpace) {
  const Tensor a = seq(4, 6, -3.0f);
  const Tensor l = log_softmax(a);
  for (index_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) sum += std::exp(l.at(i, j));
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Tensor, NllLossGradientMatchesFiniteDifference) {
  Tensor logits(3, 4);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 4; ++j) logits.at(i, j) = 0.1f * static_cast<float>(i + j * j);
  }
  const std::vector<int> labels{2, 0, 3};
  const auto base = nll_loss(log_softmax(logits), labels);
  const float eps = 1e-3f;
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      Tensor bumped = logits;
      bumped.at(i, j) += eps;
      const auto up = nll_loss(log_softmax(bumped), labels);
      const double fd = (up.loss - base.loss) / eps;
      EXPECT_NEAR(fd, base.grad_logits.at(i, j), 5e-3)
          << "gradient mismatch at (" << i << "," << j << ")";
    }
  }
}

TEST(Tensor, NllLossAccuracy) {
  Tensor logp(2, 2);
  logp.at(0, 0) = -0.1f; logp.at(0, 1) = -3.0f;  // predicts 0
  logp.at(1, 0) = -2.0f; logp.at(1, 1) = -0.2f;  // predicts 1
  const std::vector<int> labels{0, 0};
  EXPECT_NEAR(nll_loss(logp, labels).accuracy, 0.5, 1e-9);
}

TEST(Tensor, GlorotDeterministicAndBounded) {
  const Tensor a = Tensor::glorot(64, 32, 7);
  const Tensor b = Tensor::glorot(64, 32, 7);
  const float bound = std::sqrt(6.0f / (64 + 32));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.flat()[i], b.flat()[i]);
    EXPECT_LE(std::abs(a.flat()[i]), bound);
  }
}

}  // namespace
}  // namespace gespmm::gnn
