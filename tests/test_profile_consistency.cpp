/// Cross-cutting consistency of the profiled path: sampled runs must
/// approximate full runs for every kernel family, metrics must be
/// device-independent where the architecture cannot matter, and the
/// public profile API must agree with the registry it wraps.

#include <gtest/gtest.h>

#include "core/gespmm.hpp"
#include "sparse/generators.hpp"

namespace gespmm {
namespace {

class ProfileConsistency : public ::testing::TestWithParam<SpmmAlgo> {};

TEST_P(ProfileConsistency, SampledApproximatesFull) {
  const SpmmAlgo algo = GetParam();
  const Csr a = sparse::uniform_random(6144, 6144, 49152, 1234);
  ProfileOptions full;
  full.algo = algo;
  ProfileOptions sampled = full;
  sampled.sample = gpusim::SamplePolicy::sampled(512);
  const auto rf = profile_spmm_shape(a, 96, full);
  const auto rs = profile_spmm_shape(a, 96, sampled);
  ASSERT_GT(rf.result.metrics.gld_transactions, 0u);
  const double rel =
      std::abs(static_cast<double>(rs.result.metrics.gld_transactions) -
               static_cast<double>(rf.result.metrics.gld_transactions)) /
      static_cast<double>(rf.result.metrics.gld_transactions);
  EXPECT_LT(rel, 0.06) << kernels::algo_name(algo);
  EXPECT_NEAR(rs.time_ms(), rf.time_ms(), rf.time_ms() * 0.15)
      << kernels::algo_name(algo);
}

TEST_P(ProfileConsistency, TransactionCountsAreArchitectureIndependent) {
  // Coalescing is a warp-geometry property: both devices must report the
  // same gld_transactions; only cache hits and time may differ.
  const SpmmAlgo algo = GetParam();
  const Csr a = sparse::rmat(10, 8.0, 0.5, 0.22, 0.22, 1235);
  ProfileOptions pascal;
  pascal.algo = algo;
  pascal.device = gpusim::gtx1080ti();
  ProfileOptions turing = pascal;
  turing.device = gpusim::rtx2080();
  const auto rp = profile_spmm_shape(a, 64, pascal);
  const auto rt = profile_spmm_shape(a, 64, turing);
  EXPECT_EQ(rp.result.metrics.gld_transactions, rt.result.metrics.gld_transactions)
      << kernels::algo_name(algo);
  EXPECT_EQ(rp.result.metrics.gld_useful_bytes, rt.result.metrics.gld_useful_bytes)
      << kernels::algo_name(algo);
  EXPECT_EQ(rp.result.metrics.l1_hits, 0u) << "Pascal L1 must stay bypassed";
}

TEST_P(ProfileConsistency, FlopsMatchNominalCount) {
  const SpmmAlgo algo = GetParam();
  const Csr a = sparse::uniform_random(2048, 2048, 16384, 1236);
  ProfileOptions opt;
  opt.algo = algo;
  const auto r = profile_spmm_shape(a, 32, opt);
  const auto nominal = 2ull * static_cast<std::uint64_t>(a.nnz()) * 32ull;
  EXPECT_GE(r.result.metrics.flops, nominal) << kernels::algo_name(algo);
  EXPECT_LE(r.result.metrics.flops, nominal + nominal / 10)
      << kernels::algo_name(algo);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ProfileConsistency,
    ::testing::Values(SpmmAlgo::Naive, SpmmAlgo::Crc, SpmmAlgo::CrcCwm2,
                      SpmmAlgo::CrcCwm4, SpmmAlgo::RowSplitGB,
                      SpmmAlgo::MergeSplitGB, SpmmAlgo::Csrmm2,
                      SpmmAlgo::DglFallback),
    [](const auto& info) {
      std::string s = kernels::algo_name(info.param);
      for (auto& c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return s;
    });

}  // namespace
}  // namespace gespmm
