/// Stress layer for the serving scheduler (ctest label: stress): many
/// producer threads x a random graph/width/reduce/priority mix x random
/// shutdown points. Invariants, whatever interleaving the scheduler and
/// admission controller see:
///  - no deadlock (the suite finishes; ctest enforces a hard timeout),
///  - no lost tickets: every ticket returned by submit() completes — Ok
///    after the shutdown drain, or Shed already at submit,
///  - bitwise-equal outputs vs. a serial replay: each Ok result equals
///    `gespmm::spmm` recomputed alone from the request's seed,
///  - conservation: admitted == completed, per-graph served sums match,
///  - the plan-cache entry budget holds at every observation point.
///
/// Runtime is bounded by construction (small graphs, 64-block sampling);
/// the ctest entry carries TIMEOUT 120 and CI runs it in its own shard.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/gespmm.hpp"
#include "serve/engine.hpp"
#include "sparse/rng.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using serve::Engine;
using serve::GraphId;
using serve::Priority;
using serve::RequestStatus;
using serve::ServeOptions;
using serve::ShedReason;
using serve::Ticket;

struct Submission {
  std::size_t graph_idx = 0;
  index_t n = 0;
  ReduceKind reduce = ReduceKind::Sum;
  std::uint64_t seed = 0;
  Ticket ticket;
  /// False when submit() threw std::runtime_error (engine already shut
  /// down when the producer raced past the stop).
  bool accepted_by_submit = false;
};

struct StressConfig {
  std::uint64_t seed = 1;
  int threads = 6;
  int per_thread = 32;
  /// Call shutdown() once this many submissions happened; -1 = only after
  /// every producer finished (pure drain).
  int shutdown_after = -1;
  std::size_t max_pending = 48;
  std::size_t plan_budget = 4;
};

void run_stress(const StressConfig& cfg) {
  const std::vector<Csr> graphs = {
      sparse::uniform_random(64, 64, 400, cfg.seed * 7 + 1),
      sparse::uniform_random(96, 80, 500, cfg.seed * 7 + 2),
      testutil::zoo_skewed(),
  };

  ServeOptions opt;  // both devices
  opt.num_workers = 2;
  opt.plan.sample_blocks = 64;
  opt.plan.max_entries = cfg.plan_budget;
  opt.admission.max_pending = cfg.max_pending;
  Engine eng(opt);
  std::vector<GraphId> ids;
  ids.reserve(graphs.size());
  for (const auto& g : graphs) ids.push_back(eng.register_graph(g));

  const ReduceKind kinds[] = {ReduceKind::Sum, ReduceKind::Sum, ReduceKind::Max,
                              ReduceKind::Mean};
  std::atomic<int> submissions{0};
  std::vector<std::vector<Submission>> subs(static_cast<std::size_t>(cfg.threads));
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(cfg.threads));
  for (int t = 0; t < cfg.threads; ++t) {
    producers.emplace_back([&, t] {
      sparse::SplitMix64 rng(cfg.seed ^ (0x9e3779b9ull + 1000003ull * static_cast<std::uint64_t>(t)));
      for (int r = 0; r < cfg.per_thread; ++r) {
        Submission s;
        s.graph_idx = rng.next_below(graphs.size());
        s.n = 1 + static_cast<index_t>(rng.next_below(24));
        s.reduce = kinds[rng.next_below(4)];
        s.seed = rng.next();
        DenseMatrix b(graphs[s.graph_idx].cols, s.n);
        kernels::fill_random(b, s.seed);
        try {
          s.ticket = eng.submit(
              ids[s.graph_idx], std::move(b),
              {.reduce = s.reduce,
               .priority = static_cast<Priority>(rng.next_below(3))});
          s.accepted_by_submit = true;
        } catch (const std::runtime_error&) {
          s.accepted_by_submit = false;  // raced past shutdown — allowed
        }
        subs[static_cast<std::size_t>(t)].push_back(std::move(s));
        submissions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  if (cfg.shutdown_after >= 0) {
    // A random-ish stop point concurrent with live producers.
    while (submissions.load(std::memory_order_relaxed) < cfg.shutdown_after) {
      std::this_thread::yield();
    }
    eng.shutdown();
  }
  for (auto& p : producers) p.join();
  eng.shutdown();  // idempotent; pure-drain path when shutdown_after < 0

  // --- Invariants -----------------------------------------------------
  std::uint64_t ok = 0, shed = 0, refused = 0;
  for (const auto& per_thread : subs) {
    for (const auto& s : per_thread) {
      if (!s.accepted_by_submit) {
        ++refused;
        EXPECT_FALSE(s.ticket.valid());
        continue;
      }
      // No lost tickets: every accepted submission completed.
      ASSERT_TRUE(s.ticket.valid());
      ASSERT_TRUE(s.ticket.ready());
      const auto& res = s.ticket.wait();
      if (res.status == RequestStatus::Shed) {
        ++shed;
        EXPECT_NE(res.shed_reason, ShedReason::None);
        EXPECT_EQ(res.c.rows(), 0);
        EXPECT_EQ(res.batch_size, 0);
        continue;
      }
      ++ok;
      // Serial replay: regenerate the request from its seed and compare
      // bitwise against the one-shot API.
      const Csr& g = graphs[s.graph_idx];
      DenseMatrix b(g.cols, s.n);
      kernels::fill_random(b, s.seed);
      DenseMatrix want(g.rows, s.n);
      spmm(g, b, want, s.reduce);
      ASSERT_EQ(res.c.rows(), g.rows);
      ASSERT_EQ(res.c.cols(), s.n);
      EXPECT_EQ(res.c.max_abs_diff(want), 0.0)
          << "graph " << s.graph_idx << " n=" << s.n << " seed=" << s.seed;
      EXPECT_GT(res.completed_at_ms, 0.0);
      EXPECT_GE(res.batch_size, 1);
    }
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(cfg.threads) * static_cast<std::uint64_t>(cfg.per_thread);
  EXPECT_EQ(ok + shed + refused, total);

  const auto st = eng.stats();
  EXPECT_EQ(st.submitted, ok);
  EXPECT_EQ(st.completed, ok);
  EXPECT_EQ(st.shed, shed);
  EXPECT_EQ(st.admission.total_admitted(), ok);
  EXPECT_EQ(st.admission.total_shed(), shed);
  std::uint64_t served = 0, still_pending = 0;
  for (const auto& g : st.graphs) {
    served += g.served;
    still_pending += g.pending;
  }
  EXPECT_EQ(served, ok);
  EXPECT_EQ(still_pending, 0u);
  std::uint64_t device_requests = 0;
  for (const auto& d : st.devices) device_requests += d.requests;
  EXPECT_EQ(device_requests, ok);

  // The plan-cache budget is a hard ceiling at every observation point.
  const auto pc = eng.plan_cache().stats();
  EXPECT_LE(pc.size, cfg.plan_budget);
  EXPECT_LE(pc.peak_size, cfg.plan_budget);
  EXPECT_EQ(pc.pinned, 0u);  // every lease released with its batch

  // Admission is closed for good.
  EXPECT_THROW(eng.submit(ids[0], DenseMatrix(graphs[0].cols, 4)),
               std::runtime_error);
}

TEST(ServeStress, DrainAfterFullSubmission) {
  StressConfig cfg;
  cfg.seed = 11;
  cfg.shutdown_after = -1;
  run_stress(cfg);
}

TEST(ServeStress, ShutdownMidStream) {
  StressConfig cfg;
  cfg.seed = 22;
  cfg.shutdown_after = 40;
  run_stress(cfg);
}

TEST(ServeStress, ShutdownAlmostImmediately) {
  StressConfig cfg;
  cfg.seed = 33;
  cfg.shutdown_after = 5;
  cfg.plan_budget = 2;
  run_stress(cfg);
}

TEST(ServeStress, TinyQueueHeavySheddingAndCacheThrash) {
  StressConfig cfg;
  cfg.seed = 44;
  cfg.max_pending = 6;  // most traffic sheds; survivors must stay exact
  cfg.plan_budget = 1;  // budget=1 thrash under concurrency
  run_stress(cfg);
}

}  // namespace
}  // namespace gespmm
