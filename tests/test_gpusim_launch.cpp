/// Launch engine tests: metric collection, block sampling extrapolation,
/// determinism, and cost-model sanity/monotonicity properties.

#include <gtest/gtest.h>

#include "gpusim/gpusim.hpp"

namespace gespmm::gpusim {
namespace {

/// Toy kernel: every warp streams `len` contiguous floats and stores one
/// value — fully predictable metrics.
class StreamKernel final : public Kernel {
 public:
  StreamKernel(DeviceArray<float>& in, DeviceArray<float>& out, long long grid, int len)
      : in_(&in), out_(&out), grid_(grid), len_(len) {}

  LaunchConfig config(const DeviceSpec&) const override {
    LaunchConfig cfg;
    cfg.grid = grid_;
    cfg.block = 64;  // 2 warps
    cfg.regs_per_thread = 24;
    return cfg;
  }
  std::string name() const override { return "stream"; }

  void run_block(BlockCtx& blk) const override {
    for (int w = 0; w < blk.num_warps(); ++w) {
      WarpCtx warp = blk.warp(w);
      Lanes<float> acc = splat(0.0f);
      for (int t = 0; t < len_; t += kWarpSize) {
        const auto base = (blk.block_id() * 2 + w) % 7 * 1024 + t;
        const auto v = warp.ld_contig(*in_, base, kFullMask);
        for (int l = 0; l < kWarpSize; ++l) {
          acc[static_cast<std::size_t>(l)] += v[static_cast<std::size_t>(l)];
        }
        warp.count_fma(kWarpSize);
      }
      warp.st_contig(*out_, (blk.block_id() * 2 + w) * kWarpSize % 512, acc, kFullMask);
    }
  }

 private:
  DeviceArray<float>* in_;
  DeviceArray<float>* out_;
  long long grid_;
  int len_;
};

class LaunchFixture : public ::testing::Test {
 protected:
  DeviceArray<float> in_{16 * 1024, 1.0f};
  DeviceArray<float> out_{16 * 1024, 0.0f};
};

TEST_F(LaunchFixture, MetricsMatchHandComputedCounts) {
  StreamKernel k(in_, out_, /*grid=*/10, /*len=*/128);
  const auto r = launch(gtx1080ti(), k);
  // 10 blocks x 2 warps x 4 tile loads, each 4 transactions (aligned).
  EXPECT_EQ(r.metrics.gld_instructions, 10u * 2 * 4);
  EXPECT_EQ(r.metrics.gld_transactions, 10u * 2 * 4 * 4);
  EXPECT_EQ(r.metrics.gld_useful_bytes, 10u * 2 * 4 * 128);
  EXPECT_DOUBLE_EQ(r.metrics.gld_efficiency(), 1.0);
  EXPECT_EQ(r.metrics.gst_instructions, 10u * 2);
  EXPECT_EQ(r.metrics.flops, 10u * 2 * 4 * 2 * 32);
  EXPECT_EQ(r.metrics.num_blocks, 10u);
  EXPECT_EQ(r.metrics.num_warps, 20u);
}

TEST_F(LaunchFixture, SampledMetricsExtrapolateCloseToFull) {
  StreamKernel k(in_, out_, /*grid=*/4096, /*len=*/256);
  const auto full = launch(gtx1080ti(), k, SamplePolicy::full());
  const auto sampled = launch(gtx1080ti(), k, SamplePolicy::sampled(512));
  EXPECT_GT(sampled.metrics.sample_scale, 1.0);
  const double rel =
      std::abs(static_cast<double>(sampled.metrics.gld_transactions) -
               static_cast<double>(full.metrics.gld_transactions)) /
      static_cast<double>(full.metrics.gld_transactions);
  EXPECT_LT(rel, 0.02) << "sampling should extrapolate within 2% on a uniform grid";
  EXPECT_NEAR(sampled.time_ms(), full.time_ms(), full.time_ms() * 0.05);
}

TEST_F(LaunchFixture, DeterministicAcrossRuns) {
  StreamKernel k(in_, out_, 777, 96);
  const auto a = launch(rtx2080(), k);
  const auto b = launch(rtx2080(), k);
  EXPECT_EQ(a.metrics.gld_transactions, b.metrics.gld_transactions);
  EXPECT_EQ(a.metrics.l1_hits, b.metrics.l1_hits);
  EXPECT_EQ(a.metrics.l2_hits, b.metrics.l2_hits);
  EXPECT_EQ(a.metrics.dram_transactions, b.metrics.dram_transactions);
  EXPECT_DOUBLE_EQ(a.time_ms(), b.time_ms());
}

TEST_F(LaunchFixture, TuringL1AbsorbsRepeatedLines) {
  StreamKernel k(in_, out_, 64, 128);
  const auto pascal = launch(gtx1080ti(), k);
  const auto turing = launch(rtx2080(), k);
  EXPECT_EQ(pascal.metrics.l1_hits, 0u);  // Pascal L1 bypassed
  EXPECT_GT(turing.metrics.l1_hits, 0u);  // same lines revisited across warps
}

TEST(CostModel, TimeScalesInverselyWithDramTraffic) {
  const auto dev = gtx1080ti();
  LaunchConfig cfg;
  cfg.grid = 10000;
  cfg.block = 256;
  const auto occ = compute_occupancy(dev, cfg);
  LaunchMetrics m;
  m.dram_transactions = 1'000'000;
  const auto t1 = estimate_time(dev, cfg, m, occ);
  m.dram_transactions = 2'000'000;
  const auto t2 = estimate_time(dev, cfg, m, occ);
  EXPECT_NEAR(t2.dram_ms / t1.dram_ms, 2.0, 1e-9);
  EXPECT_GT(t2.total_ms, t1.total_ms);
}

TEST(CostModel, IlpRaisesUtilizationUntilCap) {
  const auto dev = gtx1080ti();
  LaunchConfig cfg;
  cfg.grid = 100000;
  cfg.block = 256;
  cfg.regs_per_thread = 32;
  const auto occ = compute_occupancy(dev, cfg);
  LaunchMetrics m;
  m.dram_transactions = 10'000'000;
  cfg.ilp = 1.0;
  const auto t1 = estimate_time(dev, cfg, m, occ);
  cfg.ilp = 2.0;
  const auto t2 = estimate_time(dev, cfg, m, occ);
  cfg.ilp = 4.0;  // beyond cap: no further gain
  const auto t4 = estimate_time(dev, cfg, m, occ);
  EXPECT_LT(t2.total_ms, t1.total_ms);
  EXPECT_DOUBLE_EQ(t4.total_ms, t2.total_ms);
}

TEST(CostModel, RegisterPressurePenalizesConcurrency) {
  const auto dev = gtx1080ti();
  LaunchConfig cfg;
  cfg.grid = 100000;
  cfg.block = 64;
  const auto occ_lo = compute_occupancy(dev, cfg);
  LaunchMetrics m;
  m.dram_transactions = 10'000'000;
  cfg.regs_per_thread = 32;
  const auto t_lo = estimate_time(dev, cfg, m, occ_lo);
  cfg.regs_per_thread = 80;
  const auto t_hi = estimate_time(dev, cfg, m, compute_occupancy(dev, cfg));
  EXPECT_GT(t_hi.total_ms, t_lo.total_ms);
}

TEST(CostModel, SmallGridIsLatencyBound) {
  const auto dev = gtx1080ti();
  LaunchConfig cfg;
  cfg.block = 256;
  LaunchMetrics m;
  m.dram_transactions = 1'000'000;
  cfg.grid = 4;  // cannot fill 28 SMs
  const auto small = estimate_time(dev, cfg, m, compute_occupancy(dev, cfg));
  cfg.grid = 100000;
  const auto big = estimate_time(dev, cfg, m, compute_occupancy(dev, cfg));
  EXPECT_LT(big.utilization * 1.0, 1.0);
  EXPECT_GT(big.utilization, small.utilization);
  EXPECT_GT(small.total_ms, big.total_ms);
}

TEST(CostModel, LaunchOverheadFloorsTinyKernels) {
  const auto dev = gtx1080ti();
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.block = 32;
  LaunchMetrics m;  // no traffic at all
  const auto t = estimate_time(dev, cfg, m, compute_occupancy(dev, cfg));
  EXPECT_GE(t.total_ms, dev.launch_overhead_us * 1e-3);
}

TEST(CostModel, AchievedOccupancyDeratesUnfilledGrid) {
  const auto dev = gtx1080ti();
  LaunchConfig cfg;
  cfg.block = 256;
  cfg.grid = dev.num_sms;  // one block per SM, 8 warps of 64 slots
  const auto occ = compute_occupancy(dev, cfg);
  const double achieved = achieved_occupancy(dev, cfg, occ);
  EXPECT_LT(achieved, occ.fraction);
}

}  // namespace
}  // namespace gespmm::gpusim
