/// Tensor-core (MMA) execution model goldens: the WMMA tile spec, warp-
/// level mma accounting, the cost model's dense-pipe bottleneck term with
/// its saturation curve, and the ordering between the emulated-FMA Pascal
/// pipe and the Turing tensor cores.

#include <gtest/gtest.h>

#include "gpusim/gpusim.hpp"

namespace gespmm::gpusim {
namespace {

/// Toy kernel: one warp per block issuing `tiles` full mma tiles and
/// nothing else — fully predictable dense-pipe metrics.
class MmaToyKernel final : public Kernel {
 public:
  MmaToyKernel(long long grid, int tiles) : grid_(grid), tiles_(tiles) {}

  LaunchConfig config(const DeviceSpec&) const override {
    LaunchConfig cfg;
    cfg.grid = grid_;
    cfg.block = 32;
    return cfg;
  }
  std::string name() const override { return "mma_toy"; }

  void run_block(BlockCtx& blk) const override {
    WarpCtx warp = blk.warp(0);
    const MmaTileSpec tile;
    for (int t = 0; t < tiles_; ++t) warp.mma_tile(tile.m, tile.n, tile.k);
  }

 private:
  long long grid_;
  int tiles_;
};

TEST(MmaTile, DefaultSpecIsTheWmmaShape) {
  const MmaTileSpec t;
  EXPECT_EQ(t.m, 16);
  EXPECT_EQ(t.n, 16);
  EXPECT_EQ(t.k, 16);
  EXPECT_EQ(t.flops(), 2 * 16 * 16 * 16);
}

TEST(MmaTile, TileForIsStableAcrossDevices) {
  // The tile shape is an ISA contract, not a throughput knob: both presets
  // use the 16x16x16 WMMA shape (Pascal emulates it through the FMA pipe)
  // so the hybrid partition threshold never moves between devices.
  for (const auto& dev : {gtx1080ti(), rtx2080()}) {
    const MmaTileSpec t = mma_tile_for(dev);
    EXPECT_EQ(t.m, 16) << dev.name;
    EXPECT_EQ(t.n, 16) << dev.name;
    EXPECT_EQ(t.k, 16) << dev.name;
  }
}

TEST(MmaDevice, PresetPipesMatchTheHardwareStory) {
  const auto pascal = gtx1080ti();
  EXPECT_FALSE(pascal.tensor_cores);
  EXPECT_DOUBLE_EQ(pascal.mma_tflops, 9.0);
  const auto turing = rtx2080();
  EXPECT_TRUE(turing.tensor_cores);
  EXPECT_DOUBLE_EQ(turing.mma_tflops, 40.0);
  EXPECT_GT(turing.mma_tflops, pascal.mma_tflops)
      << "tensor cores must outrate the emulated FMA micro-kernel";
  EXPECT_LT(pascal.mma_tflops, 10.6)
      << "an emulated dense micro-GEMM cannot beat Pascal's FMA peak";
}

TEST(MmaMetrics, WarpTileAccountingGoldens) {
  MmaToyKernel k(/*grid=*/8, /*tiles=*/5);
  const auto r = launch(rtx2080(), k);
  EXPECT_EQ(r.metrics.mma_instructions, 8u * 5);
  EXPECT_EQ(r.metrics.mma_flops, 8u * 5 * 2 * 16 * 16 * 16);
  // Every mma issues exactly one warp instruction alongside its flops.
  EXPECT_EQ(r.metrics.warp_instructions, 8u * 5);
}

TEST(MmaMetrics, SampledLaunchExtrapolatesExactlyOnUniformGrid) {
  MmaToyKernel k(/*grid=*/4096, /*tiles=*/3);
  const auto full = launch(rtx2080(), k, SamplePolicy::full());
  const auto sampled = launch(rtx2080(), k, SamplePolicy::sampled(256));
  EXPECT_GT(sampled.metrics.sample_scale, 1.0);
  EXPECT_EQ(sampled.metrics.mma_flops, full.metrics.mma_flops);
  EXPECT_EQ(sampled.metrics.mma_instructions, full.metrics.mma_instructions);
}

TEST(MmaCostModel, TermMatchesClosedFormOnBothDevices) {
  for (const auto& dev : {gtx1080ti(), rtx2080()}) {
    LaunchConfig cfg;
    cfg.grid = 100000;
    cfg.block = 256;
    const auto occ = compute_occupancy(dev, cfg);
    LaunchMetrics m;
    m.mma_flops = 1'000'000'000;
    const auto t = estimate_time(dev, cfg, m, occ);
    const double u =
        t.concurrency / (t.concurrency + dev.mma_half_saturation_warps);
    EXPECT_DOUBLE_EQ(t.mma_ms, 1e9 / (dev.mma_tflops * u * 1e12) * 1e3)
        << dev.name;
    EXPECT_STREQ(t.bottleneck, "mma") << dev.name;
  }
}

TEST(MmaCostModel, ZeroMmaWorkKeepsTheTermZero) {
  const auto dev = rtx2080();
  LaunchConfig cfg;
  cfg.grid = 10000;
  cfg.block = 256;
  LaunchMetrics m;
  m.dram_transactions = 1'000'000;
  const auto t = estimate_time(dev, cfg, m, compute_occupancy(dev, cfg));
  EXPECT_DOUBLE_EQ(t.mma_ms, 0.0);
  EXPECT_STRNE(t.bottleneck, "mma");
}

TEST(MmaCostModel, TimeScalesLinearlyWithMmaWork) {
  const auto dev = rtx2080();
  LaunchConfig cfg;
  cfg.grid = 100000;
  cfg.block = 256;
  const auto occ = compute_occupancy(dev, cfg);
  LaunchMetrics m;
  m.mma_flops = 500'000'000;
  const auto t1 = estimate_time(dev, cfg, m, occ);
  m.mma_flops = 1'000'000'000;
  const auto t2 = estimate_time(dev, cfg, m, occ);
  EXPECT_NEAR(t2.mma_ms / t1.mma_ms, 2.0, 1e-12);
}

TEST(MmaCostModel, TensorCoresOutpaceEmulatedFmaPerFlop) {
  // Same dense work, same launch shape: the Turing tensor-core pipe must
  // price it faster than Pascal's emulated micro-GEMM — the asymmetry the
  // hybrid plan selector learns per device.
  LaunchConfig cfg;
  cfg.grid = 100000;
  cfg.block = 256;
  LaunchMetrics m;
  m.mma_flops = 2'000'000'000;
  const auto pascal =
      estimate_time(gtx1080ti(), cfg, m, compute_occupancy(gtx1080ti(), cfg));
  const auto turing =
      estimate_time(rtx2080(), cfg, m, compute_occupancy(rtx2080(), cfg));
  EXPECT_GT(pascal.mma_ms, turing.mma_ms);
}

TEST(MmaCostModel, SaturationDeratesUnderfilledLaunches) {
  const auto dev = rtx2080();
  LaunchMetrics m;
  m.mma_flops = 1'000'000'000;
  LaunchConfig small;
  small.grid = 4;
  small.block = 32;
  LaunchConfig big;
  big.grid = 100000;
  big.block = 256;
  const auto t_small = estimate_time(dev, small, m, compute_occupancy(dev, small));
  const auto t_big = estimate_time(dev, big, m, compute_occupancy(dev, big));
  EXPECT_GT(t_small.mma_ms, t_big.mma_ms)
      << "a launch that cannot fill the MMA pipe must not reach peak";
}

}  // namespace
}  // namespace gespmm::gpusim
