/// bench_common utilities: geometric mean, table formatting, CLI parsing.

#include <gtest/gtest.h>

#include <cmath>

#include "bench_common/bench_common.hpp"

namespace gespmm::bench {
namespace {

TEST(Geomean, KnownValues) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  const std::vector<double> ys{2.0, 2.0, 2.0};
  EXPECT_NEAR(geomean(ys), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean(std::vector<double>{}), 0.0);
}

TEST(Geomean, InsensitiveToOrder) {
  const std::vector<double> a{0.5, 3.0, 1.7, 9.1};
  const std::vector<double> b{9.1, 0.5, 1.7, 3.0};
  EXPECT_NEAR(geomean(a), geomean(b), 1e-12);
}

TEST(TableFmt, Precision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.5, 0), "2");
  EXPECT_EQ(Table::fmt(0.1234, 4), "0.1234");
}

TEST(Options, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const auto opt = Options::parse(1, argv);
  EXPECT_EQ(opt.devices.size(), 2u);
  EXPECT_DOUBLE_EQ(opt.snap_scale, 0.25);
  EXPECT_EQ(opt.max_graphs, 64);
}

TEST(Options, ParsesDeviceAndScale) {
  char prog[] = "bench";
  char dev[] = "--device=rtx2080";
  char scale[] = "--snap-scale=0.5";
  char maxg[] = "--max-graphs=7";
  char sb[] = "--sample-blocks=99";
  char* argv[] = {prog, dev, scale, maxg, sb};
  const auto opt = Options::parse(5, argv);
  ASSERT_EQ(opt.devices.size(), 1u);
  EXPECT_EQ(opt.devices[0].name, "rtx2080");
  EXPECT_DOUBLE_EQ(opt.snap_scale, 0.5);
  EXPECT_EQ(opt.max_graphs, 7);
  EXPECT_EQ(opt.sample_blocks, 99u);
}

TEST(Options, FullFlag) {
  char prog[] = "bench";
  char full[] = "--full";
  char* argv[] = {prog, full};
  EXPECT_DOUBLE_EQ(Options::parse(2, argv).snap_scale, 1.0);
}

TEST(Options, RejectsUnknownFlag) {
  char prog[] = "bench";
  char bogus[] = "--bogus";
  char* argv[] = {prog, bogus};
  EXPECT_THROW(Options::parse(2, argv), std::invalid_argument);
}

TEST(Options, RejectsUnknownDevice) {
  char prog[] = "bench";
  char dev[] = "--device=tpu";
  char* argv[] = {prog, dev};
  EXPECT_THROW(Options::parse(2, argv), std::invalid_argument);
}

}  // namespace
}  // namespace gespmm::bench
