/// The batched SpMM serving engine: fingerprint identity, plan-cache
/// reuse, batch coalescing correctness against per-request spmm,
/// concurrent-submission determinism, and shutdown draining.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/gespmm.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using serve::BatchConstraints;
using serve::Engine;
using serve::GraphId;
using serve::RequestShape;
using serve::ServeOptions;
using serve::Ticket;

/// One-device, one-worker, paused options: batch composition (and thus
/// every counter) is deterministic once all submissions precede start().
ServeOptions deterministic_opts() {
  ServeOptions opt;
  opt.devices = {gpusim::gtx1080ti()};
  opt.num_workers = 1;
  opt.start_paused = true;
  opt.plan.sample_blocks = 256;
  return opt;
}

DenseMatrix features(index_t rows, index_t cols, std::uint64_t seed) {
  DenseMatrix b(rows, cols);
  kernels::fill_random(b, seed);
  return b;
}

TEST(Fingerprint, IdentifiesStructureAndValues) {
  const Csr a = sparse::uniform_random(128, 128, 1024, 901);
  Csr b = a;
  EXPECT_EQ(serve::fingerprint(a), serve::fingerprint(b));
  EXPECT_EQ(serve::fingerprint(a).key(), serve::fingerprint(b).key());

  b.val[17] += 1.0f;  // same structure, different weights
  EXPECT_NE(serve::fingerprint(a), serve::fingerprint(b));

  const Csr c = sparse::uniform_random(128, 128, 1024, 902);
  EXPECT_NE(serve::fingerprint(a).key(), serve::fingerprint(c).key());

  // Same (rows, cols, nnz) but different skew: the histogram must differ.
  std::vector<index_t> ur, uc, sr, sc;
  std::vector<value_t> uv, sv;
  for (index_t i = 0; i < 64; ++i) {        // uniform: 8 nnz per row
    for (index_t j = 0; j < 8; ++j) {
      ur.push_back(i);
      uc.push_back(8 * i + j);
      uv.push_back(1.0f);
    }
  }
  for (index_t j = 0; j < 456; ++j) {       // skewed: one hub row...
    sr.push_back(0);
    sc.push_back(j);
    sv.push_back(1.0f);
  }
  for (index_t i = 1; i <= 56; ++i) {       // ...plus 56 single-entry rows
    sr.push_back(i);
    sc.push_back(i);
    sv.push_back(1.0f);
  }
  const Csr uniform = sparse::csr_from_triplets(64, 512, ur, uc, uv);
  const Csr star = sparse::csr_from_triplets(64, 512, sr, sc, sv);
  ASSERT_EQ(uniform.nnz(), star.nnz());
  EXPECT_NE(serve::fingerprint(uniform).histogram_hash,
            serve::fingerprint(star).histogram_hash);
}

TEST(Fingerprint, RowLengthBucketBoundaryGoldens) {
  // The histogram contract is half-open: bucket 0 counts empty rows,
  // bucket b >= 1 counts rows with 2^(b-1) <= nnz < 2^b (bit_width
  // semantics — a power-of-two length 2^k opens bucket k+1, it does not
  // close bucket k). These goldens pin the boundary behavior so the
  // histogram hash stays a stable identity.
  const auto one_row = [](index_t len) {
    std::vector<index_t> r, c;
    std::vector<value_t> v;
    for (index_t j = 0; j < len; ++j) {
      r.push_back(0);
      c.push_back(j);
      v.push_back(1.0f);
    }
    return sparse::csr_from_triplets(1, 2048, r, c, v);
  };
  const auto hist = [&](index_t len) {
    return serve::fingerprint(one_row(len)).histogram_hash;
  };

  // Same bucket: [2^(b-1), 2^b) shares a histogram.
  EXPECT_EQ(hist(2), hist(3));        // bucket 2 = [2, 4)
  EXPECT_EQ(hist(4), hist(7));        // bucket 3 = [4, 8)
  EXPECT_EQ(hist(1024), hist(2047));  // bucket 11 = [1024, 2048)

  // Boundary crossings: 2^k belongs to the *next* bucket, not the
  // previous one (the spec the old comment got backwards).
  EXPECT_NE(hist(0), hist(1));
  EXPECT_NE(hist(1), hist(2));
  EXPECT_NE(hist(3), hist(4));
  EXPECT_NE(hist(1023), hist(1024));

  // Absolute pins: a fixed 4-row staircase (row lengths 1, 2, 4, 8) must
  // hash identically forever — any change to the bucketing or the mixing
  // function is a registry/plan-cache identity break, not a refactor.
  std::vector<index_t> r, c;
  std::vector<value_t> v;
  const index_t lens[4] = {1, 2, 4, 8};
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < lens[i]; ++j) {
      r.push_back(i);
      c.push_back(j);
      v.push_back(1.0f + 0.5f * static_cast<value_t>(j));
    }
  }
  const Csr stair = sparse::csr_from_triplets(4, 16, r, c, v);
  EXPECT_EQ(serve::fingerprint(stair).histogram_hash, 0xe095d61fb44338bfull);
  EXPECT_EQ(serve::fingerprint(stair).key(), 0x146e335994fc747dull);
}

TEST(BatchPlanner, CoalescesSameGraphWithinLimits) {
  const std::uint64_t g1 = 11, g2 = 22;
  const auto sum = kernels::ReduceKind::Sum;
  const auto max = kernels::ReduceKind::Max;
  BatchConstraints lim;
  lim.max_batch_n = 96;
  lim.max_batch_requests = 3;

  // Anchor g1; the g2 request is skipped, later g1 requests ride along up
  // to the width cap (32+32+16 = 80 <= 96; the final 32 would exceed the
  // request cap anyway).
  std::vector<RequestShape> q = {{g1, 32, sum}, {g2, 32, sum}, {g1, 32, sum},
                                 {g1, 16, sum}, {g1, 32, sum}};
  EXPECT_EQ(serve::plan_batch(q, lim), (std::vector<std::size_t>{0, 2, 3}));

  // Differing reductions never coalesce.
  std::vector<RequestShape> mixed = {{g1, 32, sum}, {g1, 32, max}, {g1, 32, sum}};
  EXPECT_EQ(serve::plan_batch(mixed, lim), (std::vector<std::size_t>{0, 2}));

  // A request wider than max_batch_n still ships, alone.
  std::vector<RequestShape> wide = {{g1, 256, sum}, {g1, 8, sum}};
  EXPECT_EQ(serve::plan_batch(wide, lim), (std::vector<std::size_t>{0}));

  EXPECT_TRUE(serve::plan_batch(std::vector<RequestShape>{}, lim).empty());
}

TEST(ServeEngine, RegisterDedupsIdenticalGraphs) {
  Engine eng(deterministic_opts());
  const Csr a = sparse::uniform_random(64, 64, 512, 910);
  const GraphId id1 = eng.register_graph(a);
  const GraphId id2 = eng.register_graph(Csr(a));  // separate, equal copy
  EXPECT_EQ(id1.key, id2.key);
  EXPECT_EQ(*eng.graph(id1), a);

  const GraphId id3 = eng.register_graph(sparse::uniform_random(64, 64, 512, 911));
  EXPECT_NE(id1.key, id3.key);

  const auto st = eng.stats();
  EXPECT_EQ(st.graphs_registered, 2u);
  EXPECT_EQ(st.register_dedup_hits, 1u);

  EXPECT_THROW(eng.graph(GraphId{12345}), std::invalid_argument);
  Csr bad = a;
  bad.rowptr[3] = 9999;
  EXPECT_THROW(eng.register_graph(bad), std::runtime_error);
}

TEST(ServeEngine, BatchedResultsMatchPerRequestSpmm) {
  auto opt = deterministic_opts();
  opt.batch.max_batch_n = 256;
  Engine eng(opt);
  const Csr a = testutil::zoo_skewed();
  const GraphId id = eng.register_graph(a);

  std::vector<Ticket> tickets;
  std::vector<DenseMatrix> inputs;
  for (int r = 0; r < 6; ++r) {
    inputs.push_back(features(a.cols, 16 + 8 * (r % 3), 920 + r));
    tickets.push_back(eng.submit(id, inputs.back()));
  }
  eng.shutdown();

  for (std::size_t r = 0; r < tickets.size(); ++r) {
    const auto& res = tickets[r].wait();
    DenseMatrix want(a.rows, inputs[r].cols());
    spmm(a, inputs[r], want);
    EXPECT_EQ(res.c.max_abs_diff(want), 0.0)
        << "request " << r << " must match per-request spmm bitwise";
    EXPECT_GT(res.batch_size, 1);
    EXPECT_GT(res.modelled_ms, 0.0);
  }
  const auto st = eng.stats();
  EXPECT_EQ(st.completed, 6u);
  EXPECT_EQ(st.coalesced_requests, 6u);
  EXPECT_LT(st.batches, 6u);
}

TEST(ServeEngine, SpmmLikeReductionsCoalesceAndMatch) {
  Engine eng(deterministic_opts());
  eng.start();
  const Csr a = testutil::zoo_empty_rows();
  const GraphId id = eng.register_graph(a);

  for (auto kind : {kernels::ReduceKind::Max, kernels::ReduceKind::Mean}) {
    DenseMatrix b = features(a.cols, 20, 930);
    Ticket t = eng.submit(id, b, {.reduce = kind});
    const auto& res = t.wait();
    DenseMatrix want(a.rows, 20);
    spmm(a, b, want, kind);
    EXPECT_EQ(res.c.max_abs_diff(want), 0.0);
  }
}

TEST(ServeEngine, PlanCacheHitsOnRepeatedShape) {
  Engine eng(deterministic_opts());
  const Csr a = sparse::uniform_random(512, 512, 4096, 940);
  const GraphId id = eng.register_graph(a);

  // Submit-wait-repeat so every batch carries exactly one request and the
  // (graph, device, n, reduce) plan key repeats across batches.
  eng.start();
  double first_ms = 0.0;
  for (int r = 0; r < 3; ++r) {
    Ticket t = eng.submit(id, features(a.cols, 64, 941 + r));
    const auto& res = t.wait();
    if (r == 0) {
      EXPECT_FALSE(res.plan_cache_hit);
      first_ms = res.modelled_ms;
    } else {
      EXPECT_TRUE(res.plan_cache_hit);
      EXPECT_DOUBLE_EQ(res.modelled_ms, first_ms);
    }
  }
  const auto st = eng.stats();
  EXPECT_EQ(st.plan_cache_misses, 1u);
  EXPECT_EQ(st.plan_cache_hits, 2u);
}

TEST(ServeEngine, PlanCacheWidthBucketBoundaries) {
  // Pin the width-bucket edges of plan quantization (width_quantum = 32):
  // N = 31 and 32 share the 32-wide bucket, 33 and 64 the 64-wide bucket,
  // 65 opens the 96-wide bucket. Submit-wait so every batch carries one
  // request and the plan width equals the request width.
  Engine eng(deterministic_opts());
  eng.start();
  const Csr a = sparse::uniform_random(256, 256, 2048, 915);
  const GraphId id = eng.register_graph(a);

  std::vector<Ticket> tickets;  // keep tickets alive: they own the results
  auto run = [&](index_t n) -> const serve::RequestResult& {
    tickets.push_back(eng.submit(id, features(a.cols, n, 916)));
    return tickets.back().wait();
  };
  const auto& r31 = run(31);
  EXPECT_FALSE(r31.plan_cache_hit);  // opens bucket 32
  const auto& r32 = run(32);
  EXPECT_TRUE(r32.plan_cache_hit);  // 32 is the last width in bucket 32
  // Both priced at the bucket width, so their modelled shares are equal.
  EXPECT_DOUBLE_EQ(r31.modelled_ms, r32.modelled_ms);
  const auto& r33 = run(33);
  EXPECT_FALSE(r33.plan_cache_hit);  // 33 crosses into bucket 64
  const auto& r64 = run(64);
  EXPECT_TRUE(r64.plan_cache_hit);
  EXPECT_DOUBLE_EQ(r33.modelled_ms, r64.modelled_ms);
  const auto& r65 = run(65);
  EXPECT_FALSE(r65.plan_cache_hit);  // 65 opens bucket 96

  const auto pc = eng.plan_cache().stats();
  EXPECT_EQ(pc.misses, 3u);
  EXPECT_EQ(pc.hits, 2u);
  EXPECT_EQ(pc.size, 3u);
  const auto keys = eng.plan_cache().resident_keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].n, 32);  // LRU order: quantized widths, oldest first
  EXPECT_EQ(keys[1].n, 64);
  EXPECT_EQ(keys[2].n, 96);
}

TEST(ServeEngine, BatchingBeatsPerRequestModelledTime) {
  // The serving argument in one assertion: 8 requests of width 16 on one
  // graph, coalesced into one width-128 kernel, must model faster than
  // eight separate width-16 launches (shared A traffic + one launch
  // overhead instead of eight).
  const Csr a = sparse::uniform_random(4096, 4096, 32768, 950);
  const int requests = 8;
  const index_t n = 16;

  auto batched_opt = deterministic_opts();
  batched_opt.batch.max_batch_n = 256;
  batched_opt.batch.max_batch_requests = 16;
  Engine batched(batched_opt);

  auto solo_opt = deterministic_opts();
  solo_opt.batch.max_batch_requests = 1;
  Engine solo(solo_opt);

  const GraphId idb = batched.register_graph(a);
  const GraphId ids = solo.register_graph(a);
  for (int r = 0; r < requests; ++r) {
    batched.submit(idb, features(a.cols, n, 951));
    solo.submit(ids, features(a.cols, n, 951));
  }
  batched.shutdown();
  solo.shutdown();

  const auto bs = batched.stats();
  const auto ss = solo.stats();
  EXPECT_EQ(bs.batches, 1u);
  EXPECT_EQ(ss.batches, 8u);
  EXPECT_LT(bs.modelled_ms, ss.modelled_ms)
      << "one width-128 kernel must beat eight width-16 kernels";
}

TEST(ServeEngine, ConcurrentSubmissionIsDeterministic) {
  // Four client threads race submissions across two graphs and two
  // devices with two workers; every result must still match the
  // per-request reference exactly, whatever batches formed.
  ServeOptions opt;
  opt.num_workers = 2;
  opt.plan.sample_blocks = 128;
  Engine eng(opt);

  const Csr g1 = sparse::uniform_random(192, 192, 1500, 960);
  const Csr g2 = testutil::zoo_skewed();
  const GraphId id1 = eng.register_graph(g1);
  const GraphId id2 = eng.register_graph(g2);

  constexpr int kThreads = 4, kPerThread = 8;
  std::vector<std::vector<Ticket>> tickets(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kPerThread; ++r) {
        const bool first = (t + r) % 2 == 0;
        tickets[static_cast<std::size_t>(t)].push_back(
            eng.submit(first ? id1 : id2,
                       features(first ? g1.cols : g2.cols, 8 + 4 * (r % 4),
                                1000 + 100 * t + r)));
      }
    });
  }
  for (auto& c : clients) c.join();
  eng.shutdown();

  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kPerThread; ++r) {
      const bool first = (t + r) % 2 == 0;
      const Csr& g = first ? g1 : g2;
      DenseMatrix b = features(g.cols, 8 + 4 * (r % 4), 1000 + 100 * t + r);
      DenseMatrix want(g.rows, b.cols());
      spmm(g, b, want);
      const auto& res = tickets[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)].wait();
      EXPECT_EQ(res.c.max_abs_diff(want), 0.0) << "thread " << t << " req " << r;
    }
  }
  const auto st = eng.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(st.completed, st.submitted);
  std::uint64_t device_requests = 0;
  for (const auto& d : st.devices) device_requests += d.requests;
  EXPECT_EQ(device_requests, st.completed);
}

TEST(ServeEngine, ShutdownDrainsEveryQueuedRequest) {
  auto opt = deterministic_opts();  // paused: nothing runs until shutdown
  Engine eng(opt);
  const Csr a = sparse::uniform_random(96, 96, 700, 970);
  const GraphId id = eng.register_graph(a);

  std::vector<Ticket> tickets;
  for (int r = 0; r < 20; ++r) {
    tickets.push_back(eng.submit(id, features(a.cols, 12, 980 + r)));
  }
  for (const auto& t : tickets) EXPECT_FALSE(t.ready());

  eng.shutdown();  // must start, drain all 20, then stop

  for (const auto& t : tickets) EXPECT_TRUE(t.ready());
  EXPECT_EQ(eng.stats().completed, 20u);
  EXPECT_THROW(eng.submit(id, features(a.cols, 12, 999)), std::runtime_error);
}

TEST(ServeEngine, RoundRobinSpreadsBatchesAcrossDevices) {
  ServeOptions opt;
  opt.num_workers = 1;
  opt.start_paused = true;
  opt.batch.max_batch_requests = 1;  // one batch per request
  opt.plan.sample_blocks = 128;
  Engine eng(opt);
  ASSERT_EQ(eng.options().devices.size(), 2u);

  const Csr a = sparse::uniform_random(128, 128, 1024, 990);
  const GraphId id = eng.register_graph(a);
  for (int r = 0; r < 6; ++r) eng.submit(id, features(a.cols, 16, 991));
  eng.shutdown();

  const auto st = eng.stats();
  ASSERT_EQ(st.devices.size(), 2u);
  EXPECT_EQ(st.devices[0].batches, 3u);
  EXPECT_EQ(st.devices[1].batches, 3u);
  EXPECT_EQ(st.devices[0].device, "gtx1080ti");
  EXPECT_EQ(st.devices[1].device, "rtx2080");
  EXPECT_GT(st.devices[0].modelled_ms, 0.0);
  EXPECT_GT(st.devices[1].modelled_ms, 0.0);
}

TEST(ServeEngine, SubmitValidatesShapesAndHandles) {
  Engine eng(deterministic_opts());
  const Csr a = sparse::uniform_random(32, 48, 200, 995);
  const GraphId id = eng.register_graph(a);

  EXPECT_THROW(eng.submit(id, DenseMatrix(32, 4)), std::invalid_argument);
  EXPECT_THROW(eng.submit(id, DenseMatrix(48, 0)), std::invalid_argument);
  EXPECT_THROW(eng.submit(id, DenseMatrix(48, 4, kernels::Layout::ColMajor)),
               std::invalid_argument);
  EXPECT_THROW(eng.submit(GraphId{777}, DenseMatrix(48, 4)), std::invalid_argument);

  Ticket ok = eng.submit(id, features(48, 4, 996));
  eng.shutdown();
  EXPECT_EQ(ok.wait().c.rows(), 32);
}

}  // namespace
}  // namespace gespmm
