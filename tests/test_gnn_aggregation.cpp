/// Aggregation layer: functional equivalence with the kernel host
/// reference for every reduction, max-backward correctness, and the
/// device-time orderings the end-to-end results rest on.

#include <gtest/gtest.h>

#include "gnn/aggregation.hpp"
#include "gnn/train.hpp"
#include "kernels/spmm_host.hpp"
#include "sparse/datasets.hpp"
#include "sparse/generators.hpp"

namespace gespmm::gnn {
namespace {

using kernels::ReduceKind;

Tensor dense_from(const kernels::DenseMatrix& m) {
  Tensor t(m.rows(), m.cols());
  for (index_t i = 0; i < m.rows(); ++i) {
    for (index_t j = 0; j < m.cols(); ++j) t.at(i, j) = m.at(i, j);
  }
  return t;
}

class AggregationEquivalence : public ::testing::TestWithParam<ReduceKind> {};

TEST_P(AggregationEquivalence, MatchesKernelHostReference) {
  const auto kind = GetParam();
  const sparse::Csr a = sparse::rmat(8, 6.0, 0.5, 0.2, 0.2, 777);
  kernels::DenseMatrix b(a.cols, 24);
  kernels::fill_random(b, 13);
  kernels::DenseMatrix ref(a.rows, 24);
  kernels::spmm_host_reference(a, b, ref, kind);

  const auto res = aggregate_forward(a, dense_from(b), kind);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < 24; ++j) {
      EXPECT_NEAR(res.out.at(i, j), ref.at(i, j), 1e-4)
          << kernels::reduce_kind_name(kind) << " at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllReductions, AggregationEquivalence,
                         ::testing::Values(ReduceKind::Sum, ReduceKind::Max,
                                           ReduceKind::Min, ReduceKind::Mean),
                         [](const auto& info) {
                           return std::string(kernels::reduce_kind_name(info.param));
                         });

TEST(AggregationBackward, SumEqualsTransposedForward) {
  const sparse::Csr a = sparse::uniform_random(40, 40, 240, 778);
  const sparse::Csr at = sparse::transpose(a);
  Tensor dy(40, 8);
  for (index_t i = 0; i < 40; ++i) {
    for (index_t j = 0; j < 8; ++j) dy.at(i, j) = 0.01f * static_cast<float>(i + j);
  }
  const Tensor dx = aggregate_backward_sum(at, dy);
  // dX[k][j] = sum_i A[i][k] dY[i][j], checked element-wise.
  for (index_t k = 0; k < 40; ++k) {
    for (index_t j = 0; j < 8; ++j) {
      float expect = 0.0f;
      for (index_t i = 0; i < a.rows; ++i) {
        for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
             p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
          if (a.colind[static_cast<std::size_t>(p)] == k) {
            expect += a.val[static_cast<std::size_t>(p)] * dy.at(i, j);
          }
        }
      }
      EXPECT_NEAR(dx.at(k, j), expect, 1e-4);
    }
  }
}

TEST(AggregationBackward, MaxRoutesGradientToWinnerOnly) {
  // Row 0 aggregates columns 1 (val 2) and 2 (val 1). With x[1]=3, x[2]=10:
  // winner is column 2 (1*10 > 2*3); its gradient gets dy * val.
  std::vector<sparse::index_t> r{0, 0}, c{1, 2};
  std::vector<sparse::value_t> v{2.0f, 1.0f};
  const sparse::Csr a = sparse::csr_from_triplets(1, 3, r, c, v);
  Tensor x(3, 1);
  x.at(1, 0) = 3.0f;
  x.at(2, 0) = 10.0f;
  const auto fwd = aggregate_forward(a, x, ReduceKind::Max);
  EXPECT_FLOAT_EQ(fwd.out.at(0, 0), 10.0f);
  Tensor dy(1, 1);
  dy.at(0, 0) = 5.0f;
  const Tensor dx = aggregate_backward_max(a, fwd.argmax, dy, 3);
  EXPECT_FLOAT_EQ(dx.at(1, 0), 0.0f);   // loser gets nothing
  EXPECT_FLOAT_EQ(dx.at(2, 0), 5.0f);   // winner gets val * dy = 1 * 5
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
}

TEST(AggregationBackward, EmptyRowsProduceNoGradient) {
  const sparse::Csr a(4, 4);  // all empty
  Tensor x(4, 2);
  const auto fwd = aggregate_forward(a, x, ReduceKind::Max);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 2; ++j) EXPECT_FLOAT_EQ(fwd.out.at(i, j), 0.0f);
  }
  Tensor dy(4, 2, 1.0f);
  const Tensor dx = aggregate_backward_max(a, fwd.argmax, dy, 4);
  for (auto g : dx.flat()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(AggregationTiming, MonotoneInWidth) {
  GnnGraph g(sparse::uniform_random(4000, 4000, 40000, 779), gpusim::gtx1080ti());
  double prev = 0.0;
  for (index_t n : {16, 64, 256}) {
    const double t =
        g.aggregation_time_ms(AggregatorBackend::GeSpMM, ReduceKind::Sum, n, false);
    EXPECT_GT(t, prev) << "aggregation time must grow with feature width";
    prev = t;
  }
}

TEST(AggregationTiming, BackendOrderingOnMediumGraph) {
  // The orderings Figs. 13/14 rest on: GE < DGL-cuSPARSE < PyG for SpMM,
  // and GE < DGL-fallback for SpMM-like.
  GnnGraph g(sparse::uniform_random(8000, 8000, 80000, 780), gpusim::gtx1080ti());
  const index_t n = 128;
  const double ge = g.aggregation_time_ms(AggregatorBackend::GeSpMM, ReduceKind::Sum, n, false);
  const double dgl =
      g.aggregation_time_ms(AggregatorBackend::DglCusparse, ReduceKind::Sum, n, false);
  const double pyg = g.aggregation_time_ms(AggregatorBackend::PyGMessagePassing,
                                           ReduceKind::Sum, n, false);
  EXPECT_LT(ge, dgl);
  EXPECT_LT(dgl, pyg);
  const double ge_like =
      g.aggregation_time_ms(AggregatorBackend::GeSpMM, ReduceKind::Max, n, false);
  const double dgl_like =
      g.aggregation_time_ms(AggregatorBackend::DglFallback, ReduceKind::Max, n, false);
  EXPECT_LT(ge_like, dgl_like);
}

TEST(AggregationTiming, TransposedOperandPricedSeparately) {
  // Forward and backward operate on different operands (A vs A^T) whose
  // structure can differ (skewed in-degrees) — both must be simulated.
  GnnGraph g(sparse::rmat(11, 6.0, 0.6, 0.18, 0.18, 781), gpusim::gtx1080ti());
  const double fwd =
      g.aggregation_time_ms(AggregatorBackend::GeSpMM, ReduceKind::Sum, 64, false);
  const double bwd =
      g.aggregation_time_ms(AggregatorBackend::GeSpMM, ReduceKind::Sum, 64, true);
  EXPECT_GT(fwd, 0.0);
  EXPECT_GT(bwd, 0.0);
  // Same nnz either way: times must be within 3x of each other.
  EXPECT_LT(std::max(fwd, bwd) / std::min(fwd, bwd), 3.0);
}

TEST(SyntheticData, LabelsAndFeaturesAreDeterministicAndInRange) {
  const auto d = sparse::cora();
  const auto l1 = synthetic_labels(d, 1);
  const auto l2 = synthetic_labels(d, 1);
  EXPECT_EQ(l1, l2);
  for (int y : l1) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, d.num_classes);
  }
  const Tensor f1 = synthetic_features(d, 64, 2);
  const Tensor f2 = synthetic_features(d, 64, 2);
  EXPECT_EQ(f1.rows(), d.adj.rows);
  EXPECT_EQ(f1.cols(), 64);
  for (std::size_t i = 0; i < f1.size(); ++i) EXPECT_EQ(f1.flat()[i], f2.flat()[i]);
}

}  // namespace
}  // namespace gespmm::gnn
