/// ELLPACK-R, ASpT and MatrixMarket format tests.

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/aspt.hpp"
#include "sparse/ell.hpp"
#include "sparse/generators.hpp"
#include "sparse/mm_io.hpp"

namespace gespmm::sparse {
namespace {

TEST(Ell, RoundTripPreservesMatrix) {
  const Csr a = uniform_random(100, 120, 700, 21);
  const EllR e = csr_to_ell(a);
  EXPECT_EQ(e.width, a.max_row_nnz());
  EXPECT_EQ(ell_to_csr(e), a);
}

TEST(Ell, PaddingOverheadGrowsWithSkew) {
  const Csr uniform = uniform_random(512, 512, 4096, 22);
  const Csr skewed = rmat(9, 8.0, 0.55, 0.2, 0.2, 23);
  const double pu = csr_to_ell(uniform).padding_overhead(uniform.nnz());
  const double ps = csr_to_ell(skewed).padding_overhead(skewed.nnz());
  EXPECT_GT(ps, pu) << "ELLPACK pads skewed matrices more — why the paper "
                       "calls preprocessed formats impractical for graphs";
  EXPECT_GE(pu, 0.0);
  EXPECT_LT(ps, 1.0);
}

TEST(Ell, EmptyMatrix) {
  const Csr a(4, 4);
  const EllR e = csr_to_ell(a);
  EXPECT_EQ(e.width, 0);
  EXPECT_EQ(ell_to_csr(e), a);
}

TEST(Aspt, RoundTripPreservesMatrix) {
  const Csr a = rmat(10, 10.0, 0.5, 0.22, 0.22, 24);
  const auto build = build_aspt(a);
  Csr back = aspt_to_csr(build.matrix);
  Csr sorted = a;
  sorted.sort_rows();
  back.sort_rows();
  EXPECT_EQ(back, sorted);
}

TEST(Aspt, HeavyPlusLightEqualsNnz) {
  const Csr a = rmat(11, 8.0, 0.5, 0.22, 0.22, 25);
  const auto build = build_aspt(a);
  EXPECT_EQ(build.matrix.heavy_nnz + build.matrix.light_nnz, a.nnz());
  EXPECT_GE(build.matrix.heavy_fraction(), 0.0);
  EXPECT_LE(build.matrix.heavy_fraction(), 1.0);
}

TEST(Aspt, ClusteredMatrixYieldsMoreHeavyTilesThanUniform) {
  const Csr clustered = rmat(11, 10.0, 0.6, 0.18, 0.18, 26);
  const Csr uniform = uniform_random(2048, 2048, 20480, 27);
  const double hc = build_aspt(clustered).matrix.heavy_fraction();
  const double hu = build_aspt(uniform).matrix.heavy_fraction();
  EXPECT_GT(hc, hu) << "ASpT reuse only materializes on clustered sparsity";
}

TEST(Aspt, PanelBoundsCoverAllRows) {
  const Csr a = uniform_random(1000, 1000, 5000, 28);
  const auto m = build_aspt(a, {.panel_rows = 64, .heavy_threshold = 4}).matrix;
  index_t covered = 0;
  for (const auto& p : m.panels) {
    EXPECT_EQ(p.row_begin, covered);
    EXPECT_GT(p.row_end, p.row_begin);
    covered = p.row_end;
    EXPECT_EQ(p.heavy_rowptr.size(),
              static_cast<std::size_t>(p.row_end - p.row_begin) + 1);
    EXPECT_EQ(p.light_rowptr.size(), p.heavy_rowptr.size());
    // Heavy column positions reference real tile-local columns.
    for (index_t pos : p.heavy_colpos) {
      EXPECT_LT(static_cast<std::size_t>(pos), p.heavy_cols.size());
    }
  }
  EXPECT_EQ(covered, a.rows);
}

TEST(Aspt, PreprocessTrafficScalesWithNnz) {
  const Csr small = uniform_random(512, 512, 2048, 29);
  const Csr big = uniform_random(512, 512, 8192, 30);
  const auto ts = build_aspt(small).preprocess_traffic_bytes;
  const auto tb = build_aspt(big).preprocess_traffic_bytes;
  EXPECT_GT(tb, ts);
  EXPECT_GT(ts, static_cast<std::uint64_t>(small.nnz()) * 8);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const Csr a = uniform_random(60, 45, 300, 31);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const Csr b = read_matrix_market(ss);
  ASSERT_EQ(b.rows, a.rows);
  ASSERT_EQ(b.cols, a.cols);
  ASSERT_EQ(b.nnz(), a.nnz());
  for (std::size_t p = 0; p < a.val.size(); ++p) {
    EXPECT_EQ(a.colind[p], b.colind[p]);
    EXPECT_NEAR(a.val[p], b.val[p], 1e-5f);
  }
}

TEST(MatrixMarket, ParsesPatternAndSymmetric) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n";
  std::istringstream in(text);
  const Csr a = read_matrix_market(in);
  EXPECT_EQ(a.rows, 3);
  EXPECT_EQ(a.nnz(), 3);  // (1,0), (0,1) mirrored, (2,2) diagonal once
}

TEST(MatrixMarket, RejectsMalformedInputs) {
  {
    std::istringstream in("not a matrix\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);  // truncated
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);  // field
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const Csr a = uniform_random(30, 30, 120, 33);
  const std::string path = ::testing::TempDir() + "/gespmm_mm_test.mtx";
  write_matrix_market_file(path, a);
  const Csr b = read_matrix_market_file(path);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"), std::runtime_error);
}

}  // namespace
}  // namespace gespmm::sparse
