/// Golden-reference coverage for gespmm::spmm_like custom
/// init/reduce/finalize/combine operators (paper Section IV-A): max-pool,
/// mean aggregation and a masked combine, each checked against a sequential
/// scalar reference that applies the same ops in the same in-row order.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/gespmm.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using testutil::Csr;
using testutil::DenseMatrix;
using testutil::index_t;
using testutil::value_t;

/// Sequential scalar reference applying the exact same CustomReduceOp
/// callbacks. spmm_like parallelizes over rows but keeps the in-row nnz
/// order, so float results must match this loop bit-for-bit.
DenseMatrix scalar_reference(const Csr& a, const DenseMatrix& b,
                             const CustomReduceOp& op) {
  DenseMatrix c(a.rows, b.cols());
  auto combine = op.combine ? op.combine
                            : [](value_t x, value_t y) { return x * y; };
  auto finalize = op.finalize ? op.finalize
                              : [](value_t acc, index_t) { return acc; };
  for (index_t i = 0; i < a.rows; ++i) {
    const index_t lo = a.rowptr[static_cast<std::size_t>(i)];
    const index_t hi = a.rowptr[static_cast<std::size_t>(i) + 1];
    for (index_t j = 0; j < b.cols(); ++j) {
      value_t acc = op.init();
      for (index_t p = lo; p < hi; ++p) {
        const index_t k = a.colind[static_cast<std::size_t>(p)];
        acc = op.reduce(acc, combine(a.val[static_cast<std::size_t>(p)],
                                     b.at(k, j)));
      }
      c.at(i, j) = finalize(acc, hi - lo);
    }
  }
  return c;
}

void expect_exact_match(const Csr& a, const CustomReduceOp& op, index_t n,
                        const std::string& what) {
  DenseMatrix b(a.cols, n);
  kernels::fill_random(b, 0xFEEDu + static_cast<std::uint64_t>(n));
  DenseMatrix c(a.rows, n);
  spmm_like(a, b, c, op);
  const DenseMatrix ref = scalar_reference(a, b, op);
  EXPECT_EQ(c.max_abs_diff(ref), 0.0)
      << what << " deviates from the sequential scalar reference for "
      << a.rows << "x" << a.cols << " nnz=" << a.nnz();
}

CustomReduceOp max_pool_op() {
  CustomReduceOp op;
  op.init = [] { return -std::numeric_limits<value_t>::infinity(); };
  op.reduce = [](value_t acc, value_t x) { return acc > x ? acc : x; };
  op.finalize = [](value_t acc, index_t row_nnz) {
    return row_nnz == 0 ? 0.0f : acc;
  };
  return op;
}

CustomReduceOp mean_op() {
  CustomReduceOp op;
  op.init = [] { return 0.0f; };
  op.reduce = [](value_t acc, value_t x) { return acc + x; };
  op.finalize = [](value_t acc, index_t row_nnz) {
    return row_nnz == 0 ? 0.0f : acc / static_cast<value_t>(row_nnz);
  };
  return op;
}

/// Masked combine: edges below a weight threshold contribute nothing;
/// combine ignores the dense operand's sign via fabs.
CustomReduceOp masked_combine_op() {
  CustomReduceOp op;
  op.init = [] { return 0.0f; };
  op.reduce = [](value_t acc, value_t x) { return acc + x; };
  op.combine = [](value_t a, value_t b) {
    return a >= 0.5f ? a * std::fabs(b) : 0.0f;
  };
  return op;
}

TEST(SpmmLike, MaxPoolMatchesScalarReference) {
  for (const auto& [name, a] : testutil::zoo_cases()) {
    expect_exact_match(a, max_pool_op(), 17, "max-pool on " + name);
    expect_exact_match(a, max_pool_op(), 64, "max-pool on " + name);
  }
}

TEST(SpmmLike, MeanMatchesScalarReference) {
  for (const auto& [name, a] : testutil::zoo_cases()) {
    expect_exact_match(a, mean_op(), 17, "mean on " + name);
    expect_exact_match(a, mean_op(), 64, "mean on " + name);
  }
}

TEST(SpmmLike, MaskedCombineMatchesScalarReference) {
  for (const auto& [name, a] : testutil::zoo_cases()) {
    expect_exact_match(a, masked_combine_op(), 17, "masked combine on " + name);
    expect_exact_match(a, masked_combine_op(), 64, "masked combine on " + name);
  }
}

TEST(SpmmLike, CustomMaxAgreesWithBuiltinMaxReduce) {
  const Csr a = testutil::zoo_empty_rows();
  DenseMatrix b(a.cols, 9);
  kernels::fill_random(b, 21);
  DenseMatrix via_builtin(a.rows, 9);
  spmm(a, b, via_builtin, ReduceKind::Max);
  DenseMatrix via_custom(a.rows, 9);
  spmm_like(a, b, via_custom, max_pool_op());
  EXPECT_EQ(via_builtin.max_abs_diff(via_custom), 0.0);
}

TEST(SpmmLike, CustomMeanAgreesWithBuiltinMeanReduce) {
  const Csr a = testutil::zoo_uniform();
  DenseMatrix b(a.cols, 5);
  kernels::fill_random(b, 22);
  DenseMatrix via_builtin(a.rows, 5);
  spmm(a, b, via_builtin, ReduceKind::Mean);
  DenseMatrix via_custom(a.rows, 5);
  spmm_like(a, b, via_custom, mean_op());
  EXPECT_EQ(via_builtin.max_abs_diff(via_custom), 0.0);
}

TEST(SpmmLike, DefaultCombineAndFinalizeAreMultiplyAndIdentity) {
  const Csr a = testutil::zoo_uniform();
  DenseMatrix b(a.cols, 8);
  kernels::fill_random(b, 23);
  CustomReduceOp op;  // only the required members
  op.init = [] { return 0.0f; };
  op.reduce = [](value_t acc, value_t x) { return acc + x; };
  DenseMatrix via_custom(a.rows, 8);
  spmm_like(a, b, via_custom, op);
  DenseMatrix via_sum(a.rows, 8);
  spmm(a, b, via_sum, ReduceKind::Sum);
  EXPECT_EQ(via_custom.max_abs_diff(via_sum), 0.0);
}

TEST(SpmmLike, MissingRequiredOpsThrow) {
  const Csr a = testutil::zoo_single_entry();
  DenseMatrix b(a.cols, 2);
  DenseMatrix c(a.rows, 2);
  CustomReduceOp no_init;
  no_init.reduce = [](value_t acc, value_t x) { return acc + x; };
  EXPECT_THROW(spmm_like(a, b, c, no_init), std::invalid_argument);
  CustomReduceOp no_reduce;
  no_reduce.init = [] { return 0.0f; };
  EXPECT_THROW(spmm_like(a, b, c, no_reduce), std::invalid_argument);
}

}  // namespace
}  // namespace gespmm
