/// Density-partitioned hybrid execution: row partition boundary cases,
/// bitwise identity of the MMA+SIMT kernel pair against the reference
/// fold, per-partition pricing, PlanStep compilation through autotune and
/// SpmmPlan (including the algo_for learned-selector regression), and the
/// serving layer carrying partitioned plans end-to-end — unsharded,
/// sharded with halo composition, and the structural decline on ragged
/// families.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/autotune.hpp"
#include "core/plan.hpp"
#include "core/plan_select.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmm_hybrid.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using kernels::HybridPartition;
using kernels::partition_rows_by_density;
using kernels::ReduceKind;
using kernels::SpmmAlgo;
using kernels::SpmmProblem;
using kernels::SpmmRunOptions;
using testutil::DenseMatrix;

/// A matrix with `dense` rows of `dense_nnz` nonzeros followed by
/// `ragged` rows of `ragged_nnz` (0 allowed) — explicit partition shapes.
Csr two_band(index_t dense, index_t dense_nnz, index_t ragged,
             index_t ragged_nnz) {
  std::vector<index_t> r, c;
  std::vector<value_t> v;
  const index_t cols = std::max<index_t>(std::max(dense_nnz, ragged_nnz), 1);
  for (index_t i = 0; i < dense; ++i) {
    for (index_t j = 0; j < dense_nnz; ++j) {
      r.push_back(i);
      c.push_back(j);
      v.push_back(0.25f + 0.5f / static_cast<value_t>(1 + i + j));
    }
  }
  for (index_t i = 0; i < ragged; ++i) {
    for (index_t j = 0; j < ragged_nnz; ++j) {
      r.push_back(dense + i);
      c.push_back((i + j) % cols);
      v.push_back(0.5f + 0.25f / static_cast<value_t>(1 + i + j));
    }
  }
  return sparse::csr_from_triplets(dense + ragged, cols, r, c, v);
}

const index_t kTileK = static_cast<index_t>(gpusim::MmaTileSpec{}.k);

// ---------------------------------------------------------------------------
// Partition boundary cases.

TEST(HybridPartition, AllRowsDense) {
  const Csr a = two_band(8, kTileK + 4, 0, 0);
  const HybridPartition p = partition_rows_by_density(a, kTileK);
  EXPECT_EQ(p.rows, 8);
  EXPECT_EQ(p.dense_rows, 8);
  EXPECT_EQ(p.ragged_rows(), 0);
  for (index_t i = 0; i < 8; ++i) EXPECT_EQ(p.perm[static_cast<std::size_t>(i)], i);
}

TEST(HybridPartition, AllRowsRagged) {
  const Csr a = two_band(0, 0, 8, kTileK - 1);
  const HybridPartition p = partition_rows_by_density(a, kTileK);
  EXPECT_EQ(p.dense_rows, 0);
  EXPECT_EQ(p.ragged_rows(), 8);
  for (index_t i = 0; i < 8; ++i) EXPECT_EQ(p.perm[static_cast<std::size_t>(i)], i);
}

TEST(HybridPartition, ThresholdExactlyAtTileKIsDense) {
  // nnz == k fills exactly one A-fragment slice: dense, by the >= contract.
  const Csr at = two_band(1, kTileK, 1, kTileK - 1);
  const HybridPartition p = partition_rows_by_density(at, kTileK);
  EXPECT_EQ(p.dense_rows, 1);
  EXPECT_EQ(p.perm[0], 0);
  EXPECT_EQ(p.perm[1], 1);
}

TEST(HybridPartition, InterleavedRowsStayStableWithinEachPartition) {
  // Rows 0,2,4 ragged (1 nnz), rows 1,3 dense: dense-first, both in
  // original order.
  std::vector<index_t> r, c;
  std::vector<value_t> v;
  for (index_t i = 0; i < 5; ++i) {
    const index_t len = (i % 2 == 1) ? kTileK + 2 : 1;
    for (index_t j = 0; j < len; ++j) {
      r.push_back(i);
      c.push_back(j);
      v.push_back(1.0f);
    }
  }
  const Csr a = sparse::csr_from_triplets(5, kTileK + 2, r, c, v);
  const HybridPartition p = partition_rows_by_density(a, kTileK);
  EXPECT_EQ(p.dense_rows, 2);
  const std::vector<index_t> want = {1, 3, 0, 2, 4};
  EXPECT_EQ(p.perm, want);
}

TEST(HybridPartition, EmptyMatrixAndSingleRows) {
  const HybridPartition none = partition_rows_by_density(Csr(0, 4), kTileK);
  EXPECT_EQ(none.rows, 0);
  EXPECT_EQ(none.dense_rows, 0);
  EXPECT_TRUE(none.perm.empty());

  const HybridPartition one_dense =
      partition_rows_by_density(two_band(1, kTileK + 1, 0, 0), kTileK);
  EXPECT_EQ(one_dense.dense_rows, 1);
  EXPECT_EQ(one_dense.ragged_rows(), 0);

  const HybridPartition one_ragged =
      partition_rows_by_density(two_band(0, 0, 1, 3), kTileK);
  EXPECT_EQ(one_ragged.dense_rows, 0);
  EXPECT_EQ(one_ragged.ragged_rows(), 1);
}

TEST(HybridPartition, StatsGoldens) {
  // 2 dense rows of 2k nnz + 6 ragged rows of 2: drf = 2/8, dnf = 4k/(4k+12).
  const Csr a = two_band(2, 2 * kTileK, 6, 2);
  const auto st = kernels::hybrid_partition_stats(a, kTileK);
  EXPECT_DOUBLE_EQ(st.dense_row_frac, 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(st.dense_nnz_frac,
                   static_cast<double>(4 * kTileK) /
                       static_cast<double>(4 * kTileK + 12));

  const auto empty = kernels::hybrid_partition_stats(Csr(0, 0), kTileK);
  EXPECT_DOUBLE_EQ(empty.dense_row_frac, 0.0);
  EXPECT_DOUBLE_EQ(empty.dense_nnz_frac, 0.0);
}

// ---------------------------------------------------------------------------
// Bitwise identity: the permutation round-trip must reproduce the
// reference kernel's output exactly, for both pinned reductions, on
// matrices exercising every partition shape.

std::vector<std::pair<std::string, Csr>> identity_zoo() {
  std::vector<std::pair<std::string, Csr>> zoo;
  zoo.emplace_back("pruned_dnn", sparse::pruned_dnn(128, 128, 16, 0.85, 21));
  zoo.emplace_back("two_band", two_band(24, kTileK + 8, 40, 5));
  zoo.emplace_back("all_dense", two_band(32, kTileK, 0, 0));
  zoo.emplace_back("all_ragged", two_band(0, 0, 32, 4));
  zoo.emplace_back("at_threshold", two_band(16, kTileK, 16, kTileK - 1));
  zoo.emplace_back("single_dense", two_band(1, kTileK + 1, 0, 0));
  zoo.emplace_back("single_ragged", two_band(0, 0, 1, 2));
  zoo.emplace_back("empty_rows", testutil::zoo_empty_rows());
  zoo.emplace_back("skewed", testutil::zoo_skewed());
  return zoo;
}

TEST(HybridBitwise, PermutationRoundTripMatchesReferenceExactly) {
  for (const auto& [name, a] : identity_zoo()) {
    for (const index_t n : {index_t{8}, index_t{32}, index_t{33}, index_t{64}}) {
      for (const auto reduce : {ReduceKind::Sum, ReduceKind::Max}) {
        SpmmProblem ref(a, n);
        kernels::fill_random(ref.B, 77);
        SpmmProblem hyb(a, n);
        hyb.B = ref.B;

        SpmmRunOptions opt;
        opt.reduce = reduce;
        kernels::run_spmm(SpmmAlgo::Crc, ref, opt);
        kernels::run_spmm_hybrid(hyb, opt);

        for (index_t i = 0; i < a.rows; ++i) {
          for (index_t j = 0; j < n; ++j) {
            ASSERT_EQ(hyb.C.at(i, j), ref.C.at(i, j))
                << name << " n=" << n << " reduce="
                << kernels::reduce_kind_name(reduce) << " at (" << i << ", "
                << j << ")";
          }
        }
      }
    }
  }
}

TEST(HybridBitwise, RegistryDispatchRunsTheHybridKernel) {
  const Csr a = sparse::pruned_dnn(64, 64, 16, 0.8, 5);
  SpmmProblem p(a, 32);
  kernels::fill_random(p.B, 3);
  const auto r = kernels::run_spmm(SpmmAlgo::HybridMma, p);
  EXPECT_EQ(r.kernel_name, "hybrid(mma+simt)");
  EXPECT_GT(r.metrics.mma_flops, 0u) << "the dense pipe must actually run";
  testutil::expect_matches_reference(a, p.B, p.C, ReduceKind::Sum);
  EXPECT_STREQ(kernels::algo_name(SpmmAlgo::HybridMma), "hybrid(mma+simt)");
}

// ---------------------------------------------------------------------------
// Per-partition pricing: the detailed result decomposes the composed time.

TEST(HybridPricing, StepTimesDecomposeTheTotal) {
  const Csr a = two_band(32, 2 * kTileK, 64, 4);
  SpmmProblem p(a, 64);
  kernels::fill_random(p.B, 9);
  const auto d = kernels::run_spmm_hybrid_detailed(p);
  EXPECT_EQ(d.threshold, kTileK);
  EXPECT_EQ(d.dense_rows, 32);
  EXPECT_GT(d.dense_ms, 0.0);
  EXPECT_GT(d.ragged_ms, 0.0);
  EXPECT_DOUBLE_EQ(d.total.time_ms(), d.dense_ms + d.ragged_ms);
}

TEST(HybridPricing, EmptyPartitionSkipsItsLaunch) {
  SpmmProblem dense_only(two_band(16, kTileK + 2, 0, 0), 32);
  kernels::fill_random(dense_only.B, 1);
  const auto d = kernels::run_spmm_hybrid_detailed(dense_only);
  EXPECT_GT(d.dense_ms, 0.0);
  EXPECT_DOUBLE_EQ(d.ragged_ms, 0.0);

  SpmmProblem ragged_only(two_band(0, 0, 16, 3), 32);
  kernels::fill_random(ragged_only.B, 2);
  const auto r = kernels::run_spmm_hybrid_detailed(ragged_only);
  EXPECT_DOUBLE_EQ(r.dense_ms, 0.0);
  EXPECT_GT(r.ragged_ms, 0.0);
  EXPECT_EQ(r.total.metrics.mma_flops, 0u);
}

// ---------------------------------------------------------------------------
// Autotune compiles PlanStep lists; candidacy is structural.

TEST(HybridAutotune, CandidacyRequiresADenseRow) {
  const auto dev = gpusim::gtx1080ti();
  const Csr blocked = sparse::pruned_dnn(128, 128, 16, 0.85, 31);
  const auto with = autotune_candidates(blocked, 64, dev);
  EXPECT_NE(std::find(with.begin(), with.end(), SpmmAlgo::HybridMma), with.end());

  const Csr ragged = sparse::grid_road(1024, 0.05, 32);
  const auto without = autotune_candidates(ragged, 64, dev);
  EXPECT_EQ(std::find(without.begin(), without.end(), SpmmAlgo::HybridMma),
            without.end())
      << "no dense row => hybrid is not even a candidate";
}

TEST(HybridAutotune, SingleKernelWinnerCompilesToOneDegenerateStep) {
  const Csr a = sparse::grid_road(1024, 0.05, 33);
  AutotuneOptions opt;
  opt.mode = SelectionMode::Exact;
  opt.sample_blocks = 256;
  const AutotuneResult res = autotune_spmm(a, 64, opt);
  EXPECT_NE(res.best, SpmmAlgo::HybridMma);
  ASSERT_EQ(res.steps.size(), 1u);
  EXPECT_EQ(res.steps[0].algo, res.best);
  EXPECT_EQ(res.steps[0].pipe, StepPipe::Simt);
  EXPECT_EQ(res.steps[0].row_begin, 0);
  EXPECT_EQ(res.steps[0].row_end, a.rows);
  EXPECT_DOUBLE_EQ(res.steps[0].modelled_ms, res.times_ms.at(res.best));
}

TEST(HybridAutotune, HybridWinnerCompilesToPartitionedSteps) {
  // Dense head + ragged tail where the dense pipe wins: the Exact sweep
  // must pick hybrid honestly and expose both partition steps. The matrix
  // must be large enough to fill the simulated device — a window-per-block
  // kernel on a few hundred rows cannot hide memory latency and honestly
  // loses (that boundary is the selector's job to learn, not ours to hide).
  const Csr a = sparse::pruned_dnn(4096, 256, 16, 0.85, 11);
  const auto part = partition_rows_by_density(a, kTileK);
  ASSERT_GT(part.dense_rows, 0);
  ASSERT_GT(part.ragged_rows(), 0) << "tiles dropped everywhere leave empty rows";
  for (const auto& dev : {gpusim::gtx1080ti(), gpusim::rtx2080()}) {
    AutotuneOptions opt;
    opt.device = dev;
    opt.mode = SelectionMode::Exact;
    opt.sample_blocks = 512;
    const AutotuneResult res = autotune_spmm(a, 128, opt);
    EXPECT_EQ(res.best, SpmmAlgo::HybridMma) << dev.name;
    ASSERT_EQ(res.steps.size(), 2u) << dev.name;
    EXPECT_EQ(res.steps[0].pipe, StepPipe::Mma);
    EXPECT_EQ(res.steps[0].row_begin, 0);
    EXPECT_EQ(res.steps[0].row_end, part.dense_rows);
    EXPECT_EQ(res.steps[1].pipe, StepPipe::Simt);
    EXPECT_EQ(res.steps[1].row_begin, part.dense_rows);
    EXPECT_EQ(res.steps[1].row_end, a.rows);
    EXPECT_DOUBLE_EQ(plan_steps_time_ms(res.steps), res.times_ms.at(res.best))
        << "step times must decompose the winner's time";
  }
}

// ---------------------------------------------------------------------------
// SpmmPlan: algo_for routes through the learned selector (regression for
// the static-rule bypass), steps_for exposes the partitioned plan.

TEST(HybridPlan, AlgoForRoutesThroughTheLearnedSelector) {
  // Pinned regression: SpmmPlan::algo_for used to call the paper's static
  // width rule directly, bypassing the autotuner's selection path. It must
  // agree with select_spmm_algo on every shape — including ones where the
  // learned choice differs from the static rule.
  for (const auto& [name, a] : identity_zoo()) {
    for (const auto& dev : {gpusim::gtx1080ti(), gpusim::rtx2080()}) {
      SpmmPlan plan(a, dev);
      for (const index_t n : {index_t{16}, index_t{64}, index_t{256}}) {
        EXPECT_EQ(plan.algo_for(n), select_spmm_algo(a, n, dev))
            << name << " n=" << n << " on " << dev.name;
      }
    }
  }
}

TEST(HybridPlan, StepsForDecomposesTimeMs) {
  const Csr blocked = sparse::pruned_dnn(256, 256, 16, 0.85, 11);
  SpmmPlan plan(blocked);
  const auto& steps = plan.steps_for(128);
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(steps.front().row_begin, 0);
  EXPECT_EQ(steps.back().row_end, blocked.rows);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].row_begin, steps[i - 1].row_end)
        << "steps must tile the row space contiguously";
  }
  EXPECT_DOUBLE_EQ(plan_steps_time_ms(steps), plan.time_ms(128));
}

// ---------------------------------------------------------------------------
// Serve: partitioned plans end-to-end.

serve::ServeOptions hybrid_serve_opts() {
  serve::ServeOptions opt;
  opt.devices = {gpusim::gtx1080ti()};
  opt.num_workers = 1;
  opt.start_paused = true;
  opt.batch.max_batch_requests = 1;
  opt.plan.selection = SelectionMode::Exact;  // honest sweep incl. hybrid
  opt.plan.sample_blocks = 256;
  return opt;
}

TEST(HybridServe, PartitionedPlanFlowsThroughCacheAndResult) {
  const Csr a = sparse::pruned_dnn(4096, 256, 16, 0.85, 11);
  serve::Engine eng(hybrid_serve_opts());
  const serve::GraphId id = eng.register_graph(a);
  DenseMatrix b(a.cols, 128);
  kernels::fill_random(b, 41);
  DenseMatrix expect(a.rows, 128);
  kernels::spmm_host_parallel(a, b, expect, ReduceKind::Sum);
  auto t = eng.submit(id, std::move(b));
  eng.shutdown();
  const auto& res = t.wait();

  ASSERT_EQ(res.status, serve::RequestStatus::Ok);
  EXPECT_EQ(res.algo, SpmmAlgo::HybridMma);
  ASSERT_EQ(res.plan_steps.size(), 2u);
  EXPECT_EQ(res.plan_steps[0].pipe, StepPipe::Mma);
  EXPECT_EQ(res.plan_steps[1].pipe, StepPipe::Simt);
  EXPECT_EQ(res.plan_steps.back().row_end, a.rows);
  // A singleton batch is priced at the whole plan: the result's modelled
  // time is exactly the step times' sum.
  EXPECT_DOUBLE_EQ(res.modelled_ms, plan_steps_time_ms(res.plan_steps));
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < 128; ++j) {
      ASSERT_EQ(res.c.at(i, j), expect.at(i, j)) << "serving must stay bitwise";
    }
  }
  const auto st = eng.stats();
  EXPECT_EQ(st.plan_hybrid_builds, 1u);
  EXPECT_EQ(eng.plan_cache().stats().hybrid_builds, 1u);
}

TEST(HybridServe, NonSumReductionsCanCompilePartitionedPlansToo) {
  const Csr a = sparse::pruned_dnn(4096, 256, 16, 0.85, 11);
  serve::Engine eng(hybrid_serve_opts());
  const serve::GraphId id = eng.register_graph(a);
  DenseMatrix b(a.cols, 128);
  kernels::fill_random(b, 42);
  auto t = eng.submit(id, std::move(b), {.reduce = ReduceKind::Max});
  eng.shutdown();
  const auto& res = t.wait();
  ASSERT_EQ(res.status, serve::RequestStatus::Ok);
  // The non-sum path has no sweep, but the learned selector still sees the
  // dense partition; whatever it picks, the step list must be present and
  // must tile the row space.
  ASSERT_FALSE(res.plan_steps.empty());
  EXPECT_EQ(res.plan_steps.front().row_begin, 0);
  EXPECT_EQ(res.plan_steps.back().row_end, a.rows);
  EXPECT_DOUBLE_EQ(res.modelled_ms, plan_steps_time_ms(res.plan_steps));
}

TEST(HybridServe, SelectorDeclinesRaggedFamilies) {
  const Csr a = sparse::grid_road(2048, 0.05, 51);
  serve::ServeOptions opt = hybrid_serve_opts();
  opt.plan.selection = SelectionMode::Predict;  // the learned path declines
  serve::Engine eng(opt);
  const serve::GraphId id = eng.register_graph(a);
  DenseMatrix b(a.cols, 128);
  kernels::fill_random(b, 43);
  auto t = eng.submit(id, std::move(b));
  eng.shutdown();
  const auto& res = t.wait();
  ASSERT_EQ(res.status, serve::RequestStatus::Ok);
  EXPECT_NE(res.algo, SpmmAlgo::HybridMma);
  ASSERT_EQ(res.plan_steps.size(), 1u) << "ragged matrices keep one-step plans";
  EXPECT_EQ(res.plan_steps[0].pipe, StepPipe::Simt);
  EXPECT_EQ(eng.stats().plan_hybrid_builds, 0u);
}

TEST(HybridServe, ShardHaloPricingComposesWithPartitionSteps) {
  // A sharded pruned-DNN graph: each shard slice autotunes its own
  // (possibly partitioned) plan, and the batch's makespan must equal
  // max over shards of (sum of that shard's step times + its halo
  // gather) — per-partition pricing composing with the interconnect.
  const Csr a = sparse::pruned_dnn(512, 512, 16, 0.85, 61);
  serve::ServeOptions opt = hybrid_serve_opts();
  opt.devices = {gpusim::gtx1080ti(), gpusim::rtx2080()};
  opt.sharding.device_capacity_bytes = serve::csr_bytes(a) / 2 + 64;
  serve::Engine eng(opt);
  const serve::GraphId id = eng.register_graph(a);
  const auto shards = eng.shard_plan(id);
  ASSERT_NE(shards, nullptr) << "the capacity budget must force sharding";

  const index_t n = 128;
  DenseMatrix b(a.cols, n);
  kernels::fill_random(b, 44);
  auto t = eng.submit(id, std::move(b));
  eng.shutdown();
  const auto& res = t.wait();
  ASSERT_EQ(res.status, serve::RequestStatus::Ok);
  EXPECT_EQ(res.shards, shards->num_shards());
  ASSERT_FALSE(res.plan_steps.empty());
  EXPECT_EQ(res.plan_steps.back().row_end, shards->shards.front().rows())
      << "the result carries shard 0's step list over the slice's rows";

  // Recompute the expected makespan from independently built shard plans.
  double want_makespan = 0.0;
  for (const auto& s : shards->shards) {
    serve::PlanCache fresh(opt.plan);
    const serve::PlanKey key{s.key, opt.devices[static_cast<std::size_t>(s.index)].name,
                             n, ReduceKind::Sum, s.index};
    const auto plan = fresh.lookup_or_build(
        key, s.csr, opt.devices[static_cast<std::size_t>(s.index)]);
    EXPECT_DOUBLE_EQ(plan->modelled_ms, plan_steps_time_ms(plan->steps));
    const double gather_ms = static_cast<double>(s.halo_cols) *
                             static_cast<double>(n) * sizeof(value_t) /
                             (opt.sharding.interconnect_gbps * 1e6);
    want_makespan = std::max(want_makespan, plan->modelled_ms + gather_ms);
  }
  EXPECT_DOUBLE_EQ(res.modelled_ms, want_makespan);
}

}  // namespace
}  // namespace gespmm
