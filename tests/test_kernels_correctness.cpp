/// Functional correctness of every simulated SpMM kernel against the
/// sequential host reference, across a structurally diverse matrix zoo,
/// feature widths N (including non-multiples of the warp size), devices,
/// and reductions.

#include <gtest/gtest.h>

#include "gpusim/launch.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmm_aspt.hpp"
#include "sparse/aspt.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using kernels::ReduceKind;
using kernels::SpmmAlgo;
using kernels::SpmmProblem;
using kernels::SpmmRunOptions;
using testutil::DenseMatrix;
using testutil::expect_matches_reference;
using sparse::Csr;

struct Case {
  std::string matrix_name;
  sparse::index_t n;
  SpmmAlgo algo;
  ReduceKind reduce;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.matrix_name << "_n" << c.n << "_" << kernels::algo_name(c.algo) << "_"
            << kernels::reduce_kind_name(c.reduce);
}

Csr matrix_by_name(const std::string& name) {
  if (name == "uniform") return testutil::zoo_uniform();
  if (name == "skewed") return testutil::zoo_skewed();
  if (name == "widerow") return testutil::zoo_wide_row();
  if (name == "emptyrows") return testutil::zoo_empty_rows();
  if (name == "single") return testutil::zoo_single_entry();
  if (name == "allempty") return testutil::zoo_all_empty();
  throw std::runtime_error("unknown zoo matrix " + name);
}

class SpmmCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(SpmmCorrectness, MatchesHostReference) {
  const Case& c = GetParam();
  const Csr a = matrix_by_name(c.matrix_name);
  const bool col_major = c.algo == SpmmAlgo::Csrmm2;
  SpmmProblem p(a, c.n,
                col_major ? kernels::Layout::ColMajor : kernels::Layout::RowMajor);
  kernels::fill_random(p.B, 42);

  SpmmRunOptions opt;
  opt.reduce = c.reduce;
  ASSERT_NO_THROW({ kernels::run_spmm(c.algo, p, opt); });
  expect_matches_reference(a, p.B, p.C, c.reduce);
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  const std::vector<std::string> matrices = {"uniform", "skewed",  "widerow",
                                             "emptyrows", "single", "allempty"};
  const std::vector<sparse::index_t> ns = {1, 8, 16, 32, 33, 64, 128};
  // Every kernel on sum; every GE kernel additionally on max / mean / min.
  const std::vector<SpmmAlgo> sum_algos = {
      SpmmAlgo::Naive,      SpmmAlgo::Crc,          SpmmAlgo::CrcCwm2,
      SpmmAlgo::CrcCwm4,    SpmmAlgo::CrcCwm8,      SpmmAlgo::GeSpMM,
      SpmmAlgo::RowSplitGB, SpmmAlgo::MergeSplitGB, SpmmAlgo::Csrmm2,
      SpmmAlgo::SpmvLoop,   SpmmAlgo::Gunrock,      SpmmAlgo::DglFallback};
  for (const auto& m : matrices) {
    for (auto n : ns) {
      for (auto algo : sum_algos) {
        cases.push_back({m, n, algo, ReduceKind::Sum});
      }
    }
  }
  const std::vector<SpmmAlgo> like_algos = {SpmmAlgo::Naive, SpmmAlgo::Crc,
                                            SpmmAlgo::CrcCwm2, SpmmAlgo::RowSplitGB,
                                            SpmmAlgo::DglFallback};
  for (const auto& m : {std::string("uniform"), std::string("emptyrows")}) {
    for (auto n : {sparse::index_t{16}, sparse::index_t{64}}) {
      for (auto algo : like_algos) {
        for (auto k : {ReduceKind::Max, ReduceKind::Min, ReduceKind::Mean}) {
          cases.push_back({m, n, algo, k});
        }
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s = info.param.matrix_name + "_n" + std::to_string(info.param.n) + "_";
  s += kernels::algo_name(info.param.algo);
  s += "_";
  s += kernels::reduce_kind_name(info.param.reduce);
  for (auto& ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Zoo, SpmmCorrectness, ::testing::ValuesIn(make_cases()),
                         case_name);

TEST(SpmmAspt, MatchesReferenceOnStructuredMatrix) {
  // Clustered matrix so heavy tiles actually form.
  const Csr a = sparse::rmat(10, 12.0, 0.55, 0.2, 0.2, 7);
  for (sparse::index_t n : {16, 64, 130}) {
    SpmmProblem p(a, n);
    kernels::fill_random(p.B, 7);
    const auto build = sparse::build_aspt(a);
    ASSERT_GT(build.matrix.heavy_nnz, 0) << "expected heavy tiles on clustered input";
    kernels::AsptDevice dev(build.matrix);
    kernels::run_spmm_aspt(dev, p);
    expect_matches_reference(a, p.B, p.C, ReduceKind::Sum);
  }
}

TEST(SpmmAspt, MatchesReferenceOnUniformMatrix) {
  const Csr a = testutil::zoo_uniform();
  SpmmProblem p(a, 48);
  kernels::fill_random(p.B, 9);
  const auto build = sparse::build_aspt(a);
  kernels::AsptDevice dev(build.matrix);
  kernels::run_spmm_aspt(dev, p);
  expect_matches_reference(a, p.B, p.C, ReduceKind::Sum);
}

TEST(SpmmErrors, Csrmm2RejectsRowMajorOutput) {
  const Csr a = testutil::zoo_uniform();
  SpmmProblem p(a, 32);  // row-major C
  EXPECT_THROW(kernels::run_spmm(SpmmAlgo::Csrmm2, p, SpmmRunOptions{}),
               std::invalid_argument);
}

TEST(SpmmErrors, SumOnlyKernelsRejectCustomReduce) {
  const Csr a = testutil::zoo_uniform();
  SpmmRunOptions opt;
  opt.reduce = ReduceKind::Max;
  {
    SpmmProblem p(a, 32, kernels::Layout::ColMajor);
    EXPECT_THROW(kernels::run_spmm(SpmmAlgo::Csrmm2, p, opt), std::invalid_argument);
  }
  {
    SpmmProblem p(a, 32);
    EXPECT_THROW(kernels::run_spmm(SpmmAlgo::Gunrock, p, opt), std::invalid_argument);
  }
}

TEST(SpmmAdaptive, SelectsCrcForSmallNAndCwmForLargeN) {
  EXPECT_EQ(kernels::select_gespmm_algo(16), SpmmAlgo::Crc);
  EXPECT_EQ(kernels::select_gespmm_algo(32), SpmmAlgo::Crc);
  EXPECT_EQ(kernels::select_gespmm_algo(33), SpmmAlgo::CrcCwm2);
  EXPECT_EQ(kernels::select_gespmm_algo(512), SpmmAlgo::CrcCwm2);
}

TEST(SpmmDeterminism, RepeatedRunsProduceIdenticalMetrics) {
  const Csr a = testutil::zoo_skewed();
  SpmmProblem p(a, 64);
  kernels::fill_random(p.B, 11);
  const auto r1 = kernels::run_spmm(SpmmAlgo::CrcCwm2, p, SpmmRunOptions{});
  const auto r2 = kernels::run_spmm(SpmmAlgo::CrcCwm2, p, SpmmRunOptions{});
  EXPECT_EQ(r1.metrics.gld_transactions, r2.metrics.gld_transactions);
  EXPECT_EQ(r1.metrics.dram_transactions, r2.metrics.dram_transactions);
  EXPECT_EQ(r1.metrics.l2_hits, r2.metrics.l2_hits);
  EXPECT_DOUBLE_EQ(r1.time_ms(), r2.time_ms());
}

}  // namespace
}  // namespace gespmm
