/// Shape-validation and degenerate-input coverage for the public compute
/// API: mismatched B/C dimensions must throw cleanly, and empty (0-row /
/// 0-nnz) and single-row matrices must produce exact results — never UB.

#include <gtest/gtest.h>

#include <vector>

#include "core/gespmm.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using testutil::Csr;
using testutil::DenseMatrix;
using testutil::index_t;
using testutil::value_t;

TEST(ShapeValidation, MismatchedBRowsThrows) {
  const Csr a = testutil::zoo_uniform();  // 200 x 200
  DenseMatrix b(a.cols + 1, 8);
  DenseMatrix c(a.rows, 8);
  EXPECT_THROW(spmm(a, b, c), std::invalid_argument);
}

TEST(ShapeValidation, MismatchedCDimsThrow) {
  const Csr a = testutil::zoo_uniform();
  DenseMatrix b(a.cols, 8);
  DenseMatrix c_wrong_rows(a.rows + 1, 8);
  EXPECT_THROW(spmm(a, b, c_wrong_rows), std::invalid_argument);
  DenseMatrix c_wrong_cols(a.rows, 9);
  EXPECT_THROW(spmm(a, b, c_wrong_cols), std::invalid_argument);
}

TEST(ShapeValidation, SpmmLikeValidatesShapesToo) {
  const Csr a = testutil::zoo_uniform();
  CustomReduceOp op;
  op.init = [] { return 0.0f; };
  op.reduce = [](value_t acc, value_t x) { return acc + x; };
  DenseMatrix b(a.cols - 1, 4);
  DenseMatrix c(a.rows, 4);
  EXPECT_THROW(spmm_like(a, b, c, op), std::invalid_argument);
}

TEST(ShapeValidation, ProfileSpmmValidatesShapes) {
  const Csr a = testutil::zoo_uniform();
  DenseMatrix b(a.cols, 4);
  DenseMatrix c(a.rows + 2, 4);
  EXPECT_THROW(profile_spmm(a, b, c), std::invalid_argument);
}

TEST(ShapeValidation, ZeroRowMatrixProducesEmptyOutput) {
  const Csr a(0, 16);
  DenseMatrix b(16, 8);
  kernels::fill_random(b, 7);
  DenseMatrix c(0, 8);
  EXPECT_NO_THROW(spmm(a, b, c));
  EXPECT_EQ(c.rows(), 0);
}

TEST(ShapeValidation, ZeroNnzMatrixYieldsZerosForEveryReduce) {
  const Csr a = testutil::zoo_all_empty();  // 6 x 6, nnz = 0
  DenseMatrix b(a.cols, 8);
  kernels::fill_random(b, 11);
  for (ReduceKind kind : {ReduceKind::Sum, ReduceKind::Max, ReduceKind::Min,
                          ReduceKind::Mean}) {
    DenseMatrix c(a.rows, 8);
    c.fill(42.0f);  // stale output must be overwritten, not kept
    spmm(a, b, c, kind);
    for (index_t i = 0; i < c.rows(); ++i) {
      for (index_t j = 0; j < c.cols(); ++j) {
        EXPECT_EQ(c.at(i, j), 0.0f)
            << kernels::reduce_kind_name(kind) << " at (" << i << "," << j
            << ")";
      }
    }
  }
}

TEST(ShapeValidation, ZeroColumnDenseOperandIsANoop) {
  const Csr a = testutil::zoo_uniform();
  DenseMatrix b(a.cols, 0);
  DenseMatrix c(a.rows, 0);
  EXPECT_NO_THROW(spmm(a, b, c));
}

TEST(ShapeValidation, SingleRowCsrIsExact) {
  // One row: [2, 0, -1, 0.5] — results are hand-computable dot products.
  const std::vector<index_t> r{0, 0, 0};
  const std::vector<index_t> cix{0, 2, 3};
  const std::vector<value_t> v{2.0f, -1.0f, 0.5f};
  const Csr a = sparse::csr_from_triplets(1, 4, r, cix, v);
  DenseMatrix b(4, 2);
  // Column 0: [1, 10, 2, 4]; column 1: [-3, 10, 0, 8].
  b.at(0, 0) = 1.0f;  b.at(0, 1) = -3.0f;
  b.at(1, 0) = 10.0f; b.at(1, 1) = 10.0f;
  b.at(2, 0) = 2.0f;  b.at(2, 1) = 0.0f;
  b.at(3, 0) = 4.0f;  b.at(3, 1) = 8.0f;
  DenseMatrix c(1, 2);
  spmm(a, b, c, ReduceKind::Sum);
  EXPECT_EQ(c.at(0, 0), 2.0f * 1.0f - 1.0f * 2.0f + 0.5f * 4.0f);  // 2
  EXPECT_EQ(c.at(0, 1), 2.0f * -3.0f - 1.0f * 0.0f + 0.5f * 8.0f);  // -2
  spmm(a, b, c, ReduceKind::Max);
  EXPECT_EQ(c.at(0, 0), 2.0f);   // max(2, -2, 2)
  EXPECT_EQ(c.at(0, 1), 4.0f);   // max(-6, 0, 4)
  spmm(a, b, c, ReduceKind::Min);
  EXPECT_EQ(c.at(0, 0), -2.0f);
  EXPECT_EQ(c.at(0, 1), -6.0f);
  spmm(a, b, c, ReduceKind::Mean);
  EXPECT_EQ(c.at(0, 0), 2.0f / 3.0f);
  EXPECT_EQ(c.at(0, 1), -2.0f / 3.0f);
}

TEST(ShapeValidation, EmptyRowsYieldZeroNotInit) {
  // Max/Min init with +/-inf; empty rows must finalize to 0, never leak inf.
  const Csr a = testutil::zoo_empty_rows();  // rows 0, 3, 7 empty
  DenseMatrix b(a.cols, 4);
  kernels::fill_random(b, 13);
  for (ReduceKind kind : {ReduceKind::Max, ReduceKind::Min, ReduceKind::Mean}) {
    DenseMatrix c(a.rows, 4);
    spmm(a, b, c, kind);
    for (index_t i : {0, 3, 7}) {
      for (index_t j = 0; j < 4; ++j) {
        EXPECT_EQ(c.at(i, j), 0.0f) << kernels::reduce_kind_name(kind);
      }
    }
  }
}

}  // namespace
}  // namespace gespmm
