/// Learned plan selection (core/plan_select + SelectionMode): feature
/// extractor goldens including degenerate inputs, predictor determinism
/// pins, Exact-mode bitwise equality with the legacy sweep, the retune /
/// mispredict refinement hook, plan-cache/engine integration, and the
/// >= 200-matrix predictor-vs-exact property sweep on both devices.

#include <gtest/gtest.h>

#include <vector>

#include "core/autotune.hpp"
#include "core/plan_select.hpp"
#include "kernels/spmm_problem.hpp"
#include "serve/engine.hpp"
#include "serve/fingerprint.hpp"
#include "sparse/generators.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using serve::PlanCache;
using serve::PlanCacheOptions;
using serve::PlanKey;

/// Dense-ish diagonal blocks — the block-structured family the property
/// sweep needs and sparse/generators does not provide.
Csr block_diag(index_t blocks, index_t bs, std::uint64_t seed) {
  std::vector<index_t> r, c;
  std::vector<value_t> v;
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  auto rnd = [&]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<double>(s >> 11) * (1.0 / 9007199254740992.0);
  };
  for (index_t b = 0; b < blocks; ++b) {
    for (index_t i = 0; i < bs; ++i) {
      for (index_t j = 0; j < bs; ++j) {
        if (rnd() < 0.6) {
          r.push_back(b * bs + i);
          c.push_back(b * bs + j);
          v.push_back(static_cast<value_t>(0.25 + 0.75 * rnd()));
        }
      }
    }
  }
  return sparse::csr_from_triplets(blocks * bs, blocks * bs, r, c, v);
}

// ---------------------------------------------------------------------------
// Feature extractor goldens.

TEST(PlanFeatures, EmptyGraphYieldsZeroMoments) {
  const PlanFeatures f = extract_plan_features(Csr(0, 0), 64);
  EXPECT_EQ(f.rows, 0);
  EXPECT_EQ(f.nnz, 0);
  EXPECT_DOUBLE_EQ(f.mean_row_nnz, 0.0);
  EXPECT_DOUBLE_EQ(f.row_nnz_variance, 0.0);
  EXPECT_DOUBLE_EQ(f.row_nnz_cv, 0.0);
  EXPECT_DOUBLE_EQ(f.density, 0.0);
  for (auto count : f.row_hist) EXPECT_EQ(count, 0u);
  EXPECT_EQ(f.n, 64);
  EXPECT_EQ(f.n_bucket, 2);
}

TEST(PlanFeatures, AllEmptyRowsLandInBucketZero) {
  const Csr a = testutil::zoo_all_empty();  // 6x6, nnz = 0
  const PlanFeatures f = extract_plan_features(a, 16);
  EXPECT_EQ(f.rows, 6);
  EXPECT_DOUBLE_EQ(f.mean_row_nnz, 0.0);
  EXPECT_DOUBLE_EQ(f.row_nnz_variance, 0.0);
  EXPECT_DOUBLE_EQ(f.row_nnz_cv, 0.0);
  EXPECT_DOUBLE_EQ(f.density, 0.0);
  EXPECT_EQ(f.row_hist[0], 6u);
  for (std::size_t b = 1; b < kRowHistBuckets; ++b) EXPECT_EQ(f.row_hist[b], 0u);
}

TEST(PlanFeatures, SingleDenseRowGoldens) {
  std::vector<index_t> r(64, 0), c(64);
  std::vector<value_t> v(64, 1.0f);
  for (index_t j = 0; j < 64; ++j) c[static_cast<std::size_t>(j)] = j;
  const Csr a = sparse::csr_from_triplets(1, 64, r, c, v);

  const PlanFeatures f = extract_plan_features(a, 32);
  EXPECT_EQ(f.rows, 1);
  EXPECT_EQ(f.nnz, 64);
  EXPECT_DOUBLE_EQ(f.mean_row_nnz, 64.0);
  EXPECT_DOUBLE_EQ(f.row_nnz_variance, 0.0);
  EXPECT_DOUBLE_EQ(f.row_nnz_cv, 0.0);
  EXPECT_DOUBLE_EQ(f.density, 1.0);
  // bit_width(64) == 7: a power-of-two length opens the next bucket
  // (half-open contract shared with the serve fingerprint).
  EXPECT_EQ(f.row_hist[7], 1u);
  EXPECT_EQ(f.n_bucket, 1);
}

TEST(PlanFeatures, KnownUniformMatrixGoldens) {
  const Csr a = testutil::zoo_uniform();  // 200x200, ~2000 nnz
  const PlanFeatures f = extract_plan_features(a, 256);
  EXPECT_EQ(f.rows, 200);
  EXPECT_EQ(f.nnz, a.nnz());
  EXPECT_DOUBLE_EQ(f.mean_row_nnz, static_cast<double>(a.nnz()) / 200.0);
  EXPECT_DOUBLE_EQ(f.density, static_cast<double>(a.nnz()) / (200.0 * 200.0));
  EXPECT_GT(f.row_nnz_variance, 0.0);
  EXPECT_GT(f.row_nnz_cv, 0.0);
  EXPECT_LT(f.row_nnz_cv, 1.0) << "uniform matrices are low-skew";
  std::uint64_t total = 0;
  for (auto count : f.row_hist) total += count;
  EXPECT_EQ(total, 200u) << "histogram partitions the rows";
  EXPECT_EQ(f.n_bucket, 8);
}

TEST(PlanFeatures, HistogramBucketContract) {
  // Rows of length 0, 1, 2, 4 land in buckets bit_width(len) = 0, 1, 2, 3.
  std::vector<index_t> r = {1, 2, 2, 3, 3, 3, 3};
  std::vector<index_t> c = {0, 0, 1, 0, 1, 2, 3};
  std::vector<value_t> v(r.size(), 1.0f);
  const Csr a = sparse::csr_from_triplets(4, 4, r, c, v);
  const auto hist = row_length_histogram(a);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(PlanFeatures, HistogramMatchesServeFingerprint) {
  // The serve fingerprint's histogram hash must be exactly the shared
  // helper's buckets folded through mix64 with its documented seed: the
  // extractor and the fingerprint can never disagree about bucketing.
  for (const auto& zc : testutil::zoo_cases()) {
    const auto hist = row_length_histogram(zc.matrix);
    std::uint64_t hh = 0x5ca1ab1eull;
    for (std::uint64_t count : hist) hh = serve::mix64(hh, count);
    EXPECT_EQ(hh, serve::fingerprint(zc.matrix).histogram_hash) << zc.name;
  }
}

// ---------------------------------------------------------------------------
// Predictor determinism pins.

TEST(PlanPredictor, PinsFixedRuleBoundaryOnBothDevices) {
  const Csr uniform = testutil::zoo_uniform();
  const Csr skewed = testutil::zoo_skewed();
  for (const auto& dev : {gpusim::gtx1080ti(), gpusim::rtx2080()}) {
    for (const Csr* a : {&uniform, &skewed}) {
      EXPECT_EQ(predict_spmm_algo(*a, 16, dev), SpmmAlgo::Crc) << dev.name;
      EXPECT_EQ(predict_spmm_algo(*a, 32, dev), SpmmAlgo::Crc) << dev.name;
      EXPECT_EQ(predict_spmm_algo(*a, 33, dev), SpmmAlgo::CrcCwm2) << dev.name;
      EXPECT_EQ(predict_spmm_algo(*a, 512, dev), SpmmAlgo::CrcCwm2) << dev.name;
    }
  }
}

TEST(PlanPredictor, IsDeterministic) {
  const Csr a = testutil::zoo_skewed();
  const auto dev = gpusim::rtx2080();
  const PlanFeatures f = extract_plan_features(a, 128);
  const SpmmAlgo first = predict_spmm_algo(f, dev);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(predict_spmm_algo(f, dev), first);
}

// ---------------------------------------------------------------------------
// Exact mode stays bitwise-equal to the legacy sweep; Predict is free.

AutotuneOptions tune_opts(SelectionMode mode, const gpusim::DeviceSpec& dev,
                          double retune_regret = 0.0) {
  AutotuneOptions opt;
  opt.device = dev;
  opt.sample_blocks = 256;
  opt.mode = mode;
  opt.retune_regret = retune_regret;
  return opt;
}

/// The tuner's exhaustive sweep, replicated verbatim over the same
/// candidate set: the Exact path must reproduce it bitwise (same
/// simulations, same tie-breaks). `run_spmm` dispatches HybridMma to the
/// hybrid kernel, so the reference prices it the same way the tuner does.
AutotuneResult legacy_sweep(const Csr& a, index_t n, const AutotuneOptions& opt) {
  AutotuneResult res;
  res.default_choice = kernels::select_gespmm_algo(n);
  const std::vector<SpmmAlgo> candidates = autotune_candidates(a, n, opt.device);
  kernels::SpmmRunOptions ro;
  ro.device = opt.device;
  ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);
  res.best = candidates.front();
  double best_ms = std::numeric_limits<double>::infinity();
  for (auto algo : candidates) {
    kernels::SpmmProblem p(a, n);
    const double ms = kernels::run_spmm(algo, p, ro).time_ms();
    res.times_ms[algo] = ms;
    if (ms < best_ms) {
      best_ms = ms;
      res.best = algo;
    }
  }
  res.gain_over_default = res.times_ms.at(res.default_choice) / best_ms;
  return res;
}

TEST(Autotune, ExactModeBitwiseEqualsLegacySweep) {
  const Csr uniform = testutil::zoo_uniform();
  const Csr skewed = testutil::zoo_skewed();
  for (const auto& dev : {gpusim::gtx1080ti(), gpusim::rtx2080()}) {
    for (const Csr* a : {&uniform, &skewed}) {
      for (index_t n : {16, 128}) {
        const AutotuneOptions opt = tune_opts(SelectionMode::Exact, dev);
        const AutotuneResult got = autotune_spmm(*a, n, opt);
        const AutotuneResult want = legacy_sweep(*a, n, opt);
        EXPECT_EQ(got.best, want.best);
        EXPECT_EQ(got.default_choice, want.default_choice);
        ASSERT_EQ(got.times_ms.size(), want.times_ms.size());
        for (const auto& [algo, ms] : want.times_ms) {
          EXPECT_EQ(got.times_ms.at(algo), ms)
              << kernels::algo_name(algo) << " on " << dev.name;
        }
        EXPECT_EQ(got.gain_over_default, want.gain_over_default);
        // build_ms is exactly the non-winning candidates' profiling time.
        double others = 0.0;
        for (const auto& [algo, ms] : want.times_ms) {
          if (algo != want.best) others += ms;
        }
        EXPECT_DOUBLE_EQ(got.build_ms, others);
        EXPECT_FALSE(got.predicted);
        EXPECT_FALSE(got.retuned);
      }
    }
  }
}

TEST(Autotune, PredictCostsZeroBuildAndMatchesExactPricing) {
  const Csr a = testutil::zoo_uniform();
  const auto dev = gpusim::gtx1080ti();
  const AutotuneResult pred =
      autotune_spmm(a, 128, tune_opts(SelectionMode::Predict, dev));
  EXPECT_TRUE(pred.predicted);
  EXPECT_FALSE(pred.retuned);
  EXPECT_DOUBLE_EQ(pred.build_ms, 0.0) << "prediction has no sweep to pay for";
  EXPECT_EQ(pred.best, predict_spmm_algo(a, 128, dev));

  // The predicted kernel's pricing run is the same simulation the sweep
  // would have used — bitwise.
  const AutotuneResult exact =
      autotune_spmm(a, 128, tune_opts(SelectionMode::Exact, dev));
  EXPECT_EQ(pred.times_ms.at(pred.best), exact.times_ms.at(pred.best));
}

TEST(Autotune, RetuneEscalatesToSweepAndFlagsMispredicts) {
  const Csr a = testutil::zoo_skewed();
  const auto dev = gpusim::rtx2080();

  // Always-verify: any threshold in (0, 1] makes the predicted time
  // exceed retune_regret * time(fixed rule), so the sweep always runs.
  const AutotuneResult verified =
      autotune_spmm(a, 128, tune_opts(SelectionMode::Predict, dev, 0.5));
  EXPECT_TRUE(verified.predicted);
  EXPECT_TRUE(verified.retuned);
  EXPECT_EQ(verified.times_ms.size(), autotune_candidates(a, 128, dev).size())
      << "escalation prices every candidate";

  const AutotuneResult exact =
      autotune_spmm(a, 128, tune_opts(SelectionMode::Exact, dev));
  EXPECT_EQ(verified.best, exact.best) << "the sweep has the final word";
  const double t_pred = exact.times_ms.at(predict_spmm_algo(a, 128, dev));
  EXPECT_EQ(verified.mispredicted, exact.times_ms.at(exact.best) < t_pred);

  // A loose threshold never escalates: the prediction matches the fixed
  // rule here, so predicted time == 1.0x the fixed rule's.
  const AutotuneResult trusted =
      autotune_spmm(a, 128, tune_opts(SelectionMode::Predict, dev, 10.0));
  EXPECT_FALSE(trusted.retuned);
  EXPECT_DOUBLE_EQ(trusted.build_ms, 0.0);
}

// ---------------------------------------------------------------------------
// Plan cache and engine integration.

TEST(PlanCacheSelection, ModesPopulateBuildCostAndCounters) {
  const Csr a = testutil::zoo_uniform();
  const auto dev = gpusim::gtx1080ti();
  const PlanKey key{1, dev.name, 128, kernels::ReduceKind::Sum};

  PlanCacheOptions exact_opt;
  exact_opt.selection = SelectionMode::Exact;
  exact_opt.sample_blocks = 256;
  PlanCache exact_cache(exact_opt);
  const auto exact_plan = exact_cache.lookup_or_build(key, a, dev);
  EXPECT_TRUE(exact_plan->autotuned);
  EXPECT_FALSE(exact_plan->predicted);
  EXPECT_GT(exact_plan->build_ms, 0.0);
  EXPECT_EQ(exact_cache.stats().exact_builds, 1u);
  EXPECT_EQ(exact_cache.stats().predicted_builds, 0u);

  PlanCacheOptions pred_opt;
  pred_opt.sample_blocks = 256;  // selection defaults to Predict
  PlanCache pred_cache(pred_opt);
  const auto pred_plan = pred_cache.lookup_or_build(key, a, dev);
  EXPECT_TRUE(pred_plan->predicted);
  EXPECT_DOUBLE_EQ(pred_plan->build_ms, 0.0);
  EXPECT_EQ(pred_plan->algo, exact_plan->algo)
      << "predictor and sweep agree on this matrix";
  EXPECT_EQ(pred_plan->modelled_ms, exact_plan->modelled_ms)
      << "same kernel, same pricing simulation — bitwise";
  EXPECT_EQ(pred_cache.stats().predicted_builds, 1u);
  EXPECT_EQ(pred_cache.stats().exact_builds, 0u);
}

TEST(PlanCacheSelection, DisabledCacheBuildsUncachedEveryTime) {
  const Csr a = testutil::zoo_uniform();
  const auto dev = gpusim::gtx1080ti();
  PlanCacheOptions opt;
  opt.enabled = false;
  opt.sample_blocks = 256;
  PlanCache cache(opt);
  const PlanKey key{1, dev.name, 64, kernels::ReduceKind::Sum};

  auto lease1 = cache.acquire(key, a, dev);
  auto lease2 = cache.acquire(key, a, dev);
  EXPECT_TRUE(lease1.valid());
  EXPECT_FALSE(lease1.hit());
  EXPECT_FALSE(lease2.hit()) << "nothing is retained, so nothing can hit";
  EXPECT_FALSE(lease1.cached());
  EXPECT_EQ(lease1->modelled_ms, lease2->modelled_ms) << "builds stay deterministic";

  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.uncached_builds, 2u);
  EXPECT_EQ(st.size, 0u);
}

serve::ServeOptions cold_opts(SelectionMode mode) {
  serve::ServeOptions opt;
  opt.devices = {gpusim::gtx1080ti()};
  opt.num_workers = 1;
  opt.start_paused = true;
  opt.batch.max_batch_requests = 1;
  opt.plan.sample_blocks = 256;
  opt.plan.selection = mode;
  return opt;
}

TEST(ServeEngineSelection, ColdMissChargesSweepCostOnlyInExactMode) {
  const Csr a = sparse::uniform_random(256, 256, 2048, 4242);

  auto run = [&](SelectionMode mode) {
    serve::Engine eng(cold_opts(mode));
    const serve::GraphId id = eng.register_graph(a);
    // Two identical-shape requests: the first misses cold, the second
    // hits — selection cost must be charged exactly once.
    kernels::DenseMatrix b1(a.cols, 64), b2(a.cols, 64);
    kernels::fill_random(b1, 7);
    kernels::fill_random(b2, 8);
    auto t1 = eng.submit(id, std::move(b1));
    auto t2 = eng.submit(id, std::move(b2));
    eng.shutdown();
    t1.wait();
    t2.wait();
    return eng.stats();
  };

  const auto exact = run(SelectionMode::Exact);
  const auto pred = run(SelectionMode::Predict);

  EXPECT_GT(exact.plan_build_ms, 0.0) << "Exact cold miss pays the sweep";
  EXPECT_DOUBLE_EQ(pred.plan_build_ms, 0.0) << "Predict cold miss is free";
  EXPECT_EQ(exact.plan_exact_builds, 1u);
  EXPECT_EQ(pred.plan_predicted_builds, 1u);
  EXPECT_EQ(exact.plan_cache_hits, 1u) << "second request rides the plan";
  // Identical kernels and pricing on this matrix, so the entire modelled
  // difference is the selection cost — charged once, not per request, and
  // it lands on the requesting device's virtual clock.
  EXPECT_DOUBLE_EQ(exact.modelled_ms, pred.modelled_ms + exact.plan_build_ms);
  ASSERT_EQ(exact.devices.size(), 1u);
  EXPECT_DOUBLE_EQ(exact.devices[0].modelled_ms,
                   pred.devices[0].modelled_ms + exact.plan_build_ms);
}

// ---------------------------------------------------------------------------
// Property sweep: >= 200 generated matrices, both devices. The predicted
// plan must stay within the documented regret bound of the exact sweep's
// best, and the cache's mispredict counter must equal the number of
// observed regressions exactly (always-verify retune threshold).

TEST(PlanSelectProperty, PredictorWithinRegretBoundAndMispredictsExact) {
  struct Mat {
    std::string name;
    Csr a;
  };
  std::vector<Mat> mats;
  for (std::uint64_t i = 0; i < 26; ++i) {
    const index_t rows = 128 + static_cast<index_t>(16 * i);
    mats.push_back({"uniform-" + std::to_string(i),
                    sparse::uniform_random(rows, rows, rows * 6, 9000 + i)});
    mats.push_back({"uniform-dense-" + std::to_string(i),
                    sparse::uniform_random(192, 192, 6144, 9100 + i)});
    mats.push_back({"rmat-" + std::to_string(i),
                    sparse::rmat(8, 4.0 + static_cast<double>(i % 5), 0.57, 0.19,
                                 0.19, 9200 + i)});
    mats.push_back({"block-" + std::to_string(i),
                    block_diag(6 + static_cast<index_t>(i % 6), 16, 9300 + i)});
  }
  ASSERT_GE(2 * mats.size(), 200u) << "the sweep must cover >= 200 matrix runs";

  const index_t widths[] = {48, 64, 160, 256};
  for (const auto& dev : {gpusim::gtx1080ti(), gpusim::rtx2080()}) {
    PlanCacheOptions copt;
    copt.selection = SelectionMode::Predict;
    copt.retune_regret = 0.5;  // always verify => exact mispredict counting
    copt.sample_blocks = 64;
    copt.width_quantum = 1;    // keys at the tested width exactly
    copt.max_entries = 0;      // unbounded: every build is observed
    PlanCache cache(copt);

    std::uint64_t observed_regressions = 0;
    std::uint64_t builds = 0;
    for (std::size_t i = 0; i < mats.size(); ++i) {
      const Csr& a = mats[i].a;
      const index_t n = widths[i % std::size(widths)];

      AutotuneOptions ex;
      ex.device = dev;
      ex.sample_blocks = 64;
      ex.mode = SelectionMode::Exact;
      const AutotuneResult exact = autotune_spmm(a, n, ex);
      const SpmmAlgo pred = predict_spmm_algo(a, n, dev);
      ASSERT_TRUE(exact.times_ms.count(pred) == 1)
          << mats[i].name << ": prediction must be a candidate";
      const double t_pred = exact.times_ms.at(pred);
      const double t_best = exact.times_ms.at(exact.best);
      EXPECT_LE(t_pred, t_best * kPlanSelectRegretBound)
          << mats[i].name << " n=" << n << " on " << dev.name
          << ": prediction outside the documented regret bound";
      if (t_pred > t_best) ++observed_regressions;

      const PlanKey key{i + 1, dev.name, n, kernels::ReduceKind::Sum};
      const auto plan = cache.lookup_or_build(key, a, dev);
      ++builds;
      EXPECT_TRUE(plan->retuned) << "always-verify must escalate every build";
      EXPECT_EQ(plan->algo, exact.best) << "verified plan keeps the sweep's pick";
    }

    const auto st = cache.stats();
    EXPECT_EQ(st.retunes, builds);
    EXPECT_EQ(st.mispredicts, observed_regressions)
        << dev.name << ": the mispredict counter must match the observed "
                       "regressions exactly";
  }
}

}  // namespace
}  // namespace gespmm
