/// SpmmPlan and the CF autotuner, plus the ELLPACK-R kernel's correctness
/// and its padding-driven failure mode on skewed graphs.

#include <gtest/gtest.h>

#include "core/autotune.hpp"
#include "core/plan.hpp"
#include "kernels/spmm_ell.hpp"
#include "sparse/datasets.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

TEST(SpmmPlan, RunMatchesDirectSpmm) {
  const Csr a = sparse::uniform_random(256, 256, 2048, 501);
  SpmmPlan plan(a);
  DenseMatrix b(256, 48), c_plan(256, 48), c_direct(256, 48);
  kernels::fill_random(b, 1);
  plan.run(b, c_plan);
  spmm(a, b, c_direct);
  EXPECT_LT(c_plan.max_abs_diff(c_direct), 1e-6);
}

TEST(SpmmPlan, ValidatesMatrixAndShapes) {
  Csr bad = sparse::uniform_random(16, 16, 64, 502);
  bad.rowptr[4] = 9999;
  EXPECT_THROW(SpmmPlan{bad}, std::runtime_error);

  SpmmPlan plan(sparse::uniform_random(16, 16, 64, 503));
  DenseMatrix b(8, 4), c(16, 4);
  EXPECT_THROW(plan.run(b, c), std::invalid_argument);
}

TEST(SpmmPlan, CachesProfilesPerShape) {
  SpmmPlan plan(sparse::uniform_random(2048, 2048, 16384, 504));
  const double t1 = plan.time_ms(64);
  const double t2 = plan.time_ms(64);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_GT(plan.time_ms(512), t1);  // more columns, more time
}

TEST(SpmmPlan, AccumulatesTimeAcrossRuns) {
  SpmmPlan plan(sparse::uniform_random(512, 512, 4096, 505));
  DenseMatrix b(512, 32), c(512, 32);
  kernels::fill_random(b, 2);
  EXPECT_DOUBLE_EQ(plan.accumulated_time_ms(), 0.0);
  plan.run(b, c);
  const double once = plan.accumulated_time_ms();
  EXPECT_GT(once, 0.0);
  plan.run(b, c);
  EXPECT_NEAR(plan.accumulated_time_ms(), 2 * once, 1e-12);
}

TEST(SpmmPlan, AdaptiveAlgoSelection) {
  SpmmPlan plan(sparse::uniform_random(64, 64, 256, 506));
  EXPECT_EQ(plan.algo_for(16), SpmmAlgo::Crc);
  EXPECT_EQ(plan.algo_for(256), SpmmAlgo::CrcCwm2);
}

// These sweep tests request SelectionMode::Exact explicitly: the default
// is the trained predictor (see test_plan_select.cpp), which prices only
// its chosen kernel and would not produce per-candidate times.
AutotuneOptions exact_opts() {
  AutotuneOptions opt;
  opt.mode = SelectionMode::Exact;
  return opt;
}

TEST(Autotune, DefaultRuleIsNearOptimalOnTypicalMatrices) {
  // The paper keeps CF=2 untuned because it loses >15% only rarely; the
  // tuner must confirm that on a typical matrix.
  const Csr a = sparse::uniform_random(8192, 8192, 65536, 507);
  const auto res = autotune_spmm(a, 256, exact_opts());
  EXPECT_EQ(res.default_choice, SpmmAlgo::CrcCwm2);
  EXPECT_GE(res.gain_over_default, 1.0);
  EXPECT_LT(res.gain_over_default, 1.15)
      << "fixed CF=2 should be within 15% of tuned on a uniform matrix";
  // The sweep prices the full candidate set — the CF variants plus hybrid
  // when the matrix has dense rows (a uniform mean-8 matrix's tail has a
  // few, so hybrid is swept here, and loses honestly).
  EXPECT_EQ(res.times_ms.size(),
            autotune_candidates(a, 256, exact_opts().device).size());
  EXPECT_FALSE(res.predicted);
  EXPECT_GT(res.build_ms, 0.0) << "a multi-candidate sweep has selection cost";
}

TEST(Autotune, SmallNOnlyConsidersCrc) {
  const Csr a = sparse::uniform_random(1024, 1024, 8192, 508);
  const auto res = autotune_spmm(a, 16, exact_opts());
  EXPECT_EQ(res.best, SpmmAlgo::Crc);
  // Below one warp of columns there is nothing to coarsen: no CWM variant
  // may be swept. (Hybrid candidacy is density-based, not width-based, so
  // the handful of dense tail rows keep it in the sweep.)
  EXPECT_EQ(res.times_ms.count(SpmmAlgo::CrcCwm2), 0u);
  EXPECT_EQ(res.times_ms.count(SpmmAlgo::CrcCwm4), 0u);
  EXPECT_EQ(res.times_ms.count(SpmmAlgo::CrcCwm8), 0u);
  EXPECT_EQ(res.times_ms.size(),
            autotune_candidates(a, 16, exact_opts().device).size());
  EXPECT_DOUBLE_EQ(res.gain_over_default, 1.0);
}

TEST(Autotune, ReportsPerCandidateTimes) {
  const Csr a = sparse::uniform_random(4096, 4096, 32768, 509);
  AutotuneOptions opt = exact_opts();
  opt.device = gpusim::rtx2080();
  const auto res = autotune_spmm(a, 128, opt);
  for (const auto& [algo, ms] : res.times_ms) {
    EXPECT_GT(ms, 0.0) << kernels::algo_name(algo);
  }
  // Best really is the minimum.
  for (const auto& [algo, ms] : res.times_ms) {
    EXPECT_LE(res.times_ms.at(res.best), ms);
  }
}

TEST(EllKernel, MatchesReferenceAcrossWidths) {
  const Csr a = testutil::zoo_uniform();
  const auto ell = sparse::csr_to_ell(a);
  kernels::EllDevice dev(ell);
  for (sparse::index_t n : {1, 16, 33, 64}) {
    kernels::SpmmProblem p(a, n);
    kernels::fill_random(p.B, 3);
    kernels::run_spmm_ell(dev, p);
    testutil::expect_matches_reference(a, p.B, p.C, kernels::ReduceKind::Sum);
  }
}

TEST(EllKernel, SupportsSpmmLikeReductions) {
  const Csr a = testutil::zoo_empty_rows();
  const auto ell = sparse::csr_to_ell(a);
  kernels::EllDevice dev(ell);
  for (auto kind : {kernels::ReduceKind::Max, kernels::ReduceKind::Mean}) {
    kernels::SpmmProblem p(a, 20);
    kernels::fill_random(p.B, 4);
    kernels::SpmmRunOptions opt;
    opt.reduce = kind;
    kernels::run_spmm_ell(dev, p, opt);
    testutil::expect_matches_reference(a, p.B, p.C, kind);
  }
}

TEST(EllKernel, SkewKillsEllButNotGeSpmm) {
  // The padding failure mode: on a power-law graph the padded width
  // explodes and the ELL kernel does useless masked work; GE-SpMM's CSR
  // kernel is unaffected. This is the paper's argument against
  // preprocessed formats for graphs, measured.
  const Csr skewed = sparse::rmat(11, 8.0, 0.57, 0.19, 0.19, 510);
  const auto ell = sparse::csr_to_ell(skewed);
  EXPECT_GT(ell.padding_overhead(skewed.nnz()), 0.5);

  kernels::EllDevice edev(ell);
  kernels::SpmmProblem p1(skewed, 128), p2(skewed, 128);
  kernels::SpmmRunOptions opt;
  opt.sample = gpusim::SamplePolicy::sampled(512);
  const double t_ell = kernels::run_spmm_ell(edev, p1, opt).time_ms();
  const double t_ge = kernels::run_spmm(SpmmAlgo::GeSpMM, p2, opt).time_ms();
  EXPECT_GT(t_ell / t_ge, 1.3) << "ELL should lose clearly on skewed graphs";
}

}  // namespace
}  // namespace gespmm
