/// Property sweep over the generator space: every structural invariant of
/// the sparse substrate must hold for every generator family, size and
/// seed (parameterized gtest, one fixture - many graphs).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "sparse/aspt.hpp"
#include "sparse/coo.hpp"
#include "sparse/ell.hpp"
#include "sparse/generators.hpp"
#include "sparse/rng.hpp"
#include "test_util.hpp"

namespace gespmm::sparse {
namespace {

struct GenCase {
  std::string name;
  Csr matrix;
};

GenCase make_case(int id) {
  switch (id) {
    case 0: return {"uniform_small", uniform_random(64, 64, 256, 900)};
    case 1: return {"uniform_wide", uniform_random(128, 512, 2048, 901)};
    case 2: return {"uniform_tall", uniform_random(512, 128, 2048, 902)};
    case 3: return {"uniform_dense", uniform_random(96, 96, 4000, 903)};
    case 4: return {"rmat_mild", rmat(8, 4.0, 0.4, 0.25, 0.25, 904)};
    case 5: return {"rmat_skewed", rmat(10, 8.0, 0.6, 0.18, 0.18, 905)};
    case 6: return {"rmat_heavy", rmat(9, 16.0, 0.65, 0.15, 0.15, 906)};
    case 7: return {"road_small", grid_road(400, 0.1, 907)};
    case 8: return {"road_large", grid_road(10000, 0.5, 908)};
    case 9: return {"citation_small", citation_graph(300, 1500, 909)};
    case 10: return {"citation_large", citation_graph(5000, 20000, 910)};
    case 11: return {"empty", Csr(32, 32)};
    case 12: return {"single_row", csr_from_triplets(1, 8, std::vector<index_t>{0, 0},
                                                     std::vector<index_t>{1, 7},
                                                     std::vector<value_t>{1.f, 2.f})};
    default: throw std::out_of_range("bad case");
  }
}

class SparseProperties : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { c_ = make_case(GetParam()); }
  GenCase c_;
};

TEST_P(SparseProperties, ValidatesAndRowsSorted) {
  ASSERT_NO_THROW(c_.matrix.validate()) << c_.name;
  EXPECT_TRUE(c_.matrix.rows_sorted()) << c_.name << ": triplet build must sort rows";
}

TEST_P(SparseProperties, TransposeIsInvolutionAndPreservesNnz) {
  const Csr t = transpose(c_.matrix);
  EXPECT_EQ(t.nnz(), c_.matrix.nnz());
  EXPECT_EQ(t.rows, c_.matrix.cols);
  EXPECT_EQ(transpose(t), c_.matrix);
}

TEST_P(SparseProperties, CooRoundTrip) {
  EXPECT_EQ(coo_to_csr(csr_to_coo(c_.matrix)), c_.matrix);
}

TEST_P(SparseProperties, EllRoundTrip) {
  const EllR e = csr_to_ell(c_.matrix);
  EXPECT_EQ(ell_to_csr(e), c_.matrix);
  EXPECT_GE(e.padding_overhead(c_.matrix.nnz()), 0.0);
  EXPECT_LE(e.padding_overhead(c_.matrix.nnz()), 1.0);
}

TEST_P(SparseProperties, AsptPartitionIsLossless) {
  const auto build = build_aspt(c_.matrix);
  EXPECT_EQ(build.matrix.heavy_nnz + build.matrix.light_nnz, c_.matrix.nnz());
  Csr back = aspt_to_csr(build.matrix);
  back.sort_rows();
  Csr orig = c_.matrix;
  orig.sort_rows();
  EXPECT_EQ(back, orig) << c_.name;
}

TEST_P(SparseProperties, RowNormalizePreservesStructure) {
  if (c_.matrix.rows != c_.matrix.cols) return;  // normalization is square-only
  const Csr n = row_normalize(c_.matrix);
  EXPECT_EQ(n.rowptr, c_.matrix.rowptr);
  EXPECT_EQ(n.colind, c_.matrix.colind);
  for (index_t i = 0; i < n.rows; ++i) {
    double sum = 0.0;
    for (index_t p = n.rowptr[static_cast<std::size_t>(i)];
         p < n.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      sum += n.val[static_cast<std::size_t>(p)];
    }
    if (c_.matrix.row_nnz(i) > 0) {
      EXPECT_NEAR(sum, 1.0, 1e-4) << c_.name << " row " << i;
    }
  }
}

TEST_P(SparseProperties, GcnNormalizeIsSymmetricOnSymmetricInput) {
  if (c_.matrix.rows != c_.matrix.cols) return;
  // Symmetrize first: A + A^T (values summed) is symmetric by construction.
  const Csr at = transpose(c_.matrix);
  Coo merged = csr_to_coo(c_.matrix);
  const Coo extra = csr_to_coo(at);
  merged.row.insert(merged.row.end(), extra.row.begin(), extra.row.end());
  merged.col.insert(merged.col.end(), extra.col.begin(), extra.col.end());
  merged.val.insert(merged.val.end(), extra.val.begin(), extra.val.end());
  const Csr sym = coo_to_csr(merged);
  const Csr norm = gcn_normalize(sym);
  const Csr norm_t = transpose(norm);
  ASSERT_EQ(norm.nnz(), norm_t.nnz());
  Csr a = norm, b = norm_t;
  a.sort_rows();
  b.sort_rows();
  for (std::size_t p = 0; p < a.val.size(); ++p) {
    EXPECT_EQ(a.colind[p], b.colind[p]);
    EXPECT_NEAR(a.val[p], b.val[p], 1e-5f) << c_.name;
  }
}

/// Raw-byte equality: stricter than operator== for float payloads (0.0f vs
/// -0.0f, NaN payloads) — "byte-identical across runs" taken literally.
template <typename T>
bool bytes_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

bool csr_bytes_equal(const Csr& a, const Csr& b) {
  return a.rows == b.rows && a.cols == b.cols &&
         bytes_equal(a.rowptr, b.rowptr) && bytes_equal(a.colind, b.colind) &&
         bytes_equal(a.val, b.val);
}

TEST_P(SparseProperties, RegenerationIsByteIdentical) {
  // Every generator takes an explicit seed and uses SplitMix64; regenerating
  // the same case must therefore reproduce the matrix byte-for-byte.
  const GenCase again = make_case(GetParam());
  EXPECT_TRUE(csr_bytes_equal(c_.matrix, again.matrix))
      << c_.name << ": generator is not deterministic for a fixed seed";
}

TEST_P(SparseProperties, DegreeStatsBounded) {
  const auto s = degree_stats(c_.matrix);
  EXPECT_LE(s.min, s.max);
  EXPECT_GE(s.mean, s.min);
  EXPECT_LE(s.mean, s.max);
  if (c_.matrix.rows > 0) {
    EXPECT_NEAR(s.mean * c_.matrix.rows, c_.matrix.nnz(), 0.5);
  }
}

TEST(SparseDeterminism, ZooMatricesAreByteIdenticalAcrossBuilds) {
  using namespace gespmm::testutil;
  EXPECT_TRUE(csr_bytes_equal(zoo_uniform(), zoo_uniform()));
  EXPECT_TRUE(csr_bytes_equal(zoo_skewed(), zoo_skewed()));
  EXPECT_TRUE(csr_bytes_equal(zoo_wide_row(), zoo_wide_row()));
  EXPECT_TRUE(csr_bytes_equal(zoo_empty_rows(), zoo_empty_rows()));
  EXPECT_TRUE(csr_bytes_equal(zoo_single_entry(), zoo_single_entry()));
  EXPECT_TRUE(csr_bytes_equal(zoo_all_empty(), zoo_all_empty()));
}

TEST(SparseDeterminism, DifferentSeedsProduceDifferentMatrices) {
  EXPECT_FALSE(csr_bytes_equal(uniform_random(64, 64, 256, 1),
                               uniform_random(64, 64, 256, 2)));
  EXPECT_FALSE(csr_bytes_equal(rmat(8, 4.0, 0.4, 0.25, 0.25, 1),
                               rmat(8, 4.0, 0.4, 0.25, 0.25, 2)));
  EXPECT_FALSE(csr_bytes_equal(citation_graph(300, 1500, 1),
                               citation_graph(300, 1500, 2)));
}

TEST(SparseDeterminism, KnownSeedPinsExactStructure) {
  // Golden pin: if SplitMix64 or a generator's consumption order changes,
  // this fails loudly instead of silently invalidating recorded results.
  const Csr a = uniform_random(8, 8, 16, 42);
  const Csr again = uniform_random(8, 8, 16, 42);
  ASSERT_TRUE(csr_bytes_equal(a, again));
  EXPECT_EQ(a.rows, 8);
  EXPECT_LE(a.nnz(), 16);
  SplitMix64 rng(42);
  EXPECT_EQ(rng.next(), 0xbdd732262feb6e95ull)
      << "SplitMix64 output changed — all pinned datasets are invalidated";
}

std::string case_name(const ::testing::TestParamInfo<int>& info) {
  return make_case(info.param).name;
}

INSTANTIATE_TEST_SUITE_P(Generators, SparseProperties, ::testing::Range(0, 13),
                         case_name);

}  // namespace
}  // namespace gespmm::sparse
