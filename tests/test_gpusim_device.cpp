/// Device presets, occupancy calculator and cache model tests.

#include <gtest/gtest.h>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"

namespace gespmm::gpusim {
namespace {

TEST(DevicePresets, Gtx1080TiMatchesPaperMachine1) {
  const auto d = gtx1080ti();
  EXPECT_EQ(d.num_sms, 28);
  EXPECT_NEAR(d.clock_ghz, 1.481, 1e-9);
  EXPECT_NEAR(d.dram_bw_gbps, 484.0, 1e-9);
  EXPECT_FALSE(d.unified_l1);  // Pascal: global loads bypass L1
}

TEST(DevicePresets, Rtx2080MatchesPaperMachine2) {
  const auto d = rtx2080();
  EXPECT_EQ(d.num_sms, 46);
  EXPECT_NEAR(d.clock_ghz, 1.515, 1e-9);
  EXPECT_NEAR(d.dram_bw_gbps, 448.0, 1e-9);
  EXPECT_TRUE(d.unified_l1);  // Turing: unified L1 caches global loads
}

TEST(DevicePresets, LookupByNameAndAliases) {
  EXPECT_EQ(device_by_name("gtx1080ti").name, "gtx1080ti");
  EXPECT_EQ(device_by_name("pascal").name, "gtx1080ti");
  EXPECT_EQ(device_by_name("rtx2080").name, "rtx2080");
  EXPECT_EQ(device_by_name("turing").name, "rtx2080");
  EXPECT_THROW(device_by_name("h100"), std::invalid_argument);
}

TEST(Occupancy, WarpLimited) {
  const auto d = gtx1080ti();
  LaunchConfig cfg;
  cfg.block = 512;  // 16 warps
  cfg.regs_per_thread = 16;
  const auto occ = compute_occupancy(d, cfg);
  EXPECT_EQ(occ.blocks_per_sm, 4);  // 64 warp slots / 16 warps per block
  EXPECT_EQ(occ.active_warps_per_sm, 64);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  const auto d = gtx1080ti();
  LaunchConfig cfg;
  cfg.block = 256;
  cfg.regs_per_thread = 64;  // 16384 regs per block -> 4 blocks
  const auto occ = compute_occupancy(d, cfg);
  EXPECT_EQ(occ.blocks_per_sm, 4);
  EXPECT_EQ(occ.limiter, "registers");
  EXPECT_EQ(occ.active_warps_per_sm, 32);
}

TEST(Occupancy, SmemLimited) {
  const auto d = gtx1080ti();
  LaunchConfig cfg;
  cfg.block = 64;
  cfg.regs_per_thread = 16;
  cfg.smem_bytes = 32 * 1024;  // 96KB / 32KB = 3 blocks
  const auto occ = compute_occupancy(d, cfg);
  EXPECT_EQ(occ.blocks_per_sm, 3);
  EXPECT_EQ(occ.limiter, "smem");
}

TEST(Occupancy, TuringWarpSlotsHalved) {
  const auto d = rtx2080();
  LaunchConfig cfg;
  cfg.block = 1024;
  cfg.regs_per_thread = 16;
  const auto occ = compute_occupancy(d, cfg);
  EXPECT_EQ(occ.active_warps_per_sm, 32);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);  // 32/32 slots
}

TEST(Occupancy, FractionAlwaysInUnitInterval) {
  for (const auto& d : {gtx1080ti(), rtx2080()}) {
    for (int block : {32, 64, 128, 256, 512, 1024}) {
      for (int regs : {16, 32, 64, 128}) {
        for (std::size_t smem : {std::size_t{0}, std::size_t{4096}, std::size_t{48 * 1024}}) {
          LaunchConfig cfg;
          cfg.block = block;
          cfg.regs_per_thread = regs;
          cfg.smem_bytes = smem;
          const auto occ = compute_occupancy(d, cfg);
          EXPECT_GE(occ.fraction, 0.0);
          EXPECT_LE(occ.fraction, 1.0);
          EXPECT_LE(occ.active_warps_per_sm, d.max_warps_per_sm);
        }
      }
    }
  }
}

TEST(SectorCache, HitsOnRepeatedLine) {
  SectorCache c;
  c.configure(64);
  EXPECT_FALSE(c.access(0));      // cold miss
  EXPECT_TRUE(c.access(32));      // same 128B line
  EXPECT_TRUE(c.access(96));      // still same line
  EXPECT_FALSE(c.access(128));    // next line
  EXPECT_TRUE(c.access(128 + 4)); // hit
}

TEST(SectorCache, DirectMappedConflictEvicts) {
  SectorCache c;
  c.configure(4);  // 4 lines of 128B; addresses 0 and 4*128 collide
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(4 * 128));
  EXPECT_FALSE(c.access(0));  // evicted by the conflicting line
}

TEST(SectorCache, EpochInvalidatesWithoutMemset) {
  SectorCache c;
  c.configure(64);
  EXPECT_FALSE(c.access(256));
  EXPECT_TRUE(c.access(256));
  c.new_epoch();
  EXPECT_FALSE(c.access(256));  // cold again
}

TEST(SectorCache, ZeroLinesNeverHits) {
  SectorCache c;
  c.configure(0);
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(0));
}

}  // namespace
}  // namespace gespmm::gpusim
