/// CSR container, conversions, normalizations and generators.

#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"

namespace gespmm::sparse {
namespace {

Csr paper_example() {
  // The matrix of the paper's Fig. 4:
  //   row0: (1,a) (2,b); row1: (0,c); row2: (1,d) (2,e) (3,f); row3: (2,g)
  std::vector<index_t> r{0, 0, 1, 2, 2, 2, 3};
  std::vector<index_t> c{1, 2, 0, 1, 2, 3, 2};
  std::vector<value_t> v{1, 2, 3, 4, 5, 6, 7};
  return csr_from_triplets(4, 4, r, c, v);
}

TEST(Csr, Fig4RepresentationMatchesPaper) {
  const Csr a = paper_example();
  EXPECT_EQ(a.rowptr, (std::vector<index_t>{0, 2, 3, 6, 7}));
  EXPECT_EQ(a.colind, (std::vector<index_t>{1, 2, 0, 1, 2, 3, 2}));
  EXPECT_EQ(a.nnz(), 7);
  EXPECT_NO_THROW(a.validate());
  EXPECT_TRUE(a.rows_sorted());
}

TEST(Csr, TripletsMergeDuplicates) {
  std::vector<index_t> r{0, 0, 0};
  std::vector<index_t> c{1, 1, 2};
  std::vector<value_t> v{1.0f, 2.0f, 4.0f};
  const Csr a = csr_from_triplets(2, 4, r, c, v);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_FLOAT_EQ(a.val[0], 3.0f);
  EXPECT_FLOAT_EQ(a.val[1], 4.0f);
}

TEST(Csr, TripletsRejectOutOfRange) {
  std::vector<index_t> r{0}, c{5};
  std::vector<value_t> v{1.0f};
  EXPECT_THROW(csr_from_triplets(2, 4, r, c, v), std::runtime_error);
}

TEST(Csr, ValidateCatchesBrokenRowptr) {
  Csr a = paper_example();
  a.rowptr[2] = 99;
  EXPECT_THROW(a.validate(), std::runtime_error);
}

TEST(Csr, ValidateCatchesColumnOutOfRange) {
  Csr a = paper_example();
  a.colind[0] = 42;
  EXPECT_THROW(a.validate(), std::runtime_error);
}

TEST(Csr, TransposeIsInvolution) {
  const Csr a = uniform_random(100, 80, 600, 5);
  const Csr tt = transpose(transpose(a));
  EXPECT_EQ(a, tt);
}

TEST(Csr, TransposeMovesEntries) {
  const Csr a = paper_example();
  const Csr t = transpose(a);
  EXPECT_EQ(t.rows, 4);
  // a(0,1)=1 must appear as t(1,0)=1.
  bool found = false;
  for (index_t p = t.rowptr[1]; p < t.rowptr[2]; ++p) {
    if (t.colind[static_cast<std::size_t>(p)] == 0) {
      EXPECT_FLOAT_EQ(t.val[static_cast<std::size_t>(p)], 1.0f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Csr, CooRoundTrip) {
  const Csr a = uniform_random(50, 50, 300, 6);
  EXPECT_EQ(coo_to_csr(csr_to_coo(a)), a);
}

TEST(Csr, GcnNormalizeRowsOfSymmetricGraphSumBelowOne) {
  const Csr a = uniform_random(64, 64, 256, 7);
  const Csr n = gcn_normalize(a);
  EXPECT_EQ(n.rows, a.rows);
  // Every diagonal entry exists (A + I).
  for (index_t i = 0; i < n.rows; ++i) {
    bool diag = false;
    for (index_t p = n.rowptr[static_cast<std::size_t>(i)];
         p < n.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      if (n.colind[static_cast<std::size_t>(p)] == i) diag = true;
      EXPECT_GT(n.val[static_cast<std::size_t>(p)], 0.0f);
      EXPECT_LE(n.val[static_cast<std::size_t>(p)], 1.0f + 1e-6f);
    }
    EXPECT_TRUE(diag) << "row " << i;
  }
}

TEST(Csr, RowNormalizeMakesRowsSumToOne) {
  const Csr a = uniform_random(64, 64, 400, 8);
  const Csr n = row_normalize(a);
  for (index_t i = 0; i < n.rows; ++i) {
    double sum = 0.0;
    for (index_t p = n.rowptr[static_cast<std::size_t>(i)];
         p < n.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      sum += n.val[static_cast<std::size_t>(p)];
    }
    if (a.row_nnz(i) > 0) {
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

TEST(Csr, DegreeStatsConsistent) {
  const Csr a = uniform_random(128, 128, 1024, 9);
  const auto s = degree_stats(a);
  EXPECT_LE(s.min, s.max);
  EXPECT_NEAR(s.mean, a.avg_row_nnz(), 1e-9);
  EXPECT_GE(s.stddev, 0.0);
}

TEST(Generators, UniformRandomIsDeterministicAndInRange) {
  const Csr a = uniform_random(1000, 1000, 8000, 42);
  const Csr b = uniform_random(1000, 1000, 8000, 42);
  EXPECT_EQ(a, b);
  EXPECT_NO_THROW(a.validate());
  // Dedup shrinks slightly; must stay close to target.
  EXPECT_GT(a.nnz(), 7800);
  EXPECT_LE(a.nnz(), 8000);
  for (value_t v : a.val) {
    EXPECT_GE(v, 0.25f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  EXPECT_NE(uniform_random(100, 100, 500, 1), uniform_random(100, 100, 500, 2));
}

TEST(Generators, RmatIsSkewed) {
  const Csr a = rmat(12, 8.0, 0.55, 0.2, 0.2, 10);
  const auto s = degree_stats(a);
  EXPECT_GT(s.max, 4 * s.mean) << "RMAT should produce heavy-tailed degrees";
  EXPECT_NO_THROW(a.validate());
}

TEST(Generators, RmatRejectsBadProbabilities) {
  EXPECT_THROW(rmat(8, 4.0, 0.6, 0.3, 0.3, 1), std::runtime_error);
}

TEST(Generators, GridRoadHasLowUniformDegree) {
  const Csr a = grid_road(10000, 0.0, 11);
  const auto s = degree_stats(a);
  EXPECT_LE(s.max, 4);
  EXPECT_GE(s.mean, 2.0);
  EXPECT_LE(s.mean, 4.0);
}

TEST(Generators, CitationGraphHasMildSkewAndNoSelfLoops) {
  const Csr a = citation_graph(5000, 25000, 12);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      EXPECT_NE(a.colind[static_cast<std::size_t>(p)], i) << "self loop at " << i;
    }
  }
  const auto t = transpose(a);
  const auto s = degree_stats(t);  // in-degree skew from preferential attachment
  EXPECT_GT(s.max, 2 * s.mean);
}

}  // namespace
}  // namespace gespmm::sparse
