/// Validation of the engine's documented approximations: the per-block L2
/// slice (parallel engine) against the exact sequential shared-L2 model,
/// and dropout semantics in the GNN engine.

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/autograd.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmm_crc.hpp"
#include "kernels/spmm_naive.hpp"
#include "sparse/generators.hpp"

namespace gespmm {
namespace {

using kernels::SpmmProblem;

TEST(SharedL2Validation, PerBlockSliceApproximatesSharedL2AtPaperScale) {
  // The default engine models L2 per block (a device-L2 slice); the
  // sequential mode keeps one full-size shared L2 warm across blocks. At
  // the paper's evaluation scale the dense operand far exceeds L2
  // (65K x 512 x 4B = 133 MB vs 2.75 MB), so cross-block reuse is rare and
  // the approximation must agree on DRAM traffic within a modest bound.
  const auto a = sparse::uniform_random(65536, 65536, 655360, 600);
  const auto dev = gpusim::gtx1080ti();
  const auto policy = gpusim::SamplePolicy::sampled(2048);
  SpmmProblem p(a, 128);
  kernels::SpmmCrcKernel<> k(p);
  const auto par = gpusim::launch(dev, k, policy);
  const auto seq = gpusim::launch_sequential_shared_l2(dev, k, policy);
  // Identical access streams -> identical transaction counts.
  EXPECT_EQ(par.metrics.gld_transactions, seq.metrics.gld_transactions);
  const double rel =
      std::abs(static_cast<double>(par.metrics.dram_transactions) -
               static_cast<double>(seq.metrics.dram_transactions)) /
      static_cast<double>(seq.metrics.dram_transactions);
  EXPECT_LT(rel, 0.15) << "per-block L2 slice deviates from shared L2 at paper scale";
}

TEST(SharedL2Validation, SmallWorkingSetsExposeTheApproximation) {
  // Known limitation (documented in DESIGN.md): when B fits in L2
  // entirely, a warm shared L2 serves most dense loads and the per-block
  // slice overestimates DRAM traffic. The exact mode exists precisely to
  // quantify this.
  const auto a = sparse::uniform_random(4096, 4096, 32768, 601);
  const auto dev = gpusim::gtx1080ti();
  SpmmProblem p(a, 128);  // B = 2 MB < 2.75 MB L2
  kernels::SpmmCrcKernel<> k(p);
  const auto par = gpusim::launch(dev, k);
  const auto seq = gpusim::launch_sequential_shared_l2(dev, k);
  EXPECT_LT(seq.metrics.dram_transactions, par.metrics.dram_transactions)
      << "warm shared L2 must expose more reuse on a cache-resident problem";
}

TEST(SharedL2Validation, SequentialModeIsDeterministic) {
  const auto a = sparse::rmat(9, 8.0, 0.5, 0.2, 0.2, 601);
  const auto dev = gpusim::rtx2080();
  SpmmProblem p(a, 64);
  kernels::SpmmCrcKernel<> k(p);
  const auto r1 = gpusim::launch_sequential_shared_l2(dev, k);
  const auto r2 = gpusim::launch_sequential_shared_l2(dev, k);
  EXPECT_EQ(r1.metrics.dram_transactions, r2.metrics.dram_transactions);
  EXPECT_EQ(r1.metrics.l2_hits, r2.metrics.l2_hits);
}

TEST(Dropout, MasksAndScales) {
  gnn::Engine eng(gpusim::gtx1080ti());
  gnn::VarPtr x = eng.param(gnn::Tensor(100, 50, 1.0f));
  eng.zero_grad_and_tape();
  gnn::VarPtr y = eng.dropout(x, 0.5, 42);
  int zeros = 0, scaled = 0;
  for (auto v : y->value.flat()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - 0.5)
      ++scaled;
    }
  }
  const double drop_rate = static_cast<double>(zeros) / (zeros + scaled);
  EXPECT_NEAR(drop_rate, 0.5, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  gnn::Engine eng(gpusim::gtx1080ti());
  gnn::VarPtr x = eng.param(gnn::Tensor(20, 10, 1.0f));
  eng.zero_grad_and_tape();
  gnn::VarPtr y = eng.dropout(x, 0.3, 7);
  // Seed grad with ones and backprop.
  for (auto& g : y->grad.flat()) g = 1.0f;
  eng.backward();
  for (std::size_t i = 0; i < x->grad.size(); ++i) {
    if (y->value.flat()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(x->grad.flat()[i], 0.0f);
    } else {
      EXPECT_NEAR(x->grad.flat()[i], 1.0f / 0.7f, 1e-5);
    }
  }
}

TEST(Dropout, RejectsInvalidProbability) {
  gnn::Engine eng(gpusim::gtx1080ti());
  gnn::VarPtr x = eng.input(gnn::Tensor(4, 4));
  EXPECT_THROW(eng.dropout(x, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(eng.dropout(x, -0.1, 1), std::invalid_argument);
}

TEST(Dropout, DeterministicPerSeed) {
  gnn::Engine eng(gpusim::gtx1080ti());
  gnn::VarPtr x = eng.input(gnn::Tensor(30, 30, 1.0f));
  gnn::VarPtr a = eng.dropout(x, 0.4, 99);
  gnn::VarPtr b = eng.dropout(x, 0.4, 99);
  gnn::VarPtr c = eng.dropout(x, 0.4, 100);
  bool same_ab = true, same_ac = true;
  for (std::size_t i = 0; i < a->value.size(); ++i) {
    same_ab &= a->value.flat()[i] == b->value.flat()[i];
    same_ac &= a->value.flat()[i] == c->value.flat()[i];
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

}  // namespace
}  // namespace gespmm
