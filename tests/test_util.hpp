#pragma once
/// Shared helpers for the test suite.

#include <gtest/gtest.h>

#include "kernels/dense.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spmm_host.hpp"
#include "kernels/spmm_problem.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"

namespace gespmm::testutil {

using kernels::DenseMatrix;
using kernels::Layout;
using kernels::ReduceKind;
using sparse::Csr;
using sparse::index_t;
using sparse::value_t;

/// A small, structurally diverse zoo of matrices for correctness sweeps.
inline Csr zoo_uniform() { return sparse::uniform_random(200, 200, 2000, 1); }
inline Csr zoo_skewed() { return sparse::rmat(9, 8.0, 0.5, 0.2, 0.2, 2); }
inline Csr zoo_wide_row() {
  // One row with ~1000 nnz (exceeds many CRC tiles), plus sparse rest.
  Csr a = sparse::uniform_random(64, 512, 300, 3);
  std::vector<index_t> r, c;
  std::vector<value_t> v;
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      r.push_back(i);
      c.push_back(a.colind[static_cast<std::size_t>(p)]);
      v.push_back(a.val[static_cast<std::size_t>(p)]);
    }
  }
  for (index_t j = 0; j < 500; ++j) {
    r.push_back(5);
    c.push_back(j);
    v.push_back(0.5f + 0.001f * static_cast<value_t>(j));
  }
  return sparse::csr_from_triplets(64, 512, r, c, v);
}
inline Csr zoo_empty_rows() {
  // Rows 0, 3, 7 empty.
  std::vector<index_t> r{1, 1, 2, 4, 5, 6, 6, 6};
  std::vector<index_t> c{0, 3, 2, 1, 7, 0, 4, 6};
  std::vector<value_t> v{1, 2, 3, 4, 5, 6, 7, 8};
  return sparse::csr_from_triplets(8, 8, r, c, v);
}
inline Csr zoo_single_entry() {
  std::vector<index_t> r{0}, c{0};
  std::vector<value_t> v{2.5f};
  return sparse::csr_from_triplets(1, 1, r, c, v);
}
inline Csr zoo_all_empty() { return Csr(6, 6); }

/// The whole zoo as a named list, for sweeps that report per-case failures.
struct ZooCase {
  std::string name;
  Csr matrix;
};
inline std::vector<ZooCase> zoo_cases() {
  return {{"uniform", zoo_uniform()},         {"skewed", zoo_skewed()},
          {"wide_row", zoo_wide_row()},       {"empty_rows", zoo_empty_rows()},
          {"single_entry", zoo_single_entry()}, {"all_empty", zoo_all_empty()}};
}

/// Reference comparison with mixed-order float tolerance.
inline void expect_matches_reference(const Csr& a, const DenseMatrix& b,
                                     const DenseMatrix& c, ReduceKind kind,
                                     double tol = 2e-4) {
  DenseMatrix ref(a.rows, b.cols());
  kernels::spmm_host_reference(a, b, ref, kind);
  double worst = 0.0;
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      const double d = std::abs(static_cast<double>(c.at(i, j)) - ref.at(i, j));
      const double scale = std::max(1.0, std::abs(static_cast<double>(ref.at(i, j))));
      worst = std::max(worst, d / scale);
    }
  }
  EXPECT_LE(worst, tol) << "kernel output deviates from reference";
}

}  // namespace gespmm::testutil
