/// Autograd engine: numerical gradient checks through every operator and
/// through the aggregation backends, plus profiler accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/autograd.hpp"
#include "sparse/generators.hpp"

namespace gespmm::gnn {
namespace {

sparse::Csr small_graph() { return sparse::uniform_random(12, 12, 50, 404); }

/// Finite-difference check of d(loss)/d(param) for a builder function that
/// reconstructs the computation from a parameter tensor.
template <typename BuildFn>
void grad_check(Tensor param0, BuildFn&& build, double tol = 2e-2) {
  Engine eng(gpusim::gtx1080ti());
  VarPtr p = eng.param(param0);
  auto loss_of = [&](Engine& e, const VarPtr& pv) { return build(e, pv); };

  eng.zero_grad_and_tape();
  const double base = loss_of(eng, p);
  eng.backward();
  const Tensor analytic = p->grad;

  const float eps = 1e-2f;
  for (index_t i = 0; i < param0.rows(); ++i) {
    for (index_t j = 0; j < param0.cols(); ++j) {
      Engine e2(gpusim::gtx1080ti());
      Tensor bumped = param0;
      bumped.at(i, j) += eps;
      VarPtr p2 = e2.param(bumped);
      e2.zero_grad_and_tape();
      const double up = loss_of(e2, p2);
      const double fd = (up - base) / eps;
      EXPECT_NEAR(fd, analytic.at(i, j), tol)
          << "at (" << i << "," << j << ")";
    }
  }
}

std::vector<int> labels12() { return {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}; }

TEST(Autograd, MatmulBiasReluChainGradCheck) {
  const Tensor x0 = Tensor::glorot(12, 5, 1);
  grad_check(Tensor::glorot(5, 3, 2), [&](Engine& e, const VarPtr& w) {
    VarPtr x = e.input(x0);
    VarPtr b = e.param(Tensor(1, 3, 0.05f));
    VarPtr out = e.relu(e.add_bias(e.matmul(x, w), b));
    const auto labels = labels12();
    return e.softmax_cross_entropy(out, labels).loss;
  });
}

TEST(Autograd, AggregateSumGradCheck) {
  const auto g = small_graph();
  GnnGraph graph(g, gpusim::gtx1080ti());
  grad_check(Tensor::glorot(12, 3, 3), [&](Engine& e, const VarPtr& x) {
    VarPtr out = e.aggregate(graph, x, AggregatorBackend::GeSpMM, ReduceKind::Sum);
    const auto labels = labels12();
    return e.softmax_cross_entropy(out, labels).loss;
  });
}

TEST(Autograd, AggregateMaxGradCheck) {
  const auto g = small_graph();
  GnnGraph graph(g, gpusim::gtx1080ti());
  grad_check(Tensor::glorot(12, 3, 4), [&](Engine& e, const VarPtr& x) {
    VarPtr out = e.aggregate(graph, x, AggregatorBackend::GeSpMM, ReduceKind::Max);
    const auto labels = labels12();
    return e.softmax_cross_entropy(out, labels).loss;
  });
}

TEST(Autograd, ConcatGradCheck) {
  const Tensor x0 = Tensor::glorot(12, 2, 5);
  grad_check(Tensor::glorot(12, 1, 6), [&](Engine& e, const VarPtr& p) {
    VarPtr x = e.input(x0);
    VarPtr cat = e.concat(x, p);  // 12 x 3
    const auto labels = labels12();
    return e.softmax_cross_entropy(cat, labels).loss;
  });
}

TEST(Autograd, BackwardAccumulatesIntoSharedParam) {
  // Using the same parameter twice must sum both gradient paths.
  Engine eng(gpusim::gtx1080ti());
  VarPtr w = eng.param(Tensor::glorot(4, 4, 7));
  VarPtr x = eng.input(Tensor::glorot(12, 4, 8));
  eng.zero_grad_and_tape();
  VarPtr a = eng.matmul(x, w);
  VarPtr b = eng.matmul(x, w);
  VarPtr sum = eng.add_bias(a, eng.param(Tensor(1, 4)));
  (void)b;
  const auto labels = labels12();
  eng.softmax_cross_entropy(sum, labels);
  eng.backward();
  // b contributes no loss, so its grad path is zero; the shared w still
  // received a's contribution once — the point is no crash and finite
  // values with repeated use.
  for (auto v : w->grad.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Autograd, ProfilerRecordsForwardAndBackwardOps) {
  const auto g = small_graph();
  GnnGraph graph(g, gpusim::gtx1080ti());
  Engine eng(gpusim::gtx1080ti());
  VarPtr w = eng.param(Tensor::glorot(6, 3, 9));
  VarPtr x = eng.input(Tensor::glorot(12, 6, 10));
  eng.zero_grad_and_tape();
  VarPtr h = eng.matmul(x, w);
  VarPtr out = eng.aggregate(graph, h, AggregatorBackend::GeSpMM, ReduceKind::Sum);
  const auto labels = labels12();
  eng.softmax_cross_entropy(out, labels);
  eng.backward();

  const auto& prof = eng.profiler();
  EXPECT_GT(prof.total_ms(OpKind::Gemm), 0.0);
  EXPECT_GT(prof.total_ms(OpKind::Spmm), 0.0);
  EXPECT_GT(prof.total_ms(OpKind::LossSoftmax), 0.0);
  // Forward spmm + backward spmm both recorded.
  bool fwd = false, bwd = false;
  for (const auto& r : prof.rows()) {
    if (r.name.find("aggregate.ge-spmm") == 0) fwd = true;
    if (r.name.find("aggregate.bwd") == 0) bwd = true;
  }
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(bwd);
  // Percentages sum to ~100.
  double pct = 0.0;
  for (const auto& r : prof.rows()) pct += r.percent;
  EXPECT_NEAR(pct, 100.0, 0.5);
  EXPECT_FALSE(prof.report().empty());
}

TEST(Autograd, AdamReducesLossOnTinyProblem) {
  Engine eng(gpusim::gtx1080ti());
  VarPtr w = eng.param(Tensor::glorot(5, 3, 11));
  VarPtr b = eng.param(Tensor(1, 3));
  const Tensor x0 = Tensor::glorot(12, 5, 12);
  const auto labels = labels12();
  Adam opt(eng, 5e-2);
  double first = 0.0, last = 0.0;
  for (int it = 0; it < 30; ++it) {
    eng.zero_grad_and_tape();
    VarPtr out = eng.add_bias(eng.matmul(eng.input(x0), w), b);
    const auto res = eng.softmax_cross_entropy(out, labels);
    eng.backward();
    opt.step();
    if (it == 0) first = res.loss;
    last = res.loss;
  }
  EXPECT_LT(last, first * 0.7) << "Adam failed to reduce the loss";
}

TEST(GnnGraph, AggregationTimeCacheIsStableAndBackendSensitive) {
  const auto g = sparse::uniform_random(2000, 2000, 20000, 405);
  GnnGraph graph(g, gpusim::gtx1080ti());
  const double t1 =
      graph.aggregation_time_ms(AggregatorBackend::GeSpMM, ReduceKind::Sum, 64, false);
  const double t2 =
      graph.aggregation_time_ms(AggregatorBackend::GeSpMM, ReduceKind::Sum, 64, false);
  EXPECT_DOUBLE_EQ(t1, t2);  // cached
  const double dgl = graph.aggregation_time_ms(AggregatorBackend::DglCusparse,
                                               ReduceKind::Sum, 64, false);
  EXPECT_GT(dgl, t1) << "csrmm2 + transpose must cost more than GE-SpMM";
  const double pyg = graph.aggregation_time_ms(AggregatorBackend::PyGMessagePassing,
                                               ReduceKind::Sum, 64, false);
  EXPECT_GT(pyg, t1) << "materialized message passing must cost more than fused SpMM";
}

}  // namespace
}  // namespace gespmm::gnn
