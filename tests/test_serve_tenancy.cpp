/// Multi-tenant serving contracts: deadline admission goldens and their
/// precedence over occupancy shedding, deadline-met boundary semantics on
/// the virtual clock, tenant roster validation, weighted-DRR fairness
/// (scheduler goldens plus a property sweep), per-tenant stats, and the
/// EngineStats counting-contract golden.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/gespmm.hpp"
#include "serve/engine.hpp"
#include "sparse/rng.hpp"
#include "test_util.hpp"

namespace gespmm {
namespace {

using serve::AdmissionOptions;
using serve::Engine;
using serve::GraphId;
using serve::Priority;
using serve::SchedRequest;
using serve::Scheduler;
using serve::SchedulerOptions;
using serve::ServeOptions;
using serve::ShedReason;
using serve::TenantConfig;
using serve::Ticket;

DenseMatrix features(index_t rows, index_t cols, std::uint64_t seed) {
  DenseMatrix b(rows, cols);
  kernels::fill_random(b, seed);
  return b;
}

/// One-device, one-worker, paused options (deterministic batches).
ServeOptions det_opts() {
  ServeOptions opt;
  opt.devices = {gpusim::gtx1080ti()};
  opt.num_workers = 1;
  opt.start_paused = true;
  opt.plan.sample_blocks = 256;
  return opt;
}

// ---------------------------------------------------------------------------
// Deadline admission: pure-policy goldens.

TEST(DeadlineAdmission, ExpiredDeadlineShedsBeforeOccupancy) {
  AdmissionOptions opt;
  opt.max_pending = 4;
  // Queue hard-full AND deadline expired: the deadline verdict wins, for
  // every class — the request could never complete, whatever the queue.
  for (auto p : {Priority::Interactive, Priority::Batch,
                 Priority::BestEffort}) {
    const auto d = serve::admit_request(p, /*pending=*/4, opt, {},
                                        /*deadline_ms=*/1.0, /*now_ms=*/2.0);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, ShedReason::DeadlineExceeded);
  }
  // Same occupancy, live deadline: the usual queue-full shed.
  const auto d = serve::admit_request(Priority::Interactive, 4, opt, {},
                                      /*deadline_ms=*/9.0, /*now_ms=*/2.0);
  EXPECT_EQ(d.reason, ShedReason::QueueFull);
}

TEST(DeadlineAdmission, BoundaryGoldens) {
  const AdmissionOptions opt;  // empty queue: only the deadline can shed
  // deadline == now is already too late (completion stamps are >= now).
  EXPECT_EQ(serve::admit_request(Priority::Interactive, 0, opt, {}, 5.0, 5.0)
                .reason,
            ShedReason::DeadlineExceeded);
  // A deadline any amount ahead of the clock admits.
  EXPECT_TRUE(serve::admit_request(Priority::Interactive, 0, opt, {},
                                   5.0 + 1e-9, 5.0)
                  .admitted);
  // 0 means "no deadline", even with the clock far along.
  EXPECT_TRUE(
      serve::admit_request(Priority::Interactive, 0, opt, {}, 0.0, 1e9)
          .admitted);
}

TEST(DeadlineAdmission, ControllerCountsDeadlineSheds) {
  serve::AdmissionController ctl({.max_pending = 4});
  ctl.admit(Priority::Interactive, 0);                      // admitted
  ctl.admit(Priority::Batch, 0, {}, /*deadline=*/1.0, 2.0); // deadline shed
  ctl.admit(Priority::BestEffort, 4);                       // queue-full shed
  EXPECT_EQ(ctl.stats().total_admitted(), 1u);
  EXPECT_EQ(ctl.stats().total_shed(), 2u);
  EXPECT_EQ(ctl.stats().shed_deadline, 1u);
  EXPECT_EQ(ctl.stats().shed_queue_full, 1u);
}

// ---------------------------------------------------------------------------
// Deadlines on the live engine's virtual clock.

TEST(DeadlineEngine, ExpiredAtSubmitShedsWithTypedStatus) {
  Engine eng(det_opts());
  const Csr a = sparse::uniform_random(256, 256, 2048, 611);
  const GraphId id = eng.register_graph(a);

  // Advance the virtual clock by completing one request.
  Ticket warm = eng.submit(id, features(a.cols, 16, 612));
  eng.start();
  const double now = warm.wait().completed_at_ms;
  ASSERT_GT(now, 0.0);
  EXPECT_EQ(eng.virtual_now_ms(), now);

  // A deadline at or before the clock sheds at submit: the ticket is
  // complete immediately, typed, and deadline_met is false.
  Ticket late = eng.submit(id, features(a.cols, 16, 613),
                           {.deadline_ms = now * 0.5});
  EXPECT_TRUE(late.ready());
  const auto& res = late.wait();
  EXPECT_EQ(res.status, serve::RequestStatus::Shed);
  EXPECT_EQ(res.shed_reason, ShedReason::DeadlineExceeded);
  EXPECT_FALSE(res.deadline_met);
  EXPECT_EQ(res.deadline_ms, now * 0.5);

  const auto st = eng.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.admission.shed_deadline, 1u);
  EXPECT_EQ(st.deadline_missed, 0u) << "shed requests never ran";
}

TEST(DeadlineEngine, CompletingExactlyAtDeadlineIsMet) {
  const Csr a = sparse::uniform_random(256, 256, 2048, 620);

  // Learn the deterministic completion stamp on a throwaway engine.
  double stamp = 0.0;
  {
    Engine probe(det_opts());
    Ticket t = probe.submit(probe.register_graph(a), features(a.cols, 16, 621));
    probe.start();
    stamp = t.wait().completed_at_ms;
    ASSERT_GT(stamp, 0.0);
  }

  // Replay with the deadline exactly at the stamp: met (<=, not <).
  {
    Engine eng(det_opts());
    Ticket t = eng.submit(eng.register_graph(a), features(a.cols, 16, 621),
                          {.deadline_ms = stamp});
    eng.start();
    const auto& res = t.wait();
    ASSERT_EQ(res.status, serve::RequestStatus::Ok);
    EXPECT_EQ(res.completed_at_ms, stamp) << "replay must be deterministic";
    EXPECT_TRUE(res.deadline_met);
    EXPECT_EQ(eng.stats().deadline_missed, 0u);
  }

  // Replay with a deadline the clock passes mid-flight: admitted (it was
  // live at submit), served, but reported late.
  {
    Engine eng(det_opts());
    Ticket t = eng.submit(eng.register_graph(a), features(a.cols, 16, 621),
                          {.deadline_ms = stamp * 0.5});
    eng.start();
    const auto& res = t.wait();
    ASSERT_EQ(res.status, serve::RequestStatus::Ok);
    EXPECT_FALSE(res.deadline_met);
    EXPECT_EQ(eng.stats().deadline_missed, 1u);
  }
}

// ---------------------------------------------------------------------------
// Tenant roster validation.

TEST(Tenancy, UnknownTenantThrowsInvalidArgument) {
  Engine eng(det_opts());  // roster: {"default"}
  const Csr a = testutil::zoo_empty_rows();
  const GraphId id = eng.register_graph(a);
  EXPECT_THROW(eng.submit(id, features(a.cols, 4, 700), {.tenant = "nope"}),
               std::invalid_argument);
  // The failed submit counted nowhere.
  EXPECT_EQ(eng.stats().submitted, 0u);
  EXPECT_EQ(eng.stats().shed, 0u);
}

TEST(Tenancy, RosterValidationAtConstruction) {
  auto with_share = [](double s) {
    ServeOptions opt = det_opts();
    opt.tenants = {{"t", {.share = s}}};
    return opt;
  };
  EXPECT_THROW(Engine{with_share(0.0)}, std::invalid_argument);
  EXPECT_THROW(Engine{with_share(-1.0)}, std::invalid_argument);
  EXPECT_THROW(Engine{with_share(std::numeric_limits<double>::quiet_NaN())},
               std::invalid_argument);
  EXPECT_THROW(Engine{with_share(std::numeric_limits<double>::infinity())},
               std::invalid_argument);

  ServeOptions empty = det_opts();
  empty.tenants.clear();
  EXPECT_THROW(Engine{empty}, std::invalid_argument);

  EXPECT_NO_THROW(Engine{with_share(0.25)});
}

TEST(Tenancy, SchedulerRejectsInvalidShares) {
  SchedulerOptions opt;
  opt.tenant_shares = {1.0, 0.0};
  EXPECT_THROW(Scheduler{opt}, std::invalid_argument);
  opt.tenant_shares = {1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(Scheduler{opt}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Weighted DRR: scheduler-level golden + property sweep.

TEST(WeightedDrr, SharesScaleServedWidthGolden) {
  SchedulerOptions opt;
  opt.quantum = 32;
  opt.tenant_shares = {3.0, 1.0};  // tenant 0 earns 96/visit, tenant 1: 32
  Scheduler sched(opt);

  // Two backlogged (same-graph, different-tenant) queues of width-32
  // requests: per ring rotation tenant 0 ships 3 requests' width for
  // tenant 1's one.
  std::uint64_t seq = 0;
  for (int i = 0; i < 12; ++i) {
    sched.enqueue({seq, /*graph=*/1, /*n=*/32, ReduceKind::Sum,
                   Priority::Interactive, false, /*tenant=*/0});
    ++seq;
    sched.enqueue({seq, 1, 32, ReduceKind::Sum, Priority::Interactive, false,
                   /*tenant=*/1});
    ++seq;
  }

  // Drain the first rotations and tally width per tenant while both
  // queues stay backlogged (stop before either runs dry).
  std::uint64_t width0 = 0, width1 = 0;
  while (width0 + width1 < 32 * 12) {
    const auto batch = sched.next_batch();
    ASSERT_FALSE(batch.empty());
    for (std::uint64_t s : batch) {
      (s % 2 == 0 ? width0 : width1) += 32;  // even seqs = tenant 0
    }
  }
  EXPECT_EQ(width0, 32u * 9u);
  EXPECT_EQ(width1, 32u * 3u);
}

TEST(WeightedDrr, PropertySweepServesProportionallyUnderBacklog) {
  // Random widths, three tenants with shares 1/2/4: over a long
  // backlogged window each tenant's served width tracks its share.
  sparse::SplitMix64 rng(0xfa1234);
  SchedulerOptions opt;
  opt.quantum = 64;
  opt.tenant_shares = {1.0, 2.0, 4.0};
  Scheduler sched(opt);

  std::vector<std::uint32_t> tenant_of;
  std::uint64_t seq = 0;
  for (int i = 0; i < 600; ++i) {
    const auto tenant = static_cast<std::uint32_t>(rng.next_below(3));
    const auto n = static_cast<index_t>(1 + rng.next_below(48));
    sched.enqueue({seq, /*graph=*/7, n, ReduceKind::Sum, Priority::Batch,
                   false, tenant});
    tenant_of.push_back(tenant);
    ++seq;
  }

  // Serve roughly half the backlog so every queue stays non-empty, then
  // compare per-tenant served width against the share-implied split.
  const auto before = sched.pending();
  while (sched.pending() > before / 2) {
    ASSERT_FALSE(sched.next_batch().empty());
  }
  double width[3] = {0, 0, 0};
  for (const auto& g : sched.stats()) {
    width[g.tenant] += static_cast<double>(g.served_width);
  }
  const double total = width[0] + width[1] + width[2];
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(width[0] / total, 1.0 / 7.0, 0.06);
  EXPECT_NEAR(width[1] / total, 2.0 / 7.0, 0.06);
  EXPECT_NEAR(width[2] / total, 4.0 / 7.0, 0.06);
}

TEST(WeightedDrr, SingleDefaultTenantMatchesUnweightedGolden) {
  // share-1.0 single tenant must reproduce the unweighted scheduler's
  // batch sequence exactly (the bitwise back-compat contract).
  auto run = [](std::vector<double> shares) {
    SchedulerOptions opt;
    opt.quantum = 64;
    opt.tenant_shares = std::move(shares);
    Scheduler sched(opt);
    sparse::SplitMix64 rng(0xbeef);
    for (std::uint64_t s = 0; s < 200; ++s) {
      sched.enqueue({s, 1 + rng.next_below(3),
                     static_cast<index_t>(1 + rng.next_below(32)),
                     ReduceKind::Sum,
                     static_cast<Priority>(rng.next_below(3)), false, 0});
    }
    std::vector<std::vector<std::uint64_t>> seqs;
    while (!sched.empty()) seqs.push_back(sched.next_batch());
    return seqs;
  };
  EXPECT_EQ(run({}), run({1.0}));
}

// ---------------------------------------------------------------------------
// Per-tenant engine stats and the EngineStats counting contract.

TEST(Tenancy, PerTenantStatsPartitionTotals) {
  ServeOptions opt = det_opts();
  opt.tenants = {{"alpha", {.share = 3.0}}, {"beta", {.share = 1.0}}};
  opt.admission.max_pending = 4;
  Engine eng(opt);
  const Csr a = sparse::uniform_random(128, 128, 1024, 800);
  const GraphId id = eng.register_graph(a);

  // 2 alpha admits, 1 beta admit, then overflow sheds (queue fills at 4;
  // the 5th submit sheds queue-full on beta).
  (void)eng.submit(id, features(a.cols, 8, 801), {.tenant = "alpha"});
  (void)eng.submit(id, features(a.cols, 8, 802), {.tenant = "alpha"});
  (void)eng.submit(id, features(a.cols, 8, 803), {.tenant = "beta"});
  (void)eng.submit(id, features(a.cols, 8, 804), {.tenant = "beta"});
  Ticket shed = eng.submit(id, features(a.cols, 8, 805), {.tenant = "beta"});
  EXPECT_EQ(shed.wait().status, serve::RequestStatus::Shed);
  EXPECT_EQ(shed.wait().tenant, "beta");
  eng.shutdown();

  const auto st = eng.stats();
  ASSERT_EQ(st.tenants.size(), 2u);
  EXPECT_EQ(st.tenants[0].tenant, "alpha");  // sorted-name order
  EXPECT_EQ(st.tenants[1].tenant, "beta");
  EXPECT_EQ(st.tenants[0].share, 3.0);
  EXPECT_EQ(st.tenants[0].submitted, 2u);
  EXPECT_EQ(st.tenants[1].submitted, 2u);
  EXPECT_EQ(st.tenants[1].shed, 1u);
  EXPECT_EQ(st.tenants[0].shed, 0u);
  EXPECT_EQ(st.tenants[0].completed + st.tenants[1].completed, st.completed);
  EXPECT_EQ(st.tenants[0].submitted + st.tenants[1].submitted, st.submitted);
  EXPECT_EQ(st.tenants[0].shed + st.tenants[1].shed, st.shed);
  EXPECT_EQ(st.tenants[0].served_width, 16u);  // two width-8 requests
}

TEST(Tenancy, EngineStatsCountingContract) {
  // The golden that pins the EngineStats counting contract: every submit
  // lands in exactly one of submitted/shed, model_requests is a subset of
  // submitted (not a third bucket), admission totals agree, and after a
  // drain completed == submitted.
  ServeOptions opt = det_opts();
  opt.admission.max_pending = 6;
  Engine eng(opt);
  const Csr a = sparse::uniform_random(128, 128, 1024, 810);
  const GraphId id = eng.register_graph(a);
  const serve::ModelId mid = eng.register_model(
      id, serve::make_model_spec(serve::ServedModelKind::Gcn, 8, 8, 4, 2));

  // 4 plain admits + 2 model admits fill the queue; two more submits of
  // each kind shed queue-full. 8 calls total.
  for (int i = 0; i < 4; ++i) {
    (void)eng.submit(id, features(a.cols, 8, 811 + static_cast<std::uint64_t>(i)));
  }
  (void)eng.submit_model(mid, features(a.rows, 8, 815));
  (void)eng.submit_model(mid, features(a.rows, 8, 816));
  Ticket s1 = eng.submit(id, features(a.cols, 8, 817));
  Ticket s2 = eng.submit_model(mid, features(a.rows, 8, 818));
  EXPECT_EQ(s1.wait().status, serve::RequestStatus::Shed);
  EXPECT_EQ(s2.wait().status, serve::RequestStatus::Shed);
  eng.shutdown();  // drains the six admitted requests

  const auto st = eng.stats();
  EXPECT_EQ(st.submitted, 6u);
  EXPECT_EQ(st.shed, 2u);
  EXPECT_EQ(st.completed, st.submitted) << "drain completes every admit";
  EXPECT_EQ(st.model_requests, 2u) << "model admits only; subset of submitted";
  EXPECT_LE(st.model_requests, st.submitted);
  EXPECT_EQ(st.admission.total_admitted(), st.submitted);
  EXPECT_EQ(st.admission.total_shed(), st.shed);
  // Per-tenant rows partition the same totals (single default tenant).
  ASSERT_EQ(st.tenants.size(), 1u);
  EXPECT_EQ(st.tenants[0].submitted, st.submitted);
  EXPECT_EQ(st.tenants[0].completed, st.completed);
  EXPECT_EQ(st.tenants[0].shed, st.shed);
  // Every request ran on the single device exactly once (no sharding).
  ASSERT_EQ(st.devices.size(), 1u);
  EXPECT_EQ(st.devices[0].requests, st.completed);
}

}  // namespace
}  // namespace gespmm
