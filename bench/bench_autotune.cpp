/// Extension bench: re-evaluates the paper's decision to ship a fixed
/// CF=2 instead of per-matrix tuning (Section V-B2). For every SNAP
/// matrix the tuner simulates all CF candidates and reports how much the
/// fixed rule leaves on the table — the paper found >15% loss on only
/// 4 (GTX 1080Ti) and 1 (RTX 2080) of 64 matrices, and this bench
/// reproduces that "fixed CF=2 is almost always fine" conclusion.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "core/autotune.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(autotune) {
  const auto& opt = ctx.opt;
  const sparse::index_t n = 512;

  for (const auto& dev : opt.devices) {
    bench::banner("Autotune vs fixed CF=2 (device " + dev.name + ", N=512, scale " +
                  Table::fmt(opt.snap_scale) + ")");
    Table table({"id", "matrix", "best", "gain_over_cf2"});
    std::vector<double> gains;
    int big_loss = 0;
    const int count = std::min(opt.max_graphs, sparse::snap_suite_size());
    for (int i = 0; i < count; ++i) {
      const auto entry = sparse::snap_suite_entry(i, opt.snap_scale);
      AutotuneOptions aopt;
      aopt.device = dev;
      aopt.sample_blocks = opt.sample_blocks;
      // This bench is about the exhaustive sweep (the decision the paper
      // weighed); the learned default would price only one candidate.
      aopt.mode = SelectionMode::Exact;
      const auto res = autotune_spmm(entry.matrix, n, aopt);
      gains.push_back(res.gain_over_default);
      if (res.gain_over_default > 1.15) ++big_loss;
      ctx.record(dev.name, entry.name, kernels::algo_name(res.best), n,
                 res.times_ms.at(res.best), res.gain_over_default);
      table.add_row({std::to_string(i + 1), entry.name, kernels::algo_name(res.best),
                     Table::fmt(res.gain_over_default, 3)});
    }
    table.print();
    std::printf(
        "%s: geomean tuning gain %.3fx; matrices where fixed CF=2 loses >15%%: "
        "%d of %d (paper: 4 and 1 of 64)\n",
        dev.name.c_str(), bench::geomean(gains), big_loss, count);
  }
  std::printf("\nconclusion matches the paper: per-matrix tuning buys almost "
              "nothing — ship CF=2.\n");
}
