/// Shared entry point for every bench binary. Each bench_*.cpp registers
/// its body via GESPMM_BENCH; a per-bench executable links exactly one of
/// them, while `bench_all` links the whole set and runs it in-process with
/// a single shared Reporter (so `--json` covers every bench in one file).

#include "bench_common/registry.hpp"

int main(int argc, char** argv) {
  return gespmm::bench::run_registered_benches(argc, argv);
}
