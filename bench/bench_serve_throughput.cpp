/// Extension bench: the serving engine's case for batching + plan caching.
///
/// Workload: the three citation graphs (paper Table IV) each receive 48
/// width-16 inference requests, arrival-interleaved across graphs — the
/// repeated-SpMM traffic of GNN model serving. Two policies answer it:
///  - per-request: every request dispatches alone (one kernel launch per
///    request, GE-SpMM's one-shot path),
///  - batched: same-graph requests coalesce into width-256 multi-feature
///    SpMMs through the plan cache (one launch per 16 requests).
/// Reported per device: total modelled device time, modelled throughput,
/// and the batched speedup; then the multi-device round-robin dispatch
/// stats when more than one device is selected. Engines run one worker,
/// paused until fully enqueued, so batch composition — and therefore every
/// recorded number — is deterministic.

#include <algorithm>
#include <cstdio>

#include "bench_common/registry.hpp"
#include "serve/engine.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

namespace {

constexpr int kRequestsPerGraph = 48;
constexpr sparse::index_t kRequestN = 16;

serve::ServeOptions serve_opts(std::vector<gpusim::DeviceSpec> devices,
                               std::size_t max_batch_requests,
                               std::uint64_t sample_blocks) {
  serve::ServeOptions sopt;
  sopt.devices = std::move(devices);
  sopt.num_workers = 1;
  sopt.start_paused = true;
  sopt.batch.max_batch_requests = max_batch_requests;
  sopt.batch.max_batch_n = 256;
  sopt.plan.sample_blocks = sample_blocks;
  return sopt;
}

/// Register every graph, enqueue the interleaved request mix, drain.
serve::EngineStats run_workload(serve::Engine& eng,
                                const std::vector<sparse::GraphDataset>& graphs) {
  std::vector<serve::GraphId> ids;
  ids.reserve(graphs.size());
  for (const auto& g : graphs) ids.push_back(eng.register_graph(g.adj));
  for (int r = 0; r < kRequestsPerGraph; ++r) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      kernels::DenseMatrix b(graphs[gi].adj.cols, kRequestN);
      kernels::fill_random(b, 4200 + 10 * static_cast<std::uint64_t>(gi) +
                                  static_cast<std::uint64_t>(r));
      eng.submit(ids[gi], std::move(b));
    }
  }
  eng.shutdown();
  return eng.stats();
}

double throughput_rps(const serve::EngineStats& st) {
  return st.modelled_ms > 0.0 ? static_cast<double>(st.completed) /
                                    (st.modelled_ms * 1e-3)
                              : 0.0;
}

/// q-th percentile of the virtual-clock completion stamps (fairness-bench
/// idiom: sort, index at q * size).
double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = std::min(xs.size() - 1,
                            static_cast<std::size_t>(q * static_cast<double>(xs.size())));
  return xs[idx];
}

/// Cold-start run: plan cache disabled, so every request is a cold plan
/// build under `mode` — the per-request planning cost the learned
/// selector eliminates. Requests run one per batch at a width wide
/// enough (> 32) that Exact has a real candidate sweep to pay for.
struct ColdRun {
  serve::EngineStats stats;
  std::vector<double> completed_at_ms;
};

constexpr sparse::index_t kColdN = 64;

ColdRun run_cold_workload(SelectionMode mode, const gpusim::DeviceSpec& dev,
                          std::uint64_t sample_blocks,
                          const std::vector<sparse::GraphDataset>& graphs) {
  serve::ServeOptions sopt = serve_opts({dev}, /*max_batch_requests=*/1, sample_blocks);
  sopt.plan.enabled = false;
  sopt.plan.selection = mode;
  serve::Engine eng(sopt);

  std::vector<serve::GraphId> ids;
  ids.reserve(graphs.size());
  for (const auto& g : graphs) ids.push_back(eng.register_graph(g.adj));
  std::vector<serve::Ticket> tickets;
  for (int r = 0; r < kRequestsPerGraph; ++r) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      kernels::DenseMatrix b(graphs[gi].adj.cols, kColdN);
      kernels::fill_random(b, 6200 + 10 * static_cast<std::uint64_t>(gi) +
                                  static_cast<std::uint64_t>(r));
      tickets.push_back(eng.submit(ids[gi], std::move(b)));
    }
  }
  eng.shutdown();
  ColdRun run;
  run.completed_at_ms.reserve(tickets.size());
  for (auto& t : tickets) run.completed_at_ms.push_back(t.wait().completed_at_ms);
  run.stats = eng.stats();
  return run;
}

}  // namespace

GESPMM_BENCH(serve_throughput) {
  const auto& opt = ctx.opt;
  const auto graphs = sparse::citation_suite();
  const int total_requests = kRequestsPerGraph * static_cast<int>(graphs.size());

  for (const auto& dev : opt.devices) {
    bench::banner("Serving: batched vs per-request (device " + dev.name + ", " +
                  std::to_string(total_requests) + " requests, N=" +
                  std::to_string(kRequestN) + ")");

    serve::Engine solo(serve_opts({dev}, /*max_batch_requests=*/1, opt.sample_blocks));
    const auto ss = run_workload(solo, graphs);

    serve::Engine batched(serve_opts({dev}, /*max_batch_requests=*/16, opt.sample_blocks));
    const auto bs = run_workload(batched, graphs);

    const double speedup = bs.modelled_ms > 0.0 ? ss.modelled_ms / bs.modelled_ms : 0.0;
    Table table({"policy", "batches", "cache_hit/miss", "modelled_ms", "req/s", "speedup"});
    table.add_row({"per-request", std::to_string(ss.batches),
                   std::to_string(ss.plan_cache_hits) + "/" +
                       std::to_string(ss.plan_cache_misses),
                   Table::fmt(ss.modelled_ms, 3), Table::fmt(throughput_rps(ss), 0),
                   "1.00"});
    table.add_row({"batched", std::to_string(bs.batches),
                   std::to_string(bs.plan_cache_hits) + "/" +
                       std::to_string(bs.plan_cache_misses),
                   Table::fmt(bs.modelled_ms, 3), Table::fmt(throughput_rps(bs), 0),
                   Table::fmt(speedup)});
    table.print();

    ctx.record(dev.name, "citation-mix", "per-request", kRequestN, ss.modelled_ms);
    ctx.record(dev.name, "citation-mix", "batched", kRequestN, bs.modelled_ms, speedup);
  }

  // Cold-start planning: with the plan cache disabled every request pays
  // algorithm selection. Predict (trained feature predictor) eliminates
  // the Exact candidate sweep's profiling runs, so the cold-request p95
  // virtual-clock latency drops; steady-state rows above are untouched
  // (their engines use the default Predict mode and hit the cache).
  for (const auto& dev : opt.devices) {
    bench::banner("Serving: cold-start plan selection, Predict vs Exact (device " +
                  dev.name + ", cache disabled, N=" + std::to_string(kColdN) + ")");
    const ColdRun exact = run_cold_workload(SelectionMode::Exact, dev,
                                            opt.sample_blocks, graphs);
    const ColdRun pred = run_cold_workload(SelectionMode::Predict, dev,
                                           opt.sample_blocks, graphs);
    const double p95_exact = percentile(exact.completed_at_ms, 0.95);
    const double p95_pred = percentile(pred.completed_at_ms, 0.95);
    const double p95_win = p95_pred > 0.0 ? p95_exact / p95_pred : 0.0;

    Table table({"selection", "builds", "plan_build_ms", "modelled_ms", "p95_ms", "speedup"});
    table.add_row({"exact-sweep", std::to_string(exact.stats.plan_exact_builds),
                   Table::fmt(exact.stats.plan_build_ms, 3),
                   Table::fmt(exact.stats.modelled_ms, 3),
                   Table::fmt(p95_exact, 3), "1.00"});
    table.add_row({"predict", std::to_string(pred.stats.plan_predicted_builds),
                   Table::fmt(pred.stats.plan_build_ms, 3),
                   Table::fmt(pred.stats.modelled_ms, 3),
                   Table::fmt(p95_pred, 3), Table::fmt(p95_win)});
    table.print();
    std::printf("cold p95 win %.2fx (selection cost eliminated: %.3f ms; "
                "mispredicts: %llu)\n",
                p95_win, exact.stats.plan_build_ms,
                static_cast<unsigned long long>(pred.stats.plan_mispredicts));

    ctx.record(dev.name, "citation-mix", "cold-exact", kColdN, p95_exact);
    ctx.record(dev.name, "citation-mix", "cold-predict", kColdN, p95_pred, p95_win);
  }

  if (opt.devices.size() > 1) {
    bench::banner("Serving: multi-device round-robin dispatch");
    serve::Engine multi(serve_opts(opt.devices, /*max_batch_requests=*/16,
                                   opt.sample_blocks));
    const auto ms = run_workload(multi, graphs);
    Table table({"device", "requests", "batches", "cache_hit/miss", "modelled_ms"});
    for (const auto& d : ms.devices) {
      table.add_row({d.device, std::to_string(d.requests), std::to_string(d.batches),
                     std::to_string(d.plan_cache_hits) + "/" +
                         std::to_string(d.plan_cache_misses),
                     Table::fmt(d.modelled_ms, 3)});
      ctx.record(d.device, "citation-mix", "batched-multidev", kRequestN, d.modelled_ms);
    }
    table.print();
    // Devices run concurrently, so serving wall time is the busiest
    // device's modelled time, not the sum.
    double busiest_ms = 0.0;
    for (const auto& d : ms.devices) busiest_ms = std::max(busiest_ms, d.modelled_ms);
    std::printf("aggregate: %llu requests in %llu batches, busiest device "
                "%.3f modelled ms => %.0f modelled req/s\n",
                static_cast<unsigned long long>(ms.completed),
                static_cast<unsigned long long>(ms.batches), busiest_ms,
                busiest_ms > 0.0
                    ? static_cast<double>(ms.completed) / (busiest_ms * 1e-3)
                    : 0.0);
  }
}
