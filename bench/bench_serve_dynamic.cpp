/// Extension bench: streaming graph updates on a sharded serving engine.
///
/// Workload: a uniform random graph sharded 4 ways (per-device residency
/// budget at ~1/4 of the operand), then K update rounds. Every round
/// applies a 64-edge insert batch confined to shard 0's row range and
/// probes the graph with 4 width-64 inference requests. Two policies
/// answer the same round sequence:
///  - update-in-place: one registration; Engine::apply_update folds each
///    batch into the delta overlay, re-plans only the touched shard,
///    invalidates only the stale plan-cache entries, and compacts when
///    the overlay crosses the configured nnz fraction;
///  - re-register: the streaming producer's fallback — materialize the
///    updated CSR host-side and register it as a fresh graph each round,
///    paying a full O(nnz) materialize + fingerprint + shard planning per
///    round (and leaking one dead registration per round, since graphs
///    are never unregistered).
///
/// What the numbers show: the *modelled* serving cost is near parity —
/// the plan cache is content-addressed, so untouched shards keep their
/// plans under either policy, and overlay-merged rounds add only the
/// patch-row launches. The win is the host-side update path, reported as
/// wallclock rows under the `host` pseudo-device (advisory in
/// bench_compare, like all wall time): apply_update touches O(delta)
/// rows where re-registration rebuilds O(nnz) state. Requests are
/// submitted and awaited one at a time so updates interleave with built
/// plans (targeted invalidation actually fires) and batch composition —
/// hence every modelled number — is deterministic. Outputs of every
/// probe round are checked bitwise between the two policies; the
/// compaction fraction is derived from the first round's overlay so the
/// run crosses it mid-sequence, covering overlay-merged AND
/// post-compaction serving. Plans are built with SelectionMode::Exact so
/// cold builds carry their candidate-sweep cost (build_ms) on the device
/// clock.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common/registry.hpp"
#include "serve/delta.hpp"
#include "serve/engine.hpp"
#include "serve/shard.hpp"
#include "sparse/generators.hpp"

using namespace gespmm;
using bench::Table;

namespace {

constexpr int kDevices = 4;
constexpr int kRounds = 8;
constexpr int kEdgesPerRound = 64;
constexpr int kProbesPerRound = 4;
constexpr sparse::index_t kProbeN = 64;

serve::ServeOptions dyn_opts(const gpusim::DeviceSpec& dev,
                             std::size_t capacity, std::uint64_t sample_blocks,
                             double compact_fraction) {
  serve::ServeOptions sopt;
  sopt.devices.assign(kDevices, dev);
  sopt.num_workers = 1;
  sopt.plan.sample_blocks = sample_blocks;
  sopt.plan.selection = SelectionMode::Exact;  // cold builds carry build_ms
  sopt.sharding.device_capacity_bytes = capacity;
  sopt.delta.compact_nnz_fraction = compact_fraction;
  return sopt;
}

/// Deterministic insert batch for round `k`, confined to [row0, row1).
serve::EdgeBatch round_batch(int k, sparse::index_t row0, sparse::index_t row1,
                             sparse::index_t cols) {
  serve::EdgeBatch batch;
  // Stride rounds far apart in the Weyl sequence: consecutive seeds would
  // replay the previous round's draws shifted by one step.
  std::uint64_t s = 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(k * 1024);
  const auto next = [&s] {
    s += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  for (int e = 0; e < kEdgesPerRound; ++e) {
    const auto row = static_cast<sparse::index_t>(
        row0 + static_cast<sparse::index_t>(
                   next() % static_cast<std::uint64_t>(row1 - row0)));
    const auto col = static_cast<sparse::index_t>(
        next() % static_cast<std::uint64_t>(cols));
    const auto val =
        0.25f * static_cast<float>(1 + static_cast<int>(next() % 7));
    batch.inserts.push_back({row, col, val});
  }
  return batch;
}

kernels::DenseMatrix probe_features(int round, int probe,
                                    sparse::index_t rows) {
  kernels::DenseMatrix b(rows, kProbeN);
  kernels::fill_random(b, 7100 + static_cast<std::uint64_t>(round) * 17 +
                              static_cast<std::uint64_t>(probe));
  return b;
}

struct PolicyResult {
  serve::EngineStats stats;
  double makespan_ms = 0.0;    // busiest device clock after all rounds
  double host_update_ms = 0.0; // wall time spent in the update path
  // First probe output of each round, for the bitwise check.
  std::vector<kernels::DenseMatrix> outputs;
};

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void finish(serve::Engine& eng, PolicyResult& out) {
  eng.shutdown();
  out.stats = eng.stats();
  for (const auto& d : out.stats.devices) {
    out.makespan_ms = std::max(out.makespan_ms, d.modelled_ms);
  }
}

/// Policy A: one registration, apply_update per round.
PolicyResult run_update_in_place(const sparse::Csr& a,
                                 const serve::ServeOptions& sopt,
                                 sparse::index_t row0, sparse::index_t row1) {
  serve::Engine eng(sopt);
  const serve::GraphId id = eng.register_graph(a);

  PolicyResult out;
  for (int k = 0; k < kRounds; ++k) {
    const serve::EdgeBatch batch = round_batch(k, row0, row1, a.cols);
    const auto t0 = std::chrono::steady_clock::now();
    eng.apply_update(id, batch);
    out.host_update_ms += wall_since(t0);
    for (int p = 0; p < kProbesPerRound; ++p) {
      auto res = eng.submit(id, probe_features(k, p, a.cols)).wait();
      if (p == 0) out.outputs.push_back(std::move(res.c));
    }
  }
  finish(eng, out);
  return out;
}

/// Policy B: materialize host-side and register a fresh graph per round.
PolicyResult run_reregister(const sparse::Csr& a,
                            const serve::ServeOptions& sopt,
                            sparse::index_t row0, sparse::index_t row1) {
  serve::Engine eng(sopt);

  PolicyResult out;
  sparse::Csr cur = a;
  for (int k = 0; k < kRounds; ++k) {
    const serve::EdgeBatch batch = round_batch(k, row0, row1, a.cols);
    const auto t0 = std::chrono::steady_clock::now();
    const auto ov = serve::DeltaOverlay::apply(cur, nullptr, batch);
    cur = ov->materialize(cur);
    const serve::GraphId id = eng.register_graph(cur);
    out.host_update_ms += wall_since(t0);
    for (int p = 0; p < kProbesPerRound; ++p) {
      auto res = eng.submit(id, probe_features(k, p, a.cols)).wait();
      if (p == 0) out.outputs.push_back(std::move(res.c));
    }
  }
  finish(eng, out);
  return out;
}

}  // namespace

GESPMM_BENCH(serve_dynamic) {
  const auto& opt = ctx.opt;
  const sparse::index_t rows = opt.quick ? 8192 : 32768;
  const sparse::index_t nnz = rows * 16;
  const sparse::Csr a = sparse::uniform_random(rows, rows, nnz, 9090);
  const std::size_t total = serve::csr_bytes(a);
  // ~1/4 of the operand per device forces a 4-way shard, with headroom
  // for the planner's nnz imbalance and the inserted edges.
  const std::size_t capacity = total / kDevices + total / (2 * kDevices);

  // Updates target shard 0's row range; both policies use the same range.
  const auto plan0 = serve::plan_shards(a, kDevices);
  const sparse::index_t row0 = plan0.shards[0].row_begin;
  const sparse::index_t row1 = plan0.shards[0].row_end;

  // The overlay grows by roughly one round's fold per round (batches hit
  // mostly-distinct rows), so a threshold of ~3.5 first-round overlays
  // compacts mid-sequence: rounds before it serve overlay-merged, rounds
  // after it serve the compacted CSR, and the bitwise check covers both.
  const auto ov0 =
      serve::DeltaOverlay::apply(a, nullptr, round_batch(0, row0, row1, a.cols));
  const double compact_fraction =
      3.5 * static_cast<double>(ov0->overlay_nnz()) /
      static_cast<double>(a.nnz());

  bench::banner("Streaming updates: " + std::to_string(rows) + " vertices, " +
                std::to_string(a.nnz()) + " edges, " +
                std::to_string(kDevices) + " shards, " +
                std::to_string(kRounds) + " rounds x " +
                std::to_string(kEdgesPerRound) + " edges + " +
                std::to_string(kProbesPerRound) + " probes (N=" +
                std::to_string(kProbeN) + ")");

  Table table({"device", "policy", "compactions", "plan_misses", "invalidated",
               "makespan_ms", "host_update_ms", "host_speedup"});
  for (const auto& dev : opt.devices) {
    const serve::ServeOptions sopt =
        dyn_opts(dev, capacity, opt.sample_blocks, compact_fraction);
    const PolicyResult upd = run_update_in_place(a, sopt, row0, row1);
    const PolicyResult rereg = run_reregister(a, sopt, row0, row1);

    for (int k = 0; k < kRounds; ++k) {
      const auto& x = upd.outputs[static_cast<std::size_t>(k)];
      const auto& y = rereg.outputs[static_cast<std::size_t>(k)];
      if (x.max_abs_diff(y) != 0.0) {
        std::printf("BITWISE MISMATCH at round %d (%s): update-in-place "
                    "differs from re-registration\n",
                    k, dev.name.c_str());
        ctx.record(dev.name, "uniform-dyn", "dynamic-mismatch", kProbeN, -1.0);
        return;
      }
    }

    const double host_speedup = upd.host_update_ms > 0.0
                                    ? rereg.host_update_ms / upd.host_update_ms
                                    : 0.0;
    const double modelled_ratio =
        upd.makespan_ms > 0.0 ? rereg.makespan_ms / upd.makespan_ms : 0.0;
    table.add_row({dev.name, "update-in-place",
                   std::to_string(upd.stats.graph_compactions),
                   std::to_string(upd.stats.plan_cache_misses),
                   std::to_string(upd.stats.plan_invalidations),
                   Table::fmt(upd.makespan_ms, 3),
                   Table::fmt(upd.host_update_ms, 3), Table::fmt(host_speedup)});
    table.add_row({dev.name, "re-register", "0",
                   std::to_string(rereg.stats.plan_cache_misses), "0",
                   Table::fmt(rereg.makespan_ms, 3),
                   Table::fmt(rereg.host_update_ms, 3), Table::fmt(1.0)});
    // Modelled rows are deterministic and strict-gated by bench_compare;
    // they prove serving-cost parity at bitwise-identical outputs.
    ctx.record(dev.name, "uniform-dyn", "update-in-place", kProbeN,
               upd.makespan_ms, modelled_ratio);
    ctx.record(dev.name, "uniform-dyn", "re-register", kProbeN,
               rereg.makespan_ms, 1.0);
    // Host update-path cost is wall time: advisory, under the `host`
    // pseudo-device so it cannot contaminate the strict modelled groups.
    ctx.record("host", "uniform-dyn", "update-" + dev.name, kProbeN,
               upd.host_update_ms, host_speedup, /*wallclock=*/true);
    ctx.record("host", "uniform-dyn", "reregister-" + dev.name, kProbeN,
               rereg.host_update_ms, 1.0, /*wallclock=*/true);
  }
  table.print();
  std::printf("probe outputs bitwise-identical across policies (incl. "
              "post-compaction rounds): OK\n");
}
