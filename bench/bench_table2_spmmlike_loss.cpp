/// Reproduces paper Table II — the performance loss of DGL's SpMM-like
/// fallback against its cuSPARSE SpMM, measured on the same aggregation
/// step: GraphSAGE-GCN aggregates with a standard SpMM (csrmm2), while
/// GraphSAGE-pool needs a max-reduction SpMM-like that cuSPARSE does not
/// provide, so DGL falls back to its own kernel.
///
/// Paper reference (GTX 1080Ti): Cora 8.8%, Citeseer 89.2%, Pubmed 139.1%
/// loss — the motivation for a general SpMM-like kernel.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "gnn/aggregation.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(table2_spmmlike_loss) {
  const auto& opt = ctx.opt;
  const auto dev = gpusim::gtx1080ti();
  (void)opt;

  bench::banner("Table II: SpMM-like perf. loss vs SpMM in the DGL stack (" +
                dev.name + ", aggregation step of GraphSAGE, N=16)");
  Table table({"graph", "SpMM (csrmm2) ms", "SpMM-like (fallback) ms", "perf. loss"});

  for (const auto& data : sparse::citation_suite()) {
    const auto operand = sparse::row_normalize(data.adj);
    gnn::GnnGraph graph(operand, dev);
    // DGL's default GraphSAGE example uses hidden width 16.
    const sparse::index_t n = 16;
    const double spmm = graph.aggregation_time_ms(gnn::AggregatorBackend::DglCusparse,
                                                  kernels::ReduceKind::Sum, n, false);
    const double like = graph.aggregation_time_ms(gnn::AggregatorBackend::DglFallback,
                                                  kernels::ReduceKind::Max, n, false);
    ctx.record(dev.name, data.name, "csrmm2", n, spmm);
    ctx.record(dev.name, data.name, "dgl_fallback_max", n, like);
    table.add_row({data.name, Table::fmt(spmm, 4), Table::fmt(like, 4),
                   Table::fmt(100.0 * (like - spmm) / spmm, 1) + "%"});
  }
  table.print();
  std::printf(
      "\npaper: 8.8%% (cora), 89.2%% (citeseer), 139.1%% (pubmed) — the loss grows\n"
      "with graph size because the generic fallback's global read-modify-write\n"
      "traffic scales with nnz x N while tiny graphs stay launch-bound.\n");
}
