/// Reproduces paper Table V — "Effects of CRC": global load transactions
/// (GLT) and gld_efficiency with and without Coalesced Row Caching on the
/// three synthetic uniform random matrices, N = 512.
///
/// Paper reference values (GTX 1080Ti):
///   M=16K/nnz=160K:  GLT 1.34e8 -> 0.55e8, efficiency 68.95% -> 92.40%
///   M=65K/nnz=650K:  GLT 5.36e8 -> 2.18e8, efficiency 68.95% -> 92.40%
///   M=262K/nnz=2.6M: GLT 21.47e8 -> 8.73e8, efficiency 68.95% -> 92.39%
/// The profiling machine is Machine 1 only (nvprof limitation noted in the
/// paper); we mirror that.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(table5_crc_effects) {
  const auto& opt = ctx.opt;
  const auto dev = gpusim::gtx1080ti();
  const sparse::index_t n = 512;

  bench::banner("Table V: effects of CRC (device " + dev.name + ", N=512)");
  Table table({"matrix", "method", "GLT(x32B)", "GLT_effi"});

  struct Spec {
    const char* name;
    sparse::Csr matrix;
  };
  std::vector<Spec> specs;
  specs.push_back({"M=16K nnz=160K", sparse::profile_matrix_16k()});
  specs.push_back({"M=65K nnz=650K", sparse::profile_matrix_65k()});
  specs.push_back({"M=262K nnz=2.6M", sparse::profile_matrix_262k()});

  for (auto& s : specs) {
    kernels::SpmmRunOptions ro;
    ro.device = dev;
    ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks * 4);
    kernels::SpmmProblem p(s.matrix, n);
    const auto naive = kernels::run_spmm(kernels::SpmmAlgo::Naive, p, ro);
    const auto crc = kernels::run_spmm(kernels::SpmmAlgo::Crc, p, ro);
    ctx.record(dev.name, s.name, "naive", n, naive.time_ms());
    ctx.record(dev.name, s.name, "crc", n, crc.time_ms(),
               naive.time_ms() / crc.time_ms());
    char glt[64];
    std::snprintf(glt, sizeof(glt), "%.2fe+8",
                  static_cast<double>(naive.metrics.gld_transactions) / 1e8);
    table.add_row({s.name, "w/o CRC", glt,
                   Table::fmt(100.0 * naive.metrics.gld_efficiency()) + "%"});
    std::snprintf(glt, sizeof(glt), "%.2fe+8",
                  static_cast<double>(crc.metrics.gld_transactions) / 1e8);
    table.add_row({"", "w/ CRC", glt,
                   Table::fmt(100.0 * crc.metrics.gld_efficiency()) + "%"});
  }
  table.print();
  std::printf(
      "\npaper: GLT drops ~2.4x and efficiency rises 68.95%% -> 92.40%% with CRC;\n"
      "reproduced shape: substantial GLT reduction with matching efficiency jump.\n");
}
