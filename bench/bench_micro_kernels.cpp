/// google-benchmark micro-suite: wall-clock cost of the *simulator* and of
/// the host compute path on the citation graphs. This measures this
/// repository's own performance (how fast the reproduction runs), not the
/// modelled GPU times — useful for keeping the simulation affordable.

#include <benchmark/benchmark.h>

#include "core/gespmm.hpp"
#include "kernels/spmm_host.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;

namespace {

const sparse::Csr& cora_graph() {
  static const sparse::Csr g = sparse::cora().adj;
  return g;
}
const sparse::Csr& pubmed_graph() {
  static const sparse::Csr g = sparse::pubmed().adj;
  return g;
}

void BM_HostSpmm(benchmark::State& state) {
  const auto& g = state.range(0) == 0 ? cora_graph() : pubmed_graph();
  const auto n = static_cast<sparse::index_t>(state.range(1));
  DenseMatrix b(g.cols, n), c(g.rows, n);
  kernels::fill_random(b, 1);
  for (auto _ : state) {
    spmm(g, b, c);
    benchmark::DoNotOptimize(c.device().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.nnz() * n);
}
BENCHMARK(BM_HostSpmm)->Args({0, 64})->Args({0, 256})->Args({1, 64})->Args({1, 256});

void BM_HostSpmmLikeMax(benchmark::State& state) {
  const auto& g = pubmed_graph();
  const auto n = static_cast<sparse::index_t>(state.range(0));
  DenseMatrix b(g.cols, n), c(g.rows, n);
  kernels::fill_random(b, 2);
  for (auto _ : state) {
    spmm(g, b, c, ReduceKind::Max);
    benchmark::DoNotOptimize(c.device().data());
  }
}
BENCHMARK(BM_HostSpmmLikeMax)->Arg(64)->Arg(256);

void BM_SimulatedGeSpmmFull(benchmark::State& state) {
  const auto& g = cora_graph();
  const auto n = static_cast<sparse::index_t>(state.range(0));
  for (auto _ : state) {
    auto prof = profile_spmm_shape(g, n);
    benchmark::DoNotOptimize(prof.result.metrics.gld_transactions);
  }
}
BENCHMARK(BM_SimulatedGeSpmmFull)->Arg(32)->Arg(128);

void BM_SimulatedGeSpmmSampled(benchmark::State& state) {
  const auto& g = pubmed_graph();
  ProfileOptions opt;
  opt.sample = gpusim::SamplePolicy::sampled(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto prof = profile_spmm_shape(g, 128, opt);
    benchmark::DoNotOptimize(prof.result.metrics.gld_transactions);
  }
}
BENCHMARK(BM_SimulatedGeSpmmSampled)->Arg(256)->Arg(1024)->Arg(4096);

void BM_AsptPreprocess(benchmark::State& state) {
  const auto& g = pubmed_graph();
  for (auto _ : state) {
    auto build = sparse::build_aspt(g);
    benchmark::DoNotOptimize(build.matrix.heavy_nnz);
  }
}
BENCHMARK(BM_AsptPreprocess);

}  // namespace

BENCHMARK_MAIN();
