/// Micro-suite: wall-clock cost of the *simulator* and of the host compute
/// path on the citation graphs. This measures this repository's own
/// performance (how fast the reproduction runs), not the modelled GPU
/// times — useful for keeping the simulation affordable.
///
/// Unlike every other bench, these rows are host wall-clock measurements
/// (machine-dependent), so they are recorded with wallclock=true and the
/// baseline compare treats their timing as advisory.

#include <chrono>
#include <cstdio>

#include "bench_common/registry.hpp"
#include "core/gespmm.hpp"
#include "kernels/spmm_host.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

namespace {

/// Best-of-`reps` wall time of `fn` in milliseconds (min over repetitions
/// is the standard noise reducer for micro timings).
template <typename Fn>
double wall_ms(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

GESPMM_BENCH(micro_kernels) {
  const auto& opt = ctx.opt;
  const int reps = opt.quick ? 1 : 3;
  const auto cora = sparse::cora().adj;
  const auto pubmed = sparse::pubmed().adj;

  bench::banner("Micro: host kernels + simulator wall-clock (best of " +
                std::to_string(reps) + ")");
  Table table({"case", "graph", "N", "wall(ms)"});
  auto row = [&](const std::string& algo, const std::string& graph, int n, double ms) {
    ctx.record("host", graph, algo, n, ms, 0.0, /*wallclock=*/true);
    table.add_row({algo, graph, std::to_string(n), Table::fmt(ms, 3)});
  };

  for (const auto* entry : {&cora, &pubmed}) {
    const auto& g = *entry;
    const std::string name = &g == &cora ? "cora" : "pubmed";
    for (sparse::index_t n : {64, 256}) {
      DenseMatrix b(g.cols, n), c(g.rows, n);
      kernels::fill_random(b, 1);
      row("host_spmm", name, n, wall_ms(reps, [&] { spmm(g, b, c); }));
    }
  }
  {
    const sparse::index_t n = opt.quick ? 64 : 256;
    DenseMatrix b(pubmed.cols, n), c(pubmed.rows, n);
    kernels::fill_random(b, 2);
    row("host_spmm_like_max", "pubmed", n,
        wall_ms(reps, [&] { spmm(pubmed, b, c, ReduceKind::Max); }));
  }
  for (sparse::index_t n : {32, 128}) {
    row("sim_gespmm_full", "cora", n,
        wall_ms(reps, [&] { (void)profile_spmm_shape(cora, n); }));
  }
  {
    ProfileOptions popt;
    popt.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);
    row("sim_gespmm_sampled", "pubmed", 128,
        wall_ms(reps, [&] { (void)profile_spmm_shape(pubmed, 128, popt); }));
  }
  row("aspt_preprocess", "pubmed", 0,
      wall_ms(reps, [&] { (void)sparse::build_aspt(pubmed); }));
  table.print();
  std::printf("(host wall-clock; machine-dependent, excluded from strict "
              "baseline timing checks)\n");
}
