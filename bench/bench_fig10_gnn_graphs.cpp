/// Reproduces paper Fig. 10 — SpMM performance (GFLOPS, from the paper's
/// nominal 2*nnz*N FLOP count) on the three GNN citation graphs for
/// GraphBLAST, cuSPARSE and GE-SpMM at N in {128, 256, 512}, on both
/// devices.
///
/// Paper: GE-SpMM outperforms cuSPARSE by up to 1.62x on these graphs.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(fig10_gnn_graphs) {
  const auto& opt = ctx.opt;
  const auto suite = sparse::citation_suite();

  double best_vs_cusparse = 0.0;
  for (const auto& dev : opt.devices) {
    for (sparse::index_t n : {128, 256, 512}) {
      bench::banner("Fig. 10: performance on GNN graphs (device " + dev.name +
                    ", N=" + std::to_string(n) + ", GFLOPS)");
      Table table({"graph", "GraphBLAST", "cuSPARSE", "GE-SpMM", "GE/cuSPARSE"});
      for (const auto& d : suite) {
        kernels::SpmmRunOptions ro;
        ro.device = dev;
        ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks * 2);
        const double flops = 2.0 * static_cast<double>(d.adj.nnz()) * n;
        kernels::SpmmProblem p(d.adj, n);
        kernels::SpmmProblem pc(d.adj, n, kernels::Layout::ColMajor);
        const auto gb = kernels::run_spmm(kernels::SpmmAlgo::RowSplitGB, p, ro);
        const auto cus = kernels::run_spmm(kernels::SpmmAlgo::Csrmm2, pc, ro);
        const auto ge = kernels::run_spmm(kernels::SpmmAlgo::GeSpMM, p, ro);
        const double ratio = cus.time_ms() / ge.time_ms();
        best_vs_cusparse = std::max(best_vs_cusparse, ratio);
        ctx.record(dev.name, d.name, "rowsplit_gb", n, gb.time_ms());
        ctx.record(dev.name, d.name, "csrmm2", n, cus.time_ms());
        ctx.record(dev.name, d.name, "gespmm", n, ge.time_ms(), ratio);
        table.add_row({d.name, Table::fmt(gb.gflops(flops), 1),
                       Table::fmt(cus.gflops(flops), 1),
                       Table::fmt(ge.gflops(flops), 1), Table::fmt(ratio, 2)});
      }
      table.print();
    }
  }
  std::printf("\nbest GE/cuSPARSE on citation graphs: %.2fx (paper: up to 1.62x)\n",
              best_vs_cusparse);
}
