/// Reproduces paper Fig. 13 — end-to-end GNN training time in the DGL
/// stack, with and without GE-SpMM, for GCN, GraphSAGE-GCN (both SpMM) and
/// GraphSAGE-pooling (SpMM-like) across model settings (x, y) = (layers,
/// feature width) in {1,2} x {16, 64, 256}, on both devices. Pubmed is the
/// workload graph as in the paper's figure.
///
/// Paper: GE-SpMM brings speedups in most settings; on the GTX 1080Ti a few
/// small-feature settings see no gain because the last layer's N equals the
/// class count, where GE-SpMM is least competitive.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "gnn/train.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(fig13_dgl_e2e) {
  const auto& opt = ctx.opt;
  const int kEpochs = opt.quick ? 1 : 2;
  // Quick mode downshifts to cora and a reduced setting grid: full
  // pubmed training is minutes of simulation, far over a CI budget.
  const auto data = opt.quick ? sparse::cora() : sparse::pubmed();
  const std::vector<int> layer_grid = opt.quick ? std::vector<int>{1}
                                                : std::vector<int>{1, 2};
  const std::vector<int> feat_grid =
      opt.quick ? std::vector<int>{16} : std::vector<int>{16, 64, 256};

  struct ModelSpec {
    gnn::ModelKind kind;
    gnn::AggregatorBackend dgl_backend;
    const char* label;
  };
  const ModelSpec models[] = {
      {gnn::ModelKind::Gcn, gnn::AggregatorBackend::DglCusparse, "GCN (SpMM)"},
      {gnn::ModelKind::SageGcn, gnn::AggregatorBackend::DglCusparse,
       "GraphSAGE-GCN (SpMM)"},
      {gnn::ModelKind::SagePool, gnn::AggregatorBackend::DglCusparse,
       "GraphSAGE-pooling (SpMM-like)"},
  };

  for (const auto& dev : opt.devices) {
    for (const auto& m : models) {
      bench::banner(std::string("Fig. 13: ") + m.label + " on " + data.name + " (device " +
                    dev.name + ", DGL vs DGL+GE-SpMM, " + std::to_string(kEpochs) + " epochs)");
      Table table({"(layers, feats)", "DGL (ms)", "DGL+GE-SpMM (ms)", "speedup"});
      for (int layers : layer_grid) {
        for (int feats : feat_grid) {
          gnn::TrainConfig cfg;
          cfg.device = dev;
          cfg.model.kind = m.kind;
          cfg.model.num_layers = layers;
          cfg.model.hidden_feats = feats;
          cfg.epochs = kEpochs;
          // Quick mode also narrows the input features (cora's native 1433
          // input columns dominate the first layer's simulation cost).
          if (opt.quick) cfg.model.in_feats = 32;
          // DGL baseline: csrmm2 (+transpose) for SpMM, fallback for
          // SpMM-like.
          cfg.model.backend = m.dgl_backend;
          cfg.model.spmm_like_backend = gnn::AggregatorBackend::DglFallback;
          const auto base = gnn::train(data, cfg);
          // DGL + GE-SpMM: swap both aggregation kernels.
          cfg.model.backend = gnn::AggregatorBackend::GeSpMM;
          cfg.model.spmm_like_backend = gnn::AggregatorBackend::GeSpMM;
          const auto ours = gnn::train(data, cfg);
          char label[32];
          std::snprintf(label, sizeof(label), "(%d, %d)", layers, feats);
          ctx.record(dev.name, data.name + " " + label, m.label, feats,
                     ours.cuda_time_ms, base.cuda_time_ms / ours.cuda_time_ms);
          table.add_row({label, Table::fmt(base.cuda_time_ms, 3),
                         Table::fmt(ours.cuda_time_ms, 3),
                         Table::fmt(base.cuda_time_ms / ours.cuda_time_ms, 2)});
        }
      }
      table.print();
    }
  }
  std::printf(
      "\npaper: speedups in most settings, growing with the feature width; the\n"
      "pooling model additionally replaces DGL's fallback SpMM-like kernel.\n");
}
