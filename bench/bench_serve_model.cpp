/// Extension bench: fused end-to-end model serving vs. layer-by-layer
/// composition, on the Fig. 13/14-style modelled workloads.
///
/// Workload: GCN and GraphSAGE-GCN inference over pubmed (quick: cora
/// with narrowed input features, like the Fig. 13 bench) at the paper's
/// (layers, feature-width) settings. The fused path answers one
/// `submit_model` ticket per forward pass — SpMM→GEMM fused per layer,
/// epilogue absorbed, intermediates recycled, per-layer plans from the
/// shared PlanCache. The composed baseline is the same pass as a client
/// would stitch it without model serving: one engine-submitted SpMM per
/// aggregation plus separate dense GEMM / bias / activation launches
/// (the per-layer price the engine reports as `composed_ms`).
///
/// The first request of every setting is additionally *executed*
/// layer-by-layer through `Engine::submit` + the shared host transforms
/// and compared bitwise against the fused output — fusion must change
/// modelled time only, never values. Engines run one worker, paused
/// until fully enqueued, so every recorded number is deterministic.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common/registry.hpp"
#include "serve/engine.hpp"
#include "serve/model_plan.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

namespace {

constexpr int kRequestsPerSetting = 3;

serve::ServeOptions serve_opts(const gpusim::DeviceSpec& dev,
                               std::uint64_t sample_blocks) {
  serve::ServeOptions sopt;
  sopt.devices = {dev};
  sopt.num_workers = 1;
  sopt.start_paused = true;
  sopt.plan.sample_blocks = sample_blocks;
  return sopt;
}

kernels::DenseMatrix node_features(sparse::index_t rows, sparse::index_t cols,
                                   std::uint64_t seed) {
  kernels::DenseMatrix x(rows, cols);
  kernels::fill_random(x, seed);
  return x;
}

/// The composed reference: execute the plan layer by layer through
/// Engine::submit for every aggregation and the shared host-side dense
/// transforms for everything else. Returns the logits.
kernels::DenseMatrix composed_forward(serve::Engine& eng, serve::GraphId gid,
                                      const serve::RegisteredModel& m,
                                      const kernels::DenseMatrix& x) {
  kernels::DenseMatrix h = x;
  for (std::size_t l = 0; l < m.plan.layers.size(); ++l) {
    const serve::LayerStep& s = m.plan.layers[l];
    const kernels::DenseMatrix& w = m.spec.weights[l];
    const kernels::DenseMatrix& b = m.spec.bias[l];
    if (s.transform_first) {
      kernels::DenseMatrix t(h.rows(), s.out_width);
      serve::gemm(h, w, t);
      const serve::Ticket tk = eng.submit(gid, std::move(t), {.reduce = s.reduce});
      kernels::DenseMatrix z = tk.wait().c;
      serve::bias_act(z, b, s.relu);
      h = std::move(z);
    } else {
      const serve::Ticket tk =
          eng.submit(gid, kernels::DenseMatrix(h), {.reduce = s.reduce});
      kernels::DenseMatrix out(h.rows(), s.out_width);
      serve::dense_transform(tk.wait().c, w, b, s.relu, out);
      h = std::move(out);
    }
  }
  return h;
}

}  // namespace

GESPMM_BENCH(serve_model) {
  const auto& opt = ctx.opt;
  const auto data = opt.quick ? sparse::cora() : sparse::pubmed();
  const sparse::index_t in_feats = opt.quick ? 32 : data.feature_dim;
  struct Setting {
    int layers;
    sparse::index_t feats;
  };
  const std::vector<Setting> settings =
      opt.quick ? std::vector<Setting>{{2, 16}}
                : std::vector<Setting>{{2, 16}, {2, 64}};
  const struct {
    serve::ServedModelKind kind;
    const char* label;
  } kinds[] = {
      {serve::ServedModelKind::Gcn, "GCN"},
      {serve::ServedModelKind::SageGcn, "GraphSAGE-GCN"},
  };

  for (const auto& dev : opt.devices) {
    for (const auto& k : kinds) {
      bench::banner(std::string("Model serving: fused vs composed, ") +
                    k.label + " on " + data.name + " (device " + dev.name +
                    ", " + std::to_string(kRequestsPerSetting) +
                    " passes per setting)");
      Table table({"(layers, feats)", "composed (ms)", "fused (ms)", "speedup",
                   "cache h/m", "bitwise"});
      for (const Setting& s : settings) {
        serve::Engine eng(serve_opts(dev, opt.sample_blocks));
        const serve::GraphId gid = eng.register_graph(data.adj);
        const serve::ModelId mid = eng.register_model(
            gid, serve::make_model_spec(k.kind, in_feats, s.feats,
                                        data.num_classes, s.layers));
        std::vector<serve::Ticket> tickets;
        for (int r = 0; r < kRequestsPerSetting; ++r) {
          tickets.push_back(eng.submit_model(
              mid, node_features(data.adj.rows, in_feats,
                                 9000 + static_cast<std::uint64_t>(r))));
        }
        eng.start();
        double fused_ms = 0.0;
        double composed_ms = 0.0;
        for (const auto& t : tickets) {
          fused_ms += t.wait().modelled_ms;
          composed_ms += t.wait().composed_ms;
        }
        // Execute the first pass the composed way and hold fusion to the
        // bitwise-identity contract.
        const auto model = eng.model(mid);
        const kernels::DenseMatrix ref = composed_forward(
            eng, gid, *model, node_features(data.adj.rows, in_feats, 9000));
        const bool bitwise = tickets.front().wait().c.max_abs_diff(ref) == 0.0;
        const auto cache = eng.plan_cache().stats();
        eng.shutdown();

        const double speedup = fused_ms > 0.0 ? composed_ms / fused_ms : 0.0;
        // std::string lhs sidesteps GCC 12's -Wrestrict false positive on
        // the (const char* + string&&) insert path (GCC bug 105651).
        const std::string setting = std::string("(") + std::to_string(s.layers) +
                                    ", " + std::to_string(s.feats) + ")";
        table.add_row({setting, Table::fmt(composed_ms, 3),
                       Table::fmt(fused_ms, 3), Table::fmt(speedup),
                       std::to_string(cache.hits) + "/" +
                           std::to_string(cache.misses),
                       bitwise ? "OK" : "FAIL"});
        if (!bitwise) {
          std::printf("ERROR: fused output diverged from composed output "
                      "(%s, %s, %s)\n",
                      dev.name.c_str(), k.label, setting.c_str());
        }
        const std::string matrix = data.name + "-" +
            serve::served_model_kind_name(k.kind) + "-l" +
            std::to_string(s.layers);
        ctx.record(dev.name, matrix, "composed", s.feats, composed_ms);
        ctx.record(dev.name, matrix, "fused-model", s.feats, fused_ms, speedup);
      }
      table.print();
    }
  }
}
