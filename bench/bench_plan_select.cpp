/// Extension bench: learned plan selection vs the exact candidate sweep.
///
/// For a grid of generated matrix families (uniform, power-law R-MAT,
/// road-grid, block-structured, citation) x dense widths x both devices,
/// this runs the exact CF sweep and the trained feature predictor
/// (core/plan_select) side by side and reports:
///  - regret: modelled time of the predicted kernel vs the sweep's best
///    (1.0 = the predictor recovers the optimum),
///  - sweep cost: the modelled profiling time the sweep burns beyond its
///    winner — the per-cold-plan cost Predict eliminates,
///  - mispredicts: cases where the prediction is strictly slower.
///
/// This bench is also the offline trainer's data source: when
/// GESPMM_PLAN_SELECT_DUMP=<path> is set in the environment, every case
/// is appended to <path> as CSV (features + per-candidate times) for
/// scripts/train_plan_select.py to fit the baked decision table from.
/// (The env read lives here in the bench harness, not in selection code,
/// which stays hermetic.)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "bench_common/registry.hpp"
#include "core/autotune.hpp"
#include "core/plan_select.hpp"
#include "sparse/generators.hpp"

using namespace gespmm;
using bench::Table;

namespace {

/// Dense-ish blocks along the diagonal — the block-structured family
/// (pruned-DNN-like sparsity) the generators module does not cover.
Csr block_diag(index_t blocks, index_t bs, std::uint64_t seed) {
  std::vector<index_t> r, c;
  std::vector<value_t> v;
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  auto rnd = [&]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<double>(s >> 11) * (1.0 / 9007199254740992.0);
  };
  for (index_t b = 0; b < blocks; ++b) {
    for (index_t i = 0; i < bs; ++i) {
      for (index_t j = 0; j < bs; ++j) {
        if (rnd() < 0.6) {
          r.push_back(b * bs + i);
          c.push_back(b * bs + j);
          v.push_back(static_cast<value_t>(0.25 + 0.75 * rnd()));
        }
      }
    }
  }
  return sparse::csr_from_triplets(blocks * bs, blocks * bs, r, c, v);
}

struct Case {
  std::string family;
  Csr a;
};

std::vector<Case> make_cases(bool quick) {
  std::vector<Case> cases;
  const std::uint64_t seeds = quick ? 1 : 2;
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    cases.push_back({"uniform", sparse::uniform_random(2048, 2048, 8192, 800 + s)});
    cases.push_back({"uniform", sparse::uniform_random(1024, 1024, 65536, 810 + s)});
    cases.push_back({"rmat", sparse::rmat(10, 8.0, 0.57, 0.19, 0.19, 820 + s)});
    // Dense-head power law: hub rows clear the MMA threshold so hybrid is
    // a candidate, but the head is a small fraction of the rows and the
    // hybrid pipe loses — the tree must separate this from pruned_dnn
    // (dense_row_frac does it) instead of keying on mean_row_nnz alone.
    cases.push_back({"rmat", sparse::rmat(12, 24.0, 0.45, 0.22, 0.22, 890 + s)});
    cases.push_back({"grid", sparse::grid_road(2048, 0.05, 830 + s)});
    cases.push_back({"block", block_diag(32, 32, 840 + s)});
    cases.push_back({"citation", sparse::citation_graph(2000, 8000, 850 + s)});
    // Structured-block pruned-DNN family, both at device-filling scale
    // (where the hybrid dense pipe wins) and small (where its
    // window-per-block launch underfills and the selector must decline).
    cases.push_back({"pruned_dnn", sparse::pruned_dnn(4096, 256, 16, 0.85, 860 + s)});
    cases.push_back({"pruned_dnn", sparse::pruned_dnn(2048, 512, 16, 0.90, 870 + s)});
    cases.push_back({"pruned_dnn", sparse::pruned_dnn(256, 256, 16, 0.85, 880 + s)});
  }
  return cases;
}

}  // namespace

GESPMM_BENCH(plan_select) {
  const auto& opt = ctx.opt;
  const auto cases = make_cases(opt.quick);
  // 32/33 straddle the warp-width selection boundary so the trainer can
  // place its split exactly there instead of at a grid midpoint.
  const std::vector<index_t> widths = {16, 32, 33, 64, 256, 512};

  const char* dump_path = std::getenv("GESPMM_PLAN_SELECT_DUMP");
  std::ofstream dump;
  if (dump_path != nullptr) {
    dump.open(dump_path, std::ios::app);
    dump << "device,unified_l1,family,rows,cols,nnz,mean_row_nnz,"
            "row_nnz_variance,row_nnz_cv,density,dense_row_frac,"
            "dense_nnz_frac,n,n_bucket,"
            "t_crc,t_cwm2,t_cwm4,t_cwm8,t_hybrid,best\n";
  }

  for (const auto& dev : opt.devices) {
    bench::banner("Learned plan selection vs exact sweep (device " + dev.name +
                  ", " + std::to_string(cases.size()) + " matrices x " +
                  std::to_string(widths.size()) + " widths)");
    Table table({"family", "cases", "regret(geo)", "max_regret", "sweep_ms(geo)",
                 "cold_win(geo)", "mispredicts"});

    std::vector<double> all_pred_ms, all_best_ms, all_regret;
    std::vector<double> all_sweep_ms, all_cold_win;
    std::uint64_t total_mispredicts = 0;

    // Aggregate per family for the printed table; record one predict row
    // and one sweep-cost row per (device, family) for the baseline.
    std::vector<std::string> families = {"uniform", "rmat", "grid", "block",
                                         "citation", "pruned_dnn"};
    for (const auto& fam : families) {
      std::vector<double> pred_ms, best_ms, regret, sweep_ms, cold_win;
      std::uint64_t mispredicts = 0;
      int n_cases = 0;
      for (const auto& cse : cases) {
        if (cse.family != fam) continue;
        for (index_t n : widths) {
          AutotuneOptions aopt;
          aopt.device = dev;
          aopt.sample_blocks = opt.sample_blocks;
          aopt.mode = SelectionMode::Exact;
          const AutotuneResult exact = autotune_spmm(cse.a, n, aopt);

          const PlanFeatures f = extract_plan_features(cse.a, n);
          const SpmmAlgo predicted = predict_spmm_algo(f, dev);
          // The sweep already priced every candidate; reuse its times so
          // predicted vs best comparisons share one simulation.
          const double t_pred = exact.times_ms.at(predicted);
          const double t_best = exact.times_ms.at(exact.best);
          ++n_cases;
          pred_ms.push_back(t_pred);
          best_ms.push_back(t_best);
          regret.push_back(t_pred / t_best);
          if (t_pred > t_best) ++mispredicts;
          if (n > gpusim::kWarpSize) {
            sweep_ms.push_back(exact.build_ms);
            cold_win.push_back((t_best + exact.build_ms) / t_pred);
          }

          if (dump.is_open()) {
            auto t_of = [&](SpmmAlgo algo) {
              auto it = exact.times_ms.find(algo);
              return it == exact.times_ms.end() ? 0.0 : it->second;
            };
            dump << dev.name << ',' << (dev.unified_l1 ? 1 : 0) << ','
                 << cse.family << ',' << cse.a.rows << ',' << cse.a.cols << ','
                 << cse.a.nnz() << ',' << f.mean_row_nnz << ','
                 << f.row_nnz_variance << ',' << f.row_nnz_cv << ','
                 << f.density << ',' << f.dense_row_frac << ','
                 << f.dense_nnz_frac << ',' << n << ',' << f.n_bucket << ','
                 << t_of(SpmmAlgo::Crc) << ',' << t_of(SpmmAlgo::CrcCwm2) << ','
                 << t_of(SpmmAlgo::CrcCwm4) << ',' << t_of(SpmmAlgo::CrcCwm8)
                 << ',' << t_of(SpmmAlgo::HybridMma) << ','
                 << kernels::algo_name(exact.best) << '\n';
          }
        }
      }
      const double geo_regret = bench::geomean(regret);
      double max_regret = 1.0;
      for (double r : regret) max_regret = std::max(max_regret, r);
      const double geo_sweep = bench::geomean(sweep_ms);
      const double geo_win = bench::geomean(cold_win);
      table.add_row({fam, std::to_string(n_cases), Table::fmt(geo_regret, 4),
                     Table::fmt(max_regret, 4), Table::fmt(geo_sweep, 3),
                     Table::fmt(geo_win), std::to_string(mispredicts)});
      ctx.record(dev.name, fam, "predict", 0, bench::geomean(pred_ms),
                 geo_regret > 0.0 ? 1.0 / geo_regret : 0.0);
      ctx.record(dev.name, fam, "sweep-cost", 0, geo_sweep, geo_win);

      all_pred_ms.insert(all_pred_ms.end(), pred_ms.begin(), pred_ms.end());
      all_best_ms.insert(all_best_ms.end(), best_ms.begin(), best_ms.end());
      all_regret.insert(all_regret.end(), regret.begin(), regret.end());
      all_sweep_ms.insert(all_sweep_ms.end(), sweep_ms.begin(), sweep_ms.end());
      all_cold_win.insert(all_cold_win.end(), cold_win.begin(), cold_win.end());
      total_mispredicts += mispredicts;
    }
    table.print();
    std::printf(
        "%s: geomean regret %.4f (bound %.2f), sweep cost eliminated "
        "%.3f ms/cold plan (geomean), cold-plan win %.2fx, mispredicts %llu\n",
        dev.name.c_str(), bench::geomean(all_regret), kPlanSelectRegretBound,
        bench::geomean(all_sweep_ms), bench::geomean(all_cold_win),
        static_cast<unsigned long long>(total_mispredicts));
  }
  if (dump.is_open()) {
    std::printf("\ntraining dump appended to %s\n", dump_path);
  }
}
