/// Reproduces paper Fig. 8 — per-matrix speedup of Coalesced Row Caching
/// (Algorithm 2 over Algorithm 1) across the 64-graph SNAP suite at N=512,
/// on both devices.
///
/// Paper: average 1.246x on the GTX 1080Ti but only 1.011x on the RTX 2080
/// — Turing's unified L1 absorbs the naive kernel's broadcast loads, which
/// is exactly how the simulator reproduces the asymmetry.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(fig8_crc_speedup) {
  const auto& opt = ctx.opt;
  const sparse::index_t n = 512;

  for (const auto& dev : opt.devices) {
    bench::banner("Fig. 8: CRC speedup per SNAP matrix (device " + dev.name +
                  ", N=512, suite scale " + Table::fmt(opt.snap_scale) + ")");
    Table table({"id", "matrix", "naive(ms)", "crc(ms)", "speedup"});
    std::vector<double> speedups;
    const int count = std::min(opt.max_graphs, sparse::snap_suite_size());
    for (int i = 0; i < count; ++i) {
      auto entry = sparse::snap_suite_entry(i, opt.snap_scale);
      kernels::SpmmRunOptions ro;
      ro.device = dev;
      ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);
      kernels::SpmmProblem p(entry.matrix, n);
      const double t_naive =
          kernels::run_spmm(kernels::SpmmAlgo::Naive, p, ro).time_ms();
      const double t_crc = kernels::run_spmm(kernels::SpmmAlgo::Crc, p, ro).time_ms();
      const double sp = t_naive / t_crc;
      speedups.push_back(sp);
      ctx.record(dev.name, entry.name, "crc", n, t_crc, sp);
      table.add_row({std::to_string(i + 1), entry.name, Table::fmt(t_naive, 4),
                     Table::fmt(t_crc, 4), Table::fmt(sp, 3)});
    }
    table.print();
    std::printf("geomean CRC speedup on %s: %.3fx   (paper: %s)\n", dev.name.c_str(),
                bench::geomean(speedups),
                dev.unified_l1 ? "1.011x — L1 absorbs broadcasts"
                               : "1.246x");
  }
}
