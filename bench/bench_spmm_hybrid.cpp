/// Extension bench: density-partitioned hybrid execution vs the best
/// single kernel.
///
/// For hybrid-favorable families (structured-block pruned-DNN, power-law
/// R-MAT with a dense head) and a hybrid-hostile ragged family (road
/// grid), on both simulated devices, this runs the Exact autotune sweep —
/// which prices every CF candidate and the hybrid plan honestly — and
/// reports, per (family, device, width):
///  - the best single-kernel modelled time and which kernel it was,
///  - the hybrid plan's modelled time and its dense-partition step share,
///  - the learned selector's pick (core/plan_select through
///    select_spmm_algo) and whether it matched the sweep's winner.
///
/// All recorded rows are strict modelled-time rows (wallclock=false): the
/// baseline gate (scripts/bench_compare.py) fails on drift, so a cost-model
/// change that silently erases the hybrid win — or un-declines the ragged
/// family — is caught in CI.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common/registry.hpp"
#include "core/autotune.hpp"
#include "kernels/spmm_hybrid.hpp"
#include "sparse/generators.hpp"

using namespace gespmm;
using bench::Table;

namespace {

struct Case {
  std::string family;
  Csr a;
};

std::vector<Case> make_cases(bool quick) {
  std::vector<Case> cases;
  // Dense-blocked: DLMC-style pruned-DNN weights at device-filling scale.
  cases.push_back({"pruned_dnn_4096x256_s85",
                   sparse::pruned_dnn(4096, 256, 16, 0.85, 11)});
  if (!quick) {
    cases.push_back({"pruned_dnn_2048x512_s90",
                     sparse::pruned_dnn(2048, 512, 16, 0.90, 12)});
  }
  // Power-law with a dense head: hub rows clear the MMA threshold and
  // carry most of the nnz mass.
  cases.push_back({"rmat_dense_head",
                   sparse::rmat(12, 24.0, 0.45, 0.22, 0.22, 14)});
  // Ragged: no row reaches the MMA tile K-dim, hybrid is structurally not
  // a candidate and the selector must decline it.
  cases.push_back({"grid_road_ragged", sparse::grid_road(4096, 0.05, 15)});
  return cases;
}

}  // namespace

GESPMM_BENCH(spmm_hybrid) {
  const auto& opt = ctx.opt;
  const auto cases = make_cases(opt.quick);
  const std::vector<index_t> widths = {64, 128};

  for (const auto& dev : opt.devices) {
    bench::banner("Hybrid (MMA+SIMT) vs best single kernel (device " +
                  dev.name + ")");
    Table table({"family", "n", "single_best", "single_ms", "hybrid_ms",
                 "speedup", "selected", "agrees"});

    for (const auto& cse : cases) {
      const auto stats = kernels::hybrid_partition_stats(
          cse.a, static_cast<index_t>(gpusim::MmaTileSpec{}.k));
      for (const index_t n : widths) {
        AutotuneOptions aopt;
        aopt.device = dev;
        aopt.sample_blocks = opt.sample_blocks;
        aopt.mode = SelectionMode::Exact;
        const AutotuneResult exact = autotune_spmm(cse.a, n, aopt);

        // Best among the single-kernel candidates (the pre-hybrid optimum).
        SpmmAlgo single_best = exact.default_choice;
        double single_ms = exact.times_ms.at(single_best);
        for (const auto& [algo, ms] : exact.times_ms) {
          if (algo != SpmmAlgo::HybridMma && ms < single_ms) {
            single_best = algo;
            single_ms = ms;
          }
        }

        const auto hyb_it = exact.times_ms.find(SpmmAlgo::HybridMma);
        const bool candidate = hyb_it != exact.times_ms.end();
        const double hybrid_ms = candidate ? hyb_it->second : 0.0;
        const double speedup = candidate ? single_ms / hybrid_ms : 0.0;

        const SpmmAlgo selected = select_spmm_algo(cse.a, n, dev);
        const bool agrees = selected == exact.best;

        table.add_row(
            {cse.family, std::to_string(n), kernels::algo_name(single_best),
             Table::fmt(single_ms, 4),
             candidate ? Table::fmt(hybrid_ms, 4) : "n/a",
             candidate ? Table::fmt(speedup) : "n/a",
             kernels::algo_name(selected), agrees ? "yes" : "NO"});

        // Strict modelled-time rows: the single-kernel optimum, the hybrid
        // plan when it is a candidate, and what the selector actually
        // picked (its speedup column scores selection quality: modelled
        // time of the pick vs the sweep's best).
        ctx.record(dev.name, cse.family, "single-best", static_cast<int>(n),
                   single_ms, 1.0);
        if (candidate) {
          ctx.record(dev.name, cse.family, "hybrid", static_cast<int>(n),
                     hybrid_ms, speedup);
        }
        ctx.record(dev.name, cse.family, "selected", static_cast<int>(n),
                   exact.times_ms.at(selected),
                   exact.times_ms.at(exact.best) / exact.times_ms.at(selected));
      }
      std::printf("  %s: dense_row_frac=%.3f dense_nnz_frac=%.3f\n",
                  cse.family.c_str(), stats.dense_row_frac,
                  stats.dense_nnz_frac);
    }
    table.print();
  }
}
