/// Extension bench: the amortization argument of the paper's Section II-B,
/// measured. In sampled batch training every batch draws a fresh operand,
/// so a preprocess-based kernel (ASpT) pays its conversion on every batch
/// while CSR-native GE-SpMM starts immediately. The bench samples real
/// GraphSAGE batches from pubmed and prices both pipelines per batch.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmm_aspt.hpp"
#include "sparse/datasets.hpp"
#include "sparse/sampling.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(sampled_batches) {
  const auto& opt = ctx.opt;
  const auto data = sparse::pubmed();
  const sparse::index_t n = 64;  // hidden width during aggregation

  for (const auto& dev : opt.devices) {
    bench::banner("Sampled-batch amortization (pubmed, fanout 10, batch 1024, N=" +
                  std::to_string(n) + ", device " + dev.name + ")");
    Table table({"batch", "block nnz", "ge-spmm(ms)", "aspt kern+pre (ms)", "winner"});
    const auto batches = sparse::make_batches(data.adj.rows, 1024, 7);
    double ge_total = 0.0, aspt_total = 0.0;
    const int nbatches =
        std::min<std::size_t>(opt.quick ? 2 : 8, batches.size());
    for (int bi = 0; bi < nbatches; ++bi) {
      const auto block = sparse::sample_neighbors(
          data.adj, batches[static_cast<std::size_t>(bi)],
          {.fanout = 10, .seed = 100 + static_cast<std::uint64_t>(bi)});

      kernels::SpmmRunOptions ro;
      ro.device = dev;
      ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);
      kernels::SpmmProblem p_ge(block.adj, n);
      const double ge = kernels::run_spmm(kernels::SpmmAlgo::GeSpMM, p_ge, ro).time_ms();

      const auto build = sparse::build_aspt(block.adj);
      kernels::AsptDevice adev(build.matrix);
      kernels::SpmmProblem p_aspt(block.adj, n);
      const double aspt = kernels::run_spmm_aspt(adev, p_aspt, ro).time_ms() +
                          kernels::aspt_preprocess_time_ms(build, dev);
      ge_total += ge;
      aspt_total += aspt;
      const std::string batch_label = "pubmed batch " + std::to_string(bi);
      ctx.record(dev.name, batch_label, "gespmm", n, ge, aspt / ge);
      ctx.record(dev.name, batch_label, "aspt_with_preprocess", n, aspt);
      table.add_row({std::to_string(bi), std::to_string(block.adj.nnz()),
                     Table::fmt(ge, 4), Table::fmt(aspt, 4),
                     ge < aspt ? "ge-spmm" : "aspt"});
    }
    table.print();
    std::printf("totals on %s: ge-spmm %.4f ms, aspt-with-preprocess %.4f ms (%.2fx)\n",
                dev.name.c_str(), ge_total, aspt_total, aspt_total / ge_total);
  }
  std::printf("\nper-batch preprocessing can never amortize: the operand is new every\n"
              "step — the compatibility requirement the paper derives in Section II-B.\n");
}
