/// Reproduces paper Table VIII — GE-SpMM against ASpT, the strongest
/// preprocess-based SpMM, across the SNAP suite at N in {128, 256, 512}:
/// kernel-only (ASpT slightly ahead: GE/ASpT 0.85-1.00) and with one
/// preprocessing pass charged (GE ahead 1.43-2.06x), plus the preprocess
/// overhead distribution (paper: 0.01x-64.53x of one SpMM, avg 0.47x /
/// 0.34x on the two machines).

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmm_aspt.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(table8_aspt) {
  const auto& opt = ctx.opt;
  const std::vector<sparse::index_t> ns = {128, 256, 512};

  bench::banner("Table VIII: GE-SpMM speed against ASpT (geomean over SNAP suite, "
                "scale " + Table::fmt(opt.snap_scale) + ")");
  Table t8({"machine", "baseline", "N=128", "N=256", "N=512"});

  for (const auto& dev : opt.devices) {
    std::map<sparse::index_t, std::vector<double>> kernel_only, with_pre;
    std::vector<double> pre_over_spmm;
    const int count = std::min(opt.max_graphs, sparse::snap_suite_size());
    for (int i = 0; i < count; ++i) {
      auto entry = sparse::snap_suite_entry(i, opt.snap_scale);
      const auto build = sparse::build_aspt(entry.matrix);
      kernels::AsptDevice aspt_dev(build.matrix);
      const double pre_ms = kernels::aspt_preprocess_time_ms(build, dev);
      for (auto n : ns) {
        kernels::SpmmRunOptions ro;
        ro.device = dev;
        ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);
        kernels::SpmmProblem p(entry.matrix, n);
        const double aspt = kernels::run_spmm_aspt(aspt_dev, p, ro).time_ms();
        const double ge = kernels::run_spmm(kernels::SpmmAlgo::GeSpMM, p, ro).time_ms();
        kernel_only[n].push_back(aspt / ge);
        with_pre[n].push_back((aspt + pre_ms) / ge);
        ctx.record(dev.name, entry.name, "aspt", n, aspt);
        ctx.record(dev.name, entry.name, "gespmm", n, ge, aspt / ge);
        if (n == 128) pre_over_spmm.push_back(pre_ms / aspt);
      }
    }
    t8.add_row({dev.name, "ASpT", Table::fmt(bench::geomean(kernel_only[128])),
                Table::fmt(bench::geomean(kernel_only[256])),
                Table::fmt(bench::geomean(kernel_only[512]))});
    t8.add_row({"", "ASpT w/ preproc", Table::fmt(bench::geomean(with_pre[128])),
                Table::fmt(bench::geomean(with_pre[256])),
                Table::fmt(bench::geomean(with_pre[512]))});
    const auto [mn, mx] =
        std::minmax_element(pre_over_spmm.begin(), pre_over_spmm.end());
    std::printf(
        "%s preprocess overhead vs one ASpT SpMM (N=128): min %.2fx, geomean %.2fx, "
        "max %.2fx  (paper: 0.01x..64.53x, avg 0.47x/0.34x)\n",
        dev.name.c_str(), *mn, bench::geomean(pre_over_spmm), *mx);
  }
  t8.print();
  std::printf(
      "\npaper Table VIII: kernel-only GE/ASpT 0.93/0.97/1.00 (1080Ti) and\n"
      "0.85/0.93/0.98 (2080); with preprocess GE wins 1.88/1.97/2.06 and\n"
      "1.43/1.57/1.69. Expect <=1 kernel-only ratios flipping to >1 with\n"
      "preprocessing charged.\n");
}
