/// Reproduces paper Fig. 3 — profiling of cuSPARSE csrmm2 on the
/// M=65K/nnz=650K random matrix as the dense width N sweeps 8..512:
/// global load transactions grow linearly with N while global load
/// throughput saturates near the bandwidth bound once N >= 32.
///
/// The paper's observation from this figure drives the whole design:
/// "unlike SpMV which is typically bounded by low bandwidth utilization,
/// SpMM can easily achieve a high utilization but suffers from too much
/// data movement" — so SpMM needs data-*reuse*, not just coalescing.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(fig3_csrmm_profile) {
  const auto& opt = ctx.opt;
  const auto dev = gpusim::gtx1080ti();  // profiled machine in the paper
  const auto matrix = sparse::profile_matrix_65k();

  bench::banner("Fig. 3: csrmm2 profile vs N (device " + dev.name +
                ", M=65K nnz=650K, physical bound 484 GB/s)");
  Table table({"N", "gld_transactions(x1e6)", "gld_throughput(GB/s)",
               "transactions_per_N", "time(ms)"});

  double prev_txn = 0.0;
  for (sparse::index_t n : {8, 16, 32, 64, 128, 256, 512}) {
    kernels::SpmmRunOptions ro;
    ro.device = dev;
    ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks * 4);
    kernels::SpmmProblem p(matrix, n, kernels::Layout::ColMajor);
    const auto res = kernels::run_spmm(kernels::SpmmAlgo::Csrmm2, p, ro);
    const double txn = static_cast<double>(res.metrics.gld_transactions);
    ctx.record(dev.name, "M=65K nnz=650K", "csrmm2", n, res.time_ms());
    table.add_row({std::to_string(n), Table::fmt(txn / 1e6),
                   Table::fmt(res.gld_throughput_gbps(), 1),
                   Table::fmt(txn / n, 0), Table::fmt(res.time_ms(), 4)});
    prev_txn = txn;
  }
  (void)prev_txn;
  table.print();
  std::printf(
      "\npaper: transactions grow ~linearly in N; throughput approaches the\n"
      "bandwidth bound once N >= 32. Check transactions_per_N flattening and\n"
      "the throughput column saturating.\n");
}
