/// Extension bench: cross-device sharded serving of an oversized graph.
///
/// Workload: one uniform random graph big enough (by the configured
/// per-device residency budget) that a single simulated device cannot
/// hold it; 16 width-64 inference requests coalesce into width-256
/// batches. Three device-group sizes answer it:
///  - x1: one device with an uncapped budget serves the graph unsharded
///    (the baseline makespan),
///  - x2 / x4: the budget caps at ~1.25/S of the operand, so
///    register_graph row-partitions it across the group and every batch
///    runs scatter/gather — per-shard kernels in parallel plus the
///    modelled halo gather of B rows over the interconnect.
/// Reported per group size: shards, halo columns, gather share of the
/// makespan, modelled throughput and scaling vs x1. The merged sharded
/// output is checked bitwise against the unsharded engine's. Engines run
/// one worker, paused until fully enqueued, so every number is
/// deterministic.

#include <algorithm>
#include <cstdio>

#include "bench_common/registry.hpp"
#include "serve/engine.hpp"
#include "serve/shard.hpp"
#include "sparse/generators.hpp"

using namespace gespmm;
using bench::Table;

namespace {

constexpr int kRequests = 16;
constexpr sparse::index_t kRequestN = 64;

struct RunResult {
  serve::EngineStats stats;
  double makespan_ms = 0.0;   // busiest device clock
  double gather_ms = 0.0;
  int shards = 0;
  sparse::index_t halo_cols = 0;
  kernels::DenseMatrix first_c;  // request 0's output, for bitwise check
};

/// Serve the fixed request mix on `copies` devices under `capacity`.
RunResult run_group(const sparse::Csr& a, int copies, std::size_t capacity,
                    std::uint64_t sample_blocks) {
  serve::ServeOptions sopt;
  sopt.devices.assign(static_cast<std::size_t>(copies), gpusim::gtx1080ti());
  sopt.num_workers = 1;
  sopt.start_paused = true;
  sopt.batch.max_batch_n = 256;
  sopt.plan.sample_blocks = sample_blocks;
  sopt.sharding.device_capacity_bytes = capacity;
  serve::Engine eng(sopt);

  const serve::GraphId id = eng.register_graph(a);
  std::vector<serve::Ticket> tickets;
  tickets.reserve(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    kernels::DenseMatrix b(a.cols, kRequestN);
    kernels::fill_random(b, 5100 + static_cast<std::uint64_t>(r));
    tickets.push_back(eng.submit(id, std::move(b)));
  }
  const auto plan = eng.shard_plan(id);
  eng.shutdown();

  RunResult out;
  out.stats = eng.stats();
  out.gather_ms = out.stats.gather_ms;
  for (const auto& d : out.stats.devices) {
    out.makespan_ms = std::max(out.makespan_ms, d.modelled_ms);
  }
  if (plan != nullptr) {
    out.shards = plan->num_shards();
    for (const auto& s : plan->shards) {
      out.halo_cols = std::max(out.halo_cols, s.halo_cols);
    }
  }
  out.first_c = tickets.front().wait().c;
  return out;
}

}  // namespace

GESPMM_BENCH(serve_shard) {
  const auto& opt = ctx.opt;
  // Dense enough (32 nnz/row) that per-shard compute dominates the halo
  // gather; sized down under --quick.
  const sparse::index_t rows = opt.quick ? 32768 : 131072;
  const sparse::index_t nnz = rows * 32;
  const sparse::Csr a = sparse::uniform_random(rows, rows, nnz, 4242);
  const std::size_t total = serve::csr_bytes(a);

  bench::banner("Sharded serving: " + std::to_string(rows) + " vertices, " +
                std::to_string(a.nnz()) + " edges (" +
                std::to_string(total >> 20) + " MiB operand), " +
                std::to_string(kRequests) + " requests, N=" +
                std::to_string(kRequestN));

  Table table({"devices", "shards", "halo_cols", "gather_ms", "makespan_ms",
               "req/s", "scaling"});
  double base_ms = 0.0;
  kernels::DenseMatrix reference;
  for (int copies : {1, 2, 4}) {
    // x1 serves unsharded (uncapped); larger groups get ~1.25/S of the
    // operand so registration must shard S ways, with headroom for the
    // planner's nnz-driven imbalance.
    const std::size_t capacity =
        copies == 1 ? 0
                    : total / static_cast<std::size_t>(copies) +
                          total / static_cast<std::size_t>(4 * copies);
    const RunResult r = run_group(a, copies, capacity, opt.sample_blocks);

    if (copies == 1) {
      base_ms = r.makespan_ms;
      reference = r.first_c;
    } else if (r.first_c.max_abs_diff(reference) != 0.0) {
      std::printf("BITWISE MISMATCH: sharded x%d output differs from "
                  "unsharded\n", copies);
      ctx.record("gtx1080ti", "uniform-big", "sharded-mismatch", kRequestN,
                 -1.0);
      return;
    }

    const double rps = r.makespan_ms > 0.0
                           ? static_cast<double>(r.stats.completed) /
                                 (r.makespan_ms * 1e-3)
                           : 0.0;
    const double scaling = r.makespan_ms > 0.0 ? base_ms / r.makespan_ms : 0.0;
    // std::string lhs sidesteps GCC 12's -Wrestrict false positive on the
    // (const char* + string&&) insert path (GCC bug 105651).
    table.add_row({std::string("x") + std::to_string(copies), std::to_string(r.shards),
                   std::to_string(r.halo_cols), Table::fmt(r.gather_ms, 3),
                   Table::fmt(r.makespan_ms, 3), Table::fmt(rps, 0),
                   Table::fmt(scaling)});
    ctx.record("gtx1080ti", "uniform-big",
               std::string("sharded-x") + std::to_string(copies), kRequestN,
               r.makespan_ms, scaling);
  }
  table.print();
  std::printf("merged sharded outputs bitwise-identical to unsharded: OK\n");
}
