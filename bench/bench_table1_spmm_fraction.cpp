/// Reproduces paper Table I — the percentage of SpMM in CUDA time during
/// GCN training on the citation graphs with the DGL-style stack (csrmm2 +
/// transpose for aggregation), plus the full PyTorch-profiler-style op
/// breakdown that backs the paper's motivation: SpMM ~30%, dense matmul
/// ~10%, everything else <10% each.
///
/// Paper reference (GTX 1080Ti): Cora 33.1%, Citeseer 29.3%, Pubmed 29.8%.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "gnn/train.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(table1_spmm_fraction) {
  const auto dev = gpusim::gtx1080ti();  // Table I is measured on Machine 1

  bench::banner("Table I: percentage of SpMM in CUDA time during GCN training (" +
                dev.name + ", DGL stack, 2-layer GCN, hidden 16)");
  Table table({"graph", "SpMM percentage", "GEMM percentage", "total cuda (ms)"});

  std::string last_report;
  for (const auto& data : sparse::citation_suite()) {
    gnn::TrainConfig cfg;
    cfg.device = dev;
    cfg.model.kind = gnn::ModelKind::Gcn;
    cfg.model.backend = gnn::AggregatorBackend::DglCusparse;
    cfg.model.num_layers = 2;
    cfg.model.hidden_feats = 16;
    cfg.epochs = ctx.opt.quick ? 1 : 3;
    // Quick mode also narrows the input features (cora's native 1433
    // input columns dominate the first layer's simulation cost).
    if (ctx.opt.quick) cfg.model.in_feats = 32;
    const auto r = gnn::train(data, cfg);
    ctx.record(dev.name, data.name, "gcn_dgl", cfg.model.hidden_feats, r.cuda_time_ms);
    table.add_row({data.name, Table::fmt(100.0 * r.spmm_fraction, 1) + "%",
                   Table::fmt(100.0 * r.gemm_ms / r.cuda_time_ms, 1) + "%",
                   Table::fmt(r.cuda_time_ms, 3)});
    last_report = r.profile_report;
  }
  table.print();
  std::printf("\npaper: Cora 33.1%%, Citeseer 29.3%%, Pubmed 29.8%% — SpMM takes ~30%%\n"
              "of training CUDA time, motivating SpMM acceleration for GNNs.\n");
  std::printf("\nop breakdown for the last graph (pubmed):\n%s", last_report.c_str());
}
