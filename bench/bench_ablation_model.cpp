/// Ablation study (extension beyond the paper, DESIGN.md Section 5):
/// decomposes GE-SpMM's gains into mechanisms by toggling cost-model and
/// kernel features on the 65K/650K profiling matrix at N=512:
///  1. coalescing      — naive -> CRC transaction reduction at fixed ILP
///  2. sparse reuse    — CWM's transaction reduction at ILP forced to 1
///  3. ILP             — CWM with its real ILP vs ILP forced to 1
///  4. L1 architecture — the same kernels on Pascal vs Turing configs
/// This is the quantitative version of the paper's Section III narrative.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "gpusim/gpusim.hpp"
#include "kernels/spmm_crc.hpp"
#include "kernels/spmm_crc_cwm.hpp"
#include "kernels/spmm_naive.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using namespace gespmm::kernels;
using bench::Table;

namespace {

/// Wraps a kernel but overrides the declared ILP (isolates the
/// latency-hiding contribution of coarsening from its traffic reduction).
class IlpOverride final : public gpusim::Kernel {
 public:
  IlpOverride(const gpusim::Kernel& inner, double ilp) : inner_(&inner), ilp_(ilp) {}
  gpusim::LaunchConfig config(const gpusim::DeviceSpec& dev) const override {
    auto cfg = inner_->config(dev);
    cfg.ilp = ilp_;
    return cfg;
  }
  void run_block(gpusim::BlockCtx& blk) const override { inner_->run_block(blk); }
  std::string name() const override { return inner_->name() + "+ilp-off"; }

 private:
  const gpusim::Kernel* inner_;
  double ilp_;
};

}  // namespace

GESPMM_BENCH(ablation_model) {
  const auto& opt = ctx.opt;
  const auto matrix = sparse::profile_matrix_65k();
  const auto sample = gpusim::SamplePolicy::sampled(opt.sample_blocks * 4);

  for (const auto& dev : opt.devices) {
    bench::banner("Ablation: mechanism decomposition (device " + dev.name +
                  ", M=65K nnz=650K, N=512)");
    SpmmProblem p(matrix, 512);
    SpmmNaiveKernel<> naive(p);
    SpmmCrcKernel<> crc(p);
    SpmmCrcCwmKernel<SumReduce, 2> cwm(p);
    IlpOverride cwm_noilp(cwm, 1.0);

    const auto r_naive = gpusim::launch(dev, naive, sample);
    const auto r_crc = gpusim::launch(dev, crc, sample);
    const auto r_cwm_noilp = gpusim::launch(dev, cwm_noilp, sample);
    const auto r_cwm = gpusim::launch(dev, cwm, sample);

    Table table({"variant", "GLT(x1e6)", "time(ms)", "vs naive", "mechanism"});
    auto row = [&](const char* name, const gpusim::LaunchResult& r, const char* mech) {
      const bool is_baseline = &r == &r_naive;
      ctx.record(dev.name, "M=65K nnz=650K", name, 512, r.time_ms(),
                 is_baseline ? 0.0 : r_naive.time_ms() / r.time_ms());
      table.add_row({name, Table::fmt(static_cast<double>(r.metrics.gld_transactions) / 1e6),
                     Table::fmt(r.time_ms(), 4),
                     Table::fmt(r_naive.time_ms() / r.time_ms(), 3), mech});
    };
    row("alg1 (naive)", r_naive, "baseline");
    row("alg2 (CRC)", r_crc, "+ coalesced sparse loads");
    row("alg3, ILP disabled", r_cwm_noilp, "+ cross-warp sparse reuse only");
    row("alg3 (CRC+CWM)", r_cwm, "+ instruction-level parallelism");
    table.print();

    const double reuse_gain = r_crc.time_ms() / r_cwm_noilp.time_ms();
    const double ilp_gain = r_cwm_noilp.time_ms() / r_cwm.time_ms();
    std::printf(
        "decomposition on %s: coalescing %.3fx, sparse reuse %.3fx, ILP %.3fx\n",
        dev.name.c_str(), r_naive.time_ms() / r_crc.time_ms(), reuse_gain, ilp_gain);
  }
  std::printf(
      "\nreading: on Pascal the coalescing term dominates; on Turing the L1\n"
      "absorbs broadcasts so nearly all of GE-SpMM's gain comes from CWM's\n"
      "reuse + ILP — the architectural split the paper observed empirically.\n");
}
