/// Reproduces paper Fig. 11 and Table VII — overall SpMM performance
/// across the 64-graph SNAP suite: per-matrix GFLOPS for GraphBLAST,
/// cuSPARSE and GE-SpMM at N in {128, 256, 512} (Fig. 11), and geometric
/// mean speedups of GE-SpMM over both baselines (Table VII).
///
/// Paper Table VII:
///                      baseline     N=128  N=256  N=512
///   GTX 1080Ti         cuSPARSE     1.18   1.30   1.37
///                      GraphBLAST   1.42   1.44   1.61
///   RTX 2080           cuSPARSE     1.20   1.34   1.43
///                      GraphBLAST   1.57   1.73   1.81

#include <cstdio>
#include <map>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(fig11_snap_overall) {
  const auto& opt = ctx.opt;
  const std::vector<sparse::index_t> ns = {128, 256, 512};

  // device name -> (N -> speedups over {cusparse, graphblast}).
  std::map<std::string, std::map<sparse::index_t, std::pair<std::vector<double>,
                                                            std::vector<double>>>>
      summary;

  for (const auto& dev : opt.devices) {
    for (auto n : ns) {
      bench::banner("Fig. 11: SNAP suite (device " + dev.name + ", N=" +
                    std::to_string(n) + ", GFLOPS, suite scale " +
                    Table::fmt(opt.snap_scale) + ")");
      Table table({"id", "matrix", "GraphBLAST", "cuSPARSE", "GE-SpMM"});
      const int count = std::min(opt.max_graphs, sparse::snap_suite_size());
      for (int i = 0; i < count; ++i) {
        auto entry = sparse::snap_suite_entry(i, opt.snap_scale);
        kernels::SpmmRunOptions ro;
        ro.device = dev;
        ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);
        const double flops = 2.0 * static_cast<double>(entry.matrix.nnz()) * n;
        kernels::SpmmProblem p(entry.matrix, n);
        kernels::SpmmProblem pc(entry.matrix, n, kernels::Layout::ColMajor);
        const auto gb = kernels::run_spmm(kernels::SpmmAlgo::RowSplitGB, p, ro);
        const auto cus = kernels::run_spmm(kernels::SpmmAlgo::Csrmm2, pc, ro);
        const auto ge = kernels::run_spmm(kernels::SpmmAlgo::GeSpMM, p, ro);
        summary[dev.name][n].first.push_back(cus.time_ms() / ge.time_ms());
        summary[dev.name][n].second.push_back(gb.time_ms() / ge.time_ms());
        ctx.record(dev.name, entry.name, "rowsplit_gb", n, gb.time_ms());
        ctx.record(dev.name, entry.name, "csrmm2", n, cus.time_ms());
        ctx.record(dev.name, entry.name, "gespmm", n, ge.time_ms(),
                   cus.time_ms() / ge.time_ms());
        table.add_row({std::to_string(i + 1), entry.name,
                       Table::fmt(gb.gflops(flops), 1), Table::fmt(cus.gflops(flops), 1),
                       Table::fmt(ge.gflops(flops), 1)});
      }
      table.print();
    }
  }

  bench::banner("Table VII: GE-SpMM average improvement on SNAP dataset (geomean)");
  Table t7({"machine", "baseline", "N=128", "N=256", "N=512"});
  for (const auto& dev : opt.devices) {
    auto& per_n = summary[dev.name];
    t7.add_row({dev.name, "cuSPARSE", Table::fmt(bench::geomean(per_n[128].first)),
                Table::fmt(bench::geomean(per_n[256].first)),
                Table::fmt(bench::geomean(per_n[512].first))});
    t7.add_row({"", "GraphBLAST", Table::fmt(bench::geomean(per_n[128].second)),
                Table::fmt(bench::geomean(per_n[256].second)),
                Table::fmt(bench::geomean(per_n[512].second))});
  }
  t7.print();
  std::printf(
      "\npaper Table VII: cuSPARSE 1.18/1.30/1.37 (1080Ti), 1.20/1.34/1.43 (2080);\n"
      "GraphBLAST 1.42/1.44/1.61 (1080Ti), 1.57/1.73/1.81 (2080). Expect the\n"
      "same ordering and the margin growing with N.\n");
}
