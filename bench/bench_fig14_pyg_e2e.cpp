/// Reproduces paper Fig. 14 — end-to-end GCN training time in the PyG
/// stack, with and without GE-SpMM, on Cora / Citeseer / Pubmed across
/// (layers, feats) settings, on both devices.
///
/// Paper: improvements on PyG are larger than on DGL (up to 3.67x / 2.10x
/// CUDA-time reduction on the two GPUs) because PyG's MessagePassing
/// materializes per-edge messages before reducing, while SpMM fuses the
/// two stages into one kernel.

#include <cstdio>

#include "bench_common/bench_common.hpp"
#include "gnn/train.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

constexpr int kEpochs = 2;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  double best = 0.0;
  for (const auto& dev : opt.devices) {
    for (const auto& data : sparse::citation_suite()) {
      bench::banner("Fig. 14: GCN on " + data.name + " (device " + dev.name +
                    ", PyG vs PyG+GE-SpMM, " + std::to_string(kEpochs) + " epochs)");
      Table table({"(layers, feats)", "PyG (ms)", "PyG+GE-SpMM (ms)", "speedup"});
      for (int layers : {1, 2}) {
        for (int feats : {16, 64, 256}) {
          gnn::TrainConfig cfg;
          cfg.device = dev;
          cfg.model.kind = gnn::ModelKind::Gcn;
          cfg.model.num_layers = layers;
          cfg.model.hidden_feats = feats;
          cfg.epochs = kEpochs;
          cfg.model.backend = gnn::AggregatorBackend::PyGMessagePassing;
          const auto base = gnn::train(data, cfg);
          cfg.model.backend = gnn::AggregatorBackend::GeSpMM;
          const auto ours = gnn::train(data, cfg);
          const double sp = base.cuda_time_ms / ours.cuda_time_ms;
          best = std::max(best, sp);
          char label[32];
          std::snprintf(label, sizeof(label), "(%d, %d)", layers, feats);
          table.add_row({label, Table::fmt(base.cuda_time_ms, 3),
                         Table::fmt(ours.cuda_time_ms, 3), Table::fmt(sp, 2)});
        }
      }
      table.print();
    }
  }
  std::printf("\nbest CUDA-time reduction over PyG: %.2fx (paper: up to 3.67x)\n", best);
  return 0;
}
