/// Reproduces paper Fig. 14 — end-to-end GCN training time in the PyG
/// stack, with and without GE-SpMM, on Cora / Citeseer / Pubmed across
/// (layers, feats) settings, on both devices.
///
/// Paper: improvements on PyG are larger than on DGL (up to 3.67x / 2.10x
/// CUDA-time reduction on the two GPUs) because PyG's MessagePassing
/// materializes per-edge messages before reducing, while SpMM fuses the
/// two stages into one kernel.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "gnn/train.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(fig14_pyg_e2e) {
  const auto& opt = ctx.opt;
  const int kEpochs = opt.quick ? 1 : 2;

  auto suite = sparse::citation_suite();
  if (opt.quick) suite.resize(1);  // cora only: CI budget
  const std::vector<int> layer_grid = opt.quick ? std::vector<int>{1}
                                                : std::vector<int>{1, 2};
  const std::vector<int> feat_grid = opt.quick ? std::vector<int>{16, 64}
                                               : std::vector<int>{16, 64, 256};
  double best = 0.0;
  for (const auto& dev : opt.devices) {
    for (const auto& data : suite) {
      bench::banner("Fig. 14: GCN on " + data.name + " (device " + dev.name +
                    ", PyG vs PyG+GE-SpMM, " + std::to_string(kEpochs) + " epochs)");
      Table table({"(layers, feats)", "PyG (ms)", "PyG+GE-SpMM (ms)", "speedup"});
      for (int layers : layer_grid) {
        for (int feats : feat_grid) {
          gnn::TrainConfig cfg;
          cfg.device = dev;
          cfg.model.kind = gnn::ModelKind::Gcn;
          cfg.model.num_layers = layers;
          cfg.model.hidden_feats = feats;
          cfg.epochs = kEpochs;
          // Quick mode also narrows the input features (cora's native 1433
          // input columns dominate the first layer's simulation cost).
          if (opt.quick) cfg.model.in_feats = 32;
          cfg.model.backend = gnn::AggregatorBackend::PyGMessagePassing;
          const auto base = gnn::train(data, cfg);
          cfg.model.backend = gnn::AggregatorBackend::GeSpMM;
          const auto ours = gnn::train(data, cfg);
          const double sp = base.cuda_time_ms / ours.cuda_time_ms;
          best = std::max(best, sp);
          char label[32];
          std::snprintf(label, sizeof(label), "(%d, %d)", layers, feats);
          ctx.record(dev.name, data.name + " " + label, "gcn_gespmm", feats,
                     ours.cuda_time_ms, sp);
          table.add_row({label, Table::fmt(base.cuda_time_ms, 3),
                         Table::fmt(ours.cuda_time_ms, 3), Table::fmt(sp, 2)});
        }
      }
      table.print();
    }
  }
  std::printf("\nbest CUDA-time reduction over PyG: %.2fx (paper: up to 3.67x)\n", best);
}
