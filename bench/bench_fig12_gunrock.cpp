/// Reproduces paper Fig. 12 — speedup of GE-SpMM over an SpMM written with
/// GunRock's `advance` primitive, on the citation graphs at N in
/// {32, 64, 128}, both devices.
///
/// Paper: 18.27x on average — graph engines without feature-dimension
/// parallelism serialize the feature loop per edge-thread, producing
/// massively uncoalesced dense access plus atomic contention. The paper's
/// conclusion: GNN workloads need new primitives, not SpMV-style advance.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(fig12_gunrock) {
  const auto& opt = ctx.opt;
  const auto suite = sparse::citation_suite();

  std::vector<double> all;
  for (const auto& dev : opt.devices) {
    bench::banner("Fig. 12: GE-SpMM speedup over GunRock-based SpMM (device " +
                  dev.name + ")");
    Table table({"graph", "N", "gunrock(ms)", "ge-spmm(ms)", "speedup"});
    for (const auto& d : suite) {
      for (sparse::index_t n : {32, 64, 128}) {
        kernels::SpmmRunOptions ro;
        ro.device = dev;
        ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);
        kernels::SpmmProblem p(d.adj, n);
        const double gr = kernels::run_spmm(kernels::SpmmAlgo::Gunrock, p, ro).time_ms();
        const double ge = kernels::run_spmm(kernels::SpmmAlgo::GeSpMM, p, ro).time_ms();
        all.push_back(gr / ge);
        ctx.record(dev.name, d.name, "gunrock", n, gr);
        ctx.record(dev.name, d.name, "gespmm", n, ge, gr / ge);
        table.add_row({d.name, std::to_string(n), Table::fmt(gr, 4), Table::fmt(ge, 4),
                       Table::fmt(gr / ge, 2)});
      }
    }
    table.print();
  }
  std::printf("\ngeomean speedup over GunRock-based SpMM: %.2fx (paper: 18.27x avg)\n",
              bench::geomean(all));
}
