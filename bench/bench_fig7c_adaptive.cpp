/// Reproduces paper Fig. 7(c) — the adaptive method choice: average
/// performance of Algorithm 1 (naive), Algorithm 2 (CRC) and Algorithm 3
/// (CRC+CWM) over the test suite, normalized to Algorithm 1, at N=16 and
/// N=64.
///
/// Paper: at N=16, CWM's extra instructions do not pay (one warp already
/// covers all columns), so GE-SpMM calls Algorithm 2 directly for N <= 32
/// and Algorithm 3 only for N > 32.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(fig7c_adaptive) {
  const auto& opt = ctx.opt;

  for (const auto& dev : opt.devices) {
    bench::banner("Fig. 7(c): adaptive algorithm choice (device " + dev.name +
                  ", geomean over SNAP suite scale " + Table::fmt(opt.snap_scale) + ")");
    Table table({"N", "Alg.1 (naive)", "Alg.2 (CRC)", "Alg.3 (CRC+CWM)", "adaptive pick"});

    for (sparse::index_t n : {16, 64}) {
      std::vector<double> r_crc, r_cwm;
      const int count = std::min(opt.max_graphs, sparse::snap_suite_size());
      for (int i = 0; i < count; ++i) {
        auto entry = sparse::snap_suite_entry(i, opt.snap_scale);
        kernels::SpmmRunOptions ro;
        ro.device = dev;
        ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);
        kernels::SpmmProblem p(entry.matrix, n);
        const double t1 = kernels::run_spmm(kernels::SpmmAlgo::Naive, p, ro).time_ms();
        const double t2 = kernels::run_spmm(kernels::SpmmAlgo::Crc, p, ro).time_ms();
        const double t3 = kernels::run_spmm(kernels::SpmmAlgo::CrcCwm2, p, ro).time_ms();
        r_crc.push_back(t1 / t2);
        r_cwm.push_back(t1 / t3);
        ctx.record(dev.name, entry.name, "crc", n, t2, t1 / t2);
        ctx.record(dev.name, entry.name, "crc_cwm2", n, t3, t1 / t3);
      }
      const auto pick = kernels::select_gespmm_algo(n);
      table.add_row({std::to_string(n), "1.000", Table::fmt(bench::geomean(r_crc), 3),
                     Table::fmt(bench::geomean(r_cwm), 3), kernels::algo_name(pick)});
    }
    table.print();
  }
  std::printf(
      "\npaper: at N=16 Alg.2 >= Alg.3 (CWM overhead not amortized); at N=64\n"
      "Alg.3 wins — hence the N<=32 -> CRC, N>32 -> CRC+CWM dispatch rule.\n");
}
