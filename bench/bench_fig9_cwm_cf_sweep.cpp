/// Reproduces paper Fig. 9 — per-matrix relative speedup of Coarse-grained
/// Warp Merging over not using CWM, for CF in {2, 4, 8}, across the SNAP
/// suite at N=512, on both devices.
///
/// Paper findings this bench checks: CF=2 works well for most matrices;
/// CF>4 shows obvious performance drops; a few matrices prefer a larger
/// CF, but the fixed runtime choice CF=2 loses >15% only rarely — which is
/// why GE-SpMM ships CF=2 without tuning.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(fig9_cwm_cf_sweep) {
  const auto& opt = ctx.opt;
  const sparse::index_t n = 512;

  for (const auto& dev : opt.devices) {
    bench::banner("Fig. 9: CWM speedup vs CF per SNAP matrix (device " + dev.name +
                  ", N=512, suite scale " + Table::fmt(opt.snap_scale) + ")");
    Table table({"id", "matrix", "CF=2", "CF=4", "CF=8"});
    std::vector<double> sp2, sp4, sp8;
    int cf2_big_loss = 0;  // matrices where CF=2 loses >15% vs the best CF
    const int count = std::min(opt.max_graphs, sparse::snap_suite_size());
    for (int i = 0; i < count; ++i) {
      auto entry = sparse::snap_suite_entry(i, opt.snap_scale);
      kernels::SpmmRunOptions ro;
      ro.device = dev;
      ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks);
      kernels::SpmmProblem p(entry.matrix, n);
      const double base = kernels::run_spmm(kernels::SpmmAlgo::Crc, p, ro).time_ms();
      const double t2 = kernels::run_spmm(kernels::SpmmAlgo::CrcCwm2, p, ro).time_ms();
      const double t4 = kernels::run_spmm(kernels::SpmmAlgo::CrcCwm4, p, ro).time_ms();
      const double t8 = kernels::run_spmm(kernels::SpmmAlgo::CrcCwm8, p, ro).time_ms();
      sp2.push_back(base / t2);
      sp4.push_back(base / t4);
      sp8.push_back(base / t8);
      ctx.record(dev.name, entry.name, "crc_cwm2", n, t2, base / t2);
      ctx.record(dev.name, entry.name, "crc_cwm4", n, t4, base / t4);
      ctx.record(dev.name, entry.name, "crc_cwm8", n, t8, base / t8);
      const double best = std::min({t2, t4, t8});
      if (t2 > 1.15 * best) ++cf2_big_loss;
      table.add_row({std::to_string(i + 1), entry.name, Table::fmt(base / t2, 3),
                     Table::fmt(base / t4, 3), Table::fmt(base / t8, 3)});
    }
    table.print();
    std::printf(
        "geomean speedup over w/o-CWM on %s: CF=2 %.3fx, CF=4 %.3fx, CF=8 %.3fx\n"
        "matrices where fixed CF=2 loses >15%% vs optimal CF: %d of %d "
        "(paper: 4 and 1 of 64 on the two GPUs)\n",
        dev.name.c_str(), bench::geomean(sp2), bench::geomean(sp4), bench::geomean(sp8),
        cf2_big_loss, count);
  }
}
